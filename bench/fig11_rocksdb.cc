// Figure 11: latency distribution of replicated RocksDB (our KvStore)
// under YCSB-A updates, for three replication back-ends co-located with
// I/O-intensive background tasks (10:1 threads-to-cores):
//
//   Naive-Event    event-driven Naïve-RDMA
//   Naive-Polling  shared (un-pinned) polling Naïve-RDMA
//   HyperLoop      NIC-offloaded
//
// Paper's shape: HyperLoop's tail is 5.7x lower than Naive-Event and
// 24.2x lower than Naive-Polling — notably, polling *loses* to events
// under multi-tenancy because co-located pollers inflate contention.
#include <cstdio>

#include "apps/kvstore/kvstore.h"
#include "apps/ycsb/driver.h"
#include "bench/common.h"

int main(int argc, char** argv) {
  using namespace hyperloop::bench;
  using namespace hyperloop::apps;
  uint64_t ops = 1500;
  if (argc > 1) ops = std::strtoull(argv[1], nullptr, 10);
  const uint64_t records = 2000;
  const uint32_t value_size = 1024;

  std::printf(
      "=== Figure 11: replicated RocksDB (KvStore), YCSB-A updates, "
      "co-located tenants ===\n");
  hyperloop::stats::Table table({"system", "avg(us)", "p95(us)", "p99(us)",
                                 "backup CPU(%)"});

  const Backend backends[3] = {Backend::kNaiveEvent, Backend::kNaivePolling,
                               Backend::kHyperLoop};
  double p99s[3] = {};
  for (int b = 0; b < 3; ++b) {
    auto cluster = make_cluster(3, 31337 + b);
    // Co-located I/O-intensive instances on every server, including the
    // one embedding the store.
    for (size_t s = 0; s < 4; ++s) add_stress(*cluster, s, kPaperIntensity);

    hyperloop::core::RegionLayout layout;
    layout.region_size = 8u << 20;
    layout.log_size = 1u << 20;
    layout.num_locks = 64;
    std::unique_ptr<hyperloop::core::ReplicationGroup> group;
    if (backends[b] == Backend::kHyperLoop) {
      group = make_group(*cluster, 3, Backend::kHyperLoop, layout.region_size);
    } else {
      hyperloop::core::NaiveRdmaGroup::Config gc;
      gc.region_size = layout.region_size;
      gc.mode = backends[b] == Backend::kNaivePolling
                    ? hyperloop::core::NaiveRdmaGroup::Mode::kSharedPolling
                    : hyperloop::core::NaiveRdmaGroup::Mode::kEvent;
      gc.max_inflight = 64;
      gc.recv_slots = 512;
      std::vector<Server*> reps = {&cluster->server(0), &cluster->server(1),
                                   &cluster->server(2)};
      group = std::make_unique<hyperloop::core::NaiveRdmaGroup>(
          cluster->server(3), reps, gc);
    }

    KvStore::Config kc;
    kc.layout = layout;
    kc.value_size = value_size;
    std::vector<hyperloop::core::Server*> reps = {
        &cluster->server(0), &cluster->server(1), &cluster->server(2)};
    KvStore store(*group, cluster->server(3), reps, kc);
    store.bulk_load(records);
    cluster->loop().run_until(cluster->loop().now() + hyperloop::sim::msec(100));

    WorkloadSpec spec = WorkloadSpec::A();
    spec.value_size = value_size;
    WorkloadGenerator gen(spec, records, cluster->fork_rng());
    YcsbDriver::Config dc;
    dc.threads = 4;
    dc.total_ops = ops;
    YcsbDriver driver(cluster->loop(), store, gen, dc);

    const hyperloop::sim::Time t0 = cluster->loop().now();
    bool complete = false;
    driver.start([&] { complete = true; });
    while (!complete &&
           cluster->loop().now() < t0 + hyperloop::sim::seconds(600)) {
      cluster->loop().run_until(cluster->loop().now() +
                                hyperloop::sim::msec(100));
    }
    const double secs = hyperloop::sim::to_sec(cluster->loop().now() - t0);

    // Backup CPU: the replication handler processes on the 3 replicas
    // (HyperLoop: only the periodic ring-refill task).
    double backup_cpu = 0;
    for (size_t r = 0; r < 3; ++r) {
      if (auto* ng =
              dynamic_cast<hyperloop::core::NaiveRdmaGroup*>(group.get())) {
        backup_cpu += hyperloop::sim::to_sec(ng->replica_cpu_time(r));
      } else if (auto* hg = dynamic_cast<hyperloop::core::HyperLoopGroup*>(
                     group.get())) {
        backup_cpu += hyperloop::sim::to_sec(hg->replica_cpu_time(r));
      }
    }
    backup_cpu = backup_cpu / (secs * 3) * 100.0;

    const auto lat = driver.latency(OpType::kUpdate);
    p99s[b] = static_cast<double>(lat.percentile(99));
    table.add_row({backend_name(backends[b]),
                   hyperloop::stats::Table::num(lat.mean() / 1e3),
                   hyperloop::stats::Table::num(lat.percentile(95) / 1e3),
                   hyperloop::stats::Table::num(lat.percentile(99) / 1e3),
                   hyperloop::stats::Table::num(backup_cpu, 2)});
  }
  table.print();
  std::printf("p99 vs HyperLoop: Naive-Event %.1fx, Naive-Polling %.1fx\n",
              p99s[0] / p99s[2], p99s[1] / p99s[2]);
  return 0;
}
