// Ablation: the consistency/durability spectrum (§7, "Supporting other
// storage systems"). The same 1KB write is issued at four service levels,
// all NIC-offloaded, on loaded replicas:
//
//   full ACID txn      wrLock + Append + ExecuteAndAdvance + unlock
//                      (MongoDB mode, §5.2)
//   durable log only   Append (gWRITE+gFLUSH); execution off critical path
//                      (RocksDB mode, §5.1)
//   non-durable repl.  gWRITE without gFLUSH (RAMCloud-like semantics)
//   local only         no replication (the unreplicated lower bound)
//
// The paper's point: the primitives compose, so weaker models simply drop
// steps and gain latency.
#include <cstdio>

#include "bench/common.h"
#include "core/lock.h"
#include "core/txn.h"
#include "core/wal.h"

int main(int argc, char** argv) {
  using namespace hyperloop::bench;
  namespace core = hyperloop::core;
  uint64_t ops = 1500;
  if (argc > 1) ops = std::strtoull(argv[1], nullptr, 10);

  auto cluster = make_cluster(3, 7777);
  for (size_t s = 0; s < 3; ++s) add_stress(*cluster, s, kPaperIntensity);

  core::RegionLayout layout;
  layout.region_size = 4u << 20;
  layout.log_size = 1u << 20;
  layout.num_locks = 64;
  auto group_base = make_group(*cluster, 3, Backend::kHyperLoop,
                               layout.region_size);
  auto* group = group_base.get();
  core::ReplicatedWal wal(*group, layout);
  core::GroupLockManager locks(*group, layout, cluster->loop());
  core::TransactionManager txns(*group, wal, locks, cluster->loop());
  cluster->loop().run_until(hyperloop::sim::msec(20));

  std::vector<uint8_t> value(1024, 0x42);
  group->client_store(layout.db_base(), value.data(),
                      static_cast<uint32_t>(value.size()));

  std::printf("=== Ablation: consistency spectrum (1KB writes, group=3, "
              "loaded replicas) ===\n");
  hyperloop::stats::Table table(
      {"level", "avg(us)", "p99(us)", "durable?", "executed on replicas?"});

  // Full ACID transaction.
  {
    uint64_t k = 0;
    auto lat = closed_loop(cluster->loop(), ops,
                           [&](std::function<void()> done) {
                             std::vector<core::ReplicatedWal::Entry> w;
                             w.push_back({(k % 512) * 1024, value});
                             txns.execute(std::move(w),
                                          {static_cast<uint32_t>(k % 64)},
                                          [done = std::move(done)](bool) {
                                            done();
                                          });
                             ++k;
                           });
    table.add_row({"ACID txn", hyperloop::stats::Table::num(lat.mean() / 1e3),
                   hyperloop::stats::Table::num(lat.percentile(99) / 1e3),
                   "yes", "yes (in txn)"});
  }
  // Durable log append only.
  {
    uint64_t k = 0;
    auto lat = closed_loop(
        cluster->loop(), ops, [&](std::function<void()> done) {
          // Checkpoint off the critical path when the log fills (the
          // KvStore pattern).
          while (wal.used_bytes() > layout.log_size / 2 &&
                 wal.execute_and_advance([] {})) {
          }
          std::vector<core::ReplicatedWal::Entry> w;
          w.push_back({(k % 512) * 1024, value});
          ++k;
          auto done_sp =
              std::make_shared<std::function<void()>>(std::move(done));
          if (!wal.append(w, [done_sp](uint64_t) { (*done_sp)(); })) {
            // Log full despite checkpointing: retry shortly.
            cluster->loop().schedule_after(hyperloop::sim::usec(100),
                                           [done_sp] { (*done_sp)(); });
          }
        });
    table.add_row({"durable log (RocksDB mode)",
                   hyperloop::stats::Table::num(lat.mean() / 1e3),
                   hyperloop::stats::Table::num(lat.percentile(99) / 1e3),
                   "yes", "deferred"});
  }
  // Non-durable replication.
  {
    auto lat = closed_loop(cluster->loop(), ops,
                           [&](std::function<void()> done) {
                             group->gwrite(layout.db_base(), 1024,
                                           /*flush=*/false, std::move(done));
                           });
    table.add_row({"volatile replication (RAMCloud-like)",
                   hyperloop::stats::Table::num(lat.mean() / 1e3),
                   hyperloop::stats::Table::num(lat.percentile(99) / 1e3),
                   "no", "n/a"});
  }
  // Local only.
  {
    auto lat = closed_loop(cluster->loop(), ops,
                           [&](std::function<void()> done) {
                             group->client_store(layout.db_base(),
                                                 value.data(), 1024);
                             cluster->loop().schedule_after(
                                 hyperloop::sim::nsec(500), std::move(done));
                           });
    table.add_row({"local only (no replication)",
                   hyperloop::stats::Table::num(lat.mean() / 1e3),
                   hyperloop::stats::Table::num(lat.percentile(99) / 1e3),
                   "local", "n/a"});
  }
  table.print();
  return 0;
}
