#!/usr/bin/env python3
"""Merge N perf_selfcheck JSON runs into a conservative committed baseline.

Usage: merge_selfcheck.py OUT.json RUN1.json RUN2.json [RUN3.json ...]

Writes OUT.json: the last run verbatim, except every benchmark's
items_per_second is replaced by the MINIMUM observed for that benchmark
across all input runs (benchmarks missing from some runs keep the
minimum over the runs that have them).

Why the minimum: on the shared 1-core VMs this repo builds on,
back-to-back runs of the *same binary* can disagree by more than the
compare gate's 15% threshold (host steal), so a single-run baseline
makes CI a coin flip. The gate exists to catch step-function
regressions — an accidental O(n) lookup, a reintroduced per-packet
allocation — and those drop throughput by far more than run-to-run
noise. Anchoring the gate at the slowest same-code run keeps it
meaningful: a fresh run must fall >15% below the *worst* day the
committed code ever showed before CI fails.

All inputs must carry context.binary_build_type == "release" (the same
provenance rule compare_selfcheck.py enforces); a debug or unstamped
run would drag the floor down with meaningless numbers.
"""

import json
import sys


def main(argv):
    if len(argv) < 4:
        print(__doc__.strip().splitlines()[2], file=sys.stderr)
        return 2
    out_path, run_paths = argv[1], argv[2:]

    runs = []
    for p in run_paths:
        with open(p) as f:
            data = json.load(f)
        build_type = data.get("context", {}).get("binary_build_type")
        if build_type != "release":
            print(f"error: {p}: binary_build_type is {build_type!r}, "
                  f"not \"release\" — refusing to merge", file=sys.stderr)
            return 1
        runs.append(data)

    floor = {}
    for data in runs:
        for bm in data.get("benchmarks", []):
            if bm.get("run_type") == "aggregate":
                continue
            ips = bm.get("items_per_second")
            if ips:
                name = bm["name"]
                floor[name] = min(floor.get(name, float("inf")), float(ips))

    merged = runs[-1]
    for bm in merged.get("benchmarks", []):
        name = bm.get("name")
        if name in floor and bm.get("items_per_second"):
            bm["items_per_second"] = floor[name]
    merged.setdefault("context", {})["selfcheck_merge"] = (
        f"items_per_second = min over {len(runs)} runs")

    with open(out_path, "w") as f:
        json.dump(merged, f, indent=1)
        f.write("\n")
    print(f"wrote {out_path} (floor of {len(runs)} runs, "
          f"{len(floor)} benchmarks)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
