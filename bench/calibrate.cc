// Calibration scratchpad: one gWRITE latency config per invocation, with
// load-profile knobs on the command line. Used to tune the multi-tenant
// stress profile so the Naïve-RDMA baseline lands in the paper's regime
// (avg ~500us, p99 ~10^4 us at 128B, group 3) while HyperLoop stays ~10us.
//
//   calibrate [ops] [intensity] [tenants] [sigma] [batch] [median_burst_us]
#include <cstdio>
#include <cstdlib>

#include "bench/common.h"

int main(int argc, char** argv) {
  using namespace hyperloop::bench;
  uint64_t ops = 500;
  double intensity = 1.0;
  StressProfile p;
  if (argc > 1) ops = std::strtoull(argv[1], nullptr, 10);
  if (argc > 2) intensity = std::atof(argv[2]);
  if (argc > 3) p.tenants = std::atoi(argv[3]);
  if (argc > 4) p.burst_sigma = std::atof(argv[4]);
  if (argc > 5) p.max_batch = std::atoi(argv[5]);
  if (argc > 7) p.fanout = std::atoi(argv[7]);
  if (argc > 6) p.median_burst = hyperloop::sim::usec(std::atoi(argv[6]));

  std::printf("ops=%llu intensity=%.2f tenants=%d sigma=%.2f batch=%d burst=%lldus\n",
              (unsigned long long)ops, intensity, p.tenants, p.burst_sigma,
              p.max_batch, (long long)(p.median_burst / 1000));

  for (int which = 0; which < 2; ++which) {
    const Backend backend =
        which == 0 ? Backend::kHyperLoop : Backend::kNaiveEvent;
    auto cluster = make_cluster(3, 4242 + which);
    for (size_t s = 0; s < 3; ++s) add_stress(*cluster, s, intensity, p);
    auto group = make_group(*cluster, 3, backend);
    cluster->loop().run_until(hyperloop::sim::msec(50));

    std::vector<uint8_t> payload(128, 0xAB);
    group->client_store(0, payload.data(), 128);
    auto lat = closed_loop(cluster->loop(), ops,
                           [&](std::function<void()> done) {
                             group->gwrite(0, 128, true, std::move(done));
                           });
    std::printf("%-13s %s  (util=%.3f ctx=%llu)\n", backend_name(backend),
                lat.summary_us().c_str(),
                cluster->server(0).sched().utilization(),
                (unsigned long long)cluster->server(0)
                    .sched()
                    .total_context_switches());
  }
  return 0;
}
