// Figure 9: gWRITE throughput and replica critical-path CPU consumption vs
// message size (group 3). The benchmark writes 1 GB total per message size
// with a deep pipeline (§6.1).
//
// Paper's shape: HyperLoop matches Naïve-RDMA throughput while consuming
// ~0% replica CPU; the baseline burns a full core (100%) on the replicas.
#include <cstdio>

#include "bench/common.h"

int main(int argc, char** argv) {
  using namespace hyperloop::bench;
  using hyperloop::sim::to_sec;
  uint64_t total_bytes = 32ull << 20;  // default 64 MB per size (fast CI)
  if (argc > 1) total_bytes = std::strtoull(argv[1], nullptr, 10) << 20;

  const std::vector<uint32_t> sizes = {1024, 2048, 4096, 8192, 16384, 32768,
                                       65536};
  std::printf(
      "=== Figure 9: gWRITE throughput + replica CPU (group=3, %llu MB per "
      "size) ===\n",
      static_cast<unsigned long long>(total_bytes >> 20));
  hyperloop::stats::Table table({"size(B)", "HL Kops/s", "HL Gbps",
                                 "HL repl CPU(%)", "Naive Kops/s",
                                 "Naive Gbps", "Naive repl CPU(%)"});

  for (uint32_t size : sizes) {
    double kops[2] = {0, 0}, gbps[2] = {0, 0}, cpu[2] = {0, 0};
    for (int which = 0; which < 2; ++which) {
      const Backend backend =
          which == 0 ? Backend::kHyperLoop : Backend::kNaivePolling;
      auto cluster = make_cluster(3, 555 + size + which);
      auto group = make_group(*cluster, 3, backend, 8u << 20);
      auto& loop = cluster->loop();
      loop.run_until(hyperloop::sim::msec(5));

      const uint64_t ops = total_bytes / size;
      uint64_t done_count = 0;
      std::vector<uint8_t> payload(size, 0x5A);
      group->client_store(0, payload.data(), size);

      // Busy-time baselines (to isolate this phase's CPU).
      hyperloop::sim::Duration busy0 = 0;
      for (int s = 0; s < 3; ++s) busy0 += cluster->server(s).sched().total_busy();
      const hyperloop::sim::Time t0 = loop.now();
      hyperloop::sim::Time t_done = t0;

      // Open-loop up to the group's in-flight window. The finish time is
      // taken from the last completion, not the (coarse) run_until quantum.
      std::function<void()> pump = [&] {
        group->gwrite(0, size, /*flush=*/true, [&] {
          ++done_count;
          t_done = loop.now();
        });
      };
      for (uint64_t k = 0; k < ops; ++k) pump();
      while (done_count < ops &&
             loop.now() < t0 + hyperloop::sim::seconds(600)) {
        loop.run_until(loop.now() + hyperloop::sim::msec(100));
      }
      const double secs = to_sec(t_done - t0);
      hyperloop::sim::Duration busy1 = 0;
      for (int s = 0; s < 3; ++s) busy1 += cluster->server(s).sched().total_busy();
      // CPU accumulates over the whole simulated span (which may extend
      // past the last completion by one polling quantum) — normalize over
      // that span.
      const double cpu_span = to_sec(loop.now() - t0);

      kops[which] = double(done_count) / secs / 1e3;
      gbps[which] = double(done_count) * size * 8 / secs / 1e9;
      // Replica CPU as a fraction of one core per replica (paper plots
      // "CPU utilization" where the naive baseline pins one core/replica).
      cpu[which] =
          hyperloop::sim::to_sec(busy1 - busy0) / (cpu_span * 3) * 100.0;
    }
    table.add_row({std::to_string(size), hyperloop::stats::Table::num(kops[0]),
                   hyperloop::stats::Table::num(gbps[0], 2),
                   hyperloop::stats::Table::num(cpu[0], 2),
                   hyperloop::stats::Table::num(kops[1]),
                   hyperloop::stats::Table::num(gbps[1], 2),
                   hyperloop::stats::Table::num(cpu[1], 2)});
  }
  table.print();
  return 0;
}
