// Figure 10: 99th-percentile gWRITE latency vs replication group size
// (3, 5, 7) across message sizes, Naïve-RDMA (a) vs HyperLoop (b).
//
// Paper's shape: the baseline's p99 grows with group size (up to 2.97x
// from 3 to 7 replicas: more CPU hops, more chances to hit a busy core),
// while HyperLoop stays essentially flat and only shifts by the extra
// NIC/wire hops.
#include <cstdio>

#include "bench/common.h"

int main(int argc, char** argv) {
  using namespace hyperloop::bench;
  uint64_t ops = 800;
  if (argc > 1) ops = std::strtoull(argv[1], nullptr, 10);

  const std::vector<int> group_sizes = {3, 5, 7};
  const std::vector<uint32_t> sizes = {128, 512, 2048, 8192};

  for (int which = 0; which < 2; ++which) {
    const Backend backend =
        which == 0 ? Backend::kNaiveEvent : Backend::kHyperLoop;
    std::printf("=== Figure 10(%c): %s p99 gWRITE latency (us) ===\n",
                which == 0 ? 'a' : 'b', backend_name(backend));
    std::vector<std::string> header = {"size(B)"};
    for (int g : group_sizes) header.push_back("G=" + std::to_string(g));
    header.push_back("G7/G3");
    hyperloop::stats::Table table(header);

    for (uint32_t size : sizes) {
      std::vector<std::string> row = {std::to_string(size)};
      double p99s[8] = {};
      for (size_t gi = 0; gi < group_sizes.size(); ++gi) {
        const int g = group_sizes[gi];
        auto cluster = make_cluster(g, 901 + size + g * 13 + which);
        for (int s = 0; s < g; ++s) add_stress(*cluster, s, kPaperIntensity);
        auto group = make_group(*cluster, g, backend);
        cluster->loop().run_until(hyperloop::sim::msec(20));

        std::vector<uint8_t> payload(size, 0x3C);
        group->client_store(0, payload.data(), size);
        auto lat = closed_loop(cluster->loop(), ops,
                               [&](std::function<void()> done) {
                                 group->gwrite(0, size, true, std::move(done));
                               });
        p99s[gi] = lat.percentile(99) / 1e3;
        row.push_back(hyperloop::stats::Table::num(p99s[gi]));
      }
      row.push_back(hyperloop::stats::Table::num(
          p99s[group_sizes.size() - 1] / p99s[0], 2) + "x");
      table.add_row(row);
    }
    table.print();
    std::printf("\n");
  }
  return 0;
}
