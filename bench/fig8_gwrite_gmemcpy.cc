// Figure 8: latency of gWRITE (a) and gMEMCPY (b) vs message size,
// HyperLoop vs Naïve-RDMA, replication group size 3, with background
// CPU-intensive tenants on the replicas (§6.1).
//
// Paper's headline: HyperLoop cuts 99th-percentile latency by up to
// ~800x for gWRITE and ~848x for gMEMCPY; HyperLoop's average and tail
// are nearly identical (NIC-only critical path), while the CPU-driven
// baseline's tail explodes under multi-tenant load.
#include <cstdio>
#include <cstring>

#include "bench/common.h"

namespace hyperloop::bench {
namespace {

struct Row {
  uint32_t size;
  stats::Histogram hl, naive;
};

void run(const char* prim_name, bool memcpy_prim, uint64_t ops) {
  // 16 KB - 256 KB extends past the paper's sweep into the copy-bound
  // large-message regime (Storm-style workloads).
  const std::vector<uint32_t> sizes = {128,  256,   512,      1024,
                                       2048, 4096,  8192,     16 << 10,
                                       64 << 10, 256 << 10};
  std::printf("=== Figure 8%s: %s latency vs message size (group=3) ===\n",
              memcpy_prim ? "(b)" : "(a)", prim_name);
  stats::Table table({"size(B)", "HL avg(us)", "HL p99(us)", "Naive avg(us)",
                      "Naive p99(us)", "p99 ratio"});

  for (uint32_t size : sizes) {
    stats::Histogram results[2];
    for (int which = 0; which < 2; ++which) {
      const Backend backend =
          which == 0 ? Backend::kHyperLoop : Backend::kNaiveEvent;
      auto cluster = make_cluster(3, /*seed=*/1234 + size);
      for (size_t s = 0; s < 3; ++s) add_stress(*cluster, s, kPaperIntensity);
      auto group = make_group(*cluster, 3, backend);
      // Warm the load up before measuring.
      cluster->loop().run_until(sim::msec(20));

      std::vector<uint8_t> payload(size, 0xAB);
      group->client_store(0, payload.data(), size);
      results[which] = closed_loop(
          cluster->loop(), ops, [&](std::function<void()> done) {
            if (memcpy_prim) {
              // dst sits at 1 MB so even the 256 KB point never overlaps
              // the source extent at offset 0.
              group->gmemcpy(0, 1 << 20, size, /*flush=*/true,
                             std::move(done));
            } else {
              group->gwrite(0, size, /*flush=*/true, std::move(done));
            }
          });
    }
    const double ratio =
        static_cast<double>(results[1].percentile(99)) /
        static_cast<double>(results[0].percentile(99));
    table.add_row({std::to_string(size),
                   stats::Table::num(results[0].mean() / 1e3),
                   stats::Table::num(results[0].percentile(99) / 1e3),
                   stats::Table::num(results[1].mean() / 1e3),
                   stats::Table::num(results[1].percentile(99) / 1e3),
                   stats::Table::num(ratio) + "x"});
  }
  table.print();
  std::printf("\n");
}

}  // namespace
}  // namespace hyperloop::bench

int main(int argc, char** argv) {
  uint64_t ops = 1000;
  if (argc > 1) ops = std::strtoull(argv[1], nullptr, 10);
  hyperloop::bench::run("gWRITE", false, ops);
  hyperloop::bench::run("gMEMCPY", true, ops);
  return 0;
}
