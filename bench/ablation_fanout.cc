// Ablation: chain vs fan-out offloaded replication (§7, "Supporting other
// replication protocols").
//
// Both topologies keep replica CPUs off the critical path; the trade-off
// the paper describes is *load placement*:
//   - chain: every NIC forwards once; at most one active write QP per hop.
//   - fan-out: the primary's NIC transmits the payload K times and holds
//     K active write QPs (the FaRM shape), so its egress bytes scale with
//     the group size while latency is flatter (one NIC hop, parallel).
#include <cstdio>

#include "bench/common.h"
#include "core/fanout_group.h"

int main(int argc, char** argv) {
  using namespace hyperloop::bench;
  using hyperloop::core::FanoutGroup;
  using hyperloop::core::HyperLoopGroup;
  uint64_t ops = 1500;
  if (argc > 1) ops = std::strtoull(argv[1], nullptr, 10);

  std::printf(
      "=== Ablation: chain vs fan-out NIC offload (4KB gWRITE+gFLUSH) ===\n");
  hyperloop::stats::Table table(
      {"topology", "G", "avg(us)", "p99(us)", "head NIC MB sent",
       "max other NIC MB"});

  for (int G : {3, 5, 7}) {
    for (int topo = 0; topo < 2; ++topo) {
      auto cluster = make_cluster(G, 8800 + G * 10 + topo);
      std::vector<Server*> reps;
      for (int i = 0; i < G; ++i) reps.push_back(&cluster->server(i));
      Server& client = cluster->server(cluster->size() - 1);

      std::unique_ptr<hyperloop::core::ReplicationGroup> group;
      if (topo == 0) {
        HyperLoopGroup::Config gc;
        gc.region_size = 4u << 20;
        gc.ring_slots = 512;
        gc.max_inflight = 32;
        group = std::make_unique<HyperLoopGroup>(client, reps, gc);
      } else {
        FanoutGroup::Config gc;
        gc.region_size = 4u << 20;
        gc.ring_slots = 512;
        gc.max_inflight = 32;
        group = std::make_unique<FanoutGroup>(client, reps, gc);
      }
      cluster->loop().run_until(hyperloop::sim::msec(5));

      std::vector<uint8_t> payload(4096, 0x11);
      group->client_store(0, payload.data(), 4096);
      auto lat = closed_loop(cluster->loop(), ops,
                             [&](std::function<void()> done) {
                               group->gwrite(0, 4096, true, std::move(done));
                             });

      // "Head" = first replica (chain head / fan-out primary).
      const double head_mb =
          double(cluster->server(0).nic().counters().bytes_tx) / 1e6;
      double other_mb = 0;
      for (int i = 1; i < G; ++i) {
        other_mb = std::max(
            other_mb, double(cluster->server(i).nic().counters().bytes_tx) / 1e6);
      }
      table.add_row({topo == 0 ? "chain" : "fan-out", std::to_string(G),
                     hyperloop::stats::Table::num(lat.mean() / 1e3),
                     hyperloop::stats::Table::num(lat.percentile(99) / 1e3),
                     hyperloop::stats::Table::num(head_mb, 1),
                     hyperloop::stats::Table::num(other_mb, 1)});
    }
  }
  table.print();
  std::printf(
      "(chain spreads egress evenly; fan-out concentrates ~Kx payload on "
      "the primary's NIC — the paper's reason to prefer chains)\n");
  return 0;
}
