// Shared harness pieces for the paper-reproduction benchmarks.
//
// Testbed model (§6): servers with two 8-core Xeons (16 cores), 56 Gbps
// RDMA NICs, battery-backed DRAM as NVM. Multi-tenancy is emulated with
// CPU-intensive background tenants (the stress-ng analogue), sized so the
// shared cores run near saturation — the regime in which the paper's
// event-driven baselines develop their millisecond tails.
#pragma once

#include <cmath>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/group.h"
#include "core/hyperloop_group.h"
#include "core/naive_group.h"
#include "core/server.h"
#include "core/sharded_group.h"
#include "core/sharded_reader.h"
#include "core/tcp_group.h"
#include "stats/histogram.h"
#include "stats/table.h"

namespace hyperloop::bench {

using core::Cluster;
using core::Server;

/// 16-core dual-Xeon server as in the paper's testbed.
inline core::ServerConfig testbed_server(int cores = 16) {
  core::ServerConfig s;
  s.cpu.num_cores = cores;
  s.cpu.context_switch_cost = sim::usec(5);
  s.cpu.timeslice = sim::msec(1);
  s.cpu.wakeup_overhead = sim::usec(3);
  // Keep host arenas as small as the experiment needs: HostMemory zeroes
  // its arena eagerly, so oversized servers waste real (not simulated) time.
  s.mem_capacity = 96u << 20;
  s.nvm_size = 48u << 20;
  return s;
}

/// Builds `replicas` storage servers plus one client machine (the last).
/// `num_nics` > 1 gives every server that many NICs (one per shard chain
/// in the sharded experiments).
inline std::unique_ptr<Cluster> make_cluster(int replicas, uint64_t seed,
                                             int cores = 16,
                                             int num_nics = 1) {
  Cluster::Config cc;
  cc.num_servers = replicas + 1;
  cc.server = testbed_server(cores);
  cc.server.num_nics = num_nics;
  cc.seed = seed;
  return std::make_unique<Cluster>(cc);
}

/// The stress-ng analogue: near-saturating, bursty background tenants.
/// `intensity` ~ offered load per shared core (1.0 = exactly saturated).
struct StressProfile {
  int tenants = 64;
  sim::Duration median_burst = sim::usec(150);
  double burst_sigma = 1.2;  ///< heavy-tailed handler times
  int max_batch = 4;         ///< requests served back-to-back per thread
  int fanout = 64;           ///< threads woken per tenant activation
};

/// Calibrated so the Naïve-RDMA baseline lands in the paper's §6.1 regime
/// (avg ~0.5ms, p95 ~3-4ms, p99 ~10ms for 128B gWRITE at group size 3).
constexpr double kPaperIntensity = 0.66;

inline void add_stress(Cluster& cluster, size_t server_idx, double intensity,
                       StressProfile p = StressProfile{}) {
  sim::BackgroundLoad::Config lc;
  lc.median_burst = p.median_burst;
  lc.burst_sigma = p.burst_sigma;
  lc.max_batch = p.max_batch;
  lc.fanout = p.fanout;
  // CPU demand per activation = fanout * batch * mean_burst, with mean
  // lognormal burst = median * exp(sigma^2/2). The think time is sized so
  // average offered load = intensity * cores.
  const double mean_burst_ns = static_cast<double>(p.median_burst) *
                               std::exp(p.burst_sigma * p.burst_sigma / 2.0);
  const double mean_batch = (1.0 + p.max_batch) / 2.0;
  const double mean_fanout = (1.0 + p.fanout) / 2.0;
  const int cores = cluster.server(server_idx).sched().num_cores();
  const double per_tenant_util = intensity * cores / p.tenants;
  const double active_ns = mean_fanout * mean_batch * mean_burst_ns;
  lc.mean_think = static_cast<sim::Duration>(
      active_ns * (1.0 - per_tenant_util) / per_tenant_util);
  lc.tenants = 0;  // set by add_background_load
  cluster.server(server_idx).add_background_load(p.tenants,
                                                 cluster.fork_rng(), lc);
}

enum class Backend { kHyperLoop, kNaiveEvent, kNaivePolling, kTcp };

inline const char* backend_name(Backend b) {
  switch (b) {
    case Backend::kHyperLoop: return "HyperLoop";
    case Backend::kNaiveEvent: return "Naive-Event";
    case Backend::kNaivePolling: return "Naive-Polling";
    case Backend::kTcp: return "Native-TCP";
  }
  return "?";
}

/// Builds a replication group of `group_size` replicas (servers 0..G-1)
/// coordinated by the last server of the cluster.
inline std::unique_ptr<core::ReplicationGroup> make_group(
    Cluster& cluster, int group_size, Backend backend,
    uint64_t region_size = 4u << 20) {
  std::vector<Server*> reps;
  for (int i = 0; i < group_size; ++i) reps.push_back(&cluster.server(i));
  Server& client = cluster.server(cluster.size() - 1);
  switch (backend) {
    case Backend::kHyperLoop: {
      core::HyperLoopGroup::Config gc;
      gc.region_size = region_size;
      // Deep rings: under heavy tenant load the refill process can be
      // scheduled ~10ms late; the ring must absorb that many operations
      // or RNR stalls leak scheduler latency into the offloaded path
      // (bench/ablation_refill quantifies exactly this).
      gc.ring_slots = 2048;
      gc.max_inflight = 64;
      return std::make_unique<core::HyperLoopGroup>(client, reps, gc);
    }
    case Backend::kNaiveEvent:
    case Backend::kNaivePolling: {
      core::NaiveRdmaGroup::Config gc;
      gc.region_size = region_size;
      gc.mode = backend == Backend::kNaivePolling
                    ? core::NaiveRdmaGroup::Mode::kPolling
                    : core::NaiveRdmaGroup::Mode::kEvent;
      gc.max_inflight = 64;
      gc.recv_slots = 512;
      return std::make_unique<core::NaiveRdmaGroup>(client, reps, gc);
    }
    case Backend::kTcp: {
      core::TcpReplicationGroup::Config gc;
      gc.region_size = region_size;
      return std::make_unique<core::TcpReplicationGroup>(client, reps, gc);
    }
  }
  return nullptr;
}

/// Builds a ShardedGroup of `shards` HyperLoop chains over servers
/// 0..group_size-1, client = last server. Each chain gets its own NIC
/// (nic_index = shard; build the cluster with num_nics >= shards) and
/// sees the full logical region of shards * slice_size bytes (identity
/// addressing); a range router with span = slice_size does the
/// partitioning.
inline std::unique_ptr<core::ShardedGroup> make_sharded_group(
    Cluster& cluster, int group_size, uint32_t shards,
    uint64_t slice_size = 1u << 20) {
  std::vector<Server*> reps;
  for (int i = 0; i < group_size; ++i) reps.push_back(&cluster.server(i));
  Server& client = cluster.server(cluster.size() - 1);
  std::vector<std::unique_ptr<core::ReplicationGroup>> kids;
  for (uint32_t s = 0; s < shards; ++s) {
    core::HyperLoopGroup::Config gc;
    gc.region_size = slice_size * shards;
    gc.ring_slots = 2048;  // same depth rationale as make_group
    gc.max_inflight = 64;
    gc.nic_index = s;
    kids.push_back(std::make_unique<core::HyperLoopGroup>(client, reps, gc));
  }
  return std::make_unique<core::ShardedGroup>(
      std::move(kids), core::ShardRouter::range(shards, slice_size));
}

/// Builds a ShardedReader over the chains of a ShardedGroup produced by
/// make_sharded_group: one RemoteReader per shard whose targets are every
/// replica of that chain (indexed by chain position, so policy picks can
/// be read-locked), with the reader's QPs on the chain's NIC and the
/// group's own router doing the partitioning.
inline std::unique_ptr<core::ShardedReader> make_sharded_reader(
    core::ShardedGroup& sg, Server& client,
    core::RemoteReader::Policy policy =
        core::RemoteReader::Policy::kRoundRobin,
    uint32_t slots = 32, uint32_t slot_size = 16384) {
  std::vector<std::unique_ptr<core::RemoteReader>> readers;
  for (uint32_t s = 0; s < sg.shards(); ++s) {
    auto& hl = static_cast<core::HyperLoopGroup&>(sg.shard(s));
    std::vector<core::RemoteReader::Target> targets;
    for (size_t i = 0; i < hl.group_size(); ++i) {
      targets.push_back({&hl.replica_server(i), hl.replica_region_base(i),
                         hl.replica_data_rkey(i)});
    }
    core::RemoteReader::Options opts;
    opts.slots = slots;
    opts.slot_size = slot_size;
    opts.policy = policy;
    opts.nic_index = s;
    readers.push_back(std::make_unique<core::RemoteReader>(
        client, std::move(targets), opts));
  }
  return std::make_unique<core::ShardedReader>(std::move(readers),
                                               sg.router());
}

/// Runs a closed-loop latency benchmark: `ops` sequential operations, each
/// issued when the previous completes, recording completion latency.
inline stats::Histogram closed_loop(
    sim::EventLoop& loop, uint64_t ops,
    const std::function<void(std::function<void()>)>& issue,
    sim::Duration max_sim_time = sim::seconds(600)) {
  stats::Histogram lat;
  uint64_t remaining = ops;
  bool finished = false;
  std::function<void()> next = [&] {
    if (remaining == 0) {
      finished = true;
      return;
    }
    --remaining;
    const sim::Time t0 = loop.now();
    issue([&, t0] {
      lat.record(loop.now() - t0);
      next();
    });
  };
  next();
  const sim::Time deadline = loop.now() + max_sim_time;
  while (!finished && loop.now() < deadline) {
    loop.run_until(std::min(deadline, loop.now() + sim::msec(100)));
  }
  if (!finished) {
    std::fprintf(stderr, "WARNING: closed_loop timed out with %llu ops left\n",
                 static_cast<unsigned long long>(remaining));
  }
  return lat;
}

}  // namespace hyperloop::bench
