// Table 2: gCAS latency, Naïve-RDMA vs HyperLoop (group size 3, background
// tenants on the replicas).
//
// Paper: Naïve-RDMA 539 / 3928 / 11886 us (avg / p95 / p99) vs HyperLoop
// 10 / 13 / 14 us — a 53.9x average and 849x p99 reduction. The shape to
// reproduce: HyperLoop's average and tail are within a few microseconds of
// each other; the baseline's tail is ~3 orders of magnitude worse.
#include <cstdio>

#include "bench/common.h"

int main(int argc, char** argv) {
  using namespace hyperloop::bench;
  uint64_t ops = 2000;
  if (argc > 1) ops = std::strtoull(argv[1], nullptr, 10);

  std::printf("=== Table 2: gCAS latency (group=3, loaded replicas) ===\n");
  hyperloop::stats::Table table(
      {"system", "avg(us)", "p95(us)", "p99(us)"});

  hyperloop::stats::Histogram results[2];
  for (int which = 0; which < 2; ++which) {
    const Backend backend =
        which == 0 ? Backend::kNaiveEvent : Backend::kHyperLoop;
    auto cluster = make_cluster(3, /*seed=*/777 + which);
    for (size_t s = 0; s < 3; ++s) add_stress(*cluster, s, kPaperIntensity);
    auto group = make_group(*cluster, 3, backend);
    cluster->loop().run_until(hyperloop::sim::msec(20));

    uint64_t flip = 0;
    results[which] = closed_loop(
        cluster->loop(), ops, [&](std::function<void()> done) {
          // Alternate acquire/release so every CAS succeeds.
          const uint64_t expected = flip % 2 == 0 ? 0 : 1;
          const uint64_t desired = 1 - expected;
          ++flip;
          group->gcas(0, expected, desired,
                      hyperloop::core::ExecMap::all(3),
                      [done = std::move(done)](
                          const hyperloop::core::CasResult&) { done(); });
        });
  }

  const char* names[2] = {"Naive-RDMA", "HyperLoop"};
  for (int i = 0; i < 2; ++i) {
    table.add_row({names[i],
                   hyperloop::stats::Table::num(results[i].mean() / 1e3),
                   hyperloop::stats::Table::num(results[i].percentile(95) / 1e3),
                   hyperloop::stats::Table::num(results[i].percentile(99) / 1e3)});
  }
  table.print();
  std::printf("p99 reduction: %.1fx, avg reduction: %.1fx\n",
              double(results[0].percentile(99)) / double(results[1].percentile(99)),
              results[0].mean() / results[1].mean());
  return 0;
}
