// Ablation: the ring re-arm (refill) design (§5.1 "replicas wake up
// periodically off the critical path").
//
// Sweeps the replica refill period under loaded servers and compares with
// an idealized NIC self-refill. The claim to verify: as long as the ring
// is deep enough for the refill cadence, refill via CPU has *no* effect on
// the offloaded data path (identical latency, zero RNR stalls); only when
// refill starves does the RNR machinery kick in.
#include <cstdio>

#include "bench/common.h"
#include "core/hyperloop_group.h"

int main(int argc, char** argv) {
  using namespace hyperloop::bench;
  using hyperloop::core::HyperLoopGroup;
  uint64_t ops = 2000;
  if (argc > 1) ops = std::strtoull(argv[1], nullptr, 10);

  std::printf("=== Ablation: ring refill strategy (HyperLoop, group=3, 128B, loaded) ===\n");
  hyperloop::stats::Table table({"refill", "ring", "avg(us)", "p99(us)",
                                 "RNR stalls", "replica CPU(%)"});

  struct Cfg {
    const char* name;
    bool via_cpu;
    hyperloop::sim::Duration period;
    uint32_t ring;
  };
  const Cfg cfgs[] = {
      {"NIC self-refill", false, hyperloop::sim::usec(20), 512},
      {"CPU 20us", true, hyperloop::sim::usec(20), 512},
      {"CPU 100us", true, hyperloop::sim::usec(100), 512},
      {"CPU 1ms", true, hyperloop::sim::msec(1), 512},
      {"CPU 1ms, tiny ring", true, hyperloop::sim::msec(1), 64},
  };

  for (const Cfg& c : cfgs) {
    auto cluster = make_cluster(3, 6100 + c.ring + (c.via_cpu ? 1 : 0) +
                                       static_cast<uint64_t>(c.period));
    for (size_t s = 0; s < 3; ++s) add_stress(*cluster, s, kPaperIntensity);
    HyperLoopGroup::Config gc;
    gc.region_size = 4u << 20;
    gc.ring_slots = c.ring;
    gc.max_inflight = std::min(32u, c.ring / 2);
    gc.refill_via_cpu = c.via_cpu;
    gc.refill_period = c.period;
    std::vector<Server*> reps = {&cluster->server(0), &cluster->server(1),
                                 &cluster->server(2)};
    HyperLoopGroup group(cluster->server(3), reps, gc);
    cluster->loop().run_until(hyperloop::sim::msec(20));

    std::vector<uint8_t> payload(128, 0x42);
    group.client_store(0, payload.data(), 128);
    const hyperloop::sim::Time t0 = cluster->loop().now();
    auto lat = closed_loop(cluster->loop(), ops,
                           [&](std::function<void()> done) {
                             group.gwrite(0, 128, true, std::move(done));
                           });
    const double secs = hyperloop::sim::to_sec(cluster->loop().now() - t0);
    double cpu = 0;
    for (size_t r = 0; r < 3; ++r) {
      cpu += hyperloop::sim::to_sec(group.replica_cpu_time(r));
    }
    table.add_row({c.name, std::to_string(c.ring),
                   hyperloop::stats::Table::num(lat.mean() / 1e3),
                   hyperloop::stats::Table::num(lat.percentile(99) / 1e3),
                   std::to_string(group.total_rnr_stalls()),
                   hyperloop::stats::Table::num(cpu / (secs * 3) * 100, 3)});
  }
  table.print();
  return 0;
}
