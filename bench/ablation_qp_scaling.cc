// Ablation: NIC connection-cache scalability vs number of co-located
// groups (§7: "It is well known that the scalability of the RDMA NICs
// decreases with the number of active write-QPs. Chain replication has a
// good load balancing property where there is at most one active write-QP
// per active partition as opposed to several per partition such as in
// fan-out protocols.")
//
// With the on-NIC QP-context cache enabled, we sweep the number of
// co-located replication groups and compare chain vs fan-out topologies:
// fan-out concentrates K write QPs per group on the primary NIC, thrashing
// its context cache first.
#include <cstdio>

#include "bench/common.h"
#include "core/fanout_group.h"

int main(int argc, char** argv) {
  using namespace hyperloop::bench;
  using hyperloop::core::FanoutGroup;
  using hyperloop::core::HyperLoopGroup;
  uint64_t ops_per_group = 400;
  if (argc > 1) ops_per_group = std::strtoull(argv[1], nullptr, 10);

  std::printf(
      "=== Ablation: QP-context-cache scaling, chain vs fan-out (1KB "
      "gWRITE, 32-entry QP cache) ===\n");
  hyperloop::stats::Table table({"groups", "topology", "avg(us)", "p99(us)",
                                 "head-NIC miss rate(%)"});

  for (int ngroups : {1, 4, 16, 32}) {
    for (int topo = 0; topo < 2; ++topo) {
      Cluster::Config cc;
      cc.num_servers = 4;
      cc.server = testbed_server();
      cc.server.nic.qp_cache_entries = 32;
      cc.server.nic.qp_cache_miss_cost = hyperloop::sim::nsec(400);
      cc.seed = 9100 + static_cast<uint64_t>(ngroups) * 10 + topo;
      Cluster cluster(cc);
      std::vector<Server*> reps = {&cluster.server(0), &cluster.server(1),
                                   &cluster.server(2)};

      std::vector<std::unique_ptr<hyperloop::core::ReplicationGroup>> groups;
      for (int g = 0; g < ngroups; ++g) {
        if (topo == 0) {
          HyperLoopGroup::Config gc;
          gc.region_size = 1u << 20;
          gc.ring_slots = 256;
          gc.max_inflight = 16;
          groups.push_back(std::make_unique<HyperLoopGroup>(cluster.server(3),
                                                            reps, gc));
        } else {
          FanoutGroup::Config gc;
          gc.region_size = 1u << 20;
          gc.ring_slots = 256;
          gc.max_inflight = 16;
          groups.push_back(
              std::make_unique<FanoutGroup>(cluster.server(3), reps, gc));
        }
      }
      cluster.loop().run_until(hyperloop::sim::msec(5));

      // All groups run closed loops concurrently.
      hyperloop::stats::Histogram lat;
      std::vector<uint8_t> payload(1024, 0x21);
      uint64_t remaining = ops_per_group * static_cast<uint64_t>(ngroups);
      for (auto& gp : groups) {
        gp->client_store(0, payload.data(), 1024);
        auto step = std::make_shared<std::function<void(uint64_t)>>();
        auto* g = gp.get();
        *step = [&, g, step](uint64_t left) {
          if (left == 0) {
            cluster.loop().schedule_after(
                0, [step] { *step = nullptr; });
            return;
          }
          const auto t0 = cluster.loop().now();
          g->gwrite(0, 1024, true, [&, g, step, left, t0] {
            lat.record(cluster.loop().now() - t0);
            --remaining;
            (*step)(left - 1);
          });
        };
        (*step)(ops_per_group);
      }
      while (remaining > 0 &&
             cluster.loop().now() < hyperloop::sim::seconds(300)) {
        cluster.loop().run_until(cluster.loop().now() +
                                 hyperloop::sim::msec(10));
      }

      const auto& c0 = cluster.server(0).nic().counters();
      const double miss_rate =
          100.0 * double(c0.qp_cache_misses) /
          double(c0.qp_cache_misses + c0.qp_cache_hits + 1);
      table.add_row({std::to_string(ngroups), topo == 0 ? "chain" : "fan-out",
                     hyperloop::stats::Table::num(lat.mean() / 1e3),
                     hyperloop::stats::Table::num(lat.percentile(99) / 1e3),
                     hyperloop::stats::Table::num(miss_rate, 1)});
    }
  }
  table.print();
  return 0;
}
