// Wall-clock performance self-check for the simulator itself (google-
// benchmark). These are not paper experiments: they guard against
// regressions that would make the figure-reproduction benches impractical
// to run (the DES must sustain millions of events per second).
#include <benchmark/benchmark.h>

#include "apps/ycsb/workload.h"
#include "bench/common.h"
#include "sim/event_loop.h"
#include "stats/histogram.h"

namespace {

using namespace hyperloop;

void BM_EventLoop(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventLoop loop;
    int n = 0;
    std::function<void()> f = [&] {
      if (++n < 10000) loop.schedule_after(1, f);
    };
    loop.schedule_after(0, f);
    loop.run();
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventLoop);

void BM_HistogramRecord(benchmark::State& state) {
  stats::Histogram h;
  sim::Rng rng(1);
  for (auto _ : state) {
    h.record(static_cast<int64_t>(rng.next_below(10'000'000)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

void BM_HistogramPercentile(benchmark::State& state) {
  stats::Histogram h;
  sim::Rng rng(1);
  for (int i = 0; i < 100000; ++i) {
    h.record(static_cast<int64_t>(rng.next_below(10'000'000)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.percentile(99));
  }
}
BENCHMARK(BM_HistogramPercentile);

void BM_ZipfianSample(benchmark::State& state) {
  sim::Rng rng(2);
  sim::ZipfianGenerator z(1'000'000, 0.99);
  for (auto _ : state) {
    benchmark::DoNotOptimize(z.sample(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfianSample);

void BM_YcsbGenerate(benchmark::State& state) {
  apps::WorkloadGenerator gen(apps::WorkloadSpec::A(), 100000, sim::Rng(3));
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.next());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_YcsbGenerate);

void BM_HyperLoopGwriteSimulated(benchmark::State& state) {
  // Wall time to simulate one offloaded 128B gWRITE end to end.
  using namespace hyperloop::bench;
  auto cluster = make_cluster(3, 42);
  auto group = make_group(*cluster, 3, Backend::kHyperLoop);
  std::vector<uint8_t> payload(128, 1);
  group->client_store(0, payload.data(), 128);
  cluster->loop().run_until(sim::msec(1));
  for (auto _ : state) {
    bool done = false;
    group->gwrite(0, 128, true, [&] { done = true; });
    while (!done) {
      cluster->loop().run_until(cluster->loop().now() + sim::usec(50));
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HyperLoopGwriteSimulated);

void BM_IntervalSetChurn(benchmark::State& state) {
  nvm::IntervalSet s;
  sim::Rng rng(4);
  for (auto _ : state) {
    const uint64_t a = rng.next_below(1 << 20);
    if (rng.chance(0.7)) {
      s.insert(a, a + 64);
    } else {
      s.erase(a, a + 4096);
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IntervalSetChurn);

}  // namespace

BENCHMARK_MAIN();
