// Wall-clock performance self-check for the simulator itself (google-
// benchmark). These are not paper experiments: they guard against
// regressions that would make the figure-reproduction benches impractical
// to run (the DES must sustain millions of events per second).
#include <benchmark/benchmark.h>

#include "apps/kvstore/kvstore.h"
#include "apps/ycsb/driver.h"
#include "apps/ycsb/workload.h"
#include "bench/common.h"
#include "core/region_layout.h"
#include "core/wal.h"
#include "nvm/dirty_bitmap.h"
#include "nvm/interval_set.h"
#include "nvm/nvm_device.h"
#include "rdma/network.h"
#include "rdma/nic.h"
#include "sim/event_loop.h"
#include "sim/ring.h"
#include "stats/histogram.h"

namespace {

using namespace hyperloop;

// The simulator's heartbeat: schedule -> fire -> reschedule, exactly the
// shape of every NIC/network/scheduler hot path (a fresh small lambda per
// event, not a reused std::function).
void BM_EventLoop(benchmark::State& state) {
  struct Chain {
    sim::EventLoop* loop;
    int* n;
    void operator()() const {
      if (++*n < 10000) loop->schedule_after(1, Chain{loop, n});
    }
  };
  for (auto _ : state) {
    sim::EventLoop loop;
    int n = 0;
    loop.schedule_after(0, Chain{&loop, &n});
    loop.run();
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventLoop);

// Same chain, but the closure carries Packet-sized captured state — the
// shape of the real per-hop delivery closures in network.cc/nic.cc
// (~100 B Packet + this pointer). Callbacks beyond std::function's 16 B
// SBO used to heap-allocate on every schedule; the slab loop keeps them
// in its 112 B inline slot storage.
void BM_EventLoopPacketCapture(benchmark::State& state) {
  struct Blob {
    uint64_t w[12] = {};  // ~sizeof(rdma::Packet); 13 words would spill
                          // the 112 B Chain past the inline slot
  };
  struct Chain {
    sim::EventLoop* loop;
    int* n;
    Blob payload;
    void operator()() const {
      if (++*n < 10000) loop->schedule_after(1, Chain{loop, n, payload});
    }
  };
  static_assert(sizeof(Chain) <= sim::EventLoop::kInlineCallbackBytes);
  for (auto _ : state) {
    sim::EventLoop loop;
    int n = 0;
    loop.schedule_after(0, Chain{&loop, &n, Blob{}});
    loop.run();
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventLoopPacketCapture);

// Wide heap: many concurrently pending events, steady schedule/fire churn.
void BM_EventLoopWide(benchmark::State& state) {
  const int kPending = static_cast<int>(state.range(0));
  struct Tick {
    sim::EventLoop* loop;
    uint64_t* remaining;
    void operator()() const {
      if (*remaining == 0) return;
      --*remaining;
      loop->schedule_after(1 + (*remaining % 7), Tick{loop, remaining});
    }
  };
  for (auto _ : state) {
    sim::EventLoop loop;
    uint64_t remaining = 100000;
    for (int i = 0; i < kPending; ++i) {
      loop.schedule_after(i % 13, Tick{&loop, &remaining});
    }
    loop.run();
    benchmark::DoNotOptimize(remaining);
  }
  state.SetItemsProcessed(state.iterations() * (100000 + state.range(0)));
}
BENCHMARK(BM_EventLoopWide)->Arg(64)->Arg(1024);

// Schedule/cancel churn: timers that are armed and disarmed before firing
// (the RC retransmission-timer pattern — every ACK cancels a timer).
void BM_EventLoopScheduleCancel(benchmark::State& state) {
  sim::EventLoop loop;
  std::vector<sim::EventId> ids(256, 0);
  uint64_t i = 0;
  for (auto _ : state) {
    const size_t k = i % ids.size();
    if (ids[k] != 0) loop.cancel(ids[k]);
    ids[k] = loop.schedule_after(1000000, [] {});
    if (++i % 4096 == 0) loop.run_until(loop.now() + 1);  // drain dead entries
  }
  loop.run();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventLoopScheduleCancel);

void BM_HistogramRecord(benchmark::State& state) {
  stats::Histogram h;
  sim::Rng rng(1);
  for (auto _ : state) {
    h.record(static_cast<int64_t>(rng.next_below(10'000'000)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

void BM_HistogramPercentile(benchmark::State& state) {
  stats::Histogram h;
  sim::Rng rng(1);
  for (int i = 0; i < 100000; ++i) {
    h.record(static_cast<int64_t>(rng.next_below(10'000'000)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.percentile(99));
  }
}
BENCHMARK(BM_HistogramPercentile);

void BM_ZipfianSample(benchmark::State& state) {
  sim::Rng rng(2);
  sim::ZipfianGenerator z(1'000'000, 0.99);
  for (auto _ : state) {
    benchmark::DoNotOptimize(z.sample(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfianSample);

void BM_YcsbGenerate(benchmark::State& state) {
  apps::WorkloadGenerator gen(apps::WorkloadSpec::A(), 100000, sim::Rng(3));
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.next());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_YcsbGenerate);

void BM_HyperLoopGwriteSimulated(benchmark::State& state) {
  // Wall time to simulate one offloaded 128B gWRITE end to end.
  using namespace hyperloop::bench;
  auto cluster = make_cluster(3, 42);
  auto group = make_group(*cluster, 3, Backend::kHyperLoop);
  std::vector<uint8_t> payload(128, 1);
  group->client_store(0, payload.data(), 128);
  cluster->loop().run_until(sim::msec(1));
  for (auto _ : state) {
    bool done = false;
    group->gwrite(0, 128, true, [&] { done = true; });
    while (!done) {
      cluster->loop().run_until(cluster->loop().now() + sim::usec(50));
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HyperLoopGwriteSimulated);

// The raw NIC datapath, no servers/groups on top: two NICs, batched 128B
// WRITEs, measured in packets handled per wall-clock second (each WRITE is
// one request packet + one ACK through handle_packet on each side). This
// isolates the flat-table lookup + intrusive-window fast path from the CPU
// scheduler and replication logic.
void BM_NicPacketRx(benchmark::State& state) {
  using namespace hyperloop::rdma;
  sim::EventLoop loop;
  Network net(loop, Network::Config{});
  HostMemory mem_a(1 << 20), mem_b(1 << 20);
  Nic a(loop, net, mem_a, nullptr), b(loop, net, mem_b, nullptr);
  CompletionQueue* cq = a.create_cq(1 << 12);
  QueuePair* qa = a.create_qp(cq, nullptr, 1024);
  QueuePair* qb = b.create_qp(nullptr, nullptr, 1024);
  a.connect(qa, b.id(), qb->qpn);
  b.connect(qb, a.id(), qa->qpn);
  const Addr src = mem_a.alloc(8192);
  const Addr dst = mem_b.alloc(8192);
  MemoryRegion mr = b.register_mr(dst, 8192, kRemoteWrite);

  constexpr int kBatch = 64;
  const uint64_t rx_before = a.counters().packets_rx + b.counters().packets_rx;
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      a.post_send(qa, make_write(src, 0, dst + 64 * (i % 64), mr.rkey, 128, 1));
    }
    loop.run();
    Cqe out[kBatch];
    benchmark::DoNotOptimize(cq->poll_many(out, kBatch));
  }
  const uint64_t rx_after = a.counters().packets_rx + b.counters().packets_rx;
  state.SetItemsProcessed(static_cast<int64_t>(rx_after - rx_before));
}
BENCHMARK(BM_NicPacketRx);

// End-to-end packet throughput of the offloaded replication chain: a
// 3-replica HyperLoop group running pipelined 128B gWRITEs, reported as
// packets received per wall-clock second summed over every NIC (replicas +
// client). Unlike BM_HyperLoopGwriteSimulated (latency of one op), this
// keeps a window of operations in flight, so it stresses the per-packet
// fast path with busy windows and interleaved chain hops.
void BM_HyperLoopChainPacketsPerSec(benchmark::State& state) {
  using namespace hyperloop::bench;
  auto cluster = make_cluster(3, 42);
  auto group = make_group(*cluster, 3, Backend::kHyperLoop);
  std::vector<uint8_t> payload(128, 1);
  group->client_store(0, payload.data(), 128);
  cluster->loop().run_until(sim::msec(1));

  auto total_rx = [&] {
    uint64_t rx = 0;
    for (size_t i = 0; i < cluster->size(); ++i) {
      rx += cluster->server(i).nic().counters().packets_rx;
    }
    return rx;
  };

  constexpr int kWindow = 16;
  const uint64_t rx_before = total_rx();
  for (auto _ : state) {
    int outstanding = 0;
    for (int i = 0; i < kWindow; ++i) {
      ++outstanding;
      group->gwrite(0, 128, true, [&] { --outstanding; });
    }
    while (outstanding > 0) {
      cluster->loop().run_until(cluster->loop().now() + sim::usec(50));
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(total_rx() - rx_before));
}
BENCHMARK(BM_HyperLoopChainPacketsPerSec);

// Large-payload replication: one 16 KB - 256 KB gWRITE at a time through a
// 3-replica chain. At these sizes the wall clock is dominated by the real
// memmoves the datapath performs per hop (client DMA gather, per-hop
// forward gathers, per-sink NVM writes), not by per-packet bookkeeping —
// this is the copy-bound regime fig8's 128 B - 8 KB sweep never reaches.
// Ops rotate through four disjoint region slots so one op's source bytes
// are never overwritten while a predecessor still references them.
void BM_LargePayloadReplication(benchmark::State& state) {
  using namespace hyperloop::bench;
  const uint32_t len = static_cast<uint32_t>(state.range(0));
  auto cluster = make_cluster(3, 42);
  auto group = make_group(*cluster, 3, Backend::kHyperLoop);
  std::vector<uint8_t> payload(len, 0x5A);
  constexpr uint64_t kSlots = 4;
  for (uint64_t s = 0; s < kSlots; ++s) {
    group->client_store(s * len, payload.data(), len);
  }
  cluster->loop().run_until(sim::msec(1));
  uint64_t n = 0;
  const uint64_t copied_before = rdma::PayloadBuf::bytes_copied();
  for (auto _ : state) {
    bool done = false;
    group->gwrite((n++ % kSlots) * len, len, true, [&] { done = true; });
    while (!done) {
      cluster->loop().run_until(cluster->loop().now() + sim::usec(50));
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * len);
  // Copy discipline, observable in the bench output: 4.0 = one source
  // DMA-in + three sink DMA-outs (the zero-copy target for group=3).
  state.counters["copies_per_byte"] = benchmark::Counter(
      static_cast<double>(rdma::PayloadBuf::bytes_copied() - copied_before) /
      (static_cast<double>(state.iterations()) * len));
}
BENCHMARK(BM_LargePayloadReplication)
    ->Arg(16 << 10)
    ->Arg(64 << 10)
    ->Arg(256 << 10);

// The client-side op bookkeeping in isolation — no network, no simulated
// time: claim a sequence-indexed pending slot, park the completion
// callback inline, route overflow through the credit-wait ring, then
// complete (mask lookup, move the callback out, invoke). This is the
// per-op control-plane cost every gWRITE/gCAS pays on submit and ack; it
// used to be an unordered_map insert/erase plus a type-erased-callable
// heap spill per operation.
void BM_GroupOpSubmit(benchmark::State& state) {
  struct Slot {
    uint64_t seq = 0;
    bool live = false;
    core::Done done;
  };
  constexpr uint32_t kTable = 64, kMask = kTable - 1, kCredit = 16;
  std::vector<Slot> pending(kTable);
  sim::Ring<core::Done> waiting;
  uint64_t next_seq = 0, complete_seq = 0, inflight = 0;
  uint64_t sink = 0;

  auto issue = [&](core::Done d) {
    Slot& s = pending[next_seq & kMask];
    s.seq = next_seq;
    s.live = true;
    s.done = std::move(d);
    ++next_seq;
    ++inflight;
  };

  for (auto _ : state) {
    // Submit: credit-gated exactly like the groups' submit paths.
    core::Done done{[&sink] { ++sink; }};
    if (inflight >= kCredit) {
      waiting.push_back(std::move(done));
    } else {
      issue(std::move(done));
    }
    // Complete the oldest op once the window is full; steady state is one
    // submit + one completion (+ one ring pop) per item.
    if (inflight >= kCredit) {
      Slot& s = pending[complete_seq & kMask];
      core::Done d = std::move(s.done);
      s.live = false;
      ++complete_seq;
      --inflight;
      d();
      if (!waiting.empty() && inflight < kCredit) {
        core::Done w = std::move(waiting.front());
        waiting.pop_front();
        issue(std::move(w));
      }
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GroupOpSubmit);

// Replicated-WAL append throughput over the offloaded chain: windows of
// 128 B single-entry appends (record staged directly into the client
// region, replicated with gWRITE + tail-pointer gWRITE w/flush), drained
// with pipelined ExecuteAndAdvance so the log never fills. One item = one
// committed record.
void BM_WalAppendThroughput(benchmark::State& state) {
  using namespace hyperloop::bench;
  auto cluster = make_cluster(3, 42);
  auto group = make_group(*cluster, 3, Backend::kHyperLoop);
  core::RegionLayout layout;  // defaults fit make_group's 4 MiB region
  core::ReplicatedWal wal(*group, layout);
  cluster->loop().run_until(sim::msec(1));

  const std::vector<uint8_t> payload(128, 7);
  std::vector<core::ReplicatedWal::Entry> entries;
  entries.push_back({/*db_offset=*/256, payload});

  constexpr int kWindow = 8;
  auto spin = [&] {
    cluster->loop().run_until(cluster->loop().now() + sim::usec(50));
  };
  for (auto _ : state) {
    int pending = 0;
    for (int i = 0; i < kWindow; ++i) {
      if (wal.append(entries, [&](uint64_t) { --pending; })) ++pending;
    }
    while (pending > 0) spin();
    int execs = 0;
    while (wal.execute_and_advance([&] { --execs; })) ++execs;
    while (execs > 0) spin();
  }
  state.SetItemsProcessed(state.iterations() * kWindow);
}
BENCHMARK(BM_WalAppendThroughput);

// The batched WAL datapath at full depth: bursts of appends deep enough
// to keep the group-commit window loaded, so records ride multi-extent
// gWRITEV batches (one chain traversal for up to kCapacity-1 records plus
// the shared tail write) instead of per-record traversals. One item = one
// committed record; the records-per-gwritev ratio is reported as a
// counter so a regression that silently de-batches is visible even if
// wall time stays flat.
void BM_WalAppendBatched(benchmark::State& state) {
  using namespace hyperloop::bench;
  auto cluster = make_cluster(3, 42);
  auto group = make_group(*cluster, 3, Backend::kHyperLoop);
  core::RegionLayout layout;  // defaults fit make_group's 4 MiB region
  core::ReplicatedWal::Options opts;
  opts.staged_capacity = 64;
  core::ReplicatedWal wal(*group, layout, opts);
  cluster->loop().run_until(sim::msec(1));

  const std::vector<uint8_t> payload(128, 7);
  std::vector<core::ReplicatedWal::Entry> entries;
  entries.push_back({/*db_offset=*/256, payload});

  constexpr int kWindow = 32;
  auto spin = [&] {
    cluster->loop().run_until(cluster->loop().now() + sim::usec(50));
  };
  for (auto _ : state) {
    int pending = 0;
    for (int i = 0; i < kWindow; ++i) {
      if (wal.append(entries, [&](uint64_t) { --pending; })) ++pending;
    }
    while (pending > 0) spin();
    int execs = 0;
    while (wal.execute_and_advance([&] { --execs; })) ++execs;
    while (execs > 0) spin();
  }
  state.SetItemsProcessed(state.iterations() * kWindow);
  if (wal.stats().gwritev_batches > 0) {
    state.counters["records_per_gwritev"] = benchmark::Counter(
        static_cast<double>(wal.stats().records_appended) /
        static_cast<double>(wal.stats().gwritev_batches));
  }
}
BENCHMARK(BM_WalAppendBatched);

// Aggregate replication throughput across independent chains (DESIGN.md
// "Sharded datapath"): a sharded KvStore over K HyperLoop chains, one
// NIC per chain, driven by a pipelined update-heavy uniform workload.
// The scaling claim lives in *simulated* time — each chain's WAL keeps
// one group-commit batch outstanding (latency-bound), so K independent
// chains commit ~K times the records per simulated second. The usual
// wall-clock items_per_second still guards simulator cost; the
// sim_items_per_sec counter carries the scaling signal, and
// compare_selfcheck.py gates BM_ShardedThroughput/4 at >= 1.8x
// BM_ShardedThroughput/1 on it.
void BM_ShardedThroughput(benchmark::State& state) {
  using namespace hyperloop::bench;
  const auto shards = static_cast<uint32_t>(state.range(0));
  constexpr uint64_t kSlice = 1u << 20;
  auto cluster =
      make_cluster(3, 42, 16, /*num_nics=*/static_cast<int>(shards));
  auto group = make_sharded_group(*cluster, 3, shards, kSlice);
  std::vector<core::Server*> reps;
  for (int i = 0; i < 3; ++i) reps.push_back(&cluster->server(i));

  apps::KvStore::Config kc;
  kc.layout.region_size = kSlice;  // one slice; the group spans K of them
  kc.layout.log_size = 256u << 10;
  kc.layout.num_locks = 16;
  kc.shards = shards;
  kc.value_size = 128;
  kc.replicas_sync = false;
  apps::KvStore kv(*group, cluster->server(3), reps, kc);
  constexpr uint64_t kRecords = 2048;
  kv.bulk_load(kRecords);
  cluster->loop().run_until(cluster->loop().now() + sim::msec(100));

  apps::WorkloadSpec spec;  // update-heavy, uniform: every chain loaded
  spec.read = 0.05;
  spec.update = 0.95;
  spec.dist = apps::WorkloadSpec::KeyDist::kUniform;
  spec.value_size = 128;

  uint64_t ops_done = 0;
  sim::Duration sim_elapsed = 0;
  uint64_t seed = 7;
  for (auto _ : state) {
    apps::WorkloadGenerator gen(spec, kRecords, sim::Rng(seed++));
    apps::YcsbDriver::Config dc;
    dc.threads = 8;
    dc.batch = 8;  // 64 outstanding: enough demand to load 4 chains
    dc.total_ops = 2000;
    apps::YcsbDriver driver(cluster->loop(), kv, gen, dc);
    bool finished = false;
    const sim::Time t0 = cluster->loop().now();
    driver.start([&] { finished = true; });
    while (!finished) {
      cluster->loop().run_until(cluster->loop().now() + sim::usec(200));
    }
    sim_elapsed += cluster->loop().now() - t0;
    ops_done += driver.completed();
  }
  state.SetItemsProcessed(static_cast<int64_t>(ops_done));
  state.counters["sim_items_per_sec"] = benchmark::Counter(
      static_cast<double>(ops_done) / sim::to_sec(sim_elapsed));
}
BENCHMARK(BM_ShardedThroughput)->Arg(1)->Arg(2)->Arg(4);

// One-sided read throughput on a single chain: a RemoteReader pool with
// round-robin replica selection, 1 KB reads at a pipelined depth of 32.
// The replica-spread design claim in one number — response serialization
// is charged at the *replica's* TX port, so rotating reads across three
// replicas triples the aggregate response bandwidth a single client can
// draw. sim_items_per_sec carries the simulated-time signal.
void BM_ReadThroughput(benchmark::State& state) {
  using namespace hyperloop::bench;
  constexpr uint64_t kRegion = 4u << 20;
  auto cluster = make_cluster(3, 42);
  std::vector<core::Server*> reps;
  for (int i = 0; i < 3; ++i) reps.push_back(&cluster->server(i));
  core::HyperLoopGroup::Config gc;
  gc.region_size = kRegion;
  gc.ring_slots = 2048;
  gc.max_inflight = 64;
  core::HyperLoopGroup group(cluster->server(3), reps, gc);

  std::vector<core::RemoteReader::Target> targets;
  for (size_t i = 0; i < 3; ++i) {
    targets.push_back({&group.replica_server(i), group.replica_region_base(i),
                       group.replica_data_rkey(i)});
  }
  core::RemoteReader::Options opts;
  opts.policy = core::RemoteReader::Policy::kRoundRobin;
  core::RemoteReader reader(cluster->server(3), std::move(targets), opts);
  cluster->loop().run_until(cluster->loop().now() + sim::msec(1));

  constexpr uint32_t kLen = 1024;
  constexpr int kDepth = 32;
  constexpr int kOpsPerIter = 2000;
  uint64_t ops_done = 0;
  sim::Duration sim_elapsed = 0;
  uint64_t cursor = 0;
  for (auto _ : state) {
    int done = 0, issued = 0;
    const sim::Time t0 = cluster->loop().now();
    while (done < kOpsPerIter) {
      while (issued < kOpsPerIter && issued - done < kDepth) {
        const uint64_t off = (cursor++ * 4099) % (kRegion - kLen);
        reader.read(off, kLen, [&done](core::ReadView) { ++done; });
        ++issued;
      }
      // Refill slices must be shorter than a read's round trip or the
      // slice, not the datapath, caps throughput at kDepth per slice.
      cluster->loop().run_until(cluster->loop().now() + sim::usec(2));
    }
    sim_elapsed += cluster->loop().now() - t0;
    ops_done += static_cast<uint64_t>(done);
  }
  state.SetItemsProcessed(static_cast<int64_t>(ops_done));
  state.counters["sim_items_per_sec"] = benchmark::Counter(
      static_cast<double>(ops_done) / sim::to_sec(sim_elapsed));
}
BENCHMARK(BM_ReadThroughput);

// Batched scatter scans across K shard chains (DESIGN.md "Read
// datapath"): each scan is one 64 KB striped batch — one extent per
// shard, issued as a single readv through the ShardedReader and rejoined
// by its pooled scatter-join (the shape kvstore/docstore remote scans
// produce). Responses serialize on the *replica-side* per-chain NIC
// ports, so K shards give a client K times the response bandwidth per
// replica; with round-robin replica spread on top, 4 shards must beat 1
// shard by >= 1.8x on sim_items_per_sec (compare_selfcheck.py gates the
// ratio, wall-clock-immune).
void BM_ShardedScan(benchmark::State& state) {
  using namespace hyperloop::bench;
  const auto shards = static_cast<uint32_t>(state.range(0));
  constexpr uint64_t kSlice = 1u << 20;
  auto cluster =
      make_cluster(3, 42, 16, /*num_nics=*/static_cast<int>(shards));
  auto group = make_sharded_group(*cluster, 3, shards, kSlice);
  auto reader = make_sharded_reader(*group, cluster->server(3));
  cluster->loop().run_until(cluster->loop().now() + sim::msec(1));

  constexpr uint32_t kScanBytes = 64 << 10;
  constexpr int kDepth = 16;
  constexpr int kOpsPerIter = 400;
  const uint32_t per_shard = kScanBytes / shards;
  uint64_t ops_done = 0;
  sim::Duration sim_elapsed = 0;
  uint64_t cursor = 0;
  for (auto _ : state) {
    int done = 0, issued = 0;
    const sim::Time t0 = cluster->loop().now();
    while (done < kOpsPerIter) {
      while (issued < kOpsPerIter && issued - done < kDepth) {
        core::ReadVec v;
        const uint64_t wander = (cursor++ * 8209) % (kSlice - per_shard);
        for (uint32_t s = 0; s < shards; ++s) {
          v.push_back({s * kSlice + wander, per_shard});
        }
        reader->readv(v, [&done](core::ReadView) { ++done; });
        ++issued;
      }
      // Same slice rationale as BM_ReadThroughput: refill faster than a
      // scan completes so the pipeline, not the slice, sets throughput.
      cluster->loop().run_until(cluster->loop().now() + sim::usec(2));
    }
    sim_elapsed += cluster->loop().now() - t0;
    ops_done += static_cast<uint64_t>(done);
  }
  state.SetItemsProcessed(static_cast<int64_t>(ops_done));
  state.counters["sim_items_per_sec"] = benchmark::Counter(
      static_cast<double>(ops_done) / sim::to_sec(sim_elapsed));
  // Replica read spread: min/max fragment share across the chain's
  // replicas (1.0 = perfectly even; a collapse to head-only shows here).
  uint64_t lo = ~uint64_t{0}, hi = 0;
  for (size_t r = 0; r < 3; ++r) {
    const uint64_t f = reader->replica_frags(r);
    lo = f < lo ? f : lo;
    hi = f > hi ? f : hi;
  }
  if (hi > 0) {
    state.counters["replica_read_spread"] = benchmark::Counter(
        static_cast<double>(lo) / static_cast<double>(hi));
  }
}
BENCHMARK(BM_ShardedScan)->Arg(1)->Arg(2)->Arg(4);

void BM_IntervalSetChurn(benchmark::State& state) {
  nvm::IntervalSet s;
  sim::Rng rng(4);
  for (auto _ : state) {
    const uint64_t a = rng.next_below(1 << 20);
    if (rng.chance(0.7)) {
      s.insert(a, a + 64);
    } else {
      s.erase(a, a + 4096);
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IntervalSetChurn);

// Same op mix as BM_IntervalSetChurn, on the production tracker: the
// two-level DirtyBitmap that replaced the std::map interval set in
// NvmDevice. Apples-to-apples measurement of the swap.
void BM_DirtyBitmapChurn(benchmark::State& state) {
  nvm::DirtyBitmap s(1 << 21);
  sim::Rng rng(4);
  for (auto _ : state) {
    const uint64_t a = rng.next_below(1 << 20);
    if (rng.chance(0.7)) {
      s.mark(a, a + 64);
    } else {
      s.clear_range(a, a + 4096);
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DirtyBitmapChurn);

// The full durability-tracker hot loop as the simulator drives it: stores
// into the NVM range funnel through HostMemory's range-filtered observer
// into the dirty bitmap, with periodic range persists and gFLUSH-style
// full write-backs. One item = one simulated 128 B store.
void BM_NvmDirtyTracking(benchmark::State& state) {
  using namespace hyperloop::rdma;
  HostMemory mem(8 << 20);
  nvm::NvmDevice nvm(mem, 4 << 20);
  const Addr region = nvm.alloc(1 << 20);
  sim::Rng rng(7);
  uint8_t payload[128] = {1};
  uint64_t n = 0;
  for (auto _ : state) {
    const uint64_t off = rng.next_below((1 << 20) - sizeof(payload));
    mem.write(region + off, payload, sizeof(payload));
    if ((++n & 63) == 0) {
      nvm.persist(region + off, sizeof(payload));
    }
    if ((n & 4095) == 0) {
      nvm.persist_all();  // gFLUSH
      benchmark::DoNotOptimize(nvm.dirty_bytes());
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NvmDirtyTracking);

// The cost a non-NVM store pays for write observation: HostMemory with
// range(0) observers watching a low window, measured on 64 B stores far
// outside every watched range (WQE patches, CQE pushes, payload staging).
// With range filtering this is one compare regardless of observer count.
void BM_HostMemoryWrite(benchmark::State& state) {
  using namespace hyperloop::rdma;
  const int kObservers = static_cast<int>(state.range(0));
  HostMemory mem(4 << 20);
  uint64_t observed = 0;
  const Addr watched = mem.alloc(1 << 20);  // low range: the "NVM" window
  for (int i = 0; i < kObservers; ++i) {
    mem.add_write_observer(watched, watched + (1 << 20),
                           [&observed](Addr, size_t) { ++observed; });
  }
  const Addr hot = mem.alloc(1 << 16);  // far above every watched window
  uint8_t payload[64] = {42};
  uint64_t n = 0;
  for (auto _ : state) {
    mem.write(hot + ((n++ & 1023) << 6), payload, sizeof(payload));
  }
  benchmark::DoNotOptimize(observed);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HostMemoryWrite)->Arg(0)->Arg(1)->Arg(4);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): stamp the *benchmark binary's*
// build type into the JSON context. The stock "library_build_type" key
// reflects how the google-benchmark library was compiled (debug in this
// environment), not this binary — comparing numbers from a debug-built
// selfcheck is meaningless, so the compare gate keys off this field.
int main(int argc, char** argv) {
#ifdef NDEBUG
  benchmark::AddCustomContext("binary_build_type", "release");
#else
  benchmark::AddCustomContext("binary_build_type", "debug");
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
