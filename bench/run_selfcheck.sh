#!/usr/bin/env sh
# Runs the perf self-check benchmarks and writes BENCH_selfcheck.json at
# the repo root (machine-readable google-benchmark JSON, consumed by CI
# and by EXPERIMENTS.md updates).
#
# Usage: bench/run_selfcheck.sh [build-dir] [out-file]
set -eu

ROOT=$(cd "$(dirname "$0")/.." && pwd)
BUILD=${1:-"$ROOT/build"}
OUT=${2:-"$ROOT/BENCH_selfcheck.json"}

BIN="$BUILD/bench/perf_selfcheck"
if [ ! -x "$BIN" ]; then
  echo "error: $BIN not built (cmake --build $BUILD --target perf_selfcheck)" >&2
  exit 1
fi

# --benchmark_min_time takes a bare number (seconds) on the system
# google-benchmark; newer releases also accept the "1s" form.
"$BIN" \
  --benchmark_min_time=1 \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json \
  --benchmark_counters_tabular=true

# Provenance gate: numbers from a debug-built selfcheck binary are not
# comparable to anything — refuse to publish them. ("binary_build_type" is
# stamped by perf_selfcheck's main; the stock library_build_type key only
# describes how the google-benchmark *library* was compiled.)
if grep -q '"binary_build_type": *"debug"' "$OUT"; then
  rm -f "$OUT"
  echo "error: perf_selfcheck was built without NDEBUG (debug build);" >&2
  echo "       refusing to write $OUT. Rebuild with" >&2
  echo "       -DCMAKE_BUILD_TYPE=Release (or RelWithDebInfo)." >&2
  exit 1
fi
if ! grep -q '"binary_build_type": *"release"' "$OUT"; then
  rm -f "$OUT"
  echo "error: $OUT carries no binary_build_type provenance" >&2
  exit 1
fi

echo "wrote $OUT"
