// Figure 2: the motivating experiment. Native (kernel-TCP) replicated
// document stores on 3 servers, YCSB against every replica-set.
//
//  (a) Latency and context switches grow with the number of co-located
//      replica-sets (9 -> 27) at 16 cores per machine.
//  (b) With 18 replica-sets, latency and context switches *fall* as the
//      number of cores per machine grows (2 -> 16): the bottleneck is CPU
//      scheduling, not the network.
//
// Each replica-set is one DocStore over a TcpReplicationGroup whose
// primary (front end) runs on server (set % 3) and whose two backups run
// on the other two servers — the paper's MongoDB deployment shape. No
// artificial stress load: the co-located sets themselves are the tenants.
#include <cstdio>
#include <memory>

#include "apps/docstore/docstore.h"
#include "apps/ycsb/driver.h"
#include "bench/common.h"

namespace hyperloop::bench {
namespace {

using apps::DocStore;
using apps::WorkloadGenerator;
using apps::WorkloadSpec;
using apps::YcsbDriver;

struct Result {
  stats::Histogram lat;
  uint64_t context_switches = 0;
};

Result run_config(int replica_sets, int cores, uint64_t ops_per_set,
                  uint64_t records, uint64_t seed) {
  Cluster::Config cc;
  cc.num_servers = 3;
  cc.server = testbed_server(cores);
  cc.server.mem_capacity = 256u << 20;
  cc.server.nvm_size = 128u << 20;
  cc.seed = seed;
  Cluster cluster(cc);

  core::RegionLayout layout;
  layout.region_size = 2u << 20;
  layout.log_size = 512 << 10;
  layout.num_locks = 64;

  struct Set {
    std::unique_ptr<core::TcpReplicationGroup> group;
    std::unique_ptr<DocStore> store;
    std::unique_ptr<WorkloadGenerator> gen;
    std::unique_ptr<YcsbDriver> driver;
  };
  std::vector<Set> sets(static_cast<size_t>(replica_sets));
  int complete = 0;

  for (int j = 0; j < replica_sets; ++j) {
    Set& set = sets[static_cast<size_t>(j)];
    Server& primary = cluster.server(static_cast<size_t>(j % 3));
    std::vector<Server*> backups = {
        &cluster.server(static_cast<size_t>((j + 1) % 3)),
        &cluster.server(static_cast<size_t>((j + 2) % 3))};
    core::TcpReplicationGroup::Config gc;
    gc.region_size = layout.region_size;
    // MongoDB-weight replication work per message (oplog apply, journal).
    gc.per_message_cpu = sim::usec(20);
    set.group = std::make_unique<core::TcpReplicationGroup>(primary, backups,
                                                            gc);
    DocStore::Config dc;
    dc.layout = layout;
    dc.value_size = 1024;
    // MongoDB-weight front end: query parse/plan/marshal (§6.2 notes the
    // client software stack dominates what remains after offload).
    dc.op_cpu = sim::usec(50);
    dc.use_read_locks = false;
    set.store = std::make_unique<DocStore>(*set.group, primary, dc);
    set.store->bulk_load(records);

    WorkloadSpec spec = WorkloadSpec::A();
    spec.value_size = 1024;
    set.gen = std::make_unique<WorkloadGenerator>(spec, records,
                                                  cluster.fork_rng());
    YcsbDriver::Config drc;
    drc.threads = 6;
    drc.total_ops = ops_per_set;
    set.driver =
        std::make_unique<YcsbDriver>(cluster.loop(), *set.store, *set.gen, drc);
  }
  cluster.loop().run_until(cluster.loop().now() + sim::msec(200));

  const uint64_t ctx0 = cluster.server(0).sched().total_context_switches() +
                        cluster.server(1).sched().total_context_switches() +
                        cluster.server(2).sched().total_context_switches();
  const sim::Time t0 = cluster.loop().now();
  for (auto& set : sets) set.driver->start([&] { ++complete; });
  while (complete < replica_sets &&
         cluster.loop().now() < t0 + sim::seconds(1800)) {
    cluster.loop().run_until(cluster.loop().now() + sim::msec(200));
  }

  Result r;
  for (auto& set : sets) r.lat.merge(set.driver->writes());
  r.context_switches =
      cluster.server(0).sched().total_context_switches() +
      cluster.server(1).sched().total_context_switches() +
      cluster.server(2).sched().total_context_switches() - ctx0;
  if (complete < replica_sets) {
    std::fprintf(stderr, "(config %d sets / %d cores timed out: %d/%d)\n",
                 replica_sets, cores, complete, replica_sets);
  }
  return r;
}

void sweep_sets(uint64_t ops, uint64_t records) {
  std::printf(
      "=== Figure 2(a): latency vs number of replica-sets (16 cores) ===\n");
  stats::Table table({"replica-sets", "avg(ms)", "p95(ms)", "p99(ms)",
                      "ctx-switches", "ctx (norm)"});
  std::vector<Result> results;
  uint64_t max_ctx = 1;
  const std::vector<int> sweep = {9, 15, 21, 27};
  for (int sets : sweep) {
    results.push_back(run_config(sets, 16, ops, records, 42 + sets));
    max_ctx = std::max(max_ctx, results.back().context_switches);
  }
  for (size_t i = 0; i < sweep.size(); ++i) {
    const Result& r = results[i];
    table.add_row({std::to_string(sweep[i]),
                   stats::Table::num(r.lat.mean() / 1e6, 2),
                   stats::Table::num(r.lat.percentile(95) / 1e6, 2),
                   stats::Table::num(r.lat.percentile(99) / 1e6, 2),
                   std::to_string(r.context_switches),
                   stats::Table::num(double(r.context_switches) / max_ctx, 2)});
  }
  table.print();
  std::printf("\n");
}

void sweep_cores(uint64_t ops, uint64_t records) {
  std::printf(
      "=== Figure 2(b): latency vs cores per machine (18 replica-sets) "
      "===\n");
  stats::Table table({"cores", "avg(ms)", "p95(ms)", "p99(ms)",
                      "ctx-switches", "ctx (norm)"});
  std::vector<Result> results;
  uint64_t max_ctx = 1;
  const std::vector<int> sweep = {4, 8, 12, 16};
  for (int cores : sweep) {
    results.push_back(run_config(18, cores, ops, records, 99 + cores));
    max_ctx = std::max(max_ctx, results.back().context_switches);
  }
  for (size_t i = 0; i < sweep.size(); ++i) {
    const Result& r = results[i];
    table.add_row({std::to_string(sweep[i]),
                   stats::Table::num(r.lat.mean() / 1e6, 2),
                   stats::Table::num(r.lat.percentile(95) / 1e6, 2),
                   stats::Table::num(r.lat.percentile(99) / 1e6, 2),
                   std::to_string(r.context_switches),
                   stats::Table::num(double(r.context_switches) / max_ctx, 2)});
  }
  table.print();
}

}  // namespace
}  // namespace hyperloop::bench

int main(int argc, char** argv) {
  uint64_t ops = 400;
  uint64_t records = 800;
  if (argc > 1) ops = std::strtoull(argv[1], nullptr, 10);
  if (argc > 2) records = std::strtoull(argv[2], nullptr, 10);
  hyperloop::bench::sweep_sets(ops, records);
  hyperloop::bench::sweep_cores(ops, records);
  return 0;
}
