// Figure 12: MongoDB (our DocStore) latency distribution across YCSB
// workloads A, B, C, D, E, F — native (kernel-TCP) replication vs
// HyperLoop-enabled replication, with 10:1 co-located tenants.
//
// Paper's shape: HyperLoop cuts insert/update average latency by ~79%,
// shrinks the avg<->p99 gap by ~81%, and drops backup-CPU utilization
// from ~100% (saturated) to ~0%. Reads improve less (they were already
// local); scans are dominated by cursor CPU either way.
#include <cstdio>

#include "apps/docstore/docstore.h"
#include "apps/ycsb/driver.h"
#include "bench/common.h"

int main(int argc, char** argv) {
  using namespace hyperloop::bench;
  using namespace hyperloop::apps;
  uint64_t ops = 800;
  if (argc > 1) ops = std::strtoull(argv[1], nullptr, 10);
  const uint64_t records = 4000;
  const uint32_t value_size = 1024;

  for (int which = 0; which < 2; ++which) {
    const bool hyper = which == 1;
    std::printf("=== Figure 12(%c): DocStore with %s replication ===\n",
                hyper ? 'b' : 'a', hyper ? "HyperLoop" : "native (TCP)");
    hyperloop::stats::Table table({"workload", "avg(ms)", "p95(ms)",
                                   "p99(ms)", "writes avg(ms)",
                                   "writes p99(ms)", "backup CPU(%)"});

    for (char w : {'A', 'B', 'C', 'D', 'E', 'F'}) {
      // Primary (front end) on server 0; backups on servers 1 and 2.
      auto cluster = make_cluster(2, 1000 + which * 100 + w);
      // In this experiment server index 2 (the last) hosts the client
      // (primary); 0 and 1 are the backups. All are co-located with
      // tenants.
      for (size_t s = 0; s < cluster->size(); ++s) {
        add_stress(*cluster, s, kPaperIntensity);
      }

      hyperloop::core::RegionLayout layout;
      layout.region_size = 16u << 20;
      layout.log_size = 1u << 20;
      layout.num_locks = 256;
      auto group = make_group(
          *cluster, 2, hyper ? Backend::kHyperLoop : Backend::kTcp,
          layout.region_size);

      DocStore::Config dc;
      dc.layout = layout;
      dc.value_size = value_size;
      dc.use_read_locks = false;  // reads served from the primary's copy
      DocStore store(*group, cluster->server(cluster->size() - 1), dc);
      store.bulk_load(records);
      cluster->loop().run_until(cluster->loop().now() +
                                hyperloop::sim::msec(200));

      WorkloadSpec spec = WorkloadSpec::by_name(w);
      spec.value_size = value_size;
      WorkloadGenerator gen(spec, records, cluster->fork_rng());
      YcsbDriver::Config drc;
      drc.threads = 4;
      drc.total_ops = ops;
      YcsbDriver driver(cluster->loop(), store, gen, drc);

      const hyperloop::sim::Time t0 = cluster->loop().now();
      bool complete = false;
      driver.start([&] { complete = true; });
      while (!complete &&
             cluster->loop().now() < t0 + hyperloop::sim::seconds(1200)) {
        cluster->loop().run_until(cluster->loop().now() +
                                  hyperloop::sim::msec(100));
      }
      const double secs = hyperloop::sim::to_sec(cluster->loop().now() - t0);

      double backup_cpu = 0;
      for (size_t r = 0; r < 2; ++r) {
        if (auto* tg = dynamic_cast<hyperloop::core::TcpReplicationGroup*>(
                group.get())) {
          backup_cpu += hyperloop::sim::to_sec(tg->replica_cpu_time(r));
        } else if (auto* hg = dynamic_cast<hyperloop::core::HyperLoopGroup*>(
                       group.get())) {
          backup_cpu += hyperloop::sim::to_sec(hg->replica_cpu_time(r));
        }
      }
      backup_cpu = backup_cpu / (secs * 2) * 100.0;

      const auto all = driver.overall();
      const auto wr = driver.writes();
      table.add_row(
          {std::string(1, w), hyperloop::stats::Table::num(all.mean() / 1e6, 2),
           hyperloop::stats::Table::num(all.percentile(95) / 1e6, 2),
           hyperloop::stats::Table::num(all.percentile(99) / 1e6, 2),
           hyperloop::stats::Table::num(wr.count() ? wr.mean() / 1e6 : 0, 2),
           hyperloop::stats::Table::num(
               wr.count() ? wr.percentile(99) / 1e6 : 0, 2),
           hyperloop::stats::Table::num(backup_cpu, 2)});
      if (!complete) std::printf("(workload %c timed out)\n", w);
    }
    table.print();
    std::printf("\n");
  }
  return 0;
}
