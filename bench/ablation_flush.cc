// Ablation: interleaved gFLUSH on/off (§4.2 design choice).
//
// Measures (a) the latency cost of the durability flush down the chain and
// (b) what it buys: bytes at risk (volatile on some replica) at the instant
// each ACK arrives, and actual data loss under injected power failure.
// Without gFLUSH the NIC ACKs from its volatile cache — writes are fast
// but the "committed" data can evaporate.
#include <cstdio>

#include "bench/common.h"

int main(int argc, char** argv) {
  using namespace hyperloop::bench;
  uint64_t ops = 1500;
  if (argc > 1) ops = std::strtoull(argv[1], nullptr, 10);

  std::printf("=== Ablation: interleaved gFLUSH on/off (HyperLoop, group=3) ===\n");
  hyperloop::stats::Table table(
      {"size(B)", "flush", "avg(us)", "p99(us)", "acked-at-risk(%)",
       "lost-on-crash(%)"});

  for (uint32_t size : {128u, 1024u, 8192u}) {
    for (int flush = 1; flush >= 0; --flush) {
      auto cluster = make_cluster(3, 5000 + size + flush);
      auto group_base = make_group(*cluster, 3, Backend::kHyperLoop);
      auto* group =
          static_cast<hyperloop::core::HyperLoopGroup*>(group_base.get());
      cluster->loop().run_until(hyperloop::sim::msec(5));

      std::vector<uint8_t> payload(size, 0x77);
      group->client_store(0, payload.data(), size);

      uint64_t at_risk_acks = 0;
      auto lat = closed_loop(
          cluster->loop(), ops, [&](std::function<void()> done) {
            group->gwrite(0, size, flush != 0,
                          [&, done = std::move(done)] {
                            // At ACK time, is the write durable everywhere?
                            for (size_t r = 0; r < 3; ++r) {
                              if (!group->replica_server(r).nvm().is_durable(
                                      group->replica_region_base(r), size)) {
                                ++at_risk_acks;
                                break;
                              }
                            }
                            done();
                          });
          });

      // Power failure on every replica right after the run: how many
      // replicas lost the last acknowledged bytes?
      int lost = 0;
      for (size_t r = 0; r < 3; ++r) {
        group->replica_server(r).nvm().crash();
        std::vector<uint8_t> out(size);
        group->replica_load(r, 0, out.data(), size);
        if (out != payload) ++lost;
      }
      table.add_row(
          {std::to_string(size), flush ? "on" : "off",
           hyperloop::stats::Table::num(lat.mean() / 1e3),
           hyperloop::stats::Table::num(lat.percentile(99) / 1e3),
           hyperloop::stats::Table::num(100.0 * at_risk_acks / ops, 1),
           hyperloop::stats::Table::num(100.0 * lost / 3, 0)});
    }
  }
  table.print();
  return 0;
}
