#!/usr/bin/env python3
"""Compare two perf_selfcheck JSON dumps and fail on throughput regressions.

Usage: compare_selfcheck.py BASELINE.json CANDIDATE.json [--threshold 0.15]

For every benchmark present in BOTH files that reports items_per_second,
the candidate must not be more than `threshold` (default 15%) slower than
the baseline. Benchmarks that exist on only one side are reported but do
not fail the run (new benchmarks are allowed to appear; retired ones to
disappear). Exit status 1 iff at least one regression exceeds the
threshold — this is the CI gate that keeps BENCH_selfcheck.json honest.

Wall-clock benchmarks are noisy on shared CI runners, which is why the
gate is deliberately loose (15%, on top of google-benchmark's own
--benchmark_min_time averaging). It exists to catch step-function
regressions (an accidental O(n) lookup, a reintroduced per-packet
allocation), not 2% drift.

Both dumps must carry context.binary_build_type == "release" (stamped by
perf_selfcheck's main from NDEBUG): a debug-built side makes every delta
meaningless, so the comparison fails outright instead of "passing" a
bogus 10x regression or improvement.

Sharded-scaling gate: when the candidate carries BM_ShardedThroughput
results, the 4-shard run's sim_items_per_sec counter (simulated-time
throughput: committed ops / simulated seconds) must be at least
--shard-scaling (default 1.8) times the 1-shard run's. This is the
ISSUE-8 claim — K independent chains beat one chain's latency-bound
group-commit ceiling — checked on the candidate alone, in simulated
time, so it is immune to wall-clock noise.
"""

import argparse
import json
import sys


def load_items_per_second(path):
    with open(path) as f:
        data = json.load(f)
    build_type = data.get("context", {}).get("binary_build_type")
    out = {}
    counters = {}
    for bm in data.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev) if repetitions were used.
        if bm.get("run_type") == "aggregate":
            continue
        ips = bm.get("items_per_second")
        if ips:
            out[bm["name"]] = float(ips)
        # User counters land as extra numeric fields on the benchmark row.
        for key in ("sim_items_per_sec",):
            if key in bm:
                counters.setdefault(bm["name"], {})[key] = float(bm[key])
    return out, counters, build_type


def check_shard_scaling(counters, bench, min_ratio, what):
    """Gates a benchmark's 4-shard/1-shard simulated-throughput ratio.

    Returns an error string, or None. Enforced only when both {bench}/1
    and {bench}/4 are present (older dumps predate the bench); a dump
    that has the benches but lost the counter is an error, not a silent
    pass.
    """
    one = counters.get(f"{bench}/1")
    four = counters.get(f"{bench}/4")
    if one is None or four is None:
        return None
    try:
        ratio = four["sim_items_per_sec"] / one["sim_items_per_sec"]
    except KeyError:
        return (f"{bench} present but missing the "
                f"sim_items_per_sec counter — stale perf_selfcheck binary?")
    print(f"\n{what}: 4-shard {four['sim_items_per_sec']:.0f} / "
          f"1-shard {one['sim_items_per_sec']:.0f} sim items/s "
          f"= {ratio:.2f}x (floor {min_ratio:.2f}x)")
    if ratio < min_ratio:
        return (f"{bench}: 4-shard simulated throughput is only "
                f"{ratio:.2f}x the 1-shard run (floor {min_ratio:.2f}x) — "
                f"sharding no longer scales past the single-chain ceiling")
    return None


def check_provenance(path, build_type):
    """Debug-built numbers are garbage; missing provenance is suspect.

    Returns an error string, or None if the dump is trustworthy. The
    "binary_build_type" context key is stamped by perf_selfcheck's custom
    main from NDEBUG — the stock "library_build_type" key only reflects
    how the google-benchmark library itself was compiled, so it proves
    nothing about the code under test.
    """
    if build_type is None:
        return (f"{path}: missing binary_build_type context (produced by a "
                f"perf_selfcheck binary from before the provenance stamp, "
                f"or not by perf_selfcheck at all) — regenerate it with "
                f"bench/run_selfcheck.sh from a Release build")
    if build_type != "release":
        return (f"{path}: binary_build_type is \"{build_type}\" — "
                f"debug-built numbers are not comparable; rebuild with "
                f"-DCMAKE_BUILD_TYPE=Release")
    return None


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="max allowed fractional drop in items_per_second")
    ap.add_argument("--shard-scaling", type=float, default=1.8,
                    help="min candidate 4-shard/1-shard sim_items_per_sec "
                         "ratio for BM_ShardedThroughput")
    ap.add_argument("--scan-scaling", type=float, default=1.8,
                    help="min candidate 4-shard/1-shard sim_items_per_sec "
                         "ratio for BM_ShardedScan (the read datapath)")
    args = ap.parse_args()

    base, _, base_build = load_items_per_second(args.baseline)
    cand, cand_counters, cand_build = load_items_per_second(args.candidate)
    provenance = [err for err in (check_provenance(args.baseline, base_build),
                                  check_provenance(args.candidate, cand_build))
                  if err]
    if provenance:
        for err in provenance:
            print(f"error: {err}")
        return 1
    if not base:
        print(f"error: no items_per_second entries in {args.baseline}")
        return 2

    regressions = []
    width = max(len(n) for n in sorted(set(base) | set(cand))) + 2
    print(f"{'benchmark':<{width}} {'baseline':>14} {'candidate':>14} {'delta':>8}")
    for name in sorted(set(base) | set(cand)):
        if name not in base:
            print(f"{name:<{width}} {'-':>14} {cand[name]:>14.0f}   (new)")
            continue
        if name not in cand:
            print(f"{name:<{width}} {base[name]:>14.0f} {'-':>14}   (gone)")
            continue
        delta = cand[name] / base[name] - 1.0
        flag = ""
        if delta < -args.threshold:
            regressions.append((name, delta))
            flag = "  << REGRESSION"
        print(f"{name:<{width}} {base[name]:>14.0f} {cand[name]:>14.0f} "
              f"{delta:>+7.1%}{flag}")

    scaling_errs = [err for err in (
        check_shard_scaling(cand_counters, "BM_ShardedThroughput",
                            args.shard_scaling, "sharded scaling"),
        check_shard_scaling(cand_counters, "BM_ShardedScan",
                            args.scan_scaling, "scan scaling"),
    ) if err]

    if regressions:
        print(f"\nFAIL: {len(regressions)} benchmark(s) regressed more than "
              f"{args.threshold:.0%}:")
        for name, delta in regressions:
            print(f"  {name}: {delta:+.1%}")
        for err in scaling_errs:
            print(f"FAIL: {err}")
        return 1
    if scaling_errs:
        for err in scaling_errs:
            print(f"\nFAIL: {err}")
        return 1
    print(f"\nOK: no benchmark regressed more than {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
