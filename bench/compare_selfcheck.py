#!/usr/bin/env python3
"""Compare two perf_selfcheck JSON dumps and fail on throughput regressions.

Usage: compare_selfcheck.py BASELINE.json CANDIDATE.json [--threshold 0.15]

For every benchmark present in BOTH files that reports items_per_second,
the candidate must not be more than `threshold` (default 15%) slower than
the baseline. Benchmarks that exist on only one side are reported but do
not fail the run (new benchmarks are allowed to appear; retired ones to
disappear). Exit status 1 iff at least one regression exceeds the
threshold — this is the CI gate that keeps BENCH_selfcheck.json honest.

Wall-clock benchmarks are noisy on shared CI runners, which is why the
gate is deliberately loose (15%, on top of google-benchmark's own
--benchmark_min_time averaging). It exists to catch step-function
regressions (an accidental O(n) lookup, a reintroduced per-packet
allocation), not 2% drift.
"""

import argparse
import json
import sys


def load_items_per_second(path):
    with open(path) as f:
        data = json.load(f)
    out = {}
    for bm in data.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev) if repetitions were used.
        if bm.get("run_type") == "aggregate":
            continue
        ips = bm.get("items_per_second")
        if ips:
            out[bm["name"]] = float(ips)
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="max allowed fractional drop in items_per_second")
    args = ap.parse_args()

    base = load_items_per_second(args.baseline)
    cand = load_items_per_second(args.candidate)
    if not base:
        print(f"error: no items_per_second entries in {args.baseline}")
        return 2

    regressions = []
    width = max(len(n) for n in sorted(set(base) | set(cand))) + 2
    print(f"{'benchmark':<{width}} {'baseline':>14} {'candidate':>14} {'delta':>8}")
    for name in sorted(set(base) | set(cand)):
        if name not in base:
            print(f"{name:<{width}} {'-':>14} {cand[name]:>14.0f}   (new)")
            continue
        if name not in cand:
            print(f"{name:<{width}} {base[name]:>14.0f} {'-':>14}   (gone)")
            continue
        delta = cand[name] / base[name] - 1.0
        flag = ""
        if delta < -args.threshold:
            regressions.append((name, delta))
            flag = "  << REGRESSION"
        print(f"{name:<{width}} {base[name]:>14.0f} {cand[name]:>14.0f} "
              f"{delta:>+7.1%}{flag}")

    if regressions:
        print(f"\nFAIL: {len(regressions)} benchmark(s) regressed more than "
              f"{args.threshold:.0%}:")
        for name, delta in regressions:
            print(f"  {name}: {delta:+.1%}")
        return 1
    print(f"\nOK: no benchmark regressed more than {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
