// Steady-state allocation gate for the NIC datapath.
//
// The flat-table datapath claim (DESIGN.md "NIC datapath") is that once
// the per-QP rings, the response cache, the payload pool, and the event
// slab have warmed to the workload's high-water mark, packet RX/TX —
// engine execute, wire transfer, responder checks, response, requester
// completion — performs ZERO heap allocations. Like the event-loop test,
// this is enforced with a binary-wide operator-new hook, not asserted in
// prose: any regression that reintroduces a hash-map insert, a
// std::function spill, or a payload copy on the hot path fails here.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <new>

#include "core/hyperloop_group.h"
#include "core/lock.h"
#include "core/server.h"
#include "core/sharded_reader.h"
#include "core/tcp_group.h"
#include "core/wal.h"
#include "nvm/nvm_device.h"
#include "rdma/network.h"
#include "rdma/nic.h"
#include "sim/event_loop.h"

static uint64_t g_alloc_count = 0;

void* operator new(std::size_t n) {
  ++g_alloc_count;
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace hyperloop::rdma {
namespace {

// Two NICs, one-sided traffic in both directions. nvm == nullptr keeps
// the NVM durability tracker (an interval set, allocation-churny by
// nature) out of the picture: this test gates the *datapath*, and the
// one-sided opcodes avoid RecvWqe SGE vectors for the same reason.
struct AllocFixture : ::testing::Test {
  sim::EventLoop loop;
  Network net{loop, Network::Config{}};
  HostMemory mem_a{1 << 20}, mem_b{1 << 20};
  Nic a{loop, net, mem_a, nullptr}, b{loop, net, mem_b, nullptr};

  CompletionQueue* cq_a = a.create_cq(1 << 12);
  CompletionQueue* cq_b = b.create_cq(1 << 12);
  QueuePair* qa = a.create_qp(cq_a, nullptr, 1024);
  QueuePair* qb = b.create_qp(cq_b, nullptr, 1024);

  Addr buf_a = 0, buf_b = 0;
  MemoryRegion mr_a{}, mr_b{};

  void SetUp() override {
    a.connect(qa, b.id(), qb->qpn);
    b.connect(qb, a.id(), qa->qpn);
    buf_a = mem_a.alloc(8192);
    buf_b = mem_b.alloc(8192);
    mr_a = a.register_mr(buf_a, 8192, kRemoteRead | kRemoteWrite |
                                          kRemoteAtomic | kLocalWrite);
    mr_b = b.register_mr(buf_b, 8192, kRemoteRead | kRemoteWrite |
                                          kRemoteAtomic | kLocalWrite);
  }

  // One traffic lap: a mixed one-sided burst in both directions, run to
  // quiescence, completions drained into stack storage.
  void lap() {
    for (int i = 0; i < 16; ++i) {
      a.post_send(qa, make_write(buf_a, 0, buf_b + 64 * i, mr_b.rkey, 128, 1));
      b.post_send(qb, make_write(buf_b, 0, buf_a + 64 * i, mr_a.rkey, 128, 2));
      a.post_send(qa, make_read(buf_a + 4096, 0, buf_b, mr_b.rkey, 256, 3));
      a.post_send(qa,
                  make_cas(buf_a + 2048, 0, buf_b + 2048, mr_b.rkey, 0, 1, 4));
    }
    loop.run();
    Cqe out[64];
    while (cq_a->poll_many(out, 64) > 0) {
    }
    while (cq_b->poll_many(out, 64) > 0) {
    }
  }
};

TEST_F(AllocFixture, SteadyStatePacketPathAllocatesNothing) {
  // Warm-up: grow the SQ/window/CQ rings, the responder response caches,
  // the payload pool (READ responses pin blocks in the 128-entry response
  // cache until recycled, so several laps are needed to reach the
  // high-water mark), and the event-loop slab.
  for (int i = 0; i < 24; ++i) lap();

  const uint64_t before = g_alloc_count;
  for (int i = 0; i < 4; ++i) lap();
  const uint64_t after = g_alloc_count;
  EXPECT_EQ(after - before, 0u)
      << "steady-state NIC RX/TX performed " << (after - before)
      << " heap allocations";

  // Sanity: the laps above really moved packets.
  EXPECT_GT(a.counters().packets_rx, 1000u);
  EXPECT_GT(b.counters().packets_rx, 1000u);
  EXPECT_EQ(a.counters().remote_access_errors, 0u);
  EXPECT_EQ(b.counters().remote_access_errors, 0u);
}

// The recovery paths — go-back-N retransmission (a walk of the window
// ring) and duplicate suppression with response-cache replay (a
// direct-mapped probe plus a refcounted packet copy) — must be
// allocation-free too. Same fixture shape, but with fabric loss injected.
TEST(NicAllocLossy, RetransmitAndReplayPathsAllocateNothing) {
  sim::EventLoop loop;
  Network::Config nc;
  nc.loss_probability = 0.05;
  Network net{loop, nc};
  HostMemory mem_a{1 << 20}, mem_b{1 << 20};
  Nic a{loop, net, mem_a, nullptr}, b{loop, net, mem_b, nullptr};
  CompletionQueue* cq_a = a.create_cq(1 << 12);
  QueuePair* qa = a.create_qp(cq_a, nullptr, 1024);
  QueuePair* qb = b.create_qp(nullptr, nullptr, 1024);
  a.connect(qa, b.id(), qb->qpn);
  b.connect(qb, a.id(), qa->qpn);
  const Addr buf_a = mem_a.alloc(8192);
  const Addr buf_b = mem_b.alloc(8192);
  MemoryRegion mr_b =
      b.register_mr(buf_b, 8192, kRemoteRead | kRemoteWrite | kLocalWrite);

  auto lap = [&] {
    for (int i = 0; i < 32; ++i) {
      a.post_send(qa, make_write(buf_a, 0, buf_b + 64 * i, mr_b.rkey, 128, 1));
      a.post_send(qa, make_read(buf_a + 4096, 0, buf_b, mr_b.rkey, 256, 2));
    }
    loop.run();  // drains retransmissions until every window empties
    Cqe out[64];
    while (cq_a->poll_many(out, 64) > 0) {
    }
  };

  for (int i = 0; i < 24; ++i) lap();
  ASSERT_GT(a.counters().retransmits, 0u) << "loss injection not effective";

  const uint64_t before = g_alloc_count;
  const uint64_t retransmits_before = a.counters().retransmits;
  for (int i = 0; i < 4; ++i) lap();
  EXPECT_EQ(g_alloc_count - before, 0u)
      << "recovery paths performed heap allocations";
  EXPECT_GT(a.counters().retransmits, retransmits_before)
      << "measured laps saw no retransmissions";
}

// The durability datapath: gWRITEs landing in the responder's NVM range
// (every DMA byte marks the dirty bitmap through the range-filtered write
// observer) followed by gFLUSH (0-byte READ -> persist_all walks and
// clears the dirty lines). The whole mark-dirty -> persist -> is_durable
// cycle must be allocation-free in steady state: the DirtyBitmap allocates
// its words once at construction, persist_all walks set summary words
// with no interval snapshot, and crash-free laps never touch the
// allocator. This is the tracker-level guarantee that replaced the
// std::map IntervalSet on the hot path.
TEST(NicAllocDurability, GwriteGflushSteadyStateAllocatesNothing) {
  sim::EventLoop loop;
  Network net{loop, Network::Config{}};
  HostMemory mem_a{1 << 20}, mem_b{1 << 20};
  nvm::NvmDevice nvm_b{mem_b, 256 << 10};  // carve NVM before other allocs
  Nic a{loop, net, mem_a, nullptr}, b{loop, net, mem_b, &nvm_b};
  CompletionQueue* cq_a = a.create_cq(1 << 12);
  QueuePair* qa = a.create_qp(cq_a, nullptr, 1024);
  QueuePair* qb = b.create_qp(nullptr, nullptr, 1024);
  a.connect(qa, b.id(), qb->qpn);
  b.connect(qb, a.id(), qa->qpn);
  const Addr src = mem_a.alloc(8192);
  const Addr dst = nvm_b.alloc(8192);
  MemoryRegion mr =
      b.register_mr(dst, 8192, kRemoteRead | kRemoteWrite | kLocalWrite);

  // One durability lap: a burst of writes into the NVM region, then a
  // gFLUSH; on completion everything written must be durable.
  auto lap = [&] {
    for (int i = 0; i < 32; ++i) {
      a.post_send(qa, make_write(src, 0, dst + 128 * i, mr.rkey, 128, 1));
    }
    a.post_send(qa, make_flush(dst, mr.rkey, 2));
    loop.run();
    Cqe out[64];
    while (cq_a->poll_many(out, 64) > 0) {
    }
  };

  for (int i = 0; i < 24; ++i) lap();
  ASSERT_GT(b.counters().flushes, 0u);
  ASSERT_TRUE(nvm_b.is_durable(dst, 8192));

  const uint64_t before = g_alloc_count;
  for (int i = 0; i < 4; ++i) lap();
  EXPECT_EQ(g_alloc_count - before, 0u)
      << "durability path (mark-dirty -> persist -> is_durable) performed "
      << (g_alloc_count - before) << " heap allocations";

  // Sanity: the measured laps really exercised the tracker.
  EXPECT_EQ(nvm_b.dirty_bytes(), 0u);
  EXPECT_TRUE(nvm_b.is_durable(dst, 8192));
  nvm_b.crash();  // nothing volatile: crash must be a no-op on the data
  uint8_t probe = 0;
  mem_b.read(dst, &probe, 1);
  EXPECT_EQ(b.counters().remote_access_errors, 0u);
}

}  // namespace
}  // namespace hyperloop::rdma

namespace hyperloop::core {
namespace {

// The transaction-layer lap: the claim behind the SmallFn completion API
// and the ring-indexed op tracking (DESIGN.md "Callback types") is that a
// whole gWRITE-through-WAL transaction — wr_lock gCAS, WAL append (staged
// directly into the client region, gWRITE + gFLUSH down the chain),
// ExecuteAndAdvance gMEMCPYs, and the releasing gCAS — touches the heap
// zero times in steady state. Every continuation lives inline in a
// pending-op slot or pool entry; the op-tracking tables and rings are at
// their high-water marks after warm-up.
TEST(NicAllocTransaction, WalLockTransactionLapAllocatesNothing) {
  Cluster cluster{[] {
    Cluster::Config c;
    c.num_servers = 4;
    c.server.cpu.num_cores = 8;
    return c;
  }()};
  RegionLayout layout;
  layout.region_size = 1 << 20;
  layout.log_size = 64 << 10;
  layout.num_locks = 16;
  HyperLoopGroup::Config gc;
  gc.region_size = layout.region_size;
  gc.ring_slots = 64;
  gc.max_inflight = 16;
  std::vector<Server*> reps = {&cluster.server(0), &cluster.server(1),
                               &cluster.server(2)};
  HyperLoopGroup group(cluster.server(3), reps, gc);
  ReplicatedWal wal(group, layout);
  GroupLockManager locks(group, layout, cluster.loop());

  // Fixed inputs, built once: append() reads the caller's entry vector
  // and stages bytes straight into the client region, so reusing one
  // entry keeps the lap's working set entirely pre-allocated.
  const std::vector<uint8_t> payload(64, 0xAB);
  std::vector<ReplicatedWal::Entry> entries;
  entries.push_back({/*db_offset=*/256, payload});

  int laps_done = 0;
  auto lap = [&] {
    locks.wr_lock(1, /*owner=*/7, [&](bool ok) {
      if (!ok) return;
      wal.append(entries, [&](uint64_t) {
        wal.execute_and_advance([&] {
          locks.wr_unlock(1, 7, [&] { ++laps_done; });
        });
      });
    });
    cluster.loop().run_until(cluster.loop().now() + sim::msec(5));
  };

  // Warm-up: grow the slot pools (lock ops, WAL exec ops), the group's
  // pending tables and credit rings, the NIC rings, and the event slab.
  for (int i = 0; i < 24; ++i) lap();
  ASSERT_EQ(laps_done, 24);

  const uint64_t before = g_alloc_count;
  for (int i = 0; i < 4; ++i) lap();
  EXPECT_EQ(g_alloc_count - before, 0u)
      << "transaction lap (lock -> append -> execute -> unlock) performed "
      << (g_alloc_count - before) << " heap allocations";
  EXPECT_EQ(laps_done, 28);

  // Sanity: the laps really committed records and cycled the lock.
  EXPECT_EQ(wal.stats().records_appended, 28u);
  EXPECT_EQ(locks.stats().wr_acquired, 28u);
  uint64_t word = ~uint64_t{0};
  group.replica_load(0, layout.lock_offset(1), &word, 8);
  EXPECT_EQ(word, 0u);  // released
}

// The group-commit datapath: a burst of appends stages records into the
// WAL's pending ring, issues multi-extent gWRITEV batches (stage ->
// gwritev -> gFLUSH -> complete), and drains with ExecuteAndAdvance. In
// steady state the whole cycle — staged-ring churn, extent packing, the
// kWriteV descriptor patch, NOP-padded chain execution, batched
// completions, latency histogram recording — must not touch the heap.
TEST(NicAllocTransaction, GroupCommitGwritevLapAllocatesNothing) {
  Cluster cluster{[] {
    Cluster::Config c;
    c.num_servers = 4;
    c.server.cpu.num_cores = 8;
    return c;
  }()};
  RegionLayout layout;
  layout.region_size = 1 << 20;
  layout.log_size = 64 << 10;
  layout.num_locks = 16;
  HyperLoopGroup::Config gc;
  gc.region_size = layout.region_size;
  gc.ring_slots = 64;
  gc.max_inflight = 16;
  std::vector<Server*> reps = {&cluster.server(0), &cluster.server(1),
                               &cluster.server(2)};
  HyperLoopGroup group(cluster.server(3), reps, gc);
  ReplicatedWal::Options wo;
  wo.staged_capacity = 16;
  wo.loop = &cluster.loop();
  ReplicatedWal wal(group, layout, wo);

  const std::vector<uint8_t> payload(48, 0x5C);
  std::vector<ReplicatedWal::Entry> entries;
  entries.push_back({/*db_offset=*/128, payload});

  uint64_t committed = 0;
  auto lap = [&] {
    // Burst: the first append issues its batch immediately; the rest
    // stage into the pending ring and flush as grouped gwritevs when the
    // in-flight batch's chain ack frees the window.
    for (int k = 0; k < 6; ++k) {
      ASSERT_TRUE(wal.append(entries, [&](uint64_t) { ++committed; }));
    }
    cluster.loop().run_until(cluster.loop().now() + sim::msec(5));
    while (wal.execute_and_advance(ReplicatedWal::Done{})) {
    }
    cluster.loop().run_until(cluster.loop().now() + sim::msec(5));
  };

  for (int i = 0; i < 24; ++i) lap();
  ASSERT_EQ(committed, 24u * 6u);
  ASSERT_GT(wal.stats().gwritev_batches, 0u);
  ASSERT_GT(wal.records_per_gwrite().max(), 1);  // batching really happened

  const uint64_t before = g_alloc_count;
  for (int i = 0; i < 4; ++i) lap();
  EXPECT_EQ(g_alloc_count - before, 0u)
      << "group-commit lap (stage -> gwritev -> gflush -> complete) "
      << "performed " << (g_alloc_count - before) << " heap allocations";
  EXPECT_EQ(committed, 28u * 6u);
  EXPECT_EQ(wal.commit_latency().count(), committed);
  EXPECT_EQ(group.counters().gwritevs, wal.stats().gwritev_batches);
}

// The copy-discipline gate: a 64 KB gWRITE through a 3-replica chain
// must move payload bytes exactly 1 + num_sinks times — one DMA-in
// gather at the source NIC and one DMA-out into each sink's region.
// The chain-forward hops borrow the bytes the upstream WRITE landed
// (zero-copy), so the global PayloadBuf::bytes_copied() delta per op is
// exact, not an upper bound: a reintroduced forward gather, an extra
// staging copy, or an unexpected copy-on-write materialization all show
// up as a precise mismatch. The lap must also stay allocation-free once
// the 64 KB payload blocks are pooled.
TEST(NicAllocTransaction, ChainedGwriteCopiesExactlyOncePerSink) {
  Cluster cluster{[] {
    Cluster::Config c;
    c.num_servers = 4;
    c.server.cpu.num_cores = 8;
    return c;
  }()};
  HyperLoopGroup::Config gc;
  gc.region_size = 1 << 20;
  gc.ring_slots = 64;
  gc.max_inflight = 16;
  std::vector<Server*> reps = {&cluster.server(0), &cluster.server(1),
                               &cluster.server(2)};
  HyperLoopGroup group(cluster.server(3), reps, gc);

  constexpr uint32_t kLen = 64 << 10;
  std::vector<uint8_t> payload(kLen);
  for (uint32_t i = 0; i < kLen; ++i) payload[i] = static_cast<uint8_t>(i * 7);
  group.client_store(0, payload.data(), kLen);

  int laps_done = 0;
  auto lap = [&] {
    group.gwrite(0, kLen, /*flush=*/true, [&] { ++laps_done; });
    cluster.loop().run_until(cluster.loop().now() + sim::msec(5));
  };

  for (int i = 0; i < 8; ++i) lap();
  ASSERT_EQ(laps_done, 8);

  const uint64_t bytes_before = rdma::PayloadBuf::bytes_copied();
  const uint64_t client_before =
      cluster.server(3).nic().counters().payload_bytes_copied;
  const uint64_t r0_before =
      cluster.server(0).nic().counters().payload_bytes_copied;
  const uint64_t allocs_before = g_alloc_count;
  lap();
  ASSERT_EQ(laps_done, 9);
  EXPECT_EQ(rdma::PayloadBuf::bytes_copied() - bytes_before,
            uint64_t{kLen} * (1 + reps.size()))
      << "a 64 KB chained gWRITE must copy exactly len * (1 + num_sinks)";
  // Split per NIC: the source gathers once; a sink lands its DMA-out
  // once and forwards by borrowing (no gather).
  EXPECT_EQ(cluster.server(3).nic().counters().payload_bytes_copied -
                client_before,
            uint64_t{kLen});
  EXPECT_EQ(cluster.server(0).nic().counters().payload_bytes_copied -
                r0_before,
            uint64_t{kLen});
  EXPECT_EQ(g_alloc_count - allocs_before, 0u)
      << "large-payload lap performed heap allocations";

  // The bytes really replicated: every sink region matches the source.
  std::vector<uint8_t> got(kLen);
  for (size_t r = 0; r < reps.size(); ++r) {
    group.replica_load(r, 0, got.data(), kLen);
    ASSERT_EQ(std::memcmp(got.data(), payload.data(), kLen), 0)
        << "replica " << r << " diverged";
  }
}

// The read-datapath lap: once the per-endpoint bounce-slot rings, the
// pooled op/join tables, and the per-op scratch buffers have warmed to
// the workload's high-water mark, a steady-state read mix — single-shard
// reads spread across replicas, a fragmented large read slicing across
// bounce slots, and a cross-shard scatter scan split/joined through the
// ShardedReader — must perform ZERO heap allocations. ReadView hands the
// caller a window into pooled scratch; any regression that reintroduces
// a per-read vector or a SmallFn spill fails here.
TEST(NicAllocRead, ShardedReadScanLapAllocatesNothing) {
  Cluster cluster{[] {
    Cluster::Config c;
    c.num_servers = 4;
    c.server.cpu.num_cores = 8;
    c.server.num_nics = 2;  // one NIC port per chain
    return c;
  }()};
  constexpr uint64_t kRegion = 1 << 20;
  constexpr uint32_t kShards = 2;
  constexpr uint64_t kSpan = kRegion / kShards;
  std::vector<Server*> reps = {&cluster.server(0), &cluster.server(1),
                               &cluster.server(2)};
  std::vector<std::unique_ptr<ReplicationGroup>> chains;
  for (uint32_t s = 0; s < kShards; ++s) {
    HyperLoopGroup::Config gc;
    gc.region_size = kRegion;  // identity addressing
    gc.ring_slots = 64;
    gc.max_inflight = 16;
    gc.nic_index = s;
    chains.push_back(
        std::make_unique<HyperLoopGroup>(cluster.server(3), reps, gc));
  }
  ShardedGroup group(std::move(chains), ShardRouter::range(kShards, kSpan));

  // Replicate a pattern straddling the routing boundary so scans touch
  // both shards and every replica serves identical bytes.
  std::vector<uint8_t> fill(32 << 10);
  const uint64_t base = kSpan - (16 << 10);
  for (size_t i = 0; i < fill.size(); ++i) {
    fill[i] = static_cast<uint8_t>((base + i) * 31 + 7);
  }
  group.client_store(base, fill.data(), static_cast<uint32_t>(fill.size()));
  int wrote = 0;
  group.gwrite(base, 16 << 10, false, [&] { ++wrote; });
  group.gwrite(kSpan, 16 << 10, false, [&] { ++wrote; });
  cluster.loop().run_until(cluster.loop().now() + sim::msec(50));
  ASSERT_EQ(wrote, 2);

  std::vector<std::unique_ptr<RemoteReader>> readers;
  for (uint32_t s = 0; s < kShards; ++s) {
    auto& hl = static_cast<HyperLoopGroup&>(group.shard(s));
    std::vector<RemoteReader::Target> t;
    for (size_t i = 0; i < 3; ++i) {
      t.push_back({&hl.replica_server(i), hl.replica_region_base(i),
                   hl.replica_data_rkey(i)});
    }
    RemoteReader::Options opts;
    opts.slots = 8;
    opts.slot_size = 4096;
    opts.policy = RemoteReader::Policy::kRoundRobin;
    opts.nic_index = s;
    readers.push_back(std::make_unique<RemoteReader>(cluster.server(3),
                                                     std::move(t), opts));
  }
  ShardedReader reader(std::move(readers), group.router());

  int laps_done = 0;
  auto lap = [&] {
    int done = 0;
    // Replica-spread small reads on both shards (enough per lap to cycle
    // the responders' response caches during warm-up, and to exhaust the
    // 8-slot bounce rings so the park/replay path is exercised too).
    for (int k = 0; k < 12; ++k) {
      reader.read(base + static_cast<uint64_t>(k) * 256, 128,
                  [&done](ReadView) { ++done; });
      reader.read(kSpan + static_cast<uint64_t>(k) * 256, 128,
                  [&done](ReadView) { ++done; });
    }
    // A fragmented large read: 12 KB slices across three 4 KB slots.
    reader.read(kSpan, 12 << 10, [&done](ReadView v) {
      done += v.size() == (12u << 10);
    });
    // A cross-shard scatter scan: split at the boundary, joined pooled.
    reader.scan(kSpan - 4096, 8192, [&done](ReadView v) {
      done += v.size() == 8192u;
    });
    cluster.loop().run_until(cluster.loop().now() + sim::msec(5));
    ASSERT_EQ(done, 26);
    ++laps_done;
  };

  // Warm-up: grow the bounce rings, op/join pools, and scratch buffers to
  // high water, and cycle every responder QP's 128-entry response cache
  // at least once — READ responses pin payload blocks there until a later
  // response evicts them, so the payload pool only reaches its
  // steady-state class mix after a full cache revolution per endpoint.
  for (int i = 0; i < 48; ++i) lap();
  ASSERT_EQ(laps_done, 48);
  ASSERT_GT(reader.stats().scatter_reads, 0u);
  ASSERT_GT(reader.shard(1).stats().frags_issued,
            reader.shard(1).stats().reads_issued)
      << "large reads never fragmented";

  const uint64_t before = g_alloc_count;
  for (int i = 0; i < 4; ++i) lap();
  EXPECT_EQ(g_alloc_count - before, 0u)
      << "steady-state read lap (read -> bounce -> view) performed "
      << (g_alloc_count - before) << " heap allocations";
  EXPECT_EQ(laps_done, 52);

  // Sanity: the reads really spread across the chain replicas.
  for (size_t r = 0; r < 3; ++r) {
    EXPECT_GT(reader.replica_frags(r), 0u) << "replica " << r;
  }
  EXPECT_EQ(reader.stats().aborted_reads, 0u);
}

// The kernel-TCP baseline's message path. The baseline is the paper's
// *comparison* system, so its measured costs must come from the modeled
// OS stack (send/recv CPU, scheduling), not from host allocator churn in
// the harness: pooled wire buffers (BufPool), direct [Header][data]
// framing, in-place header strip on receive, and same-buffer chain
// forwarding make a steady-state command lap — gwrite bursts, gmemcpy,
// gcas, flush barriers, ACKs — allocation-free once warm.
TEST(NicAllocTcp, TcpReplicationLapAllocatesNothing) {
  Cluster cluster{[] {
    Cluster::Config c;
    c.num_servers = 4;
    c.server.cpu.num_cores = 8;
    return c;
  }()};
  core::TcpReplicationGroup::Config gc;
  gc.region_size = 1 << 20;
  std::vector<Server*> reps = {&cluster.server(0), &cluster.server(1),
                               &cluster.server(2)};
  core::TcpReplicationGroup group(cluster.server(3), reps, gc);

  const std::vector<uint8_t> payload(128, 0x5C);
  group.client_store(256, payload.data(),
                     static_cast<uint32_t>(payload.size()));

  int laps_done = 0;
  auto lap = [&] {
    int done = 0;
    for (int i = 0; i < 8; ++i) {
      group.gwrite(256, 128, /*flush=*/i == 7, [&done] { ++done; });
    }
    group.gmemcpy(256, 8192, 128, /*flush=*/true, [&done] { ++done; });
    group.gcas(4096, 0, 0, core::ExecMap::all(3),
               [&done](const core::CasResult&) { ++done; });
    cluster.loop().run_until(cluster.loop().now() + sim::msec(5));
    ASSERT_EQ(done, 10);
    ++laps_done;
  };

  // Warm-up: grow the BufPool freelist to the lap's wire high-water mark,
  // the pending/waiting rings, scheduler queues, and the event slab.
  for (int i = 0; i < 24; ++i) lap();
  ASSERT_EQ(laps_done, 24);

  const uint64_t sent_before = cluster.server(3).tcp().messages_sent();
  const uint64_t before = g_alloc_count;
  for (int i = 0; i < 4; ++i) lap();
  EXPECT_EQ(g_alloc_count - before, 0u)
      << "steady-state TCP replication lap performed "
      << (g_alloc_count - before) << " heap allocations";

  // Sanity: the measured laps really pushed messages through the stack.
  EXPECT_GE(cluster.server(3).tcp().messages_sent() - sent_before, 4u * 10u);
  uint64_t out = 0;
  group.replica_load(2, 8192, &out, 8);
  EXPECT_EQ(out & 0xFFu, 0x5Cu);
}

}  // namespace
}  // namespace hyperloop::core
