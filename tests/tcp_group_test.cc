#include "core/tcp_group.h"

#include <gtest/gtest.h>

#include <string>

#include "core/server.h"

namespace hyperloop::core {
namespace {

struct TcpGroupFixture : ::testing::Test {
  Cluster cluster{[] {
    Cluster::Config c;
    c.num_servers = 4;
    c.server.cpu.num_cores = 8;
    return c;
  }()};

  std::unique_ptr<TcpReplicationGroup> make_group(size_t replicas = 3) {
    TcpReplicationGroup::Config cfg;
    cfg.region_size = 1 << 20;
    std::vector<Server*> r;
    for (size_t i = 0; i < replicas; ++i) r.push_back(&cluster.server(i));
    return std::make_unique<TcpReplicationGroup>(cluster.server(3), r, cfg);
  }

  void run(sim::Duration d = sim::msec(200)) {
    cluster.loop().run_until(cluster.loop().now() + d);
  }
};

TEST_F(TcpGroupFixture, GwriteReplicates) {
  auto g = make_group();
  const std::string data = "tcp-native-write";
  g->client_store(64, data.data(), data.size());
  bool done = false;
  g->gwrite(64, data.size(), true, [&] { done = true; });
  run();
  ASSERT_TRUE(done);
  for (size_t i = 0; i < 3; ++i) {
    std::string out(data.size(), '\0');
    g->replica_load(i, 64, out.data(), out.size());
    EXPECT_EQ(out, data);
  }
}

TEST_F(TcpGroupFixture, FlushMakesDurable) {
  auto g = make_group();
  const std::string data = "tcp-durable";
  g->client_store(0, data.data(), data.size());
  bool done = false;
  g->gwrite(0, data.size(), true, [&] { done = true; });
  run();
  ASSERT_TRUE(done);
  g->replica_server(1).nvm().crash();
  std::string out(data.size(), '\0');
  g->replica_load(1, 0, out.data(), out.size());
  EXPECT_EQ(out, data);
}

TEST_F(TcpGroupFixture, GmemcpyAndGcas) {
  auto g = make_group();
  const std::string data = "move-me";
  g->client_store(0, data.data(), data.size());
  bool all = false;
  g->gwrite(0, data.size(), true, [&] {
    g->gmemcpy(0, 4096, data.size(), true, [&] {
      g->gcas(8192, 0, 33, ExecMap::all(3),
              [&](const CasResult& r) {
                EXPECT_EQ(r.size(), 3u);
                all = true;
              });
    });
  });
  run();
  ASSERT_TRUE(all);
  std::string out(data.size(), '\0');
  g->replica_load(2, 4096, out.data(), out.size());
  EXPECT_EQ(out, data);
  uint64_t v = 0;
  g->replica_load(0, 8192, &v, 8);
  EXPECT_EQ(v, 33u);
}

TEST_F(TcpGroupFixture, EveryHopConsumesReplicaCpu) {
  auto g = make_group();
  bool done = false;
  g->gwrite(0, 512, true, [&] { done = true; });
  run();
  ASSERT_TRUE(done);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_GT(g->replica_cpu_time(i), 0) << i;
  }
}

TEST_F(TcpGroupFixture, TwoGroupsOnSameServersAutoAssignPorts) {
  auto g1 = make_group();
  auto g2 = make_group();
  bool d1 = false, d2 = false;
  const uint64_t a = 1, b = 2;
  g1->client_store(0, &a, 8);
  g2->client_store(0, &b, 8);
  g1->gwrite(0, 8, false, [&] { d1 = true; });
  g2->gwrite(0, 8, false, [&] { d2 = true; });
  run();
  ASSERT_TRUE(d1);
  ASSERT_TRUE(d2);
  uint64_t v1 = 0, v2 = 0;
  g1->replica_load(0, 0, &v1, 8);
  g2->replica_load(0, 0, &v2, 8);
  EXPECT_EQ(v1, 1u);
  EXPECT_EQ(v2, 2u);
}

TEST_F(TcpGroupFixture, PipelinedWrites) {
  auto g = make_group();
  int done = 0;
  const int n = 150;
  for (int k = 0; k < n; ++k) {
    uint64_t v = static_cast<uint64_t>(k) + 100;
    g->client_store(static_cast<uint64_t>(k) * 16, &v, 8);
    g->gwrite(static_cast<uint64_t>(k) * 16, 8, false, [&] { ++done; });
  }
  run(sim::seconds(2));
  ASSERT_EQ(done, n);
  uint64_t v = 0;
  g->replica_load(2, 149 * 16, &v, 8);
  EXPECT_EQ(v, 249u);
}

}  // namespace
}  // namespace hyperloop::core
