#include "sim/distributions.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

namespace hyperloop::sim {
namespace {

TEST(Exponential, MeanMatches) {
  Rng rng(1);
  Exponential e(1000.0);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(e.sample(rng));
  EXPECT_NEAR(sum / n, 1000.0, 20.0);
}

TEST(Exponential, NonNegative) {
  Rng rng(2);
  Exponential e(50.0);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(e.sample(rng), 0);
}

TEST(LogNormal, MedianMatches) {
  Rng rng(3);
  LogNormal ln(2000.0, 1.0);
  std::vector<Duration> v;
  for (int i = 0; i < 100001; ++i) v.push_back(ln.sample(rng));
  std::nth_element(v.begin(), v.begin() + v.size() / 2, v.end());
  const double median = static_cast<double>(v[v.size() / 2]);
  EXPECT_NEAR(median, 2000.0, 100.0);
}

TEST(LogNormal, HasHeavyRightTail) {
  Rng rng(4);
  LogNormal ln(1000.0, 1.0);
  int64_t max = 0;
  for (int i = 0; i < 100000; ++i) max = std::max<int64_t>(max, ln.sample(rng));
  EXPECT_GT(max, 10000);  // >10x the median appears in 100k draws
}

TEST(Zipfian, MostPopularIsRankZero) {
  Rng rng(5);
  ZipfianGenerator z(1000, 0.99);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 100000; ++i) ++counts[z.sample(rng)];
  int best_count = 0;
  uint64_t best = 0;
  for (auto& [k, c] : counts) {
    if (c > best_count) {
      best_count = c;
      best = k;
    }
  }
  EXPECT_EQ(best, 0u);
}

TEST(Zipfian, InRange) {
  Rng rng(6);
  ZipfianGenerator z(100, 0.99);
  for (int i = 0; i < 100000; ++i) EXPECT_LT(z.sample(rng), 100u);
}

TEST(Zipfian, SkewMatchesTheory) {
  // With theta=0.99 and n=1000, item 0 should receive ~ 1/zeta fraction.
  Rng rng(7);
  ZipfianGenerator z(1000, 0.99);
  int zero = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) zero += z.sample(rng) == 0 ? 1 : 0;
  const double frac = static_cast<double>(zero) / n;
  EXPECT_GT(frac, 0.10);  // heavy skew: top item ~13% at these params
  EXPECT_LT(frac, 0.20);
}

TEST(ScrambledZipfian, SpreadsHotKeys) {
  Rng rng(8);
  ScrambledZipfian z(1000, 0.99);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 100000; ++i) ++counts[z.sample(rng)];
  // The hottest key should NOT be key 0 with overwhelming probability.
  int best_count = 0;
  uint64_t best = 0;
  for (auto& [k, c] : counts) {
    if (c > best_count) {
      best_count = c;
      best = k;
    }
  }
  EXPECT_LT(best_count, 100000);
  EXPECT_GT(best_count, 5000);  // still skewed
  (void)best;
}

TEST(Latest, PrefersNewestItems) {
  Rng rng(9);
  LatestGenerator g(0.99);
  int newest_half = 0;
  const uint64_t count = 1000;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (g.sample(rng, count) >= count / 2) ++newest_half;
  }
  EXPECT_GT(static_cast<double>(newest_half) / n, 0.8);
}

TEST(Latest, InRangeAsPopulationGrows) {
  Rng rng(10);
  LatestGenerator g(0.99);
  for (uint64_t count = 1; count < 2000; count += 37) {
    for (int i = 0; i < 20; ++i) EXPECT_LT(g.sample(rng, count), count);
  }
}

}  // namespace
}  // namespace hyperloop::sim
