// RemoteReader / ShardedReader (sharded one-sided read datapath) tests.
//
// Covers the read-pool contract and the sharded composition:
//   - fragmented large reads (len > slot_size slices across bounce slots)
//   - replica-selection policies (head-only, round-robin, least-outstanding)
//   - slot exhaustion: reads park FIFO and replay in order (no jumping)
//   - readv extent batching: one endpoint, bytes concatenated in order
//   - teardown with reads in flight: callbacks dropped, responses drop at
//     the NIC as invalid_qp_drops, no crash
//   - ShardedReader routing, cross-shard scatter/join, boundary-splitting
//     scan, and stop() aborting live joins
#include "core/remote_reader.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "core/hyperloop_group.h"
#include "core/server.h"
#include "core/sharded_reader.h"

namespace hyperloop::core {
namespace {

uint8_t pattern_byte(uint64_t i) { return static_cast<uint8_t>(i * 31 + 7); }

// One 3-replica chain plus a client; the region is pre-filled with a
// deterministic pattern replicated to every replica, so reads from any
// replica under any policy can be verified byte-for-byte.
struct ReaderFixture : ::testing::Test {
  static constexpr uint64_t kRegion = 256 << 10;
  static constexpr uint32_t kFill = 64 << 10;

  Cluster cluster{[] {
    Cluster::Config c;
    c.num_servers = 4;
    c.server.cpu.num_cores = 8;
    return c;
  }()};
  std::unique_ptr<HyperLoopGroup> group = [this] {
    HyperLoopGroup::Config gc;
    gc.region_size = kRegion;
    gc.ring_slots = 64;
    gc.max_inflight = 16;
    std::vector<Server*> reps = {&cluster.server(0), &cluster.server(1),
                                 &cluster.server(2)};
    return std::make_unique<HyperLoopGroup>(cluster.server(3), reps, gc);
  }();

  void SetUp() override {
    std::vector<uint8_t> fill(kFill);
    for (uint32_t i = 0; i < kFill; ++i) fill[i] = pattern_byte(i);
    group->client_store(0, fill.data(), kFill);
    int wrote = 0;
    for (uint32_t off = 0; off < kFill; off += 16 << 10) {
      group->gwrite(off, 16 << 10, /*flush=*/false, [&] { ++wrote; });
    }
    run(sim::msec(50));
    ASSERT_EQ(wrote, static_cast<int>(kFill / (16 << 10)));
  }

  std::vector<RemoteReader::Target> targets() {
    std::vector<RemoteReader::Target> t;
    for (size_t i = 0; i < 3; ++i) {
      t.push_back({&group->replica_server(i), group->replica_region_base(i),
                   group->replica_data_rkey(i)});
    }
    return t;
  }

  std::unique_ptr<RemoteReader> make_reader(RemoteReader::Options opts = {}) {
    return std::make_unique<RemoteReader>(cluster.server(3), targets(), opts);
  }

  void run(sim::Duration d = sim::msec(10)) {
    cluster.loop().run_until(cluster.loop().now() + d);
  }

  static void expect_pattern(ReadView view, uint64_t off) {
    for (uint32_t i = 0; i < view.size(); ++i) {
      ASSERT_EQ(view[i], pattern_byte(off + i)) << "byte " << i;
    }
  }
};

TEST_F(ReaderFixture, FragmentedReadSpansSlots) {
  RemoteReader::Options opts;
  opts.slots = 8;
  opts.slot_size = 4096;
  auto reader = make_reader(opts);
  // 12 KB + 100: three full slots plus a tail fragment.
  const uint32_t len = (12 << 10) + 100;
  const uint64_t off = 64;
  bool done = false;
  reader->read(off, len, [&](ReadView view) {
    done = true;
    ASSERT_EQ(view.size(), len);
    expect_pattern(view, off);
  });
  run();
  ASSERT_TRUE(done);
  EXPECT_EQ(reader->stats().reads_issued, 1u);
  EXPECT_EQ(reader->stats().frags_issued, 4u);
  EXPECT_EQ(reader->stats().read_bytes, uint64_t{len});
  EXPECT_EQ(reader->latency().count(), 1);
}

TEST_F(ReaderFixture, HeadOnlyPolicySticksToTargetZero) {
  auto reader = make_reader();  // default: kHeadOnly
  int ok = 0;
  for (int k = 0; k < 10; ++k) {
    reader->read(static_cast<uint64_t>(k) * 128, 64, [&](ReadView) { ++ok; });
  }
  run();
  ASSERT_EQ(ok, 10);
  EXPECT_EQ(reader->replica_frags(0), 10u);
  EXPECT_EQ(reader->replica_frags(1), 0u);
  EXPECT_EQ(reader->replica_frags(2), 0u);
}

TEST_F(ReaderFixture, RoundRobinSpreadsAcrossReplicas) {
  RemoteReader::Options opts;
  opts.policy = RemoteReader::Policy::kRoundRobin;
  auto reader = make_reader(opts);
  int ok = 0;
  for (int k = 0; k < 9; ++k) {
    const uint64_t off = static_cast<uint64_t>(k) * 256;
    reader->read(off, 32, [&, off](ReadView view) {
      ++ok;
      expect_pattern(view, off);
    });
  }
  run();
  ASSERT_EQ(ok, 9);
  // Logical reads rotate 0,1,2,0,1,2,... — three each.
  EXPECT_EQ(reader->replica_frags(0), 3u);
  EXPECT_EQ(reader->replica_frags(1), 3u);
  EXPECT_EQ(reader->replica_frags(2), 3u);
}

TEST_F(ReaderFixture, LeastOutstandingBalancesInFlight) {
  RemoteReader::Options opts;
  opts.policy = RemoteReader::Policy::kLeastOutstanding;
  auto reader = make_reader(opts);
  // Issue back-to-back without draining: each pick sees the previous
  // reads still outstanding, so the argmin walks 0,1,2,0,1,2.
  int ok = 0;
  for (int k = 0; k < 6; ++k) {
    reader->read(static_cast<uint64_t>(k) * 512, 64, [&](ReadView) { ++ok; });
  }
  EXPECT_EQ(reader->outstanding(0), 2u);
  EXPECT_EQ(reader->outstanding(1), 2u);
  EXPECT_EQ(reader->outstanding(2), 2u);
  run();
  ASSERT_EQ(ok, 6);
  EXPECT_EQ(reader->replica_frags(0), 2u);
  EXPECT_EQ(reader->replica_frags(1), 2u);
  EXPECT_EQ(reader->replica_frags(2), 2u);
  EXPECT_EQ(reader->outstanding(0), 0u);
}

TEST_F(ReaderFixture, NextReplicaAdvancesRoundRobinState) {
  RemoteReader::Options opts;
  opts.policy = RemoteReader::Policy::kRoundRobin;
  auto reader = make_reader(opts);
  // Callers that read-lock pick first, then read_from the same index;
  // successive picks must rotate.
  const size_t a = reader->next_replica();
  const size_t b = reader->next_replica();
  const size_t c = reader->next_replica();
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
  EXPECT_NE(c, a);
  bool done = false;
  reader->read_from(a, 0, 16, [&](ReadView view) {
    done = true;
    expect_pattern(view, 0);
  });
  run();
  ASSERT_TRUE(done);
  EXPECT_EQ(reader->replica_frags(a), 1u);
}

TEST_F(ReaderFixture, SlotExhaustionParksAndReplaysFifo) {
  RemoteReader::Options opts;
  opts.slots = 2;
  opts.slot_size = 4096;
  auto reader = make_reader(opts);  // head-only: one endpoint's slot ring
  std::vector<int> order;
  for (int k = 0; k < 8; ++k) {
    reader->read(static_cast<uint64_t>(k) * 64, 32,
                 [&order, k](ReadView) { order.push_back(k); });
  }
  run();
  ASSERT_EQ(order.size(), 8u);
  for (int k = 0; k < 8; ++k) {
    EXPECT_EQ(order[k], k) << "parked reads must replay FIFO";
  }
  EXPECT_EQ(reader->stats().reads_issued, 8u);
}

TEST_F(ReaderFixture, SmallReadNeverJumpsAParkedLargeRead) {
  RemoteReader::Options opts;
  opts.slots = 2;
  opts.slot_size = 4096;
  auto reader = make_reader(opts);
  std::vector<char> order;
  // First read holds one slot; the 2-slot read parks (one slot free); the
  // trailing 1-slot read would fit the free slot but must queue behind the
  // parked head, not starve it.
  reader->read(0, 32, [&](ReadView) { order.push_back('a'); });
  reader->read(64, 8000, [&](ReadView view) {
    order.push_back('b');
    EXPECT_EQ(view.size(), 8000u);
  });
  reader->read(128, 32, [&](ReadView) { order.push_back('c'); });
  run();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 'a');
  EXPECT_EQ(order[1], 'b');
  EXPECT_EQ(order[2], 'c');
}

TEST_F(ReaderFixture, ReadvConcatenatesExtentsInOrder) {
  auto reader = make_reader();
  ReadVec v;
  v.push_back({1000, 24});
  v.push_back({200, 100});
  v.push_back({64, 8});
  bool done = false;
  reader->readv(v, [&](ReadView view) {
    done = true;
    ASSERT_EQ(view.size(), 132u);
    const uint8_t* p = view.data();
    for (uint32_t i = 0; i < 24; ++i) ASSERT_EQ(p[i], pattern_byte(1000 + i));
    for (uint32_t i = 0; i < 100; ++i) {
      ASSERT_EQ(p[24 + i], pattern_byte(200 + i));
    }
    for (uint32_t i = 0; i < 8; ++i) ASSERT_EQ(p[124 + i], pattern_byte(64 + i));
  });
  run();
  ASSERT_TRUE(done);
  // One logical read, one fragment per extent, one doorbell (not assertable
  // here, but the fragment count is).
  EXPECT_EQ(reader->stats().reads_issued, 1u);
  EXPECT_EQ(reader->stats().frags_issued, 3u);
}

TEST_F(ReaderFixture, TeardownWithReadsInFlightDropsResponses) {
  auto reader = make_reader();  // 16 KB slots
  bool fired = false;
  // A 16 KB read's response alone serializes for ~2.3us; the request WQEs
  // execute within ~1us. Stopping in between tears the QPs down with the
  // responses still on the wire.
  reader->read(0, 16 << 10, [&](ReadView) { fired = true; });
  reader->read(1024, 256, [&](ReadView) { fired = true; });
  run(sim::nsec(1500));  // requests executed; responses still in flight
  reader->stop();
  EXPECT_EQ(reader->stats().aborted_reads, 2u);
  run(sim::msec(10));  // let the orphaned responses arrive and drop
  EXPECT_FALSE(fired) << "stopped reads must not invoke their callbacks";
  EXPECT_GT(cluster.server(3).nic().counters().invalid_qp_drops, 0u)
      << "orphaned READ responses should drop at the client NIC";
  reader->stop();  // idempotent
}

TEST_F(ReaderFixture, StopAbortsParkedReads) {
  RemoteReader::Options opts;
  opts.slots = 1;
  opts.slot_size = 4096;
  auto reader = make_reader(opts);
  int fired = 0;
  reader->read(0, 32, [&](ReadView) { ++fired; });    // in flight
  reader->read(64, 32, [&](ReadView) { ++fired; });   // parked
  reader->read(128, 32, [&](ReadView) { ++fired; });  // parked
  run(sim::nsec(1000));
  reader->stop();
  run(sim::msec(10));
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(reader->stats().aborted_reads, 3u);
}

// --- ShardedReader: composition over per-shard reader pools ------------

constexpr uint64_t kShardedRegion = 256 << 10;
constexpr uint32_t kNumShards = 2;
constexpr uint64_t kSpan = kShardedRegion / kNumShards;

struct ShardedReaderFixture : ::testing::Test {
  Cluster cluster{[] {
    Cluster::Config c;
    c.num_servers = 4;
    c.server.cpu.num_cores = 8;
    c.server.num_nics = kNumShards;  // one NIC port per chain
    return c;
  }()};
  std::unique_ptr<ShardedGroup> group = [this] {
    std::vector<Server*> reps = {&cluster.server(0), &cluster.server(1),
                                 &cluster.server(2)};
    std::vector<std::unique_ptr<ReplicationGroup>> chains;
    for (uint32_t s = 0; s < kNumShards; ++s) {
      HyperLoopGroup::Config gc;
      gc.region_size = kShardedRegion;  // identity addressing
      gc.ring_slots = 64;
      gc.max_inflight = 16;
      gc.nic_index = s;
      chains.push_back(
          std::make_unique<HyperLoopGroup>(cluster.server(3), reps, gc));
    }
    return std::make_unique<ShardedGroup>(
        std::move(chains), ShardRouter::range(kNumShards, kSpan));
  }();

  void SetUp() override {
    // Pattern across the routing boundary so scans have bytes on both
    // shards; the facade splits the store/gwrite per owning chain.
    std::vector<uint8_t> fill(8 << 10);
    const uint64_t base = kSpan - (4 << 10);
    for (size_t i = 0; i < fill.size(); ++i) {
      fill[i] = pattern_byte(base + i);
    }
    group->client_store(base, fill.data(),
                        static_cast<uint32_t>(fill.size()));
    int wrote = 0;
    group->gwrite(base, 4 << 10, false, [&] { ++wrote; });
    group->gwrite(kSpan, 4 << 10, false, [&] { ++wrote; });
    run(sim::msec(50));
    ASSERT_EQ(wrote, 2);
  }

  std::unique_ptr<ShardedReader> make_sharded_reader(
      RemoteReader::Policy policy = RemoteReader::Policy::kHeadOnly) {
    std::vector<std::unique_ptr<RemoteReader>> readers;
    for (uint32_t s = 0; s < kNumShards; ++s) {
      auto& hl = static_cast<HyperLoopGroup&>(group->shard(s));
      std::vector<RemoteReader::Target> t;
      for (size_t i = 0; i < 3; ++i) {
        t.push_back({&hl.replica_server(i), hl.replica_region_base(i),
                     hl.replica_data_rkey(i)});
      }
      RemoteReader::Options opts;
      opts.policy = policy;
      opts.nic_index = s;
      readers.push_back(std::make_unique<RemoteReader>(cluster.server(3),
                                                       std::move(t), opts));
    }
    return std::make_unique<ShardedReader>(std::move(readers),
                                           group->router());
  }

  void run(sim::Duration d = sim::msec(10)) {
    cluster.loop().run_until(cluster.loop().now() + d);
  }
};

TEST_F(ShardedReaderFixture, RoutesSingleReadsToTheOwningShard) {
  auto reader = make_sharded_reader();
  int ok = 0;
  const uint64_t off0 = kSpan - 1024;  // shard 0
  const uint64_t off1 = kSpan + 512;   // shard 1
  reader->read(off0, 64, [&, off0](ReadView view) {
    ++ok;
    for (uint32_t i = 0; i < view.size(); ++i) {
      ASSERT_EQ(view[i], pattern_byte(off0 + i));
    }
  });
  reader->read(off1, 64, [&, off1](ReadView view) {
    ++ok;
    for (uint32_t i = 0; i < view.size(); ++i) {
      ASSERT_EQ(view[i], pattern_byte(off1 + i));
    }
  });
  run();
  ASSERT_EQ(ok, 2);
  EXPECT_EQ(reader->stats().reads_issued, 2u);
  EXPECT_EQ(reader->stats().scatter_reads, 0u);
  EXPECT_EQ(reader->shard(0).reads_issued(), 1u);
  EXPECT_EQ(reader->shard(1).reads_issued(), 1u);
  EXPECT_EQ(reader->replica_frags(0), 2u);  // head-only on both shards
}

TEST_F(ShardedReaderFixture, CrossShardReadvScattersAndJoinsInOrder) {
  auto reader = make_sharded_reader();
  ReadVec v;
  v.push_back({kSpan + 256, 32});   // shard 1 first in list order
  v.push_back({kSpan - 512, 64});   // shard 0
  v.push_back({kSpan + 1024, 16});  // shard 1 again
  bool done = false;
  reader->readv(v, [&](ReadView view) {
    done = true;
    ASSERT_EQ(view.size(), 112u);
    const uint8_t* p = view.data();
    for (uint32_t i = 0; i < 32; ++i) {
      ASSERT_EQ(p[i], pattern_byte(kSpan + 256 + i));
    }
    for (uint32_t i = 0; i < 64; ++i) {
      ASSERT_EQ(p[32 + i], pattern_byte(kSpan - 512 + i));
    }
    for (uint32_t i = 0; i < 16; ++i) {
      ASSERT_EQ(p[96 + i], pattern_byte(kSpan + 1024 + i));
    }
  });
  run();
  ASSERT_TRUE(done);
  EXPECT_EQ(reader->stats().scatter_reads, 1u);
  EXPECT_EQ(reader->scatter_latency().count(), 1);
  EXPECT_EQ(reader->shard(0).stats().frags_issued, 1u);
  EXPECT_EQ(reader->shard(1).stats().frags_issued, 2u);
}

TEST_F(ShardedReaderFixture, UniformReadvForwardsWithoutJoining) {
  auto reader = make_sharded_reader();
  ReadVec v;
  v.push_back({kSpan - 2048, 32});
  v.push_back({kSpan - 1024, 32});
  bool done = false;
  reader->readv(v, [&](ReadView view) {
    done = true;
    EXPECT_EQ(view.size(), 64u);
  });
  run();
  ASSERT_TRUE(done);
  EXPECT_EQ(reader->stats().scatter_reads, 0u);
  EXPECT_EQ(reader->shard(0).stats().reads_issued, 1u);
  EXPECT_EQ(reader->shard(1).stats().reads_issued, 0u);
}

TEST_F(ShardedReaderFixture, ScanSplitsAtRoutingBoundary) {
  auto reader = make_sharded_reader();
  const uint64_t base = kSpan - 2048;
  const uint64_t len = 4096;  // halves in shard 0 and shard 1
  bool done = false;
  reader->scan(base, len, [&](ReadView view) {
    done = true;
    ASSERT_EQ(view.size(), len);
    for (uint32_t i = 0; i < len; ++i) {
      ASSERT_EQ(view[i], pattern_byte(base + i)) << "byte " << i;
    }
  });
  run();
  ASSERT_TRUE(done);
  EXPECT_EQ(reader->stats().scatter_reads, 1u);
  // One merged extent per shard, not one per chunk.
  EXPECT_EQ(reader->shard(0).stats().frags_issued, 1u);
  EXPECT_EQ(reader->shard(1).stats().frags_issued, 1u);
}

TEST_F(ShardedReaderFixture, ReadFromPinsTheReplicaOnTheOwningShard) {
  auto reader = make_sharded_reader();
  bool done = false;
  reader->read_from(2, kSpan + 64, 32, [&](ReadView) { done = true; });
  run();
  ASSERT_TRUE(done);
  EXPECT_EQ(reader->shard(1).replica_frags(2), 1u);
  EXPECT_EQ(reader->shard(1).replica_frags(0), 0u);
  EXPECT_EQ(reader->shard(0).replica_frags(2), 0u);
}

TEST_F(ShardedReaderFixture, StopAbortsLiveScatterJoins) {
  auto reader = make_sharded_reader();
  ReadVec v;
  v.push_back({64, 32});
  v.push_back({kSpan + 64, 32});
  int fired = 0;
  reader->readv(v, [&](ReadView) { ++fired; });
  // Let the request WQEs execute (stop() destroys QPs, which requires an
  // idle send engine), then stop with the responses still on the wire:
  // the join must die silently.
  run(sim::nsec(1500));
  reader->stop();
  run();
  EXPECT_EQ(fired, 0);
  EXPECT_GE(reader->stats().aborted_reads, 1u);
  reader->stop();  // idempotent
}

}  // namespace
}  // namespace hyperloop::core
