// Bit-reproducibility: identical seeds must produce identical simulated
// outcomes — the property that makes every benchmark in bench/ a
// deterministic experiment rather than a measurement of the host machine.
#include <gtest/gtest.h>

#include "apps/ycsb/driver.h"
#include "apps/ycsb/workload.h"
#include "core/hyperloop_group.h"
#include "core/naive_group.h"
#include "core/server.h"
#include "stats/histogram.h"

namespace hyperloop {
namespace {

struct RunResult {
  std::vector<sim::Duration> latencies;
  uint64_t ctx_switches;
  sim::Time end_time;
};

RunResult run_once(uint64_t seed, bool naive) {
  core::Cluster::Config cc;
  cc.num_servers = 4;
  cc.seed = seed;
  core::Cluster cluster(cc);
  for (size_t s = 0; s < 3; ++s) {
    cluster.server(s).add_background_load(
        16, cluster.fork_rng(),
        {.tenants = 0, .median_burst = sim::usec(100), .burst_sigma = 1.0,
         .mean_think = sim::usec(300), .max_batch = 2, .fanout = 8});
  }
  std::unique_ptr<core::ReplicationGroup> group;
  std::vector<core::Server*> reps = {&cluster.server(0), &cluster.server(1),
                                     &cluster.server(2)};
  if (naive) {
    core::NaiveRdmaGroup::Config gc;
    gc.region_size = 1 << 20;
    group = std::make_unique<core::NaiveRdmaGroup>(cluster.server(3), reps, gc);
  } else {
    core::HyperLoopGroup::Config gc;
    gc.region_size = 1 << 20;
    gc.ring_slots = 64;
    gc.max_inflight = 16;
    group = std::make_unique<core::HyperLoopGroup>(cluster.server(3), reps, gc);
  }
  cluster.loop().run_until(sim::msec(5));

  RunResult r{};
  const int kOps = 100;
  int done = 0;
  std::function<void()> next = [&] {
    if (done == kOps) return;
    const sim::Time t0 = cluster.loop().now();
    group->gwrite(0, 128, true, [&, t0] {
      r.latencies.push_back(cluster.loop().now() - t0);
      ++done;
      next();
    });
  };
  next();
  cluster.loop().run_until(cluster.loop().now() + sim::seconds(5));
  r.ctx_switches = cluster.server(0).sched().total_context_switches();
  r.end_time = cluster.loop().now();
  return r;
}

TEST(Determinism, HyperLoopRunsAreBitIdentical) {
  const RunResult a = run_once(42, false);
  const RunResult b = run_once(42, false);
  EXPECT_EQ(a.latencies, b.latencies);
  EXPECT_EQ(a.ctx_switches, b.ctx_switches);
}

TEST(Determinism, NaiveRunsAreBitIdentical) {
  const RunResult a = run_once(43, true);
  const RunResult b = run_once(43, true);
  EXPECT_EQ(a.latencies, b.latencies);
  EXPECT_EQ(a.ctx_switches, b.ctx_switches);
}

TEST(Determinism, DifferentSeedsChangeTheLoadedPath) {
  // The loaded (CPU-mediated) baseline must actually respond to the seed.
  const RunResult a = run_once(1, true);
  const RunResult b = run_once(2, true);
  EXPECT_NE(a.latencies, b.latencies);
}

TEST(Determinism, YcsbStreamIsSeedDeterministic) {
  apps::WorkloadGenerator g1(apps::WorkloadSpec::A(), 1000, sim::Rng(5));
  apps::WorkloadGenerator g2(apps::WorkloadSpec::A(), 1000, sim::Rng(5));
  for (int i = 0; i < 10000; ++i) {
    const apps::Op a = g1.next();
    const apps::Op b = g2.next();
    EXPECT_EQ(static_cast<int>(a.type), static_cast<int>(b.type));
    EXPECT_EQ(a.key, b.key);
    EXPECT_EQ(a.scan_len, b.scan_len);
  }
}

}  // namespace
}  // namespace hyperloop
