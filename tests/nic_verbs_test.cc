// Verbs-level tests: two NICs on a fabric exercising WRITE/SEND/READ/CAS,
// protection checks, gFLUSH durability, and immediate data.
#include <gtest/gtest.h>

#include <cstring>

#include "nvm/nvm_device.h"
#include "rdma/network.h"
#include "rdma/nic.h"
#include "sim/event_loop.h"

namespace hyperloop::rdma {
namespace {

struct TwoNodes : ::testing::Test {
  sim::EventLoop loop;
  Network net{loop, Network::Config{}};
  HostMemory mem_a{1 << 20}, mem_b{1 << 20};
  nvm::NvmDevice nvm_a{mem_a, 256 << 10}, nvm_b{mem_b, 256 << 10};
  Nic a{loop, net, mem_a, &nvm_a};
  Nic b{loop, net, mem_b, &nvm_b};

  CompletionQueue* cq_a = a.create_cq();
  CompletionQueue* cq_b_recv = b.create_cq();
  QueuePair* qa = a.create_qp(cq_a, nullptr, 64);
  QueuePair* qb = b.create_qp(nullptr, cq_b_recv, 64);

  void connect() {
    a.connect(qa, b.id(), qb->qpn);
    b.connect(qb, a.id(), qa->qpn);
  }
};

TEST_F(TwoNodes, WriteTransfersData) {
  connect();
  const Addr src = mem_a.alloc(64);
  const Addr dst = nvm_b.alloc(64);
  const MemoryRegion mr = b.register_mr(dst, 64, kRemoteWrite);
  mem_a.write(src, "payload", 8);

  a.post_send(qa, make_write(src, 0, dst, mr.rkey, 8, /*wr_id=*/42));
  loop.run();

  char out[8];
  mem_b.read(dst, out, 8);
  EXPECT_STREQ(out, "payload");

  Cqe c;
  ASSERT_TRUE(cq_a->poll(&c));
  EXPECT_EQ(c.wr_id, 42u);
  EXPECT_EQ(c.status, CqStatus::kSuccess);
}

TEST_F(TwoNodes, WriteWithBadRkeyFailsAndDoesNotWrite) {
  connect();
  const Addr src = mem_a.alloc(64);
  const Addr dst = nvm_b.alloc(64);
  b.register_mr(dst, 64, kRemoteWrite);
  mem_a.write(src, "attack!", 8);

  a.post_send(qa, make_write(src, 0, dst, /*rkey=*/0xbad, 8, 1));
  loop.run();

  char out[8] = {};
  mem_b.read(dst, out, 8);
  EXPECT_STREQ(out, "");  // untouched
  Cqe c;
  ASSERT_TRUE(cq_a->poll(&c));
  EXPECT_EQ(c.status, CqStatus::kRemoteAccessError);
  EXPECT_EQ(b.counters().remote_access_errors, 1u);
}

TEST_F(TwoNodes, WriteOutsideRegionFails) {
  connect();
  const Addr src = mem_a.alloc(64);
  const Addr dst = nvm_b.alloc(64);
  const MemoryRegion mr = b.register_mr(dst, 64, kRemoteWrite);
  a.post_send(qa, make_write(src, 0, dst + 60, mr.rkey, 8, 1));
  loop.run();
  Cqe c;
  ASSERT_TRUE(cq_a->poll(&c));
  EXPECT_EQ(c.status, CqStatus::kRemoteAccessError);
}

TEST_F(TwoNodes, SendScattersIntoRecvSges) {
  connect();
  const Addr src = mem_a.alloc(64);
  mem_a.write(src, "0123456789AB", 12);
  const Addr r1 = mem_b.alloc(8);
  const Addr r2 = mem_b.alloc(8);
  const MemoryRegion mr = b.register_mr(r1, 64 + (r2 - r1), kLocalWrite);

  RecvWqe recv;
  recv.wr_id = 7;
  recv.sges = {Sge{r1, 8, mr.lkey}, Sge{r2, 8, mr.lkey}};
  b.post_recv(qb, std::move(recv));

  a.post_send(qa, make_send(src, 0, 12, 5));
  loop.run();

  char p1[9] = {}, p2[5] = {};
  mem_b.read(r1, p1, 8);
  mem_b.read(r2, p2, 4);
  EXPECT_EQ(std::memcmp(p1, "01234567", 8), 0);
  EXPECT_EQ(std::memcmp(p2, "89AB", 4), 0);

  Cqe c;
  ASSERT_TRUE(cq_b_recv->poll(&c));
  EXPECT_EQ(c.wr_id, 7u);
  EXPECT_EQ(c.byte_len, 12u);
  Cqe ack;
  ASSERT_TRUE(cq_a->poll(&ack));
  EXPECT_EQ(ack.status, CqStatus::kSuccess);
}

TEST_F(TwoNodes, SendWithoutRecvStallsUntilPosted) {
  connect();
  const Addr src = mem_a.alloc(16);
  mem_a.write(src, "late", 4);
  a.post_send(qa, make_send(src, 0, 4, 1));
  loop.run();
  EXPECT_EQ(b.counters().rnr_stalls, 1u);
  EXPECT_EQ(cq_b_recv->completion_count(), 0u);

  const Addr r1 = mem_b.alloc(8);
  const MemoryRegion mr = b.register_mr(r1, 8, kLocalWrite);
  RecvWqe recv;
  recv.sges = {Sge{r1, 8, mr.lkey}};
  b.post_recv(qb, std::move(recv));
  loop.run();

  char out[5] = {};
  mem_b.read(r1, out, 4);
  EXPECT_STREQ(out, "late");
}

TEST_F(TwoNodes, ReadFetchesRemoteData) {
  connect();
  const Addr remote = nvm_b.alloc(64);
  mem_b.write(remote, "remote-bytes", 12);
  const MemoryRegion mr = b.register_mr(remote, 64, kRemoteRead);
  const Addr land = mem_a.alloc(64);

  a.post_send(qa, make_read(land, 0, remote, mr.rkey, 12, 9));
  loop.run();

  char out[13] = {};
  mem_a.read(land, out, 12);
  EXPECT_STREQ(out, "remote-bytes");
  Cqe c;
  ASSERT_TRUE(cq_a->poll(&c));
  EXPECT_EQ(c.wr_id, 9u);
}

TEST_F(TwoNodes, ZeroByteReadFlushesNvm) {
  connect();
  const Addr dst = nvm_b.alloc(64);
  const MemoryRegion mr =
      b.register_mr(dst, 64, kRemoteWrite | kRemoteRead);
  const Addr src = mem_a.alloc(64);
  mem_a.write(src, "durable?", 8);

  a.post_send(qa, make_write(src, 0, dst, mr.rkey, 8));
  loop.run();
  EXPECT_FALSE(nvm_b.is_durable(dst, 8));  // ACKed but volatile!

  a.post_send(qa, make_flush(dst, mr.rkey, 11));
  loop.run();
  EXPECT_TRUE(nvm_b.is_durable(dst, 8));
  EXPECT_EQ(b.counters().flushes, 1u);

  nvm_b.crash();
  char out[9] = {};
  mem_b.read(dst, out, 8);
  EXPECT_STREQ(out, "durable?");
}

TEST_F(TwoNodes, UnflushedWriteIsLostOnCrash) {
  connect();
  const Addr dst = nvm_b.alloc(64);
  const MemoryRegion mr = b.register_mr(dst, 64, kRemoteWrite);
  const Addr src = mem_a.alloc(64);
  mem_a.write(src, "gone", 4);
  a.post_send(qa, make_write(src, 0, dst, mr.rkey, 4));
  loop.run();
  nvm_b.crash();
  char out[5] = {};
  mem_b.read(dst, out, 4);
  EXPECT_STREQ(out, "");
}

TEST_F(TwoNodes, CasSwapsOnMatch) {
  connect();
  const Addr word = nvm_b.alloc(8);
  const uint64_t init = 111;
  mem_b.write(word, &init, 8);
  const MemoryRegion mr = b.register_mr(word, 8, kRemoteAtomic);
  const Addr land = mem_a.alloc(8);

  a.post_send(qa, make_cas(land, 0, word, mr.rkey, 111, 222, 3));
  loop.run();

  uint64_t now_val = 0, old = 0;
  mem_b.read(word, &now_val, 8);
  mem_a.read(land, &old, 8);
  EXPECT_EQ(now_val, 222u);
  EXPECT_EQ(old, 111u);
}

TEST_F(TwoNodes, CasFailsOnMismatchButReturnsOld) {
  connect();
  const Addr word = nvm_b.alloc(8);
  const uint64_t init = 999;
  mem_b.write(word, &init, 8);
  const MemoryRegion mr = b.register_mr(word, 8, kRemoteAtomic);
  const Addr land = mem_a.alloc(8);

  a.post_send(qa, make_cas(land, 0, word, mr.rkey, 111, 222, 3));
  loop.run();

  uint64_t now_val = 0, old = 0;
  mem_b.read(word, &now_val, 8);
  mem_a.read(land, &old, 8);
  EXPECT_EQ(now_val, 999u);  // unchanged
  EXPECT_EQ(old, 999u);
}

TEST_F(TwoNodes, CasRequiresAtomicRight) {
  connect();
  const Addr word = nvm_b.alloc(8);
  const MemoryRegion mr = b.register_mr(word, 8, kRemoteWrite);  // no atomic
  const Addr land = mem_a.alloc(8);
  a.post_send(qa, make_cas(land, 0, word, mr.rkey, 0, 1, 3));
  loop.run();
  Cqe c;
  ASSERT_TRUE(cq_a->poll(&c));
  EXPECT_EQ(c.status, CqStatus::kRemoteAccessError);
}

TEST_F(TwoNodes, WriteImmConsumesRecvAndDeliversImm) {
  connect();
  const Addr src = mem_a.alloc(16);
  const Addr dst = nvm_b.alloc(16);
  const MemoryRegion mr = b.register_mr(dst, 16, kRemoteWrite);
  mem_a.write(src, "imm", 3);

  RecvWqe recv;
  recv.wr_id = 77;
  b.post_recv(qb, std::move(recv));

  a.post_send(qa, make_write_imm(src, 0, dst, mr.rkey, 3, 0xCAFE, 4));
  loop.run();

  Cqe c;
  ASSERT_TRUE(cq_b_recv->poll(&c));
  EXPECT_TRUE(c.has_imm);
  EXPECT_EQ(c.imm, 0xCAFEu);
  EXPECT_EQ(c.wr_id, 77u);
  char out[4] = {};
  mem_b.read(dst, out, 3);
  EXPECT_STREQ(out, "imm");
}

TEST_F(TwoNodes, GatherWithAuxSegment) {
  connect();
  const Addr s1 = mem_a.alloc(8);
  const Addr s2 = mem_a.alloc(8);
  mem_a.write(s1, "AAAA", 4);
  mem_a.write(s2, "BBBB", 4);
  const Addr dst = nvm_b.alloc(16);
  const MemoryRegion mr = b.register_mr(dst, 16, kRemoteWrite);

  Wqe w = make_write(s1, 0, dst, mr.rkey, 4);
  w.d.aux_addr = s2;
  w.d.aux_length = 4;
  a.post_send(qa, w);
  loop.run();

  char out[9] = {};
  mem_b.read(dst, out, 8);
  EXPECT_EQ(std::memcmp(out, "AAAABBBB", 8), 0);
}

TEST_F(TwoNodes, LocalCopyAndLoopbackCas) {
  CompletionQueue* lcq = a.create_cq();
  QueuePair* lqp = a.create_loopback_qp(lcq, 16);

  const Addr src = mem_a.alloc(32);
  const Addr dst = mem_a.alloc(32);
  mem_a.write(src, "local-dma", 9);
  a.post_send(lqp, make_local_copy(src, dst, 9, 1));

  const Addr word = mem_a.alloc(8);
  const uint64_t init = 5;
  mem_a.write(word, &init, 8);
  const Addr land = mem_a.alloc(8);
  a.post_send(lqp, make_cas(land, 0, word, 0, 5, 6, 2));
  loop.run();

  char out[10] = {};
  mem_a.read(dst, out, 9);
  EXPECT_STREQ(out, "local-dma");
  uint64_t v = 0;
  mem_a.read(word, &v, 8);
  EXPECT_EQ(v, 6u);
  EXPECT_EQ(lcq->completion_count(), 2u);
}

TEST_F(TwoNodes, NotifyFiresOncePerArm) {
  connect();
  int notifications = 0;
  cq_b_recv->set_notify([&] { ++notifications; });
  cq_b_recv->arm_notify();

  const Addr r1 = mem_b.alloc(16);
  const MemoryRegion mr = b.register_mr(r1, 16, kLocalWrite);
  for (int i = 0; i < 3; ++i) {
    RecvWqe recv;
    recv.sges = {Sge{r1, 16, mr.lkey}};
    b.post_recv(qb, std::move(recv));
  }
  const Addr src = mem_a.alloc(4);
  for (int i = 0; i < 3; ++i) a.post_send(qa, make_send(src, 0, 4));
  loop.run();
  EXPECT_EQ(notifications, 1);  // armed once -> one event
  cq_b_recv->arm_notify();
  a.post_send(qa, make_send(src, 0, 4));
  RecvWqe recv;
  recv.sges = {Sge{r1, 16, mr.lkey}};
  b.post_recv(qb, std::move(recv));
  loop.run();
  EXPECT_EQ(notifications, 2);
}

}  // namespace
}  // namespace hyperloop::rdma
