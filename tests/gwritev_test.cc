// gWRITEV (scatter-gather batched replication) tests.
//
// Covers the three properties the batched datapath promises:
//   1. Semantics: a gwritev batch replicates every extent to every replica
//      (durably, with flush), equivalent to a loop of gwrites — checked
//      with a randomized interleaving against a loop-of-gwrite oracle
//      group driven with the identical operation stream.
//   2. Single chain traversal: K extents cost one traversal, not K — the
//      per-replica packet / WQE counter deltas grow sub-linearly in K.
//   3. Doorbell coalescing: a batch submission rings the client doorbell
//      once, where K independent gwrites ring it K times.
#include "core/hyperloop_group.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <random>
#include <vector>

#include "core/server.h"

namespace hyperloop::core {
namespace {

struct GwritevFixture : ::testing::Test {
  Cluster cluster{[] {
    Cluster::Config c;
    c.num_servers = 4;  // servers 0..2 = replicas, 3 = client
    c.server.cpu.num_cores = 8;
    return c;
  }()};

  HyperLoopGroup::Config gcfg = [] {
    HyperLoopGroup::Config c;
    c.region_size = 1 << 20;
    c.ring_slots = 64;
    c.max_inflight = 16;
    return c;
  }();

  std::unique_ptr<HyperLoopGroup> make_group(size_t replicas = 3) {
    std::vector<Server*> r;
    for (size_t i = 0; i < replicas; ++i) r.push_back(&cluster.server(i));
    return std::make_unique<HyperLoopGroup>(cluster.server(3), r, gcfg);
  }

  void run(sim::Duration d = sim::msec(50)) {
    cluster.loop().run_until(cluster.loop().now() + d);
  }
};

TEST_F(GwritevFixture, BatchReplicatesEveryExtentDurably) {
  auto g = make_group();
  const char a[] = "extent-a", b[] = "extent-b", c[] = "extent-c";
  g->client_store(128, a, sizeof(a));
  g->client_store(4096, b, sizeof(b));
  g->client_store(65536, c, sizeof(c));
  bool done = false;
  g->gwritev({{128, sizeof(a)}, {4096, sizeof(b)}, {65536, sizeof(c)}},
             /*flush=*/true, [&] { done = true; });
  run();
  ASSERT_TRUE(done);
  EXPECT_EQ(g->counters().gwritevs, 1u);
  EXPECT_EQ(g->counters().gwritev_extents, 3u);
  for (size_t i = 0; i < 3; ++i) {
    g->replica_server(i).nvm().crash();  // flush=true must survive
    char out[64];
    g->replica_load(i, 128, out, sizeof(a));
    EXPECT_STREQ(out, a) << "replica " << i;
    g->replica_load(i, 4096, out, sizeof(b));
    EXPECT_STREQ(out, b) << "replica " << i;
    g->replica_load(i, 65536, out, sizeof(c));
    EXPECT_STREQ(out, c) << "replica " << i;
  }
  EXPECT_EQ(g->total_rnr_stalls(), 0u);
}

TEST_F(GwritevFixture, MaxCapacityBatchWorks) {
  auto g = make_group();
  ExtentVec ext;
  for (uint32_t k = 0; k < ExtentVec::kCapacity; ++k) {
    const uint64_t off = 1024 + k * 512;
    const uint64_t val = 7000 + k;
    g->client_store(off, &val, 8);
    ext.push_back({off, 8});
  }
  bool done = false;
  g->gwritev(ext, true, [&] { done = true; });
  run();
  ASSERT_TRUE(done);
  for (size_t i = 0; i < 3; ++i) {
    for (uint32_t k = 0; k < ExtentVec::kCapacity; ++k) {
      uint64_t v = 0;
      g->replica_load(i, 1024 + k * 512, &v, 8);
      EXPECT_EQ(v, 7000u + k) << "replica " << i << " extent " << k;
    }
  }
}

// K-extent batch = ONE chain traversal. Compare per-replica packet and
// WQE deltas for one gwritev of K extents against K independent gwrites:
// the batch must be strictly sub-linear (the whole point of gWRITEV), and
// the client must ring exactly one doorbell for the whole submission.
TEST_F(GwritevFixture, BatchCostsOneTraversalNotK) {
  auto g = make_group();
  constexpr uint32_t K = ExtentVec::kCapacity;

  // Warm up both rings so refill noise settles before measuring.
  g->gwrite(0, 8, true, Done{});
  g->gwritev({{0, 8}}, true, Done{});
  run();

  auto replica_pkts = [&] {
    uint64_t n = 0;
    for (size_t i = 0; i < 3; ++i) {
      n += g->replica_server(i).nic().counters().packets_rx;
    }
    return n;
  };
  auto replica_wqes = [&] {
    uint64_t n = 0;
    for (size_t i = 0; i < 3; ++i) {
      n += g->replica_server(i).nic().counters().wqes_executed;
    }
    return n;
  };
  auto client_doorbells = [&] {
    return cluster.server(3).nic().counters().doorbells;
  };

  // K independent gwrites.
  uint64_t pkts0 = replica_pkts(), wqes0 = replica_wqes();
  uint64_t bells0 = client_doorbells();
  int done = 0;
  for (uint32_t k = 0; k < K; ++k) {
    g->gwrite(2048 + k * 64, 64, true, [&] { ++done; });
  }
  run();
  ASSERT_EQ(done, static_cast<int>(K));
  const uint64_t single_pkts = replica_pkts() - pkts0;
  const uint64_t single_wqes = replica_wqes() - wqes0;
  const uint64_t single_bells = client_doorbells() - bells0;

  // One gwritev carrying the same K extents.
  ExtentVec ext;
  for (uint32_t k = 0; k < K; ++k) ext.push_back({2048 + k * 64, 64});
  pkts0 = replica_pkts();
  wqes0 = replica_wqes();
  bells0 = client_doorbells();
  bool bdone = false;
  g->gwritev(ext, true, [&] { bdone = true; });
  run();
  ASSERT_TRUE(bdone);
  const uint64_t batch_pkts = replica_pkts() - pkts0;
  const uint64_t batch_wqes = replica_wqes() - wqes0;
  const uint64_t batch_bells = client_doorbells() - bells0;

  // One traversal: the batch's chain-control overhead (metadata SENDs,
  // WAITs, ACK) is paid once, so its totals stay well under half of K
  // independent traversals.
  EXPECT_LT(batch_pkts * 2, single_pkts);
  EXPECT_LT(batch_wqes * 2, single_wqes);
  // Doorbell coalescing: one submission, one client doorbell.
  EXPECT_EQ(batch_bells, 1u);
  EXPECT_EQ(single_bells, uint64_t{K});
}

// Randomized equivalence: drive a batched group and a loop-of-gwrite
// oracle group with the identical stream of gwritev / gwrite / gcas ops
// and require byte-identical replica regions at the end. The oracle
// expands each gwritev into per-extent gwrites (the ReplicationGroup base
// fallback), so any divergence in the native batched datapath —
// mis-patched descriptors, wrong extent order, dropped NOP slots — shows
// up as a region mismatch.
TEST_F(GwritevFixture, RandomizedBatchMatchesLoopOfGwriteOracle) {
  auto batched = make_group();
  auto oracle = make_group();
  std::mt19937 rng(20260808);

  constexpr uint64_t kArea = 128 * 1024;  // offsets stay inside this prefix
  auto rnd_off = [&](uint32_t len) {
    return (rng() % (kArea - len)) & ~uint64_t{7};
  };

  int want = 0, got_b = 0, got_o = 0;
  for (int op = 0; op < 120; ++op) {
    const uint32_t kind = rng() % 10;
    const bool flush = (rng() & 1) != 0;
    if (kind < 5) {  // gwritev, 1..kCapacity extents
      const uint32_t n = 1 + rng() % ExtentVec::kCapacity;
      ExtentVec ext;
      for (uint32_t k = 0; k < n; ++k) {
        const uint32_t len = 8 * (1 + rng() % 32);
        const uint64_t off = rnd_off(len);
        std::vector<uint8_t> bytes(len);
        for (auto& x : bytes) x = static_cast<uint8_t>(rng());
        batched->client_store(off, bytes.data(), len);
        oracle->client_store(off, bytes.data(), len);
        ext.push_back({off, len});
      }
      batched->gwritev(ext, flush, [&] { ++got_b; });
      for (size_t k = 0; k + 1 < ext.size(); ++k) {
        oracle->gwrite(ext[k].offset, ext[k].len, flush, Done{});
      }
      oracle->gwrite(ext[ext.size() - 1].offset, ext[ext.size() - 1].len,
                     flush, [&] { ++got_o; });
    } else if (kind < 8) {  // single gwrite
      const uint32_t len = 8 * (1 + rng() % 64);
      const uint64_t off = rnd_off(len);
      std::vector<uint8_t> bytes(len);
      for (auto& x : bytes) x = static_cast<uint8_t>(rng());
      batched->client_store(off, bytes.data(), len);
      oracle->client_store(off, bytes.data(), len);
      batched->gwrite(off, len, flush, [&] { ++got_b; });
      oracle->gwrite(off, len, flush, [&] { ++got_o; });
    } else {  // gcas on the same cell in both groups
      const uint64_t off = rnd_off(8);
      const uint64_t desired = rng();
      batched->gcas(off, 0, desired, ExecMap::all(3),
                    [&](const CasResult&) { ++got_b; });
      oracle->gcas(off, 0, desired, ExecMap::all(3),
                   [&](const CasResult&) { ++got_o; });
    }
    ++want;
    if (op % 16 == 15) run(sim::msec(20));  // drain in waves
  }
  run(sim::msec(200));
  ASSERT_EQ(got_b, want);
  ASSERT_EQ(got_o, want);

  std::vector<uint8_t> rb(kArea), ro(kArea);
  for (size_t i = 0; i < 3; ++i) {
    batched->replica_load(i, 0, rb.data(), kArea);
    oracle->replica_load(i, 0, ro.data(), kArea);
    ASSERT_EQ(std::memcmp(rb.data(), ro.data(), kArea), 0)
        << "replica " << i << " diverged from loop-of-gwrite oracle";
  }
}

// The credit window applies to batches exactly as to single ops: flood
// more gwritevs than max_inflight and every one still completes (excess
// parks in the waiting ring), with regions intact.
TEST_F(GwritevFixture, BatchesQueueWhenCreditWindowIsFull) {
  auto g = make_group();
  const int n = 64;  // 4x max_inflight
  int done = 0;
  for (int k = 0; k < n; ++k) {
    const uint64_t off = 512 + static_cast<uint64_t>(k) * 32;
    const uint64_t v0 = 100 + k, v1 = 10000 + k;
    g->client_store(off, &v0, 8);
    g->client_store(off + 16, &v1, 8);
    g->gwritev({{off, 8}, {off + 16, 8}}, false, [&] { ++done; });
  }
  cluster.loop().run_until(cluster.loop().now() + sim::msec(500));
  ASSERT_EQ(done, n);
  for (int k = 0; k < n; ++k) {
    const uint64_t off = 512 + static_cast<uint64_t>(k) * 32;
    for (size_t i = 0; i < 3; ++i) {
      uint64_t a = 0, b = 0;
      g->replica_load(i, off, &a, 8);
      g->replica_load(i, off + 16, &b, 8);
      EXPECT_EQ(a, 100u + k);
      EXPECT_EQ(b, 10000u + k);
    }
  }
  EXPECT_EQ(g->counters().gwritevs, static_cast<uint64_t>(n));
  EXPECT_EQ(g->counters().gwritev_extents, static_cast<uint64_t>(2 * n));
}

// Non-HyperLoop backends inherit the base-class loop fallback; sanity
// check it through the virtual interface on the batched group's oracle
// semantics (done fires after the last extent).
TEST_F(GwritevFixture, DoneFiresAfterLastExtent) {
  auto g = make_group();
  const uint64_t sentinel = 0xFEEDFACE;
  g->client_store(9000, &sentinel, 8);
  g->client_store(9100, &sentinel, 8);
  bool done = false;
  g->gwritev({{9000, 8}, {9100, 8}}, true, [&] {
    done = true;
    // At completion every extent must already be replicated.
    for (size_t i = 0; i < 3; ++i) {
      uint64_t v = 0;
      g->replica_load(i, 9000, &v, 8);
      EXPECT_EQ(v, sentinel);
      g->replica_load(i, 9100, &v, 8);
      EXPECT_EQ(v, sentinel);
    }
  });
  run();
  ASSERT_TRUE(done);
}

}  // namespace
}  // namespace hyperloop::core
