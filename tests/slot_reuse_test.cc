// Generation-tag regression tests for the dense QP/CQ/MR tables.
//
// The hazard these lock in: with dense slot recycling, a destroyed QP's
// slot (or a deregistered MR's slot) is handed to the next create/register.
// A packet still in flight carries the *old* id; without generation tags
// it would resolve to the unrelated new object — delivering data into the
// wrong queue or through a revoked protection key. The tables detect this
// via the generation bits packed into the id: the stale id resolves to
// nothing, the packet is dropped (invalid_qp_drops) or refused
// (remote-access error), and the recycled object is untouched.
#include <gtest/gtest.h>

#include <cstring>

#include "rdma/network.h"
#include "rdma/nic.h"
#include "rdma/slot_table.h"
#include "sim/event_loop.h"

namespace hyperloop::rdma {
namespace {

struct ReuseFixture : ::testing::Test {
  sim::EventLoop loop;
  Network net{loop, Network::Config{}};
  HostMemory mem_a{1 << 20}, mem_b{1 << 20};
  Nic a{loop, net, mem_a, nullptr}, b{loop, net, mem_b, nullptr};

  CompletionQueue* cq_a = a.create_cq();
  QueuePair* qa = a.create_qp(cq_a, nullptr, 16);

  Addr buf_b = 0;
  MemoryRegion mr_b{};

  void SetUp() override {
    buf_b = mem_b.alloc(4096);
    mr_b = b.register_mr(buf_b, 4096, kRemoteRead | kRemoteWrite);
  }
};

TEST_F(ReuseFixture, StalePacketForRecycledQpnIsDropped) {
  QueuePair* qb = b.create_qp(nullptr, nullptr, 16);
  const uint32_t old_qpn = qb->qpn;
  a.connect(qa, b.id(), old_qpn);
  b.connect(qb, a.id(), qa->qpn);

  // Launch a WRITE toward qb, then destroy qb before the packet can be
  // delivered and recycle its slot with a fresh QP.
  mem_a.write(mem_a.alloc(128), "stale", 6);
  a.post_send(qa, make_write(64, 0, buf_b, mr_b.rkey, 128, /*wr_id=*/7));
  b.destroy_qp(qb);
  ASSERT_EQ(b.qp(old_qpn), nullptr);

  QueuePair* fresh = b.create_qp(nullptr, nullptr, 16);
  // Same slot, different generation: the dense table really did recycle.
  ASSERT_EQ(fresh->qpn & SlotTable<QueuePair>::kSlotMask,
            old_qpn & SlotTable<QueuePair>::kSlotMask);
  ASSERT_NE(fresh->qpn, old_qpn);

  // Run past the RNR retry budget: every (re)delivery of the stale packet
  // must be dropped by the generation check, never delivered to `fresh`.
  loop.run();
  EXPECT_GT(b.counters().invalid_qp_drops, 0u);
  EXPECT_EQ(fresh->expected_psn, 0u);      // untouched by stale traffic
  EXPECT_EQ(cq_a->completion_count(), 0u); // the WR never completes
  char out[8] = {};
  mem_b.read(buf_b, out, 6);
  EXPECT_STRNE(out, "stale");
}

TEST_F(ReuseFixture, RecycledQpCarriesFreshTrafficWhileStaleRetriesBounce) {
  QueuePair* qb = b.create_qp(nullptr, nullptr, 16);
  const uint32_t old_qpn = qb->qpn;
  a.connect(qa, b.id(), old_qpn);
  b.connect(qb, a.id(), qa->qpn);
  a.post_send(qa, make_write(64, 0, buf_b, mr_b.rkey, 64, 1));
  b.destroy_qp(qb);

  // The recycled QP serves a brand-new connection from a second client QP
  // while the stale packet (and its retransmissions) bounce off.
  QueuePair* fresh = b.create_qp(nullptr, nullptr, 16);
  ASSERT_EQ(fresh->qpn & SlotTable<QueuePair>::kSlotMask,
            old_qpn & SlotTable<QueuePair>::kSlotMask);
  CompletionQueue* cq_a2 = a.create_cq();
  QueuePair* qa2 = a.create_qp(cq_a2, nullptr, 16);
  a.connect(qa2, b.id(), fresh->qpn);
  b.connect(fresh, a.id(), qa2->qpn);

  mem_a.write(128, "fresh!!", 8);
  a.post_send(qa2, make_write(128, 0, buf_b + 256, mr_b.rkey, 8, 2));
  loop.run();

  Cqe c;
  ASSERT_TRUE(cq_a2->poll(&c));
  EXPECT_EQ(c.status, CqStatus::kSuccess);
  char out[8] = {};
  mem_b.read(buf_b + 256, out, 8);
  EXPECT_STREQ(out, "fresh!!");
  EXPECT_EQ(fresh->expected_psn, 1u);  // exactly the fresh WRITE
  EXPECT_GT(b.counters().invalid_qp_drops, 0u);
  EXPECT_EQ(cq_a->completion_count(), 0u);
}

TEST_F(ReuseFixture, StaleRkeyForRecycledMrSlotIsRefused) {
  QueuePair* qb = b.create_qp(nullptr, nullptr, 16);
  a.connect(qa, b.id(), qb->qpn);
  b.connect(qb, a.id(), qa->qpn);

  const uint32_t stale_rkey = mr_b.rkey;
  a.post_send(qa, make_write(64, 0, buf_b, stale_rkey, 32, /*wr_id=*/9));

  // Revoke the registration and recycle its slot before delivery.
  ASSERT_TRUE(b.mr_table().deregister(stale_rkey));
  MemoryRegion fresh = b.register_mr(buf_b, 4096, kRemoteRead | kRemoteWrite);
  ASSERT_EQ(fresh.rkey & MrTable::kSlotMask, stale_rkey & MrTable::kSlotMask);
  ASSERT_NE(fresh.rkey, stale_rkey);

  loop.run();

  // The write is refused with a remote-access error: the stale key's
  // generation mismatches even though the slot is live again.
  Cqe c;
  ASSERT_TRUE(cq_a->poll(&c));
  EXPECT_EQ(c.status, CqStatus::kRemoteAccessError);
  EXPECT_GT(b.counters().remote_access_errors, 0u);
  uint64_t probe = 0;
  mem_b.read(buf_b, &probe, sizeof(probe));
  EXPECT_EQ(probe, 0u);  // nothing landed
}

TEST_F(ReuseFixture, DestroyedCqIdGoesStale) {
  CompletionQueue* c = b.create_cq();
  const uint32_t id = c->id();
  ASSERT_EQ(b.cq(id), c);
  b.destroy_cq(c);
  EXPECT_EQ(b.cq(id), nullptr);
  CompletionQueue* again = b.create_cq();
  EXPECT_EQ(again->id() & SlotTable<CompletionQueue>::kSlotMask,
            id & SlotTable<CompletionQueue>::kSlotMask);
  EXPECT_NE(again->id(), id);
  EXPECT_EQ(b.cq(id), nullptr);  // old id still resolves to nothing
}

}  // namespace
}  // namespace hyperloop::rdma
