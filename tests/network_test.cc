#include "rdma/network.h"

#include <gtest/gtest.h>

#include <cstring>
#include <utility>
#include <vector>

namespace hyperloop::rdma {
namespace {

Network::Config cfg() {
  Network::Config c;
  c.bandwidth_bps = 56e9;
  c.propagation_delay = sim::nsec(900);
  return c;
}

TEST(Network, DeliversToDestination) {
  sim::EventLoop loop;
  Network net(loop, cfg());
  int got_a = 0, got_b = 0;
  const NicId a = net.attach([&](Packet) { ++got_a; });
  const NicId b = net.attach([&](Packet) { ++got_b; });
  Packet p;
  p.src_nic = a;
  p.dst_nic = b;
  net.transmit(p);
  loop.run();
  EXPECT_EQ(got_a, 0);
  EXPECT_EQ(got_b, 1);
  EXPECT_EQ(net.packets_delivered(), 1u);
}

TEST(Network, LatencyIncludesPropagationAndSerialization) {
  sim::EventLoop loop;
  Network net(loop, cfg());
  sim::Time arrival = -1;
  const NicId a = net.attach([](Packet) {});
  const NicId b = net.attach([&](Packet) { arrival = loop.now(); });
  Packet p;
  p.src_nic = a;
  p.dst_nic = b;
  p.payload.resize(7000 - 64);  // wire bytes = 7000 -> 1us at 56 Gbps
  net.transmit(std::move(p));
  loop.run();
  EXPECT_NEAR(static_cast<double>(arrival), 1000.0 + 900.0, 20.0);
}

TEST(Network, FifoPerSource) {
  sim::EventLoop loop;
  Network net(loop, cfg());
  std::vector<uint64_t> order;
  const NicId a = net.attach([](Packet) {});
  const NicId b = net.attach([&](Packet p) { order.push_back(p.wr_seq); });
  for (uint64_t i = 0; i < 10; ++i) {
    Packet p;
    p.src_nic = a;
    p.dst_nic = b;
    p.wr_seq = i;
    p.payload.resize((i % 3) * 4000);  // varying sizes must not reorder
    net.transmit(std::move(p));
  }
  loop.run();
  ASSERT_EQ(order.size(), 10u);
  for (uint64_t i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Network, SourcePortSerializes) {
  sim::EventLoop loop;
  Network net(loop, cfg());
  std::vector<sim::Time> arrivals;
  const NicId a = net.attach([](Packet) {});
  const NicId b = net.attach([&](Packet) { arrivals.push_back(loop.now()); });
  // Two back-to-back 7000B (1us) packets: second arrives ~1us later.
  for (int i = 0; i < 2; ++i) {
    Packet p;
    p.src_nic = a;
    p.dst_nic = b;
    p.payload.resize(7000 - 64);
    net.transmit(std::move(p));
  }
  loop.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_NEAR(static_cast<double>(arrivals[1] - arrivals[0]), 1000.0, 20.0);
}

TEST(Network, DistinctSourcesDoNotSerialize) {
  sim::EventLoop loop;
  Network net(loop, cfg());
  std::vector<sim::Time> arrivals;
  const NicId a = net.attach([](Packet) {});
  const NicId b = net.attach([](Packet) {});
  const NicId c = net.attach([&](Packet) { arrivals.push_back(loop.now()); });
  for (NicId src : {a, b}) {
    Packet p;
    p.src_nic = src;
    p.dst_nic = c;
    p.payload.resize(7000 - 64);
    net.transmit(std::move(p));
  }
  loop.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], arrivals[1]);  // parallel links
}

TEST(Network, DatagramDelivery) {
  sim::EventLoop loop;
  Network net(loop, cfg());
  std::vector<uint8_t> got;
  NicId got_src = 999;
  const NicId a = net.attach([](Packet) {});
  const NicId b = net.attach([](Packet) {},
                             [&](NicId src, std::vector<uint8_t> bytes) {
                               got_src = src;
                               got = std::move(bytes);
                             });
  net.transmit_datagram(a, b, {1, 2, 3});
  loop.run();
  EXPECT_EQ(got_src, a);
  EXPECT_EQ(got, (std::vector<uint8_t>{1, 2, 3}));
}

TEST(Network, SetDatagramHandlerLater) {
  sim::EventLoop loop;
  Network net(loop, cfg());
  const NicId a = net.attach([](Packet) {});
  const NicId b = net.attach([](Packet) {});
  int got = 0;
  net.set_datagram_handler(b, [&](NicId, std::vector<uint8_t>) { ++got; });
  net.transmit_datagram(a, b, {9});
  loop.run();
  EXPECT_EQ(got, 1);
}

TEST(Network, SerializeTimeScalesWithBytes) {
  sim::EventLoop loop;
  Network net(loop, cfg());
  EXPECT_LT(net.serialize_time(100), net.serialize_time(10000));
  EXPECT_GT(net.serialize_time(0), 0);  // strictly positive keeps FIFO
}

TEST(PayloadBuf, CopySharesOneBlockAndMoveSteals) {
  PayloadBuf a;
  a.resize_uninit(100);
  std::memset(a.data(), 0xAB, 100);
  PayloadBuf b = a;
  EXPECT_TRUE(b.shares_with(a));
  EXPECT_EQ(a.ref_count(), 2u);
  EXPECT_EQ(b.data(), a.data());  // no byte copy
  PayloadBuf c = std::move(b);
  EXPECT_TRUE(c.shares_with(a));
  EXPECT_EQ(a.ref_count(), 2u);  // move transfers, doesn't add
  EXPECT_EQ(b.size(), 0u);       // NOLINT(bugprone-use-after-move)
}

TEST(PayloadBuf, SharedBlockNotRecycledWhileOtherHandleLive) {
  PayloadBuf a;
  a.resize_uninit(100);
  std::memset(a.data(), 0xAB, 100);
  PayloadBuf b = a;  // a retransmit-window copy, say
  a.reset();         // one sharer drops its reference
  // The block must NOT have returned to the pool: a fresh same-class
  // acquisition cannot alias b's live bytes.
  PayloadBuf c;
  c.resize_uninit(100);
  EXPECT_FALSE(c.shares_with(b));
  EXPECT_NE(c.data(), b.data());
  std::memset(c.data(), 0x00, 100);
  EXPECT_EQ(b.data()[0], 0xAB);
  EXPECT_EQ(b.data()[99], 0xAB);
}

TEST(PayloadBuf, FullyReleasedBlockIsRecycledByThePool) {
  PayloadBuf::pool_trim();  // empty free lists: the first acquire must miss
  const uint64_t misses0 = PayloadBuf::pool_misses();
  uint64_t hits_before;
  {
    PayloadBuf a;
    a.resize_uninit(256);
    hits_before = PayloadBuf::pool_hits();
  }  // last reference gone -> block parks on the 256B free list
  PayloadBuf b;
  b.resize_uninit(200);  // same size class
  EXPECT_EQ(PayloadBuf::pool_hits(), hits_before + 1);
  EXPECT_EQ(PayloadBuf::pool_misses() - misses0, 1u);
}

TEST(Network, TransmitSharesPayloadWithSendersCopy) {
  sim::EventLoop loop;
  Network net(loop, cfg());
  const uint8_t* delivered_data = nullptr;
  const NicId a = net.attach([](Packet) {});
  const NicId b =
      net.attach([&](Packet p) { delivered_data = p.payload.data(); });
  Packet p;
  p.src_nic = a;
  p.dst_nic = b;
  p.payload.resize_uninit(512);
  std::memset(p.payload.data(), 0x5A, 512);
  const uint8_t* sender_data = p.payload.data();
  Packet retained = p;  // models the RC unacked-window copy
  net.transmit(std::move(p));
  loop.run();
  // The in-flight copy and the retained copy reference the same block:
  // forwarding a payload down a replication chain never duplicates bytes.
  EXPECT_EQ(delivered_data, sender_data);
  EXPECT_EQ(retained.payload.data(), sender_data);
  EXPECT_EQ(retained.payload.data()[511], 0x5A);
}

}  // namespace
}  // namespace hyperloop::rdma
