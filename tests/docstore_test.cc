#include "apps/docstore/docstore.h"

#include <gtest/gtest.h>

#include "apps/ycsb/driver.h"
#include "apps/ycsb/workload.h"
#include "core/hyperloop_group.h"
#include "core/server.h"
#include "core/tcp_group.h"

namespace hyperloop::apps {
namespace {

using core::Cluster;
using core::HyperLoopGroup;
using core::RegionLayout;
using core::Server;

enum class Backend { kHyperLoop, kTcp };

class DocStoreTest : public ::testing::TestWithParam<Backend> {
 protected:
  DocStoreTest() {
    Cluster::Config cc;
    cc.num_servers = 4;
    cc.server.cpu.num_cores = 8;
    cc.server.nvm_size = 32u << 20;
    cluster_ = std::make_unique<Cluster>(cc);
    layout_.region_size = 8u << 20;
    layout_.log_size = 512 << 10;
    layout_.num_locks = 64;
    std::vector<Server*> reps = {&cluster_->server(0), &cluster_->server(1),
                                 &cluster_->server(2)};
    if (GetParam() == Backend::kHyperLoop) {
      HyperLoopGroup::Config gc;
      gc.region_size = layout_.region_size;
      gc.ring_slots = 128;
      gc.max_inflight = 32;
      group_ =
          std::make_unique<HyperLoopGroup>(cluster_->server(3), reps, gc);
    } else {
      core::TcpReplicationGroup::Config gc;
      gc.region_size = layout_.region_size;
      group_ = std::make_unique<core::TcpReplicationGroup>(
          cluster_->server(3), reps, gc);
    }
    DocStore::Config dc;
    dc.layout = layout_;
    dc.value_size = 256;
    store_ = std::make_unique<DocStore>(*group_, cluster_->server(3), dc);
  }

  void run(sim::Duration d = sim::msec(500)) {
    cluster_->loop().run_until(cluster_->loop().now() + d);
  }

  RegionLayout layout_;
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<core::ReplicationGroup> group_;
  std::unique_ptr<DocStore> store_;
};

TEST_P(DocStoreTest, InsertThenRead) {
  bool ins = false;
  store_->insert(11, WorkloadGenerator::value_for(11, 256),
                 [&](bool ok) { ins = ok; });
  run();
  ASSERT_TRUE(ins);
  bool ok = false;
  std::vector<uint8_t> v;
  store_->read(11, [&](bool o, std::vector<uint8_t> val) {
    ok = o;
    v = std::move(val);
  });
  run();
  ASSERT_TRUE(ok);
  EXPECT_EQ(v, WorkloadGenerator::value_for(11, 256));
}

TEST_P(DocStoreTest, UpdateIsTransactionalOnAllReplicas) {
  bool upd = false;
  store_->insert(4, WorkloadGenerator::value_for(4, 256), [](bool) {});
  store_->update(4, WorkloadGenerator::value_for(44, 256),
                 [&](bool ok) { upd = ok; });
  run();
  ASSERT_TRUE(upd);
  // The document is applied (not just logged) on every replica.
  const uint64_t stride = 16 + 256;
  for (size_t i = 0; i < 3; ++i) {
    std::vector<uint8_t> doc(stride);
    group_->replica_load(i, layout_.db_base() + 4 * stride, doc.data(),
                         static_cast<uint32_t>(stride));
    uint64_t key = 0;
    std::memcpy(&key, doc.data(), 8);
    EXPECT_EQ(key, 4u);
    EXPECT_EQ(std::vector<uint8_t>(doc.begin() + 16, doc.end()),
              WorkloadGenerator::value_for(44, 256));
  }
}

TEST_P(DocStoreTest, CommittedUpdateSurvivesCrashEverywhere) {
  bool upd = false;
  store_->update(9, WorkloadGenerator::value_for(99, 256),
                 [&](bool ok) { upd = ok; });
  run();
  ASSERT_TRUE(upd);
  for (size_t i = 0; i < 3; ++i) {
    Server& s = GetParam() == Backend::kHyperLoop
                    ? static_cast<HyperLoopGroup*>(group_.get())
                          ->replica_server(i)
                    : static_cast<core::TcpReplicationGroup*>(group_.get())
                          ->replica_server(i);
    s.nvm().crash();
    const uint64_t stride = 16 + 256;
    std::vector<uint8_t> doc(stride);
    group_->replica_load(i, layout_.db_base() + 9 * stride, doc.data(),
                         static_cast<uint32_t>(stride));
    EXPECT_EQ(std::vector<uint8_t>(doc.begin() + 16, doc.end()),
              WorkloadGenerator::value_for(99, 256))
        << "replica " << i;
  }
}

TEST_P(DocStoreTest, ReadMissingDocFails) {
  bool ok = true;
  store_->read(12345, [&](bool o, std::vector<uint8_t>) { ok = o; });
  run();
  EXPECT_FALSE(ok);
}

TEST_P(DocStoreTest, ScanFindsLoadedRange) {
  store_->bulk_load(200);
  run(sim::msec(200));
  bool ok = false;
  store_->scan(50, 20, [&](bool o) { ok = o; });
  run();
  EXPECT_TRUE(ok);
}

TEST_P(DocStoreTest, RmwRoundTrips) {
  store_->bulk_load(50);
  run(sim::msec(100));
  bool ok = false;
  store_->read_modify_write(20, WorkloadGenerator::value_for(777, 256),
                            [&](bool o) { ok = o; });
  run();
  ASSERT_TRUE(ok);
  std::vector<uint8_t> v;
  store_->read(20, [&](bool, std::vector<uint8_t> val) { v = std::move(val); });
  run();
  EXPECT_EQ(v, WorkloadGenerator::value_for(777, 256));
}

TEST_P(DocStoreTest, ConcurrentWritersOnSameStripeSerialize) {
  // Keys 0 and 64 share lock stripe 0 (64 stripes): both commit.
  int done = 0;
  store_->update(0, WorkloadGenerator::value_for(1, 256),
                 [&](bool ok) { done += ok ? 1 : 0; });
  store_->update(64, WorkloadGenerator::value_for(2, 256),
                 [&](bool ok) { done += ok ? 1 : 0; });
  run(sim::seconds(2));
  EXPECT_EQ(done, 2);
}

TEST_P(DocStoreTest, YcsbMixRunsClean) {
  store_->bulk_load(500);
  run(sim::msec(200));
  WorkloadSpec spec = WorkloadSpec::A();
  spec.value_size = 256;
  WorkloadGenerator gen(spec, 500, cluster_->fork_rng());
  YcsbDriver::Config dc;
  dc.threads = 4;
  dc.total_ops = 1000;
  YcsbDriver driver(cluster_->loop(), *store_, gen, dc);
  bool complete = false;
  driver.start([&] { complete = true; });
  run(sim::seconds(60));
  ASSERT_TRUE(complete);
  EXPECT_EQ(driver.failed(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Backends, DocStoreTest,
                         ::testing::Values(Backend::kHyperLoop, Backend::kTcp),
                         [](const auto& info) {
                           return info.param == Backend::kHyperLoop
                                      ? "HyperLoop"
                                      : "TcpNative";
                         });

// Replica reads via the one-sided reader.
TEST(DocStoreReplicaRead, ReadsFromTailReplica) {
  Cluster::Config cc;
  cc.num_servers = 4;
  Cluster cluster(cc);
  RegionLayout layout;
  layout.region_size = 4u << 20;
  layout.log_size = 256 << 10;
  layout.num_locks = 64;
  HyperLoopGroup::Config gc;
  gc.region_size = layout.region_size;
  gc.ring_slots = 64;
  gc.max_inflight = 16;
  std::vector<Server*> reps = {&cluster.server(0), &cluster.server(1),
                               &cluster.server(2)};
  HyperLoopGroup group(cluster.server(3), reps, gc);
  DocStore::Config dc;
  dc.layout = layout;
  dc.value_size = 256;
  dc.read_from_replica = true;
  dc.read_replica = 2;
  DocStore store(group, cluster.server(3), dc);
  core::RemoteReader reader(cluster.server(3), group.replica_server(2),
                            group.replica_region_base(2),
                            group.replica_data_rkey(2));
  store.set_remote_reader(&reader);

  bool ins = false;
  store.insert(8, WorkloadGenerator::value_for(8, 256),
               [&](bool ok) { ins = ok; });
  cluster.loop().run_until(sim::msec(500));
  ASSERT_TRUE(ins);

  bool ok = false;
  std::vector<uint8_t> v;
  store.read(8, [&](bool o, std::vector<uint8_t> val) {
    ok = o;
    v = std::move(val);
  });
  cluster.loop().run_until(cluster.loop().now() + sim::msec(100));
  ASSERT_TRUE(ok);
  EXPECT_EQ(v, WorkloadGenerator::value_for(8, 256));
  EXPECT_GT(reader.reads_issued(), 0u);
}

}  // namespace
}  // namespace hyperloop::apps
