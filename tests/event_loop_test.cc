#include "sim/event_loop.h"

#include <gtest/gtest.h>

#include <vector>

namespace hyperloop::sim {
namespace {

TEST(EventLoop, RunsEventsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(30, [&] { order.push_back(3); });
  loop.schedule_at(10, [&] { order.push_back(1); });
  loop.schedule_at(20, [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 30);
}

TEST(EventLoop, SameTimeIsFifo) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    loop.schedule_at(5, [&, i] { order.push_back(i); });
  }
  loop.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventLoop, ScheduleAfterUsesCurrentTime) {
  EventLoop loop;
  Time fired = -1;
  loop.schedule_at(100, [&] {
    loop.schedule_after(50, [&] { fired = loop.now(); });
  });
  loop.run();
  EXPECT_EQ(fired, 150);
}

TEST(EventLoop, PastSchedulingClampsToNow) {
  EventLoop loop;
  Time fired = -1;
  loop.schedule_at(100, [&] {
    loop.schedule_at(10, [&] { fired = loop.now(); });
  });
  loop.run();
  EXPECT_EQ(fired, 100);
}

TEST(EventLoop, CancelPreventsExecution) {
  EventLoop loop;
  bool ran = false;
  const EventId id = loop.schedule_at(10, [&] { ran = true; });
  EXPECT_TRUE(loop.cancel(id));
  EXPECT_FALSE(loop.cancel(id));  // second cancel is a no-op
  loop.run();
  EXPECT_FALSE(ran);
}

TEST(EventLoop, CancelAfterFireReturnsFalse) {
  EventLoop loop;
  const EventId id = loop.schedule_at(10, [] {});
  loop.run();
  EXPECT_FALSE(loop.cancel(id));
}

TEST(EventLoop, RunUntilStopsAtDeadline) {
  EventLoop loop;
  int count = 0;
  for (Time t = 10; t <= 100; t += 10) {
    loop.schedule_at(t, [&] { ++count; });
  }
  loop.run_until(50);
  EXPECT_EQ(count, 5);
  EXPECT_EQ(loop.now(), 50);
  loop.run();
  EXPECT_EQ(count, 10);
}

TEST(EventLoop, RunUntilAdvancesClockEvenWhenIdle) {
  EventLoop loop;
  loop.run_until(12345);
  EXPECT_EQ(loop.now(), 12345);
}

TEST(EventLoop, StopInterruptsRun) {
  EventLoop loop;
  int count = 0;
  for (int i = 0; i < 10; ++i) {
    loop.schedule_at(i, [&] {
      ++count;
      if (count == 3) loop.stop();
    });
  }
  loop.run();
  EXPECT_EQ(count, 3);
  EXPECT_GT(loop.pending(), 0u);
}

TEST(EventLoop, EventsCanScheduleRecursively) {
  EventLoop loop;
  int depth = 0;
  std::function<void()> recur = [&] {
    if (++depth < 100) loop.schedule_after(1, recur);
  };
  loop.schedule_after(0, recur);
  loop.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(loop.now(), 99);
}

TEST(EventLoop, PendingCountsOnlyLiveEvents) {
  EventLoop loop;
  const EventId a = loop.schedule_at(10, [] {});
  loop.schedule_at(20, [] {});
  EXPECT_EQ(loop.pending(), 2u);
  loop.cancel(a);
  EXPECT_EQ(loop.pending(), 1u);
}

}  // namespace
}  // namespace hyperloop::sim
