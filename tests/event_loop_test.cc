#include "sim/event_loop.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <new>
#include <vector>

// Binary-wide allocation counter: the steady-state zero-allocation claim
// in DESIGN.md is enforced here, not just asserted in prose. The default
// operator new[] forwards to operator new, so this hook sees it too.
static uint64_t g_alloc_count = 0;

void* operator new(std::size_t n) {
  ++g_alloc_count;
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace hyperloop::sim {
namespace {

TEST(EventLoop, RunsEventsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(30, [&] { order.push_back(3); });
  loop.schedule_at(10, [&] { order.push_back(1); });
  loop.schedule_at(20, [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 30);
}

TEST(EventLoop, SameTimeIsFifo) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    loop.schedule_at(5, [&, i] { order.push_back(i); });
  }
  loop.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventLoop, ScheduleAfterUsesCurrentTime) {
  EventLoop loop;
  Time fired = -1;
  loop.schedule_at(100, [&] {
    loop.schedule_after(50, [&] { fired = loop.now(); });
  });
  loop.run();
  EXPECT_EQ(fired, 150);
}

TEST(EventLoop, PastSchedulingClampsToNow) {
  EventLoop loop;
  Time fired = -1;
  loop.schedule_at(100, [&] {
    loop.schedule_at(10, [&] { fired = loop.now(); });
  });
  loop.run();
  EXPECT_EQ(fired, 100);
}

TEST(EventLoop, CancelPreventsExecution) {
  EventLoop loop;
  bool ran = false;
  const EventId id = loop.schedule_at(10, [&] { ran = true; });
  EXPECT_TRUE(loop.cancel(id));
  EXPECT_FALSE(loop.cancel(id));  // second cancel is a no-op
  loop.run();
  EXPECT_FALSE(ran);
}

TEST(EventLoop, CancelAfterFireReturnsFalse) {
  EventLoop loop;
  const EventId id = loop.schedule_at(10, [] {});
  loop.run();
  EXPECT_FALSE(loop.cancel(id));
}

TEST(EventLoop, RunUntilStopsAtDeadline) {
  EventLoop loop;
  int count = 0;
  for (Time t = 10; t <= 100; t += 10) {
    loop.schedule_at(t, [&] { ++count; });
  }
  loop.run_until(50);
  EXPECT_EQ(count, 5);
  EXPECT_EQ(loop.now(), 50);
  loop.run();
  EXPECT_EQ(count, 10);
}

TEST(EventLoop, RunUntilAdvancesClockEvenWhenIdle) {
  EventLoop loop;
  loop.run_until(12345);
  EXPECT_EQ(loop.now(), 12345);
}

TEST(EventLoop, StopInterruptsRun) {
  EventLoop loop;
  int count = 0;
  for (int i = 0; i < 10; ++i) {
    loop.schedule_at(i, [&] {
      ++count;
      if (count == 3) loop.stop();
    });
  }
  loop.run();
  EXPECT_EQ(count, 3);
  EXPECT_GT(loop.pending(), 0u);
}

TEST(EventLoop, EventsCanScheduleRecursively) {
  EventLoop loop;
  int depth = 0;
  std::function<void()> recur = [&] {
    if (++depth < 100) loop.schedule_after(1, recur);
  };
  loop.schedule_after(0, recur);
  loop.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(loop.now(), 99);
}

TEST(EventLoop, PendingCountsOnlyLiveEvents) {
  EventLoop loop;
  const EventId a = loop.schedule_at(10, [] {});
  loop.schedule_at(20, [] {});
  EXPECT_EQ(loop.pending(), 2u);
  loop.cancel(a);
  EXPECT_EQ(loop.pending(), 1u);
}

TEST(EventLoop, StaleIdCannotCancelRecycledSlot) {
  EventLoop loop;
  bool b_ran = false;
  const EventId a = loop.schedule_at(10, [] {});
  EXPECT_TRUE(loop.cancel(a));
  loop.run();  // pops the dead heap entry, recycling the slot
  const EventId b = loop.schedule_at(20, [&] { b_ran = true; });
  // The slab reuses the freed slot, so b must carry a fresh generation
  // tag that makes the stale id dead.
  ASSERT_EQ(static_cast<uint32_t>(a), static_cast<uint32_t>(b));
  EXPECT_NE(a, b);
  EXPECT_FALSE(loop.cancel(a));
  loop.run();
  EXPECT_TRUE(b_ran);
}

TEST(EventLoop, CancelAfterFireOfRecycledSlotReturnsFalse) {
  EventLoop loop;
  const EventId a = loop.schedule_at(10, [] {});
  loop.run();
  bool b_ran = false;
  const EventId b = loop.schedule_at(20, [&] { b_ran = true; });
  ASSERT_EQ(static_cast<uint32_t>(a), static_cast<uint32_t>(b));
  EXPECT_FALSE(loop.cancel(a));  // fired long ago; must not kill b
  loop.run();
  EXPECT_TRUE(b_ran);
}

TEST(EventLoop, ScheduleInsideCallbackAtSameTimeRunsAfterPending) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(10, [&] {
    order.push_back(0);
    // Same timestamp, scheduled during dispatch: FIFO seq puts it after
    // the already-pending same-time event.
    loop.schedule_at(10, [&] { order.push_back(2); });
  });
  loop.schedule_at(10, [&] { order.push_back(1); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventLoop, SteadyStateScheduleFireCycleDoesNotAllocate) {
  EventLoop loop;
  int n = 0;
  struct Chain {
    EventLoop* loop;
    int* n;
    void operator()() const {
      if (++*n < 1000) loop->schedule_after(1, Chain{loop, n});
    }
  };
  // Warm-up lap grows the slab and the heap array once.
  loop.schedule_after(1, Chain{&loop, &n});
  loop.run();
  n = 0;
  const uint64_t before = g_alloc_count;
  loop.schedule_after(1, Chain{&loop, &n});
  loop.run();
  EXPECT_EQ(g_alloc_count, before);
  EXPECT_EQ(loop.callback_heap_allocs(), 0u);
  EXPECT_EQ(n, 1000);
}

TEST(EventLoop, SteadyStateCancelChurnDoesNotAllocate) {
  EventLoop loop;
  struct Noop {
    void operator()() const {}
  };
  std::vector<EventId> ids;
  ids.reserve(256);
  for (int i = 0; i < 256; ++i) {
    ids.push_back(loop.schedule_after(1000000, Noop{}));
  }
  uint64_t cancelled = 0;
  auto churn_round = [&] {
    for (EventId& id : ids) {
      cancelled += loop.cancel(id) ? 1 : 0;
      id = loop.schedule_after(1000000, Noop{});
    }
    // Cancellation is lazy; advancing the clock one tick prunes this
    // round's dead heap entries (they sort ahead of the replacements).
    loop.run_until(loop.now() + 1);
  };
  churn_round();  // warm-up: heap reaches its steady-state capacity
  const uint64_t before = g_alloc_count;
  for (int round = 0; round < 100; ++round) churn_round();
  EXPECT_EQ(g_alloc_count, before);
  EXPECT_EQ(cancelled, 101u * 256u);
  for (EventId id : ids) loop.cancel(id);
}

}  // namespace
}  // namespace hyperloop::sim
