#include "core/tcp_stack.h"

#include <gtest/gtest.h>

#include <string>

#include "core/server.h"

namespace hyperloop::core {
namespace {

struct TcpFixture : ::testing::Test {
  Cluster cluster{[] {
    Cluster::Config c;
    c.num_servers = 2;
    c.server.cpu.num_cores = 4;
    return c;
  }()};
  Server& a = cluster.server(0);
  Server& b = cluster.server(1);
};

TEST_F(TcpFixture, DeliversMessageToBoundPort) {
  const auto proc_b = b.sched().create_process("srv");
  std::string got;
  rdma::NicId got_src = 999;
  b.tcp().listen(80, proc_b, [&](rdma::NicId src, uint16_t,
                                 std::vector<uint8_t> bytes) {
    got.assign(bytes.begin(), bytes.end());
    got_src = src;
  });
  const auto proc_a = a.sched().create_process("cli");
  std::string msg = "GET /";
  a.tcp().send(proc_a, b.nic().id(), 80,
               std::vector<uint8_t>(msg.begin(), msg.end()));
  cluster.loop().run();
  EXPECT_EQ(got, msg);
  EXPECT_EQ(got_src, a.nic().id());
}

TEST_F(TcpFixture, ChargesCpuOnBothEnds) {
  const auto proc_b = b.sched().create_process("srv");
  b.tcp().listen(80, proc_b,
                 [](rdma::NicId, uint16_t, std::vector<uint8_t>) {});
  const auto proc_a = a.sched().create_process("cli");
  a.tcp().send(proc_a, b.nic().id(), 80, std::vector<uint8_t>(1024));
  cluster.loop().run();
  EXPECT_GT(a.sched().stats(proc_a).cpu_time, 0);
  EXPECT_GT(b.sched().stats(proc_b).cpu_time, 0);
}

TEST_F(TcpFixture, MultiplePortsAreIndependent) {
  const auto p1 = b.sched().create_process("p1");
  const auto p2 = b.sched().create_process("p2");
  int got1 = 0, got2 = 0;
  b.tcp().listen(80, p1,
                 [&](rdma::NicId, uint16_t, std::vector<uint8_t>) { ++got1; });
  b.tcp().listen(81, p2,
                 [&](rdma::NicId, uint16_t, std::vector<uint8_t>) { ++got2; });
  const auto cli = a.sched().create_process("cli");
  a.tcp().send(cli, b.nic().id(), 80, {1});
  a.tcp().send(cli, b.nic().id(), 81, {2});
  a.tcp().send(cli, b.nic().id(), 81, {3});
  cluster.loop().run();
  EXPECT_EQ(got1, 1);
  EXPECT_EQ(got2, 2);
}

TEST_F(TcpFixture, RoundTripRpc) {
  const auto srv = b.sched().create_process("srv");
  const auto cli = a.sched().create_process("cli");
  std::string reply;
  a.tcp().listen(9000, cli, [&](rdma::NicId, uint16_t,
                                std::vector<uint8_t> bytes) {
    reply.assign(bytes.begin(), bytes.end());
  });
  b.tcp().listen(80, srv, [&](rdma::NicId src, uint16_t,
                              std::vector<uint8_t>) {
    std::string r = "pong";
    b.tcp().send(srv, src, 9000, std::vector<uint8_t>(r.begin(), r.end()));
  });
  std::string ping = "ping";
  a.tcp().send(cli, b.nic().id(), 80,
               std::vector<uint8_t>(ping.begin(), ping.end()));
  cluster.loop().run();
  EXPECT_EQ(reply, "pong");
}

TEST_F(TcpFixture, LatencyGrowsUnderLoad) {
  const auto srv = b.sched().create_process("srv");
  sim::Time recv_at = -1;
  b.tcp().listen(80, srv, [&](rdma::NicId, uint16_t, std::vector<uint8_t>) {
    recv_at = cluster.loop().now();
  });
  const auto cli = a.sched().create_process("cli");

  // Baseline latency (unloaded).
  sim::Time t0 = cluster.loop().now();
  a.tcp().send(cli, b.nic().id(), 80, {1});
  cluster.loop().run();
  const sim::Time unloaded = recv_at - t0;

  // Loaded receiver.
  b.add_background_load(32, cluster.fork_rng(),
                        {.tenants = 0, .median_burst = sim::usec(100),
                         .burst_sigma = 1.0, .mean_think = sim::usec(5)});
  cluster.loop().run_until(cluster.loop().now() + sim::msec(5));
  t0 = cluster.loop().now();
  recv_at = -1;
  a.tcp().send(cli, b.nic().id(), 80, {1});
  cluster.loop().run_until(cluster.loop().now() + sim::msec(500));
  ASSERT_GT(recv_at, 0);
  const sim::Time loaded = recv_at - t0;
  EXPECT_GT(loaded, unloaded * 2);
}

}  // namespace
}  // namespace hyperloop::core
