#include "apps/kvstore/kvstore.h"

#include <gtest/gtest.h>

#include "apps/ycsb/driver.h"
#include "apps/ycsb/workload.h"
#include "core/hyperloop_group.h"
#include "core/server.h"

namespace hyperloop::apps {
namespace {

using core::Cluster;
using core::HyperLoopGroup;
using core::RegionLayout;
using core::Server;

struct KvFixture : ::testing::Test {
  Cluster cluster{[] {
    Cluster::Config c;
    c.num_servers = 4;
    c.server.cpu.num_cores = 8;
    c.server.nvm_size = 32u << 20;
    return c;
  }()};
  RegionLayout layout = [] {
    RegionLayout l;
    l.region_size = 8u << 20;
    l.log_size = 512 << 10;
    l.num_locks = 64;
    return l;
  }();
  std::unique_ptr<HyperLoopGroup> group = [this] {
    HyperLoopGroup::Config gc;
    gc.region_size = layout.region_size;
    gc.ring_slots = 128;
    gc.max_inflight = 32;
    std::vector<Server*> reps = {&cluster.server(0), &cluster.server(1),
                                 &cluster.server(2)};
    return std::make_unique<HyperLoopGroup>(cluster.server(3), reps, gc);
  }();
  KvStore::Config kcfg = [this] {
    KvStore::Config c;
    c.layout = layout;
    c.value_size = 256;
    return c;
  }();
  std::vector<core::Server*> reps = {&cluster.server(0), &cluster.server(1),
                                     &cluster.server(2)};
  KvStore kv{*group, cluster.server(3), reps, kcfg};

  void run(sim::Duration d = sim::msec(500)) {
    cluster.loop().run_until(cluster.loop().now() + d);
  }
};

TEST_F(KvFixture, PutThenGet) {
  bool put = false;
  kv.insert(5, WorkloadGenerator::value_for(5, 256), [&](bool ok) { put = ok; });
  run();
  ASSERT_TRUE(put);
  bool got = false;
  std::vector<uint8_t> value;
  kv.read(5, [&](bool ok, std::vector<uint8_t> v) {
    got = ok;
    value = std::move(v);
  });
  run();
  ASSERT_TRUE(got);
  EXPECT_EQ(value, WorkloadGenerator::value_for(5, 256));
}

TEST_F(KvFixture, ReadMissingKeyFails) {
  bool ok = true;
  kv.read(9999, [&](bool o, std::vector<uint8_t>) { ok = o; });
  run(sim::msec(10));
  EXPECT_FALSE(ok);
}

TEST_F(KvFixture, UpdateOverwrites) {
  bool done = false;
  kv.insert(7, WorkloadGenerator::value_for(7, 256), [&](bool) {});
  kv.update(7, WorkloadGenerator::value_for(8, 256), [&](bool ok) { done = ok; });
  run();
  ASSERT_TRUE(done);
  std::vector<uint8_t> value;
  kv.read(7, [&](bool, std::vector<uint8_t> v) { value = std::move(v); });
  run();
  EXPECT_EQ(value, WorkloadGenerator::value_for(8, 256));
}

TEST_F(KvFixture, ReplicasSyncEventually) {
  bool put = false;
  kv.insert(3, WorkloadGenerator::value_for(3, 256), [&](bool ok) { put = ok; });
  run(sim::msec(2));
  ASSERT_TRUE(put);
  // Give the 1ms sync period a few rounds.
  run(sim::msec(10));
  for (size_t i = 0; i < 3; ++i) {
    std::vector<uint8_t> v;
    ASSERT_TRUE(kv.replica_read(i, 3, &v)) << "replica " << i;
    EXPECT_EQ(v, WorkloadGenerator::value_for(3, 256));
  }
}

TEST_F(KvFixture, CheckpointTruncatesLog) {
  // Push enough writes to cross the checkpoint threshold repeatedly.
  int done = 0;
  const int n = 2000;
  for (int k = 0; k < n; ++k) {
    kv.update(static_cast<uint64_t>(k % 100),
              WorkloadGenerator::value_for(static_cast<uint64_t>(k), 256),
              [&](bool ok) { done += ok ? 1 : 0; });
  }
  run(sim::seconds(20));
  EXPECT_EQ(done, n);
  EXPECT_GT(kv.checkpoints(), 0u);
  EXPECT_LT(kv.wal().used_bytes(), layout.log_size);
}

TEST_F(KvFixture, RecoveryAfterCrashRestoresCommittedData) {
  int done = 0;
  for (uint64_t k = 0; k < 50; ++k) {
    kv.insert(k, WorkloadGenerator::value_for(k * 3, 256),
              [&](bool ok) { done += ok ? 1 : 0; });
  }
  run(sim::seconds(2));
  ASSERT_EQ(done, 50);

  // Crash the coordinator's NVM (committed = durable by construction),
  // then rebuild the memtable from the region image.
  cluster.server(3).nvm().crash();
  kv.recover();
  for (uint64_t k = 0; k < 50; ++k) {
    std::vector<uint8_t> v;
    bool ok = false;
    kv.read(k, [&](bool o, std::vector<uint8_t> val) {
      ok = o;
      v = std::move(val);
    });
    run(sim::msec(5));
    ASSERT_TRUE(ok) << "key " << k;
    EXPECT_EQ(v, WorkloadGenerator::value_for(k * 3, 256)) << "key " << k;
  }
}

TEST_F(KvFixture, BulkLoadSeedsStoreAndReplicas) {
  kv.bulk_load(500);
  run(sim::msec(100));
  bool ok = false;
  std::vector<uint8_t> v;
  kv.read(499, [&](bool o, std::vector<uint8_t> val) {
    ok = o;
    v = std::move(val);
  });
  run(sim::msec(5));
  ASSERT_TRUE(ok);
  EXPECT_EQ(v, WorkloadGenerator::value_for(499, 256));
  EXPECT_EQ(kv.replica_record_count(0), 500u);
  // Replica region bytes match too.
  uint64_t key = 0;
  group->replica_load(2, layout.db_base() + 499 * (16 + 256), &key, 8);
  EXPECT_EQ(key, 499u);
}

TEST_F(KvFixture, YcsbWorkloadARunsClean) {
  kv.bulk_load(1000);
  run(sim::msec(100));
  WorkloadGenerator gen(
      [] {
        WorkloadSpec s = WorkloadSpec::A();
        s.value_size = 256;
        return s;
      }(),
      1000, cluster.fork_rng());
  YcsbDriver::Config dc;
  dc.threads = 4;
  dc.total_ops = 2000;
  YcsbDriver driver(cluster.loop(), kv, gen, dc);
  bool complete = false;
  driver.start([&] { complete = true; });
  run(sim::seconds(30));
  ASSERT_TRUE(complete);
  EXPECT_EQ(driver.completed(), 2000u);
  EXPECT_EQ(driver.failed(), 0u);
  EXPECT_GT(driver.latency(OpType::kUpdate).count(), 0u);
  EXPECT_GT(driver.latency(OpType::kRead).count(), 0u);
}

}  // namespace
}  // namespace hyperloop::apps
