// ShardedWal (segment-per-shard log) + streaming-CRC replay tests.
//
// Covers:
//   - per-segment appends land in their own slice (log, pointers, db)
//   - round-robin keyless appends spread across segments
//   - replay over a multi-segment log: each slice replays independently,
//     applying exactly its own committed records
//   - the streamed CRC path: records larger than the replay chunk (512B)
//     verify and apply correctly, and a corrupted committed record stops
//     replay at the corruption (committed prefix semantics)
#include "core/wal.h"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/hyperloop_group.h"
#include "core/server.h"

namespace hyperloop::core {
namespace {

constexpr uint32_t kShards = 4;

class ShardedWalTest : public ::testing::Test {
 protected:
  ShardedWalTest() {
    Cluster::Config cc;
    cc.num_servers = 4;
    cc.server.cpu.num_cores = 8;
    cluster_ = std::make_unique<Cluster>(cc);
    std::vector<Server*> reps = {&cluster_->server(0), &cluster_->server(1),
                                 &cluster_->server(2)};
    slice_.region_size = 256 << 10;  // per-shard slice
    slice_.log_size = 64 << 10;
    slice_.num_locks = 16;
    HyperLoopGroup::Config gc;
    gc.region_size = slice_.region_size * kShards;
    gc.ring_slots = 128;
    gc.max_inflight = 16;
    group_ = std::make_unique<HyperLoopGroup>(cluster_->server(3), reps, gc);
    wal_ = std::make_unique<ShardedWal>(*group_, slice_, kShards);
  }

  void run(sim::Duration d = sim::msec(200)) {
    cluster_->loop().run_until(cluster_->loop().now() + d);
  }

  std::vector<uint8_t> bytes(const std::string& s) {
    return std::vector<uint8_t>(s.begin(), s.end());
  }

  /// Replays slice `s` through the client region; returns records applied.
  uint64_t replay_shard(uint32_t s) {
    return ReplicatedWal::replay(
        slice_.shard_slice(s),
        [this](uint64_t off, void* dst, uint32_t len) {
          group_->client_load(off, dst, len);
        },
        [this](uint64_t off, const void* src, uint32_t len) {
          group_->client_store(off, src, len);
        });
  }

  std::string client_db_read(uint32_t s, uint64_t db_off, size_t len) {
    std::string out(len, '\0');
    group_->client_load(slice_.shard_slice(s).db_base() + db_off, out.data(),
                        static_cast<uint32_t>(len));
    return out;
  }

  RegionLayout slice_;
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<HyperLoopGroup> group_;
  std::unique_ptr<ShardedWal> wal_;
};

TEST_F(ShardedWalTest, SegmentsCommitIndependently) {
  uint64_t lsns[kShards] = {};
  for (uint32_t s = 0; s < kShards; ++s) {
    const std::string rec = "segment-" + std::to_string(s);
    ASSERT_TRUE(wal_->append_to(s, {{64, bytes(rec)}},
                                [&lsns, s](uint64_t l) { lsns[s] = l; }));
  }
  run();
  for (uint32_t s = 0; s < kShards; ++s) {
    EXPECT_EQ(lsns[s], 1u) << "segment " << s;  // each segment's own LSNs
    EXPECT_GT(wal_->shard(s).used_bytes(), 0u);
    // The durable tail pointer lives in the slice's own control block.
    uint64_t tail = 0;
    group_->replica_load(0, slice_.shard_slice(s).tail_ptr_offset(), &tail,
                         8);
    EXPECT_EQ(tail, wal_->shard(s).tail()) << "segment " << s;
  }
  EXPECT_EQ(wal_->totals().records_appended, uint64_t{kShards});
}

TEST_F(ShardedWalTest, RoundRobinAppendSpreadsSegments) {
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(wal_->append({{0, bytes("rr")}}, [](uint64_t) {}));
    run(sim::msec(20));
  }
  for (uint32_t s = 0; s < kShards; ++s) {
    EXPECT_EQ(wal_->shard(s).stats().records_appended, 2u) << "segment " << s;
  }
}

TEST_F(ShardedWalTest, MultiSegmentReplayAppliesEachSliceOnly) {
  // Different payloads per segment, including one spanning multiple
  // replay chunks (2KB > the 512B streaming scratch).
  std::vector<std::string> payloads;
  for (uint32_t s = 0; s < kShards; ++s) {
    std::string p(s == 2 ? 2048 : 100, static_cast<char>('A' + s));
    payloads.push_back(p);
    ASSERT_TRUE(wal_->append_to(
        s, {{128, bytes(p)}, {3000, bytes("tail-" + std::to_string(s))}},
        [](uint64_t) {}));
  }
  run();
  for (uint32_t s = 0; s < kShards; ++s) {
    EXPECT_EQ(replay_shard(s), 1u) << "segment " << s;
    EXPECT_EQ(client_db_read(s, 128, payloads[s].size()), payloads[s]);
    EXPECT_EQ(client_db_read(s, 3000, 6), "tail-" + std::to_string(s));
  }
}

TEST_F(ShardedWalTest, CorruptedRecordStopsReplayAtCommittedPrefix) {
  // Two fixed-size records in segment 1: header 24B + entry header 16B +
  // 8B padded payload = 48B per record.
  ASSERT_TRUE(wal_->append_to(1, {{0, bytes("rec-one!")}}, [](uint64_t) {}));
  run(sim::msec(50));
  ASSERT_TRUE(wal_->append_to(1, {{64, bytes("rec-two!")}},
                              [](uint64_t) {}));
  run(sim::msec(50));

  // Flip a byte inside the second record's payload in the client image.
  const RegionLayout lay = slice_.shard_slice(1);
  const uint64_t second_body = lay.log_base() + 48 + 24 + 16;
  uint8_t b = 0;
  group_->client_load(second_body + 2, &b, 1);
  b ^= 0xFF;
  group_->client_store(second_body + 2, &b, 1);

  // Replay applies record one, then stops at the CRC mismatch.
  EXPECT_EQ(replay_shard(1), 1u);
  EXPECT_EQ(client_db_read(1, 0, 8), "rec-one!");
  EXPECT_NE(client_db_read(1, 64, 8), "rec-two!");
  // Other segments are untouched by segment 1's corruption.
  ASSERT_TRUE(wal_->append_to(0, {{0, bytes("healthy!")}}, [](uint64_t) {}));
  run(sim::msec(50));
  EXPECT_EQ(replay_shard(0), 1u);
  EXPECT_EQ(client_db_read(0, 0, 8), "healthy!");
}

}  // namespace
}  // namespace hyperloop::core
