#include "stats/histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "sim/rng.h"

namespace hyperloop::stats {
namespace {

TEST(Histogram, EmptyReturnsZeros) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(50), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, SingleValue) {
  Histogram h;
  h.record(42);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 42);
  EXPECT_EQ(h.max(), 42);
  EXPECT_EQ(h.percentile(0), 42);
  EXPECT_EQ(h.percentile(50), 42);
  EXPECT_EQ(h.percentile(100), 42);
}

TEST(Histogram, SmallValuesAreExact) {
  Histogram h(6);  // values < 64 are exact
  for (int i = 0; i < 64; ++i) h.record(i);
  EXPECT_EQ(h.percentile(50), 31);  // rank 32 (ceil of 0.5*64) -> value 31
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 63);
}

TEST(Histogram, NegativeClampsToZero) {
  Histogram h;
  h.record(-5);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.count(), 1u);
}

TEST(Histogram, PercentileWithinRelativeError) {
  sim::Rng rng(3);
  Histogram h;
  std::vector<int64_t> vals;
  for (int i = 0; i < 100000; ++i) {
    const auto v = static_cast<int64_t>(rng.next_below(10'000'000)) + 1;
    vals.push_back(v);
    h.record(v);
  }
  std::sort(vals.begin(), vals.end());
  for (double p : {50.0, 90.0, 95.0, 99.0, 99.9}) {
    const auto idx = static_cast<size_t>(p / 100.0 * vals.size()) - 1;
    const double exact = static_cast<double>(vals[idx]);
    const double approx = static_cast<double>(h.percentile(p));
    EXPECT_NEAR(approx / exact, 1.0, 0.02) << "p" << p;
  }
}

TEST(Histogram, MeanIsExact) {
  Histogram h;
  int64_t sum = 0;
  for (int64_t v = 1; v <= 1000; ++v) {
    h.record(v * 117);
    sum += v * 117;
  }
  EXPECT_DOUBLE_EQ(h.mean(), static_cast<double>(sum) / 1000.0);
}

TEST(Histogram, MergeEqualsCombinedRecording) {
  sim::Rng rng(5);
  Histogram a, b, all;
  for (int i = 0; i < 10000; ++i) {
    const auto v = static_cast<int64_t>(rng.next_below(1'000'000));
    if (i % 2 == 0) {
      a.record(v);
    } else {
      b.record(v);
    }
    all.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_EQ(a.sum(), all.sum());
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
  for (double p : {50.0, 99.0}) {
    EXPECT_EQ(a.percentile(p), all.percentile(p));
  }
}

TEST(Histogram, RecordNCounts) {
  Histogram h;
  h.record_n(100, 7);
  EXPECT_EQ(h.count(), 7u);
  EXPECT_EQ(h.sum(), 700);
}

TEST(Histogram, ResetClears) {
  Histogram h;
  h.record(5);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(99), 0);
  h.record(9);
  EXPECT_EQ(h.max(), 9);
}

TEST(Histogram, HugeValuesDoNotOverflow) {
  Histogram h;
  h.record(int64_t{1} << 60);
  h.record(1);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_GE(h.percentile(100), (int64_t{1} << 60) / 2);
}

class HistogramPercentileSweep : public ::testing::TestWithParam<double> {};

TEST_P(HistogramPercentileSweep, MonotoneInP) {
  sim::Rng rng(11);
  Histogram h;
  for (int i = 0; i < 50000; ++i) {
    h.record(static_cast<int64_t>(rng.next_below(1'000'000)));
  }
  const double p = GetParam();
  EXPECT_LE(h.percentile(p), h.percentile(std::min(100.0, p + 5.0)));
  EXPECT_GE(h.percentile(p), h.min());
  EXPECT_LE(h.percentile(p), h.max());
}

INSTANTIATE_TEST_SUITE_P(Sweep, HistogramPercentileSweep,
                         ::testing::Values(1.0, 10.0, 25.0, 50.0, 75.0, 90.0,
                                           95.0, 99.0, 99.9));

}  // namespace
}  // namespace hyperloop::stats
