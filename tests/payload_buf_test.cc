// PayloadBuf slice/adopt unit tests: refcount lifetime, slice views that
// outlive their parent handle, pool return ordering, and the borrow
// (zero-copy arena adoption) copy-on-write discipline.
#include "rdma/payload_buf.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "rdma/memory.h"

namespace hyperloop::rdma {
namespace {

TEST(PayloadBuf, CopySharesBlockAndTracksRefcount) {
  PayloadBuf a;
  a.resize(256);
  for (size_t i = 0; i < 256; ++i) a.data()[i] = static_cast<uint8_t>(i);
  EXPECT_EQ(a.ref_count(), 1u);

  PayloadBuf b = a;
  EXPECT_TRUE(a.shares_with(b));
  EXPECT_EQ(a.ref_count(), 2u);
  EXPECT_EQ(b.data(), a.data()) << "copy must alias, not duplicate, bytes";

  {
    PayloadBuf c = b;
    EXPECT_EQ(a.ref_count(), 3u);
  }
  EXPECT_EQ(a.ref_count(), 2u);

  b.reset();
  EXPECT_EQ(a.ref_count(), 1u);
  EXPECT_EQ(a.data()[255], 255u);
}

TEST(PayloadBuf, SliceSharesParentBlock) {
  PayloadBuf a;
  a.resize(1024);
  for (size_t i = 0; i < 1024; ++i) a.data()[i] = static_cast<uint8_t>(i * 3);

  PayloadBuf s = a.slice(100, 200);
  EXPECT_TRUE(s.shares_with(a));
  EXPECT_EQ(s.size(), 200u);
  EXPECT_EQ(s.data(), a.data() + 100) << "a slice is a window, not a copy";
  for (size_t i = 0; i < 200; ++i) {
    ASSERT_EQ(s.data()[i], static_cast<uint8_t>((i + 100) * 3));
  }

  // Slice of a slice narrows further within the same block.
  PayloadBuf s2 = s.slice(50, 25);
  EXPECT_TRUE(s2.shares_with(a));
  EXPECT_EQ(s2.data(), a.data() + 150);
  EXPECT_EQ(s2.size(), 25u);
}

TEST(PayloadBuf, SliceKeepsBlockAliveAfterParentRelease) {
  PayloadBuf::pool_trim();
  PayloadBuf s;
  {
    PayloadBuf a;
    a.resize(512);
    for (size_t i = 0; i < 512; ++i) a.data()[i] = static_cast<uint8_t>(i ^ 7);
    s = a.slice(64, 128);
    EXPECT_EQ(s.ref_count(), 2u);
  }  // parent handle gone; the slice still owns the block
  EXPECT_EQ(s.ref_count(), 1u);
  EXPECT_EQ(PayloadBuf::pool_free_blocks(), 0u)
      << "block must not return to the pool while a slice is live";
  for (size_t i = 0; i < 128; ++i) {
    ASSERT_EQ(s.data()[i], static_cast<uint8_t>((i + 64) ^ 7));
  }
  s.reset();
  EXPECT_EQ(PayloadBuf::pool_free_blocks(), 1u)
      << "releasing the last slice returns the block";
}

TEST(PayloadBuf, PoolReturnsBlocksInLifoOrder) {
  PayloadBuf::pool_trim();
  PayloadBuf a, b;
  a.resize(4096);
  b.resize(4096);
  const uint8_t* pa = a.data();
  const uint8_t* pb = b.data();
  ASSERT_NE(pa, pb);

  // Release a then b: the free list is LIFO, so the next same-class
  // acquire must hand back b's block, then a's.
  a.reset();
  b.reset();
  EXPECT_EQ(PayloadBuf::pool_free_blocks(), 2u);

  const uint64_t hits_before = PayloadBuf::pool_hits();
  PayloadBuf c, d;
  c.resize(4096);
  EXPECT_EQ(c.data(), pb) << "most recently released block is reused first";
  d.resize(4096);
  EXPECT_EQ(d.data(), pa);
  EXPECT_EQ(PayloadBuf::pool_hits() - hits_before, 2u)
      << "both acquisitions must be pool hits, not allocations";
  EXPECT_EQ(PayloadBuf::pool_free_blocks(), 0u);
}

TEST(PayloadBuf, BorrowAliasesArenaWithoutCopying) {
  HostMemory mem(1 << 20);
  const Addr addr = mem.alloc(4096);
  std::vector<uint8_t> src(4096);
  for (size_t i = 0; i < src.size(); ++i) src[i] = static_cast<uint8_t>(i * 5);
  mem.write(addr, src.data(), src.size());

  const uint64_t copied_before = PayloadBuf::bytes_copied();
  PayloadBuf b = mem.borrow_payload(addr, 4096);
  EXPECT_TRUE(b.borrowed());
  EXPECT_EQ(mem.live_borrows(), 1u);
  EXPECT_EQ(b.data(), mem.view(addr, 4096)) << "borrow must alias the arena";
  EXPECT_EQ(PayloadBuf::bytes_copied(), copied_before)
      << "borrowing moves no bytes";

  // Releasing an untouched borrow never materializes.
  b.reset();
  EXPECT_EQ(mem.live_borrows(), 0u);
  EXPECT_EQ(PayloadBuf::bytes_copied(), copied_before);
}

TEST(PayloadBuf, BorrowMaterializesBeforeOverlappingStore) {
  HostMemory mem(1 << 20);
  const Addr addr = mem.alloc(4096);
  std::vector<uint8_t> src(4096, 0xAB);
  mem.write(addr, src.data(), src.size());

  PayloadBuf b = mem.borrow_payload(addr, 4096);
  PayloadBuf s = b.slice(1024, 512);  // slices share the borrow state

  // Overwrite part of the borrowed range: copy-on-write must run first,
  // so every sharer keeps the pre-store bytes.
  const uint64_t copied_before = PayloadBuf::bytes_copied();
  std::vector<uint8_t> clobber(64, 0xCD);
  mem.write(addr + 1100, clobber.data(), clobber.size());
  EXPECT_FALSE(b.borrowed());
  EXPECT_EQ(mem.live_borrows(), 0u);
  EXPECT_EQ(PayloadBuf::bytes_copied() - copied_before, 4096u)
      << "materialization copies the whole borrowed block once";

  for (size_t i = 0; i < 512; ++i) {
    ASSERT_EQ(s.data()[i], 0xAB) << "sharer observed post-store bytes";
  }
  // The arena itself has the new bytes.
  EXPECT_EQ(mem.view(addr + 1100, 1)[0], 0xCD);

  // A second store to the same range must not re-materialize.
  const uint64_t copied_mid = PayloadBuf::bytes_copied();
  mem.write(addr + 1100, clobber.data(), clobber.size());
  EXPECT_EQ(PayloadBuf::bytes_copied(), copied_mid);
}

TEST(PayloadBuf, NonOverlappingStoreLeavesBorrowAliased) {
  HostMemory mem(1 << 20);
  const Addr addr = mem.alloc(4096);
  const Addr other = mem.alloc(4096);
  std::vector<uint8_t> src(4096, 0x11);
  mem.write(addr, src.data(), src.size());

  PayloadBuf b = mem.borrow_payload(addr, 4096);
  std::vector<uint8_t> unrelated(4096, 0x22);
  mem.write(other, unrelated.data(), unrelated.size());
  EXPECT_TRUE(b.borrowed()) << "disjoint store must not materialize";
  EXPECT_EQ(mem.live_borrows(), 1u);
}

TEST(PayloadBuf, ArenaTeardownMaterializesLiveBorrows) {
  PayloadBuf b;
  {
    HostMemory mem(1 << 20);
    const Addr addr = mem.alloc(2048);
    std::vector<uint8_t> src(2048);
    for (size_t i = 0; i < src.size(); ++i) {
      src[i] = static_cast<uint8_t>(i + 9);
    }
    mem.write(addr, src.data(), src.size());
    b = mem.borrow_payload(addr, 2048);
    EXPECT_TRUE(b.borrowed());
  }  // arena destroyed while the borrow is live
  EXPECT_FALSE(b.borrowed());
  for (size_t i = 0; i < 2048; ++i) {
    ASSERT_EQ(b.data()[i], static_cast<uint8_t>(i + 9))
        << "teardown must preserve the borrowed bytes";
  }
}

}  // namespace
}  // namespace hyperloop::rdma
