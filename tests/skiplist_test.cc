#include "apps/kvstore/skiplist.h"

#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "sim/rng.h"

namespace hyperloop::apps {
namespace {

std::vector<uint8_t> val(uint64_t v) {
  std::vector<uint8_t> out(8);
  std::memcpy(out.data(), &v, 8);
  return out;
}

TEST(SkipList, InsertFind) {
  SkipList s;
  EXPECT_TRUE(s.insert(5, val(50)));
  EXPECT_TRUE(s.insert(3, val(30)));
  EXPECT_TRUE(s.insert(9, val(90)));
  EXPECT_EQ(s.size(), 3u);
  ASSERT_NE(s.find(3), nullptr);
  EXPECT_EQ(*s.find(3), val(30));
  EXPECT_EQ(s.find(4), nullptr);
}

TEST(SkipList, InsertOverwrites) {
  SkipList s;
  EXPECT_TRUE(s.insert(7, val(1)));
  EXPECT_FALSE(s.insert(7, val(2)));
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(*s.find(7), val(2));
}

TEST(SkipList, EraseRemoves) {
  SkipList s;
  for (uint64_t k = 0; k < 100; ++k) s.insert(k, val(k));
  EXPECT_TRUE(s.erase(50));
  EXPECT_FALSE(s.erase(50));
  EXPECT_EQ(s.find(50), nullptr);
  EXPECT_EQ(s.size(), 99u);
  ASSERT_NE(s.find(51), nullptr);
}

TEST(SkipList, IterationIsSorted) {
  SkipList s;
  sim::Rng rng(3);
  for (int i = 0; i < 1000; ++i) s.insert(rng.next_below(10000), val(1));
  uint64_t prev = 0;
  bool first = true;
  size_t n = 0;
  for (auto it = s.begin(); it.valid(); it.next()) {
    if (!first) {
      EXPECT_GT(it.key(), prev);
    }
    prev = it.key();
    first = false;
    ++n;
  }
  EXPECT_EQ(n, s.size());
}

TEST(SkipList, SeekFindsLowerBound) {
  SkipList s;
  for (uint64_t k = 0; k < 100; k += 10) s.insert(k, val(k));
  auto it = s.seek(35);
  ASSERT_TRUE(it.valid());
  EXPECT_EQ(it.key(), 40u);
  it = s.seek(40);
  EXPECT_EQ(it.key(), 40u);
  it = s.seek(95);
  EXPECT_FALSE(it.valid());
  it = s.seek(0);
  EXPECT_EQ(it.key(), 0u);
}

TEST(SkipList, ClearEmpties) {
  SkipList s;
  for (uint64_t k = 0; k < 50; ++k) s.insert(k, val(k));
  s.clear();
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.find(10), nullptr);
  s.insert(1, val(1));  // usable after clear
  EXPECT_EQ(s.size(), 1u);
}

TEST(SkipList, CopyFromDeepCopies) {
  SkipList a, b;
  for (uint64_t k = 0; k < 200; ++k) a.insert(k, val(k * 2));
  b.copy_from(a);
  EXPECT_EQ(b.size(), a.size());
  a.insert(5, val(999));
  EXPECT_EQ(*b.find(5), val(10));  // b unaffected
}

TEST(SkipList, MoveTransfersOwnership) {
  SkipList a;
  for (uint64_t k = 0; k < 10; ++k) a.insert(k, val(k));
  SkipList b = std::move(a);
  EXPECT_EQ(b.size(), 10u);
  EXPECT_NE(b.find(4), nullptr);
}

TEST(SkipList, MatchesMapModelUnderRandomOps) {
  SkipList s;
  std::map<uint64_t, std::vector<uint8_t>> model;
  sim::Rng rng(42);
  for (int step = 0; step < 20000; ++step) {
    const uint64_t k = rng.next_below(500);
    const double p = rng.next_double();
    if (p < 0.6) {
      auto v = val(rng.next_u64());
      s.insert(k, v);
      model[k] = v;
    } else if (p < 0.8) {
      EXPECT_EQ(s.erase(k), model.erase(k) > 0) << "step " << step;
    } else {
      const auto* got = s.find(k);
      auto it = model.find(k);
      if (it == model.end()) {
        EXPECT_EQ(got, nullptr) << "step " << step;
      } else {
        ASSERT_NE(got, nullptr) << "step " << step;
        EXPECT_EQ(*got, it->second) << "step " << step;
      }
    }
    if (step % 2000 == 0) {
      EXPECT_EQ(s.size(), model.size());
      // Full-order check.
      auto sit = s.begin();
      for (auto& [mk, mv] : model) {
        ASSERT_TRUE(sit.valid());
        EXPECT_EQ(sit.key(), mk);
        sit.next();
      }
      EXPECT_FALSE(sit.valid());
    }
  }
}

TEST(SkipList, LargeScale) {
  SkipList s;
  const uint64_t n = 100000;
  for (uint64_t k = 0; k < n; ++k) s.insert(k * 7 % n, val(k));
  EXPECT_EQ(s.size(), n);  // k*7 % n is a permutation (gcd(7,n)=1)
  for (uint64_t k = 0; k < n; k += 997) EXPECT_NE(s.find(k), nullptr);
}

}  // namespace
}  // namespace hyperloop::apps
