#include "core/hyperloop_group.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "core/server.h"

namespace hyperloop::core {
namespace {

struct GroupFixture : ::testing::Test {
  Cluster cluster{[] {
    Cluster::Config c;
    c.num_servers = 4;  // servers 0..2 = replicas, 3 = client
    c.server.cpu.num_cores = 8;
    return c;
  }()};

  HyperLoopGroup::Config gcfg = [] {
    HyperLoopGroup::Config c;
    c.region_size = 1 << 20;
    c.ring_slots = 64;
    c.max_inflight = 16;
    return c;
  }();

  std::unique_ptr<HyperLoopGroup> make_group(size_t replicas = 3) {
    std::vector<Server*> r;
    for (size_t i = 0; i < replicas; ++i) r.push_back(&cluster.server(i));
    return std::make_unique<HyperLoopGroup>(cluster.server(3), r, gcfg);
  }

  void run(sim::Duration d = sim::msec(50)) { cluster.loop().run_until(cluster.loop().now() + d); }
};

TEST_F(GroupFixture, GwriteReplicatesToAll) {
  auto g = make_group();
  const std::string data = "hyperloop-gwrite-payload";
  g->client_store(100, data.data(), data.size());
  bool done = false;
  g->gwrite(100, data.size(), false, [&] { done = true; });
  run();
  ASSERT_TRUE(done);
  for (size_t i = 0; i < 3; ++i) {
    std::string out(data.size(), '\0');
    g->replica_load(i, 100, out.data(), out.size());
    EXPECT_EQ(out, data) << "replica " << i;
  }
  EXPECT_EQ(g->total_rnr_stalls(), 0u);
}

TEST_F(GroupFixture, GwriteWithFlushIsDurableEverywhere) {
  auto g = make_group();
  const std::string data = "must-survive-crash";
  g->client_store(0, data.data(), data.size());
  bool done = false;
  g->gwrite(0, data.size(), true, [&] { done = true; });
  run();
  ASSERT_TRUE(done);
  for (size_t i = 0; i < 3; ++i) {
    g->replica_server(i).nvm().crash();
    std::string out(data.size(), '\0');
    g->replica_load(i, 0, out.data(), out.size());
    EXPECT_EQ(out, data) << "replica " << i;
  }
}

TEST_F(GroupFixture, GwriteWithoutFlushCanBeLost) {
  auto g = make_group();
  const std::string data = "volatile";
  g->client_store(0, data.data(), data.size());
  bool done = false;
  g->gwrite(0, data.size(), false, [&] { done = true; });
  run();
  ASSERT_TRUE(done);
  // ACKed, but a crash on a replica loses the un-flushed bytes.
  g->replica_server(1).nvm().crash();
  std::string out(data.size(), '\0');
  g->replica_load(1, 0, out.data(), out.size());
  EXPECT_NE(out, data);
}

TEST_F(GroupFixture, GmemcpyCopiesOnEveryReplica) {
  auto g = make_group();
  const std::string data = "log-record-body";
  g->client_store(64, data.data(), data.size());
  bool wrote = false;
  g->gwrite(64, data.size(), true, [&] { wrote = true; });
  run();
  ASSERT_TRUE(wrote);

  bool copied = false;
  g->gmemcpy(64, 4096, data.size(), true, [&] { copied = true; });
  run();
  ASSERT_TRUE(copied);
  for (size_t i = 0; i < 3; ++i) {
    std::string out(data.size(), '\0');
    g->replica_load(i, 4096, out.data(), out.size());
    EXPECT_EQ(out, data) << "replica " << i;
  }
  // The client's own copy also moved (it is the head of the chain).
  std::string cli(data.size(), '\0');
  g->client_load(4096, cli.data(), cli.size());
  EXPECT_EQ(cli, data);
}

TEST_F(GroupFixture, GcasAcquiresOnAllReplicas) {
  auto g = make_group();
  std::vector<uint64_t> result;
  g->gcas(512, 0, 77, ExecMap::all(3),
          [&](const CasResult& r) { result.assign(r.begin(), r.end()); });
  run();
  ASSERT_EQ(result.size(), 3u);
  for (uint64_t v : result) EXPECT_EQ(v, 0u);  // old value was 0 everywhere
  for (size_t i = 0; i < 3; ++i) {
    uint64_t v = 0;
    g->replica_load(i, 512, &v, 8);
    EXPECT_EQ(v, 77u);
  }
}

TEST_F(GroupFixture, GcasReportsMismatch) {
  auto g = make_group();
  // Pre-set replica values via gwrite.
  const uint64_t held = 123;
  g->client_store(512, &held, 8);
  bool wrote = false;
  g->gwrite(512, 8, false, [&] { wrote = true; });
  run();
  ASSERT_TRUE(wrote);

  std::vector<uint64_t> result;
  g->gcas(512, 0, 55, ExecMap::all(3),
          [&](const CasResult& r) { result.assign(r.begin(), r.end()); });
  run();
  ASSERT_EQ(result.size(), 3u);
  for (uint64_t v : result) EXPECT_EQ(v, 123u);  // lock was held
  for (size_t i = 0; i < 3; ++i) {
    uint64_t v = 0;
    g->replica_load(i, 512, &v, 8);
    EXPECT_EQ(v, 123u);  // unchanged
  }
}

TEST_F(GroupFixture, GcasExecuteMapSkipsReplicas) {
  auto g = make_group();
  std::vector<uint64_t> result;
  g->gcas(512, 0, 9, ExecMap::one(0).set(2),
          [&](const CasResult& r) { result.assign(r.begin(), r.end()); });
  run();
  ASSERT_EQ(result.size(), 3u);
  uint64_t v0 = 0, v1 = 0, v2 = 0;
  g->replica_load(0, 512, &v0, 8);
  g->replica_load(1, 512, &v1, 8);
  g->replica_load(2, 512, &v2, 8);
  EXPECT_EQ(v0, 9u);
  EXPECT_EQ(v1, 0u);  // skipped
  EXPECT_EQ(v2, 9u);
}

TEST_F(GroupFixture, GcasUndoAfterPartialAcquire) {
  auto g = make_group();
  // Make replica 1 hold the lock with a different value, via a direct
  // write into its region (simulating another client's stale lock).
  const uint64_t other = 42;
  const rdma::Addr base = g->replica_region_base(1);
  g->replica_server(1).mem().write(base + 512, &other, 8);

  std::vector<uint64_t> result;
  g->gcas(512, 0, 7, ExecMap::all(3),
          [&](const CasResult& r) { result.assign(r.begin(), r.end()); });
  run();
  ASSERT_EQ(result.size(), 3u);
  EXPECT_EQ(result[0], 0u);
  EXPECT_EQ(result[1], 42u);  // failed there
  EXPECT_EQ(result[2], 0u);

  // Undo on the replicas where it succeeded (result == expected).
  ExecMap undo_map = ExecMap::none();
  if (result[0] == 0) undo_map.set(0);
  if (result[2] == 0) undo_map.set(2);
  bool undone = false;
  g->gcas(512, 7, 0, undo_map, [&](const CasResult&) { undone = true; });
  run();
  ASSERT_TRUE(undone);
  uint64_t v0 = 0, v2 = 0;
  g->replica_load(0, 512, &v0, 8);
  g->replica_load(2, 512, &v2, 8);
  EXPECT_EQ(v0, 0u);
  EXPECT_EQ(v2, 0u);
}

TEST_F(GroupFixture, GflushMakesPriorWritesDurable) {
  auto g = make_group();
  const std::string data = "flush-later";
  g->client_store(0, data.data(), data.size());
  bool wrote = false, flushed = false;
  g->gwrite(0, data.size(), false, [&] { wrote = true; });
  g->gflush([&] { flushed = true; });
  run();
  ASSERT_TRUE(wrote);
  ASSERT_TRUE(flushed);
  for (size_t i = 0; i < 3; ++i) {
    g->replica_server(i).nvm().crash();
    std::string out(data.size(), '\0');
    g->replica_load(i, 0, out.data(), out.size());
    EXPECT_EQ(out, data) << "replica " << i;
  }
}

TEST_F(GroupFixture, ManyPipelinedWritesAllLandInOrder) {
  auto g = make_group();
  const int n = 300;  // > ring_slots to exercise refill
  int done = 0;
  for (int k = 0; k < n; ++k) {
    const uint64_t off = 64 + static_cast<uint64_t>(k) * 16;
    uint64_t val = 1000 + static_cast<uint64_t>(k);
    g->client_store(off, &val, 8);
    g->gwrite(off, 8, false, [&] { ++done; });
  }
  cluster.loop().run_until(cluster.loop().now() + sim::msec(500));
  ASSERT_EQ(done, n);
  for (int k = 0; k < n; ++k) {
    const uint64_t off = 64 + static_cast<uint64_t>(k) * 16;
    for (size_t i = 0; i < 3; ++i) {
      uint64_t v = 0;
      g->replica_load(i, off, &v, 8);
      EXPECT_EQ(v, 1000u + static_cast<uint64_t>(k));
    }
  }
}

TEST_F(GroupFixture, SingleReplicaGroupWorks) {
  auto g = make_group(1);
  const std::string data = "solo";
  g->client_store(0, data.data(), data.size());
  bool done = false;
  g->gwrite(0, data.size(), true, [&] { done = true; });
  run();
  ASSERT_TRUE(done);
  std::string out(data.size(), '\0');
  g->replica_load(0, 0, out.data(), out.size());
  EXPECT_EQ(out, data);
}

TEST_F(GroupFixture, TwoReplicaGroupWorks) {
  auto g = make_group(2);
  std::vector<uint64_t> result;
  g->gcas(0, 0, 5, ExecMap::all(2),
          [&](const CasResult& r) { result.assign(r.begin(), r.end()); });
  run();
  ASSERT_EQ(result.size(), 2u);
  for (size_t i = 0; i < 2; ++i) {
    uint64_t v = 0;
    g->replica_load(i, 0, &v, 8);
    EXPECT_EQ(v, 5u);
  }
}

TEST_F(GroupFixture, NoReplicaCpuOnCriticalPath) {
  auto g = make_group();
  // Measure replica CPU before/after a burst of operations. Only the
  // periodic refill task may consume CPU, and it is tiny.
  sim::Duration before = 0;
  for (size_t i = 0; i < 3; ++i) {
    before += g->replica_server(i).sched().total_busy();
  }
  int done = 0;
  for (int k = 0; k < 100; ++k) {
    g->gwrite(0, 256, true, [&] { ++done; });
  }
  run(sim::msec(20));
  ASSERT_EQ(done, 100);
  sim::Duration after = 0;
  for (size_t i = 0; i < 3; ++i) {
    after += g->replica_server(i).sched().total_busy();
  }
  // 3 replicas * 20ms * 8 cores = 480ms of CPU capacity; the refill loop
  // uses ~2us per 20us per replica -> ~6ms. Anything near-zero passes.
  EXPECT_LT(after - before, sim::msec(10));
}

TEST_F(GroupFixture, MixedPrimitivesInterleave) {
  // Different primitives ride different pre-posted rings, so ordering
  // across primitives is only guaranteed through completion callbacks
  // (exactly how the WAL layers Append before ExecuteAndAdvance). Pipeline
  // 50 independent op-chains, each internally sequenced by its ACKs.
  auto g = make_group();
  int done = 0;
  for (int k = 0; k < 50; ++k) {
    const uint64_t off = static_cast<uint64_t>(k) * 64;
    uint64_t v = static_cast<uint64_t>(k) + 1;
    g->client_store(off, &v, 8);
    g->gwrite(off, 8, true, [&, off, v] {
      ++done;
      g->gmemcpy(off, off + 8, 8, true, [&] { ++done; });
      g->gcas(off + 32, 0, v + 1, ExecMap::all(3),
              [&](const CasResult&) { ++done; });
    });
  }
  cluster.loop().run_until(cluster.loop().now() + sim::msec(500));
  EXPECT_EQ(done, 150);
  // Spot-check one of each effect on the last replica.
  uint64_t v = 0;
  g->replica_load(2, 49 * 64 + 8, &v, 8);
  EXPECT_EQ(v, 50u);
  g->replica_load(2, 49 * 64 + 32, &v, 8);
  EXPECT_EQ(v, 51u);
}

}  // namespace
}  // namespace hyperloop::core
