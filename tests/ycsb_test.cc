#include "apps/ycsb/workload.h"

#include <gtest/gtest.h>

#include <map>

#include "apps/ycsb/driver.h"

namespace hyperloop::apps {
namespace {

TEST(WorkloadSpec, MixesSumToOne) {
  for (char w : {'A', 'B', 'D', 'E', 'F'}) {
    const WorkloadSpec s = WorkloadSpec::by_name(w);
    EXPECT_NEAR(s.read + s.update + s.insert + s.scan + s.rmw, 1.0, 1e-9)
        << w;
  }
}

TEST(WorkloadGenerator, MixProportionsMatchTable3) {
  // YCSB-A: 50/50 read/update.
  WorkloadGenerator gen(WorkloadSpec::A(), 1000, sim::Rng(1));
  std::map<OpType, int> counts;
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[gen.next().type];
  EXPECT_NEAR(counts[OpType::kRead] / double(n), 0.5, 0.01);
  EXPECT_NEAR(counts[OpType::kUpdate] / double(n), 0.5, 0.01);
  EXPECT_EQ(counts[OpType::kInsert], 0);
}

TEST(WorkloadGenerator, WorkloadEIsScanHeavy) {
  WorkloadGenerator gen(WorkloadSpec::E(), 1000, sim::Rng(2));
  std::map<OpType, int> counts;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    Op op = gen.next();
    ++counts[op.type];
    if (op.type == OpType::kScan) {
      EXPECT_GE(op.scan_len, 1);
      EXPECT_LE(op.scan_len, 100);
    }
  }
  EXPECT_NEAR(counts[OpType::kScan] / double(n), 0.95, 0.01);
  EXPECT_NEAR(counts[OpType::kInsert] / double(n), 0.05, 0.01);
}

TEST(WorkloadGenerator, InsertsGrowKeyspaceDensely) {
  WorkloadGenerator gen(WorkloadSpec::D(), 100, sim::Rng(3));
  uint64_t max_insert_key = 0;
  int inserts = 0;
  for (int i = 0; i < 10000; ++i) {
    Op op = gen.next();
    if (op.type == OpType::kInsert) {
      EXPECT_EQ(op.key, 100 + static_cast<uint64_t>(inserts));
      max_insert_key = op.key;
      ++inserts;
    } else {
      EXPECT_LT(op.key, gen.record_count());
    }
  }
  EXPECT_GT(inserts, 0);
  EXPECT_EQ(gen.record_count(), 100 + static_cast<uint64_t>(inserts));
  (void)max_insert_key;
}

TEST(WorkloadGenerator, WorkloadDPrefersRecentKeys) {
  WorkloadGenerator gen(WorkloadSpec::D(), 10000, sim::Rng(4));
  uint64_t reads_in_newest_decile = 0, reads = 0;
  for (int i = 0; i < 50000; ++i) {
    Op op = gen.next();
    if (op.type != OpType::kRead) continue;
    ++reads;
    if (op.key >= gen.record_count() * 9 / 10) ++reads_in_newest_decile;
  }
  EXPECT_GT(reads_in_newest_decile / double(reads), 0.5);
}

TEST(WorkloadGenerator, ZipfianSkewOnWorkloadA) {
  WorkloadGenerator gen(WorkloadSpec::A(), 10000, sim::Rng(5));
  std::map<uint64_t, int> key_counts;
  for (int i = 0; i < 100000; ++i) ++key_counts[gen.next().key];
  // The hottest key should take a disproportionate share.
  int hottest = 0;
  for (auto& [k, c] : key_counts) hottest = std::max(hottest, c);
  EXPECT_GT(hottest, 100000 / 10000 * 20);  // >20x uniform share
}

TEST(WorkloadGenerator, ValuesAreDeterministicPerKey) {
  const auto a = WorkloadGenerator::value_for(42, 1024);
  const auto b = WorkloadGenerator::value_for(42, 1024);
  const auto c = WorkloadGenerator::value_for(43, 1024);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.size(), 1024u);
}

// A trivial synchronous in-memory engine to test the driver itself.
class FakeEngine : public StorageEngine {
 public:
  explicit FakeEngine(sim::EventLoop& loop, sim::Duration delay)
      : loop_(loop), delay_(delay) {}
  void insert(uint64_t, std::vector<uint8_t>, Done done) override {
    finish(std::move(done));
  }
  void update(uint64_t, std::vector<uint8_t>, Done done) override {
    finish(std::move(done));
  }
  void read(uint64_t, ReadDone done) override {
    loop_.schedule_after(delay_,
                         [done = std::move(done)]() mutable { done(true, {}); });
  }
  void scan(uint64_t, int, Done done) override { finish(std::move(done)); }
  void read_modify_write(uint64_t, std::vector<uint8_t>, Done done) override {
    finish(std::move(done));
  }
  int inflight_peak = 0;

 private:
  void finish(Done done) {
    ++inflight_;
    inflight_peak = std::max(inflight_peak, inflight_);
    loop_.schedule_after(delay_, [this, done = std::move(done)]() mutable {
      --inflight_;
      done(true);
    });
  }
  sim::EventLoop& loop_;
  sim::Duration delay_;
  int inflight_ = 0;
};

TEST(YcsbDriver, CompletesAllOpsAndRecordsLatency) {
  sim::EventLoop loop;
  FakeEngine engine(loop, sim::usec(10));
  WorkloadGenerator gen(WorkloadSpec::A(), 1000, sim::Rng(7));
  YcsbDriver::Config cfg;
  cfg.threads = 4;
  cfg.total_ops = 1000;
  YcsbDriver driver(loop, engine, gen, cfg);
  bool complete = false;
  driver.start([&] { complete = true; });
  loop.run();
  ASSERT_TRUE(complete);
  EXPECT_EQ(driver.completed(), 1000u);
  EXPECT_EQ(driver.failed(), 0u);
  EXPECT_EQ(driver.overall().count(), 1000u);
  // Every op took >= the engine delay.
  EXPECT_GE(driver.overall().min(), sim::usec(10));
}

TEST(YcsbDriver, ClosedLoopBoundsConcurrency) {
  sim::EventLoop loop;
  FakeEngine engine(loop, sim::usec(50));
  WorkloadGenerator gen(WorkloadSpec::F(), 1000, sim::Rng(8));
  YcsbDriver::Config cfg;
  cfg.threads = 3;
  cfg.total_ops = 500;
  YcsbDriver driver(loop, engine, gen, cfg);
  driver.start({});
  loop.run();
  EXPECT_LE(engine.inflight_peak, 3);
  EXPECT_EQ(driver.completed(), 500u);
}

TEST(YcsbDriver, WritesHistogramCoversUpdateInsertRmw) {
  sim::EventLoop loop;
  FakeEngine engine(loop, sim::usec(5));
  WorkloadGenerator gen(WorkloadSpec::F(), 1000, sim::Rng(9));
  YcsbDriver::Config cfg;
  cfg.threads = 2;
  cfg.total_ops = 2000;
  YcsbDriver driver(loop, engine, gen, cfg);
  driver.start({});
  loop.run();
  EXPECT_NEAR(driver.writes().count() / 2000.0, 0.5, 0.05);  // F: 50% rmw
}

}  // namespace
}  // namespace hyperloop::apps
