#include "core/txn.h"

#include <gtest/gtest.h>

#include <string>

#include "core/hyperloop_group.h"
#include "core/server.h"

namespace hyperloop::core {
namespace {

struct TxnFixture : ::testing::Test {
  Cluster cluster{[] {
    Cluster::Config c;
    c.num_servers = 4;
    c.server.cpu.num_cores = 8;
    return c;
  }()};
  RegionLayout layout = [] {
    RegionLayout l;
    l.region_size = 1 << 20;
    l.log_size = 64 << 10;
    l.num_locks = 32;
    return l;
  }();
  std::unique_ptr<HyperLoopGroup> group = [this] {
    HyperLoopGroup::Config gc;
    gc.region_size = layout.region_size;
    gc.ring_slots = 128;
    gc.max_inflight = 32;
    std::vector<Server*> reps = {&cluster.server(0), &cluster.server(1),
                                 &cluster.server(2)};
    return std::make_unique<HyperLoopGroup>(cluster.server(3), reps, gc);
  }();
  ReplicatedWal wal{*group, layout};
  GroupLockManager locks{*group, layout, cluster.loop()};
  TransactionManager txns{*group, wal, locks, cluster.loop()};

  void run(sim::Duration d = sim::msec(500)) {
    cluster.loop().run_until(cluster.loop().now() + d);
  }

  std::vector<uint8_t> bytes(const std::string& s) {
    return {s.begin(), s.end()};
  }
  std::string db_read(size_t replica, uint64_t off, size_t len) {
    std::string out(len, '\0');
    group->replica_load(replica, layout.db_base() + off, out.data(),
                        static_cast<uint32_t>(len));
    return out;
  }
};

TEST_F(TxnFixture, CommitAppliesAtomically) {
  bool committed = false;
  txns.execute({{0, bytes("X=1;")}, {128, bytes("Y=2;")}}, {0, 1},
               [&](bool ok) { committed = ok; });
  run();
  ASSERT_TRUE(committed);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(db_read(i, 0, 4), "X=1;");
    EXPECT_EQ(db_read(i, 128, 4), "Y=2;");
  }
  EXPECT_EQ(txns.stats().committed, 1u);
  // Locks released everywhere.
  uint64_t w = 0;
  group->replica_load(0, layout.lock_offset(0), &w, 8);
  EXPECT_EQ(w, 0u);
}

TEST_F(TxnFixture, CommittedDataSurvivesCrash) {
  bool committed = false;
  txns.execute({{256, bytes("durable-txn")}}, {2},
               [&](bool ok) { committed = ok; });
  run();
  ASSERT_TRUE(committed);
  for (size_t i = 0; i < 3; ++i) {
    group->replica_server(i).nvm().crash();
    EXPECT_EQ(db_read(i, 256, 11), "durable-txn");
  }
}

TEST_F(TxnFixture, ConflictingTxnsSerialize) {
  // Two transactions on the same lock both increment a counter.
  uint64_t init = 0;
  group->client_store(layout.db_base() + 512, &init, 8);
  int done = 0;
  auto increment = [&] {
    uint64_t cur = 0;
    group->client_load(layout.db_base() + 512, &cur, 8);
    ++cur;
    std::vector<uint8_t> b(8);
    std::memcpy(b.data(), &cur, 8);
    txns.execute({{512, b}}, {5}, [&](bool ok) {
      ASSERT_TRUE(ok);
      ++done;
    });
  };
  // Chain them so each reads the prior value (client-side serialization),
  // while locks guarantee replica-side isolation.
  txns.execute({{512, bytes("\1\0\0\0\0\0\0\0")}}, {5}, [&](bool ok) {
    ASSERT_TRUE(ok);
    ++done;
    increment();
  });
  run();
  EXPECT_EQ(done, 2);
  uint64_t v = 0;
  group->replica_load(1, layout.db_base() + 512, &v, 8);
  EXPECT_EQ(v, 2u);
}

TEST_F(TxnFixture, ManyConcurrentDisjointTxns) {
  const int n = 64;
  int committed = 0;
  for (int k = 0; k < n; ++k) {
    uint64_t v = static_cast<uint64_t>(k) + 7;
    std::vector<uint8_t> b(8);
    std::memcpy(b.data(), &v, 8);
    txns.execute({{static_cast<uint64_t>(k) * 64, b}},
                 {static_cast<uint32_t>(k % 32)},
                 [&](bool ok) { committed += ok ? 1 : 0; });
  }
  run(sim::seconds(5));
  EXPECT_EQ(committed, n);
  for (int k = 0; k < n; k += 7) {
    uint64_t v = 0;
    group->replica_load(2, layout.db_base() + static_cast<uint64_t>(k) * 64,
                        &v, 8);
    EXPECT_EQ(v, static_cast<uint64_t>(k) + 7);
  }
}

TEST_F(TxnFixture, LogBackpressureRetriesAndSucceeds) {
  // Transactions big enough that only a few fit in the log at once.
  const int n = 20;
  int committed = 0;
  std::vector<uint8_t> big(6000, 0xCD);
  for (int k = 0; k < n; ++k) {
    txns.execute({{static_cast<uint64_t>(k % 4) * 8192, big}},
                 {static_cast<uint32_t>(k % 4)},
                 [&](bool ok) { committed += ok ? 1 : 0; });
  }
  run(sim::seconds(10));
  EXPECT_EQ(committed, n);
}

TEST_F(TxnFixture, CrashBeforeExecuteIsRecoveredByReplay) {
  // Append a record manually (commit), crash a replica before execution,
  // replay must reconstruct the DB state.
  bool appended = false;
  ASSERT_TRUE(
      wal.append({{64, bytes("replayed")}}, [&](uint64_t) { appended = true; }));
  run();
  ASSERT_TRUE(appended);

  group->replica_server(2).nvm().crash();
  const rdma::Addr base = group->replica_region_base(2);
  Server& r = group->replica_server(2);
  EXPECT_NE(db_read(2, 64, 8), "replayed");  // not executed yet
  ReplicatedWal::replay(
      layout,
      [&](uint64_t off, void* dst, uint32_t len) {
        r.mem().read(base + off, dst, len);
      },
      [&](uint64_t off, const void* src, uint32_t len) {
        r.mem().write(base + off, src, len);
      });
  EXPECT_EQ(db_read(2, 64, 8), "replayed");
}

}  // namespace
}  // namespace hyperloop::core
