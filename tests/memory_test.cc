#include "rdma/memory.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace hyperloop::rdma {
namespace {

TEST(HostMemory, AllocAlignsAndAdvances) {
  HostMemory m(1 << 20);
  const Addr a = m.alloc(100, 64);
  const Addr b = m.alloc(100, 64);
  EXPECT_EQ(a % 64, 0u);
  EXPECT_EQ(b % 64, 0u);
  EXPECT_GE(b, a + 100);
}

TEST(HostMemory, AddressZeroNeverAllocated) {
  HostMemory m(1 << 20);
  EXPECT_NE(m.alloc(8), 0u);
}

TEST(HostMemory, WriteReadRoundTrip) {
  HostMemory m(4096);
  const Addr a = m.alloc(16);
  const char src[] = "hello world!!";
  m.write(a, src, sizeof(src));
  char dst[sizeof(src)];
  m.read(a, dst, sizeof(src));
  EXPECT_STREQ(dst, src);
}

TEST(HostMemory, TypedObjects) {
  struct P {
    int x;
    double y;
  };
  HostMemory m(4096);
  const Addr a = m.alloc(sizeof(P));
  m.write_obj(a, P{7, 2.5});
  const P p = m.read_obj<P>(a);
  EXPECT_EQ(p.x, 7);
  EXPECT_DOUBLE_EQ(p.y, 2.5);
}

TEST(HostMemory, CopyHandlesOverlap) {
  HostMemory m(4096);
  const Addr a = m.alloc(32);
  const char src[] = "abcdefgh";
  m.write(a, src, 8);
  m.copy(a + 4, a, 8);  // overlapping forward copy
  char out[8];
  m.read(a + 4, out, 8);
  EXPECT_EQ(std::memcmp(out, "abcdefgh", 8), 0);
}

TEST(HostMemory, FillSetsBytes) {
  HostMemory m(4096);
  const Addr a = m.alloc(64);
  m.fill(a, 0xAB, 64);
  uint8_t out[64];
  m.read(a, out, 64);
  for (uint8_t b : out) EXPECT_EQ(b, 0xAB);
}

TEST(HostMemory, ObserversSeeWrites) {
  HostMemory m(4096);
  Addr seen_addr = 0;
  size_t seen_len = 0;
  int calls = 0;
  m.add_write_observer(0, m.capacity(), [&](Addr a, size_t l) {
    seen_addr = a;
    seen_len = l;
    ++calls;
  });
  const Addr a = m.alloc(32);
  m.write(a, "x", 1);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(seen_addr, a);
  EXPECT_EQ(seen_len, 1u);
  m.copy(a + 8, a, 4);
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(seen_addr, a + 8);
  m.fill(a, 0, 16);
  EXPECT_EQ(calls, 3);
}

TEST(HostMemory, ObserversAreRangeFiltered) {
  HostMemory m(4096);
  const Addr lo = m.alloc(64);
  const Addr hi = m.alloc(64);
  int calls = 0;
  m.add_write_observer(lo, lo + 64, [&](Addr, size_t) { ++calls; });

  m.write(hi, "out", 3);  // outside the watched window: filtered
  m.fill(hi, 0xCC, 64);
  m.copy(hi, lo, 32);
  EXPECT_EQ(calls, 0);

  m.write(lo, "in", 2);  // fully inside
  EXPECT_EQ(calls, 1);
  m.write(lo + 60, "span", 4);  // ends exactly at the window boundary
  EXPECT_EQ(calls, 2);
  m.write(lo + 63, "XY", 2);  // straddles out of the window: still overlaps
  EXPECT_EQ(calls, 3);
}

TEST(HostMemory, MultipleObserversDispatchByRange) {
  HostMemory m(4096);
  const Addr a = m.alloc(64);
  const Addr b = m.alloc(64);
  int calls_a = 0, calls_b = 0;
  m.add_write_observer(a, a + 64, [&](Addr, size_t) { ++calls_a; });
  m.add_write_observer(b, b + 64, [&](Addr, size_t) { ++calls_b; });
  m.write(a, "1", 1);
  m.write(b, "2", 1);
  m.write(a + 32, "3", 1);
  EXPECT_EQ(calls_a, 2);
  EXPECT_EQ(calls_b, 1);
  // A write spanning both windows notifies both.
  std::vector<uint8_t> big(static_cast<size_t>(b + 8 - a), 0);
  m.write(a, big.data(), big.size());
  EXPECT_EQ(calls_a, 3);
  EXPECT_EQ(calls_b, 2);
}

TEST(HostMemory, RestoreBypassesObservers) {
  HostMemory m(4096);
  const Addr a = m.alloc(64);
  int calls = 0;
  m.add_write_observer(a, a + 64, [&](Addr, size_t) { ++calls; });
  m.restore(a, "quiet", 5);
  EXPECT_EQ(calls, 0);
  char out[6] = {};
  m.read(a, out, 5);
  EXPECT_STREQ(out, "quiet");  // bytes land even though nobody is told
}

TEST(HostMemory, ZeroLengthOpsAreNoops) {
  HostMemory m(4096);
  int calls = 0;
  m.add_write_observer(0, m.capacity(), [&](Addr, size_t) { ++calls; });
  const Addr a = m.alloc(8);
  m.write(a, nullptr, 0);
  m.read(a, nullptr, 0);
  m.copy(a, a, 0);
  EXPECT_EQ(calls, 0);
}

TEST(MrTable, RegisterAndCheck) {
  MrTable t;
  const MemoryRegion mr = t.register_mr(1000, 100, kRemoteWrite | kRemoteRead);
  EXPECT_NE(mr.lkey, mr.rkey);
  EXPECT_TRUE(t.check_remote(mr.rkey, 1000, 100, kRemoteWrite));
  EXPECT_TRUE(t.check_remote(mr.rkey, 1050, 50, kRemoteRead));
  EXPECT_TRUE(t.check_local(mr.lkey, 1000, 100));
}

TEST(MrTable, RejectsOutOfBounds) {
  MrTable t;
  const MemoryRegion mr = t.register_mr(1000, 100, kRemoteWrite);
  EXPECT_FALSE(t.check_remote(mr.rkey, 999, 10, kRemoteWrite));
  EXPECT_FALSE(t.check_remote(mr.rkey, 1050, 51, kRemoteWrite));
  EXPECT_FALSE(t.check_local(mr.lkey, 900, 10));
}

TEST(MrTable, RejectsMissingRights) {
  MrTable t;
  const MemoryRegion mr = t.register_mr(1000, 100, kRemoteRead);
  EXPECT_FALSE(t.check_remote(mr.rkey, 1000, 8, kRemoteWrite));
  EXPECT_FALSE(t.check_remote(mr.rkey, 1000, 8, kRemoteAtomic));
  EXPECT_TRUE(t.check_remote(mr.rkey, 1000, 8, kRemoteRead));
}

TEST(MrTable, RejectsUnknownKeys) {
  MrTable t;
  EXPECT_FALSE(t.check_remote(0xdead, 0, 1, kRemoteRead));
  EXPECT_FALSE(t.check_local(0xbeef, 0, 1));
}

TEST(MrTable, DeregisterRevokes) {
  MrTable t;
  const MemoryRegion mr = t.register_mr(0, 64, kRemoteWrite);
  EXPECT_TRUE(t.deregister(mr.rkey));
  EXPECT_FALSE(t.check_remote(mr.rkey, 0, 8, kRemoteWrite));
  EXPECT_FALSE(t.check_local(mr.lkey, 0, 8));
  EXPECT_FALSE(t.deregister(mr.rkey));
}

TEST(MrTable, ZeroLengthAccessInsideRegionPasses) {
  MrTable t;
  const MemoryRegion mr = t.register_mr(1000, 100, kRemoteRead);
  // 0-byte READ (gFLUSH) against the region base must pass the check.
  EXPECT_TRUE(t.check_remote(mr.rkey, 1000, 0, kRemoteRead));
}

}  // namespace
}  // namespace hyperloop::rdma
