#include "nvm/interval_set.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "nvm/dirty_bitmap.h"
#include "sim/rng.h"

namespace hyperloop::nvm {
namespace {

TEST(IntervalSet, InsertAndCover) {
  IntervalSet s;
  s.insert(10, 20);
  EXPECT_TRUE(s.covers(10, 20));
  EXPECT_TRUE(s.covers(12, 15));
  EXPECT_FALSE(s.covers(5, 15));
  EXPECT_FALSE(s.covers(15, 25));
  EXPECT_EQ(s.total_bytes(), 10u);
}

TEST(IntervalSet, EmptyRangeSemantics) {
  IntervalSet s;
  EXPECT_TRUE(s.covers(5, 5));
  EXPECT_FALSE(s.intersects(5, 5));
  s.insert(7, 7);  // no-op
  EXPECT_TRUE(s.empty());
}

TEST(IntervalSet, MergesAdjacent) {
  IntervalSet s;
  s.insert(0, 10);
  s.insert(10, 20);
  EXPECT_EQ(s.interval_count(), 1u);
  EXPECT_TRUE(s.covers(0, 20));
}

TEST(IntervalSet, MergesOverlapping) {
  IntervalSet s;
  s.insert(0, 15);
  s.insert(10, 30);
  s.insert(25, 40);
  EXPECT_EQ(s.interval_count(), 1u);
  EXPECT_EQ(s.total_bytes(), 40u);
}

TEST(IntervalSet, KeepsDisjoint) {
  IntervalSet s;
  s.insert(0, 10);
  s.insert(20, 30);
  EXPECT_EQ(s.interval_count(), 2u);
  EXPECT_FALSE(s.covers(10, 20));
  EXPECT_TRUE(s.intersects(5, 25));
}

TEST(IntervalSet, BridgeMergesMany) {
  IntervalSet s;
  s.insert(0, 10);
  s.insert(20, 30);
  s.insert(40, 50);
  s.insert(5, 45);  // bridges all three
  EXPECT_EQ(s.interval_count(), 1u);
  EXPECT_TRUE(s.covers(0, 50));
}

TEST(IntervalSet, EraseMiddleSplits) {
  IntervalSet s;
  s.insert(0, 30);
  s.erase(10, 20);
  EXPECT_EQ(s.interval_count(), 2u);
  EXPECT_TRUE(s.covers(0, 10));
  EXPECT_TRUE(s.covers(20, 30));
  EXPECT_FALSE(s.intersects(10, 20));
  EXPECT_EQ(s.total_bytes(), 20u);
}

TEST(IntervalSet, EraseEdges) {
  IntervalSet s;
  s.insert(10, 20);
  s.erase(5, 12);
  EXPECT_TRUE(s.covers(12, 20));
  EXPECT_FALSE(s.intersects(10, 12));
  s.erase(18, 25);
  EXPECT_TRUE(s.covers(12, 18));
  EXPECT_EQ(s.total_bytes(), 6u);
}

TEST(IntervalSet, EraseAcrossMultiple) {
  IntervalSet s;
  s.insert(0, 10);
  s.insert(20, 30);
  s.insert(40, 50);
  s.erase(5, 45);
  EXPECT_EQ(s.total_bytes(), 10u);
  EXPECT_TRUE(s.covers(0, 5));
  EXPECT_TRUE(s.covers(45, 50));
}

TEST(IntervalSet, ClearResets) {
  IntervalSet s;
  s.insert(0, 100);
  s.clear();
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.total_bytes(), 0u);
}

// Property test against a brute-force bitmap model.
TEST(IntervalSet, MatchesBitmapModelUnderRandomOps) {
  sim::Rng rng(77);
  IntervalSet s;
  std::vector<bool> model(256, false);
  for (int step = 0; step < 5000; ++step) {
    const uint64_t a = rng.next_below(256);
    const uint64_t b = a + rng.next_below(32);
    const uint64_t end = std::min<uint64_t>(b, 256);
    if (rng.chance(0.6)) {
      s.insert(a, end);
      for (uint64_t i = a; i < end; ++i) model[i] = true;
    } else {
      s.erase(a, end);
      for (uint64_t i = a; i < end; ++i) model[i] = false;
    }
    // Spot-check a random query window.
    const uint64_t qa = rng.next_below(256);
    const uint64_t qb = std::min<uint64_t>(qa + rng.next_below(16), 256);
    bool all = true, any = false;
    for (uint64_t i = qa; i < qb; ++i) {
      all = all && model[i];
      any = any || model[i];
    }
    if (qa < qb) {
      EXPECT_EQ(s.covers(qa, qb), all) << "step " << step;
      EXPECT_EQ(s.intersects(qa, qb), any) << "step " << step;
    }
    uint64_t total = 0;
    for (bool v : model) total += v ? 1 : 0;
    EXPECT_EQ(s.total_bytes(), total) << "step " << step;
  }
}

// ---------------------------------------------------------------------------
// DirtyBitmap: the production durability tracker. IntervalSet stays as the
// byte-exact reference model; the bitmap must agree with it exactly when
// both are driven at line (64 B) granularity.

constexpr uint64_t kLine = DirtyBitmap::kLineBytes;

TEST(DirtyBitmap, MarksAtLineGranularity) {
  DirtyBitmap b(1 << 16);
  EXPECT_TRUE(b.empty());
  b.mark(10, 12);  // 2 bytes -> whole first line
  EXPECT_EQ(b.dirty_bytes(), kLine);
  EXPECT_TRUE(b.any_dirty(0, 1));
  EXPECT_TRUE(b.all_dirty(0, kLine));
  EXPECT_FALSE(b.any_dirty(kLine, 2 * kLine));
  b.mark(kLine - 1, kLine + 1);  // straddles lines 0 and 1
  EXPECT_EQ(b.dirty_bytes(), 2 * kLine);
}

TEST(DirtyBitmap, ClearRangeRoundsOutward) {
  DirtyBitmap b(1 << 16);
  b.mark(0, 4 * kLine);
  b.clear_range(kLine + 1, kLine + 2);  // any byte of line 1 clears line 1
  EXPECT_EQ(b.dirty_bytes(), 3 * kLine);
  EXPECT_FALSE(b.any_dirty(kLine, 2 * kLine));
  EXPECT_TRUE(b.all_dirty(2 * kLine, 4 * kLine));
}

TEST(DirtyBitmap, EmptyRangeSemantics) {
  DirtyBitmap b(1 << 16);
  b.mark(5, 5);
  EXPECT_TRUE(b.empty());
  EXPECT_FALSE(b.any_dirty(5, 5));
  EXPECT_TRUE(b.all_dirty(5, 5));
}

TEST(DirtyBitmap, ForEachMergesRunsAcrossWordBoundaries) {
  // 64 lines per level-0 word: a run spanning lines 62..66 crosses a word
  // boundary and must still be reported as one range.
  DirtyBitmap b(1 << 20);
  b.mark(62 * kLine, 67 * kLine);
  int runs = 0;
  uint64_t begin = 0, end = 0;
  b.for_each_dirty_range([&](uint64_t bb, uint64_t ee) {
    ++runs;
    begin = bb;
    end = ee;
  });
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(begin, 62 * kLine);
  EXPECT_EQ(end, 67 * kLine);
}

TEST(DirtyBitmap, ClearAllVisitsOnlyDirtyWords) {
  DirtyBitmap b(1 << 20);
  b.mark(0, 100);
  b.mark((1 << 20) - 30, 1 << 20);
  EXPECT_EQ(b.dirty_lines(), 3u);
  b.clear_all();
  EXPECT_TRUE(b.empty());
  EXPECT_FALSE(b.any_dirty(0, 1 << 20));
}

TEST(DirtyBitmap, TailRangeClampsToDeviceSize) {
  // A device whose size is not a multiple of one line: ranges clamp.
  DirtyBitmap b(3 * kLine + 10);
  b.mark(3 * kLine, 3 * kLine + 10);
  uint64_t end = 0;
  b.for_each_dirty_range([&](uint64_t, uint64_t e) { end = e; });
  EXPECT_EQ(end, 3 * kLine + 10);  // clamped, not rounded up past the device
  b.mark(0, ~0ull);                // oversized range clamps too
  EXPECT_EQ(b.dirty_lines(), 4u);
}

// Randomized property test: ~1M mixed mark/clear/query/walk operations,
// checked move-for-move against the IntervalSet reference driven with
// line-rounded ranges. Any divergence in covers/intersects/total bytes or
// in the dirty-range walk fails with the step number.
TEST(DirtyBitmap, MatchesIntervalSetReferenceUnderRandomOps) {
  static constexpr uint64_t kSpace = 1 << 20;  // 16384 lines
  sim::Rng rng(0x5eed);
  DirtyBitmap bitmap(kSpace);
  IntervalSet ref;

  auto line_floor = [](uint64_t x) { return x & ~(kLine - 1); };
  auto line_ceil = [](uint64_t x) {
    return std::min<uint64_t>((x + kLine - 1) & ~(kLine - 1), kSpace);
  };

  const int kSteps = 350000;  // ~1M ops counting the paired queries
  for (int step = 0; step < kSteps; ++step) {
    const uint64_t a = rng.next_below(kSpace);
    const uint64_t len = rng.chance(0.2) ? rng.next_below(16 * kLine)
                                         : rng.next_below(192);
    const uint64_t e = std::min<uint64_t>(a + len, kSpace);
    const double roll = rng.next_double();
    if (roll < 0.55) {
      bitmap.mark(a, e);
      ref.insert(line_floor(a), a == e ? line_floor(a) : line_ceil(e));
    } else if (roll < 0.95) {
      bitmap.clear_range(a, e);
      ref.erase(line_floor(a), a == e ? line_floor(a) : line_ceil(e));
    } else if (roll < 0.999) {
      // Walk-based flush of everything — exercises for_each + clear_all
      // against the reference snapshot.
      uint64_t walked = 0;
      bitmap.for_each_dirty_range(
          [&](uint64_t b, uint64_t en) { walked += en - b; });
      // Runs are line-granular except the final clamp; compare on lines.
      EXPECT_EQ((walked + kLine - 1) / kLine, bitmap.dirty_lines())
          << "step " << step;
      bitmap.clear_all();
      ref.clear();
    }

    ASSERT_EQ(bitmap.dirty_bytes(), ref.total_bytes()) << "step " << step;
    ASSERT_EQ(bitmap.empty(), ref.empty()) << "step " << step;

    // Two random query windows per step.
    for (int q = 0; q < 2; ++q) {
      const uint64_t qa = rng.next_below(kSpace);
      const uint64_t qe =
          std::min<uint64_t>(qa + 1 + rng.next_below(4 * kLine), kSpace);
      if (qa >= qe) continue;
      const uint64_t la = line_floor(qa), le = line_ceil(qe);
      ASSERT_EQ(bitmap.any_dirty(qa, qe), ref.intersects(la, le))
          << "step " << step << " query [" << qa << "," << qe << ")";
      ASSERT_EQ(bitmap.all_dirty(qa, qe), ref.covers(la, le))
          << "step " << step << " query [" << qa << "," << qe << ")";
    }

    // Periodically cross-check the full dirty-range walk.
    if (step % 25000 == 0) {
      auto ivs = ref.intervals();
      size_t i = 0;
      bitmap.for_each_dirty_range([&](uint64_t b, uint64_t en) {
        ASSERT_LT(i, ivs.size()) << "step " << step;
        EXPECT_EQ(b, ivs[i].begin) << "step " << step;
        EXPECT_EQ(en, ivs[i].end) << "step " << step;
        ++i;
      });
      EXPECT_EQ(i, ivs.size()) << "step " << step;
    }
  }
}

}  // namespace
}  // namespace hyperloop::nvm
