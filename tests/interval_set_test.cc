#include "nvm/interval_set.h"

#include <gtest/gtest.h>

#include "sim/rng.h"

namespace hyperloop::nvm {
namespace {

TEST(IntervalSet, InsertAndCover) {
  IntervalSet s;
  s.insert(10, 20);
  EXPECT_TRUE(s.covers(10, 20));
  EXPECT_TRUE(s.covers(12, 15));
  EXPECT_FALSE(s.covers(5, 15));
  EXPECT_FALSE(s.covers(15, 25));
  EXPECT_EQ(s.total_bytes(), 10u);
}

TEST(IntervalSet, EmptyRangeSemantics) {
  IntervalSet s;
  EXPECT_TRUE(s.covers(5, 5));
  EXPECT_FALSE(s.intersects(5, 5));
  s.insert(7, 7);  // no-op
  EXPECT_TRUE(s.empty());
}

TEST(IntervalSet, MergesAdjacent) {
  IntervalSet s;
  s.insert(0, 10);
  s.insert(10, 20);
  EXPECT_EQ(s.interval_count(), 1u);
  EXPECT_TRUE(s.covers(0, 20));
}

TEST(IntervalSet, MergesOverlapping) {
  IntervalSet s;
  s.insert(0, 15);
  s.insert(10, 30);
  s.insert(25, 40);
  EXPECT_EQ(s.interval_count(), 1u);
  EXPECT_EQ(s.total_bytes(), 40u);
}

TEST(IntervalSet, KeepsDisjoint) {
  IntervalSet s;
  s.insert(0, 10);
  s.insert(20, 30);
  EXPECT_EQ(s.interval_count(), 2u);
  EXPECT_FALSE(s.covers(10, 20));
  EXPECT_TRUE(s.intersects(5, 25));
}

TEST(IntervalSet, BridgeMergesMany) {
  IntervalSet s;
  s.insert(0, 10);
  s.insert(20, 30);
  s.insert(40, 50);
  s.insert(5, 45);  // bridges all three
  EXPECT_EQ(s.interval_count(), 1u);
  EXPECT_TRUE(s.covers(0, 50));
}

TEST(IntervalSet, EraseMiddleSplits) {
  IntervalSet s;
  s.insert(0, 30);
  s.erase(10, 20);
  EXPECT_EQ(s.interval_count(), 2u);
  EXPECT_TRUE(s.covers(0, 10));
  EXPECT_TRUE(s.covers(20, 30));
  EXPECT_FALSE(s.intersects(10, 20));
  EXPECT_EQ(s.total_bytes(), 20u);
}

TEST(IntervalSet, EraseEdges) {
  IntervalSet s;
  s.insert(10, 20);
  s.erase(5, 12);
  EXPECT_TRUE(s.covers(12, 20));
  EXPECT_FALSE(s.intersects(10, 12));
  s.erase(18, 25);
  EXPECT_TRUE(s.covers(12, 18));
  EXPECT_EQ(s.total_bytes(), 6u);
}

TEST(IntervalSet, EraseAcrossMultiple) {
  IntervalSet s;
  s.insert(0, 10);
  s.insert(20, 30);
  s.insert(40, 50);
  s.erase(5, 45);
  EXPECT_EQ(s.total_bytes(), 10u);
  EXPECT_TRUE(s.covers(0, 5));
  EXPECT_TRUE(s.covers(45, 50));
}

TEST(IntervalSet, ClearResets) {
  IntervalSet s;
  s.insert(0, 100);
  s.clear();
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.total_bytes(), 0u);
}

// Property test against a brute-force bitmap model.
TEST(IntervalSet, MatchesBitmapModelUnderRandomOps) {
  sim::Rng rng(77);
  IntervalSet s;
  std::vector<bool> model(256, false);
  for (int step = 0; step < 5000; ++step) {
    const uint64_t a = rng.next_below(256);
    const uint64_t b = a + rng.next_below(32);
    const uint64_t end = std::min<uint64_t>(b, 256);
    if (rng.chance(0.6)) {
      s.insert(a, end);
      for (uint64_t i = a; i < end; ++i) model[i] = true;
    } else {
      s.erase(a, end);
      for (uint64_t i = a; i < end; ++i) model[i] = false;
    }
    // Spot-check a random query window.
    const uint64_t qa = rng.next_below(256);
    const uint64_t qb = std::min<uint64_t>(qa + rng.next_below(16), 256);
    bool all = true, any = false;
    for (uint64_t i = qa; i < qb; ++i) {
      all = all && model[i];
      any = any || model[i];
    }
    if (qa < qb) {
      EXPECT_EQ(s.covers(qa, qb), all) << "step " << step;
      EXPECT_EQ(s.intersects(qa, qb), any) << "step " << step;
    }
    uint64_t total = 0;
    for (bool v : model) total += v ? 1 : 0;
    EXPECT_EQ(s.total_bytes(), total) << "step " << step;
  }
}

}  // namespace
}  // namespace hyperloop::nvm
