// Shared receive queue tests (§5: multiple clients served by one replica
// through a shared pool of pre-posted RECVs).
#include <gtest/gtest.h>

#include <cstring>

#include "nvm/nvm_device.h"
#include "rdma/network.h"
#include "rdma/nic.h"
#include "sim/event_loop.h"

namespace hyperloop::rdma {
namespace {

struct SrqFixture : ::testing::Test {
  sim::EventLoop loop;
  Network net{loop, Network::Config{}};
  HostMemory mem_srv{1 << 20}, mem_c1{1 << 20}, mem_c2{1 << 20};
  nvm::NvmDevice nvm_srv{mem_srv, 64 << 10}, nvm_c1{mem_c1, 64 << 10},
      nvm_c2{mem_c2, 64 << 10};
  Nic srv{loop, net, mem_srv, &nvm_srv};
  Nic c1{loop, net, mem_c1, &nvm_c1};
  Nic c2{loop, net, mem_c2, &nvm_c2};

  CompletionQueue* recv_cq = srv.create_cq();
  SharedReceiveQueue* srq = srv.create_srq();
  QueuePair* q1 = srv.create_qp(nullptr, recv_cq, 16);
  QueuePair* q2 = srv.create_qp(nullptr, recv_cq, 16);

  CompletionQueue* cq1 = c1.create_cq();
  CompletionQueue* cq2 = c2.create_cq();
  QueuePair* qc1 = c1.create_qp(cq1, nullptr, 16);
  QueuePair* qc2 = c2.create_qp(cq2, nullptr, 16);

  Addr buf = 0;
  MemoryRegion mr{};

  void SetUp() override {
    srv.attach_srq(q1, srq);
    srv.attach_srq(q2, srq);
    c1.connect(qc1, srv.id(), q1->qpn);
    srv.connect(q1, c1.id(), qc1->qpn);
    c2.connect(qc2, srv.id(), q2->qpn);
    srv.connect(q2, c2.id(), qc2->qpn);
    buf = mem_srv.alloc(1024);
    mr = srv.register_mr(buf, 1024, kLocalWrite);
  }

  void post_srq_slot(uint64_t id) {
    RecvWqe r;
    r.wr_id = id;
    r.sges = {Sge{buf + id * 64, 64, mr.lkey}};
    srv.post_srq_recv(srq, std::move(r));
  }
};

TEST_F(SrqFixture, TwoSendersShareOnePool) {
  for (uint64_t i = 0; i < 4; ++i) post_srq_slot(i);

  const Addr m1 = mem_c1.alloc(16);
  const Addr m2 = mem_c2.alloc(16);
  mem_c1.write(m1, "from-c1", 8);
  mem_c2.write(m2, "from-c2", 8);
  c1.post_send(qc1, make_send(m1, 0, 8));
  c2.post_send(qc2, make_send(m2, 0, 8));
  loop.run();

  // Both consumed SRQ slots (0 and 1, in arrival order); both completions
  // arrive on the shared recv CQ with the right source QPs.
  EXPECT_EQ(srq->queue.size(), 2u);
  Cqe a, b;
  ASSERT_TRUE(recv_cq->poll(&a));
  ASSERT_TRUE(recv_cq->poll(&b));
  EXPECT_NE(a.qpn, b.qpn);
  char out[8] = {};
  mem_srv.read(buf + a.wr_id * 64, out, 8);
  EXPECT_TRUE(std::strcmp(out, "from-c1") == 0 ||
              std::strcmp(out, "from-c2") == 0);
}

TEST_F(SrqFixture, RnrStallsReplayWhenSrqRefilled) {
  // No SRQ slots posted: both sends park.
  const Addr m1 = mem_c1.alloc(16);
  mem_c1.write(m1, "late1", 6);
  const Addr m2 = mem_c2.alloc(16);
  mem_c2.write(m2, "late2", 6);
  c1.post_send(qc1, make_send(m1, 0, 6));
  c2.post_send(qc2, make_send(m2, 0, 6));
  loop.run();
  EXPECT_EQ(srv.counters().rnr_stalls, 2u);
  EXPECT_EQ(recv_cq->completion_count(), 0u);

  post_srq_slot(0);
  post_srq_slot(1);
  loop.run();
  EXPECT_EQ(recv_cq->completion_count(), 2u);
  char out[8] = {};
  mem_srv.read(buf, out, 6);
  EXPECT_TRUE(std::strcmp(out, "late1") == 0 || std::strcmp(out, "late2") == 0);
}

TEST_F(SrqFixture, NonSrqQpUnaffected) {
  // A third QP without SRQ keeps using its private recv queue.
  CompletionQueue* cq3 = srv.create_cq();
  QueuePair* q3 = srv.create_qp(nullptr, cq3, 16);
  CompletionQueue* cqc = c1.create_cq();
  QueuePair* qc3 = c1.create_qp(cqc, nullptr, 16);
  c1.connect(qc3, srv.id(), q3->qpn);
  srv.connect(q3, c1.id(), qc3->qpn);

  RecvWqe r;
  r.wr_id = 99;
  r.sges = {Sge{buf + 512, 64, mr.lkey}};
  srv.post_recv(q3, std::move(r));
  post_srq_slot(0);

  const Addr m = mem_c1.alloc(8);
  mem_c1.write(m, "priv", 5);
  c1.post_send(qc3, make_send(m, 0, 5));
  loop.run();

  EXPECT_EQ(cq3->completion_count(), 1u);
  EXPECT_EQ(srq->queue.size(), 1u);  // SRQ slot untouched
  char out[6] = {};
  mem_srv.read(buf + 512, out, 5);
  EXPECT_STREQ(out, "priv");
}

TEST_F(SrqFixture, DetachedQpStopsDrawingFromPoolAndReattachReplays) {
  // Park a send from c1 (no SRQ slots posted): receiver-not-ready.
  const Addr m1 = mem_c1.alloc(16);
  mem_c1.write(m1, "parked", 7);
  c1.post_send(qc1, make_send(m1, 0, 7));
  loop.run();
  ASSERT_EQ(srv.counters().rnr_stalls, 1u);
  ASSERT_EQ(q1->stalled_inbound.size(), 1u);

  // Detach q1 mid-park. Refilling the SRQ must NOT replay q1's parked
  // packet any more — membership is tracked by QPN, and q1 is gone from
  // the member list (q2, still attached, has nothing parked).
  srv.detach_srq(q1);
  EXPECT_EQ(q1->srq, nullptr);
  post_srq_slot(0);
  loop.run();
  EXPECT_EQ(recv_cq->completion_count(), 0u);
  EXPECT_EQ(srq->queue.size(), 1u);  // slot still unconsumed
  EXPECT_EQ(q1->stalled_inbound.size(), 1u);

  // Reattach and refill: now the parked packet replays through the SRQ,
  // consuming a slot, and the requester finally gets its ACK.
  srv.attach_srq(q1, srq);
  post_srq_slot(1);
  loop.run();
  EXPECT_EQ(recv_cq->completion_count(), 1u);
  EXPECT_EQ(srq->queue.size(), 1u);  // one of the two slots consumed
  EXPECT_EQ(q1->stalled_inbound.size(), 0u);
  char out[8] = {};
  mem_srv.read(buf, out, 7);
  EXPECT_STREQ(out, "parked");
  Cqe c;
  ASSERT_TRUE(cq1->poll(&c));
  EXPECT_EQ(c.status, CqStatus::kSuccess);
}

TEST_F(SrqFixture, DetachedQpFallsBackToPrivateRecvQueue) {
  // Park a send on q1, detach, then post a *private* RECV: the parked
  // packet must replay through q1's own queue, leaving the SRQ alone.
  const Addr m1 = mem_c1.alloc(16);
  mem_c1.write(m1, "private", 8);
  c1.post_send(qc1, make_send(m1, 0, 8));
  loop.run();
  ASSERT_EQ(q1->stalled_inbound.size(), 1u);

  srv.detach_srq(q1);
  post_srq_slot(3);  // an SRQ slot q1 must not touch any more
  RecvWqe r;
  r.wr_id = 42;
  r.sges = {Sge{buf + 256, 64, mr.lkey}};
  srv.post_recv(q1, std::move(r));
  loop.run();

  EXPECT_EQ(recv_cq->completion_count(), 1u);
  Cqe c;
  ASSERT_TRUE(recv_cq->poll(&c));
  EXPECT_EQ(c.wr_id, 42u);           // the private RECV, not the SRQ slot
  EXPECT_EQ(srq->queue.size(), 1u);  // SRQ slot untouched
  char out[8] = {};
  mem_srv.read(buf + 256, out, 8);
  EXPECT_STREQ(out, "private");
}

TEST_F(SrqFixture, ManyMessagesInterleaveFairly) {
  for (uint64_t i = 0; i < 16; ++i) post_srq_slot(i % 8);
  const Addr m1 = mem_c1.alloc(8);
  const Addr m2 = mem_c2.alloc(8);
  for (int i = 0; i < 8; ++i) {
    c1.post_send(qc1, make_send(m1, 0, 4));
    c2.post_send(qc2, make_send(m2, 0, 4));
  }
  loop.run();
  EXPECT_EQ(recv_cq->completion_count(), 16u);
  EXPECT_EQ(srq->queue.size(), 0u);
  EXPECT_EQ(srv.counters().rnr_stalls, 0u);
}

}  // namespace
}  // namespace hyperloop::rdma
