#include "core/naive_group.h"

#include <gtest/gtest.h>

#include <string>

#include "core/server.h"

namespace hyperloop::core {
namespace {

struct NaiveFixture : ::testing::Test {
  Cluster cluster{[] {
    Cluster::Config c;
    c.num_servers = 4;
    c.server.cpu.num_cores = 8;
    return c;
  }()};

  std::unique_ptr<NaiveRdmaGroup> make_group(
      NaiveRdmaGroup::Mode mode = NaiveRdmaGroup::Mode::kEvent,
      size_t replicas = 3) {
    NaiveRdmaGroup::Config cfg;
    cfg.region_size = 1 << 20;
    cfg.mode = mode;
    std::vector<Server*> r;
    for (size_t i = 0; i < replicas; ++i) r.push_back(&cluster.server(i));
    return std::make_unique<NaiveRdmaGroup>(cluster.server(3), r, cfg);
  }

  void run(sim::Duration d = sim::msec(100)) {
    cluster.loop().run_until(cluster.loop().now() + d);
  }
};

TEST_F(NaiveFixture, GwriteReplicates) {
  auto g = make_group();
  const std::string data = "naive-write";
  g->client_store(32, data.data(), data.size());
  bool done = false;
  g->gwrite(32, data.size(), false, [&] { done = true; });
  run();
  ASSERT_TRUE(done);
  for (size_t i = 0; i < 3; ++i) {
    std::string out(data.size(), '\0');
    g->replica_load(i, 32, out.data(), out.size());
    EXPECT_EQ(out, data);
  }
}

TEST_F(NaiveFixture, GwriteFlushDurable) {
  auto g = make_group();
  const std::string data = "naive-durable";
  g->client_store(0, data.data(), data.size());
  bool done = false;
  g->gwrite(0, data.size(), true, [&] { done = true; });
  run();
  ASSERT_TRUE(done);
  for (size_t i = 0; i < 3; ++i) {
    g->replica_server(i).nvm().crash();
    std::string out(data.size(), '\0');
    g->replica_load(i, 0, out.data(), out.size());
    EXPECT_EQ(out, data);
  }
}

TEST_F(NaiveFixture, GmemcpyExecutesOnCpu) {
  auto g = make_group();
  const std::string data = "copy-me";
  g->client_store(0, data.data(), data.size());
  bool done = false;
  g->gwrite(0, data.size(), true, [&] {
    g->gmemcpy(0, 2048, data.size(), true, [&] { done = true; });
  });
  run();
  ASSERT_TRUE(done);
  for (size_t i = 0; i < 3; ++i) {
    std::string out(data.size(), '\0');
    g->replica_load(i, 2048, out.data(), out.size());
    EXPECT_EQ(out, data);
  }
}

TEST_F(NaiveFixture, GcasWithExecuteMapAndResult) {
  auto g = make_group();
  std::vector<uint64_t> result;
  g->gcas(128, 0, 11, ExecMap::one(0).set(2),
          [&](const CasResult& r) { result.assign(r.begin(), r.end()); });
  run();
  ASSERT_EQ(result.size(), 3u);
  uint64_t v = 0;
  g->replica_load(0, 128, &v, 8);
  EXPECT_EQ(v, 11u);
  g->replica_load(1, 128, &v, 8);
  EXPECT_EQ(v, 0u);
  g->replica_load(2, 128, &v, 8);
  EXPECT_EQ(v, 11u);
}

TEST_F(NaiveFixture, ReplicaCpuIsOnCriticalPath) {
  auto g = make_group();
  bool done = false;
  g->gwrite(0, 128, false, [&] { done = true; });
  run();
  ASSERT_TRUE(done);
  // Every replica's handler process consumed CPU for this single op.
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_GT(g->replica_cpu_time(i), 0) << "replica " << i;
  }
}

TEST_F(NaiveFixture, PollingModeWorksAndPinsCores) {
  auto g = make_group(NaiveRdmaGroup::Mode::kPolling);
  bool done = false;
  g->gwrite(0, 64, true, [&] { done = true; });
  run();
  ASSERT_TRUE(done);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(g->replica_server(i).sched().shared_cores(), 7);
  }
}

TEST_F(NaiveFixture, PipelinedOpsComplete) {
  auto g = make_group();
  int done = 0;
  const int n = 200;
  for (int k = 0; k < n; ++k) {
    const uint64_t off = static_cast<uint64_t>(k) * 32;
    uint64_t v = static_cast<uint64_t>(k) * 3 + 1;
    g->client_store(off, &v, 8);
    g->gwrite(off, 8, false, [&] { ++done; });
  }
  run(sim::msec(500));
  ASSERT_EQ(done, n);
  for (int k = 0; k < n; k += 17) {
    uint64_t v = 0;
    g->replica_load(2, static_cast<uint64_t>(k) * 32, &v, 8);
    EXPECT_EQ(v, static_cast<uint64_t>(k) * 3 + 1);
  }
}

TEST_F(NaiveFixture, LoadedServerInflatesLatencyVsPolling) {
  // Event-driven replicas under CPU load should be much slower than
  // polling replicas for the same ops — the §6.2 effect.
  for (size_t i = 0; i < 3; ++i) {
    cluster.server(i).add_background_load(
        48, cluster.fork_rng(),
        {.tenants = 0, .median_burst = sim::usec(80), .burst_sigma = 1.0,
         .mean_think = sim::usec(10)});
  }
  auto event_group = make_group(NaiveRdmaGroup::Mode::kEvent);
  auto poll_group = make_group(NaiveRdmaGroup::Mode::kPolling);
  run(sim::msec(10));  // warm up the load

  sim::Time event_lat = 0, poll_lat = 0;
  sim::Time t0 = cluster.loop().now();
  bool d1 = false;
  event_group->gwrite(0, 64, false, [&] {
    d1 = true;
    event_lat = cluster.loop().now() - t0;
  });
  run(sim::msec(200));
  ASSERT_TRUE(d1);

  t0 = cluster.loop().now();
  bool d2 = false;
  poll_group->gwrite(0, 64, false, [&] {
    d2 = true;
    poll_lat = cluster.loop().now() - t0;
  });
  run(sim::msec(200));
  ASSERT_TRUE(d2);

  EXPECT_GT(event_lat, poll_lat);
}

TEST_F(NaiveFixture, SharedPollingCompletesWithoutPinnedCores) {
  auto g = make_group(NaiveRdmaGroup::Mode::kSharedPolling);
  int done = 0;
  for (int k = 0; k < 50; ++k) {
    uint64_t v = static_cast<uint64_t>(k) + 9;
    g->client_store(static_cast<uint64_t>(k) * 16, &v, 8);
    g->gwrite(static_cast<uint64_t>(k) * 16, 8, true, [&] { ++done; });
  }
  run(sim::msec(500));
  ASSERT_EQ(done, 50);
  uint64_t v = 0;
  g->replica_load(2, 49 * 16, &v, 8);
  EXPECT_EQ(v, 58u);
  for (size_t i = 0; i < 3; ++i) {
    // No core reservation; the poll loop burns shared CPU instead.
    EXPECT_EQ(g->replica_server(i).sched().shared_cores(), 8);
    EXPECT_GT(g->replica_cpu_time(i), sim::msec(1));
  }
}

TEST_F(NaiveFixture, SingleReplicaChain) {
  auto g = make_group(NaiveRdmaGroup::Mode::kEvent, 1);
  bool done = false;
  const uint64_t v = 5;
  g->client_store(0, &v, 8);
  g->gwrite(0, 8, true, [&] { done = true; });
  run();
  ASSERT_TRUE(done);
  uint64_t out = 0;
  g->replica_load(0, 0, &out, 8);
  EXPECT_EQ(out, 5u);
}

}  // namespace
}  // namespace hyperloop::core
