// Property tests over randomized operation sequences (parameterized by
// seed): replica convergence, durability of acknowledged flushes under
// crash, and transaction atomicity under crash + replay.
#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "core/hyperloop_group.h"
#include "core/server.h"
#include "core/txn.h"
#include "core/wal.h"
#include "sim/rng.h"

namespace hyperloop::core {
namespace {

class PropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  PropertyTest() {
    Cluster::Config cc;
    cc.num_servers = 4;
    cc.seed = GetParam();
    cluster_ = std::make_unique<Cluster>(cc);
    HyperLoopGroup::Config gc;
    gc.region_size = 1 << 20;
    gc.ring_slots = 256;
    gc.max_inflight = 32;
    std::vector<Server*> reps = {&cluster_->server(0), &cluster_->server(1),
                                 &cluster_->server(2)};
    group_ = std::make_unique<HyperLoopGroup>(cluster_->server(3), reps, gc);
    rng_ = std::make_unique<sim::Rng>(GetParam() * 7919 + 13);
  }

  void run(sim::Duration d) {
    cluster_->loop().run_until(cluster_->loop().now() + d);
  }

  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<HyperLoopGroup> group_;
  std::unique_ptr<sim::Rng> rng_;
};

TEST_P(PropertyTest, RandomOpsConvergeAcrossReplicas) {
  // 64 independent cells, each running a random chain of primitives in
  // which every step is issued from the previous step's ACK (dependent
  // operations must be completion-ordered — the contract the WAL and lock
  // layers implement). Chains across cells run fully concurrently. At
  // quiescence every replica's region must equal the client's copy.
  sim::Rng& rng = *rng_;
  constexpr int kCells = 64;
  constexpr uint64_t kCellStride = 4096;
  int done_chains = 0, issued = 0;

  // Per-cell op scripts, pre-drawn so RNG use is independent of timing.
  struct Step {
    int kind;  // 0 gwrite, 1 gmemcpy, 2 gcas
    uint64_t a, b;
    uint32_t len;
    bool flush;
  };
  std::vector<std::vector<Step>> scripts(kCells);
  for (int c = 0; c < kCells; ++c) {
    const int steps = 2 + static_cast<int>(rng.next_below(6));
    for (int s = 0; s < steps; ++s) {
      Step st;
      st.kind = static_cast<int>(rng.next_below(3));
      st.a = rng.next_u64();
      st.b = rng.next_u64();
      st.len = static_cast<uint32_t>(8 + rng.next_below(240) / 8 * 8);
      st.flush = rng.chance(0.5);
      scripts[static_cast<size_t>(c)].push_back(st);
      ++issued;
    }
  }

  std::function<void(int, size_t)> step_fn = [&](int cell, size_t idx) {
    if (idx == scripts[static_cast<size_t>(cell)].size()) {
      ++done_chains;
      return;
    }
    const Step st = scripts[static_cast<size_t>(cell)][idx];
    const uint64_t base = static_cast<uint64_t>(cell) * kCellStride;
    auto next = [&step_fn, cell, idx] { step_fn(cell, idx + 1); };
    switch (st.kind) {
      case 0: {
        std::vector<uint8_t> data(st.len);
        uint64_t x = st.a | 1;
        for (auto& byte : data) {
          x ^= x << 13; x ^= x >> 7; x ^= x << 17;
          byte = static_cast<uint8_t>(x);
        }
        group_->client_store(base, data.data(), st.len);
        group_->gwrite(base, st.len, st.flush, next);
        break;
      }
      case 1: {
        group_->gmemcpy(base, base + kCellStride / 2, st.len, st.flush, next);
        break;
      }
      default: {
        const uint64_t word = base + 1024;
        uint64_t current = 0;
        group_->client_load(word, &current, 8);
        // Half the time CAS with the right expectation (swaps), half with
        // a wrong one (no-op); mirror the deterministic outcome locally.
        const uint64_t expected = st.b % 2 == 0 ? current : current + 1;
        group_->gcas(word, expected, st.a, ExecMap::all(3),
                     [&, word, expected, st, next](
                         const CasResult& old_vals) {
                       if (old_vals[0] == expected) {
                         group_->client_store(word, &st.a, 8);
                       }
                       next();
                     });
        break;
      }
    }
  };
  for (int c = 0; c < kCells; ++c) step_fn(c, 0);
  run(sim::seconds(10));
  ASSERT_EQ(done_chains, kCells);
  (void)issued;

  std::vector<uint8_t> expect(group_->region_size());
  group_->client_load(0, expect.data(),
                      static_cast<uint32_t>(expect.size()));
  for (size_t r = 0; r < 3; ++r) {
    std::vector<uint8_t> got(group_->region_size());
    group_->replica_load(r, 0, got.data(), static_cast<uint32_t>(got.size()));
    EXPECT_EQ(got, expect) << "replica " << r << " diverged";
  }
  EXPECT_EQ(group_->total_rnr_stalls(), 0u);
}

TEST_P(PropertyTest, AckedFlushedWritesSurviveAnyCrash) {
  // Writes with flush=true: everything acknowledged must survive a crash
  // of all replicas at an arbitrary instant; unacknowledged writes may or
  // may not survive (no requirement).
  sim::Rng& rng = *rng_;
  std::map<uint64_t, uint64_t> acked;  // offset -> value
  int issued = 0;
  for (int n = 0; n < 200; ++n) {
    const uint64_t off = rng.next_below(1024) * 64;
    const uint64_t val = rng.next_u64();
    group_->client_store(off, &val, 8);
    ++issued;
    group_->gwrite(off, 8, /*flush=*/true, [&, off, val] {
      acked[off] = val;
    });
    // Occasionally let some time pass so acks interleave with issues.
    if (rng.chance(0.2)) run(sim::usec(rng.next_below(30)));
  }
  // Crash at a random instant while some ops are still in flight.
  run(sim::usec(rng.next_below(200)));
  const auto acked_snapshot = acked;
  for (size_t r = 0; r < 3; ++r) group_->replica_server(r).nvm().crash();

  for (const auto& [off, val] : acked_snapshot) {
    for (size_t r = 0; r < 3; ++r) {
      uint64_t got = 0;
      group_->replica_load(r, off, &got, 8);
      // The acked value may have been overwritten by a *later acked or
      // in-flight* write to the same offset that already reached this
      // replica; but it can never regress to an older value than the
      // last acked one. Track via monotonically increasing values:
      // enforce by only checking offsets written exactly once.
      (void)got;
    }
  }
  // Simpler, strict check: re-run per unique offset written once.
  // (Above loop documents the general invariant; the strict check below
  // uses fresh unique offsets.)
  std::map<uint64_t, uint64_t> unique_acked;
  int done2 = 0, issued2 = 0;
  for (int n = 0; n < 100; ++n) {
    const uint64_t off = (2048 + static_cast<uint64_t>(n)) * 64;
    const uint64_t val = rng.next_u64();
    group_->client_store(off, &val, 8);
    ++issued2;
    group_->gwrite(off, 8, true, [&, off, val] {
      unique_acked[off] = val;
      ++done2;
    });
  }
  run(sim::usec(300 + rng.next_below(400)));
  const auto snap = unique_acked;
  for (size_t r = 0; r < 3; ++r) group_->replica_server(r).nvm().crash();
  EXPECT_GT(snap.size(), 0u);
  for (const auto& [off, val] : snap) {
    for (size_t r = 0; r < 3; ++r) {
      uint64_t got = 0;
      group_->replica_load(r, off, &got, 8);
      EXPECT_EQ(got, val) << "replica " << r << " lost acked+flushed write at "
                          << off;
    }
  }
  (void)issued;
}

TEST_P(PropertyTest, TransactionsAreAllOrNothingAfterCrashReplay) {
  // Each transaction writes the same tag to 4 scattered cells. After a
  // crash + redo replay on a replica, every tag group must be complete
  // (all 4 cells) or absent (no cell newer than a completed tag).
  RegionLayout layout;
  layout.region_size = 1 << 20;
  layout.log_size = 128 << 10;
  layout.num_locks = 16;
  ReplicatedWal wal(*group_, layout);
  GroupLockManager locks(*group_, layout, cluster_->loop());
  TransactionManager txns(*group_, wal, locks, cluster_->loop());
  sim::Rng& rng = *rng_;

  const int kTxns = 40;
  for (int t = 1; t <= kTxns; ++t) {
    std::vector<ReplicatedWal::Entry> writes;
    for (int c = 0; c < 4; ++c) {
      const uint64_t cell_off =
          (static_cast<uint64_t>(t) * 4 + static_cast<uint64_t>(c)) * 64;
      std::vector<uint8_t> tag(8);
      const uint64_t v = static_cast<uint64_t>(t);
      std::memcpy(tag.data(), &v, 8);
      writes.push_back({cell_off, tag});
    }
    txns.execute(std::move(writes),
                 {static_cast<uint32_t>(rng.next_below(16))}, [](bool) {});
  }
  // Crash a random replica at a random instant mid-stream.
  run(sim::usec(200 + rng.next_below(2000)));
  const size_t victim = rng.next_below(3);
  group_->replica_server(victim).nvm().crash();

  // Recover: replay the committed log over the crashed image.
  const rdma::Addr base = group_->replica_region_base(victim);
  Server& srv = group_->replica_server(victim);
  ReplicatedWal::replay(
      layout,
      [&](uint64_t off, void* dst, uint32_t len) {
        srv.mem().read(base + off, dst, len);
      },
      [&](uint64_t off, const void* src, uint32_t len) {
        srv.mem().write(base + off, src, len);
      });

  int complete = 0, partial = 0;
  for (int t = 1; t <= kTxns; ++t) {
    int cells = 0;
    for (int c = 0; c < 4; ++c) {
      const uint64_t cell_off = layout.db_base() +
          (static_cast<uint64_t>(t) * 4 + static_cast<uint64_t>(c)) * 64;
      uint64_t v = 0;
      srv.mem().read(base + cell_off, &v, 8);
      if (v == static_cast<uint64_t>(t)) ++cells;
    }
    if (cells == 4) {
      ++complete;
    } else if (cells != 0) {
      ++partial;
    }
  }
  EXPECT_EQ(partial, 0) << "torn transaction visible after replay";
  EXPECT_GT(complete, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace hyperloop::core
