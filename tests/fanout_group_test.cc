#include "core/fanout_group.h"

#include <gtest/gtest.h>

#include <string>

#include "core/server.h"

namespace hyperloop::core {
namespace {

struct FanoutFixture : ::testing::Test {
  Cluster cluster{[] {
    Cluster::Config c;
    c.num_servers = 4;  // 0 = primary, 1..2 = backups, 3 = client
    c.server.cpu.num_cores = 8;
    return c;
  }()};

  std::unique_ptr<FanoutGroup> make_group(size_t replicas = 3) {
    FanoutGroup::Config cfg;
    cfg.region_size = 1 << 20;
    cfg.ring_slots = 64;
    cfg.max_inflight = 16;
    std::vector<Server*> r;
    for (size_t i = 0; i < replicas; ++i) r.push_back(&cluster.server(i));
    return std::make_unique<FanoutGroup>(cluster.server(3), r, cfg);
  }

  void run(sim::Duration d = sim::msec(100)) {
    cluster.loop().run_until(cluster.loop().now() + d);
  }
};

TEST_F(FanoutFixture, GwriteReachesPrimaryAndAllBackups) {
  auto g = make_group();
  const std::string data = "fanout-payload";
  g->client_store(128, data.data(), data.size());
  bool done = false;
  g->gwrite(128, data.size(), false, [&] { done = true; });
  run();
  ASSERT_TRUE(done);
  for (size_t i = 0; i < 3; ++i) {
    std::string out(data.size(), '\0');
    g->replica_load(i, 128, out.data(), out.size());
    EXPECT_EQ(out, data) << "replica " << i;
  }
  EXPECT_EQ(g->total_rnr_stalls(), 0u);
}

TEST_F(FanoutFixture, FlushedWriteSurvivesCrashEverywhere) {
  auto g = make_group();
  const std::string data = "fanout-durable";
  g->client_store(0, data.data(), data.size());
  bool done = false;
  g->gwrite(0, data.size(), true, [&] { done = true; });
  run();
  ASSERT_TRUE(done);
  for (size_t i = 0; i < 3; ++i) {
    g->replica_server(i).nvm().crash();
    std::string out(data.size(), '\0');
    g->replica_load(i, 0, out.data(), out.size());
    EXPECT_EQ(out, data) << "replica " << i;
  }
}

TEST_F(FanoutFixture, GmemcpyExecutesOnEveryReplica) {
  auto g = make_group();
  const std::string data = "copy-everywhere";
  g->client_store(0, data.data(), data.size());
  bool done = false;
  g->gwrite(0, data.size(), true, [&] {
    g->gmemcpy(0, 8192, data.size(), true, [&] { done = true; });
  });
  run();
  ASSERT_TRUE(done);
  for (size_t i = 0; i < 3; ++i) {
    std::string out(data.size(), '\0');
    g->replica_load(i, 8192, out.data(), out.size());
    EXPECT_EQ(out, data) << "replica " << i;
  }
  std::string cli(data.size(), '\0');
  g->client_load(8192, cli.data(), cli.size());
  EXPECT_EQ(cli, data);
}

TEST_F(FanoutFixture, GcasAppliesAndReturnsResultMap) {
  auto g = make_group();
  std::vector<uint64_t> result;
  g->gcas(512, 0, 55, ExecMap::all(3),
          [&](const CasResult& r) { result.assign(r.begin(), r.end()); });
  run();
  ASSERT_EQ(result.size(), 3u);
  for (uint64_t v : result) EXPECT_EQ(v, 0u);
  for (size_t i = 0; i < 3; ++i) {
    uint64_t v = 0;
    g->replica_load(i, 512, &v, 8);
    EXPECT_EQ(v, 55u);
  }
}

TEST_F(FanoutFixture, GcasExecuteMapSelectsReplicas) {
  auto g = make_group();
  std::vector<uint64_t> result;
  // Skip the primary, CAS only backup 1 (index 2 in group terms).
  g->gcas(512, 0, 9, ExecMap::one(2),
          [&](const CasResult& r) { result.assign(r.begin(), r.end()); });
  run();
  ASSERT_EQ(result.size(), 3u);
  uint64_t v0 = 0, v1 = 0, v2 = 0;
  g->replica_load(0, 512, &v0, 8);
  g->replica_load(1, 512, &v1, 8);
  g->replica_load(2, 512, &v2, 8);
  EXPECT_EQ(v0, 0u);
  EXPECT_EQ(v1, 0u);
  EXPECT_EQ(v2, 9u);
}

TEST_F(FanoutFixture, GcasMismatchReportsHolder) {
  auto g = make_group();
  bool first = false;
  g->gcas(256, 0, 7, ExecMap::all(3),
          [&](const CasResult&) { first = true; });
  run();
  ASSERT_TRUE(first);
  std::vector<uint64_t> result;
  g->gcas(256, 0, 8, ExecMap::all(3),
          [&](const CasResult& r) { result.assign(r.begin(), r.end()); });
  run();
  ASSERT_EQ(result.size(), 3u);
  for (uint64_t v : result) EXPECT_EQ(v, 7u);
}

TEST_F(FanoutFixture, PipelinedWritesComplete) {
  auto g = make_group();
  int done = 0;
  const int n = 200;  // > ring to exercise refill
  for (int k = 0; k < n; ++k) {
    uint64_t v = static_cast<uint64_t>(k) * 5 + 1;
    g->client_store(static_cast<uint64_t>(k) * 32, &v, 8);
    g->gwrite(static_cast<uint64_t>(k) * 32, 8, false, [&] { ++done; });
  }
  run(sim::msec(500));
  ASSERT_EQ(done, n);
  for (int k = 0; k < n; k += 13) {
    for (size_t i = 0; i < 3; ++i) {
      uint64_t v = 0;
      g->replica_load(i, static_cast<uint64_t>(k) * 32, &v, 8);
      EXPECT_EQ(v, static_cast<uint64_t>(k) * 5 + 1);
    }
  }
}

TEST_F(FanoutFixture, SingleBackupWorks) {
  auto g = make_group(2);
  const uint64_t v = 11;
  g->client_store(0, &v, 8);
  bool done = false;
  g->gwrite(0, 8, true, [&] { done = true; });
  run();
  ASSERT_TRUE(done);
  uint64_t out = 0;
  g->replica_load(1, 0, &out, 8);
  EXPECT_EQ(out, 11u);
}

TEST_F(FanoutFixture, NoReplicaCpuOnCriticalPath) {
  auto g = make_group();
  sim::Duration before = 0;
  for (size_t i = 0; i < 3; ++i) {
    before += g->replica_server(i).sched().total_busy();
  }
  int done = 0;
  for (int k = 0; k < 100; ++k) g->gwrite(0, 256, true, [&] { ++done; });
  run(sim::msec(20));
  ASSERT_EQ(done, 100);
  sim::Duration after = 0;
  for (size_t i = 0; i < 3; ++i) {
    after += g->replica_server(i).sched().total_busy();
  }
  EXPECT_LT(after - before, sim::msec(5));  // refill only
}

}  // namespace
}  // namespace hyperloop::core
