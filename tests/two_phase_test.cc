#include "core/two_phase.h"

#include <gtest/gtest.h>

#include <cstring>

#include "core/hyperloop_group.h"
#include "core/server.h"

namespace hyperloop::core {
namespace {

struct TwoPhaseFixture : ::testing::Test {
  static constexpr int kPartitions = 2;

  Cluster cluster{[] {
    Cluster::Config c;
    c.num_servers = 4;
    c.server.cpu.num_cores = 8;
    return c;
  }()};
  RegionLayout layout = [] {
    RegionLayout l;
    l.region_size = 2u << 20;
    l.log_size = 256 << 10;
    l.num_locks = 32;
    return l;
  }();

  struct Part {
    std::unique_ptr<HyperLoopGroup> group;
    std::unique_ptr<ReplicatedWal> wal;
    std::unique_ptr<GroupLockManager> locks;
  };
  std::vector<Part> parts;
  std::unique_ptr<TwoPhaseCoordinator> coord;

  void SetUp() override {
    std::vector<TwoPhaseCoordinator::PartitionCtx> ctxs;
    for (int p = 0; p < kPartitions; ++p) {
      Part part;
      HyperLoopGroup::Config gc;
      gc.region_size = layout.region_size;
      gc.ring_slots = 128;
      gc.max_inflight = 32;
      std::vector<Server*> reps = {&cluster.server(0), &cluster.server(1),
                                   &cluster.server(2)};
      part.group =
          std::make_unique<HyperLoopGroup>(cluster.server(3), reps, gc);
      part.wal = std::make_unique<ReplicatedWal>(*part.group, layout);
      part.locks = std::make_unique<GroupLockManager>(*part.group, layout,
                                                      cluster.loop());
      ctxs.push_back({part.group.get(), part.wal.get(), part.locks.get(),
                      layout});
      parts.push_back(std::move(part));
    }
    coord = std::make_unique<TwoPhaseCoordinator>(cluster.loop(),
                                                  std::move(ctxs),
                                                  TwoPhaseCoordinator::Config{});
  }

  void run(sim::Duration d = sim::msec(500)) {
    cluster.loop().run_until(cluster.loop().now() + d);
  }

  std::vector<uint8_t> bytes(uint64_t v) {
    std::vector<uint8_t> b(8);
    std::memcpy(b.data(), &v, 8);
    return b;
  }
  uint64_t db_read(int part, size_t replica, uint64_t off) {
    uint64_t v = 0;
    parts[static_cast<size_t>(part)].group->replica_load(
        replica, layout.db_base() + off, &v, 8);
    return v;
  }
};

TEST_F(TwoPhaseFixture, CrossPartitionCommitAppliesEverywhere) {
  const uint64_t base = coord->app_data_base();
  bool committed = false;
  coord->execute({{0, base + 0, 1, bytes(111)}, {1, base + 64, 2, bytes(222)}},
                 [&](bool ok) { committed = ok; });
  run();
  ASSERT_TRUE(committed);
  EXPECT_EQ(coord->committed(), 1u);
  for (size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(db_read(0, r, base + 0), 111u);
    EXPECT_EQ(db_read(1, r, base + 64), 222u);
  }
  // Status tables show COMMITTED in both partitions.
  std::vector<std::pair<uint64_t, uint64_t>> st;
  coord->scan_status(0, &st);
  coord->scan_status(1, &st);
  ASSERT_EQ(st.size(), 2u);
  for (auto& [id, state] : st) {
    EXPECT_EQ(state, TwoPhaseCoordinator::kCommitted);
  }
}

TEST_F(TwoPhaseFixture, SinglePartitionTxnWorks) {
  const uint64_t base = coord->app_data_base();
  bool committed = false;
  coord->execute({{0, base + 128, 5, bytes(7)}},
                 [&](bool ok) { committed = ok; });
  run();
  ASSERT_TRUE(committed);
  EXPECT_EQ(db_read(0, 2, base + 128), 7u);
}

TEST_F(TwoPhaseFixture, ManyConcurrentTxnsAllCommit) {
  const uint64_t base = coord->app_data_base();
  int done = 0;
  const int n = 24;
  for (int k = 0; k < n; ++k) {
    coord->execute(
        {{0, base + static_cast<uint64_t>(k) * 64, static_cast<uint32_t>(k % 8),
          bytes(static_cast<uint64_t>(k) + 1)},
         {1, base + static_cast<uint64_t>(k) * 64,
          static_cast<uint32_t>(k % 8), bytes(static_cast<uint64_t>(k) + 100)}},
        [&](bool ok) { done += ok ? 1 : 0; });
  }
  run(sim::seconds(10));
  EXPECT_EQ(done, n);
  for (int k = 0; k < n; k += 5) {
    EXPECT_EQ(db_read(0, 1, base + static_cast<uint64_t>(k) * 64),
              static_cast<uint64_t>(k) + 1);
    EXPECT_EQ(db_read(1, 1, base + static_cast<uint64_t>(k) * 64),
              static_cast<uint64_t>(k) + 100);
  }
}

TEST_F(TwoPhaseFixture, PreparedOnlyTxnIsPresumedAborted) {
  // Simulate a coordinator crash after prepare: append the prepare record
  // manually (what prepare_all does) and never commit. The staged bytes
  // must never reach the application data area.
  const uint64_t base = coord->app_data_base();
  const uint64_t txn = 77;
  std::vector<ReplicatedWal::Entry> entries;
  std::vector<uint8_t> staging(24, 0);
  uint32_t count = 1;
  uint64_t target = base + 512;
  uint32_t len = 8;
  std::memcpy(staging.data(), &count, 4);
  std::memcpy(staging.data() + 8, &target, 8);
  std::memcpy(staging.data() + 16, &len, 4);
  // (payload omitted: 8 zero bytes)
  entries.push_back({coord->staging_offset(txn), staging});
  std::vector<uint8_t> status(16);
  std::memcpy(status.data(), &txn, 8);
  uint64_t prepared = TwoPhaseCoordinator::kPrepared;
  std::memcpy(status.data() + 8, &prepared, 8);
  entries.push_back({coord->status_offset(txn), status});
  ASSERT_TRUE(parts[0].wal->append(entries, [](uint64_t) {}));
  run();
  parts[0].wal->execute_and_advance([] {});
  run();

  // Not committed anywhere -> recovery does NOT roll it forward.
  EXPECT_EQ(coord->recover_partition(0, {}), 0u);
  std::vector<std::pair<uint64_t, uint64_t>> st;
  coord->scan_status(0, &st);
  ASSERT_EQ(st.size(), 1u);
  EXPECT_EQ(st[0].second, TwoPhaseCoordinator::kPrepared);
}

TEST_F(TwoPhaseFixture, CommittedElsewhereRollsForwardFromStaging) {
  // Txn committed on partition 1 but only prepared on partition 0 (the
  // coordinator died between the two commit appends). Recovery must roll
  // partition 0 forward from its durable staging block.
  const uint64_t base = coord->app_data_base();
  const uint64_t txn = 33;
  const uint64_t value = 4242;

  // Partition 0: prepare only.
  {
    // Staging block: [count=1][pad] [db_offset][len=8][pad] [value].
    uint32_t count = 1;
    uint64_t target = base + 1024;
    uint32_t len = 8;
    std::vector<uint8_t> full(32, 0);
    std::memcpy(full.data(), &count, 4);
    std::memcpy(full.data() + 8, &target, 8);
    std::memcpy(full.data() + 16, &len, 4);
    std::memcpy(full.data() + 24, &value, 8);
    std::vector<ReplicatedWal::Entry> entries;
    entries.push_back({coord->staging_offset(txn), full});
    std::vector<uint8_t> status(16);
    std::memcpy(status.data(), &txn, 8);
    uint64_t prepared = TwoPhaseCoordinator::kPrepared;
    std::memcpy(status.data() + 8, &prepared, 8);
    entries.push_back({coord->status_offset(txn), status});
    ASSERT_TRUE(parts[0].wal->append(entries, [](uint64_t) {}));
    run();
    parts[0].wal->execute_and_advance([] {});
    run();
  }
  // Partition 1: committed status mark.
  {
    std::vector<uint8_t> status(16);
    std::memcpy(status.data(), &txn, 8);
    uint64_t comm = TwoPhaseCoordinator::kCommitted;
    std::memcpy(status.data() + 8, &comm, 8);
    std::vector<ReplicatedWal::Entry> entries = {
        {coord->status_offset(txn), status}};
    ASSERT_TRUE(parts[1].wal->append(entries, [](uint64_t) {}));
    run();
    parts[1].wal->execute_and_advance([] {});
    run();
  }

  // Scan: txn is committed somewhere.
  std::vector<std::pair<uint64_t, uint64_t>> st;
  coord->scan_status(1, &st);
  ASSERT_EQ(st.size(), 1u);
  ASSERT_EQ(st[0].second, TwoPhaseCoordinator::kCommitted);

  EXPECT_EQ(coord->recover_partition(0, {txn}), 1u);
  run();
  // Rolled forward on every replica of partition 0.
  for (size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(db_read(0, r, base + 1024), value) << "replica " << r;
  }
  st.clear();
  coord->scan_status(0, &st);
  ASSERT_EQ(st.size(), 1u);
  EXPECT_EQ(st[0].second, TwoPhaseCoordinator::kCommitted);
  // Idempotent.
  EXPECT_EQ(coord->recover_partition(0, {txn}), 0u);
}

TEST_F(TwoPhaseFixture, CommittedDataSurvivesFullClusterCrash) {
  const uint64_t base = coord->app_data_base();
  bool committed = false;
  coord->execute({{0, base, 0, bytes(1)}, {1, base, 0, bytes(2)}},
                 [&](bool ok) { committed = ok; });
  run();
  ASSERT_TRUE(committed);
  for (size_t r = 0; r < 3; ++r) {
    parts[0].group->replica_server(r).nvm().crash();
  }
  for (size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(db_read(0, r, base), 1u);
    EXPECT_EQ(db_read(1, r, base), 2u);
  }
}

}  // namespace
}  // namespace hyperloop::core
