// Shard-fault isolation (DESIGN.md "Sharded datapath", failure isolation).
//
// Two replication chains behind one ShardedGroup, a sharded KvStore on
// top, and one ShardedChainManager supervising each chain separately.
// Killing a replica of shard 0's chain mid-workload must:
//   - fire only shard 0's detector and pause only shard 0's writes,
//   - leave shard 1's commit latency unaffected while shard 0 is down,
//   - defer (not lose) shard 0's puts, which complete after the replica
//     revives via catch-up, and
//   - resume shard 0 with its chain epoch bumped and counts intact.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "apps/kvstore/kvstore.h"
#include "core/chain_manager.h"
#include "core/hyperloop_group.h"
#include "core/server.h"
#include "core/sharded_group.h"

namespace hyperloop::core {
namespace {

constexpr uint32_t kShards = 2;
constexpr uint64_t kSlice = 256 << 10;

struct ShardFaultFixture : ::testing::Test {
  Cluster cluster{[] {
    Cluster::Config c;
    c.num_servers = 4;  // 0..2 replicas, 3 client
    c.server.cpu.num_cores = 8;
    c.server.num_nics = kShards;
    return c;
  }()};

  std::vector<HyperLoopGroup*> chains;  // borrowed views into sharded
  std::unique_ptr<ShardedGroup> sharded;
  std::unique_ptr<apps::KvStore> kv;
  std::unique_ptr<ShardedChainManager> mgr;

  void SetUp() override {
    std::vector<Server*> reps = {&cluster.server(0), &cluster.server(1),
                                 &cluster.server(2)};
    std::vector<std::unique_ptr<ReplicationGroup>> kids;
    for (uint32_t s = 0; s < kShards; ++s) {
      HyperLoopGroup::Config gc;
      gc.region_size = kSlice * kShards;
      gc.ring_slots = 256;
      gc.max_inflight = 32;
      gc.nic_index = s;
      auto g = std::make_unique<HyperLoopGroup>(cluster.server(3), reps, gc);
      chains.push_back(g.get());
      kids.push_back(std::move(g));
    }
    sharded = std::make_unique<ShardedGroup>(
        std::move(kids), ShardRouter::range(kShards, kSlice));

    apps::KvStore::Config kc;
    kc.layout.region_size = kSlice;
    kc.layout.log_size = 64 << 10;
    kc.layout.num_locks = 16;
    kc.shards = kShards;
    kc.value_size = 64;
    kc.replicas_sync = false;
    kv = std::make_unique<apps::KvStore>(
        *sharded, cluster.server(3),
        std::vector<Server*>{reps.begin(), reps.end()}, kc);

    std::vector<std::vector<ChainManager::ReplicaInfo>> infos(kShards);
    for (uint32_t s = 0; s < kShards; ++s) {
      for (size_t i = 0; i < reps.size(); ++i) {
        infos[s].push_back(ChainManager::ReplicaInfo{
            &chains[s]->replica_server(i),
            chains[s]->replica_region_base(i)});
      }
    }
    mgr = std::make_unique<ShardedChainManager>(
        cluster.server(3), std::move(infos), kSlice * kShards,
        ChainManager::Config{});
    // Chain supervision gates exactly one shard's write path.
    mgr->set_on_shard_failure(
        [this](size_t s, size_t) { kv->set_shard_paused(s, true); });
    mgr->set_on_shard_recovered(
        [this](size_t s, size_t) { kv->set_shard_paused(s, false); });
    mgr->start();
  }

  void run(sim::Duration d) {
    cluster.loop().run_until(cluster.loop().now() + d);
  }
};

TEST_F(ShardFaultFixture, OneShardsFailureLeavesTheOtherUnaffected) {
  // Open-loop writer: one put per 50us, alternating shards (key % 2).
  struct PerShard {
    uint64_t issued = 0;
    uint64_t completed = 0;
    sim::Duration max_latency = 0;
    bool measuring = false;  ///< record latencies only while set
  };
  std::vector<PerShard> stat(kShards);
  uint64_t next_key = 0;
  auto put_one = [&] {
    const uint64_t key = next_key++ % 64;
    const uint32_t s = kv->shard_of(key);
    ++stat[s].issued;
    const sim::Time t0 = cluster.loop().now();
    std::vector<uint8_t> val(64, static_cast<uint8_t>(key));
    kv->insert(key, std::move(val), [&, s, t0](bool ok) {
      ASSERT_TRUE(ok);
      ++stat[s].completed;
      if (stat[s].measuring) {
        stat[s].max_latency =
            std::max(stat[s].max_latency, cluster.loop().now() - t0);
      }
    });
  };
  bool writing = true;
  std::function<void()> tick = [&] {
    if (!writing) return;
    put_one();
    cluster.loop().schedule_after(sim::usec(50), [&] { tick(); });
  };
  tick();

  // Phase 1: healthy. Both shards commit.
  run(sim::msec(10));
  EXPECT_GT(stat[0].completed, 50u);
  EXPECT_GT(stat[1].completed, 50u);

  // Phase 2: kill a replica on shard 0's chain; wait for detection.
  stat[1].measuring = true;
  mgr->shard(0).kill_replica(1);
  run(sim::msec(10));  // > missed_threshold * heartbeat_interval
  EXPECT_EQ(mgr->failures_detected(), 1u);
  EXPECT_TRUE(mgr->writes_paused(0));
  EXPECT_FALSE(mgr->writes_paused(1));
  EXPECT_TRUE(kv->shard_paused(0));
  EXPECT_FALSE(kv->shard_paused(1));

  // Phase 3: shard 0 paused — its new puts defer; shard 1 sails on.
  const uint64_t s0_before = stat[0].completed;
  const uint64_t s1_before = stat[1].completed;
  run(sim::msec(10));
  EXPECT_EQ(stat[0].completed, s0_before) << "paused shard must defer";
  EXPECT_GT(stat[1].completed, s1_before + 50);
  // The healthy shard never saw the outage: its commit latency during the
  // fault stays in the microsecond regime of its own private chain.
  EXPECT_LT(stat[1].max_latency, sim::msec(1));

  // Phase 4: revive; catch-up copies the image, epoch bumps, shard 0
  // resumes and the deferred puts drain.
  mgr->shard(0).revive_replica(1);
  run(sim::msec(20));
  EXPECT_EQ(mgr->recoveries(), 1u);
  EXPECT_FALSE(mgr->writes_paused(0));
  EXPECT_FALSE(kv->shard_paused(0));
  EXPECT_EQ(mgr->shard(0).epoch(), 2u);
  EXPECT_EQ(mgr->shard(1).epoch(), 1u);

  writing = false;
  run(sim::msec(30));  // quiesce: deferred retries complete
  EXPECT_EQ(stat[0].completed, stat[0].issued);
  EXPECT_EQ(stat[1].completed, stat[1].issued);

  // Both shards still serve reads for their keys.
  int reads_ok = 0;
  for (uint64_t k = 0; k < 8; ++k) {
    kv->read(k, [&](bool ok, std::vector<uint8_t> v) {
      EXPECT_TRUE(ok);
      if (ok && !v.empty()) ++reads_ok;
    });
  }
  run(sim::msec(5));
  EXPECT_EQ(reads_ok, 8);
}

TEST_F(ShardFaultFixture, EachChainDetectsItsOwnReplicaOnly) {
  size_t failed_shard = 999, failed_replica = 999;
  mgr->set_on_shard_failure([&](size_t s, size_t r) {
    failed_shard = s;
    failed_replica = r;
    kv->set_shard_paused(s, true);
  });
  run(sim::msec(5));
  mgr->shard(1).kill_replica(2);
  run(sim::msec(10));
  EXPECT_EQ(failed_shard, 1u);
  EXPECT_EQ(failed_replica, 2u);
  EXPECT_FALSE(mgr->writes_paused(0));
  EXPECT_TRUE(mgr->writes_paused(1));
  EXPECT_EQ(mgr->failures_detected(), 1u);
}

}  // namespace
}  // namespace hyperloop::core
