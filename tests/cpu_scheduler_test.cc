#include "sim/cpu_scheduler.h"

#include <gtest/gtest.h>

#include "sim/background_load.h"
#include "sim/event_loop.h"
#include "sim/rng.h"

namespace hyperloop::sim {
namespace {

CpuScheduler::Config basic(int cores) {
  CpuScheduler::Config c;
  c.num_cores = cores;
  c.context_switch_cost = usec(5);
  c.timeslice = msec(1);
  c.wakeup_overhead = usec(3);
  c.poll_interval = nsec(200);
  return c;
}

TEST(CpuScheduler, SingleTaskLatency) {
  EventLoop loop;
  CpuScheduler s(loop, basic(1));
  const ProcessId p = s.create_process("p");
  Time done_at = -1;
  s.submit(p, usec(10), [&] { done_at = loop.now(); });
  loop.run();
  // wakeup(3) + context switch(5) + service(10)
  EXPECT_EQ(done_at, usec(18));
}

TEST(CpuScheduler, NoSwitchCostForSameProcessBackToBack) {
  EventLoop loop;
  CpuScheduler s(loop, basic(1));
  const ProcessId p = s.create_process("p");
  Time done_at = -1;
  s.submit(p, usec(10), [&] {
    s.submit(p, usec(10), [&] { done_at = loop.now(); }, false);
  });
  loop.run();
  // First: 3+5+10 = 18us; second: no wakeup, no switch, +10 = 28us.
  EXPECT_EQ(done_at, usec(28));
  EXPECT_EQ(s.stats(p).context_switches, 1u);
}

TEST(CpuScheduler, QueueingDelayWithBusyCore) {
  EventLoop loop;
  CpuScheduler s(loop, basic(1));
  const ProcessId a = s.create_process("a");
  const ProcessId b = s.create_process("b");
  Time b_done = -1;
  s.submit(a, usec(100));
  s.submit(b, usec(10), [&] { b_done = loop.now(); });
  loop.run();
  // b waits for a: wakeup(3) + [a: switch 5 + 100] then b: switch 5 + 10.
  EXPECT_EQ(b_done, usec(3 + 5 + 100 + 5 + 10));
}

TEST(CpuScheduler, ParallelismAcrossCores) {
  EventLoop loop;
  CpuScheduler s(loop, basic(4));
  int done = 0;
  for (int i = 0; i < 4; ++i) {
    const ProcessId p = s.create_process("p");
    s.submit(p, usec(100), [&] { ++done; });
  }
  loop.run();
  EXPECT_EQ(done, 4);
  // All four ran in parallel: finished at 3+5+100.
  EXPECT_EQ(loop.now(), usec(108));
}

TEST(CpuScheduler, PreemptionBoundsLongTask) {
  EventLoop loop;
  auto cfg = basic(1);
  cfg.timeslice = usec(100);
  CpuScheduler s(loop, cfg);
  const ProcessId hog = s.create_process("hog");
  const ProcessId quick = s.create_process("quick");
  Time quick_done = -1;
  s.submit(hog, msec(10));
  // Submitted just after the hog starts; must preempt within ~a timeslice.
  loop.schedule_after(usec(20), [&] {
    s.submit(quick, usec(1), [&] { quick_done = loop.now(); });
  });
  loop.run();
  EXPECT_GT(quick_done, 0);
  EXPECT_LT(quick_done, usec(400));  // not 10ms!
}

TEST(CpuScheduler, RoundRobinSharesFairly) {
  EventLoop loop;
  auto cfg = basic(1);
  cfg.timeslice = usec(50);
  cfg.context_switch_cost = 0;
  CpuScheduler s(loop, cfg);
  const ProcessId a = s.create_process("a");
  const ProcessId b = s.create_process("b");
  Time a_done = -1, b_done = -1;
  s.submit(a, usec(500), [&] { a_done = loop.now(); });
  s.submit(b, usec(500), [&] { b_done = loop.now(); });
  loop.run();
  // Interleaved: both finish near 1000us, not 500/1000.
  EXPECT_GT(a_done, usec(900));
  EXPECT_GT(b_done, usec(900));
}

TEST(CpuScheduler, PinnedPollingBypassesQueue) {
  EventLoop loop;
  CpuScheduler s(loop, basic(2));
  const ProcessId poller = s.create_process("poller");
  ASSERT_TRUE(s.pin_core(poller));
  EXPECT_EQ(s.shared_cores(), 1);

  // Saturate the single shared core.
  const ProcessId hog = s.create_process("hog");
  s.submit(hog, msec(50));

  Time done = -1;
  loop.schedule_after(usec(10), [&] {
    s.submit(poller, usec(1), [&] { done = loop.now(); });
  });
  loop.run();
  // Poll interval (0.2us) + 1us of service, from t=10us.
  EXPECT_LT(done, usec(13));
}

TEST(CpuScheduler, PinnedCoreCountsAsBusy) {
  EventLoop loop;
  CpuScheduler s(loop, basic(2));
  const ProcessId poller = s.create_process("poller");
  ASSERT_TRUE(s.pin_core(poller));
  loop.run_until(msec(10));
  // One of two cores busy-polls the whole time => ~50% utilization.
  EXPECT_NEAR(s.utilization(), 0.5, 0.01);
}

TEST(CpuScheduler, PinFailsWhenAllCoresPinned) {
  EventLoop loop;
  CpuScheduler s(loop, basic(1));
  const ProcessId a = s.create_process("a");
  const ProcessId b = s.create_process("b");
  EXPECT_TRUE(s.pin_core(a));
  EXPECT_FALSE(s.pin_core(b));
}

TEST(CpuScheduler, ContextSwitchAccounting) {
  EventLoop loop;
  CpuScheduler s(loop, basic(1));
  const ProcessId a = s.create_process("a");
  const ProcessId b = s.create_process("b");
  for (int i = 0; i < 5; ++i) {
    s.submit(a, usec(10));
    s.submit(b, usec(10));
  }
  loop.run();
  EXPECT_EQ(s.total_context_switches(), 10u);
}

TEST(CpuScheduler, CpuTimeAccounting) {
  EventLoop loop;
  CpuScheduler s(loop, basic(2));
  const ProcessId a = s.create_process("a");
  s.submit(a, usec(100));
  s.submit(a, usec(50));
  loop.run();
  EXPECT_EQ(s.stats(a).cpu_time, usec(150));
  EXPECT_EQ(s.stats(a).bursts_completed, 2u);
}

TEST(BackgroundLoad, SaturatesCores) {
  EventLoop loop;
  CpuScheduler s(loop, basic(4));
  BackgroundLoad::Config cfg;
  cfg.median_burst = usec(80);
  cfg.mean_think = usec(5);
  BackgroundLoad load(loop, s, cfg, Rng(99));
  const_cast<BackgroundLoad::Config&>(cfg).tenants = 0;  // silence unused
  BackgroundLoad heavy(loop, s, {.tenants = 32,
                                 .median_burst = usec(80),
                                 .burst_sigma = 1.0,
                                 .mean_think = usec(5)},
                       Rng(99));
  heavy.start();
  loop.run_until(msec(50));
  EXPECT_GT(s.utilization(), 0.9);
}

TEST(BackgroundLoad, InflatesVictimLatency) {
  EventLoop loop;
  CpuScheduler s(loop, basic(4));
  BackgroundLoad load(loop, s,
                      {.tenants = 64,
                       .median_burst = usec(80),
                       .burst_sigma = 1.0,
                       .mean_think = usec(5)},
                      Rng(7));
  load.start();
  const ProcessId victim = s.create_process("victim");
  loop.run_until(msec(5));  // warm up the run queue

  Time submitted = loop.now();
  Time done = -1;
  s.submit(victim, usec(1), [&] { done = loop.now(); });
  loop.run_until(msec(200));
  ASSERT_GT(done, 0);
  // The 1us task takes far more than 10us end-to-end under load.
  EXPECT_GT(done - submitted, usec(10));
}

}  // namespace
}  // namespace hyperloop::sim
