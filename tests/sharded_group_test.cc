// ShardedGroup (multi-chain replication) tests.
//
// Covers the router contract and the composition semantics:
//   - range/hash routing math (granule stability, clamping, boundaries)
//   - identity addressing: offsets are never rebased, data written through
//     the sharded facade reads back from every child chain's replicas
//   - cross-shard gWRITEV split + pooled scatter-join (one done per batch)
//   - gFLUSH broadcast barrier across all chains
//   - stop() aborting live joins and child chains
#include "core/sharded_group.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <set>
#include <vector>

#include "core/hyperloop_group.h"
#include "core/server.h"

namespace hyperloop::core {
namespace {

constexpr uint64_t kRegion = 1 << 20;  // logical region
constexpr uint32_t kShards = 4;
constexpr uint64_t kSpan = kRegion / kShards;

struct ShardedGroupFixture : ::testing::Test {
  Cluster cluster{[] {
    Cluster::Config c;
    c.num_servers = 4;  // servers 0..2 = replicas, 3 = client
    c.server.cpu.num_cores = 8;
    c.server.num_nics = kShards;  // one NIC port per chain
    return c;
  }()};

  std::unique_ptr<ShardedGroup> make_sharded(
      uint32_t shards = kShards,
      ShardRouter router = ShardRouter::range(kShards, kSpan)) {
    std::vector<Server*> reps;
    for (size_t i = 0; i < 3; ++i) reps.push_back(&cluster.server(i));
    std::vector<std::unique_ptr<ReplicationGroup>> chains;
    for (uint32_t s = 0; s < shards; ++s) {
      HyperLoopGroup::Config gc;
      gc.region_size = kRegion;  // identity addressing: full logical span
      gc.ring_slots = 64;
      gc.max_inflight = 16;
      gc.nic_index = s;
      chains.push_back(std::make_unique<HyperLoopGroup>(cluster.server(3),
                                                        reps, gc));
    }
    return std::make_unique<ShardedGroup>(std::move(chains), router);
  }

  void run(sim::Duration d = sim::msec(50)) {
    cluster.loop().run_until(cluster.loop().now() + d);
  }
};

TEST(ShardRouterTest, RangePolicyMapsSpansAndClamps) {
  const ShardRouter r = ShardRouter::range(4, 1000);
  EXPECT_EQ(r.shard_of(0), 0u);
  EXPECT_EQ(r.shard_of(999), 0u);
  EXPECT_EQ(r.shard_of(1000), 1u);
  EXPECT_EQ(r.shard_of(3999), 3u);
  // Past-end offsets clamp to the last shard rather than asserting: the
  // logical region may be slightly larger than shards * span.
  EXPECT_EQ(r.shard_of(4000), 3u);
  EXPECT_EQ(r.shard_of(1u << 30), 3u);
  EXPECT_EQ(r.next_boundary(0), 1000u);
  EXPECT_EQ(r.next_boundary(999), 1000u);
  EXPECT_EQ(r.next_boundary(1000), 2000u);
}

TEST(ShardRouterTest, HashPolicyIsGranuleStableAndSpreads) {
  const ShardRouter r = ShardRouter::hash(4, /*chunk_shift=*/12);
  // Every offset inside one 4KB granule routes identically.
  const uint32_t owner = r.shard_of(8 << 12);
  for (uint64_t o = 0; o < 4096; o += 64) {
    EXPECT_EQ(r.shard_of((8 << 12) + o), owner);
  }
  EXPECT_EQ(r.next_boundary(8 << 12), uint64_t{9} << 12);
  // Adjacent granules spread: over many granules every shard shows up.
  std::set<uint32_t> seen;
  for (uint64_t g = 0; g < 64; ++g) seen.insert(r.shard_of(g << 12));
  EXPECT_EQ(seen.size(), 4u);
  // Deterministic across instances.
  const ShardRouter r2 = ShardRouter::hash(4, 12);
  for (uint64_t g = 0; g < 64; ++g) {
    EXPECT_EQ(r.shard_of(g << 12), r2.shard_of(g << 12));
  }
}

TEST_F(ShardedGroupFixture, IdentityAddressedWritesLandOnEveryReplica) {
  auto g = make_sharded();
  EXPECT_EQ(g->group_size(), 3u);
  EXPECT_EQ(g->region_size(), kRegion);
  // One write per shard's span, all through the same facade.
  for (uint32_t s = 0; s < kShards; ++s) {
    const uint64_t off = s * kSpan + 128;
    const uint64_t tag = 0xBEEF0000 + s;
    g->client_store(off, &tag, sizeof(tag));
    bool done = false;
    g->gwrite(off, sizeof(tag), /*flush=*/true, [&done] { done = true; });
    run();
    ASSERT_TRUE(done) << "shard " << s;
    for (size_t i = 0; i < 3; ++i) {
      uint64_t out = 0;
      g->replica_load(i, off, &out, sizeof(out));
      EXPECT_EQ(out, tag) << "shard " << s << " replica " << i;
    }
    EXPECT_GE(g->shard_stats(s).ops, 1u) << "shard " << s;
    EXPECT_GE(g->shard_stats(s).bytes, sizeof(tag)) << "shard " << s;
  }
}

TEST_F(ShardedGroupFixture, CrossShardGwritevSplitsAndJoins) {
  auto g = make_sharded();
  // Four extents, one per shard: must split into per-shard sub-batches
  // and fire exactly one completion when the last sub-batch lands.
  ExtentVec v;
  for (uint32_t s = 0; s < kShards; ++s) {
    const uint64_t off = s * kSpan + 64;
    const uint64_t tag = 0xAB00 + s;
    g->client_store(off, &tag, sizeof(tag));
    v.push_back({off, sizeof(tag)});
  }
  int dones = 0;
  g->gwritev(v, /*flush=*/true, [&dones] { ++dones; });
  run();
  EXPECT_EQ(dones, 1);
  EXPECT_EQ(g->stats().split_gwritevs, 1u);
  for (uint32_t s = 0; s < kShards; ++s) {
    for (size_t i = 0; i < 3; ++i) {
      uint64_t out = 0;
      g->replica_load(i, s * kSpan + 64, &out, sizeof(out));
      EXPECT_EQ(out, 0xAB00u + s);
    }
  }
}

TEST_F(ShardedGroupFixture, UniformGwritevTakesTheFastPath) {
  auto g = make_sharded();
  ExtentVec v;
  for (int e = 0; e < 4; ++e) {
    const uint64_t off = 2 * kSpan + 64 + static_cast<uint64_t>(e) * 256;
    const uint64_t tag = 0xCD00 + static_cast<uint64_t>(e);
    g->client_store(off, &tag, sizeof(tag));
    v.push_back({off, sizeof(tag)});
  }
  bool done = false;
  g->gwritev(v, /*flush=*/true, [&done] { done = true; });
  run();
  ASSERT_TRUE(done);
  // All extents in shard 2: handed through untouched, no join slot used.
  EXPECT_EQ(g->stats().split_gwritevs, 0u);
  uint64_t out = 0;
  g->replica_load(2, 2 * kSpan + 64, &out, sizeof(out));
  EXPECT_EQ(out, 0xCD00u);
}

TEST_F(ShardedGroupFixture, GflushBroadcastsToEveryChain) {
  auto g = make_sharded();
  // Unflushed writes on two different chains, then one barrier.
  const uint64_t t0 = 0x11, t1 = 0x22;
  g->client_store(16, &t0, 8);
  g->client_store(kSpan + 16, &t1, 8);
  bool w0 = false, w1 = false;
  g->gwrite(16, 8, /*flush=*/false, [&w0] { w0 = true; });
  g->gwrite(kSpan + 16, 8, /*flush=*/false, [&w1] { w1 = true; });
  run();
  ASSERT_TRUE(w0 && w1);
  int flushed = 0;
  g->gflush([&flushed] { ++flushed; });
  run();
  EXPECT_EQ(flushed, 1);
  EXPECT_EQ(g->stats().flush_broadcasts, 1u);
  // Durability barrier held on every chain: crash all replicas, data stays.
  for (size_t i = 0; i < 3; ++i) cluster.server(i).nvm().crash();
  uint64_t out = 0;
  g->replica_load(0, 16, &out, 8);
  EXPECT_EQ(out, t0);
  g->replica_load(1, kSpan + 16, &out, 8);
  EXPECT_EQ(out, t1);
}

TEST_F(ShardedGroupFixture, GmemcpyAndGcasRideTheOwningChain) {
  auto g = make_sharded();
  const uint64_t base = 3 * kSpan;
  const uint64_t val = 0x5151;
  // gMEMCPY copies *replica-side* memory, so the source bytes must be
  // replicated first (gwrite), not just staged in the client region.
  g->client_store(base + 32, &val, 8);
  bool written = false;
  g->gwrite(base + 32, 8, /*flush=*/true, [&written] { written = true; });
  run();
  ASSERT_TRUE(written);
  bool copied = false;
  g->gmemcpy(base + 32, base + 4096, 8, /*flush=*/true,
             [&copied] { copied = true; });
  run();
  ASSERT_TRUE(copied);
  uint64_t out = 0;
  g->replica_load(2, base + 4096, &out, 8);
  EXPECT_EQ(out, val);

  bool cas_ok = false;
  g->gcas(base + 64, 0, 77, ExecMap::all(3),
          [&cas_ok](const CasResult& r) {
            cas_ok = true;
            for (const uint64_t v : r) cas_ok = cas_ok && v == 0;
          });
  run();
  EXPECT_TRUE(cas_ok);
  g->replica_load(1, base + 64, &out, 8);
  EXPECT_EQ(out, 77u);
  EXPECT_GE(g->shard_stats(3).ops, 3u);  // gwrite + gmemcpy + gcas
}

TEST_F(ShardedGroupFixture, StopAbortsLiveJoinsAndChildren) {
  auto g = make_sharded();
  ExtentVec v;
  for (uint32_t s = 0; s < kShards; ++s) v.push_back({s * kSpan, 8});
  int dones = 0;
  g->gwritev(v, /*flush=*/true, [&dones] { ++dones; });
  g->stop();  // before the loop runs: the join must die silently
  run();
  EXPECT_EQ(dones, 0);
  EXPECT_GE(g->aborted_ops(), 1u);
  // Stopped group drops new ops without invoking completions.
  g->gwrite(0, 8, true, [&dones] { ++dones; });
  run();
  EXPECT_EQ(dones, 0);
}

TEST_F(ShardedGroupFixture, LocalAccessorsSplitAtRoutingBoundaries) {
  auto g = make_sharded();
  // A buffer spanning a range boundary: client_store/client_load must
  // split it across the owning chains transparently.
  std::vector<uint8_t> in(512);
  for (size_t i = 0; i < in.size(); ++i) in[i] = static_cast<uint8_t>(i);
  const uint64_t off = kSpan - 256;  // halves in shard 0 and shard 1
  g->client_store(off, in.data(), static_cast<uint32_t>(in.size()));
  std::vector<uint8_t> out(in.size(), 0);
  g->client_load(off, out.data(), static_cast<uint32_t>(out.size()));
  EXPECT_EQ(in, out);
}

}  // namespace
}  // namespace hyperloop::core
