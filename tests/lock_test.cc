#include "core/lock.h"

#include <gtest/gtest.h>

#include "core/hyperloop_group.h"
#include "core/server.h"

namespace hyperloop::core {
namespace {

struct LockFixture : ::testing::Test {
  Cluster cluster{[] {
    Cluster::Config c;
    c.num_servers = 4;
    c.server.cpu.num_cores = 8;
    return c;
  }()};
  RegionLayout layout = [] {
    RegionLayout l;
    l.region_size = 1 << 20;
    l.log_size = 64 << 10;
    l.num_locks = 32;
    return l;
  }();
  std::unique_ptr<HyperLoopGroup> group = [this] {
    HyperLoopGroup::Config gc;
    gc.region_size = layout.region_size;
    gc.ring_slots = 64;
    gc.max_inflight = 16;
    std::vector<Server*> reps = {&cluster.server(0), &cluster.server(1),
                                 &cluster.server(2)};
    return std::make_unique<HyperLoopGroup>(cluster.server(3), reps, gc);
  }();
  GroupLockManager locks{*group, layout, cluster.loop()};

  void run(sim::Duration d = sim::msec(200)) {
    cluster.loop().run_until(cluster.loop().now() + d);
  }

  uint64_t lock_word(size_t replica, uint32_t id) {
    uint64_t v = 0;
    group->replica_load(replica, layout.lock_offset(id), &v, 8);
    return v;
  }
  uint64_t reader_count(size_t replica, uint32_t id) {
    uint64_t v = 0;
    group->replica_load(replica, layout.reader_offset(id), &v, 8);
    return v;
  }
};

TEST_F(LockFixture, WrLockAcquiresOnAllReplicas) {
  bool got = false;
  locks.wr_lock(3, 111, [&](bool ok) { got = ok; });
  run();
  ASSERT_TRUE(got);
  for (size_t i = 0; i < 3; ++i) EXPECT_EQ(lock_word(i, 3), 111u);
  EXPECT_EQ(locks.stats().wr_acquired, 1u);
}

TEST_F(LockFixture, WrUnlockReleasesEverywhere) {
  bool done = false;
  locks.wr_lock(3, 111, [&](bool) {
    locks.wr_unlock(3, 111, [&] { done = true; });
  });
  run();
  ASSERT_TRUE(done);
  for (size_t i = 0; i < 3; ++i) EXPECT_EQ(lock_word(i, 3), 0u);
}

TEST_F(LockFixture, SecondOwnerWaitsForRelease) {
  bool a = false, b = false;
  locks.wr_lock(5, 1, [&](bool ok) { a = ok; });
  locks.wr_lock(5, 2, [&](bool ok) { b = ok; });
  run(sim::msec(5));
  EXPECT_TRUE(a);
  EXPECT_FALSE(b);  // still waiting
  EXPECT_GT(locks.stats().wr_conflicts, 0u);

  locks.wr_unlock(5, 1, [] {});
  run();
  EXPECT_TRUE(b);
  for (size_t i = 0; i < 3; ++i) EXPECT_EQ(lock_word(i, 5), 2u);
}

TEST_F(LockFixture, MutualExclusionUnderContention) {
  // N logical owners hammer one lock; verify the critical section never
  // overlaps by checking a shared counter invariant.
  int in_critical = 0, max_in_critical = 0, completed = 0;
  const int kOwners = 8;
  for (uint64_t o = 1; o <= kOwners; ++o) {
    locks.wr_lock(7, o, [&, o](bool ok) {
      ASSERT_TRUE(ok);
      ++in_critical;
      max_in_critical = std::max(max_in_critical, in_critical);
      cluster.loop().schedule_after(sim::usec(50), [&, o] {
        --in_critical;
        locks.wr_unlock(7, o, [&] { ++completed; });
      });
    });
  }
  run(sim::seconds(2));
  EXPECT_EQ(completed, kOwners);
  EXPECT_EQ(max_in_critical, 1);
}

TEST_F(LockFixture, PartialAcquisitionIsUndone) {
  // Pre-poison replica 1's lock word (another coordinator's stale lock).
  const uint64_t stale = 99;
  const rdma::Addr base = group->replica_region_base(1);
  group->replica_server(1).mem().write(base + layout.lock_offset(9), &stale,
                                       8);
  bool result = true;
  GroupLockManager::Config quick;
  quick.max_attempts = 3;
  quick.retry_backoff = sim::usec(10);
  GroupLockManager impatient(*group, layout, cluster.loop(), quick);
  impatient.wr_lock(9, 5, [&](bool ok) { result = ok; });
  run();
  EXPECT_FALSE(result);  // could not acquire
  EXPECT_GT(impatient.stats().partial_undos, 0u);
  // Replicas 0 and 2 must have been rolled back to 0.
  EXPECT_EQ(lock_word(0, 9), 0u);
  EXPECT_EQ(lock_word(2, 9), 0u);
  EXPECT_EQ(lock_word(1, 9), 99u);
}

TEST_F(LockFixture, RdLockIncrementsOneReplicaOnly) {
  bool got = false;
  locks.rd_lock(2, 1, [&](bool ok) { got = ok; });
  run();
  ASSERT_TRUE(got);
  EXPECT_EQ(reader_count(0, 2), 0u);
  EXPECT_EQ(reader_count(1, 2), 1u);
  EXPECT_EQ(reader_count(2, 2), 0u);
  bool rel = false;
  locks.rd_unlock(2, 1, [&] { rel = true; });
  run();
  ASSERT_TRUE(rel);
  EXPECT_EQ(reader_count(1, 2), 0u);
}

TEST_F(LockFixture, MultipleReadersCoexist) {
  int granted = 0;
  for (int i = 0; i < 5; ++i) {
    locks.rd_lock(4, 2, [&](bool ok) { granted += ok ? 1 : 0; });
  }
  run();
  EXPECT_EQ(granted, 5);
  EXPECT_EQ(reader_count(2, 4), 5u);
}

TEST_F(LockFixture, ReaderBlocksWriterUntilDrained) {
  bool reader = false, writer = false;
  locks.rd_lock(6, 0, [&](bool ok) { reader = ok; });
  run(sim::msec(5));
  ASSERT_TRUE(reader);

  locks.wr_lock(6, 42, [&](bool ok) { writer = ok; });
  run(sim::msec(5));
  EXPECT_FALSE(writer);  // writer word held, waiting for readers

  locks.rd_unlock(6, 0, [] {});
  run();
  EXPECT_TRUE(writer);
}

TEST_F(LockFixture, WriterBlocksNewReaders) {
  bool writer = false, reader = false;
  locks.wr_lock(8, 7, [&](bool ok) { writer = ok; });
  run(sim::msec(5));
  ASSERT_TRUE(writer);

  locks.rd_lock(8, 1, [&](bool ok) { reader = ok; });
  run(sim::msec(5));
  EXPECT_FALSE(reader);

  locks.wr_unlock(8, 7, [] {});
  run();
  EXPECT_TRUE(reader);
}

TEST_F(LockFixture, IndependentLocksDoNotInterfere) {
  bool a = false, b = false;
  locks.wr_lock(10, 1, [&](bool ok) { a = ok; });
  locks.wr_lock(11, 2, [&](bool ok) { b = ok; });
  run();
  EXPECT_TRUE(a);
  EXPECT_TRUE(b);
}

}  // namespace
}  // namespace hyperloop::core
