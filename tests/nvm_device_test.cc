#include "nvm/nvm_device.h"

#include <gtest/gtest.h>

#include <cstring>

namespace hyperloop::nvm {
namespace {

// Dirty tracking is per 64 B cache line (DirtyBitmap): a 1-byte write
// dirties its whole line, and persisting any byte of a line flushes the
// whole line — the same contract CLWB/gFLUSH give on real hardware.
constexpr uint64_t kLine = DirtyBitmap::kLineBytes;

struct Fixture : ::testing::Test {
  rdma::HostMemory mem{1 << 20};
  NvmDevice nvm{mem, 64 << 10};
};

TEST_F(Fixture, WritesAreDirtyUntilPersisted) {
  const rdma::Addr a = nvm.alloc(64);
  mem.write(a, "data", 4);
  EXPECT_FALSE(nvm.is_durable(a, 4));
  EXPECT_EQ(nvm.dirty_bytes(), kLine);  // one line dirtied
  nvm.persist(a, 4);
  EXPECT_TRUE(nvm.is_durable(a, 4));
  EXPECT_EQ(nvm.dirty_bytes(), 0u);
}

TEST_F(Fixture, CrashLosesUnpersistedWrites) {
  const rdma::Addr a = nvm.alloc(64);
  mem.write(a, "AAAA", 4);
  nvm.persist(a, 4);
  mem.write(a, "BBBB", 4);  // not persisted
  nvm.crash();
  char out[5] = {};
  mem.read(a, out, 4);
  EXPECT_STREQ(out, "AAAA");
  EXPECT_EQ(nvm.crash_count(), 1u);
}

TEST_F(Fixture, CrashKeepsPersistedWrites) {
  const rdma::Addr a = nvm.alloc(64);
  mem.write(a, "keep", 4);
  nvm.persist(a, 4);
  nvm.crash();
  char out[5] = {};
  mem.read(a, out, 4);
  EXPECT_STREQ(out, "keep");
}

TEST_F(Fixture, PartialPersistSplitsFateAcrossLines) {
  // Two cache lines written; only the first is flushed. The flushed line
  // survives the crash, the other reverts.
  const rdma::Addr a = nvm.alloc(2 * kLine);
  mem.write(a, "XXXX", 4);
  mem.write(a + kLine, "YYYY", 4);
  nvm.persist(a, 4);  // only the first line
  nvm.crash();
  char out[9] = {};
  mem.read(a, out, 4);
  mem.read(a + kLine, out + 4, 4);
  EXPECT_EQ(std::memcmp(out, "XXXX", 4), 0);
  EXPECT_NE(std::memcmp(out + 4, "YYYY", 4), 0);  // lost -> old bytes (zeros)
}

TEST_F(Fixture, PersistIsLineGranular) {
  // Flushing one byte of a line flushes the whole line (CLWB semantics):
  // a neighbor within the same line becomes durable with it.
  const rdma::Addr a = nvm.alloc(kLine);
  mem.write(a, "XXXXYYYY", 8);
  nvm.persist(a, 1);
  EXPECT_TRUE(nvm.is_durable(a, 8));
  nvm.crash();
  char out[9] = {};
  mem.read(a, out, 8);
  EXPECT_EQ(std::memcmp(out, "XXXXYYYY", 8), 0);
}

TEST_F(Fixture, PersistAllFlushesEverything) {
  const rdma::Addr a = nvm.alloc(128);
  mem.write(a, "1111", 4);
  mem.write(a + 64, "2222", 4);
  EXPECT_GT(nvm.dirty_bytes(), 0u);
  nvm.persist_all();
  EXPECT_EQ(nvm.dirty_bytes(), 0u);
  nvm.crash();
  char out[5] = {};
  mem.read(a + 64, out, 4);
  EXPECT_STREQ(out, "2222");
}

TEST_F(Fixture, WritesOutsideNvmAreNotTracked) {
  // Allocate from the general arena (after the NVM range).
  const rdma::Addr a = mem.alloc(64);
  ASSERT_FALSE(nvm.contains(a));
  mem.write(a, "dram", 4);
  EXPECT_EQ(nvm.dirty_bytes(), 0u);
  EXPECT_TRUE(nvm.is_durable(a, 4));  // trivially: not NVM
}

TEST_F(Fixture, OverlappingDirtyRangesMerge) {
  const rdma::Addr a = nvm.alloc(256);
  mem.write(a, "aaaaaaaa", 8);
  mem.write(a + 4, "bbbbbbbb", 8);  // same line: no extra dirty footprint
  EXPECT_EQ(nvm.dirty_bytes(), kLine);
  mem.write(a + kLine - 1, "cc", 2);  // straddles into the second line
  EXPECT_EQ(nvm.dirty_bytes(), 2 * kLine);
}

TEST_F(Fixture, CrashIsIdempotentWhenClean) {
  const rdma::Addr a = nvm.alloc(64);
  mem.write(a, "solid", 5);
  nvm.persist_all();
  nvm.crash();
  nvm.crash();
  char out[6] = {};
  mem.read(a, out, 5);
  EXPECT_STREQ(out, "solid");
}

TEST_F(Fixture, CrashLeavesNothingDirty) {
  // The restore path must bypass write observation: reverting dirty lines
  // from the durable image must not re-mark them dirty.
  const rdma::Addr a = nvm.alloc(4096);
  for (int i = 0; i < 8; ++i) mem.write(a + 512 * i, "junk", 4);
  EXPECT_GT(nvm.dirty_bytes(), 0u);
  nvm.crash();
  EXPECT_EQ(nvm.dirty_bytes(), 0u);
  EXPECT_TRUE(nvm.is_durable(a, 4096));
}

TEST_F(Fixture, AllocStaysInRange) {
  for (int i = 0; i < 100; ++i) {
    const rdma::Addr a = nvm.alloc(256);
    EXPECT_TRUE(nvm.contains(a));
    EXPECT_TRUE(nvm.contains(a + 255));
  }
}

TEST_F(Fixture, RewriteAfterCrashWorks) {
  const rdma::Addr a = nvm.alloc(64);
  mem.write(a, "lost", 4);
  nvm.crash();
  mem.write(a, "new!", 4);
  nvm.persist(a, 4);
  nvm.crash();
  char out[5] = {};
  mem.read(a, out, 4);
  EXPECT_STREQ(out, "new!");
}

TEST_F(Fixture, BoundaryLinesTrackIndependently) {
  // First and last line of the device, plus a straddling persist.
  const uint64_t size = nvm.size();
  mem.write(nvm.base(), "head", 4);
  mem.write(nvm.base() + size - 4, "tail", 4);
  EXPECT_EQ(nvm.dirty_bytes(), 2 * kLine);
  nvm.persist(nvm.base() + size - 4, 4);
  EXPECT_EQ(nvm.dirty_bytes(), kLine);
  EXPECT_FALSE(nvm.is_durable(nvm.base(), 4));
  EXPECT_TRUE(nvm.is_durable(nvm.base() + size - kLine, kLine));
  nvm.crash();
  char out[5] = {};
  mem.read(nvm.base() + size - 4, out, 4);
  EXPECT_STREQ(out, "tail");
}

}  // namespace
}  // namespace hyperloop::nvm
