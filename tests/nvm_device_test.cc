#include "nvm/nvm_device.h"

#include <gtest/gtest.h>

#include <cstring>

namespace hyperloop::nvm {
namespace {

struct Fixture : ::testing::Test {
  rdma::HostMemory mem{1 << 20};
  NvmDevice nvm{mem, 64 << 10};
};

TEST_F(Fixture, WritesAreDirtyUntilPersisted) {
  const rdma::Addr a = nvm.alloc(64);
  mem.write(a, "data", 4);
  EXPECT_FALSE(nvm.is_durable(a, 4));
  EXPECT_EQ(nvm.dirty_bytes(), 4u);
  nvm.persist(a, 4);
  EXPECT_TRUE(nvm.is_durable(a, 4));
  EXPECT_EQ(nvm.dirty_bytes(), 0u);
}

TEST_F(Fixture, CrashLosesUnpersistedWrites) {
  const rdma::Addr a = nvm.alloc(64);
  mem.write(a, "AAAA", 4);
  nvm.persist(a, 4);
  mem.write(a, "BBBB", 4);  // not persisted
  nvm.crash();
  char out[5] = {};
  mem.read(a, out, 4);
  EXPECT_STREQ(out, "AAAA");
  EXPECT_EQ(nvm.crash_count(), 1u);
}

TEST_F(Fixture, CrashKeepsPersistedWrites) {
  const rdma::Addr a = nvm.alloc(64);
  mem.write(a, "keep", 4);
  nvm.persist(a, 4);
  nvm.crash();
  char out[5] = {};
  mem.read(a, out, 4);
  EXPECT_STREQ(out, "keep");
}

TEST_F(Fixture, PartialPersistSplitsFate) {
  const rdma::Addr a = nvm.alloc(64);
  mem.write(a, "XXXXYYYY", 8);
  nvm.persist(a, 4);  // only the first half
  nvm.crash();
  char out[9] = {};
  mem.read(a, out, 8);
  EXPECT_EQ(std::memcmp(out, "XXXX", 4), 0);
  EXPECT_NE(std::memcmp(out + 4, "YYYY", 4), 0);  // lost -> old bytes (zeros)
}

TEST_F(Fixture, PersistAllFlushesEverything) {
  const rdma::Addr a = nvm.alloc(128);
  mem.write(a, "1111", 4);
  mem.write(a + 64, "2222", 4);
  EXPECT_GT(nvm.dirty_bytes(), 0u);
  nvm.persist_all();
  EXPECT_EQ(nvm.dirty_bytes(), 0u);
  nvm.crash();
  char out[5] = {};
  mem.read(a + 64, out, 4);
  EXPECT_STREQ(out, "2222");
}

TEST_F(Fixture, WritesOutsideNvmAreNotTracked) {
  // Allocate from the general arena (after the NVM range).
  const rdma::Addr a = mem.alloc(64);
  ASSERT_FALSE(nvm.contains(a));
  mem.write(a, "dram", 4);
  EXPECT_EQ(nvm.dirty_bytes(), 0u);
  EXPECT_TRUE(nvm.is_durable(a, 4));  // trivially: not NVM
}

TEST_F(Fixture, OverlappingDirtyRangesMerge) {
  const rdma::Addr a = nvm.alloc(256);
  mem.write(a, "aaaaaaaa", 8);
  mem.write(a + 4, "bbbbbbbb", 8);
  EXPECT_EQ(nvm.dirty_bytes(), 12u);
}

TEST_F(Fixture, CrashIsIdempotentWhenClean) {
  const rdma::Addr a = nvm.alloc(64);
  mem.write(a, "solid", 5);
  nvm.persist_all();
  nvm.crash();
  nvm.crash();
  char out[6] = {};
  mem.read(a, out, 5);
  EXPECT_STREQ(out, "solid");
}

TEST_F(Fixture, AllocStaysInRange) {
  for (int i = 0; i < 100; ++i) {
    const rdma::Addr a = nvm.alloc(256);
    EXPECT_TRUE(nvm.contains(a));
    EXPECT_TRUE(nvm.contains(a + 255));
  }
}

TEST_F(Fixture, RewriteAfterCrashWorks) {
  const rdma::Addr a = nvm.alloc(64);
  mem.write(a, "lost", 4);
  nvm.crash();
  mem.write(a, "new!", 4);
  nvm.persist(a, 4);
  nvm.crash();
  char out[5] = {};
  mem.read(a, out, 4);
  EXPECT_STREQ(out, "new!");
}

}  // namespace
}  // namespace hyperloop::nvm
