// End-to-end content-integrity tests for the zero-copy large-payload
// datapath. Large gWRITEs travel as borrowed (arena-aliased) PayloadBuf
// slices; these tests drive the paths where aliasing could go wrong —
// retransmit replay over a lossy fabric while the source region is being
// overwritten, and crash/restore of the replica NVM — and verify the
// replicated bytes are exact against a shadow model.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/hyperloop_group.h"
#include "core/server.h"
#include "nvm/nvm_device.h"
#include "sim/rng.h"

namespace hyperloop::core {
namespace {

/// Deterministic byte filler (xorshift stream seeded per call).
void fill_bytes(std::vector<uint8_t>& v, uint64_t seed) {
  uint64_t x = seed | 1;
  for (auto& b : v) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    b = static_cast<uint8_t>(x);
  }
}

class PayloadIntegrityTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  static constexpr uint64_t kRegion = 1 << 20;

  void build(double loss) {
    Cluster::Config cc;
    cc.num_servers = 4;
    cc.seed = GetParam();
    cc.network.loss_probability = loss;
    cluster_ = std::make_unique<Cluster>(cc);
    HyperLoopGroup::Config gc;
    gc.region_size = kRegion;
    gc.ring_slots = 128;
    gc.max_inflight = 16;
    std::vector<Server*> reps = {&cluster_->server(0), &cluster_->server(1),
                                 &cluster_->server(2)};
    group_ = std::make_unique<HyperLoopGroup>(cluster_->server(3), reps, gc);
    rng_ = std::make_unique<sim::Rng>(GetParam() * 6364136223846793005ull + 1);
  }

  void quiesce(sim::Duration d) {
    cluster_->loop().run_until(cluster_->loop().now() + d);
  }

  /// Each replica's whole region must equal `expect`, byte for byte.
  void expect_replicas_equal(const std::vector<uint8_t>& expect,
                             const char* what) {
    for (size_t r = 0; r < 3; ++r) {
      std::vector<uint8_t> got(kRegion);
      group_->replica_load(r, 0, got.data(),
                           static_cast<uint32_t>(got.size()));
      ASSERT_EQ(got, expect) << what << ": replica " << r << " diverged";
    }
  }

  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<HyperLoopGroup> group_;
  std::unique_ptr<sim::Rng> rng_;
};

TEST_P(PayloadIntegrityTest, LossyChainLargePayloadsAreByteExact) {
  // Random 4KB..96KB writes into 8 overlapping 64KB-strided slots over a
  // 3% lossy fabric. Each client_store overwrites source bytes that
  // earlier in-flight ops' borrowed slices still alias, so every
  // retransmit replay exercises copy-on-write materialization: a stale
  // or torn replay would leave a replica differing from the shadow.
  build(/*loss=*/0.03);
  sim::Rng& rng = *rng_;

  const int n = 36;
  int done = 0;
  for (int k = 0; k < n; ++k) {
    const uint64_t off = rng.next_below(8) * (64 << 10);
    const uint32_t len =
        static_cast<uint32_t>(4096 + rng.next_below(92 << 10)) & ~63u;
    const bool flush = rng.chance(0.5);
    std::vector<uint8_t> data(len);
    fill_bytes(data, rng.next_u64());
    group_->client_store(off, data.data(), len);
    group_->gwrite(off, len, flush, [&] { ++done; });
    // Occasionally let the chain drain partway so issues interleave with
    // acks, retransmission timers, and replica-side forwarding.
    if (rng.chance(0.3)) quiesce(sim::usec(rng.next_below(50)));
  }
  quiesce(sim::seconds(10));
  ASSERT_EQ(done, n);
  EXPECT_GT(cluster_->net().packets_dropped(), 0u) << "loss never happened";
  uint64_t retransmits = 0;
  for (size_t s = 0; s < 4; ++s) {
    retransmits += cluster_->server(s).nic().counters().retransmits;
  }
  EXPECT_GT(retransmits, 0u) << "replay path never exercised";

  // Final replica bytes must equal the client region: each byte's last
  // covering gWRITE read the client region at execution time, so any
  // divergence means a replay delivered stale or torn bytes.
  std::vector<uint8_t> expect(kRegion);
  group_->client_load(0, expect.data(), static_cast<uint32_t>(expect.size()));
  expect_replicas_equal(expect, "lossy large-payload stream");
}

TEST_P(PayloadIntegrityTest, CrashRevertsToDurableImageWithoutTearing) {
  // flush=true ops define the durable image; flush=false ops are visible
  // in replica live memory but must vanish wholesale on crash — a torn
  // revert (part old, part new within one op's range) would show up as a
  // mismatch against the byte-exact shadow snapshots.
  build(/*loss=*/0.0);
  sim::Rng& rng = *rng_;

  // Phase 1: flushed writes establish the durable image.
  int done = 0;
  std::vector<uint8_t> durable(kRegion, 0);
  for (int k = 0; k < 12; ++k) {
    const uint64_t off = rng.next_below(10) * (48 << 10);
    const uint32_t len =
        static_cast<uint32_t>(8192 + rng.next_below(72 << 10)) & ~63u;
    std::vector<uint8_t> data(len);
    fill_bytes(data, rng.next_u64());
    group_->client_store(off, data.data(), len);
    std::memcpy(durable.data() + off, data.data(), len);
    group_->gwrite(off, len, /*flush=*/true, [&] { ++done; });
  }
  quiesce(sim::seconds(2));
  ASSERT_EQ(done, 12);

  // Phase 2: unflushed overwrites of the same slots. They must land in
  // live replica memory (acked), but nothing persists them.
  std::vector<uint8_t> live = durable;
  for (int k = 0; k < 10; ++k) {
    const uint64_t off = rng.next_below(10) * (48 << 10);
    const uint32_t len =
        static_cast<uint32_t>(8192 + rng.next_below(72 << 10)) & ~63u;
    std::vector<uint8_t> data(len);
    fill_bytes(data, rng.next_u64());
    group_->client_store(off, data.data(), len);
    std::memcpy(live.data() + off, data.data(), len);
    group_->gwrite(off, len, /*flush=*/false, [&] { ++done; });
  }
  quiesce(sim::seconds(2));
  ASSERT_EQ(done, 22);
  expect_replicas_equal(live, "pre-crash live image");

  // Crash every replica: live memory reverts to the durable image —
  // all-or-nothing per byte range, no mixing of phase-2 bytes.
  for (size_t r = 0; r < 3; ++r) group_->replica_server(r).nvm().crash();
  expect_replicas_equal(durable, "post-crash durable image");

  // Phase 3: the group keeps working after the crash — new flushed
  // writes replicate and persist on top of the reverted image.
  for (int k = 0; k < 6; ++k) {
    const uint64_t off = rng.next_below(10) * (48 << 10);
    const uint32_t len =
        static_cast<uint32_t>(8192 + rng.next_below(72 << 10)) & ~63u;
    std::vector<uint8_t> data(len);
    fill_bytes(data, rng.next_u64());
    group_->client_store(off, data.data(), len);
    std::memcpy(durable.data() + off, data.data(), len);
    group_->gwrite(off, len, /*flush=*/true, [&] { ++done; });
  }
  quiesce(sim::seconds(2));
  ASSERT_EQ(done, 28);
  for (size_t r = 0; r < 3; ++r) group_->replica_server(r).nvm().crash();
  expect_replicas_equal(durable, "post-recovery durable image");
}

INSTANTIATE_TEST_SUITE_P(Seeds, PayloadIntegrityTest,
                         ::testing::Values(11, 29, 47));

}  // namespace
}  // namespace hyperloop::core
