#include "core/chain_manager.h"

#include <gtest/gtest.h>

#include <string>

#include "core/hyperloop_group.h"
#include "core/remote_reader.h"
#include "core/server.h"

namespace hyperloop::core {
namespace {

struct ChainFixture : ::testing::Test {
  Cluster cluster{[] {
    Cluster::Config c;
    c.num_servers = 4;
    c.server.cpu.num_cores = 8;
    return c;
  }()};
  HyperLoopGroup::Config gcfg = [] {
    HyperLoopGroup::Config c;
    c.region_size = 256 << 10;
    c.ring_slots = 64;
    c.max_inflight = 16;
    return c;
  }();
  std::unique_ptr<HyperLoopGroup> group = [this] {
    std::vector<Server*> reps = {&cluster.server(0), &cluster.server(1),
                                 &cluster.server(2)};
    return std::make_unique<HyperLoopGroup>(cluster.server(3), reps, gcfg);
  }();

  std::unique_ptr<ChainManager> make_mgr(ChainManager::Config cfg = {}) {
    std::vector<ChainManager::ReplicaInfo> infos;
    for (size_t i = 0; i < 3; ++i) {
      infos.push_back(ChainManager::ReplicaInfo{
          &group->replica_server(i), group->replica_region_base(i)});
    }
    return std::make_unique<ChainManager>(cluster.server(3), infos,
                                          gcfg.region_size, cfg);
  }

  void run(sim::Duration d) {
    cluster.loop().run_until(cluster.loop().now() + d);
  }
};

TEST_F(ChainFixture, HealthyChainStaysUp) {
  auto mgr = make_mgr();
  mgr->start();
  run(sim::msec(50));
  EXPECT_EQ(mgr->failures_detected(), 0u);
  EXPECT_FALSE(mgr->writes_paused());
  for (size_t i = 0; i < 3; ++i) EXPECT_TRUE(mgr->replica_alive(i));
}

TEST_F(ChainFixture, DetectsFailureWithinThreshold) {
  auto mgr = make_mgr();
  size_t failed = 999;
  mgr->set_on_failure([&](size_t i) { failed = i; });
  mgr->start();
  run(sim::msec(10));
  mgr->kill_replica(1);
  run(sim::msec(20));  // > 3 * 1ms heartbeats
  EXPECT_EQ(mgr->failures_detected(), 1u);
  EXPECT_EQ(failed, 1u);
  EXPECT_TRUE(mgr->writes_paused());
}

TEST_F(ChainFixture, RecoveryCopiesStateAndResumes) {
  // Replicate some durable data first.
  const std::string data = "pre-failure-state";
  group->client_store(1024, data.data(), data.size());
  bool wrote = false;
  group->gwrite(1024, data.size(), true, [&] { wrote = true; });
  run(sim::msec(10));
  ASSERT_TRUE(wrote);

  auto mgr = make_mgr();
  size_t recovered = 999;
  mgr->set_on_recovered([&](size_t i) { recovered = i; });
  mgr->start();
  run(sim::msec(5));

  mgr->kill_replica(0);
  // Scribble over the dead replica's region to prove catch-up rewrites it.
  group->replica_server(0).mem().fill(group->replica_region_base(0) + 1024,
                                      0xFF, data.size());
  run(sim::msec(20));
  ASSERT_TRUE(mgr->writes_paused());

  mgr->revive_replica(0);
  run(sim::msec(50));
  EXPECT_EQ(recovered, 0u);
  EXPECT_FALSE(mgr->writes_paused());
  EXPECT_EQ(mgr->epoch(), 2u);
  EXPECT_EQ(mgr->recoveries(), 1u);

  std::string out(data.size(), '\0');
  group->replica_load(0, 1024, out.data(), out.size());
  EXPECT_EQ(out, data);
  // Recovered state is durable (catch-up persists it).
  group->replica_server(0).nvm().crash();
  group->replica_load(0, 1024, out.data(), out.size());
  EXPECT_EQ(out, data);
}

TEST_F(ChainFixture, UnflushedDataLostOnKillButLogRecovers) {
  const std::string data = "volatile-at-kill";
  group->client_store(64, data.data(), data.size());
  bool wrote = false;
  group->gwrite(64, data.size(), /*flush=*/false, [&] { wrote = true; });
  run(sim::msec(10));
  ASSERT_TRUE(wrote);

  auto mgr = make_mgr();
  mgr->start();
  mgr->kill_replica(2);  // crash drops the un-flushed write
  std::string out(data.size(), '\0');
  group->replica_load(2, 64, out.data(), out.size());
  EXPECT_NE(out, data);

  // Catch-up from a healthy replica (which also lacked durability... but
  // replica 1 holds the data in *live* memory, and catch-up copies live
  // state then persists it).
  mgr->revive_replica(2);
  run(sim::msec(50));
  group->replica_load(2, 64, out.data(), out.size());
  EXPECT_EQ(out, data);
}

TEST_F(ChainFixture, MultipleSequentialFailures) {
  auto mgr = make_mgr();
  mgr->start();
  run(sim::msec(5));
  for (size_t i = 0; i < 3; ++i) {
    mgr->kill_replica(i);
    run(sim::msec(20));
    mgr->revive_replica(i);
    run(sim::msec(50));
    EXPECT_TRUE(mgr->replica_alive(i));
    EXPECT_FALSE(mgr->writes_paused()) << "after recovery " << i;
  }
  EXPECT_EQ(mgr->failures_detected(), 3u);
  EXPECT_EQ(mgr->recoveries(), 3u);
  EXPECT_EQ(mgr->epoch(), 4u);
}

TEST(RemoteReaderTest, ReadsFromReplica) {
  Cluster::Config cc;
  cc.num_servers = 4;
  Cluster cluster(cc);
  HyperLoopGroup::Config gc;
  gc.region_size = 256 << 10;
  gc.ring_slots = 64;
  gc.max_inflight = 16;
  std::vector<Server*> reps = {&cluster.server(0), &cluster.server(1),
                               &cluster.server(2)};
  HyperLoopGroup group(cluster.server(3), reps, gc);

  const std::string data = "read-me-one-sided";
  group.client_store(2048, data.data(), data.size());
  bool wrote = false;
  group.gwrite(2048, data.size(), false, [&] { wrote = true; });
  cluster.loop().run_until(sim::msec(10));
  ASSERT_TRUE(wrote);

  // Tail reader (replica 2).
  RemoteReader reader(cluster.server(3), group.replica_server(2),
                      group.replica_region_base(2), group.replica_data_rkey(2));
  std::string got;
  reader.read(2048, data.size(), [&](ReadView bytes) {
    got.assign(bytes.begin(), bytes.end());
  });
  cluster.loop().run_until(cluster.loop().now() + sim::msec(10));
  EXPECT_EQ(got, data);
}

TEST(RemoteReaderTest, ManyConcurrentReadsExerciseSlotRing) {
  Cluster::Config cc;
  cc.num_servers = 2;
  Cluster cluster(cc);
  HyperLoopGroup::Config gc;
  gc.region_size = 256 << 10;
  gc.ring_slots = 64;
  gc.max_inflight = 16;
  HyperLoopGroup group(cluster.server(1), {&cluster.server(0)}, gc);

  for (int k = 0; k < 100; ++k) {
    uint64_t v = static_cast<uint64_t>(k) * 11;
    group.client_store(static_cast<uint64_t>(k) * 64, &v, 8);
  }
  int wrote = 0;
  for (int k = 0; k < 100; ++k) {
    group.gwrite(static_cast<uint64_t>(k) * 64, 8, false, [&] { ++wrote; });
  }
  cluster.loop().run_until(sim::msec(50));
  ASSERT_EQ(wrote, 100);

  RemoteReader reader(cluster.server(1), group.replica_server(0),
                      group.replica_region_base(0), group.replica_data_rkey(0),
                      /*slots=*/8);
  int ok = 0;
  for (int k = 0; k < 100; ++k) {
    reader.read(static_cast<uint64_t>(k) * 64, 8, [&, k](ReadView bytes) {
      uint64_t v = 0;
      std::memcpy(&v, bytes.data(), 8);
      EXPECT_EQ(v, static_cast<uint64_t>(k) * 11);
      ++ok;
    });
  }
  cluster.loop().run_until(cluster.loop().now() + sim::msec(50));
  EXPECT_EQ(ok, 100);
}

}  // namespace
}  // namespace hyperloop::core
