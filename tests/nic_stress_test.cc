// Verbs-level randomized stress: many QPs between several NICs, random
// mixes of WRITE/SEND/READ/CAS traffic. Invariants: every signaled WR
// completes exactly once and successfully, data lands where it should,
// and the fabric neither loses nor duplicates packets.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <map>
#include <set>
#include <vector>

#include "nvm/nvm_device.h"
#include "rdma/network.h"
#include "rdma/nic.h"
#include "sim/event_loop.h"
#include "sim/rng.h"

namespace hyperloop::rdma {
namespace {

class NicStressTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NicStressTest, RandomTrafficCompletesExactlyOnce) {
  sim::EventLoop loop;
  Network net(loop, Network::Config{});
  constexpr int kNodes = 4;
  constexpr int kQpsPerPair = 2;

  struct Node {
    std::unique_ptr<HostMemory> mem;
    std::unique_ptr<nvm::NvmDevice> nvm;
    std::unique_ptr<Nic> nic;
    Addr region = 0;
    MemoryRegion mr{};
    CompletionQueue* send_cq = nullptr;
    CompletionQueue* recv_cq = nullptr;
  };
  std::vector<Node> nodes(kNodes);
  for (auto& n : nodes) {
    n.mem = std::make_unique<HostMemory>(4 << 20);
    n.nvm = std::make_unique<nvm::NvmDevice>(*n.mem, 1 << 20);
    n.nic = std::make_unique<Nic>(loop, net, *n.mem, n.nvm.get());
    n.region = n.nvm->alloc(512 << 10);
    n.mr = n.nic->register_mr(
        n.region, 512 << 10,
        kRemoteRead | kRemoteWrite | kRemoteAtomic | kLocalWrite);
    n.send_cq = n.nic->create_cq(1 << 16);
    n.recv_cq = n.nic->create_cq(1 << 16);
  }

  // Full mesh of QPs.
  std::vector<std::vector<QueuePair*>> qp_to(kNodes);
  for (int a = 0; a < kNodes; ++a) qp_to[a].resize(kNodes * kQpsPerPair);
  for (int a = 0; a < kNodes; ++a) {
    for (int b = 0; b < kNodes; ++b) {
      if (a == b) continue;
      for (int q = 0; q < kQpsPerPair; ++q) {
        QueuePair* qa = nodes[a].nic->create_qp(nodes[a].send_cq,
                                                nodes[a].recv_cq, 4096);
        qp_to[a][static_cast<size_t>(b * kQpsPerPair + q)] = qa;
      }
    }
  }
  for (int a = 0; a < kNodes; ++a) {
    for (int b = 0; b < kNodes; ++b) {
      if (a == b) continue;
      for (int q = 0; q < kQpsPerPair; ++q) {
        QueuePair* qa = qp_to[a][static_cast<size_t>(b * kQpsPerPair + q)];
        QueuePair* qb = qp_to[b][static_cast<size_t>(a * kQpsPerPair + q)];
        nodes[a].nic->connect(qa, nodes[b].nic->id(), qb->qpn);
      }
    }
  }

  sim::Rng rng(GetParam());
  constexpr int kOps = 2000;
  uint64_t next_wr_id = 1;
  std::map<uint64_t, int> expected;  // wr_id -> issuing node

  for (int i = 0; i < kOps; ++i) {
    const int a = static_cast<int>(rng.next_below(kNodes));
    int b = static_cast<int>(rng.next_below(kNodes));
    if (b == a) b = (b + 1) % kNodes;
    const int qidx = static_cast<int>(rng.next_below(kQpsPerPair));
    QueuePair* qp = qp_to[a][static_cast<size_t>(b * kQpsPerPair + qidx)];
    const uint64_t wr_id = next_wr_id++;
    const uint64_t local_off = rng.next_below(4000) * 64;
    const uint64_t remote_off = rng.next_below(4000) * 64;
    const auto len = static_cast<uint32_t>(8 + rng.next_below(56));
    const double p = rng.next_double();
    if (p < 0.4) {
      nodes[a].nic->post_send(
          qp, make_write(nodes[a].region + local_off, 0,
                         nodes[b].region + remote_off, nodes[b].mr.rkey, len,
                         wr_id));
    } else if (p < 0.6) {
      RecvWqe r;
      r.sges = {Sge{nodes[b].region + remote_off, 64, nodes[b].mr.lkey}};
      nodes[b].nic->post_recv(
          qp_to[b][static_cast<size_t>(a * kQpsPerPair + qidx)],
          std::move(r));
      nodes[a].nic->post_send(
          qp, make_send(nodes[a].region + local_off, 0, len, wr_id));
    } else if (p < 0.8) {
      nodes[a].nic->post_send(
          qp, make_read(nodes[a].region + local_off, 0,
                        nodes[b].region + remote_off, nodes[b].mr.rkey, len,
                        wr_id));
    } else {
      nodes[a].nic->post_send(
          qp, make_cas(nodes[a].region + local_off, 0,
                       nodes[b].region + (remote_off & ~7ull),
                       nodes[b].mr.rkey, rng.next_u64(), rng.next_u64(),
                       wr_id));
    }
    expected.emplace(wr_id, a);
    if (rng.chance(0.1)) loop.run_until(loop.now() + sim::usec(5));
  }
  loop.run();

  // Drain every node's send CQ; each wr_id completes exactly once, with
  // success.
  std::map<uint64_t, int> seen;
  for (auto& n : nodes) {
    Cqe c;
    while (n.send_cq->poll(&c)) {
      if (c.wr_id == 0) continue;
      EXPECT_EQ(c.status, CqStatus::kSuccess) << "wr " << c.wr_id;
      EXPECT_EQ(seen.count(c.wr_id), 0u) << "duplicate completion";
      seen[c.wr_id] = 1;
    }
  }
  EXPECT_EQ(seen.size(), expected.size());
  uint64_t total_rnr = 0;
  for (auto& n : nodes) total_rnr += n.nic->counters().rnr_stalls;
  EXPECT_EQ(total_rnr, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NicStressTest, ::testing::Values(11, 22, 33));

// Slot-table churn under load: 10k QPs created and destroyed in waves
// while steady WRITE traffic flows on two long-lived QPs, with the
// connection-context cache model active (so every churned QPN also
// cycles through the clock-replacement slots). Invariants: the
// long-lived traffic is unaffected
// (every WR completes exactly once, in-order data), destroyed QPNs
// resolve to nullptr forever, and slots really are recycled rather than
// growing the table without bound.
TEST(NicChurnTest, TenThousandQpChurnWhileTrafficFlows) {
  sim::EventLoop loop;
  Network net(loop, Network::Config{});
  HostMemory mem_a(1 << 20), mem_b(32 << 20);
  Nic::Config cfg;
  cfg.qp_cache_entries = 32;  // exercise the context-cache model too
  Nic a(loop, net, mem_a, nullptr, cfg), b(loop, net, mem_b, nullptr, cfg);

  CompletionQueue* cq_a = a.create_cq(1 << 14);
  QueuePair* qa = a.create_qp(cq_a, nullptr, 4096);
  QueuePair* qb = b.create_qp(nullptr, nullptr, 64);
  a.connect(qa, b.id(), qb->qpn);
  b.connect(qb, a.id(), qa->qpn);
  const Addr src = mem_a.alloc(64 << 10);
  const Addr dst = mem_b.alloc(64 << 10);
  MemoryRegion mr = b.register_mr(dst, 64 << 10, kRemoteWrite);

  constexpr int kChurn = 10000;
  constexpr int kBatch = 16;
  std::vector<QueuePair*> batch;
  std::set<uint32_t> slots_seen;
  std::vector<uint32_t> dead_qpns;
  uint64_t writes_posted = 0;
  sim::Rng rng(7);

  for (int i = 0; i < kChurn; ++i) {
    // Churned QPs are created on the responder NIC (where traffic lands),
    // with tiny rings so 10k send queues fit the host arena.
    QueuePair* q = b.create_qp(nullptr, nullptr, 8);
    slots_seen.insert(q->qpn & 0xFFFFFu);
    batch.push_back(q);
    if (batch.size() == kBatch) {
      for (QueuePair* dq : batch) {
        dead_qpns.push_back(dq->qpn);
        b.destroy_qp(dq);
      }
      batch.clear();
      // Keep traffic flowing between waves.
      const uint64_t off = rng.next_below(1000) * 64;
      a.post_send(qa, make_write(src + off, 0, dst + off, mr.rkey, 64,
                                 ++writes_posted));
      if (i % 64 == 0) loop.run_until(loop.now() + sim::usec(20));
    }
  }
  loop.run();

  // Every posted WR completed exactly once, successfully.
  uint64_t completions = 0;
  Cqe c;
  while (cq_a->poll(&c)) {
    EXPECT_EQ(c.status, CqStatus::kSuccess);
    ++completions;
  }
  EXPECT_EQ(completions, writes_posted);
  EXPECT_GE(writes_posted, uint64_t{kChurn / kBatch});

  // Dead QPNs stay dead (generation tags), even though their slots were
  // recycled hundreds of times each.
  for (size_t i = 0; i < dead_qpns.size(); i += 97) {
    EXPECT_EQ(b.qp(dead_qpns[i]), nullptr);
  }
  // Dense recycling: 10k churned QPs + 1 long-lived one fit in a couple
  // of batches' worth of distinct slots.
  EXPECT_LE(slots_seen.size(), size_t{2 * kBatch + 2});
  EXPECT_GT(b.counters().qp_cache_misses, 0u);
  EXPECT_EQ(b.counters().invalid_qp_drops, 0u);
}

// The connection-context cache's clock replacement (the §7 scalability
// model). Semantics: a resident context hits for free; a working set no
// larger than the cache stays resident; overflow evicts (approximate
// LRU via second chance); destroy_qp releases the slot; touches for
// destroyed QPNs charge the fetch without pinning anything. Cost: each
// touch is O(1) via the per-QP backpointer — the many-QP sweep below
// stays fast regardless of how many QPs the NIC hosts (the old MRU list
// walked all resident entries per touch, turning this sweep quadratic).
TEST(QpContextClockTest, ClockCacheSemantics) {
  sim::EventLoop loop;
  Network net(loop, Network::Config{});
  HostMemory mem(8 << 20);
  Nic::Config cfg;
  cfg.qp_cache_entries = 4;
  Nic n(loop, net, mem, nullptr, cfg);

  QueuePair* q[6];
  for (auto& qp : q) qp = n.create_qp(nullptr, nullptr, 8);

  // Cold: first touch misses and installs; second touch hits.
  EXPECT_EQ(n.qp_context_touch(q[0]->qpn), cfg.qp_cache_miss_cost);
  EXPECT_EQ(n.qp_context_touch(q[0]->qpn), 0);

  // A working set equal to the cache stays fully resident.
  for (int i = 0; i < 4; ++i) n.qp_context_touch(q[i]->qpn);
  const uint64_t misses_warm = n.counters().qp_cache_misses;
  for (int round = 0; round < 8; ++round) {
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(n.qp_context_touch(q[i]->qpn), 0) << "round " << round;
    }
  }
  EXPECT_EQ(n.counters().qp_cache_misses, misses_warm);

  // A fifth context evicts someone (capacity is real).
  EXPECT_EQ(n.qp_context_touch(q[4]->qpn), cfg.qp_cache_miss_cost);
  uint64_t resident = 0;
  for (int i = 0; i < 5; ++i) {
    resident += n.qp_context_touch(q[i]->qpn) == 0 ? 1 : 0;
  }
  EXPECT_LE(resident, 4u);

  // destroy_qp releases its slot: on a fresh NIC (known clock state),
  // filling the cache, destroying one resident, and installing a new
  // context reuses the freed slot — the other residents keep hitting.
  Nic n2(loop, net, mem, nullptr, cfg);
  QueuePair* p[6];
  for (auto& qp : p) qp = n2.create_qp(nullptr, nullptr, 8);
  for (int i = 0; i < 4; ++i) n2.qp_context_touch(p[i]->qpn);
  const uint32_t dead = p[3]->qpn;
  n2.destroy_qp(p[3]);
  EXPECT_EQ(n2.qp_context_touch(p[4]->qpn), cfg.qp_cache_miss_cost);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(n2.qp_context_touch(p[i]->qpn), 0) << "evicted by a freed slot";
  }
  // Touching a destroyed QPN charges the fetch and pins nothing.
  EXPECT_EQ(n2.qp_context_touch(dead), cfg.qp_cache_miss_cost);
  EXPECT_EQ(n2.qp_context_touch(dead), cfg.qp_cache_miss_cost);
  EXPECT_EQ(n2.qp_context_touch(p[4]->qpn), 0);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(n2.qp_context_touch(p[i]->qpn), 0);
}

TEST(QpContextClockTest, ManyQpSweepIsLinearNotQuadratic) {
  sim::EventLoop loop;
  Network net(loop, Network::Config{});
  HostMemory mem(32 << 20);
  Nic::Config cfg;
  cfg.qp_cache_entries = 4096;  // large cache, the old MRU's worst case
  Nic n(loop, net, mem, nullptr, cfg);

  constexpr int kQps = 8192;
  std::vector<QueuePair*> qps;
  qps.reserve(kQps);
  for (int i = 0; i < kQps; ++i) qps.push_back(n.create_qp(nullptr, nullptr, 8));

  // 64 sweeps x 8192 QPs = 512k touches. With the O(1) backpointer this
  // is milliseconds; a reintroduced per-touch scan of 4096 resident
  // entries (~2G probes) would blow the wall-clock budget below by
  // orders of magnitude.
  const auto t0 = std::chrono::steady_clock::now();
  for (int round = 0; round < 64; ++round) {
    for (QueuePair* q : qps) n.qp_context_touch(q->qpn);
  }
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            2000)
      << "qp_context_touch is no longer O(1)";

  // The sweep working set (8192) exceeds the cache (4096): every round
  // must re-fetch (clock keeps none of a strictly-cycling overflow set
  // pinned forever), and the counters see real traffic.
  EXPECT_GT(n.counters().qp_cache_misses, uint64_t{kQps});
  EXPECT_EQ(n.counters().qp_cache_hits + n.counters().qp_cache_misses,
            uint64_t{64} * kQps + 0u);
}

}  // namespace
}  // namespace hyperloop::rdma
