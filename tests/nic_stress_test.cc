// Verbs-level randomized stress: many QPs between several NICs, random
// mixes of WRITE/SEND/READ/CAS traffic. Invariants: every signaled WR
// completes exactly once and successfully, data lands where it should,
// and the fabric neither loses nor duplicates packets.
#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "nvm/nvm_device.h"
#include "rdma/network.h"
#include "rdma/nic.h"
#include "sim/event_loop.h"
#include "sim/rng.h"

namespace hyperloop::rdma {
namespace {

class NicStressTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NicStressTest, RandomTrafficCompletesExactlyOnce) {
  sim::EventLoop loop;
  Network net(loop, Network::Config{});
  constexpr int kNodes = 4;
  constexpr int kQpsPerPair = 2;

  struct Node {
    std::unique_ptr<HostMemory> mem;
    std::unique_ptr<nvm::NvmDevice> nvm;
    std::unique_ptr<Nic> nic;
    Addr region = 0;
    MemoryRegion mr{};
    CompletionQueue* send_cq = nullptr;
    CompletionQueue* recv_cq = nullptr;
  };
  std::vector<Node> nodes(kNodes);
  for (auto& n : nodes) {
    n.mem = std::make_unique<HostMemory>(4 << 20);
    n.nvm = std::make_unique<nvm::NvmDevice>(*n.mem, 1 << 20);
    n.nic = std::make_unique<Nic>(loop, net, *n.mem, n.nvm.get());
    n.region = n.nvm->alloc(512 << 10);
    n.mr = n.nic->register_mr(
        n.region, 512 << 10,
        kRemoteRead | kRemoteWrite | kRemoteAtomic | kLocalWrite);
    n.send_cq = n.nic->create_cq(1 << 16);
    n.recv_cq = n.nic->create_cq(1 << 16);
  }

  // Full mesh of QPs.
  std::vector<std::vector<QueuePair*>> qp_to(kNodes);
  for (int a = 0; a < kNodes; ++a) qp_to[a].resize(kNodes * kQpsPerPair);
  for (int a = 0; a < kNodes; ++a) {
    for (int b = 0; b < kNodes; ++b) {
      if (a == b) continue;
      for (int q = 0; q < kQpsPerPair; ++q) {
        QueuePair* qa = nodes[a].nic->create_qp(nodes[a].send_cq,
                                                nodes[a].recv_cq, 4096);
        qp_to[a][static_cast<size_t>(b * kQpsPerPair + q)] = qa;
      }
    }
  }
  for (int a = 0; a < kNodes; ++a) {
    for (int b = 0; b < kNodes; ++b) {
      if (a == b) continue;
      for (int q = 0; q < kQpsPerPair; ++q) {
        QueuePair* qa = qp_to[a][static_cast<size_t>(b * kQpsPerPair + q)];
        QueuePair* qb = qp_to[b][static_cast<size_t>(a * kQpsPerPair + q)];
        nodes[a].nic->connect(qa, nodes[b].nic->id(), qb->qpn);
      }
    }
  }

  sim::Rng rng(GetParam());
  constexpr int kOps = 2000;
  uint64_t next_wr_id = 1;
  std::map<uint64_t, int> expected;  // wr_id -> issuing node

  for (int i = 0; i < kOps; ++i) {
    const int a = static_cast<int>(rng.next_below(kNodes));
    int b = static_cast<int>(rng.next_below(kNodes));
    if (b == a) b = (b + 1) % kNodes;
    const int qidx = static_cast<int>(rng.next_below(kQpsPerPair));
    QueuePair* qp = qp_to[a][static_cast<size_t>(b * kQpsPerPair + qidx)];
    const uint64_t wr_id = next_wr_id++;
    const uint64_t local_off = rng.next_below(4000) * 64;
    const uint64_t remote_off = rng.next_below(4000) * 64;
    const auto len = static_cast<uint32_t>(8 + rng.next_below(56));
    const double p = rng.next_double();
    if (p < 0.4) {
      nodes[a].nic->post_send(
          qp, make_write(nodes[a].region + local_off, 0,
                         nodes[b].region + remote_off, nodes[b].mr.rkey, len,
                         wr_id));
    } else if (p < 0.6) {
      RecvWqe r;
      r.sges = {Sge{nodes[b].region + remote_off, 64, nodes[b].mr.lkey}};
      nodes[b].nic->post_recv(
          qp_to[b][static_cast<size_t>(a * kQpsPerPair + qidx)],
          std::move(r));
      nodes[a].nic->post_send(
          qp, make_send(nodes[a].region + local_off, 0, len, wr_id));
    } else if (p < 0.8) {
      nodes[a].nic->post_send(
          qp, make_read(nodes[a].region + local_off, 0,
                        nodes[b].region + remote_off, nodes[b].mr.rkey, len,
                        wr_id));
    } else {
      nodes[a].nic->post_send(
          qp, make_cas(nodes[a].region + local_off, 0,
                       nodes[b].region + (remote_off & ~7ull),
                       nodes[b].mr.rkey, rng.next_u64(), rng.next_u64(),
                       wr_id));
    }
    expected.emplace(wr_id, a);
    if (rng.chance(0.1)) loop.run_until(loop.now() + sim::usec(5));
  }
  loop.run();

  // Drain every node's send CQ; each wr_id completes exactly once, with
  // success.
  std::map<uint64_t, int> seen;
  for (auto& n : nodes) {
    Cqe c;
    while (n.send_cq->poll(&c)) {
      if (c.wr_id == 0) continue;
      EXPECT_EQ(c.status, CqStatus::kSuccess) << "wr " << c.wr_id;
      EXPECT_EQ(seen.count(c.wr_id), 0u) << "duplicate completion";
      seen[c.wr_id] = 1;
    }
  }
  EXPECT_EQ(seen.size(), expected.size());
  uint64_t total_rnr = 0;
  for (auto& n : nodes) total_rnr += n.nic->counters().rnr_stalls;
  EXPECT_EQ(total_rnr, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NicStressTest, ::testing::Values(11, 22, 33));

}  // namespace
}  // namespace hyperloop::rdma
