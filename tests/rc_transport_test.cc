// RC transport tests: PSN ordering, go-back-N retransmission, duplicate
// suppression, and end-to-end HyperLoop correctness over a lossy fabric.
#include <gtest/gtest.h>

#include <cstring>

#include "core/hyperloop_group.h"
#include "core/server.h"
#include "nvm/nvm_device.h"
#include "rdma/network.h"
#include "rdma/nic.h"
#include "sim/event_loop.h"

namespace hyperloop::rdma {
namespace {

struct LossyPair : ::testing::Test {
  sim::EventLoop loop;
  Network::Config net_cfg = [] {
    Network::Config c;
    c.loss_probability = 0.05;
    return c;
  }();
  Network net{loop, net_cfg};
  HostMemory mem_a{1 << 20}, mem_b{1 << 20};
  nvm::NvmDevice nvm_a{mem_a, 256 << 10}, nvm_b{mem_b, 256 << 10};
  Nic a{loop, net, mem_a, &nvm_a};
  Nic b{loop, net, mem_b, &nvm_b};
  CompletionQueue* cq_a = a.create_cq(1 << 16);
  CompletionQueue* cq_b = b.create_cq(1 << 16);
  QueuePair* qa = a.create_qp(cq_a, nullptr, 4096);
  QueuePair* qb = b.create_qp(nullptr, cq_b, 4096);

  void connect() {
    a.connect(qa, b.id(), qb->qpn);
    b.connect(qb, a.id(), qa->qpn);
  }
};

TEST_F(LossyPair, WritesAllCompleteAndLandDespiteLoss) {
  connect();
  const Addr dst = nvm_b.alloc(64 << 10);
  const MemoryRegion mr = b.register_mr(dst, 64 << 10, kRemoteWrite);
  const Addr src = mem_a.alloc(64);

  const int n = 500;
  for (int i = 0; i < n; ++i) {
    uint64_t v = static_cast<uint64_t>(i) * 3 + 1;
    mem_a.write(src, &v, 8);
    a.post_send(qa, make_write(src, 0, dst + static_cast<uint64_t>(i) * 64,
                               mr.rkey, 8, static_cast<uint64_t>(i) + 1));
    loop.run();  // drain each op (incl. retransmission timers)
  }
  EXPECT_GT(net.packets_dropped(), 0u);  // loss actually happened
  EXPECT_GT(a.counters().retransmits + b.counters().retransmits, 0u);

  int completions = 0;
  Cqe c;
  while (cq_a->poll(&c)) {
    EXPECT_EQ(c.status, CqStatus::kSuccess);
    ++completions;
  }
  EXPECT_EQ(completions, n);
  for (int i = 0; i < n; ++i) {
    uint64_t v = 0;
    mem_b.read(dst + static_cast<uint64_t>(i) * 64, &v, 8);
    EXPECT_EQ(v, static_cast<uint64_t>(i) * 3 + 1) << i;
  }
}

TEST_F(LossyPair, CasExecutesExactlyOnceUnderLossAndDuplicates) {
  connect();
  const Addr counter = nvm_b.alloc(8);
  const MemoryRegion mr = b.register_mr(counter, 8, kRemoteAtomic);
  const Addr land = mem_a.alloc(8);

  // A chain of CASes 0->1->2->...->n: if a duplicate ever re-executed, a
  // CAS would observe an unexpected value and the chain would break.
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    a.post_send(qa, make_cas(land, 0, counter, mr.rkey,
                             static_cast<uint64_t>(i),
                             static_cast<uint64_t>(i) + 1));
    loop.run();
    uint64_t old = 0;
    mem_a.read(land, &old, 8);
    ASSERT_EQ(old, static_cast<uint64_t>(i)) << "CAS chain broke at " << i;
  }
  uint64_t final_val = 0;
  mem_b.read(counter, &final_val, 8);
  EXPECT_EQ(final_val, static_cast<uint64_t>(n));
  EXPECT_GT(b.counters().duplicates_dropped + a.counters().retransmits, 0u);
}

TEST_F(LossyPair, SendsAreDeliveredExactlyOnceInOrder) {
  connect();
  const Addr buf = mem_b.alloc(64);
  const MemoryRegion mr = b.register_mr(buf, 64, kLocalWrite);
  const Addr src = mem_a.alloc(8);

  const int n = 300;
  int delivered = 0;
  uint64_t expect_tag = 0;
  for (int i = 0; i < n; ++i) {
    RecvWqe r;
    r.wr_id = static_cast<uint64_t>(i);
    r.sges = {Sge{buf, 8, mr.lkey}};
    b.post_recv(qb, std::move(r));
    uint64_t tag = static_cast<uint64_t>(i) + 1000;
    mem_a.write(src, &tag, 8);
    a.post_send(qa, make_send(src, 0, 8));
    loop.run();
    Cqe c;
    while (cq_b->poll(&c)) {
      EXPECT_EQ(c.wr_id, expect_tag) << "out of order / dup";
      ++expect_tag;
      ++delivered;
    }
  }
  EXPECT_EQ(delivered, n);
}

TEST(LossyHyperLoop, GroupOpsSurviveLossyFabric) {
  // End to end: a full HyperLoop chain over a 2% lossy network still
  // completes every op with correct, durable contents.
  core::Cluster::Config cc;
  cc.num_servers = 4;
  cc.network.loss_probability = 0.02;
  core::Cluster cluster(cc);
  core::HyperLoopGroup::Config gc;
  gc.region_size = 1 << 20;
  gc.ring_slots = 128;
  gc.max_inflight = 16;
  std::vector<core::Server*> reps = {&cluster.server(0), &cluster.server(1),
                                     &cluster.server(2)};
  core::HyperLoopGroup group(cluster.server(3), reps, gc);

  int done = 0;
  const int n = 150;
  for (int k = 0; k < n; ++k) {
    uint64_t v = static_cast<uint64_t>(k) * 7 + 3;
    group.client_store(static_cast<uint64_t>(k) * 64, &v, 8);
    group.gwrite(static_cast<uint64_t>(k) * 64, 8, true, [&] { ++done; });
  }
  cluster.loop().run_until(sim::seconds(5));
  ASSERT_EQ(done, n);
  EXPECT_GT(cluster.net().packets_dropped(), 0u);
  for (int k = 0; k < n; k += 11) {
    for (size_t r = 0; r < 3; ++r) {
      uint64_t v = 0;
      group.replica_load(r, static_cast<uint64_t>(k) * 64, &v, 8);
      EXPECT_EQ(v, static_cast<uint64_t>(k) * 7 + 3);
    }
  }
}

TEST(LossyHyperLoop, GcasCorrectUnderLoss) {
  core::Cluster::Config cc;
  cc.num_servers = 4;
  cc.network.loss_probability = 0.02;
  core::Cluster cluster(cc);
  core::HyperLoopGroup::Config gc;
  gc.region_size = 1 << 20;
  gc.ring_slots = 128;
  gc.max_inflight = 16;
  std::vector<core::Server*> reps = {&cluster.server(0), &cluster.server(1),
                                     &cluster.server(2)};
  core::HyperLoopGroup group(cluster.server(3), reps, gc);

  // Lock/unlock chain: each gCAS must execute exactly once everywhere.
  int done = 0;
  std::function<void(uint64_t)> step = [&](uint64_t k) {
    if (k == 60) return;
    const uint64_t expected = k % 2 == 0 ? 0 : 1;
    group.gcas(0, expected, 1 - expected, core::ExecMap::all(3),
               [&, k, expected](const core::CasResult& r) {
                 for (uint64_t v : r) EXPECT_EQ(v, expected) << "at " << k;
                 ++done;
                 step(k + 1);
               });
  };
  step(0);
  cluster.loop().run_until(sim::seconds(5));
  EXPECT_EQ(done, 60);
}

}  // namespace
}  // namespace hyperloop::rdma
