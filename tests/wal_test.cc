#include "core/wal.h"

#include <gtest/gtest.h>

#include <string>

#include "core/hyperloop_group.h"
#include "core/naive_group.h"
#include "core/server.h"

namespace hyperloop::core {
namespace {

enum class Backend { kHyperLoop, kNaive };

// The WAL must behave identically over both group implementations.
class WalTest : public ::testing::TestWithParam<Backend> {
 protected:
  WalTest() {
    Cluster::Config cc;
    cc.num_servers = 4;
    cc.server.cpu.num_cores = 8;
    cluster_ = std::make_unique<Cluster>(cc);
    std::vector<Server*> reps = {&cluster_->server(0), &cluster_->server(1),
                                 &cluster_->server(2)};
    layout_.region_size = 1 << 20;
    layout_.log_size = 64 << 10;
    layout_.num_locks = 16;
    if (GetParam() == Backend::kHyperLoop) {
      HyperLoopGroup::Config gc;
      gc.region_size = layout_.region_size;
      gc.ring_slots = 64;
      gc.max_inflight = 16;
      group_ = std::make_unique<HyperLoopGroup>(cluster_->server(3), reps, gc);
    } else {
      NaiveRdmaGroup::Config gc;
      gc.region_size = layout_.region_size;
      group_ = std::make_unique<NaiveRdmaGroup>(cluster_->server(3), reps, gc);
    }
    wal_ = std::make_unique<ReplicatedWal>(*group_, layout_);
  }

  void run(sim::Duration d = sim::msec(200)) {
    cluster_->loop().run_until(cluster_->loop().now() + d);
  }

  std::vector<uint8_t> bytes(const std::string& s) {
    return std::vector<uint8_t>(s.begin(), s.end());
  }

  std::string db_read(size_t replica, uint64_t db_off, size_t len) {
    std::string out(len, '\0');
    group_->replica_load(replica, layout_.db_base() + db_off, out.data(),
                         static_cast<uint32_t>(len));
    return out;
  }

  RegionLayout layout_;
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<ReplicationGroup> group_;
  std::unique_ptr<ReplicatedWal> wal_;
};

TEST_P(WalTest, AppendCommitsDurably) {
  uint64_t lsn = 0;
  ASSERT_TRUE(wal_->append({{0, bytes("record-one")}},
                           [&](uint64_t l) { lsn = l; }));
  run();
  EXPECT_EQ(lsn, 1u);
  EXPECT_EQ(wal_->stats().records_appended, 1u);
  EXPECT_GT(wal_->used_bytes(), 0u);

  // The record and tail are durable on every replica: crash + inspect.
  for (size_t i = 0; i < 3; ++i) {
    dynamic_cast<HyperLoopGroup*>(group_.get()) != nullptr
        ? static_cast<HyperLoopGroup*>(group_.get())->replica_server(i).nvm().crash()
        : static_cast<NaiveRdmaGroup*>(group_.get())->replica_server(i).nvm().crash();
    uint64_t tail = 0;
    group_->replica_load(i, RegionLayout::kTailOffset, &tail, 8);
    EXPECT_EQ(tail, wal_->tail()) << "replica " << i;
  }
}

TEST_P(WalTest, ExecuteAppliesToDbOnAllReplicas) {
  bool executed = false;
  ASSERT_TRUE(wal_->append({{100, bytes("alpha")}, {300, bytes("beta")}},
                           [&](uint64_t) {
                             wal_->execute_and_advance(
                                 [&] { executed = true; });
                           }));
  run();
  ASSERT_TRUE(executed);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(db_read(i, 100, 5), "alpha") << i;
    EXPECT_EQ(db_read(i, 300, 4), "beta") << i;
  }
  EXPECT_TRUE(wal_->empty());
}

TEST_P(WalTest, ExecuteOnEmptyLogReturnsFalse) {
  EXPECT_FALSE(wal_->execute_and_advance([] {}));
}

TEST_P(WalTest, AppendBackpressureWhenFull) {
  // Fill the log without truncating.
  std::vector<uint8_t> big(4096, 0xEE);
  int appended = 0;
  while (wal_->append({{0, big}}, [](uint64_t) {})) ++appended;
  EXPECT_GT(appended, 5);
  EXPECT_GE(wal_->stats().append_failures, 1u);
  run(sim::msec(500));

  // Truncate one record; an append must succeed again.
  bool ex = false;
  ASSERT_TRUE(wal_->execute_and_advance([&] { ex = true; }));
  run();
  ASSERT_TRUE(ex);
  EXPECT_TRUE(wal_->append({{0, big}}, [](uint64_t) {}));
  run(sim::msec(500));
}

TEST_P(WalTest, GroupCommitBatchesBurstAppends) {
  ReplicatedWal::Options o;
  o.staged_capacity = 32;
  o.loop = &cluster_->loop();
  ReplicatedWal wal(*group_, layout_, o);
  const int n = 17;
  std::vector<uint64_t> lsns;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(wal.append({{static_cast<uint64_t>(i) * 8, bytes("grp")}},
                           [&](uint64_t l) { lsns.push_back(l); }));
  }
  // The first batch is in flight; later appends are parked in the window.
  EXPECT_GT(wal.staged_records(), 0u);
  run();
  ASSERT_EQ(lsns.size(), static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(lsns[i], static_cast<uint64_t>(i) + 1);  // commit in LSN order
  }
  EXPECT_EQ(wal.staged_records(), 0u);
  // Group commit: fewer traversals than records, some batch carried > 1.
  EXPECT_LT(wal.stats().gwritev_batches, static_cast<uint64_t>(n));
  EXPECT_GT(wal.records_per_gwrite().max(), 1);
  EXPECT_EQ(wal.records_per_gwrite().count(), wal.stats().gwritev_batches);
  EXPECT_EQ(wal.commit_latency().count(), static_cast<uint64_t>(n));

  // Every batched record is durably committed on every replica: the
  // replicated tail covers all n records.
  for (size_t i = 0; i < 3; ++i) {
    uint64_t tail = 0;
    group_->replica_load(i, RegionLayout::kTailOffset, &tail, 8);
    EXPECT_EQ(tail, wal.tail()) << "replica " << i;
  }
}

TEST_P(WalTest, GroupCommitWindowBackpressure) {
  ReplicatedWal::Options o;
  o.staged_capacity = 2;
  ReplicatedWal wal(*group_, layout_, o);
  int committed = 0;
  // First append issues its batch immediately; the next two occupy the
  // whole staged window while that batch is in flight.
  ASSERT_TRUE(wal.append({{0, bytes("a")}}, [&](uint64_t) { ++committed; }));
  ASSERT_TRUE(wal.append({{8, bytes("b")}}, [&](uint64_t) { ++committed; }));
  ASSERT_TRUE(wal.append({{16, bytes("c")}}, [&](uint64_t) { ++committed; }));
  EXPECT_EQ(wal.staged_records(), 2u);

  // Window full -> same failure surface as a full log.
  EXPECT_FALSE(wal.append({{24, bytes("d")}}, [](uint64_t) {}));
  EXPECT_GE(wal.stats().append_failures, 1u);

  run();
  EXPECT_EQ(committed, 3);
  EXPECT_EQ(wal.staged_records(), 0u);

  // Batches drained; the window admits appends again.
  bool again = false;
  EXPECT_TRUE(wal.append({{24, bytes("d")}}, [&](uint64_t) { again = true; }));
  run();
  EXPECT_TRUE(again);
}

TEST_P(WalTest, WrapAroundPreservesRecords) {
  // Append/execute enough that the virtual offsets wrap the ring several
  // times; every record must still land correctly.
  std::vector<uint8_t> payload(3000, 0);
  int rounds = 0;
  std::function<void()> step = [&] {
    if (rounds >= 60) return;
    ++rounds;
    for (auto& b : payload) b = static_cast<uint8_t>(rounds);
    ASSERT_TRUE(wal_->append(
        {{static_cast<uint64_t>(rounds % 7) * 4096, payload}},
        [&](uint64_t) {
          wal_->execute_and_advance([&] { step(); });
        }));
  };
  step();
  run(sim::seconds(5));
  EXPECT_EQ(rounds, 60);
  EXPECT_GT(wal_->tail(), layout_.log_size);  // wrapped at least once
  EXPECT_EQ(db_read(2, static_cast<uint64_t>(60 % 7) * 4096, 1)[0],
            static_cast<char>(60));
}

TEST_P(WalTest, ReplayRecoversCommittedRecords) {
  // Append two records, execute none, crash a replica, replay its image.
  ASSERT_TRUE(wal_->append({{0, bytes("first!")}}, [](uint64_t) {}));
  ASSERT_TRUE(wal_->append({{64, bytes("second")}}, [](uint64_t) {}));
  run();

  Server& victim =
      GetParam() == Backend::kHyperLoop
          ? static_cast<HyperLoopGroup*>(group_.get())->replica_server(1)
          : static_cast<NaiveRdmaGroup*>(group_.get())->replica_server(1);
  victim.nvm().crash();

  // DB area is empty (nothing executed), but the log is durable; replay.
  const rdma::Addr base =
      GetParam() == Backend::kHyperLoop
          ? static_cast<HyperLoopGroup*>(group_.get())->replica_region_base(1)
          : static_cast<NaiveRdmaGroup*>(group_.get())->replica_region_base(1);
  const uint64_t applied = ReplicatedWal::replay(
      layout_,
      [&](uint64_t off, void* dst, uint32_t len) {
        victim.mem().read(base + off, dst, len);
      },
      [&](uint64_t off, const void* src, uint32_t len) {
        victim.mem().write(base + off, src, len);
      });
  EXPECT_EQ(applied, 2u);
  EXPECT_EQ(db_read(1, 0, 6), "first!");
  EXPECT_EQ(db_read(1, 64, 6), "second");
}

TEST_P(WalTest, ReplayIsIdempotent) {
  ASSERT_TRUE(wal_->append({{8, bytes("idem")}}, [](uint64_t) {}));
  run();
  const rdma::Addr base =
      GetParam() == Backend::kHyperLoop
          ? static_cast<HyperLoopGroup*>(group_.get())->replica_region_base(0)
          : static_cast<NaiveRdmaGroup*>(group_.get())->replica_region_base(0);
  Server& r =
      GetParam() == Backend::kHyperLoop
          ? static_cast<HyperLoopGroup*>(group_.get())->replica_server(0)
          : static_cast<NaiveRdmaGroup*>(group_.get())->replica_server(0);
  auto load = [&](uint64_t off, void* dst, uint32_t len) {
    r.mem().read(base + off, dst, len);
  };
  auto store = [&](uint64_t off, const void* src, uint32_t len) {
    r.mem().write(base + off, src, len);
  };
  EXPECT_EQ(ReplicatedWal::replay(layout_, load, store), 1u);
  EXPECT_EQ(ReplicatedWal::replay(layout_, load, store), 1u);  // same result
  EXPECT_EQ(db_read(0, 8, 4), "idem");
}

TEST_P(WalTest, UncommittedTailIsNotReplayed) {
  // Simulate a torn append: record bytes written locally but tail pointer
  // never replicated (client "crashes" before the tail gwrite lands).
  ASSERT_TRUE(wal_->append({{0, bytes("committed")}}, [](uint64_t) {}));
  run();

  // Hand-craft garbage after the tail on replica 0's image.
  const rdma::Addr base =
      GetParam() == Backend::kHyperLoop
          ? static_cast<HyperLoopGroup*>(group_.get())->replica_region_base(0)
          : static_cast<NaiveRdmaGroup*>(group_.get())->replica_region_base(0);
  Server& r =
      GetParam() == Backend::kHyperLoop
          ? static_cast<HyperLoopGroup*>(group_.get())->replica_server(0)
          : static_cast<NaiveRdmaGroup*>(group_.get())->replica_server(0);
  const char junk[] = "torn-record-gibberish";
  r.mem().write(base + layout_.log_base() + (wal_->tail() % layout_.log_size),
                junk, sizeof(junk));

  const uint64_t applied = ReplicatedWal::replay(
      layout_,
      [&](uint64_t off, void* dst, uint32_t len) {
        r.mem().read(base + off, dst, len);
      },
      [&](uint64_t off, const void* src, uint32_t len) {
        r.mem().write(base + off, src, len);
      });
  EXPECT_EQ(applied, 1u);  // only the committed record
}

INSTANTIATE_TEST_SUITE_P(Backends, WalTest,
                         ::testing::Values(Backend::kHyperLoop,
                                           Backend::kNaive),
                         [](const auto& info) {
                           return info.param == Backend::kHyperLoop
                                      ? "HyperLoop"
                                      : "NaiveRdma";
                         });

}  // namespace
}  // namespace hyperloop::core
