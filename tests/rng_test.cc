#include "sim/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace hyperloop::sim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Rng r(7);
  for (uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng r(9);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 10000; ++i) ++seen[r.next_below(10)];
  for (int c : seen) EXPECT_GT(c, 700);  // roughly uniform
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng r(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = r.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, MeanOfUniformIsCentered) {
  Rng r(13);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, ForkedStreamsAreIndependentAndDeterministic) {
  Rng parent1(5), parent2(5);
  Rng c1 = parent1.fork();
  Rng c2 = parent2.fork();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(c1.next_u64(), c2.next_u64());
  // Forked stream differs from parent's continued stream.
  Rng p(5);
  Rng child = p.fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (child.next_u64() == p.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, ChanceProbability) {
  Rng r(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.chance(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

}  // namespace
}  // namespace hyperloop::sim
