// Tests for the two HyperLoop enabling mechanisms at the raw verbs level:
// CORE-Direct WAIT (event-triggered queues) and deferred-ownership WQEs
// patched by inbound RECV scatters (remote work-request manipulation).
#include <gtest/gtest.h>

#include <cstring>

#include "nvm/nvm_device.h"
#include "rdma/network.h"
#include "rdma/nic.h"
#include "sim/event_loop.h"

namespace hyperloop::rdma {
namespace {

struct ThreeNodes : ::testing::Test {
  sim::EventLoop loop;
  Network net{loop, Network::Config{}};
  HostMemory mem_a{1 << 20}, mem_b{1 << 20}, mem_c{1 << 20};
  nvm::NvmDevice nvm_a{mem_a, 64 << 10}, nvm_b{mem_b, 64 << 10},
      nvm_c{mem_c, 64 << 10};
  Nic a{loop, net, mem_a, &nvm_a};
  Nic b{loop, net, mem_b, &nvm_b};
  Nic c{loop, net, mem_c, &nvm_c};
};

TEST_F(ThreeNodes, WaitBlocksUntilThreshold) {
  // On NIC b: a loopback QP whose queue is [WAIT(recv_cq >= 1)] [COPY].
  CompletionQueue* recv_cq = b.create_cq();
  CompletionQueue* loop_cq = b.create_cq();
  QueuePair* qb = b.create_qp(nullptr, recv_cq, 16);
  QueuePair* lb = b.create_loopback_qp(loop_cq, 16);

  const Addr src = mem_b.alloc(16);
  const Addr dst = mem_b.alloc(16);
  mem_b.write(src, "chained", 8);

  b.post_send(lb, make_wait(recv_cq->id(), 1));
  b.post_send(lb, make_local_copy(src, dst, 8));
  loop.run();

  // Nothing ran: the WAIT is unsatisfied.
  char out[8] = {};
  mem_b.read(dst, out, 8);
  EXPECT_STREQ(out, "");
  EXPECT_EQ(loop_cq->completion_count(), 0u);

  // Deliver a SEND from a -> b; its recv completion satisfies the WAIT.
  CompletionQueue* cq_a = a.create_cq();
  QueuePair* qa = a.create_qp(cq_a, nullptr, 16);
  a.connect(qa, b.id(), qb->qpn);
  b.connect(qb, a.id(), qa->qpn);
  b.post_recv(qb, RecvWqe{});
  const Addr msg = mem_a.alloc(8);
  a.post_send(qa, make_send(msg, 0, 4));
  loop.run();

  mem_b.read(dst, out, 8);
  EXPECT_STREQ(out, "chained");
  EXPECT_EQ(loop_cq->completion_count(), 1u);
}

TEST_F(ThreeNodes, WaitThresholdCountsMultipleCompletions) {
  CompletionQueue* recv_cq = b.create_cq();
  CompletionQueue* loop_cq = b.create_cq();
  QueuePair* qb = b.create_qp(nullptr, recv_cq, 16);
  QueuePair* lb = b.create_loopback_qp(loop_cq, 16);

  const Addr flag = mem_b.alloc(8);
  b.post_send(lb, make_wait(recv_cq->id(), 3));
  const Addr one = mem_b.alloc(8);
  mem_b.write(one, "X", 1);
  b.post_send(lb, make_local_copy(one, flag, 1));

  CompletionQueue* cq_a = a.create_cq();
  QueuePair* qa = a.create_qp(cq_a, nullptr, 16);
  a.connect(qa, b.id(), qb->qpn);
  b.connect(qb, a.id(), qa->qpn);
  const Addr msg = mem_a.alloc(8);

  for (int i = 0; i < 2; ++i) {
    b.post_recv(qb, RecvWqe{});
    a.post_send(qa, make_send(msg, 0, 1));
  }
  loop.run();
  char out[2] = {};
  mem_b.read(flag, out, 1);
  EXPECT_STREQ(out, "");  // two completions < threshold 3

  b.post_recv(qb, RecvWqe{});
  a.post_send(qa, make_send(msg, 0, 1));
  loop.run();
  mem_b.read(flag, out, 1);
  EXPECT_STREQ(out, "X");
}

TEST_F(ThreeNodes, DeferredWqeStallsUntilGranted) {
  CompletionQueue* cq = b.create_cq();
  QueuePair* lb = b.create_loopback_qp(cq, 16);
  const Addr src = mem_b.alloc(8);
  const Addr dst = mem_b.alloc(8);
  mem_b.write(src, "own", 3);

  const uint64_t seq =
      b.post_send(lb, make_local_copy(src, dst, 3), /*deferred=*/true);
  loop.run();
  char out[4] = {};
  mem_b.read(dst, out, 3);
  EXPECT_STREQ(out, "");  // driver still owns the WQE

  b.grant_ownership(lb, seq);
  loop.run();
  mem_b.read(dst, out, 3);
  EXPECT_STREQ(out, "own");
}

// The full HyperLoop trick in miniature: node A sends a metadata blob that
// patches a pre-posted, deferred WRITE on node B so that B's NIC forwards
// B-local data to node C — no code runs on B.
TEST_F(ThreeNodes, RecvScatterPatchesAndTriggersForwarding) {
  // --- node B setup (all pre-posted, then B is passive) ---
  CompletionQueue* b_recv_cq = b.create_cq();
  CompletionQueue* b_send_cq = b.create_cq();
  QueuePair* qb_prev = b.create_qp(nullptr, b_recv_cq, 16);
  QueuePair* qb_next = b.create_qp(b_send_cq, nullptr, 16);

  const Addr b_data = nvm_b.alloc(64);
  mem_b.write(b_data, "forward-me!", 12);

  // --- node C setup ---
  CompletionQueue* c_recv_cq = c.create_cq();
  QueuePair* qc = c.create_qp(nullptr, c_recv_cq, 16);
  const Addr c_data = nvm_c.alloc(64);
  const MemoryRegion c_mr = c.register_mr(c_data, 64, kRemoteWrite);

  // --- node A setup ---
  CompletionQueue* a_cq = a.create_cq();
  QueuePair* qa = a.create_qp(a_cq, nullptr, 16);

  a.connect(qa, b.id(), qb_prev->qpn);
  b.connect(qb_prev, a.id(), qa->qpn);
  b.connect(qb_next, c.id(), qc->qpn);
  c.connect(qc, b.id(), qb_next->qpn);

  // B pre-posts: WAIT then a deferred placeholder WRITE on qb_next, and a
  // RECV on qb_prev whose single SGE lands on the WRITE's descriptor.
  b.post_send(qb_next, make_wait(b_recv_cq->id(), 1));
  const uint64_t wseq = b.post_send(qb_next, make_nop(), /*deferred=*/true);
  const MemoryRegion ring_mr = b.register_mr(
      qb_next->sq_base, uint64_t{qb_next->sq_slots} * sizeof(Wqe),
      kLocalWrite);
  RecvWqe recv;
  recv.sges = {
      Sge{qb_next->slot_addr(wseq), sizeof(WqeDescriptor), ring_mr.lkey}};
  b.post_recv(qb_prev, std::move(recv));

  // A builds the patch: "WRITE 12 bytes from B's data region to C".
  WqeDescriptor patch =
      make_write(b_data, 0, c_data, c_mr.rkey, 12).d;
  patch.active = 1;
  const Addr blob = mem_a.alloc(sizeof(patch));
  mem_a.write(blob, &patch, sizeof(patch));
  a.post_send(qa, make_send(blob, 0, sizeof(patch)));
  loop.run();

  char out[13] = {};
  mem_c.read(c_data, out, 12);
  EXPECT_STREQ(out, "forward-me!");
  // B's CPU never ran anything: the whole forward was NIC-side.
  EXPECT_EQ(b_send_cq->completion_count(), 1u);  // the patched WRITE
}

TEST_F(ThreeNodes, PatchCanRewriteOpcodeToNop) {
  // Same structure, but the patch turns the WQE into a NOP (gCAS execute
  // map semantics): nothing is written to C.
  CompletionQueue* b_recv_cq = b.create_cq();
  CompletionQueue* b_send_cq = b.create_cq();
  QueuePair* qb_prev = b.create_qp(nullptr, b_recv_cq, 16);
  QueuePair* qb_next = b.create_qp(b_send_cq, nullptr, 16);
  CompletionQueue* c_recv_cq = c.create_cq();
  QueuePair* qc = c.create_qp(nullptr, c_recv_cq, 16);
  const Addr c_data = nvm_c.alloc(64);
  c.register_mr(c_data, 64, kRemoteWrite);
  CompletionQueue* a_cq = a.create_cq();
  QueuePair* qa = a.create_qp(a_cq, nullptr, 16);
  a.connect(qa, b.id(), qb_prev->qpn);
  b.connect(qb_prev, a.id(), qa->qpn);
  b.connect(qb_next, c.id(), qc->qpn);
  c.connect(qc, b.id(), qb_next->qpn);

  b.post_send(qb_next, make_wait(b_recv_cq->id(), 1));
  const uint64_t wseq = b.post_send(qb_next, make_nop(), true);
  const MemoryRegion ring_mr = b.register_mr(
      qb_next->sq_base, uint64_t{qb_next->sq_slots} * sizeof(Wqe),
      kLocalWrite);
  RecvWqe recv;
  recv.sges = {
      Sge{qb_next->slot_addr(wseq), sizeof(WqeDescriptor), ring_mr.lkey}};
  b.post_recv(qb_prev, std::move(recv));

  WqeDescriptor patch;
  patch.opcode = static_cast<uint8_t>(Opcode::kNop);
  patch.active = 1;
  const Addr blob = mem_a.alloc(sizeof(patch));
  mem_a.write(blob, &patch, sizeof(patch));
  a.post_send(qa, make_send(blob, 0, sizeof(patch)));
  loop.run();

  EXPECT_EQ(b_send_cq->completion_count(), 1u);  // NOP completed
  EXPECT_EQ(c.counters().packets_rx, 0u);        // nothing reached C
}

TEST_F(ThreeNodes, ScatterIntoUnregisteredRingFails) {
  // Without the LocalWrite registration of the ring, the scatter must be
  // rejected (the paper's "with safety checks").
  CompletionQueue* b_recv_cq = b.create_cq();
  QueuePair* qb_prev = b.create_qp(nullptr, b_recv_cq, 16);
  QueuePair* qb_next = b.create_qp(nullptr, nullptr, 16);

  RecvWqe recv;
  recv.sges = {Sge{qb_next->slot_addr(0), sizeof(WqeDescriptor),
                   /*lkey=*/0xdead}};
  b.post_recv(qb_prev, std::move(recv));

  CompletionQueue* a_cq = a.create_cq();
  QueuePair* qa = a.create_qp(a_cq, nullptr, 16);
  a.connect(qa, b.id(), qb_prev->qpn);
  b.connect(qb_prev, a.id(), qa->qpn);

  WqeDescriptor patch;
  patch.active = 1;
  const Addr blob = mem_a.alloc(sizeof(patch));
  mem_a.write(blob, &patch, sizeof(patch));
  a.post_send(qa, make_send(blob, 0, sizeof(patch)));
  loop.run();

  Cqe cqe;
  ASSERT_TRUE(b_recv_cq->poll(&cqe));
  EXPECT_EQ(cqe.status, CqStatus::kLocalProtectionError);
}

}  // namespace
}  // namespace hyperloop::rdma
