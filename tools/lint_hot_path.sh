#!/usr/bin/env sh
# Hot-path token lint: the control-plane files below must stay on
# sim::SmallFn completions and flat (seq-indexed / pooled) op tables.
# A reappearing std::function or std::unordered_map means a heap-backed
# callable or a hashing map crept back onto the per-op path, which the
# nic_alloc_test transaction lap would catch at runtime — this catches it
# at review time, comments included (a plain grep, by design).
#
# Usage: tools/lint_hot_path.sh   (also wired as the `lint` cmake target
# and a ci.yml step)
set -eu

ROOT=$(cd "$(dirname "$0")/.." && pwd)

FILES="
src/core/group.h
src/core/hyperloop_group.h
src/core/hyperloop_group.cc
src/core/naive_group.h
src/core/naive_group.cc
src/core/fanout_group.h
src/core/fanout_group.cc
src/core/wal.h
src/core/wal.cc
src/core/sharded_group.h
src/core/sharded_group.cc
src/core/remote_reader.h
src/core/remote_reader.cc
src/core/sharded_reader.h
src/core/sharded_reader.cc
src/rdma/nic.h
src/rdma/nic.cc
src/rdma/completion_queue.h
src/rdma/completion_queue.cc
src/rdma/queue_pair.h
src/rdma/slot_table.h
src/rdma/payload_buf.h
src/rdma/payload_buf.cc
src/rdma/memory.h
src/rdma/memory.cc
src/rdma/packet.h
src/rdma/wqe.h
"

status=0
for f in $FILES; do
  if [ ! -f "$ROOT/$f" ]; then
    echo "lint: missing gated file $f" >&2
    status=1
    continue
  fi
  if grep -nE 'std::(function|unordered_map)' "$ROOT/$f"; then
    echo "lint: banned token in $f (use sim::SmallFn / flat tables on the hot path)" >&2
    status=1
  fi
done

[ "$status" -eq 0 ] && echo "lint: hot-path files clean"
exit $status
