// Quickstart: set up a 3-replica HyperLoop chain and use the four
// group-based primitives directly.
//
//   build/examples/quickstart
//
// What it shows:
//   - gWRITE  replicates bytes to every replica (NIC-offloaded chain)
//   - gFLUSH  makes them durable (survives an injected power failure)
//   - gMEMCPY applies a "log record" into the database area on all replicas
//   - gCAS    takes and releases a group lock, with a result map
#include <cstdio>
#include <cstring>

#include "core/hyperloop_group.h"
#include "core/server.h"

using namespace hyperloop;

int main() {
  // A cluster: 3 storage servers + 1 client (the transaction coordinator).
  core::Cluster::Config cc;
  cc.num_servers = 4;
  cc.server.cpu.num_cores = 16;
  core::Cluster cluster(cc);

  core::HyperLoopGroup::Config gc;
  gc.region_size = 1 << 20;
  std::vector<core::Server*> replicas = {&cluster.server(0),
                                         &cluster.server(1),
                                         &cluster.server(2)};
  core::HyperLoopGroup group(cluster.server(3), replicas, gc);

  // --- gWRITE + interleaved gFLUSH -------------------------------------
  const char msg[] = "hello, replicated world";
  group.client_store(0, msg, sizeof(msg));
  group.gwrite(0, sizeof(msg), /*flush=*/true, [&] {
    std::printf("gWRITE acked at t=%.1fus (durable on all replicas)\n",
                sim::to_us(cluster.loop().now()));
  });
  cluster.loop().run_until(sim::msec(1));

  for (size_t i = 0; i < 3; ++i) {
    char out[sizeof(msg)] = {};
    group.replica_load(i, 0, out, sizeof(msg));
    std::printf("  replica %zu: \"%s\"\n", i, out);
  }

  // Power-fail every replica: the flushed write must survive.
  for (size_t i = 0; i < 3; ++i) group.replica_server(i).nvm().crash();
  char out[sizeof(msg)] = {};
  group.replica_load(1, 0, out, sizeof(msg));
  std::printf("after power failure, replica 1 still has: \"%s\"\n", out);

  // --- gMEMCPY: remote log processing ----------------------------------
  group.gmemcpy(0, 4096, sizeof(msg), /*flush=*/true, [&] {
    std::printf("gMEMCPY applied log->db on all replicas, t=%.1fus\n",
                sim::to_us(cluster.loop().now()));
  });
  cluster.loop().run_until(cluster.loop().now() + sim::msec(1));
  std::memset(out, 0, sizeof(out));
  group.replica_load(2, 4096, out, sizeof(msg));
  std::printf("  replica 2 db area: \"%s\"\n", out);

  // --- gCAS: group locking ----------------------------------------------
  group.gcas(8192, /*expected=*/0, /*desired=*/77,
             core::ExecMap::all(3),
             [&](const core::CasResult& old_values) {
               std::printf("gCAS acquired the lock; old values were");
               for (uint64_t v : old_values) std::printf(" %llu",
                   static_cast<unsigned long long>(v));
               std::printf("\n");
             });
  cluster.loop().run_until(cluster.loop().now() + sim::msec(1));

  // A second CAS sees the lock held (result map reports 77 everywhere).
  group.gcas(8192, 0, 99, core::ExecMap::all(3),
             [&](const core::CasResult& old_values) {
               std::printf("second gCAS refused: holder id %llu\n",
                           static_cast<unsigned long long>(old_values[0]));
             });
  cluster.loop().run_until(cluster.loop().now() + sim::msec(1));

  std::printf(
      "replica CPU consumed by the data path: 0 (refill only: %.1fus over "
      "%.1fms)\n",
      sim::to_us(group.replica_cpu_time(0) + group.replica_cpu_time(1) +
                 group.replica_cpu_time(2)),
      sim::to_ms(cluster.loop().now()));
  return 0;
}
