// Cross-partition transactions: two independently replicated partitions
// (each its own HyperLoop chain) updated atomically with two-phase commit,
// then a coordinator-crash scenario recovered by roll-forward.
//
//   build/examples/multi_partition
#include <cstdio>
#include <cstring>

#include "core/hyperloop_group.h"
#include "core/lock.h"
#include "core/server.h"
#include "core/two_phase.h"
#include "core/wal.h"

using namespace hyperloop;

int main() {
  core::Cluster::Config cc;
  cc.num_servers = 4;
  core::Cluster cluster(cc);

  core::RegionLayout layout;
  layout.region_size = 2u << 20;
  layout.log_size = 256 << 10;
  layout.num_locks = 32;

  struct Part {
    std::unique_ptr<core::HyperLoopGroup> group;
    std::unique_ptr<core::ReplicatedWal> wal;
    std::unique_ptr<core::GroupLockManager> locks;
  };
  std::vector<Part> parts;
  std::vector<core::TwoPhaseCoordinator::PartitionCtx> ctxs;
  for (int p = 0; p < 2; ++p) {
    Part part;
    core::HyperLoopGroup::Config gc;
    gc.region_size = layout.region_size;
    std::vector<core::Server*> reps = {&cluster.server(0), &cluster.server(1),
                                       &cluster.server(2)};
    part.group =
        std::make_unique<core::HyperLoopGroup>(cluster.server(3), reps, gc);
    part.wal = std::make_unique<core::ReplicatedWal>(*part.group, layout);
    part.locks = std::make_unique<core::GroupLockManager>(*part.group, layout,
                                                          cluster.loop());
    ctxs.push_back(
        {part.group.get(), part.wal.get(), part.locks.get(), layout});
    parts.push_back(std::move(part));
  }
  core::TwoPhaseCoordinator coord(cluster.loop(), std::move(ctxs), {});
  const uint64_t base = coord.app_data_base();

  auto bytes = [](uint64_t v) {
    std::vector<uint8_t> b(8);
    std::memcpy(b.data(), &v, 8);
    return b;
  };

  // A user's account lives in partition 0, their order book in partition 1:
  // "place order" must debit and enqueue atomically.
  bool done = false;
  coord.execute({{0, base + 0, 1, bytes(900)},   // balance 1000 -> 900
                 {1, base + 0, 1, bytes(1)}},    // one order queued
                [&](bool ok) { done = ok; });
  cluster.loop().run_until(sim::msec(50));
  std::printf("order txn committed: %s (committed=%llu)\n",
              done ? "yes" : "no",
              static_cast<unsigned long long>(coord.committed()));
  uint64_t bal = 0, orders = 0;
  parts[0].group->replica_load(2, layout.db_base() + base, &bal, 8);
  parts[1].group->replica_load(2, layout.db_base() + base, &orders, 8);
  std::printf("partition 0 (balances) replica 2: %llu; partition 1 (orders) "
              "replica 2: %llu\n",
              (unsigned long long)bal, (unsigned long long)orders);

  // Coordinator-crash drill: a transaction that reached COMMITTED on
  // partition 1 but only PREPARED on partition 0. Recovery scans all
  // status tables and rolls partition 0 forward from its staging block.
  std::printf("\n-- simulating a coordinator crash between commit appends --\n");
  const uint64_t txn = 500;
  {
    uint32_t count = 1;
    uint64_t target = base + 64;
    uint32_t len = 8;
    uint64_t value = 424242;
    std::vector<uint8_t> staging(32, 0);
    std::memcpy(staging.data(), &count, 4);
    std::memcpy(staging.data() + 8, &target, 8);
    std::memcpy(staging.data() + 16, &len, 4);
    std::memcpy(staging.data() + 24, &value, 8);
    std::vector<uint8_t> status(16);
    std::memcpy(status.data(), &txn, 8);
    uint64_t st = core::TwoPhaseCoordinator::kPrepared;
    std::memcpy(status.data() + 8, &st, 8);
    parts[0].wal->append({{coord.staging_offset(txn), staging},
                          {coord.status_offset(txn), status}},
                         [](uint64_t) {});
    st = core::TwoPhaseCoordinator::kCommitted;
    std::memcpy(status.data() + 8, &st, 8);
    parts[1].wal->append({{coord.status_offset(txn), status}}, [](uint64_t) {});
  }
  cluster.loop().run_until(cluster.loop().now() + sim::msec(20));
  parts[0].wal->execute_and_advance([] {});
  parts[1].wal->execute_and_advance([] {});
  cluster.loop().run_until(cluster.loop().now() + sim::msec(20));

  // Recovery: collect globally committed txn ids, then repair partitions.
  std::vector<std::pair<uint64_t, uint64_t>> st;
  coord.scan_status(0, &st);
  coord.scan_status(1, &st);
  std::vector<uint64_t> committed_ids;
  for (auto& [id, state] : st) {
    if (state == core::TwoPhaseCoordinator::kCommitted) {
      committed_ids.push_back(id);
    }
  }
  const uint64_t repaired = coord.recover_partition(0, committed_ids);
  cluster.loop().run_until(cluster.loop().now() + sim::msec(50));
  uint64_t v = 0;
  parts[0].group->replica_load(1, layout.db_base() + base + 64, &v, 8);
  std::printf("rolled forward %llu txn(s); partition 0 replica 1 now holds "
              "%llu at the target cell\n",
              (unsigned long long)repaired, (unsigned long long)v);
  return 0;
}
