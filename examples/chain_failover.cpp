// Chain failover: failure detection and catch-up recovery while a client
// keeps writing (the control-path story from §5).
//
//   build/examples/chain_failover
//
// Timeline: steady writes -> replica 1 power-fails -> heartbeats miss ->
// detector pauses the data path -> replacement catches up from a healthy
// neighbor -> epoch bumps, writes resume, and the recovered replica's
// region image matches the others byte for byte.
#include <cstdio>
#include <cstring>

#include "core/chain_manager.h"
#include "core/hyperloop_group.h"
#include "core/server.h"

using namespace hyperloop;

int main() {
  core::Cluster::Config cc;
  cc.num_servers = 4;
  core::Cluster cluster(cc);

  core::HyperLoopGroup::Config gc;
  gc.region_size = 1 << 20;
  std::vector<core::Server*> reps = {&cluster.server(0), &cluster.server(1),
                                     &cluster.server(2)};
  core::HyperLoopGroup group(cluster.server(3), reps, gc);

  std::vector<core::ChainManager::ReplicaInfo> infos;
  for (size_t i = 0; i < 3; ++i) {
    infos.push_back({&group.replica_server(i), group.replica_region_base(i)});
  }
  core::ChainManager mgr(cluster.server(3), infos, gc.region_size, {});
  mgr.set_on_failure([&](size_t i) {
    std::printf("t=%.2fms: heartbeat detector declared replica %zu DEAD; "
                "writes paused\n",
                sim::to_ms(cluster.loop().now()), i);
  });
  mgr.set_on_recovered([&](size_t i) {
    std::printf("t=%.2fms: replica %zu caught up and rejoined (epoch %llu)\n",
                sim::to_ms(cluster.loop().now()), i,
                static_cast<unsigned long long>(mgr.epoch()));
  });
  mgr.start();

  // Steady writer: one 512B durable write per 100us while the chain is up.
  uint64_t written = 0, skipped = 0;
  std::vector<uint8_t> payload(512);
  std::function<void()> tick = [&] {
    if (!mgr.writes_paused()) {
      const uint64_t seq = written++;
      std::memcpy(payload.data(), &seq, 8);
      group.client_store(64 + (seq % 512) * 1024, payload.data(), 512);
      group.gwrite(64 + (seq % 512) * 1024, 512, true, [] {});
    } else {
      ++skipped;
    }
    cluster.loop().schedule_after(sim::usec(100), tick);
  };
  tick();

  cluster.loop().run_until(sim::msec(10));
  std::printf("t=%.2fms: injecting power failure on replica 1\n",
              sim::to_ms(cluster.loop().now()));
  mgr.kill_replica(1);

  cluster.loop().run_until(sim::msec(20));
  std::printf("t=%.2fms: replacement for replica 1 boots, requesting "
              "catch-up\n",
              sim::to_ms(cluster.loop().now()));
  mgr.revive_replica(1);

  cluster.loop().run_until(sim::msec(40));
  std::printf("writes issued: %llu, ticks skipped while paused: %llu\n",
              static_cast<unsigned long long>(written),
              static_cast<unsigned long long>(skipped));

  // Byte-compare the recovered replica against a healthy one.
  std::vector<uint8_t> img1(gc.region_size), img2(gc.region_size);
  group.replica_load(1, 0, img1.data(), static_cast<uint32_t>(img1.size()));
  group.replica_load(2, 0, img2.data(), static_cast<uint32_t>(img2.size()));
  std::printf("recovered image matches healthy replica: %s\n",
              img1 == img2 ? "yes" : "NO");
  return 0;
}
