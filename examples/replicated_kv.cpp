// Replicated key-value store (the RocksDB case study) driven by YCSB-A,
// comparing HyperLoop against the CPU-driven Naïve-RDMA baseline on
// servers crowded with other tenants.
//
//   build/examples/replicated_kv
//
// Also demonstrates eventual consistency of replica reads: a freshly
// written key appears on the replicas only after their periodic
// log-sync wakeup.
#include <cstdio>

#include "apps/kvstore/kvstore.h"
#include "apps/ycsb/driver.h"
#include "apps/ycsb/workload.h"
#include "core/hyperloop_group.h"
#include "core/naive_group.h"
#include "core/server.h"

using namespace hyperloop;

namespace {

void run_backend(bool hyper) {
  core::Cluster::Config cc;
  cc.num_servers = 4;
  cc.seed = 2024;
  core::Cluster cluster(cc);
  // Busy neighbours on the storage servers.
  for (size_t s = 0; s < 3; ++s) {
    cluster.server(s).add_background_load(
        24, cluster.fork_rng(),
        {.tenants = 0, .median_burst = sim::usec(150), .burst_sigma = 1.2,
         .mean_think = sim::msec(22), .max_batch = 4, .fanout = 16});
  }

  core::RegionLayout layout;
  layout.region_size = 8u << 20;
  layout.log_size = 1u << 20;
  std::vector<core::Server*> reps = {&cluster.server(0), &cluster.server(1),
                                     &cluster.server(2)};
  std::unique_ptr<core::ReplicationGroup> group;
  if (hyper) {
    core::HyperLoopGroup::Config gc;
    gc.region_size = layout.region_size;
    group = std::make_unique<core::HyperLoopGroup>(cluster.server(3), reps, gc);
  } else {
    core::NaiveRdmaGroup::Config gc;
    gc.region_size = layout.region_size;
    group = std::make_unique<core::NaiveRdmaGroup>(cluster.server(3), reps, gc);
  }

  apps::KvStore::Config kc;
  kc.layout = layout;
  kc.value_size = 1024;
  apps::KvStore store(*group, cluster.server(3), reps, kc);
  store.bulk_load(1000);
  cluster.loop().run_until(cluster.loop().now() + sim::msec(100));

  apps::WorkloadGenerator gen(apps::WorkloadSpec::A(), 1000,
                              cluster.fork_rng());
  apps::YcsbDriver::Config dc;
  dc.threads = 4;
  dc.total_ops = 1000;
  apps::YcsbDriver driver(cluster.loop(), store, gen, dc);
  bool complete = false;
  driver.start([&] { complete = true; });
  while (!complete) {
    cluster.loop().run_until(cluster.loop().now() + sim::msec(100));
  }
  std::printf("%-10s YCSB-A updates: %s\n", hyper ? "HyperLoop" : "Naive",
              driver.latency(apps::OpType::kUpdate).summary_us().c_str());

  if (hyper) {
    // Eventual consistency demo.
    bool put = false;
    store.update(7, apps::WorkloadGenerator::value_for(777, 1024),
                 [&](bool) { put = true; });
    cluster.loop().run_until(cluster.loop().now() + sim::usec(200));
    std::vector<uint8_t> v;
    const bool before = store.replica_read(0, 7, &v) &&
                        v == apps::WorkloadGenerator::value_for(777, 1024);
    cluster.loop().run_until(cluster.loop().now() + sim::msec(10));
    const bool after = store.replica_read(0, 7, &v) &&
                       v == apps::WorkloadGenerator::value_for(777, 1024);
    std::printf(
        "  replica read right after ack sees new value: %s; after the "
        "sync period: %s (eventually consistent, like §5.1)\n",
        before ? "yes" : "no", after ? "yes" : "no");
  }
}

}  // namespace

int main() {
  run_backend(/*hyper=*/false);
  run_backend(/*hyper=*/true);
  return 0;
}
