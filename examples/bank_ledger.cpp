// Bank ledger: ACID transfers over a HyperLoop chain.
//
//   build/examples/bank_ledger
//
// A classic X->Y transfer must move money atomically: both account slots
// change or neither does. The example runs transfers through the
// TransactionManager (group locks + replicated WAL + ExecuteAndAdvance),
// injects a crash between commit and execution, and shows that redo-log
// replay reconstructs a consistent ledger — the invariant (total balance)
// never breaks.
#include <cstdio>
#include <cstring>
#include <vector>

#include "core/hyperloop_group.h"
#include "core/lock.h"
#include "core/server.h"
#include "core/txn.h"
#include "core/wal.h"

using namespace hyperloop;

namespace {

constexpr int kAccounts = 16;
constexpr uint64_t kInitialBalance = 1000;

uint64_t account_offset(int i) { return static_cast<uint64_t>(i) * 64; }

}  // namespace

int main() {
  core::Cluster::Config cc;
  cc.num_servers = 4;
  core::Cluster cluster(cc);

  core::RegionLayout layout;
  layout.region_size = 1 << 20;
  layout.log_size = 128 << 10;
  layout.num_locks = kAccounts;

  core::HyperLoopGroup::Config gc;
  gc.region_size = layout.region_size;
  std::vector<core::Server*> replicas = {&cluster.server(0),
                                         &cluster.server(1),
                                         &cluster.server(2)};
  core::HyperLoopGroup group(cluster.server(3), replicas, gc);
  core::ReplicatedWal wal(group, layout);
  core::GroupLockManager locks(group, layout, cluster.loop());
  core::TransactionManager txns(group, wal, locks, cluster.loop());

  // Seed the ledger (control path): every account gets 1000.
  for (int a = 0; a < kAccounts; ++a) {
    const uint64_t bal = kInitialBalance;
    group.client_store(layout.db_base() + account_offset(a), &bal, 8);
  }
  group.gwrite(layout.db_base(), kAccounts * 64, true, [] {});
  cluster.loop().run_until(sim::msec(5));

  auto balance = [&](size_t replica, int a) {
    uint64_t v = 0;
    group.replica_load(replica, layout.db_base() + account_offset(a), &v, 8);
    return v;
  };
  auto total = [&](size_t replica) {
    uint64_t t = 0;
    for (int a = 0; a < kAccounts; ++a) t += balance(replica, a);
    return t;
  };

  // Run 200 random transfers. Each transfer is a read-modify-write: it
  // reads the current balances from the coordinator's copy and commits
  // the new ones under group locks. Transfers are chained (the next one
  // issues when the previous commits) so every read sees committed state;
  // concurrent disjoint transactions are exercised by tests/txn_test.cc.
  sim::Rng rng(7);
  int committed = 0;
  std::function<void(int)> transfer = [&](int remaining) {
    if (remaining == 0) return;
    const int from = static_cast<int>(rng.next_below(kAccounts));
    int to = static_cast<int>(rng.next_below(kAccounts));
    if (to == from) to = (to + 1) % kAccounts;
    const uint64_t amount = 1 + rng.next_below(50);

    uint64_t from_bal = 0, to_bal = 0;
    group.client_load(layout.db_base() + account_offset(from), &from_bal, 8);
    group.client_load(layout.db_base() + account_offset(to), &to_bal, 8);
    if (from_bal < amount) {
      transfer(remaining - 1);
      return;
    }
    from_bal -= amount;
    to_bal += amount;
    std::vector<core::ReplicatedWal::Entry> writes;
    std::vector<uint8_t> fb(8), tb(8);
    std::memcpy(fb.data(), &from_bal, 8);
    std::memcpy(tb.data(), &to_bal, 8);
    writes.push_back({account_offset(from), fb});
    writes.push_back({account_offset(to), tb});
    txns.execute(std::move(writes),
                 {static_cast<uint32_t>(from), static_cast<uint32_t>(to)},
                 [&, remaining](bool ok) {
                   committed += ok ? 1 : 0;
                   transfer(remaining - 1);
                 });
  };
  transfer(200);
  cluster.loop().run_until(cluster.loop().now() + sim::seconds(5));
  std::printf("committed %d transfers\n", committed);

  for (size_t r = 0; r < 3; ++r) {
    std::printf("replica %zu total balance: %llu (expect %llu)\n", r,
                static_cast<unsigned long long>(total(r)),
                static_cast<unsigned long long>(
                    uint64_t{kAccounts} * kInitialBalance));
  }

  // Crash injection: append one more transfer but crash replica 2 before
  // anyone executes it; replay recovers it from the committed log.
  uint64_t b0 = 0, b1 = 0;
  group.client_load(layout.db_base() + account_offset(0), &b0, 8);
  group.client_load(layout.db_base() + account_offset(1), &b1, 8);
  b0 -= 123;
  b1 += 123;
  std::vector<uint8_t> a0(8), a1(8);
  std::memcpy(a0.data(), &b0, 8);
  std::memcpy(a1.data(), &b1, 8);
  wal.append({{account_offset(0), a0}, {account_offset(1), a1}},
             [](uint64_t lsn) {
               std::printf("late transfer committed at lsn %llu\n",
                           static_cast<unsigned long long>(lsn));
             });
  cluster.loop().run_until(cluster.loop().now() + sim::msec(5));

  group.replica_server(2).nvm().crash();
  std::printf("replica 2 crashed; balance[0] before replay: %llu\n",
              static_cast<unsigned long long>(balance(2, 0)));

  const rdma::Addr base = group.replica_region_base(2);
  core::Server& victim = group.replica_server(2);
  const uint64_t applied = core::ReplicatedWal::replay(
      layout,
      [&](uint64_t off, void* dst, uint32_t len) {
        victim.mem().read(base + off, dst, len);
      },
      [&](uint64_t off, const void* src, uint32_t len) {
        victim.mem().write(base + off, src, len);
      });
  std::printf("replayed %llu records; balance[0] now %llu, total %llu\n",
              static_cast<unsigned long long>(applied),
              static_cast<unsigned long long>(balance(2, 0)),
              static_cast<unsigned long long>(total(2)));
  return 0;
}
