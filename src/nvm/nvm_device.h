// Simulated non-volatile memory with an explicit volatile front.
//
// The paper's durability pitfall (§4.2, gFLUSH): an RDMA WRITE is ACKed
// once the data reaches the NIC's *volatile* cache, so an un-flushed write
// can be lost on power failure even though the writer saw success. We model
// this precisely:
//
//   - The "live" bytes reside in the server's HostMemory (visible to all
//     readers immediately).
//   - A durable shadow copy holds what would survive power loss.
//   - Every write inside the NVM range is recorded as dirty (volatile).
//   - persist() copies live -> durable for a range (CPU cache-line flush
//     or the NIC's gFLUSH-triggered cache write-back).
//   - crash() copies durable -> live, i.e. un-persisted writes vanish —
//     which is how tests prove gFLUSH is both necessary and sufficient.
//
// Dirty tracking is a two-level DirtyBitmap at 64 B cache-line
// granularity (see dirty_bitmap.h): marking, persisting and querying are
// word operations with zero steady-state heap allocation, and — like real
// CLWB/ADR hardware — flushing any byte of a line makes the whole line
// durable. IntervalSet remains as the byte-exact reference model the
// bitmap is property-tested against.
#pragma once

#include <cstdint>
#include <vector>

#include "nvm/dirty_bitmap.h"
#include "rdma/memory.h"

namespace hyperloop::nvm {

/// A byte-range of a server's HostMemory backed by simulated NVM.
class NvmDevice {
 public:
  /// Carves `size` bytes out of `mem` (allocated here) and hooks write
  /// observation so all stores into the range are tracked as dirty.
  NvmDevice(rdma::HostMemory& mem, size_t size);
  NvmDevice(const NvmDevice&) = delete;
  NvmDevice& operator=(const NvmDevice&) = delete;

  /// Base address of the NVM range within the host address space.
  rdma::Addr base() const { return base_; }
  size_t size() const { return size_; }

  /// Bump-allocates a sub-range of the NVM for a durable data structure
  /// (replicated region, write-ahead log, ...). Asserts on exhaustion.
  rdma::Addr alloc(size_t bytes, size_t align = 64);

  /// True if `addr` falls inside the NVM range.
  bool contains(rdma::Addr addr) const {
    return addr >= base_ && addr < base_ + size_;
  }

  /// Flushes [addr, addr+len) from the volatile domain to the durable
  /// medium, rounded outward to whole 64 B lines (CLWB semantics).
  /// Out-of-range parts are ignored.
  void persist(rdma::Addr addr, uint64_t len);

  /// Flushes every dirty byte (a full cache write-back, what the NIC does
  /// when it services a gFLUSH 0-byte READ).
  void persist_all();

  /// True if every byte of [addr, addr+len) would survive a crash, i.e.
  /// no overlapping cache line is dirty.
  bool is_durable(rdma::Addr addr, uint64_t len) const;

  /// Bytes currently at risk (written but not persisted), reported at
  /// line granularity: dirty lines x 64.
  uint64_t dirty_bytes() const { return dirty_.dirty_bytes(); }

  /// Simulates power failure: all un-persisted writes are lost; the live
  /// bytes revert to the last durable state.
  void crash();

  /// Number of crash() calls so far (for failure-injection accounting).
  uint64_t crash_count() const { return crashes_; }

 private:
  void on_write(rdma::Addr addr, size_t len);

  rdma::HostMemory& mem_;
  rdma::Addr base_;
  size_t size_;
  std::vector<uint8_t> durable_;
  DirtyBitmap dirty_;  // offsets relative to base_, 64 B line granularity
  uint64_t next_ = 0;  // bump allocator offset
  uint64_t crashes_ = 0;
};

}  // namespace hyperloop::nvm
