// A set of disjoint half-open byte ranges [begin, end), kept merged.
//
// Used by the simulated NVM to track which bytes have been written but not
// yet flushed to the durable medium, and by the NIC to track writes pending
// durability. Operations are O(log n + k) where k is the number of
// overlapped intervals.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace hyperloop::nvm {

/// Disjoint, merged set of [begin, end) intervals over uint64 addresses.
class IntervalSet {
 public:
  struct Interval {
    uint64_t begin;
    uint64_t end;  // exclusive
    bool operator==(const Interval&) const = default;
  };

  /// Inserts [begin, end); merges with neighbors/overlaps. No-op if empty.
  void insert(uint64_t begin, uint64_t end);

  /// Removes [begin, end) from the set (splitting as needed).
  void erase(uint64_t begin, uint64_t end);

  /// True if every byte of [begin, end) is covered. Empty range: true.
  bool covers(uint64_t begin, uint64_t end) const;

  /// True if any byte of [begin, end) is covered. Empty range: false.
  bool intersects(uint64_t begin, uint64_t end) const;

  void clear() { m_.clear(); total_ = 0; }
  bool empty() const { return m_.empty(); }
  size_t interval_count() const { return m_.size(); }

  /// Total number of bytes covered.
  uint64_t total_bytes() const { return total_; }

  /// Snapshot of all intervals in ascending order.
  std::vector<Interval> intervals() const;

 private:
  // begin -> end
  std::map<uint64_t, uint64_t> m_;
  uint64_t total_ = 0;
};

}  // namespace hyperloop::nvm
