// Two-level dirty bitmap at cache-line (64 B) granularity.
//
// The NVM durability tracker's hot operations are: mark a written range
// dirty (every CPU store / NIC DMA into the NVM range), clear a range on
// persist, query a range (is_durable), and walk all dirty ranges
// (persist_all / crash). IntervalSet (src/nvm/interval_set.h) does these
// in O(log n) with a std::map — node allocation on every insert, erase on
// every persist. This bitmap does them in O(words touched) with zero heap
// allocation after construction:
//
//   level 0: one bit per 64 B line of the tracked range
//   level 1: one summary bit per level-0 word (= per 64 lines = 4 KiB)
//
// mark/clear are a handful of shifts, masks and popcounts; queries are
// masked word scans; full walks scan only the summary-word watermark
// window that mark() has touched since the last time the map emptied, so
// a clean or lightly dirtied device is walked in O(dirty extent), not
// O(device size). dirty_bytes() is a maintained line popcount.
//
// Granularity contract: tracking is per 64 B line, matching real
// persistent-memory hardware where CLWB/gFLUSH flush whole cache lines.
// mark() and clear_range() round byte ranges outward to line boundaries;
// a range is "dirty" if any overlapping line is dirty.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hyperloop::nvm {

class DirtyBitmap {
 public:
  static constexpr uint64_t kLineShift = 6;
  static constexpr uint64_t kLineBytes = 1ull << kLineShift;  // 64

  /// Tracks [0, size_bytes). All storage is allocated here, up front.
  explicit DirtyBitmap(uint64_t size_bytes);

  uint64_t size_bytes() const { return size_; }

  /// Marks every line overlapping [begin, end) dirty. No-op if empty.
  void mark(uint64_t begin, uint64_t end);

  /// Clears every line overlapping [begin, end) (persist rounds outward:
  /// flushing any byte of a line flushes the whole line).
  void clear_range(uint64_t begin, uint64_t end);

  /// Clears everything; visits only set summary words.
  void clear_all();

  /// True if any line overlapping [begin, end) is dirty. Empty: false.
  bool any_dirty(uint64_t begin, uint64_t end) const;

  /// True if every line overlapping [begin, end) is dirty. Empty: true.
  bool all_dirty(uint64_t begin, uint64_t end) const;

  bool empty() const { return dirty_lines_ == 0; }
  uint64_t dirty_lines() const { return dirty_lines_; }

  /// Dirty footprint at tracking granularity (dirty lines x 64 B).
  uint64_t dirty_bytes() const { return dirty_lines_ << kLineShift; }

  /// Calls fn(byte_begin, byte_end) for each maximal run of dirty lines,
  /// in ascending order. byte_end is clamped to size_bytes(). Allocation-
  /// free; only the summary-word watermark window [sum_lo_, sum_hi_) is
  /// scanned, so walking a clean or lightly dirtied device never touches
  /// the full summary (persist_all fires on every gFLUSH — this is hot).
  template <typename Fn>
  void for_each_dirty_range(Fn&& fn) const {
    uint64_t run_begin = 0, run_end = 0;  // [run_begin, run_end) in lines
    bool open = false;
    for (size_t s = sum_lo_; s < sum_hi_; ++s) {
      uint64_t sw = summary_[s];
      while (sw != 0) {
        const int b = __builtin_ctzll(sw);
        sw &= sw - 1;
        const size_t w = (s << 6) + static_cast<size_t>(b);
        uint64_t bits = words_[w];
        const uint64_t word_line0 = static_cast<uint64_t>(w) << 6;
        while (bits != 0) {
          const int lo = __builtin_ctzll(bits);
          // Length of the run of consecutive ones starting at `lo`.
          const uint64_t shifted = bits >> lo;
          const int len = (~shifted == 0) ? 64 - lo
                                          : __builtin_ctzll(~shifted);
          const uint64_t first = word_line0 + static_cast<uint64_t>(lo);
          const uint64_t last = first + static_cast<uint64_t>(len);
          if (open && first == run_end) {
            run_end = last;  // contiguous across a word/summary boundary
          } else {
            if (open) emit(fn, run_begin, run_end);
            run_begin = first;
            run_end = last;
            open = true;
          }
          if (len == 64 - lo) break;  // run reached the top of the word
          bits &= ~(((1ull << len) - 1) << lo);
        }
      }
    }
    if (open) emit(fn, run_begin, run_end);
  }

 private:
  template <typename Fn>
  void emit(Fn&& fn, uint64_t line_begin, uint64_t line_end) const {
    const uint64_t b = line_begin << kLineShift;
    uint64_t e = line_end << kLineShift;
    if (e > size_) e = size_;
    fn(b, e);
  }

  /// Clamps [begin, end) to the tracked range and converts to an inclusive
  /// line pair. Returns false for empty/out-of-range inputs.
  bool to_lines(uint64_t begin, uint64_t end, uint64_t* first,
                uint64_t* last) const;

  uint64_t size_;
  uint64_t lines_;
  uint64_t dirty_lines_ = 0;
  std::vector<uint64_t> words_;    // level 0: bit per line
  std::vector<uint64_t> summary_;  // level 1: bit per level-0 word
  // Watermark window: summary words outside [sum_lo_, sum_hi_) are known
  // clean. Widened by mark(), reset when the map empties; keeps full walks
  // (persist_all / crash / clear_all) proportional to the dirty extent
  // rather than the device size.
  size_t sum_lo_ = 0;
  size_t sum_hi_ = 0;
};

}  // namespace hyperloop::nvm
