#include "nvm/interval_set.h"

#include <algorithm>

namespace hyperloop::nvm {

void IntervalSet::insert(uint64_t begin, uint64_t end) {
  if (begin >= end) return;
  // Find the first interval that could overlap or touch [begin, end).
  auto it = m_.upper_bound(begin);
  if (it != m_.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= begin) it = prev;  // touches/overlaps from the left
  }
  // Absorb all overlapping/touching intervals.
  while (it != m_.end() && it->first <= end) {
    begin = std::min(begin, it->first);
    end = std::max(end, it->second);
    total_ -= it->second - it->first;
    it = m_.erase(it);
  }
  m_.emplace(begin, end);
  total_ += end - begin;
}

void IntervalSet::erase(uint64_t begin, uint64_t end) {
  if (begin >= end) return;
  auto it = m_.upper_bound(begin);
  if (it != m_.begin()) {
    auto prev = std::prev(it);
    if (prev->second > begin) it = prev;
  }
  while (it != m_.end() && it->first < end) {
    const uint64_t ib = it->first;
    const uint64_t ie = it->second;
    total_ -= ie - ib;
    it = m_.erase(it);
    if (ib < begin) {
      m_.emplace(ib, begin);
      total_ += begin - ib;
    }
    if (ie > end) {
      m_.emplace(end, ie);
      total_ += ie - end;
      break;
    }
  }
}

bool IntervalSet::covers(uint64_t begin, uint64_t end) const {
  if (begin >= end) return true;
  auto it = m_.upper_bound(begin);
  if (it == m_.begin()) return false;
  --it;
  return it->first <= begin && it->second >= end;
}

bool IntervalSet::intersects(uint64_t begin, uint64_t end) const {
  if (begin >= end) return false;
  auto it = m_.upper_bound(begin);
  if (it != m_.begin()) {
    auto prev = std::prev(it);
    if (prev->second > begin) return true;
  }
  return it != m_.end() && it->first < end;
}

std::vector<IntervalSet::Interval> IntervalSet::intervals() const {
  std::vector<Interval> out;
  out.reserve(m_.size());
  for (const auto& [b, e] : m_) out.push_back(Interval{b, e});
  return out;
}

}  // namespace hyperloop::nvm
