#include "nvm/dirty_bitmap.h"

namespace hyperloop::nvm {

namespace {

/// Mask of line bits within one word for inclusive lines [lo, hi], where
/// lo and hi are bit positions 0..63.
inline uint64_t bit_span(int lo, int hi) {
  const uint64_t upper = hi == 63 ? ~0ull : (1ull << (hi + 1)) - 1;
  return upper & ~((1ull << lo) - 1);
}

}  // namespace

DirtyBitmap::DirtyBitmap(uint64_t size_bytes)
    : size_(size_bytes),
      lines_((size_bytes + kLineBytes - 1) >> kLineShift),
      words_((lines_ + 63) / 64, 0),
      summary_((words_.size() + 63) / 64, 0) {}

bool DirtyBitmap::to_lines(uint64_t begin, uint64_t end, uint64_t* first,
                           uint64_t* last) const {
  if (begin >= end || begin >= size_) return false;
  if (end > size_) end = size_;
  *first = begin >> kLineShift;
  *last = (end - 1) >> kLineShift;  // inclusive
  return true;
}

void DirtyBitmap::mark(uint64_t begin, uint64_t end) {
  uint64_t first, last;
  if (!to_lines(begin, end, &first, &last)) return;
  const uint64_t w0 = first >> 6, w1 = last >> 6;
  const size_t s0 = w0 >> 6, s1 = (w1 >> 6) + 1;
  if (sum_lo_ >= sum_hi_) {
    sum_lo_ = s0;
    sum_hi_ = s1;
  } else {
    if (s0 < sum_lo_) sum_lo_ = s0;
    if (s1 > sum_hi_) sum_hi_ = s1;
  }
  for (uint64_t w = w0; w <= w1; ++w) {
    const int lo = w == w0 ? static_cast<int>(first & 63) : 0;
    const int hi = w == w1 ? static_cast<int>(last & 63) : 63;
    const uint64_t add = bit_span(lo, hi) & ~words_[w];
    if (add == 0) continue;
    words_[w] |= add;
    dirty_lines_ += static_cast<uint64_t>(__builtin_popcountll(add));
    summary_[w >> 6] |= 1ull << (w & 63);
  }
}

void DirtyBitmap::clear_range(uint64_t begin, uint64_t end) {
  uint64_t first, last;
  if (!to_lines(begin, end, &first, &last)) return;
  const uint64_t w0 = first >> 6, w1 = last >> 6;
  for (uint64_t w = w0; w <= w1; ++w) {
    const int lo = w == w0 ? static_cast<int>(first & 63) : 0;
    const int hi = w == w1 ? static_cast<int>(last & 63) : 63;
    const uint64_t rem = bit_span(lo, hi) & words_[w];
    if (rem == 0) continue;
    words_[w] &= ~rem;
    dirty_lines_ -= static_cast<uint64_t>(__builtin_popcountll(rem));
    if (words_[w] == 0) summary_[w >> 6] &= ~(1ull << (w & 63));
  }
  if (dirty_lines_ == 0) sum_lo_ = sum_hi_ = 0;
}

void DirtyBitmap::clear_all() {
  for (size_t s = sum_lo_; s < sum_hi_; ++s) {
    uint64_t sw = summary_[s];
    while (sw != 0) {
      const int b = __builtin_ctzll(sw);
      sw &= sw - 1;
      words_[(s << 6) + static_cast<size_t>(b)] = 0;
    }
    summary_[s] = 0;
  }
  dirty_lines_ = 0;
  sum_lo_ = sum_hi_ = 0;
}

bool DirtyBitmap::any_dirty(uint64_t begin, uint64_t end) const {
  uint64_t first, last;
  if (!to_lines(begin, end, &first, &last)) return false;
  const uint64_t w0 = first >> 6, w1 = last >> 6;
  for (uint64_t w = w0; w <= w1; ++w) {
    if ((summary_[w >> 6] & (1ull << (w & 63))) == 0) {
      continue;  // whole word clean
    }
    const int lo = w == w0 ? static_cast<int>(first & 63) : 0;
    const int hi = w == w1 ? static_cast<int>(last & 63) : 63;
    if ((words_[w] & bit_span(lo, hi)) != 0) return true;
  }
  return false;
}

bool DirtyBitmap::all_dirty(uint64_t begin, uint64_t end) const {
  uint64_t first, last;
  if (!to_lines(begin, end, &first, &last)) return true;
  const uint64_t w0 = first >> 6, w1 = last >> 6;
  for (uint64_t w = w0; w <= w1; ++w) {
    const int lo = w == w0 ? static_cast<int>(first & 63) : 0;
    const int hi = w == w1 ? static_cast<int>(last & 63) : 63;
    const uint64_t need = bit_span(lo, hi);
    if ((words_[w] & need) != need) return false;
  }
  return true;
}

}  // namespace hyperloop::nvm
