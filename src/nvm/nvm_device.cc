#include "nvm/nvm_device.h"

#include <algorithm>
#include <cassert>

namespace hyperloop::nvm {

namespace {
constexpr uint64_t kLineMask = DirtyBitmap::kLineBytes - 1;
}

NvmDevice::NvmDevice(rdma::HostMemory& mem, size_t size)
    : mem_(mem), base_(mem.alloc(size, 4096)), size_(size), durable_(size, 0),
      dirty_(size) {
  // Watch exactly the NVM range: stores elsewhere (WQE rings, CQEs,
  // payload staging) are filtered out by HostMemory before any call.
  mem_.add_write_observer(
      base_, base_ + size_,
      [this](rdma::Addr addr, size_t len) { on_write(addr, len); });
}

rdma::Addr NvmDevice::alloc(size_t bytes, size_t align) {
  uint64_t off = (next_ + align - 1) & ~(align - 1);
  assert(off + bytes <= size_ && "NVM exhausted");
  next_ = off + bytes;
  return base_ + off;
}

void NvmDevice::on_write(rdma::Addr addr, size_t len) {
  const uint64_t begin = std::max<uint64_t>(addr, base_);
  const uint64_t end = std::min<uint64_t>(addr + len, base_ + size_);
  if (begin >= end) return;
  dirty_.mark(begin - base_, end - base_);
}

void NvmDevice::persist(rdma::Addr addr, uint64_t len) {
  uint64_t begin = std::max<uint64_t>(addr, base_);
  uint64_t end = std::min<uint64_t>(addr + len, base_ + size_);
  if (begin >= end) return;
  // CLWB semantics: flushing any byte of a line writes back the whole
  // line. Round outward so the shadow copy matches the cleared bits.
  begin = (begin - base_) & ~kLineMask;
  end = std::min<uint64_t>((end - base_ + kLineMask) & ~kLineMask, size_);
  mem_.read(base_ + begin, durable_.data() + begin, end - begin);
  dirty_.clear_range(begin, end);
}

void NvmDevice::persist_all() {
  dirty_.for_each_dirty_range([this](uint64_t b, uint64_t e) {
    mem_.read(base_ + b, durable_.data() + b, e - b);
  });
  dirty_.clear_all();
}

bool NvmDevice::is_durable(rdma::Addr addr, uint64_t len) const {
  const uint64_t begin = std::max<uint64_t>(addr, base_);
  const uint64_t end = std::min<uint64_t>(addr + len, base_ + size_);
  if (begin >= end) return true;
  return !dirty_.any_dirty(begin - base_, end - base_);
}

void NvmDevice::crash() {
  ++crashes_;
  // Revert only the dirty lines; everything else already matches the
  // durable image. restore() bypasses the write observer, so the revert
  // does not re-mark the restored lines dirty.
  dirty_.for_each_dirty_range([this](uint64_t b, uint64_t e) {
    mem_.restore(base_ + b, durable_.data() + b, e - b);
  });
  dirty_.clear_all();
}

}  // namespace hyperloop::nvm
