#include "nvm/nvm_device.h"

#include <algorithm>
#include <cassert>

namespace hyperloop::nvm {

NvmDevice::NvmDevice(rdma::HostMemory& mem, size_t size)
    : mem_(mem), base_(mem.alloc(size, 4096)), size_(size), durable_(size, 0) {
  mem_.add_write_observer(
      [this](rdma::Addr addr, size_t len) { on_write(addr, len); });
}

rdma::Addr NvmDevice::alloc(size_t bytes, size_t align) {
  uint64_t off = (next_ + align - 1) & ~(align - 1);
  assert(off + bytes <= size_ && "NVM exhausted");
  next_ = off + bytes;
  return base_ + off;
}

void NvmDevice::on_write(rdma::Addr addr, size_t len) {
  const uint64_t begin = std::max<uint64_t>(addr, base_);
  const uint64_t end = std::min<uint64_t>(addr + len, base_ + size_);
  if (begin >= end) return;
  dirty_.insert(begin - base_, end - base_);
}

void NvmDevice::persist(rdma::Addr addr, uint64_t len) {
  const uint64_t begin = std::max<uint64_t>(addr, base_);
  const uint64_t end = std::min<uint64_t>(addr + len, base_ + size_);
  if (begin >= end) return;
  mem_.read(begin, durable_.data() + (begin - base_), end - begin);
  dirty_.erase(begin - base_, end - base_);
}

void NvmDevice::persist_all() {
  for (const auto& iv : dirty_.intervals()) {
    mem_.read(base_ + iv.begin, durable_.data() + iv.begin, iv.end - iv.begin);
  }
  dirty_.clear();
}

bool NvmDevice::is_durable(rdma::Addr addr, uint64_t len) const {
  const uint64_t begin = std::max<uint64_t>(addr, base_);
  const uint64_t end = std::min<uint64_t>(addr + len, base_ + size_);
  if (begin >= end) return true;
  return !dirty_.intersects(begin - base_, end - base_);
}

void NvmDevice::crash() {
  ++crashes_;
  // Revert only the dirty ranges; everything else already matches the
  // durable image.
  for (const auto& iv : dirty_.intervals()) {
    mem_.write(base_ + iv.begin, durable_.data() + iv.begin, iv.end - iv.begin);
  }
  // The writes just performed re-marked those ranges dirty via the
  // observer; clear after restoring.
  dirty_.clear();
}

}  // namespace hyperloop::nvm
