// Minimal fixed-width ASCII table printer for benchmark harnesses, so each
// bench binary emits rows shaped like the paper's figures/tables.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace hyperloop::stats {

/// Collects rows of strings and prints them with aligned columns.
class Table {
 public:
  explicit Table(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  /// Formats a double with `prec` decimals.
  static std::string num(double v, int prec = 1) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    return buf;
  }

  void print(FILE* out = stdout) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hyperloop::stats
