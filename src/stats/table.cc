#include "stats/table.h"

#include <algorithm>

namespace hyperloop::stats {

void Table::print(FILE* out) const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    std::fprintf(out, "|");
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      std::fprintf(out, " %-*s |", static_cast<int>(widths[c]), cell.c_str());
    }
    std::fprintf(out, "\n");
  };
  print_row(header_);
  std::fprintf(out, "|");
  for (size_t c = 0; c < widths.size(); ++c) {
    for (size_t i = 0; i < widths[c] + 2; ++i) std::fprintf(out, "-");
    std::fprintf(out, "|");
  }
  std::fprintf(out, "\n");
  for (const auto& row : rows_) print_row(row);
}

}  // namespace hyperloop::stats
