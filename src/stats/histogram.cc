#include "stats/histogram.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdio>

namespace hyperloop::stats {

Histogram::Histogram(int sub_bucket_bits)
    : sub_bucket_bits_(sub_bucket_bits),
      sub_buckets_(int64_t{1} << sub_bucket_bits) {
  assert(sub_bucket_bits >= 1 && sub_bucket_bits <= 16);
  // Pre-size for the full int64 range: record_n stays allocation-free
  // (~3.7k buckets = ~30 KB at the default 6 bits; bounded because the
  // shift count is capped at 63 - sub_bucket_bits).
  counts_.resize(bucket_index(INT64_MAX) + 1, 0);
}

size_t Histogram::bucket_index(int64_t value) const {
  if (value < sub_buckets_) return static_cast<size_t>(value);
  const int k = 63 - std::countl_zero(static_cast<uint64_t>(value));
  const int shift = k - sub_bucket_bits_;
  const int64_t sub = (value >> shift) - sub_buckets_;  // in [0, sub_buckets_)
  return static_cast<size_t>(sub_buckets_ + int64_t{shift} * sub_buckets_ + sub);
}

int64_t Histogram::bucket_value(size_t index) const {
  const auto i = static_cast<int64_t>(index);
  if (i < sub_buckets_) return i;
  const int64_t shift = (i - sub_buckets_) / sub_buckets_;
  const int64_t sub = (i - sub_buckets_) % sub_buckets_;
  const int64_t low = (sub + sub_buckets_) << shift;
  const int64_t width = int64_t{1} << shift;
  return low + width / 2;
}

void Histogram::record(int64_t value) { record_n(value, 1); }

void Histogram::record_n(int64_t value, uint64_t count) {
  if (count == 0) return;
  if (value < 0) value = 0;
  const size_t idx = bucket_index(value);  // always within the pre-size
  counts_[idx] += count;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  count_ += count;
  sum_ += value * static_cast<int64_t>(count);
}

void Histogram::merge(const Histogram& other) {
  assert(sub_bucket_bits_ == other.sub_bucket_bits_);
  if (other.count_ == 0) return;
  if (other.counts_.size() > counts_.size()) counts_.resize(other.counts_.size(), 0);
  for (size_t i = 0; i < other.counts_.size(); ++i) counts_[i] += other.counts_[i];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

int64_t Histogram::percentile(double p) const {
  if (count_ == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  // Rank of the requested percentile, 1-based, ceil semantics.
  const auto target = static_cast<uint64_t>(
      std::max<double>(1.0, p / 100.0 * static_cast<double>(count_)));
  uint64_t cum = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    cum += counts_[i];
    if (cum >= target) {
      // Clamp the representative value into the observed range so p0/p100
      // return the true min/max rather than bucket midpoints.
      return std::clamp(bucket_value(i), min_, max_);
    }
  }
  return max_;
}

double Histogram::mean() const {
  if (count_ == 0) return 0.0;
  return static_cast<double>(sum_) / static_cast<double>(count_);
}

void Histogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
}

std::string Histogram::summary_us() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "avg=%.1fus p50=%.1fus p95=%.1fus p99=%.1fus max=%.1fus",
                mean() / 1e3, percentile(50) / 1e3, percentile(95) / 1e3,
                percentile(99) / 1e3, static_cast<double>(max()) / 1e3);
  return buf;
}

}  // namespace hyperloop::stats
