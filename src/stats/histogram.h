// Log-bucketed latency histogram (HdrHistogram-style).
//
// Values are bucketed by power-of-two magnitude with a fixed number of
// linear sub-buckets per magnitude, giving bounded relative error (~1.6%
// with 64 sub-buckets) over an arbitrary range with O(1) record cost and
// a few KB of memory — suitable for recording millions of simulated
// latencies per experiment.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hyperloop::stats {

/// A histogram over non-negative int64 values (nanoseconds by convention).
class Histogram {
 public:
  /// `sub_bucket_bits`: linear sub-buckets per power of two = 2^bits.
  explicit Histogram(int sub_bucket_bits = 6);

  /// Records one value. Negative values are clamped to zero.
  void record(int64_t value);

  /// Records `count` occurrences of `value`.
  void record_n(int64_t value, uint64_t count);

  /// Merges another histogram (same sub_bucket_bits) into this one.
  void merge(const Histogram& other);

  /// Value at percentile `p` in [0, 100]. Returns 0 for an empty
  /// histogram. The result is the representative (upper-edge midpoint)
  /// value of the bucket containing the requested rank.
  int64_t percentile(double p) const;

  int64_t min() const { return count_ == 0 ? 0 : min_; }
  int64_t max() const { return count_ == 0 ? 0 : max_; }
  double mean() const;
  uint64_t count() const { return count_; }
  int64_t sum() const { return sum_; }

  void reset();

  /// "avg/p50/p95/p99/max" in microseconds, for experiment tables.
  std::string summary_us() const;

 private:
  size_t bucket_index(int64_t value) const;
  int64_t bucket_value(size_t index) const;

  int sub_bucket_bits_;
  int64_t sub_buckets_;  // 2^sub_bucket_bits_
  std::vector<uint64_t> counts_;
  uint64_t count_ = 0;
  int64_t sum_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

}  // namespace hyperloop::stats
