// Pooled, refcounted packet payload buffers.
//
// Every simulated RDMA hop used to copy a std::vector<uint8_t> payload:
// the NIC gathered into a fresh vector, Network::transmit copied it into
// the delivery closure, the RC transport kept one copy in the unacked
// window and another in the responder's duplicate-response cache. With a
// 3-replica chain that is ~4 allocations and ~4 full copies per hop.
//
// PayloadBuf replaces those with one refcounted block drawn from a
// size-class pool: copying a Packet bumps a refcount instead of copying
// bytes, and releasing the last reference returns the block to a free
// list instead of the allocator. The simulation is single-threaded (one
// EventLoop drives all NICs), so refcounts and pool free lists are plain
// integers/pointers — no atomics.
//
// Two zero-copy extensions keep large payloads single-copy end to end:
//
//  * slice(off, len) — a sub-range view sharing the parent block
//    (refcount bump, no bytes move). Handles carry an (offset, length)
//    window over the block, so a slice is just a narrower window.
//
//  * borrow(...) — wraps an existing HostMemory extent without copying:
//    the block points at the arena bytes and registers itself with the
//    arena's BorrowRegistry. Before any overlapping arena mutation (or
//    arena teardown) the registry *materializes* the block — one memcpy
//    of the old bytes into the block's own pool storage (acquired up
//    front, so materialization never allocates). Until then every
//    sharer — the in-flight packet, the retransmit window, the response
//    cache — reads the arena directly.
#pragma once

#include <cstddef>
#include <cstdint>

namespace hyperloop::rdma {

/// A shared, pooled byte buffer. Value semantics: copies share the block
/// (refcount), destruction releases it back to the pool. Writers must
/// fill the buffer before sharing it; after that, treat contents as
/// immutable (all sharers observe the same block).
class PayloadBuf {
  struct Block;

 public:
  class BorrowRegistry;

  PayloadBuf() = default;
  PayloadBuf(const PayloadBuf& o) : b_(o.b_), off_(o.off_), len_(o.len_) {
    if (b_ != nullptr) ++b_->refs;
  }
  PayloadBuf(PayloadBuf&& o) noexcept : b_(o.b_), off_(o.off_), len_(o.len_) {
    o.b_ = nullptr;
  }
  PayloadBuf& operator=(const PayloadBuf& o) {
    if (o.b_ != nullptr) ++o.b_->refs;
    release();
    b_ = o.b_;
    off_ = o.off_;
    len_ = o.len_;
    return *this;
  }
  PayloadBuf& operator=(PayloadBuf&& o) noexcept {
    if (this != &o) {
      release();
      b_ = o.b_;
      off_ = o.off_;
      len_ = o.len_;
      o.b_ = nullptr;
    }
    return *this;
  }
  ~PayloadBuf() { release(); }

  /// Detaches from any shared block and acquires a fresh, zero-filled
  /// exclusive block of `n` bytes (n == 0 releases to empty).
  void resize(size_t n);

  /// Like resize() but leaves the bytes uninitialized — for gather paths
  /// that overwrite the whole buffer immediately.
  void resize_uninit(size_t n);

  /// Drops this reference (block returns to the pool when unshared).
  void reset() { release(); }

  /// A view of [off, off+len) of this buffer, sharing the block: no
  /// bytes move, the parent handle may be released before the slice.
  PayloadBuf slice(size_t off, size_t len) const;

  /// Wraps `len` bytes of a HostMemory arena (`src` = live pointer,
  /// `addr` = arena address) without copying. Pool storage for `len`
  /// bytes is acquired now so the later copy-on-write materialization
  /// is a pure memcpy. The registry materializes the block before any
  /// overlapping arena store and on arena teardown, so sharers never
  /// observe torn or future bytes.
  static PayloadBuf borrow(BorrowRegistry& reg, const uint8_t* src,
                           uint64_t addr, size_t len);

  uint8_t* data() {
    // Borrowed blocks alias arena bytes that only the arena may mutate;
    // this non-const accessor exists for the fill-after-resize pattern,
    // which never runs on a borrowed block.
    return b_ == nullptr ? nullptr
                         : const_cast<uint8_t*>(block_bytes(b_)) + off_;
  }
  const uint8_t* data() const {
    return b_ == nullptr ? nullptr : block_bytes(b_) + off_;
  }
  size_t size() const { return b_ == nullptr ? 0 : len_; }
  bool empty() const { return size() == 0; }

  /// True when both handles reference the same underlying block.
  bool shares_with(const PayloadBuf& o) const {
    return b_ != nullptr && b_ == o.b_;
  }

  /// Number of handles sharing this block (0 for an empty handle).
  uint32_t ref_count() const { return b_ == nullptr ? 0 : b_->refs; }

  /// True while the block still aliases arena bytes (not yet
  /// materialized into its own storage).
  bool borrowed() const { return b_ != nullptr && b_->ext != nullptr; }

  // --- pool introspection (perf gates / tests) ---
  /// Blocks ever obtained from the allocator (pool misses).
  static uint64_t pool_misses();
  /// Blocks handed out from a free list (pool hits).
  static uint64_t pool_hits();
  /// Blocks currently parked on free lists.
  static size_t pool_free_blocks();
  /// Frees all pooled blocks (test isolation).
  static void pool_trim();

  // --- copy discipline (perf gates / tests) ---
  /// Global count of payload bytes memcpy'd between HostMemory and a
  /// payload block on the data plane: WRITE/READ gathers, sink DMA-out
  /// writes, response landings, and borrow materializations. Charged by
  /// Nic/HostMemory via add_bytes_copied; SEND scatter/gather (control
  /// plane descriptors) is excluded. Tests gate on deltas of this.
  static uint64_t bytes_copied();
  static void add_bytes_copied(uint64_t n);

  /// Tracks the borrowed blocks aliasing one HostMemory arena, with a
  /// monotone bounding box for O(1) miss rejection. Owned by the arena;
  /// declared after the byte storage so its destructor (materialize_all)
  /// runs while the arena bytes are still valid.
  class BorrowRegistry {
   public:
    BorrowRegistry() = default;
    BorrowRegistry(const BorrowRegistry&) = delete;
    BorrowRegistry& operator=(const BorrowRegistry&) = delete;
    ~BorrowRegistry() { materialize_all(); }

    /// Copies every borrow overlapping [addr, addr+len) into its own
    /// storage. Call BEFORE mutating the arena range so the borrows
    /// keep the pre-mutation bytes. The no-borrow / outside-the-box
    /// reject stays inline: this sits on every HostMemory store, and
    /// in steady state the registry is almost always empty.
    void materialize_range(uint64_t addr, size_t len) {
      if (head_ == nullptr || addr >= hi_ || addr + len <= lo_) return;
      materialize_overlapping(addr, len);
    }
    /// Materializes everything (arena teardown / crash restore).
    void materialize_all();

    bool empty() const { return head_ == nullptr; }
    /// Live borrowed blocks (tests).
    size_t live() const;

   private:
    friend class PayloadBuf;
    void materialize_overlapping(uint64_t addr, size_t len);
    Block* head_ = nullptr;
    // Bounding box over live borrows; grows monotonically, resets when
    // the list drains. A store outside [lo_, hi_) cannot overlap any
    // borrow, which keeps the common HostMemory::write test O(1).
    uint64_t lo_ = ~uint64_t{0};
    uint64_t hi_ = 0;
  };

 private:
  struct Block {
    uint32_t refs;
    uint32_t size;
    uint8_t size_class;
    Block* next_free;
    // Borrow state: while `ext` is non-null the payload bytes live in a
    // HostMemory arena at `ext` (arena address `ext_addr`) and the block
    // sits on its registry's intrusive list.
    const uint8_t* ext;
    uint64_t ext_addr;
    Block* borrow_next;
    Block* borrow_prev;
    BorrowRegistry* registry;
  };
  // Payload bytes: the arena extent while borrowed, own storage after.
  static const uint8_t* block_bytes(const Block* b) {
    return b->ext != nullptr ? b->ext
                             : reinterpret_cast<const uint8_t*>(b + 1);
  }
  static uint8_t* block_data(Block* b) {
    return reinterpret_cast<uint8_t*>(b + 1);
  }

  static Block* acquire(size_t n);
  static void release_block(Block* b);
  /// Copies the arena bytes into the block's own storage and unlinks it
  /// from the registry (charged to bytes_copied).
  static void materialize(Block* b);
  static void unlink_borrow(Block* b);

  void release() {
    if (b_ != nullptr) {
      release_block(b_);
      b_ = nullptr;
    }
  }

  Block* b_ = nullptr;
  // View window over the block (slices narrow it; whole-block handles
  // have off_ == 0, len_ == b_->size).
  uint32_t off_ = 0;
  uint32_t len_ = 0;
};

}  // namespace hyperloop::rdma
