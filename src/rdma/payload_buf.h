// Pooled, refcounted packet payload buffers.
//
// Every simulated RDMA hop used to copy a std::vector<uint8_t> payload:
// the NIC gathered into a fresh vector, Network::transmit copied it into
// the delivery closure, the RC transport kept one copy in the unacked
// window and another in the responder's duplicate-response cache. With a
// 3-replica chain that is ~4 allocations and ~4 full copies per hop.
//
// PayloadBuf replaces those with one refcounted block drawn from a
// size-class pool: copying a Packet bumps a refcount instead of copying
// bytes, and releasing the last reference returns the block to a free
// list instead of the allocator. The simulation is single-threaded (one
// EventLoop drives all NICs), so refcounts and pool free lists are plain
// integers/pointers — no atomics.
#pragma once

#include <cstddef>
#include <cstdint>

namespace hyperloop::rdma {

/// A shared, pooled byte buffer. Value semantics: copies share the block
/// (refcount), destruction releases it back to the pool. Writers must
/// fill the buffer before sharing it; after that, treat contents as
/// immutable (all sharers observe the same block).
class PayloadBuf {
 public:
  PayloadBuf() = default;
  PayloadBuf(const PayloadBuf& o) : b_(o.b_) {
    if (b_ != nullptr) ++b_->refs;
  }
  PayloadBuf(PayloadBuf&& o) noexcept : b_(o.b_) { o.b_ = nullptr; }
  PayloadBuf& operator=(const PayloadBuf& o) {
    if (o.b_ != nullptr) ++o.b_->refs;
    release();
    b_ = o.b_;
    return *this;
  }
  PayloadBuf& operator=(PayloadBuf&& o) noexcept {
    if (this != &o) {
      release();
      b_ = o.b_;
      o.b_ = nullptr;
    }
    return *this;
  }
  ~PayloadBuf() { release(); }

  /// Detaches from any shared block and acquires a fresh, zero-filled
  /// exclusive block of `n` bytes (n == 0 releases to empty).
  void resize(size_t n);

  /// Like resize() but leaves the bytes uninitialized — for gather paths
  /// that overwrite the whole buffer immediately.
  void resize_uninit(size_t n);

  /// Drops this reference (block returns to the pool when unshared).
  void reset() { release(); }

  uint8_t* data() { return b_ == nullptr ? nullptr : block_data(b_); }
  const uint8_t* data() const {
    return b_ == nullptr ? nullptr : block_data(b_);
  }
  size_t size() const { return b_ == nullptr ? 0 : b_->size; }
  bool empty() const { return size() == 0; }

  /// True when both handles reference the same underlying block.
  bool shares_with(const PayloadBuf& o) const {
    return b_ != nullptr && b_ == o.b_;
  }

  /// Number of handles sharing this block (0 for an empty handle).
  uint32_t ref_count() const { return b_ == nullptr ? 0 : b_->refs; }

  // --- pool introspection (perf gates / tests) ---
  /// Blocks ever obtained from the allocator (pool misses).
  static uint64_t pool_misses();
  /// Blocks handed out from a free list (pool hits).
  static uint64_t pool_hits();
  /// Blocks currently parked on free lists.
  static size_t pool_free_blocks();
  /// Frees all pooled blocks (test isolation).
  static void pool_trim();

 private:
  struct Block {
    uint32_t refs;
    uint32_t size;
    uint8_t size_class;
    Block* next_free;
  };
  // Payload bytes live immediately after the header.
  static uint8_t* block_data(Block* b) {
    return reinterpret_cast<uint8_t*>(b + 1);
  }

  static Block* acquire(size_t n);
  static void release_block(Block* b);

  void release() {
    if (b_ != nullptr) {
      release_block(b_);
      b_ = nullptr;
    }
  }

  Block* b_ = nullptr;
};

}  // namespace hyperloop::rdma
