// Completion queues.
//
// Besides the usual poll/notify interface, each CQ keeps a *monotonic
// completion counter*. That counter is what CORE-Direct WAIT WQEs observe:
// a WAIT posted with absolute threshold T unblocks its queue once the
// target CQ has seen >= T completions. HyperLoop's replica chains are
// built entirely from these counters (recv CQ of the upstream QP, send CQ
// of the local loopback QP).
//
// Datapath notes: CQEs live in a flat power-of-two ring (grown to the
// workload's high-water mark, then allocation-free), and the notify /
// watcher callbacks use SmallFn inline storage so arming a notification
// never heap-allocates.
#pragma once

#include <cstdint>

#include "sim/ring.h"
#include "sim/small_fn.h"

namespace hyperloop::rdma {

/// Completion status.
enum class CqStatus : uint8_t {
  kSuccess = 0,
  kRemoteAccessError = 1,  ///< rkey/bounds/permission violation at responder
  kLocalProtectionError = 2,
};

/// A completion entry.
struct Cqe {
  uint64_t wr_id = 0;
  uint32_t qpn = 0;
  uint8_t opcode = 0;  ///< rdma::Opcode of the completed WR
  CqStatus status = CqStatus::kSuccess;
  uint32_t byte_len = 0;
  uint32_t imm = 0;
  bool has_imm = false;
};

/// A completion queue with event notification and a WAIT-visible counter.
///
/// `capacity == 0` makes the CQ *counting-only*: pushes bump the counter
/// (and fire notify/watchers) but retain no CQE, so poll() always returns
/// false. HyperLoop's chain CQs are consumed exclusively through WAIT
/// thresholds and never polled — a counting-only CQ keeps them from
/// accumulating thousands of dead CQEs (and the ring growth that entails)
/// per ring wrap.
class CompletionQueue {
 public:
  explicit CompletionQueue(uint32_t id, size_t capacity = 4096)
      : id_(id), capacity_(capacity) {}

  uint32_t id() const { return id_; }

  /// Pushes a completion: bumps the monotonic counter, enqueues the CQE
  /// (dropping the oldest on overflow), fires the armed notify callback,
  /// and runs NIC-internal watchers (WAIT re-evaluation).
  void push(const Cqe& cqe);

  /// Polls one CQE. Returns false if empty.
  bool poll(Cqe* out);

  /// Drains up to `max` CQEs into `out`; returns the number drained.
  size_t poll_many(Cqe* out, size_t max);

  size_t available() const { return queue_.size(); }

  /// Monotonic count of completions ever pushed (WAIT threshold domain).
  uint64_t completion_count() const { return completion_count_; }

  /// Arms one-shot event notification (ibv_req_notify_cq semantics): the
  /// callback fires on the next push, then must be re-armed.
  void set_notify(sim::SmallFn<void()> fn) { notify_ = std::move(fn); }
  void arm_notify() { armed_ = true; }

  /// NIC-internal hook, fired on *every* push with the new counter value;
  /// used to wake queues blocked on WAIT WQEs.
  void set_counter_watcher(sim::SmallFn<void(uint64_t)> fn) {
    watcher_ = std::move(fn);
  }

  uint64_t dropped() const { return dropped_; }

  /// Intrusive FIFO of QPs whose head WAIT WQE is blocked on this CQ:
  /// head/tail QPNs of a singly-linked list threaded through
  /// QueuePair::next_wait_qpn. Owned and maintained by the Nic; nothing
  /// else may touch these.
  uint32_t wait_head_qpn = 0;
  uint32_t wait_tail_qpn = 0;

 private:
  uint32_t id_;
  size_t capacity_;
  sim::Ring<Cqe> queue_;
  uint64_t completion_count_ = 0;
  uint64_t dropped_ = 0;
  bool armed_ = false;
  sim::SmallFn<void()> notify_;
  sim::SmallFn<void(uint64_t)> watcher_;
};

}  // namespace hyperloop::rdma
