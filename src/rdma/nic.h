// The simulated RDMA NIC.
//
// Executes send-queue WQEs per QP in order, with three HyperLoop-enabling
// behaviours on top of ordinary verbs:
//
//   1. WAIT (CORE-Direct): a kWait WQE blocks its queue until a target CQ's
//      monotonic completion counter reaches a threshold — no CPU involved.
//   2. Deferred ownership: post_send(..., deferred=true) leaves the WQE's
//      `active` byte clear; the engine stalls at it until a later DMA
//      (typically an inbound RECV scatter) patches the descriptor and sets
//      `active` — the paper's modified-libmlx4 behaviour.
//   3. Durability: inbound 0-byte READs (gFLUSH) write the NIC's pending
//      volatile writes back to the NVM durable domain before responding.
//
// Costs: every WQE charges engine time; packets charge per-byte DMA and
// serialize on Network ports. No CPU scheduler interaction ever happens
// here — that asymmetry versus the Naïve baseline is the paper's thesis.
//
// Datapath layout: QPs and CQs live in dense generation-tagged slot
// tables (SlotTable), so per-packet QPN resolution is an array probe, and
// a QPN held by an in-flight packet goes stale when its QP is destroyed —
// the packet is dropped (counted in invalid_qp_drops) instead of hitting
// whichever QP later recycled the slot. The requester retransmit window
// is a per-QP ring ordered by PSN carrying the completion bookkeeping
// inline; WAIT wakeups use an intrusive per-CQ list threaded through the
// QPs; and DMA-patch wakeups scan only the QPs actually stalled at an
// inactive descriptor. Steady-state RX/TX touches no hash map and
// performs no heap allocation (locked in by tests/nic_alloc_test.cc).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "nvm/nvm_device.h"
#include "rdma/completion_queue.h"
#include "rdma/memory.h"
#include "rdma/network.h"
#include "rdma/queue_pair.h"
#include "rdma/slot_table.h"
#include "rdma/wqe.h"
#include "sim/event_loop.h"

namespace hyperloop::rdma {

class Nic {
 public:
  struct Config {
    uint32_t default_sq_slots = 512;
    /// Engine occupancy per WQE (fetch + process + doorbell amortized).
    sim::Duration wqe_cost = sim::nsec(200);
    /// Fixed cost to receive/parse one inbound packet.
    sim::Duration rx_base_cost = sim::nsec(150);
    /// Host DMA cost per byte (gathers, scatters, local copies).
    double dma_ns_per_byte = 0.05;
    /// Extra cost for an atomic execute.
    sim::Duration cas_cost = sim::nsec(250);
    /// Cost to consume a satisfied WAIT.
    sim::Duration wait_cost = sim::nsec(50);
    /// RC retransmission timeout (go-back-N on loss).
    sim::Duration retransmit_timeout = sim::usec(100);
    /// Capped exponential backoff: each consecutive no-progress
    /// retransmission round doubles the retry timer, up to this cap.
    sim::Duration max_retransmit_backoff = sim::msec(10);
    /// After this many consecutive no-progress rounds the requester stops
    /// re-arming the retry timer (receiver-not-ready parking means the
    /// responder delivers and ACKs once a RECV is posted; a later
    /// post_send or ACK progress re-arms and resets the backoff). This
    /// bounds the event-loop work a stalled peer can generate — without
    /// it an RNR-parked request retransmits forever and run() never
    /// drains. 0 = retry forever.
    uint32_t rnr_retry_limit = 7;
    /// On-NIC connection-context cache (§7: "the scalability of RDMA NICs
    /// decreases with the number of active write-QPs"). Touching a QP
    /// whose context is not resident fetches it from host memory, costing
    /// `qp_cache_miss_cost`. Residency is tracked by a clock (second-
    /// chance) replacement over `qp_cache_entries` slots with O(1)
    /// lookups via a per-QP backpointer — behaviorally LRU-like without
    /// the per-touch list walk. 0 disables the model (infinite cache).
    uint32_t qp_cache_entries = 0;
    sim::Duration qp_cache_miss_cost = sim::nsec(400);
  };

  struct Counters {
    uint64_t wqes_executed = 0;
    uint64_t wqes_posted = 0;  ///< send WQEs written into rings
    uint64_t doorbells = 0;    ///< doorbell rings (wqes_posted/doorbells =
                               ///< WQEs per doorbell, the coalescing ratio)
    uint64_t packets_tx = 0;
    uint64_t packets_rx = 0;
    uint64_t bytes_tx = 0;
    uint64_t flushes = 0;
    uint64_t rnr_stalls = 0;
    uint64_t remote_access_errors = 0;
    uint64_t retransmits = 0;         ///< go-back-N resends
    uint64_t duplicates_dropped = 0;  ///< stale PSN requests suppressed
    uint64_t out_of_order_dropped = 0;
    uint64_t invalid_qp_drops = 0;  ///< packets for destroyed/unknown QPNs
    uint64_t qp_cache_misses = 0;
    uint64_t qp_cache_hits = 0;
    /// Data-plane payload bytes this NIC memcpy'd between HostMemory and
    /// packet buffers (WRITE/READ gathers unless zero-copy borrowed, sink
    /// DMA-out writes, response landings). SEND descriptor blobs excluded.
    /// The global cross-NIC total (incl. borrow materializations) is
    /// PayloadBuf::bytes_copied().
    uint64_t payload_bytes_copied = 0;
  };

  Nic(sim::EventLoop& loop, Network& net, HostMemory& mem,
      nvm::NvmDevice* nvm, Config cfg);
  Nic(sim::EventLoop& loop, Network& net, HostMemory& mem,
      nvm::NvmDevice* nvm)
      : Nic(loop, net, mem, nvm, Config()) {}
  Nic(const Nic&) = delete;
  Nic& operator=(const Nic&) = delete;

  NicId id() const { return id_; }
  HostMemory& memory() { return mem_; }
  nvm::NvmDevice* nvm() { return nvm_; }
  MrTable& mr_table() { return mrs_; }
  const Counters& counters() const { return counters_; }
  const Config& config() const { return cfg_; }

  /// Registers [addr, addr+len) for the given access.
  MemoryRegion register_mr(Addr addr, uint64_t len, uint32_t access) {
    return mrs_.register_mr(addr, len, access);
  }

  CompletionQueue* create_cq(size_t capacity = 4096);

  /// Creates a QP whose send queue (sq_slots WQE slots) is carved from
  /// host memory. The ring is *not* registered for remote access here;
  /// HyperLoop group setup registers it explicitly (that registration is
  /// the paper's security-sensitive step).
  QueuePair* create_qp(CompletionQueue* send_cq, CompletionQueue* recv_cq,
                       uint32_t sq_slots = 0);

  /// Creates a self-targeting QP for local DMA (gCAS/gMEMCPY executor).
  QueuePair* create_loopback_qp(CompletionQueue* send_cq,
                                uint32_t sq_slots = 0);

  /// Connects a QP to a remote NIC/QP (reliable connection).
  void connect(QueuePair* qp, NicId remote_nic, uint32_t remote_qpn);

  /// Destroys a QP and retires its QPN (generation bump): packets already
  /// in flight toward it resolve to nothing and are dropped as
  /// invalid_qp_drops, even after the slot is recycled by a later
  /// create_qp. The engine must be idle (no in-progress WQE execution).
  void destroy_qp(QueuePair* qp);

  /// Destroys a CQ. No QP may be blocked on it or using it.
  void destroy_cq(CompletionQueue* cq);

  /// Posts a send WQE. With `deferred_ownership` the WQE is written with
  /// active=0 and the engine will stall at it until a DMA patch (or
  /// grant_ownership) activates it. Returns the WQE's slot sequence.
  /// Equivalent to stage_send() + ring_doorbell(): one doorbell per WQE.
  uint64_t post_send(QueuePair* qp, Wqe wqe, bool deferred_ownership = false);

  /// Batched-post half of post_send: writes the WQE into the ring without
  /// ringing the doorbell. Stage N WQEs, then ring_doorbell() once — the
  /// engine fetches the whole staged span off a single doorbell instead
  /// of one DMA-fetch wakeup per WQE (the driver-side coalescing real
  /// NICs get from ibv_post_send with a linked WR list).
  uint64_t stage_send(QueuePair* qp, Wqe wqe, bool deferred_ownership = false);

  /// Makes everything staged on `qp` visible to the engine. Counted in
  /// Counters::doorbells; post-only sequences that never doorbell are a
  /// bug (staged WQEs execute only after the next doorbell or WAIT wake).
  void ring_doorbell(QueuePair* qp);

  /// Activates a previously deferred WQE (local driver path).
  void grant_ownership(QueuePair* qp, uint64_t slot_seq);

  /// Posts a receive WQE.
  void post_recv(QueuePair* qp, RecvWqe wqe);

  /// Creates a shared receive queue.
  SharedReceiveQueue* create_srq();

  /// Attaches a QP to an SRQ: its inbound SEND/WRITE_IMM traffic consumes
  /// SRQ WQEs instead of per-QP RECVs.
  void attach_srq(QueuePair* qp, SharedReceiveQueue* srq);

  /// Detaches a QP from its SRQ (membership is tracked by QPN, so this is
  /// safe with packets in flight and with parked receiver-not-ready
  /// packets — those stay parked until the QP is reattached or RECVs are
  /// posted directly).
  void detach_srq(QueuePair* qp);

  /// Posts a receive WQE to an SRQ (re-plays any receiver-not-ready
  /// packet parked on an attached QP).
  void post_srq_recv(SharedReceiveQueue* srq, RecvWqe wqe);

  QueuePair* qp(uint32_t qpn) { return qps_.get(qpn); }
  CompletionQueue* cq(uint32_t id) { return cqs_.get(id); }

  /// Context-fetch cost for touching `qpn` (0 on a cache hit); promotes
  /// the context to resident. Exposed for the scalability microbenches —
  /// the data path calls it on every WQE execution and packet receive.
  sim::Duration qp_context_touch(uint32_t qpn);

 private:
  // --- send-side engine ---
  void kick(QueuePair* qp);
  // Examines the head WQE synchronously and schedules its execution at
  // now + lead + wqe_cost (+ context fetch); consumes satisfied WAITs
  // inline. `lead` is the residual occupancy of whatever just finished
  // (payload gather, local DMA), so fusing the step into the caller's
  // event leaves execution timestamps unchanged.
  void engine_step(QueuePair* qp, sim::Duration lead = 0);
  void execute(QueuePair* qp, const Wqe& w);
  void execute_local(QueuePair* qp, const Wqe& w);
  void execute_remote(QueuePair* qp, const Wqe& w);
  sim::Duration dma_cost(size_t bytes) const;
  void local_completion(QueuePair* qp, const Wqe& w, CqStatus status,
                        uint32_t bytes);

  // --- receive side ---
  void on_packet(Packet p);
  void handle_packet(Packet p);
  // Post-PSN-gate delivery. Called directly when replaying a parked
  // receiver-not-ready packet (whose PSN was already accepted when it
  // first arrived and parked).
  void dispatch_packet(Packet p);
  void responder_send(Packet& p, QueuePair* dst);
  void responder_write(Packet& p);
  void responder_read(Packet& p);
  void responder_cas(Packet& p);
  void requester_response(Packet& p);
  void send_response(const Packet& req, Packet::Type type,
                     PayloadBuf payload, uint8_t status);

  // Wakes queues stalled at an inactive head WQE whose slot bytes were
  // just written by a DMA. Scans only dma_watch_ (the stalled QPs), not
  // the whole QP table.
  void after_dma_write(Addr addr, size_t len);

  // --- RC transport ---
  // Records the outgoing request in the QP's retransmit window (with its
  // completion bookkeeping) and arms the lazy retry timer.
  void track_request(QueuePair* qp, const Packet& p, const PendingWr& wr);
  // Current backoff interval for a QP that has seen `rounds` consecutive
  // no-progress retransmission rounds (capped exponential).
  sim::Duration retry_interval(uint32_t rounds) const;
  // Schedules retry_fire at the QP's current retry_deadline. The timer is
  // lazy: ACK progress just moves the deadline field, and a timer that
  // fires before it re-parks itself instead of being cancelled/re-armed
  // per acknowledged window.
  void arm_retry_timer(QueuePair* qp);
  void retry_fire(uint32_t qpn);
  // Responder-side PSN gate; returns true if the packet should be
  // processed (in order), false if it was handled as dup/out-of-order.
  bool psn_accept(Packet& p);
  void cache_response(QueuePair* qp, uint64_t psn, const Packet& resp);

  // WAIT bookkeeping: intrusive FIFO per CQ, threaded through
  // QueuePair::next_wait_qpn.
  void block_on_cq(QueuePair* qp, uint32_t cq_id);
  void on_cq_advance(uint32_t cq_id);
  void unlink_waiter(QueuePair* qp);

  sim::EventLoop& loop_;
  Network& net_;
  HostMemory& mem_;
  nvm::NvmDevice* nvm_;
  Config cfg_;
  NicId id_;
  MrTable mrs_;
  Counters counters_;

  uint64_t next_wr_seq_ = 1;
  sim::Time rx_busy_until_ = 0;

  SlotTable<QueuePair> qps_;
  SlotTable<CompletionQueue> cqs_;
  std::vector<std::unique_ptr<SharedReceiveQueue>> srqs_;
  /// QPNs whose engine is stalled at an inactive (deferred-ownership)
  /// head WQE, i.e. the only queues a DMA patch could wake. Entries are
  /// removed lazily (QueuePair::on_dma_watch is authoritative).
  std::vector<uint32_t> dma_watch_;
  std::vector<uint32_t> dma_watch_scratch_;

  /// One resident context in the connection-context cache.
  struct QpCacheSlot {
    uint32_t qpn = 0;
    uint8_t ref = 0;  ///< clock reference bit (set on touch)
    bool live = false;
  };
  std::vector<QpCacheSlot> qp_cache_slots_;  ///< grows up to qp_cache_entries
  uint32_t qp_clock_hand_ = 0;
};

}  // namespace hyperloop::rdma
