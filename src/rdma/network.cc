#include "rdma/network.h"

#include <cassert>
#include <utility>

namespace hyperloop::rdma {

NicId Network::attach(
    sim::SmallFn<void(Packet)> on_packet,
    sim::SmallFn<void(NicId, std::vector<uint8_t>)> on_datagram) {
  const NicId id = static_cast<NicId>(endpoints_.size());
  endpoints_.push_back(
      Endpoint{std::move(on_packet), std::move(on_datagram), 0});
  return id;
}

void Network::set_datagram_handler(
    NicId id, sim::SmallFn<void(NicId, std::vector<uint8_t>)> fn) {
  assert(id < endpoints_.size());
  endpoints_[id].on_datagram = std::move(fn);
}

sim::Duration Network::serialize_time(size_t bytes) const {
  const double ns = static_cast<double>(bytes) * 8.0 / cfg_.bandwidth_bps * 1e9;
  return static_cast<sim::Duration>(ns) + 1;  // never zero: keeps FIFO strict
}

sim::Time Network::schedule_tx(NicId src, size_t bytes) {
  assert(src < endpoints_.size());
  Endpoint& ep = endpoints_[src];
  const sim::Time start = std::max(loop_.now(), ep.tx_busy_until);
  const sim::Time tx_end = start + serialize_time(bytes);
  ep.tx_busy_until = tx_end;
  return tx_end + cfg_.propagation_delay;
}

template <typename P>
void Network::transmit_impl(P&& pkt) {
  assert(pkt.dst_nic < endpoints_.size());
  const sim::Time arrival = schedule_tx(pkt.src_nic, pkt.wire_bytes());
  if (cfg_.loss_probability > 0 && loss_rng_.chance(cfg_.loss_probability)) {
    ++packets_dropped_;
    return;  // eaten by the fabric; RC retransmission recovers
  }
  // std::forward: an rvalue argument is moved into the closure, a
  // retransmit/replay lvalue is copy-constructed straight into it (the
  // caller's window/cache slot keeps the original).
  auto deliver = [this, p = std::forward<P>(pkt)]() mutable {
    ++packets_delivered_;
    endpoints_[p.dst_nic].on_packet(std::move(p));
  };
  // Fabric delivery is scheduled once per packet per hop; keep the closure
  // within the event loop's inline storage so it never heap-allocates.
  static_assert(sizeof(deliver) <= sim::EventLoop::kInlineCallbackBytes,
                "packet delivery closure must stay inline in the event loop");
  loop_.schedule_at(arrival, std::move(deliver));
}

void Network::transmit(Packet&& pkt) { transmit_impl(std::move(pkt)); }

void Network::transmit(const Packet& pkt) { transmit_impl(pkt); }

void Network::transmit_datagram(NicId src, NicId dst,
                                std::vector<uint8_t> bytes) {
  assert(dst < endpoints_.size());
  const sim::Time arrival = schedule_tx(src, bytes.size() + 64);
  auto deliver = [this, src, dst, b = std::move(bytes)]() mutable {
    assert(endpoints_[dst].on_datagram && "no datagram handler registered");
    endpoints_[dst].on_datagram(src, std::move(b));
  };
  static_assert(sizeof(deliver) <= sim::EventLoop::kInlineCallbackBytes,
                "datagram delivery closure must stay inline in the event loop");
  loop_.schedule_at(arrival, std::move(deliver));
}

}  // namespace hyperloop::rdma
