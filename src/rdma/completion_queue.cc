#include "rdma/completion_queue.h"

namespace hyperloop::rdma {

void CompletionQueue::push(const Cqe& cqe) {
  ++completion_count_;
  if (capacity_ > 0) {
    if (queue_.size() >= capacity_) {
      queue_.pop_front();
      ++dropped_;
    }
    queue_.push_back(cqe);
  }
  if (armed_ && notify_) {
    armed_ = false;
    notify_();
  }
  if (watcher_) watcher_(completion_count_);
}

bool CompletionQueue::poll(Cqe* out) {
  if (queue_.empty()) return false;
  *out = queue_.front();
  queue_.pop_front();
  return true;
}

size_t CompletionQueue::poll_many(Cqe* out, size_t max) {
  size_t n = 0;
  while (n < max && poll(out + n)) ++n;
  return n;
}

}  // namespace hyperloop::rdma
