// The simulated fabric: a full-mesh of point-to-point links between NICs.
//
// Model: each NIC has one full-duplex port. An egress transmission
// serializes on the sender's port at `bandwidth` and then propagates for
// `propagation_delay`. Because every packet from a given NIC serializes on
// the same port and propagation is constant, delivery is FIFO per source —
// which provides the in-order guarantees HyperLoop relies on (WRITE data
// lands before the SEND metadata that references it).
//
// The same fabric also carries "datagrams" for the kernel-TCP baseline
// (src/core/tcp_stack.*): opaque byte blobs delivered to a per-NIC handler.
#pragma once

#include <cstdint>
#include <vector>

#include "rdma/packet.h"
#include "sim/event_loop.h"
#include "sim/rng.h"
#include "sim/small_fn.h"

namespace hyperloop::rdma {

class Network {
 public:
  struct Config {
    /// Link bandwidth in bits per second (paper testbed: 56 Gbps).
    double bandwidth_bps = 56e9;
    /// One-way propagation + switching delay.
    sim::Duration propagation_delay = sim::nsec(900);
    /// Probability that a packet is dropped in flight (fault injection;
    /// the NICs' RC transport recovers via PSN-ordered retransmission).
    double loss_probability = 0.0;
    /// Seed for the loss process.
    uint64_t loss_seed = 0x10552;
  };

  Network(sim::EventLoop& loop, Config cfg) : loop_(loop), cfg_(cfg) {}
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Attaches an endpoint; `on_packet` receives RDMA packets, and
  /// `on_datagram` (optional) receives raw datagrams. Returns the NicId.
  /// Handlers use SmallFn inline storage: dispatching a packet to an
  /// endpoint is two indirect calls, never a std::function allocation.
  NicId attach(sim::SmallFn<void(Packet)> on_packet,
               sim::SmallFn<void(NicId src, std::vector<uint8_t>)> on_datagram =
                   {});

  /// Installs/replaces the datagram handler for an endpoint (used by the
  /// kernel-TCP baseline, which shares the fabric with RDMA traffic).
  void set_datagram_handler(
      NicId id, sim::SmallFn<void(NicId, std::vector<uint8_t>)> fn);

  /// Transmits an RDMA packet (serializes on the source port). The packet
  /// is moved end to end: into the delivery closure and out to the
  /// endpoint handler — no Packet copy anywhere on the delivery path.
  void transmit(Packet&& pkt);

  /// Retransmit/replay flavor: the caller keeps its copy (retransmit
  /// window slot, duplicate-response cache). The packet is copied exactly
  /// once, directly into the delivery closure (payload bytes are shared
  /// via PayloadBuf refcounting, never duplicated). A packet dropped by
  /// loss injection is not copied at all.
  void transmit(const Packet& pkt);

  /// Transmits a raw datagram of `bytes.size()` bytes from src to dst.
  void transmit_datagram(NicId src, NicId dst, std::vector<uint8_t> bytes);

  /// Wire time for a message of `bytes` bytes at link bandwidth.
  sim::Duration serialize_time(size_t bytes) const;

  uint64_t packets_delivered() const { return packets_delivered_; }
  uint64_t packets_dropped() const { return packets_dropped_; }
  const Config& config() const { return cfg_; }

 private:
  struct Endpoint {
    sim::SmallFn<void(Packet)> on_packet;
    sim::SmallFn<void(NicId, std::vector<uint8_t>)> on_datagram;
    sim::Time tx_busy_until = 0;
  };

  /// Reserves the source port and returns the delivery time.
  sim::Time schedule_tx(NicId src, size_t bytes);

  /// Shared body for both transmit() overloads: P is Packet&& (move into
  /// the delivery closure) or const Packet& (single copy into it).
  template <typename P>
  void transmit_impl(P&& pkt);

  sim::EventLoop& loop_;
  Config cfg_;
  std::vector<Endpoint> endpoints_;
  uint64_t packets_delivered_ = 0;
  uint64_t packets_dropped_ = 0;
  sim::Rng loss_rng_{0x10552};
};

}  // namespace hyperloop::rdma
