#include "rdma/nic.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <utility>

namespace hyperloop::rdma {

Nic::Nic(sim::EventLoop& loop, Network& net, HostMemory& mem,
         nvm::NvmDevice* nvm, Config cfg)
    : loop_(loop), net_(net), mem_(mem), nvm_(nvm), cfg_(cfg) {
  id_ = net_.attach([this](Packet p) { on_packet(std::move(p)); });
}

CompletionQueue* Nic::create_cq(size_t capacity) {
  const uint32_t id = cqs_.alloc();
  auto cq = std::make_unique<CompletionQueue>(id, capacity);
  cq->set_counter_watcher([this, id](uint64_t) { on_cq_advance(id); });
  auto* ptr = cq.get();
  cqs_.install(id, std::move(cq));
  return ptr;
}

void Nic::destroy_cq(CompletionQueue* cq) {
  assert(cq != nullptr);
  assert(cq->wait_head_qpn == 0 && "destroying a CQ with blocked waiters");
  cqs_.erase(cq->id());
}

QueuePair* Nic::create_qp(CompletionQueue* send_cq, CompletionQueue* recv_cq,
                          uint32_t sq_slots) {
  if (sq_slots == 0) sq_slots = cfg_.default_sq_slots;
  auto qp = std::make_unique<QueuePair>();
  qp->qpn = qps_.alloc();
  qp->nic = this;
  qp->sq_slots = sq_slots;
  qp->sq_base = mem_.alloc(uint64_t{sq_slots} * sizeof(Wqe), 64);
  qp->send_cq = send_cq;
  qp->recv_cq = recv_cq;
  auto* ptr = qp.get();
  qps_.install(ptr->qpn, std::move(qp));
  return ptr;
}

QueuePair* Nic::create_loopback_qp(CompletionQueue* send_cq,
                                   uint32_t sq_slots) {
  QueuePair* qp = create_qp(send_cq, nullptr, sq_slots);
  qp->loopback = true;
  qp->connected = true;
  qp->remote_nic = id_;
  qp->remote_qpn = qp->qpn;
  return qp;
}

void Nic::connect(QueuePair* qp, NicId remote_nic, uint32_t remote_qpn) {
  assert(!qp->loopback);
  qp->connected = true;
  qp->remote_nic = remote_nic;
  qp->remote_qpn = remote_qpn;
}

void Nic::destroy_qp(QueuePair* q) {
  assert(q != nullptr);
  // Scheduled engine events capture the QueuePair*; destroying mid-WQE
  // would leave them dangling. Quiesce (drain the send queue) first.
  assert(!q->engine_running && "destroying a QP with an active engine");
  if (q->retry_timer != 0) {
    loop_.cancel(q->retry_timer);
    q->retry_timer = 0;
  }
  if (q->waiting_cqn != 0) unlink_waiter(q);
  q->on_dma_watch = false;  // dma_watch_ entry is cleaned up lazily
  if (q->srq != nullptr) detach_srq(q);
  if (q->ctx_cache_slot >= 0) {
    qp_cache_slots_[static_cast<size_t>(q->ctx_cache_slot)] = QpCacheSlot{};
    q->ctx_cache_slot = -1;
  }
  qps_.erase(q->qpn);
}

uint64_t Nic::post_send(QueuePair* qp, Wqe wqe, bool deferred_ownership) {
  const uint64_t seq = stage_send(qp, wqe, deferred_ownership);
  ring_doorbell(qp);
  return seq;
}

uint64_t Nic::stage_send(QueuePair* qp, Wqe wqe, bool deferred_ownership) {
  assert(qp->sq_depth() < qp->sq_slots && "send queue overflow");
  wqe.d.active = deferred_ownership ? 0 : 1;
  const uint64_t seq = qp->sq_tail++;
  mem_.write_obj(qp->slot_addr(seq), wqe);
  ++counters_.wqes_posted;
  return seq;
}

void Nic::ring_doorbell(QueuePair* qp) {
  ++counters_.doorbells;
  kick(qp);
}

void Nic::grant_ownership(QueuePair* qp, uint64_t slot_seq) {
  const Addr a = qp->slot_addr(slot_seq);
  auto w = mem_.read_obj<Wqe>(a);
  w.d.active = 1;
  mem_.write_obj(a, w);
  kick(qp);
}

void Nic::post_recv(QueuePair* qp, RecvWqe wqe) {
  qp->recv_queue.push_back(std::move(wqe));
  // Replay a receiver-not-ready packet if one is parked. It already
  // passed the PSN gate when it first arrived, so it must bypass
  // psn_accept (which would now misread it as a duplicate).
  if (!qp->stalled_inbound.empty()) {
    Packet p = std::move(qp->stalled_inbound.front());
    qp->stalled_inbound.pop_front();
    dispatch_packet(std::move(p));
  }
}

SharedReceiveQueue* Nic::create_srq() {
  auto srq = std::make_unique<SharedReceiveQueue>();
  srq->srqn = static_cast<uint32_t>(srqs_.size()) + 1;
  srqs_.push_back(std::move(srq));
  return srqs_.back().get();
}

void Nic::attach_srq(QueuePair* qp, SharedReceiveQueue* srq) {
  assert(qp->srq == nullptr && "QP already attached to an SRQ");
  qp->srq = srq;
  srq->member_qpns.push_back(qp->qpn);
}

void Nic::detach_srq(QueuePair* qp) {
  SharedReceiveQueue* srq = qp->srq;
  if (srq == nullptr) return;
  qp->srq = nullptr;
  auto& v = srq->member_qpns;
  v.erase(std::remove(v.begin(), v.end(), qp->qpn), v.end());
}

void Nic::post_srq_recv(SharedReceiveQueue* srq, RecvWqe wqe) {
  srq->queue.push_back(std::move(wqe));
  // Replay one parked packet from any attached QP (FIFO across members).
  for (uint32_t qpn : srq->member_qpns) {
    QueuePair* q = qp(qpn);
    if (q == nullptr || q->stalled_inbound.empty()) continue;
    Packet p = std::move(q->stalled_inbound.front());
    q->stalled_inbound.pop_front();
    dispatch_packet(std::move(p));  // PSN was accepted on first arrival
    return;
  }
}

sim::Duration Nic::dma_cost(size_t bytes) const {
  return static_cast<sim::Duration>(cfg_.dma_ns_per_byte *
                                    static_cast<double>(bytes));
}

// ---------------------------------------------------------------- engine --

void Nic::kick(QueuePair* qp) {
  if (qp->engine_running) return;
  qp->engine_running = true;
  qp->blocked_on_wait = false;
  engine_step(qp);
}

void Nic::engine_step(QueuePair* qp, sim::Duration lead) {
  // Fused stepping: the examination runs synchronously in the caller's
  // event (execute tail, kick, or a local-DMA completion) and schedules
  // straight to the next WQE's *execution* instant — one event per WQE
  // instead of a step event plus an execute event. `lead` carries the
  // remaining engine occupancy of the activity that just finished (a
  // payload gather, a consumed WAIT), so execution times are unchanged:
  // next execute fires at now + lead + wqe_cost (+ context fetch).
  // Satisfied WAITs are consumed inline, accumulating their cost into
  // `lead` rather than bouncing through the heap per WAIT.
  for (;;) {
    if (qp->sq_head == qp->sq_tail) {
      qp->engine_running = false;
      return;
    }
    const auto w = mem_.read_obj<Wqe>(qp->slot_addr(qp->sq_head));
    if (static_cast<Opcode>(w.d.opcode) == Opcode::kWait && w.d.active) {
      CompletionQueue* c = cq(w.wait_cq);
      assert(c != nullptr && "WAIT references unknown CQ");
      if (c->completion_count() >= w.wait_threshold) {
        ++qp->sq_head;
        ++counters_.wqes_executed;
        lead += cfg_.wait_cost;
        continue;
      }
      qp->engine_running = false;
      qp->blocked_on_wait = true;
      block_on_cq(qp, w.wait_cq);
      return;
    }
    if (!w.d.active) {
      // Ownership still with the driver; a DMA patch or grant_ownership()
      // will re-kick this queue. Register on the DMA watch list so
      // after_dma_write only scans queues that can actually be woken.
      qp->engine_running = false;
      if (!qp->on_dma_watch) {
        qp->on_dma_watch = true;
        dma_watch_.push_back(qp->qpn);
      }
      return;
    }
    ++qp->sq_head;
    ++counters_.wqes_executed;
    // Re-resolve through the generation-tagged table at fire time: a
    // destroy_qp between schedule and fire (e.g. group teardown with a
    // chain mid-traversal) must drop the WQE, not chase a freed QP.
    loop_.schedule_after(lead + cfg_.wqe_cost + qp_context_touch(qp->qpn),
                         [this, qpn = qp->qpn, w] {
                           if (QueuePair* q = qps_.get(qpn)) execute(q, w);
                         });
    return;
  }
}

sim::Duration Nic::qp_context_touch(uint32_t qpn) {
  if (cfg_.qp_cache_entries == 0) return 0;
  QueuePair* q = qps_.get(qpn);
  if (q == nullptr) {
    // Stale packet for a destroyed QP: charge the fetch, pin nothing.
    ++counters_.qp_cache_misses;
    return cfg_.qp_cache_miss_cost;
  }
  if (q->ctx_cache_slot >= 0) {
    qp_cache_slots_[static_cast<size_t>(q->ctx_cache_slot)].ref = 1;
    ++counters_.qp_cache_hits;
    return 0;
  }
  ++counters_.qp_cache_misses;
  // Miss: install via clock (second-chance) replacement — O(1) amortized,
  // no list walk, regardless of how many QPs the NIC hosts.
  if (qp_cache_slots_.size() < cfg_.qp_cache_entries) {
    q->ctx_cache_slot = static_cast<int32_t>(qp_cache_slots_.size());
    qp_cache_slots_.push_back(QpCacheSlot{qpn, 1, true});
    return cfg_.qp_cache_miss_cost;
  }
  for (;;) {
    QpCacheSlot& s = qp_cache_slots_[qp_clock_hand_];
    const uint32_t hand = qp_clock_hand_;
    qp_clock_hand_ = (qp_clock_hand_ + 1) %
                     static_cast<uint32_t>(qp_cache_slots_.size());
    if (s.live && s.ref != 0) {
      s.ref = 0;  // second chance
      continue;
    }
    if (s.live) {
      if (QueuePair* old = qps_.get(s.qpn)) old->ctx_cache_slot = -1;
    }
    s = QpCacheSlot{qpn, 1, true};
    q->ctx_cache_slot = static_cast<int32_t>(hand);
    return cfg_.qp_cache_miss_cost;
  }
}

void Nic::execute(QueuePair* qp, const Wqe& w) {
  const auto op = static_cast<Opcode>(w.d.opcode);
  const bool local = qp->loopback || op == Opcode::kNop ||
                     op == Opcode::kLocalCopy;
  if (local) {
    execute_local(qp, w);
  } else {
    assert(qp->connected && "WQE posted on unconnected QP");
    execute_remote(qp, w);
  }
}

void Nic::execute_local(QueuePair* qp, const Wqe& w) {
  const auto op = static_cast<Opcode>(w.d.opcode);
  switch (op) {
    case Opcode::kNop: {
      local_completion(qp, w, CqStatus::kSuccess, 0);
      engine_step(qp);
      return;
    }
    case Opcode::kLocalCopy:
    case Opcode::kWrite: {
      // Local DMA copy: local_addr -> remote_addr.
      const sim::Duration cost = dma_cost(w.d.length);
      loop_.schedule_after(cost, [this, qp, w] {
        mem_.copy(w.d.remote_addr, w.d.local_addr, w.d.length);
        after_dma_write(w.d.remote_addr, w.d.length);
        local_completion(qp, w, CqStatus::kSuccess, w.d.length);
        engine_step(qp);
      });
      return;
    }
    case Opcode::kCas: {
      loop_.schedule_after(cfg_.cas_cost, [this, qp, w] {
        uint64_t old = 0;
        mem_.read(w.d.remote_addr, &old, sizeof(old));
        if (old == w.d.compare) {
          mem_.write(w.d.remote_addr, &w.d.swap, sizeof(w.d.swap));
        }
        if (w.d.local_addr != 0) {
          mem_.write(w.d.local_addr, &old, sizeof(old));
          after_dma_write(w.d.local_addr, sizeof(old));
        }
        local_completion(qp, w, CqStatus::kSuccess, 8);
        engine_step(qp);
      });
      return;
    }
    case Opcode::kRead:
    case Opcode::kFlush: {
      // Local flush: write back this NIC's pending volatile writes.
      if (w.d.length == 0 && nvm_ != nullptr) {
        nvm_->persist_all();
        ++counters_.flushes;
      }
      local_completion(qp, w, CqStatus::kSuccess, w.d.length);
      engine_step(qp);
      return;
    }
    default:
      assert(false && "unsupported local opcode");
  }
}

void Nic::execute_remote(QueuePair* qp, const Wqe& w) {
  const auto op = static_cast<Opcode>(w.d.opcode);
  Packet p;
  p.src_nic = id_;
  p.dst_nic = qp->remote_nic;
  p.src_qpn = qp->qpn;
  p.dst_qpn = qp->remote_qpn;
  p.wr_seq = next_wr_seq_++;
  p.remote_addr = w.d.remote_addr;
  p.rkey = w.d.rkey;
  p.length = w.d.length;
  p.imm = w.d.imm;

  PendingWr wr;
  wr.wr_id = w.wr_id;
  wr.opcode = w.d.opcode;
  wr.signaled = w.signaled;
  wr.byte_len = w.d.length;
  wr.land_addr = w.d.local_addr;

  sim::Duration gather_cost = 0;
  switch (op) {
    case Opcode::kWrite:
    case Opcode::kWriteImm:
    case Opcode::kSend: {
      const size_t total = size_t{w.d.length} + w.d.aux_length;
      if ((w.d.flags & kWqeFlagZeroCopy) != 0 && op != Opcode::kSend &&
          w.d.aux_length == 0 && w.d.length > 0) {
        // Chain-forward fast path: alias the region bytes instead of
        // memcpy'ing them into the packet. The borrow materializes
        // (copy-on-write) if anything overwrites the region while the
        // packet — or its retransmit-window / response-cache sharers —
        // is still live.
        p.payload = mem_.borrow_payload(w.d.local_addr, w.d.length);
      } else {
        p.payload.resize_uninit(total);
        if (w.d.length > 0) {
          mem_.read(w.d.local_addr, p.payload.data(), w.d.length);
        }
        if (w.d.aux_length > 0) {
          mem_.read(w.d.aux_addr, p.payload.data() + w.d.length,
                    w.d.aux_length);
        }
        if (op != Opcode::kSend) {
          // Data-plane gather (SENDs carry control-plane descriptor
          // blobs and are excluded from the copy-discipline gate).
          PayloadBuf::add_bytes_copied(total);
          counters_.payload_bytes_copied += total;
        }
      }
      p.length = static_cast<uint32_t>(total);
      p.type = op == Opcode::kWrite      ? Packet::Type::kWrite
               : op == Opcode::kWriteImm ? Packet::Type::kWriteImm
                                         : Packet::Type::kSend;
      // Plain WRITEs only: WRITE_IMM must respond (the immediate drives
      // the client's completion path) and SENDs complete a RECV.
      if (op == Opcode::kWrite && (w.d.flags & kWqeFlagAckElide) != 0) {
        p.flags |= kPacketFlagAckElide;
      }
      // Charged either way: the simulated DMA engine still streams
      // `total` bytes — zero-copy removes the real memmove, not the
      // modeled gather time (keeps latencies and determinism identical).
      gather_cost = dma_cost(total);
      break;
    }
    case Opcode::kRead:
    case Opcode::kFlush: {
      p.type = Packet::Type::kRead;
      if (op == Opcode::kFlush) p.length = 0;
      break;
    }
    case Opcode::kCas: {
      p.type = Packet::Type::kCas;
      p.compare = w.d.compare;
      p.swap = w.d.swap;
      p.length = 8;
      break;
    }
    default:
      assert(false && "unsupported remote opcode");
  }

  p.psn = qp->next_psn++;
  track_request(qp, p, wr);
  ++counters_.packets_tx;
  counters_.bytes_tx += p.wire_bytes();
  net_.transmit(std::move(p));
  // The engine pipelines: the next WQE may transmit before this one is
  // ACKed (RC ordering is preserved by per-port FIFO serialization). The
  // gather occupancy rides into the next WQE's schedule as `lead`.
  engine_step(qp, gather_cost);
}

void Nic::local_completion(QueuePair* qp, const Wqe& w, CqStatus status,
                           uint32_t bytes) {
  if (status != CqStatus::kSuccess) ++counters_.remote_access_errors;
  if (!w.signaled || qp->send_cq == nullptr) return;
  Cqe c;
  c.wr_id = w.wr_id;
  c.qpn = qp->qpn;
  c.opcode = w.d.opcode;
  c.status = status;
  c.byte_len = bytes;
  qp->send_cq->push(c);
}

// --------------------------------------------------------------- receive --

void Nic::on_packet(Packet p) {
  const sim::Duration cost = cfg_.rx_base_cost + dma_cost(p.payload.size()) +
                             qp_context_touch(p.dst_qpn);
  rx_busy_until_ = std::max(loop_.now(), rx_busy_until_) + cost;
  ++counters_.packets_rx;
  auto deliver = [this, pkt = std::move(p)]() mutable {
    handle_packet(std::move(pkt));
  };
  // The per-packet delivery closure is the hottest schedule in the whole
  // simulator; it must fit the event loop's inline callback storage or
  // every hop heap-allocates.
  static_assert(sizeof(deliver) <= sim::EventLoop::kInlineCallbackBytes,
                "packet delivery closure must stay inline in the event loop");
  loop_.schedule_at(rx_busy_until_, std::move(deliver));
}

void Nic::handle_packet(Packet p) {
  // Stale QPN (destroyed QP — possibly with its slot since recycled, in
  // which case the generation tag mismatches) or garbage: drop. A real
  // NIC would also send a NAK; the simulated requester recovers through
  // its retransmission/RNR budget.
  if (qp(p.dst_qpn) == nullptr) {
    ++counters_.invalid_qp_drops;
    return;
  }
  if (p.is_request() && !psn_accept(p)) return;
  dispatch_packet(std::move(p));
}

void Nic::dispatch_packet(Packet p) {
  switch (p.type) {
    case Packet::Type::kSend:
    case Packet::Type::kWriteImm: {
      QueuePair* dst = qp(p.dst_qpn);
      assert(dst != nullptr && "packet for unknown QP");
      sim::Ring<RecvWqe>& pool =
          dst->srq != nullptr ? dst->srq->queue : dst->recv_queue;
      if (pool.empty()) {
        ++counters_.rnr_stalls;
        dst->stalled_inbound.push_back(std::move(p));
        return;
      }
      if (p.type == Packet::Type::kWriteImm) {
        responder_write(p);  // sends the ACK itself
        // Consume a RECV to deliver the immediate.
        RecvWqe r = std::move(pool.front());
        pool.pop_front();
        Cqe c;
        c.wr_id = r.wr_id;
        c.qpn = dst->qpn;
        c.opcode = static_cast<uint8_t>(Opcode::kWriteImm);
        c.byte_len = p.length;
        c.imm = p.imm;
        c.has_imm = true;
        if (dst->recv_cq != nullptr) dst->recv_cq->push(c);
      } else {
        responder_send(p, dst);
      }
      return;
    }
    case Packet::Type::kWrite:
      responder_write(p);
      return;
    case Packet::Type::kRead:
      responder_read(p);
      return;
    case Packet::Type::kCas:
      responder_cas(p);
      return;
    case Packet::Type::kAck:
    case Packet::Type::kReadResp:
    case Packet::Type::kCasResp:
      requester_response(p);
      return;
  }
}

void Nic::responder_send(Packet& p, QueuePair* dst) {
  sim::Ring<RecvWqe>& pool =
      dst->srq != nullptr ? dst->srq->queue : dst->recv_queue;
  RecvWqe r = std::move(pool.front());
  pool.pop_front();

  // Scatter the payload across the RECV's SGE list, in order. This is
  // where remote work-request manipulation happens: SGEs may point at
  // pre-posted WQE descriptors in the send-queue rings.
  size_t off = 0;
  CqStatus status = CqStatus::kSuccess;
  for (const Sge& sge : r.sges) {
    if (off >= p.payload.size()) break;
    const size_t n = std::min<size_t>(sge.length, p.payload.size() - off);
    if (!mrs_.check_local(sge.lkey, sge.addr, n)) {
      status = CqStatus::kLocalProtectionError;
      break;
    }
    mem_.write(sge.addr, p.payload.data() + off, n);
    after_dma_write(sge.addr, n);
    off += n;
  }
  if (off < p.payload.size() && status == CqStatus::kSuccess) {
    // Payload larger than the scatter list.
    status = CqStatus::kLocalProtectionError;
  }

  Cqe c;
  c.wr_id = r.wr_id;
  c.qpn = dst->qpn;
  c.opcode = static_cast<uint8_t>(Opcode::kSend);
  c.status = status;
  c.byte_len = static_cast<uint32_t>(p.payload.size());
  if (dst->recv_cq != nullptr) dst->recv_cq->push(c);

  send_response(p, Packet::Type::kAck, {}, static_cast<uint8_t>(status));
}

void Nic::responder_write(Packet& p) {
  CqStatus status = CqStatus::kSuccess;
  if (!mrs_.check_remote(p.rkey, p.remote_addr, p.payload.size(),
                         kRemoteWrite)) {
    status = CqStatus::kRemoteAccessError;
    ++counters_.remote_access_errors;
  } else if (!p.payload.empty()) {
    // The mandatory sink DMA-out: one copy per replica's region.
    mem_.write(p.remote_addr, p.payload.data(), p.payload.size());
    PayloadBuf::add_bytes_copied(p.payload.size());
    counters_.payload_bytes_copied += p.payload.size();
    after_dma_write(p.remote_addr, p.payload.size());
  }
  // Elided success ACK: the next non-elided response on this QP (the
  // chain trio's FLUSH ReadResp) acknowledges this PSN cumulatively.
  // Errors always respond — the requester must learn the status. Nothing
  // enters the response cache for an elided PSN; a retransmitted elided
  // WRITE replays nothing, and the retransmitted FLUSH behind it replays
  // its cached ReadResp, which re-acknowledges the whole window prefix.
  if (status == CqStatus::kSuccess && (p.flags & kPacketFlagAckElide) != 0) {
    return;
  }
  send_response(p, Packet::Type::kAck, {}, static_cast<uint8_t>(status));
}

void Nic::responder_read(Packet& p) {
  CqStatus status = CqStatus::kSuccess;
  PayloadBuf data;
  if (!mrs_.check_remote(p.rkey, p.remote_addr, p.length, kRemoteRead)) {
    status = CqStatus::kRemoteAccessError;
    ++counters_.remote_access_errors;
  } else if (p.length == 0) {
    // gFLUSH: a 0-byte READ flushes this NIC's volatile writes into the
    // durable domain before the response (= durability ACK) goes back.
    if (nvm_ != nullptr) nvm_->persist_all();
    ++counters_.flushes;
  } else {
    data.resize_uninit(p.length);
    mem_.read(p.remote_addr, data.data(), p.length);
    PayloadBuf::add_bytes_copied(p.length);
    counters_.payload_bytes_copied += p.length;
  }
  send_response(p, Packet::Type::kReadResp, std::move(data),
                static_cast<uint8_t>(status));
}

void Nic::responder_cas(Packet& p) {
  CqStatus status = CqStatus::kSuccess;
  uint64_t old = 0;
  if (!mrs_.check_remote(p.rkey, p.remote_addr, 8, kRemoteAtomic)) {
    status = CqStatus::kRemoteAccessError;
    ++counters_.remote_access_errors;
  } else {
    mem_.read(p.remote_addr, &old, sizeof(old));
    if (old == p.compare) {
      mem_.write(p.remote_addr, &p.swap, sizeof(p.swap));
    }
  }
  PayloadBuf payload;
  payload.resize_uninit(sizeof(old));
  std::memcpy(payload.data(), &old, sizeof(old));
  send_response(p, Packet::Type::kCasResp, std::move(payload),
                static_cast<uint8_t>(status));
}

void Nic::send_response(const Packet& req, Packet::Type type,
                        PayloadBuf payload, uint8_t status) {
  Packet resp;
  resp.type = type;
  resp.src_nic = id_;
  resp.dst_nic = req.src_nic;
  resp.src_qpn = req.dst_qpn;
  resp.dst_qpn = req.src_qpn;
  resp.wr_seq = req.wr_seq;
  resp.psn = req.psn;
  resp.status = status;
  resp.payload = std::move(payload);
  if (QueuePair* local = qp(req.dst_qpn)) {
    cache_response(local, req.psn, resp);
  }
  ++counters_.packets_tx;
  counters_.bytes_tx += resp.wire_bytes();
  net_.transmit(std::move(resp));
}

void Nic::requester_response(Packet& p) {
  QueuePair* q = qp(p.dst_qpn);
  if (q == nullptr) return;  // destroyed since the request went out

  // A response to PSN n acknowledges every request up to n (the responder
  // processes strictly in order). Walk the window from the head, popping
  // acknowledged entries; the one matching wr_seq completes with a CQE.
  // Entries popped without matching had their responses lost — they are
  // acknowledged without a completion. A response matching nothing is a
  // duplicate/stale and pops nothing (its PSN is below the window head).
  bool matched = false;
  bool progressed = false;
  TrackedRequest done;
  while (!q->unacked.empty() && q->unacked.front().pkt.psn <= p.psn) {
    TrackedRequest& t = q->unacked.front();
    if (t.pkt.wr_seq == p.wr_seq) {
      matched = true;
      done = std::move(t);
    } else if (t.wr.signaled && q->send_cq != nullptr &&
               (t.pkt.type == Packet::Type::kWrite ||
                t.pkt.type == Packet::Type::kWriteImm ||
                t.pkt.type == Packet::Type::kSend)) {
      // Retired by a cumulative response (its own ACK was elided or
      // lost): the responder processed it in order, so it succeeded.
      // WRITE/SEND carry no response data, so a success CQE is the whole
      // completion. READ/CAS responses carry data — those stay
      // completion-less here and are recovered by retransmission.
      Cqe c;
      c.wr_id = t.wr.wr_id;
      c.qpn = q->qpn;
      c.opcode = t.wr.opcode;
      c.status = CqStatus::kSuccess;
      c.byte_len = t.wr.byte_len;
      q->send_cq->push(c);
    }
    q->unacked.pop_front();
    progressed = true;
  }
  if (progressed) {
    q->retry_rounds = 0;
    if (!q->unacked.empty()) {
      // Lazy timer: progress only moves the staleness horizon to the new
      // window head. A pending timer re-parks itself when it fires early.
      q->retry_deadline = q->unacked.front().sent + cfg_.retransmit_timeout;
      if (q->retry_timer == 0) {
        // Timer was parked after exhausting the retry budget; progress
        // means the responder is alive again, so resume guarding.
        arm_retry_timer(q);
      }
    }
    // Window empty: let any pending timer expire as a no-op.
  }
  if (!matched) return;  // duplicate/stale response

  auto status = static_cast<CqStatus>(p.status);
  if (status == CqStatus::kSuccess) {
    if (p.type == Packet::Type::kReadResp && !p.payload.empty()) {
      mem_.write(done.wr.land_addr, p.payload.data(), p.payload.size());
      PayloadBuf::add_bytes_copied(p.payload.size());
      counters_.payload_bytes_copied += p.payload.size();
      after_dma_write(done.wr.land_addr, p.payload.size());
    } else if (p.type == Packet::Type::kCasResp) {
      assert(p.payload.size() == 8);
      if (done.wr.land_addr != 0) {
        mem_.write(done.wr.land_addr, p.payload.data(), 8);
        PayloadBuf::add_bytes_copied(8);
        counters_.payload_bytes_copied += 8;
        after_dma_write(done.wr.land_addr, 8);
      }
    }
  }

  if (done.wr.signaled && q->send_cq != nullptr) {
    Cqe c;
    c.wr_id = done.wr.wr_id;
    c.qpn = q->qpn;
    c.opcode = done.wr.opcode;
    c.status = status;
    c.byte_len = done.wr.byte_len;
    q->send_cq->push(c);
  }
}

// ------------------------------------------------------------ RC transport --

bool Nic::psn_accept(Packet& p) {
  QueuePair* dst = qp(p.dst_qpn);
  if (dst == nullptr) return false;
  if (p.psn == dst->expected_psn) {
    ++dst->expected_psn;
    return true;
  }
  if (p.psn < dst->expected_psn) {
    // Duplicate (our response was lost, or the request was retransmitted
    // while parked): replay the cached response if we already produced it.
    ++counters_.duplicates_dropped;
    if (!dst->resp_cache.empty()) {
      CachedResponse& slot =
          dst->resp_cache[p.psn & (QueuePair::kRespCacheEntries - 1)];
      if (slot.psn_plus1 == p.psn + 1) {
        ++counters_.packets_tx;
        counters_.bytes_tx += slot.resp.wire_bytes();
        // Replay keeps the cache slot; the lvalue overload copies the
        // packet once, straight into the delivery closure.
        net_.transmit(slot.resp);
      }
    }
    return false;
  }
  // Ahead of sequence: an earlier packet was lost. Go-back-N drops it;
  // the requester retransmits the whole window in order.
  ++counters_.out_of_order_dropped;
  return false;
}

void Nic::cache_response(QueuePair* qp, uint64_t psn, const Packet& resp) {
  // Direct-mapped by PSN: the ring naturally retains the last
  // kRespCacheEntries responses — anything older can no longer be
  // legitimately retransmitted by a correct peer. Sized lazily so
  // requester-only QPs never allocate it.
  if (qp->resp_cache.empty()) qp->resp_cache.resize(QueuePair::kRespCacheEntries);
  CachedResponse& slot = qp->resp_cache[psn & (QueuePair::kRespCacheEntries - 1)];
  slot.psn_plus1 = psn + 1;
  slot.resp = resp;
}

void Nic::track_request(QueuePair* qp, const Packet& p, const PendingWr& wr) {
  TrackedRequest t;
  t.sent = loop_.now();
  t.pkt = p;  // payload buffer is refcounted, not copied
  t.wr = wr;
  qp->unacked.push_back(std::move(t));
  if (qp->unacked.size() == 1) {
    qp->retry_deadline = loop_.now() + retry_interval(qp->retry_rounds);
  }
  if (qp->retry_timer == 0) arm_retry_timer(qp);
}

sim::Duration Nic::retry_interval(uint32_t rounds) const {
  // Capped exponential backoff: double the interval per consecutive
  // no-progress round.
  const uint32_t shift = std::min<uint32_t>(rounds, 20);
  sim::Duration interval = cfg_.retransmit_timeout << shift;
  if (interval > cfg_.max_retransmit_backoff ||
      interval < cfg_.retransmit_timeout) {  // shift overflow guard
    interval = cfg_.max_retransmit_backoff;
  }
  return interval;
}

void Nic::arm_retry_timer(QueuePair* qp) {
  qp->retry_timer = loop_.schedule_at(
      qp->retry_deadline, [this, qpn = qp->qpn] { retry_fire(qpn); });
}

void Nic::retry_fire(uint32_t qpn) {
  QueuePair* q = qp(qpn);
  if (q == nullptr) return;
  q->retry_timer = 0;
  if (q->unacked.empty()) {
    // Fully acknowledged since the timer was armed; the timer simply
    // expires. The next track_request arms a fresh one.
    q->retry_rounds = 0;
    return;
  }
  if (loop_.now() < q->retry_deadline) {
    // ACK progress pushed the horizon out while this timer was pending:
    // re-park at the new deadline instead of walking the window.
    arm_retry_timer(q);
    return;
  }
  const sim::Time stale_before = loop_.now() - cfg_.retransmit_timeout;
  if (q->unacked.front().sent <= stale_before) {
    // Go-back-N: resend the whole unacknowledged window, in PSN order.
    for (size_t i = 0; i < q->unacked.size(); ++i) {
      TrackedRequest& t = q->unacked[i];
      t.sent = loop_.now();
      ++counters_.retransmits;
      ++counters_.packets_tx;
      counters_.bytes_tx += t.pkt.wire_bytes();
      net_.transmit(t.pkt);
    }
    ++q->retry_rounds;
    q->retry_deadline = loop_.now() + retry_interval(q->retry_rounds);
  } else {
    // The window head made progress since the deadline was set.
    q->retry_rounds = 0;
    q->retry_deadline = q->unacked.front().sent + cfg_.retransmit_timeout;
  }
  if (cfg_.rnr_retry_limit == 0 || q->retry_rounds < cfg_.rnr_retry_limit) {
    arm_retry_timer(q);
  }
  // Else: stop retransmitting. The peer is parked receiver-not-ready and
  // will deliver + ACK once a RECV is posted; any ACK progress or new
  // post_send re-arms the timer (requester_response / track_request).
}

// ------------------------------------------------------------ WAIT wiring --

void Nic::after_dma_write(Addr addr, size_t len) {
  // A DMA may have patched (and activated) pre-posted WQEs: re-kick any
  // watched QP whose send-queue ring overlaps the written range. Only QPs
  // stalled at an inactive head WQE are on the watch list, so this scan
  // is proportional to the number of stalled queues, not all QPs.
  if (dma_watch_.empty()) return;
  dma_watch_scratch_.clear();
  dma_watch_scratch_.swap(dma_watch_);
  for (uint32_t qpn : dma_watch_scratch_) {
    QueuePair* q = qp(qpn);
    if (q == nullptr || !q->on_dma_watch) continue;  // destroyed / stale entry
    if (addr < q->sq_end() && addr + len > q->sq_base) {
      q->on_dma_watch = false;
      kick(q);  // re-registers itself if it stalls again
    } else {
      dma_watch_.push_back(qpn);  // still stalled, still watched
    }
  }
}

void Nic::block_on_cq(QueuePair* q, uint32_t cq_id) {
  if (q->waiting_cqn == cq_id) return;  // already queued on this CQ
  if (q->waiting_cqn != 0) unlink_waiter(q);
  CompletionQueue* c = cq(cq_id);
  assert(c != nullptr);
  q->waiting_cqn = cq_id;
  q->next_wait_qpn = 0;
  if (c->wait_tail_qpn == 0) {
    c->wait_head_qpn = q->qpn;
  } else {
    QueuePair* tail = qp(c->wait_tail_qpn);
    assert(tail != nullptr);
    tail->next_wait_qpn = q->qpn;
  }
  c->wait_tail_qpn = q->qpn;
}

void Nic::unlink_waiter(QueuePair* q) {
  CompletionQueue* c = cq(q->waiting_cqn);
  q->waiting_cqn = 0;
  if (c == nullptr) {
    q->next_wait_qpn = 0;
    return;
  }
  uint32_t prev = 0;
  uint32_t walk = c->wait_head_qpn;
  while (walk != 0 && walk != q->qpn) {
    prev = walk;
    QueuePair* pq = qp(walk);
    walk = pq != nullptr ? pq->next_wait_qpn : 0;
  }
  if (walk != q->qpn) {  // not on the list (already detached)
    q->next_wait_qpn = 0;
    return;
  }
  if (prev == 0) {
    c->wait_head_qpn = q->next_wait_qpn;
  } else {
    qp(prev)->next_wait_qpn = q->next_wait_qpn;
  }
  if (c->wait_tail_qpn == q->qpn) c->wait_tail_qpn = prev;
  q->next_wait_qpn = 0;
}

void Nic::on_cq_advance(uint32_t cq_id) {
  CompletionQueue* c = cq(cq_id);
  if (c == nullptr || c->wait_head_qpn == 0) return;
  // Detach the whole list before waking anyone: a kicked engine may
  // immediately re-block on this CQ, relinking itself behind the batch.
  uint32_t walk = c->wait_head_qpn;
  c->wait_head_qpn = 0;
  c->wait_tail_qpn = 0;
  while (walk != 0) {
    QueuePair* q = qp(walk);
    if (q == nullptr) break;  // unreachable: destroy_qp unlinks waiters
    walk = q->next_wait_qpn;
    q->next_wait_qpn = 0;
    q->waiting_cqn = 0;
    if (q->blocked_on_wait) kick(q);
  }
}

}  // namespace hyperloop::rdma
