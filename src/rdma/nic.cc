#include "rdma/nic.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace hyperloop::rdma {

Nic::Nic(sim::EventLoop& loop, Network& net, HostMemory& mem,
         nvm::NvmDevice* nvm, Config cfg)
    : loop_(loop), net_(net), mem_(mem), nvm_(nvm), cfg_(cfg) {
  id_ = net_.attach([this](Packet p) { on_packet(std::move(p)); });
}

CompletionQueue* Nic::create_cq(size_t capacity) {
  const uint32_t id = next_cqn_++;
  auto cq = std::make_unique<CompletionQueue>(id, capacity);
  cq->set_counter_watcher([this, id](uint64_t) { on_cq_advance(id); });
  auto* ptr = cq.get();
  cqs_.emplace(id, std::move(cq));
  return ptr;
}

QueuePair* Nic::create_qp(CompletionQueue* send_cq, CompletionQueue* recv_cq,
                          uint32_t sq_slots) {
  if (sq_slots == 0) sq_slots = cfg_.default_sq_slots;
  auto qp = std::make_unique<QueuePair>();
  qp->qpn = next_qpn_++;
  qp->nic = this;
  qp->sq_slots = sq_slots;
  qp->sq_base = mem_.alloc(uint64_t{sq_slots} * sizeof(Wqe), 64);
  qp->send_cq = send_cq;
  qp->recv_cq = recv_cq;
  auto* ptr = qp.get();
  qps_.emplace(ptr->qpn, std::move(qp));
  return ptr;
}

QueuePair* Nic::create_loopback_qp(CompletionQueue* send_cq,
                                   uint32_t sq_slots) {
  QueuePair* qp = create_qp(send_cq, nullptr, sq_slots);
  qp->loopback = true;
  qp->connected = true;
  qp->remote_nic = id_;
  qp->remote_qpn = qp->qpn;
  return qp;
}

void Nic::connect(QueuePair* qp, NicId remote_nic, uint32_t remote_qpn) {
  assert(!qp->loopback);
  qp->connected = true;
  qp->remote_nic = remote_nic;
  qp->remote_qpn = remote_qpn;
}

QueuePair* Nic::qp(uint32_t qpn) {
  auto it = qps_.find(qpn);
  return it == qps_.end() ? nullptr : it->second.get();
}

CompletionQueue* Nic::cq(uint32_t id) {
  auto it = cqs_.find(id);
  return it == cqs_.end() ? nullptr : it->second.get();
}

uint64_t Nic::post_send(QueuePair* qp, Wqe wqe, bool deferred_ownership) {
  assert(qp->sq_depth() < qp->sq_slots && "send queue overflow");
  wqe.d.active = deferred_ownership ? 0 : 1;
  const uint64_t seq = qp->sq_tail++;
  mem_.write_obj(qp->slot_addr(seq), wqe);
  kick(qp);
  return seq;
}

void Nic::grant_ownership(QueuePair* qp, uint64_t slot_seq) {
  const Addr a = qp->slot_addr(slot_seq);
  auto w = mem_.read_obj<Wqe>(a);
  w.d.active = 1;
  mem_.write_obj(a, w);
  kick(qp);
}

void Nic::post_recv(QueuePair* qp, RecvWqe wqe) {
  qp->recv_queue.push_back(std::move(wqe));
  // Replay a receiver-not-ready packet if one is parked. It already
  // passed the PSN gate when it first arrived, so it must bypass
  // psn_accept (which would now misread it as a duplicate).
  if (!qp->stalled_inbound.empty()) {
    Packet p = std::move(qp->stalled_inbound.front());
    qp->stalled_inbound.pop_front();
    dispatch_packet(std::move(p));
  }
}

SharedReceiveQueue* Nic::create_srq() {
  auto srq = std::make_unique<SharedReceiveQueue>();
  srq->srqn = static_cast<uint32_t>(srqs_.size()) + 1;
  srqs_.push_back(std::move(srq));
  return srqs_.back().get();
}

void Nic::attach_srq(QueuePair* qp, SharedReceiveQueue* srq) {
  qp->srq = srq;
  srq_members_[srq].push_back(qp);
}

void Nic::post_srq_recv(SharedReceiveQueue* srq, RecvWqe wqe) {
  srq->queue.push_back(std::move(wqe));
  // Replay one parked packet from any attached QP (FIFO across members).
  for (QueuePair* qp : srq_members_[srq]) {
    if (!qp->stalled_inbound.empty()) {
      Packet p = std::move(qp->stalled_inbound.front());
      qp->stalled_inbound.pop_front();
      dispatch_packet(std::move(p));  // PSN was accepted on first arrival
      return;
    }
  }
}

sim::Duration Nic::dma_cost(size_t bytes) const {
  return static_cast<sim::Duration>(cfg_.dma_ns_per_byte *
                                    static_cast<double>(bytes));
}

// ---------------------------------------------------------------- engine --

void Nic::kick(QueuePair* qp) {
  if (qp->engine_running) return;
  qp->engine_running = true;
  qp->blocked_on_wait = false;
  engine_step(qp);
}

void Nic::engine_step(QueuePair* qp) {
  if (qp->sq_head == qp->sq_tail) {
    qp->engine_running = false;
    return;
  }
  const auto w = mem_.read_obj<Wqe>(qp->slot_addr(qp->sq_head));
  if (static_cast<Opcode>(w.d.opcode) == Opcode::kWait && w.d.active) {
    CompletionQueue* c = cq(w.wait_cq);
    assert(c != nullptr && "WAIT references unknown CQ");
    if (c->completion_count() >= w.wait_threshold) {
      ++qp->sq_head;
      ++counters_.wqes_executed;
      loop_.schedule_after(cfg_.wait_cost, [this, qp] { engine_step(qp); });
      return;
    }
    qp->engine_running = false;
    qp->blocked_on_wait = true;
    block_on_cq(qp, w.wait_cq);
    return;
  }
  if (!w.d.active) {
    // Ownership still with the driver; a DMA patch or grant_ownership()
    // will re-kick this queue.
    qp->engine_running = false;
    return;
  }
  ++qp->sq_head;
  ++counters_.wqes_executed;
  loop_.schedule_after(cfg_.wqe_cost + qp_context_touch(qp->qpn),
                       [this, qp, w] { execute(qp, w); });
}

sim::Duration Nic::qp_context_touch(uint32_t qpn) {
  if (cfg_.qp_cache_entries == 0) return 0;
  auto it = std::find(qp_cache_mru_.begin(), qp_cache_mru_.end(), qpn);
  if (it != qp_cache_mru_.end()) {
    qp_cache_mru_.erase(it);
    qp_cache_mru_.insert(qp_cache_mru_.begin(), qpn);
    ++counters_.qp_cache_hits;
    return 0;
  }
  qp_cache_mru_.insert(qp_cache_mru_.begin(), qpn);
  if (qp_cache_mru_.size() > cfg_.qp_cache_entries) qp_cache_mru_.pop_back();
  ++counters_.qp_cache_misses;
  return cfg_.qp_cache_miss_cost;
}

void Nic::execute(QueuePair* qp, const Wqe& w) {
  const auto op = static_cast<Opcode>(w.d.opcode);
  const bool local = qp->loopback || op == Opcode::kNop ||
                     op == Opcode::kLocalCopy;
  if (local) {
    execute_local(qp, w);
  } else {
    assert(qp->connected && "WQE posted on unconnected QP");
    execute_remote(qp, w);
  }
}

void Nic::execute_local(QueuePair* qp, const Wqe& w) {
  const auto op = static_cast<Opcode>(w.d.opcode);
  switch (op) {
    case Opcode::kNop: {
      local_completion(qp, w, CqStatus::kSuccess, 0);
      engine_step(qp);
      return;
    }
    case Opcode::kLocalCopy:
    case Opcode::kWrite: {
      // Local DMA copy: local_addr -> remote_addr.
      const sim::Duration cost = dma_cost(w.d.length);
      loop_.schedule_after(cost, [this, qp, w] {
        mem_.copy(w.d.remote_addr, w.d.local_addr, w.d.length);
        after_dma_write(w.d.remote_addr, w.d.length);
        local_completion(qp, w, CqStatus::kSuccess, w.d.length);
        engine_step(qp);
      });
      return;
    }
    case Opcode::kCas: {
      loop_.schedule_after(cfg_.cas_cost, [this, qp, w] {
        uint64_t old = 0;
        mem_.read(w.d.remote_addr, &old, sizeof(old));
        if (old == w.d.compare) {
          mem_.write(w.d.remote_addr, &w.d.swap, sizeof(w.d.swap));
        }
        if (w.d.local_addr != 0) {
          mem_.write(w.d.local_addr, &old, sizeof(old));
          after_dma_write(w.d.local_addr, sizeof(old));
        }
        local_completion(qp, w, CqStatus::kSuccess, 8);
        engine_step(qp);
      });
      return;
    }
    case Opcode::kRead:
    case Opcode::kFlush: {
      // Local flush: write back this NIC's pending volatile writes.
      if (w.d.length == 0 && nvm_ != nullptr) {
        nvm_->persist_all();
        ++counters_.flushes;
      }
      local_completion(qp, w, CqStatus::kSuccess, w.d.length);
      engine_step(qp);
      return;
    }
    default:
      assert(false && "unsupported local opcode");
  }
}

void Nic::execute_remote(QueuePair* qp, const Wqe& w) {
  const auto op = static_cast<Opcode>(w.d.opcode);
  Packet p;
  p.src_nic = id_;
  p.dst_nic = qp->remote_nic;
  p.src_qpn = qp->qpn;
  p.dst_qpn = qp->remote_qpn;
  p.wr_seq = next_wr_seq_++;
  p.remote_addr = w.d.remote_addr;
  p.rkey = w.d.rkey;
  p.length = w.d.length;
  p.imm = w.d.imm;

  Outstanding out;
  out.qpn = qp->qpn;
  out.wr_id = w.wr_id;
  out.opcode = w.d.opcode;
  out.signaled = w.signaled;
  out.byte_len = w.d.length;
  out.land_addr = w.d.local_addr;

  sim::Duration gather_cost = 0;
  switch (op) {
    case Opcode::kWrite:
    case Opcode::kWriteImm:
    case Opcode::kSend: {
      const size_t total = size_t{w.d.length} + w.d.aux_length;
      p.payload.resize_uninit(total);
      if (w.d.length > 0) {
        mem_.read(w.d.local_addr, p.payload.data(), w.d.length);
      }
      if (w.d.aux_length > 0) {
        mem_.read(w.d.aux_addr, p.payload.data() + w.d.length, w.d.aux_length);
      }
      p.length = static_cast<uint32_t>(total);
      p.type = op == Opcode::kWrite      ? Packet::Type::kWrite
               : op == Opcode::kWriteImm ? Packet::Type::kWriteImm
                                         : Packet::Type::kSend;
      gather_cost = dma_cost(total);
      break;
    }
    case Opcode::kRead:
    case Opcode::kFlush: {
      p.type = Packet::Type::kRead;
      if (op == Opcode::kFlush) p.length = 0;
      break;
    }
    case Opcode::kCas: {
      p.type = Packet::Type::kCas;
      p.compare = w.d.compare;
      p.swap = w.d.swap;
      p.length = 8;
      break;
    }
    default:
      assert(false && "unsupported remote opcode");
  }

  p.psn = qp->next_psn++;
  outstanding_.emplace(p.wr_seq, out);
  track_request(qp, p);
  ++counters_.packets_tx;
  counters_.bytes_tx += p.wire_bytes();
  net_.transmit(std::move(p));
  // The engine pipelines: the next WQE may transmit before this one is
  // ACKed (RC ordering is preserved by per-port FIFO serialization).
  loop_.schedule_after(gather_cost, [this, qp] { engine_step(qp); });
}

void Nic::local_completion(QueuePair* qp, const Wqe& w, CqStatus status,
                           uint32_t bytes) {
  if (status != CqStatus::kSuccess) ++counters_.remote_access_errors;
  if (!w.signaled || qp->send_cq == nullptr) return;
  Cqe c;
  c.wr_id = w.wr_id;
  c.qpn = qp->qpn;
  c.opcode = w.d.opcode;
  c.status = status;
  c.byte_len = bytes;
  qp->send_cq->push(c);
}

// --------------------------------------------------------------- receive --

void Nic::on_packet(Packet p) {
  const sim::Duration cost = cfg_.rx_base_cost + dma_cost(p.payload.size()) +
                             qp_context_touch(p.dst_qpn);
  rx_busy_until_ = std::max(loop_.now(), rx_busy_until_) + cost;
  ++counters_.packets_rx;
  auto deliver = [this, pkt = std::move(p)]() mutable {
    handle_packet(std::move(pkt));
  };
  // The per-packet delivery closure is the hottest schedule in the whole
  // simulator; it must fit the event loop's inline callback storage or
  // every hop heap-allocates.
  static_assert(sizeof(deliver) <= sim::EventLoop::kInlineCallbackBytes,
                "packet delivery closure must stay inline in the event loop");
  loop_.schedule_at(rx_busy_until_, std::move(deliver));
}

void Nic::handle_packet(Packet p) {
  if (p.is_request() && !psn_accept(p)) return;
  dispatch_packet(std::move(p));
}

void Nic::dispatch_packet(Packet p) {
  switch (p.type) {
    case Packet::Type::kSend:
    case Packet::Type::kWriteImm: {
      QueuePair* dst = qp(p.dst_qpn);
      assert(dst != nullptr && "packet for unknown QP");
      std::deque<RecvWqe>& pool =
          dst->srq != nullptr ? dst->srq->queue : dst->recv_queue;
      if (pool.empty()) {
        ++counters_.rnr_stalls;
        dst->stalled_inbound.push_back(std::move(p));
        return;
      }
      if (p.type == Packet::Type::kWriteImm) {
        responder_write(p);  // sends the ACK itself
        // Consume a RECV to deliver the immediate.
        RecvWqe r = std::move(pool.front());
        pool.pop_front();
        Cqe c;
        c.wr_id = r.wr_id;
        c.qpn = dst->qpn;
        c.opcode = static_cast<uint8_t>(Opcode::kWriteImm);
        c.byte_len = p.length;
        c.imm = p.imm;
        c.has_imm = true;
        if (dst->recv_cq != nullptr) dst->recv_cq->push(c);
      } else {
        responder_send(p, dst);
      }
      return;
    }
    case Packet::Type::kWrite:
      responder_write(p);
      return;
    case Packet::Type::kRead:
      responder_read(p);
      return;
    case Packet::Type::kCas:
      responder_cas(p);
      return;
    case Packet::Type::kAck:
    case Packet::Type::kReadResp:
    case Packet::Type::kCasResp:
      requester_response(p);
      return;
  }
}

void Nic::responder_send(Packet& p, QueuePair* dst) {
  std::deque<RecvWqe>& pool =
      dst->srq != nullptr ? dst->srq->queue : dst->recv_queue;
  RecvWqe r = std::move(pool.front());
  pool.pop_front();

  // Scatter the payload across the RECV's SGE list, in order. This is
  // where remote work-request manipulation happens: SGEs may point at
  // pre-posted WQE descriptors in the send-queue rings.
  size_t off = 0;
  CqStatus status = CqStatus::kSuccess;
  for (const Sge& sge : r.sges) {
    if (off >= p.payload.size()) break;
    const size_t n = std::min<size_t>(sge.length, p.payload.size() - off);
    if (!mrs_.check_local(sge.lkey, sge.addr, n)) {
      status = CqStatus::kLocalProtectionError;
      break;
    }
    mem_.write(sge.addr, p.payload.data() + off, n);
    after_dma_write(sge.addr, n);
    off += n;
  }
  if (off < p.payload.size() && status == CqStatus::kSuccess) {
    // Payload larger than the scatter list.
    status = CqStatus::kLocalProtectionError;
  }

  Cqe c;
  c.wr_id = r.wr_id;
  c.qpn = dst->qpn;
  c.opcode = static_cast<uint8_t>(Opcode::kSend);
  c.status = status;
  c.byte_len = static_cast<uint32_t>(p.payload.size());
  if (dst->recv_cq != nullptr) dst->recv_cq->push(c);

  send_response(p, Packet::Type::kAck, {}, static_cast<uint8_t>(status));
}

void Nic::responder_write(Packet& p) {
  CqStatus status = CqStatus::kSuccess;
  if (!mrs_.check_remote(p.rkey, p.remote_addr, p.payload.size(),
                         kRemoteWrite)) {
    status = CqStatus::kRemoteAccessError;
    ++counters_.remote_access_errors;
  } else if (!p.payload.empty()) {
    mem_.write(p.remote_addr, p.payload.data(), p.payload.size());
    after_dma_write(p.remote_addr, p.payload.size());
  }
  send_response(p, Packet::Type::kAck, {}, static_cast<uint8_t>(status));
}

void Nic::responder_read(Packet& p) {
  CqStatus status = CqStatus::kSuccess;
  PayloadBuf data;
  if (!mrs_.check_remote(p.rkey, p.remote_addr, p.length, kRemoteRead)) {
    status = CqStatus::kRemoteAccessError;
    ++counters_.remote_access_errors;
  } else if (p.length == 0) {
    // gFLUSH: a 0-byte READ flushes this NIC's volatile writes into the
    // durable domain before the response (= durability ACK) goes back.
    if (nvm_ != nullptr) nvm_->persist_all();
    ++counters_.flushes;
  } else {
    data.resize_uninit(p.length);
    mem_.read(p.remote_addr, data.data(), p.length);
  }
  send_response(p, Packet::Type::kReadResp, std::move(data),
                static_cast<uint8_t>(status));
}

void Nic::responder_cas(Packet& p) {
  CqStatus status = CqStatus::kSuccess;
  uint64_t old = 0;
  if (!mrs_.check_remote(p.rkey, p.remote_addr, 8, kRemoteAtomic)) {
    status = CqStatus::kRemoteAccessError;
    ++counters_.remote_access_errors;
  } else {
    mem_.read(p.remote_addr, &old, sizeof(old));
    if (old == p.compare) {
      mem_.write(p.remote_addr, &p.swap, sizeof(p.swap));
    }
  }
  PayloadBuf payload;
  payload.resize_uninit(sizeof(old));
  std::memcpy(payload.data(), &old, sizeof(old));
  send_response(p, Packet::Type::kCasResp, std::move(payload),
                static_cast<uint8_t>(status));
}

void Nic::send_response(const Packet& req, Packet::Type type,
                        PayloadBuf payload, uint8_t status) {
  Packet resp;
  resp.type = type;
  resp.src_nic = id_;
  resp.dst_nic = req.src_nic;
  resp.src_qpn = req.dst_qpn;
  resp.dst_qpn = req.src_qpn;
  resp.wr_seq = req.wr_seq;
  resp.psn = req.psn;
  resp.status = status;
  resp.payload = std::move(payload);
  if (QueuePair* local = qp(req.dst_qpn)) {
    cache_response(local, req.psn, resp);
  }
  ++counters_.packets_tx;
  counters_.bytes_tx += resp.wire_bytes();
  net_.transmit(std::move(resp));
}

void Nic::requester_response(Packet& p) {
  auto it = outstanding_.find(p.wr_seq);
  if (it == outstanding_.end()) return;  // duplicate/stale
  Outstanding out = it->second;
  outstanding_.erase(it);

  QueuePair* q = qp(out.qpn);
  assert(q != nullptr);
  // A response to PSN n acknowledges every request up to n (the
  // responder processes strictly in order).
  cumulative_ack(q, p.psn);
  auto status = static_cast<CqStatus>(p.status);

  if (status == CqStatus::kSuccess) {
    if (p.type == Packet::Type::kReadResp && !p.payload.empty()) {
      mem_.write(out.land_addr, p.payload.data(), p.payload.size());
      after_dma_write(out.land_addr, p.payload.size());
    } else if (p.type == Packet::Type::kCasResp) {
      assert(p.payload.size() == 8);
      if (out.land_addr != 0) {
        mem_.write(out.land_addr, p.payload.data(), 8);
        after_dma_write(out.land_addr, 8);
      }
    }
  }

  if (out.signaled && q->send_cq != nullptr) {
    Cqe c;
    c.wr_id = out.wr_id;
    c.qpn = out.qpn;
    c.opcode = out.opcode;
    c.status = status;
    c.byte_len = out.byte_len;
    q->send_cq->push(c);
  }
}

// ------------------------------------------------------------ RC transport --

bool Nic::psn_accept(Packet& p) {
  QueuePair* dst = qp(p.dst_qpn);
  if (dst == nullptr) return false;
  if (p.psn == dst->expected_psn) {
    ++dst->expected_psn;
    return true;
  }
  if (p.psn < dst->expected_psn) {
    // Duplicate (our response was lost, or the request was retransmitted
    // while parked): replay the cached response if we already produced it.
    ++counters_.duplicates_dropped;
    auto it = dst->resp_cache.find(p.psn);
    if (it != dst->resp_cache.end()) {
      Packet resp = it->second;
      ++counters_.packets_tx;
      counters_.bytes_tx += resp.wire_bytes();
      net_.transmit(std::move(resp));
    }
    return false;
  }
  // Ahead of sequence: an earlier packet was lost. Go-back-N drops it;
  // the requester retransmits the whole window in order.
  ++counters_.out_of_order_dropped;
  return false;
}

void Nic::cache_response(QueuePair* qp, uint64_t psn, const Packet& resp) {
  qp->resp_cache[psn] = resp;
  // Bound the cache: anything older than 128 PSNs can no longer be
  // legitimately retransmitted by a correct peer.
  while (!qp->resp_cache.empty() &&
         qp->resp_cache.begin()->first + 128 < qp->expected_psn) {
    qp->resp_cache.erase(qp->resp_cache.begin());
  }
}

void Nic::track_request(QueuePair* qp, const Packet& p) {
  qp->unacked.emplace_back(loop_.now(), p);
  if (qp->retry_timer == 0) arm_retry_timer(qp);
}

void Nic::arm_retry_timer(QueuePair* qp) {
  // Capped exponential backoff: double the interval per consecutive
  // no-progress round.
  const uint32_t shift = std::min<uint32_t>(qp->retry_rounds, 20);
  sim::Duration interval = cfg_.retransmit_timeout << shift;
  if (interval > cfg_.max_retransmit_backoff ||
      interval < cfg_.retransmit_timeout) {  // shift overflow guard
    interval = cfg_.max_retransmit_backoff;
  }
  qp->retry_timer = loop_.schedule_after(
      interval, [this, qpn = qp->qpn] { retry_fire(qpn); });
}

void Nic::retry_fire(uint32_t qpn) {
  QueuePair* q = qp(qpn);
  if (q == nullptr) return;
  q->retry_timer = 0;
  if (q->unacked.empty()) {
    q->retry_rounds = 0;
    return;
  }
  const sim::Time stale_before = loop_.now() - cfg_.retransmit_timeout;
  if (q->unacked.front().first <= stale_before) {
    // Go-back-N: resend the whole unacknowledged window, in PSN order.
    for (auto& [sent, pkt] : q->unacked) {
      sent = loop_.now();
      ++counters_.retransmits;
      ++counters_.packets_tx;
      counters_.bytes_tx += pkt.wire_bytes();
      net_.transmit(pkt);
    }
    ++q->retry_rounds;
  } else {
    // The window head made progress since the timer was armed.
    q->retry_rounds = 0;
  }
  if (cfg_.rnr_retry_limit == 0 || q->retry_rounds < cfg_.rnr_retry_limit) {
    arm_retry_timer(q);
  }
  // Else: stop retransmitting. The peer is parked receiver-not-ready and
  // will deliver + ACK once a RECV is posted; any ACK progress or new
  // post_send re-arms the timer (cumulative_ack / track_request).
}

void Nic::cumulative_ack(QueuePair* q, uint64_t psn) {
  bool progressed = false;
  while (!q->unacked.empty() && q->unacked.front().second.psn <= psn) {
    q->unacked.pop_front();
    progressed = true;
  }
  if (progressed) q->retry_rounds = 0;
  if (q->unacked.empty()) {
    if (q->retry_timer != 0) {
      loop_.cancel(q->retry_timer);
      q->retry_timer = 0;
    }
  } else if (progressed && q->retry_timer == 0) {
    // Timer was parked after exhausting the retry budget; progress means
    // the responder is alive again, so resume guarding the window.
    arm_retry_timer(q);
  }
}

// ------------------------------------------------------------ WAIT wiring --

void Nic::after_dma_write(Addr addr, size_t len) {
  // A DMA may have patched (and activated) pre-posted WQEs: re-kick any QP
  // whose send-queue ring overlaps the written range.
  for (auto& [qpn, q] : qps_) {
    QueuePair* p = q.get();
    if (p->engine_running || p->blocked_on_wait) continue;
    if (addr < p->sq_end() && addr + len > p->sq_base) kick(p);
  }
}

void Nic::block_on_cq(QueuePair* qp, uint32_t cq_id) {
  auto& v = cq_waiters_[cq_id];
  if (std::find(v.begin(), v.end(), qp->qpn) == v.end()) v.push_back(qp->qpn);
}

void Nic::on_cq_advance(uint32_t cq_id) {
  auto it = cq_waiters_.find(cq_id);
  if (it == cq_waiters_.end() || it->second.empty()) return;
  std::vector<uint32_t> woken = std::move(it->second);
  it->second.clear();
  for (uint32_t qpn : woken) {
    QueuePair* q = qp(qpn);
    if (q != nullptr && q->blocked_on_wait) kick(q);
  }
}

}  // namespace hyperloop::rdma
