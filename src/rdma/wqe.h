// Work-queue element definitions.
//
// The crucial design point (paper §4.1, "remote work request manipulation"):
// send-queue WQEs live *inside registered host memory*, and the patchable
// fields are grouped in a contiguous, trivially-copyable `WqeDescriptor` at
// the start of the WQE. A replica's pre-posted RECV scatters inbound
// metadata bytes directly onto these descriptors, simultaneously rewriting
// address/length/opcode *and* setting the `active` (ownership) byte — the
// paper's modified-libmlx4 deferred-ownership scheme. The gCAS execute map
// is realized by patching `opcode` to kCas or kNop per replica.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <initializer_list>

#include "rdma/memory.h"

namespace hyperloop::rdma {

/// Operation codes for send-queue WQEs.
enum class Opcode : uint8_t {
  kNop = 0,       ///< completes locally with no effect (gCAS execute-map "skip")
  kWrite = 1,     ///< RDMA WRITE local->remote
  kWriteImm = 2,  ///< RDMA WRITE with immediate (consumes a remote RECV)
  kSend = 3,      ///< two-sided SEND (consumes a remote RECV, scatters payload)
  kRead = 4,      ///< RDMA READ remote->local (length 0 == durability flush)
  kFlush = 5,     ///< gFLUSH: sugar for a 0-byte READ with flush semantics
  kCas = 6,       ///< 8-byte compare-and-swap at remote_addr
  kLocalCopy = 7, ///< NIC DMA copy within the local host (gMEMCPY executor)
  kWait = 8,      ///< CORE-Direct WAIT: block queue until CQ count reached
};

const char* opcode_name(Opcode op);

/// WqeDescriptor::flags bits.
enum WqeFlags : uint8_t {
  /// Gather the payload as a zero-copy borrow of the local region
  /// instead of memcpy'ing it into the packet (kWrite/kWriteImm, single
  /// gather segment). Set on chain-forwarding WQEs, whose local bytes
  /// were DMA-written by the upstream hop and retire before reuse; the
  /// client-issue WQE keeps the copy (the mandatory source DMA-in).
  kWqeFlagZeroCopy = 1u << 0,
  /// Suppress the responder's standalone ACK for this WRITE (success path
  /// only; errors always respond). Set on chain-trio data WRITEs, which
  /// are immediately followed by a FLUSH (0-byte READ) on the same QP:
  /// the FLUSH's ReadResp acknowledges the WRITE cumulatively, so the
  /// standalone ACK only burns a packet. Completion still arrives — the
  /// requester posts success CQEs for every entry a cumulative response
  /// retires.
  kWqeFlagAckElide = 1u << 1,
};

/// The remotely patchable part of a WQE. Contiguous and trivially
/// copyable so a RECV scatter entry can overwrite it byte-for-byte.
struct WqeDescriptor {
  Addr local_addr = 0;   ///< gather source / READ & CAS result destination / copy src
  Addr remote_addr = 0;  ///< write/read/CAS target / copy destination
  Addr aux_addr = 0;     ///< optional second gather segment (gCAS result map)
  uint64_t compare = 0;  ///< CAS expected value
  uint64_t swap = 0;     ///< CAS replacement value
  uint32_t length = 0;   ///< bytes for the primary segment
  uint32_t aux_length = 0;  ///< bytes for the second gather segment
  uint32_t rkey = 0;     ///< remote key for remote_addr
  uint32_t lkey = 0;     ///< local key for local_addr
  uint32_t imm = 0;      ///< immediate data (kWriteImm)
  uint8_t opcode = 0;    ///< Opcode, as a byte so patches stay POD
  uint8_t active = 1;    ///< ownership: 0 = driver holds, 1 = NIC may execute
  uint8_t flags = 0;     ///< WqeFlags bitmask (kWqeFlagZeroCopy, ...)
  uint8_t pad = 0;
};
static_assert(sizeof(WqeDescriptor) == 64, "descriptor layout is part of the wire format");

/// A full send-queue WQE: patchable descriptor + fixed control fields.
struct Wqe {
  WqeDescriptor d{};
  uint64_t wr_id = 0;
  /// kWait only: the completion counter to watch...
  uint32_t wait_cq = 0;
  /// ...and the absolute completion count that un-blocks the queue.
  uint64_t wait_threshold = 0;
  /// Whether completion posts a CQE (all completions bump the CQ's
  /// monotonic counter regardless, which is what WAIT observes).
  uint8_t signaled = 1;
  uint8_t pad[7] = {};
};
static_assert(sizeof(Wqe) % 8 == 0);

/// Scatter/gather element for RECVs.
struct Sge {
  Addr addr = 0;
  uint32_t length = 0;
  uint32_t lkey = 0;
};

/// Fixed-capacity SGE list: pre-posted RECVs are re-armed on the refill
/// hot path (one per ring slot), so the scatter list lives inline in the
/// WQE instead of on the heap. The widest consumer is the fanout
/// primary rearm at 4 + 3*K entries for K backups (K <= 7 with the
/// group-size-8 cap shared by the naive/tcp baselines).
struct SgeList {
  static constexpr size_t kMaxSges = 25;

  Sge entries[kMaxSges];
  uint32_t count = 0;

  SgeList() = default;
  SgeList(std::initializer_list<Sge> il) { *this = il; }
  SgeList& operator=(std::initializer_list<Sge> il) {
    assert(il.size() <= kMaxSges);
    count = 0;
    for (const Sge& s : il) entries[count++] = s;
    return *this;
  }

  void push_back(const Sge& s) {
    assert(count < kMaxSges);
    entries[count++] = s;
  }
  size_t size() const { return count; }
  bool empty() const { return count == 0; }
  const Sge* begin() const { return entries; }
  const Sge* end() const { return entries + count; }
};

/// A receive WQE: inbound SEND payload is scattered across `sges` in
/// order. Held NIC-side (the paper only requires *send* queues to be
/// remotely writable).
struct RecvWqe {
  uint64_t wr_id = 0;
  SgeList sges;
};

/// Helpers for building common WQEs.
Wqe make_write(Addr local, uint32_t lkey, Addr remote, uint32_t rkey,
               uint32_t len, uint64_t wr_id = 0);
Wqe make_write_imm(Addr local, uint32_t lkey, Addr remote, uint32_t rkey,
                   uint32_t len, uint32_t imm, uint64_t wr_id = 0);
Wqe make_send(Addr local, uint32_t lkey, uint32_t len, uint64_t wr_id = 0);
Wqe make_read(Addr local, uint32_t lkey, Addr remote, uint32_t rkey,
              uint32_t len, uint64_t wr_id = 0);
Wqe make_flush(Addr remote, uint32_t rkey, uint64_t wr_id = 0);
Wqe make_cas(Addr result, uint32_t lkey, Addr remote, uint32_t rkey,
             uint64_t compare, uint64_t swap, uint64_t wr_id = 0);
Wqe make_local_copy(Addr src, Addr dst, uint32_t len, uint64_t wr_id = 0);
Wqe make_wait(uint32_t cq_id, uint64_t threshold, uint64_t wr_id = 0);
Wqe make_nop(uint64_t wr_id = 0);

}  // namespace hyperloop::rdma
