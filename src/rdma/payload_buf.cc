#include "rdma/payload_buf.h"

#include <bit>
#include <cstdlib>
#include <cstring>
#include <new>

namespace hyperloop::rdma {

namespace {

// Size classes are powers of two from 64B up to 1GiB. Class i holds
// blocks of 64 << i payload bytes.
constexpr size_t kMinClassBytes = 64;
constexpr int kNumClasses = 25;

struct Pool {
  void* free_heads[kNumClasses] = {};
  uint64_t hits = 0;
  uint64_t misses = 0;
  size_t free_blocks = 0;
};

Pool& pool() {
  static Pool p;
  return p;
}

int class_for(size_t n) {
  const size_t cap = n <= kMinClassBytes ? kMinClassBytes : std::bit_ceil(n);
  const int cls = std::countr_zero(cap) - std::countr_zero(kMinClassBytes);
  return cls;
}

size_t class_bytes(int cls) { return kMinClassBytes << cls; }

}  // namespace

PayloadBuf::Block* PayloadBuf::acquire(size_t n) {
  Pool& p = pool();
  const int cls = class_for(n);
  Block* b;
  if (p.free_heads[cls] != nullptr) {
    b = static_cast<Block*>(p.free_heads[cls]);
    p.free_heads[cls] = b->next_free;
    --p.free_blocks;
    ++p.hits;
  } else {
    b = static_cast<Block*>(
        ::operator new(sizeof(Block) + class_bytes(cls)));
    ++p.misses;
  }
  b->refs = 1;
  b->size = static_cast<uint32_t>(n);
  b->size_class = static_cast<uint8_t>(cls);
  b->next_free = nullptr;
  return b;
}

void PayloadBuf::release_block(Block* b) {
  if (--b->refs != 0) return;
  Pool& p = pool();
  b->next_free = static_cast<Block*>(p.free_heads[b->size_class]);
  p.free_heads[b->size_class] = b;
  ++p.free_blocks;
}

void PayloadBuf::resize(size_t n) {
  resize_uninit(n);
  if (b_ != nullptr) std::memset(block_data(b_), 0, n);
}

void PayloadBuf::resize_uninit(size_t n) {
  release();
  if (n == 0) return;
  b_ = acquire(n);
}

uint64_t PayloadBuf::pool_misses() { return pool().misses; }
uint64_t PayloadBuf::pool_hits() { return pool().hits; }
size_t PayloadBuf::pool_free_blocks() { return pool().free_blocks; }

void PayloadBuf::pool_trim() {
  Pool& p = pool();
  for (int c = 0; c < kNumClasses; ++c) {
    Block* b = static_cast<Block*>(p.free_heads[c]);
    while (b != nullptr) {
      Block* next = b->next_free;
      ::operator delete(b);
      b = next;
      --p.free_blocks;
    }
    p.free_heads[c] = nullptr;
  }
}

}  // namespace hyperloop::rdma
