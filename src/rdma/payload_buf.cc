#include "rdma/payload_buf.h"

#include <bit>
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <new>

namespace hyperloop::rdma {

namespace {

// Size classes are powers of two from 64B up to 1GiB. Class i holds
// blocks of 64 << i payload bytes.
constexpr size_t kMinClassBytes = 64;
constexpr int kNumClasses = 25;

struct Pool {
  void* free_heads[kNumClasses] = {};
  uint64_t hits = 0;
  uint64_t misses = 0;
  size_t free_blocks = 0;
  uint64_t bytes_copied = 0;
};

Pool& pool() {
  static Pool p;
  return p;
}

int class_for(size_t n) {
  const size_t cap = n <= kMinClassBytes ? kMinClassBytes : std::bit_ceil(n);
  const int cls = std::countr_zero(cap) - std::countr_zero(kMinClassBytes);
  return cls;
}

size_t class_bytes(int cls) { return kMinClassBytes << cls; }

}  // namespace

PayloadBuf::Block* PayloadBuf::acquire(size_t n) {
  Pool& p = pool();
  const int cls = class_for(n);
  Block* b;
  if (p.free_heads[cls] != nullptr) {
    b = static_cast<Block*>(p.free_heads[cls]);
    p.free_heads[cls] = b->next_free;
    --p.free_blocks;
    ++p.hits;
  } else {
    b = static_cast<Block*>(
        ::operator new(sizeof(Block) + class_bytes(cls)));
    ++p.misses;
  }
  b->refs = 1;
  b->size = static_cast<uint32_t>(n);
  b->size_class = static_cast<uint8_t>(cls);
  b->next_free = nullptr;
  b->ext = nullptr;
  b->ext_addr = 0;
  b->borrow_next = nullptr;
  b->borrow_prev = nullptr;
  b->registry = nullptr;
  return b;
}

void PayloadBuf::release_block(Block* b) {
  if (--b->refs != 0) return;
  // A borrowed block going back to the pool just leaves the registry —
  // nobody can read it anymore, so no bytes need to move.
  if (b->ext != nullptr) unlink_borrow(b);
  Pool& p = pool();
  b->next_free = static_cast<Block*>(p.free_heads[b->size_class]);
  p.free_heads[b->size_class] = b;
  ++p.free_blocks;
}

void PayloadBuf::resize(size_t n) {
  resize_uninit(n);
  if (b_ != nullptr) std::memset(block_data(b_), 0, n);
}

void PayloadBuf::resize_uninit(size_t n) {
  release();
  off_ = 0;
  len_ = static_cast<uint32_t>(n);
  if (n == 0) return;
  b_ = acquire(n);
}

PayloadBuf PayloadBuf::slice(size_t off, size_t len) const {
  assert(off + len <= size());
  PayloadBuf v(*this);
  v.off_ = off_ + static_cast<uint32_t>(off);
  v.len_ = static_cast<uint32_t>(len);
  return v;
}

PayloadBuf PayloadBuf::borrow(BorrowRegistry& reg, const uint8_t* src,
                              uint64_t addr, size_t len) {
  PayloadBuf v;
  v.off_ = 0;
  v.len_ = static_cast<uint32_t>(len);
  if (len == 0) return v;
  Block* b = acquire(len);  // own storage reserved for materialization
  b->ext = src;
  b->ext_addr = addr;
  b->registry = &reg;
  b->borrow_next = reg.head_;
  b->borrow_prev = nullptr;
  if (reg.head_ != nullptr) reg.head_->borrow_prev = b;
  reg.head_ = b;
  if (addr < reg.lo_) reg.lo_ = addr;
  if (addr + len > reg.hi_) reg.hi_ = addr + len;
  v.b_ = b;
  return v;
}

void PayloadBuf::materialize(Block* b) {
  std::memcpy(block_data(b), b->ext, b->size);
  pool().bytes_copied += b->size;
  unlink_borrow(b);
}

void PayloadBuf::unlink_borrow(Block* b) {
  BorrowRegistry* reg = b->registry;
  if (b->borrow_prev != nullptr) {
    b->borrow_prev->borrow_next = b->borrow_next;
  } else {
    reg->head_ = b->borrow_next;
  }
  if (b->borrow_next != nullptr) b->borrow_next->borrow_prev = b->borrow_prev;
  b->ext = nullptr;
  b->borrow_next = nullptr;
  b->borrow_prev = nullptr;
  b->registry = nullptr;
  if (reg->head_ == nullptr) {
    reg->lo_ = ~uint64_t{0};
    reg->hi_ = 0;
  }
}

void PayloadBuf::BorrowRegistry::materialize_overlapping(uint64_t addr,
                                                         size_t len) {
  Block* b = head_;
  while (b != nullptr) {
    Block* next = b->borrow_next;
    if (addr < b->ext_addr + b->size && addr + len > b->ext_addr) {
      materialize(b);
    }
    b = next;
  }
}

void PayloadBuf::BorrowRegistry::materialize_all() {
  while (head_ != nullptr) materialize(head_);
}

size_t PayloadBuf::BorrowRegistry::live() const {
  size_t n = 0;
  for (const Block* b = head_; b != nullptr; b = b->borrow_next) ++n;
  return n;
}

uint64_t PayloadBuf::pool_misses() { return pool().misses; }
uint64_t PayloadBuf::pool_hits() { return pool().hits; }
size_t PayloadBuf::pool_free_blocks() { return pool().free_blocks; }

uint64_t PayloadBuf::bytes_copied() { return pool().bytes_copied; }
void PayloadBuf::add_bytes_copied(uint64_t n) { pool().bytes_copied += n; }

void PayloadBuf::pool_trim() {
  Pool& p = pool();
  for (int c = 0; c < kNumClasses; ++c) {
    Block* b = static_cast<Block*>(p.free_heads[c]);
    while (b != nullptr) {
      Block* next = b->next_free;
      ::operator delete(b);
      b = next;
      --p.free_blocks;
    }
    p.free_heads[c] = nullptr;
  }
}

}  // namespace hyperloop::rdma
