#include "rdma/wqe.h"

namespace hyperloop::rdma {

const char* opcode_name(Opcode op) {
  switch (op) {
    case Opcode::kNop: return "NOP";
    case Opcode::kWrite: return "WRITE";
    case Opcode::kWriteImm: return "WRITE_WITH_IMM";
    case Opcode::kSend: return "SEND";
    case Opcode::kRead: return "READ";
    case Opcode::kFlush: return "FLUSH";
    case Opcode::kCas: return "CAS";
    case Opcode::kLocalCopy: return "LOCAL_COPY";
    case Opcode::kWait: return "WAIT";
  }
  return "?";
}

Wqe make_write(Addr local, uint32_t lkey, Addr remote, uint32_t rkey,
               uint32_t len, uint64_t wr_id) {
  Wqe w;
  w.d.opcode = static_cast<uint8_t>(Opcode::kWrite);
  w.d.local_addr = local;
  w.d.lkey = lkey;
  w.d.remote_addr = remote;
  w.d.rkey = rkey;
  w.d.length = len;
  w.wr_id = wr_id;
  return w;
}

Wqe make_write_imm(Addr local, uint32_t lkey, Addr remote, uint32_t rkey,
                   uint32_t len, uint32_t imm, uint64_t wr_id) {
  Wqe w = make_write(local, lkey, remote, rkey, len, wr_id);
  w.d.opcode = static_cast<uint8_t>(Opcode::kWriteImm);
  w.d.imm = imm;
  return w;
}

Wqe make_send(Addr local, uint32_t lkey, uint32_t len, uint64_t wr_id) {
  Wqe w;
  w.d.opcode = static_cast<uint8_t>(Opcode::kSend);
  w.d.local_addr = local;
  w.d.lkey = lkey;
  w.d.length = len;
  w.wr_id = wr_id;
  return w;
}

Wqe make_read(Addr local, uint32_t lkey, Addr remote, uint32_t rkey,
              uint32_t len, uint64_t wr_id) {
  Wqe w;
  w.d.opcode = static_cast<uint8_t>(Opcode::kRead);
  w.d.local_addr = local;
  w.d.lkey = lkey;
  w.d.remote_addr = remote;
  w.d.rkey = rkey;
  w.d.length = len;
  w.wr_id = wr_id;
  return w;
}

Wqe make_flush(Addr remote, uint32_t rkey, uint64_t wr_id) {
  Wqe w;
  w.d.opcode = static_cast<uint8_t>(Opcode::kFlush);
  w.d.remote_addr = remote;
  w.d.rkey = rkey;
  w.d.length = 0;
  w.wr_id = wr_id;
  return w;
}

Wqe make_cas(Addr result, uint32_t lkey, Addr remote, uint32_t rkey,
             uint64_t compare, uint64_t swap, uint64_t wr_id) {
  Wqe w;
  w.d.opcode = static_cast<uint8_t>(Opcode::kCas);
  w.d.local_addr = result;
  w.d.lkey = lkey;
  w.d.remote_addr = remote;
  w.d.rkey = rkey;
  w.d.compare = compare;
  w.d.swap = swap;
  w.d.length = 8;
  w.wr_id = wr_id;
  return w;
}

Wqe make_local_copy(Addr src, Addr dst, uint32_t len, uint64_t wr_id) {
  Wqe w;
  w.d.opcode = static_cast<uint8_t>(Opcode::kLocalCopy);
  w.d.local_addr = src;
  w.d.remote_addr = dst;
  w.d.length = len;
  w.wr_id = wr_id;
  return w;
}

Wqe make_wait(uint32_t cq_id, uint64_t threshold, uint64_t wr_id) {
  Wqe w;
  w.d.opcode = static_cast<uint8_t>(Opcode::kWait);
  w.wait_cq = cq_id;
  w.wait_threshold = threshold;
  w.signaled = 0;
  w.wr_id = wr_id;
  return w;
}

Wqe make_nop(uint64_t wr_id) {
  Wqe w;
  w.d.opcode = static_cast<uint8_t>(Opcode::kNop);
  w.wr_id = wr_id;
  return w;
}

}  // namespace hyperloop::rdma
