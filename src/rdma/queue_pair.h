// Queue pair state.
//
// The send queue is a ring of `Wqe` slots that lives in registered host
// memory (allocated from HostMemory at creation), so remote NICs can patch
// descriptors via DMA — the enabling mechanism for HyperLoop's remote
// work-request manipulation. Receive WQEs are NIC-side (only send queues
// need to be remotely writable).
//
// Datapath notes: all per-QP transport queues are flat rings
// (sim::Ring) so steady-state traffic never touches the allocator, and
// the requester's retransmit window carries the completion bookkeeping
// inline (PendingWr) — matching a response to its work request is a ring
// walk from the window head, not a hash lookup.
#pragma once

#include <cstdint>
#include <vector>

#include "rdma/completion_queue.h"
#include "rdma/packet.h"
#include "rdma/wqe.h"
#include "sim/event_loop.h"
#include "sim/ring.h"

namespace hyperloop::rdma {

class Nic;

/// A shared receive queue (§5: "multiple clients can be supported using
/// shared receive queues on the first replica"): several QPs draw RECV
/// WQEs from one pool, so a replica can serve many upstream clients with
/// a single pre-posted ring.
struct SharedReceiveQueue {
  uint32_t srqn = 0;
  sim::Ring<RecvWqe> queue;
  /// QPNs of attached QPs, in attach order (RNR replay scans these).
  /// QPN-based, not pointer-based: a destroyed member goes stale via its
  /// generation tag instead of leaving a dangling pointer key.
  std::vector<uint32_t> member_qpns;
};

/// Requester-side completion bookkeeping for one in-flight work request,
/// carried inside the retransmit window entry.
struct PendingWr {
  uint64_t wr_id = 0;
  uint8_t opcode = 0;
  uint8_t signaled = 1;
  uint32_t byte_len = 0;
  Addr land_addr = 0;  ///< READ/CAS: where the response lands
};

/// One transmitted-but-unacknowledged request: the wire packet (payload
/// refcounted, not copied), its last send time, and the completion info.
struct TrackedRequest {
  sim::Time sent = 0;
  Packet pkt;
  PendingWr wr;
};

/// A cached response slot in the responder's direct-mapped replay ring
/// (psn_plus1 == 0 means empty; the ring keeps the last
/// kRespCacheEntries responses, exactly the old 128-PSN window).
struct CachedResponse {
  uint64_t psn_plus1 = 0;
  Packet resp;
};

/// A reliable-connected (or loopback) queue pair. Created and owned by a
/// Nic; treat fields as read-only outside rdma internals.
struct QueuePair {
  static constexpr uint64_t kRespCacheEntries = 128;

  uint32_t qpn = 0;
  Nic* nic = nullptr;

  bool connected = false;
  bool loopback = false;  ///< local-DMA QP (gCAS/gMEMCPY executor)
  NicId remote_nic = 0;
  uint32_t remote_qpn = 0;

  /// Send-queue ring: `sq_slots` Wqe-sized slots starting at sq_base in
  /// host memory. Slot for sequence s is sq_base + (s % sq_slots)*sizeof(Wqe).
  Addr sq_base = 0;
  uint32_t sq_slots = 0;
  uint64_t sq_head = 0;  ///< next WQE sequence the engine will examine
  uint64_t sq_tail = 0;  ///< next WQE sequence to be posted

  CompletionQueue* send_cq = nullptr;
  CompletionQueue* recv_cq = nullptr;

  sim::Ring<RecvWqe> recv_queue;
  /// When set, inbound SEND/WRITE_IMM consume from the SRQ instead of
  /// recv_queue.
  SharedReceiveQueue* srq = nullptr;
  /// Inbound SEND/WRITE_IMM packets that arrived before a RECV was posted
  /// (receiver-not-ready; replayed on the next post_recv).
  sim::Ring<Packet> stalled_inbound;

  bool engine_running = false;
  bool blocked_on_wait = false;
  /// True while this QP sits on the NIC's DMA-patch watch list (engine
  /// stalled at an inactive WQE awaiting a descriptor patch).
  bool on_dma_watch = false;

  /// Intrusive WAIT wiring: the CQ this QP is queued on (0 = none) and
  /// the next QP in that CQ's waiter list.
  uint32_t waiting_cqn = 0;
  uint32_t next_wait_qpn = 0;

  // --- RC transport state ---
  uint64_t next_psn = 0;      ///< requester: next request PSN to assign
  uint64_t expected_psn = 0;  ///< responder: next PSN accepted in order
  /// Requester: transmitted-but-unacknowledged requests in PSN order;
  /// go-back-N replay is a linear walk of this ring.
  sim::Ring<TrackedRequest> unacked;
  sim::EventId retry_timer = 0;
  /// Consecutive retransmission rounds without ACK progress; drives the
  /// capped exponential backoff and the receiver-not-ready retry budget.
  uint32_t retry_rounds = 0;
  /// Absolute time at which the current window head goes stale. The retry
  /// timer is lazy: ACK progress only moves this horizon (a field write);
  /// a pending timer that fires early re-arms itself at the horizon
  /// instead of being cancelled and re-created per acknowledged window.
  sim::Time retry_deadline = 0;
  /// Responder: direct-mapped replay ring of recent responses indexed by
  /// psn % kRespCacheEntries; sized lazily on first response so
  /// requester-only QPs never pay for it.
  std::vector<CachedResponse> resp_cache;

  /// Index of this QP's slot in the NIC's connection-context cache
  /// (-1 = not resident). Backpointer makes every cache touch O(1);
  /// maintained by Nic::qp_context_touch / destroy_qp.
  int32_t ctx_cache_slot = -1;

  /// Address of the slot holding WQE sequence `seq`.
  Addr slot_addr(uint64_t seq) const {
    return sq_base + (seq % sq_slots) * sizeof(Wqe);
  }
  /// End of the send-queue ring region.
  Addr sq_end() const { return sq_base + uint64_t{sq_slots} * sizeof(Wqe); }

  /// Posted-but-unconsumed send WQEs.
  uint64_t sq_depth() const { return sq_tail - sq_head; }
};

}  // namespace hyperloop::rdma
