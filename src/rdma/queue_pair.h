// Queue pair state.
//
// The send queue is a ring of `Wqe` slots that lives in registered host
// memory (allocated from HostMemory at creation), so remote NICs can patch
// descriptors via DMA — the enabling mechanism for HyperLoop's remote
// work-request manipulation. Receive WQEs are NIC-side (only send queues
// need to be remotely writable).
#pragma once

#include <cstdint>
#include <deque>
#include <map>

#include "rdma/completion_queue.h"
#include "rdma/packet.h"
#include "rdma/wqe.h"
#include "sim/event_loop.h"

namespace hyperloop::rdma {

class Nic;

/// A shared receive queue (§5: "multiple clients can be supported using
/// shared receive queues on the first replica"): several QPs draw RECV
/// WQEs from one pool, so a replica can serve many upstream clients with
/// a single pre-posted ring.
struct SharedReceiveQueue {
  uint32_t srqn = 0;
  std::deque<RecvWqe> queue;
};

/// A reliable-connected (or loopback) queue pair. Created and owned by a
/// Nic; treat fields as read-only outside rdma internals.
struct QueuePair {
  uint32_t qpn = 0;
  Nic* nic = nullptr;

  bool connected = false;
  bool loopback = false;  ///< local-DMA QP (gCAS/gMEMCPY executor)
  NicId remote_nic = 0;
  uint32_t remote_qpn = 0;

  /// Send-queue ring: `sq_slots` Wqe-sized slots starting at sq_base in
  /// host memory. Slot for sequence s is sq_base + (s % sq_slots)*sizeof(Wqe).
  Addr sq_base = 0;
  uint32_t sq_slots = 0;
  uint64_t sq_head = 0;  ///< next WQE sequence the engine will examine
  uint64_t sq_tail = 0;  ///< next WQE sequence to be posted

  CompletionQueue* send_cq = nullptr;
  CompletionQueue* recv_cq = nullptr;

  std::deque<RecvWqe> recv_queue;
  /// When set, inbound SEND/WRITE_IMM consume from the SRQ instead of
  /// recv_queue.
  SharedReceiveQueue* srq = nullptr;
  /// Inbound SEND/WRITE_IMM packets that arrived before a RECV was posted
  /// (receiver-not-ready; replayed on the next post_recv).
  std::deque<Packet> stalled_inbound;

  bool engine_running = false;
  bool blocked_on_wait = false;

  // --- RC transport state ---
  uint64_t next_psn = 0;      ///< requester: next request PSN to assign
  uint64_t expected_psn = 0;  ///< responder: next PSN accepted in order
  /// Requester: transmitted-but-unacknowledged requests (with send time),
  /// PSN order, for go-back-N retransmission.
  std::deque<std::pair<sim::Time, Packet>> unacked;
  sim::EventId retry_timer = 0;
  /// Consecutive retransmission rounds without ACK progress; drives the
  /// capped exponential backoff and the receiver-not-ready retry budget.
  uint32_t retry_rounds = 0;
  /// Responder: recent responses keyed by request PSN, replayed when a
  /// duplicate request arrives (lost-response recovery).
  std::map<uint64_t, Packet> resp_cache;

  /// Address of the slot holding WQE sequence `seq`.
  Addr slot_addr(uint64_t seq) const {
    return sq_base + (seq % sq_slots) * sizeof(Wqe);
  }
  /// End of the send-queue ring region.
  Addr sq_end() const { return sq_base + uint64_t{sq_slots} * sizeof(Wqe); }

  /// Posted-but-unconsumed send WQEs.
  uint64_t sq_depth() const { return sq_tail - sq_head; }
};

}  // namespace hyperloop::rdma
