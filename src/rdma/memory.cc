#include "rdma/memory.h"

#include <algorithm>
#include <cassert>

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace hyperloop::rdma {

void HostMemory::advise_hugepages(void* base, size_t len) {
#if defined(__linux__) && defined(MADV_HUGEPAGE)
  // Round inward to 2 MB boundaries — madvise wants aligned pages, and
  // partial huge pages at the edges are not worth asking for.
  constexpr uintptr_t kHuge = 2u << 20;
  uintptr_t lo = (reinterpret_cast<uintptr_t>(base) + kHuge - 1) & ~(kHuge - 1);
  uintptr_t hi = (reinterpret_cast<uintptr_t>(base) + len) & ~(kHuge - 1);
  if (hi > lo) madvise(reinterpret_cast<void*>(lo), hi - lo, MADV_HUGEPAGE);
#else
  (void)base;
  (void)len;
#endif
}

Addr HostMemory::alloc(size_t size, size_t align) {
  assert(align != 0 && (align & (align - 1)) == 0);
  size_t base = (next_ + align - 1) & ~(align - 1);
  assert(base + size <= bytes_.size() && "HostMemory exhausted");
  next_ = base + size;
  return base;
}

void HostMemory::check(Addr addr, size_t len) const {
  assert(addr + len <= bytes_.size() && "HostMemory access out of bounds");
  (void)addr;
  (void)len;
}

void HostMemory::write(Addr addr, const void* src, size_t len) {
  if (len == 0) return;
  check(addr, len);
  // Copy-on-write: borrows over this range keep the pre-store bytes.
  borrows_.materialize_range(addr, len);
  std::memcpy(bytes_.data() + addr, src, len);
  if (watched(addr, len)) notify(addr, len);
}

void HostMemory::restore(Addr addr, const void* src, size_t len) {
  if (len == 0) return;
  check(addr, len);
  borrows_.materialize_range(addr, len);
  std::memcpy(bytes_.data() + addr, src, len);
}

void HostMemory::read(Addr addr, void* dst, size_t len) const {
  if (len == 0) return;
  check(addr, len);
  std::memcpy(dst, bytes_.data() + addr, len);
}

void HostMemory::copy(Addr dst, Addr src, size_t len) {
  if (len == 0) return;
  check(dst, len);
  check(src, len);
  borrows_.materialize_range(dst, len);
  std::memmove(bytes_.data() + dst, bytes_.data() + src, len);
  if (watched(dst, len)) notify(dst, len);
}

void HostMemory::fill(Addr addr, uint8_t value, size_t len) {
  if (len == 0) return;
  check(addr, len);
  borrows_.materialize_range(addr, len);
  std::memset(bytes_.data() + addr, value, len);
  if (watched(addr, len)) notify(addr, len);
}

void HostMemory::add_write_observer(Addr begin, Addr end,
                                    sim::SmallFn<void(Addr, size_t)> fn) {
  assert(begin < end && "observer must watch a non-empty range");
  observers_.push_back(WriteObserver{begin, end, std::move(fn)});
  watch_lo_ = std::min(watch_lo_, begin);
  watch_hi_ = std::max(watch_hi_, end);
}

void HostMemory::notify(Addr addr, size_t len) {
  for (auto& o : observers_) {
    if (addr < o.end && addr + len > o.begin) o.fn(addr, len);
  }
}

const uint8_t* HostMemory::view(Addr addr, size_t len) const {
  check(addr, len);
  return bytes_.data() + addr;
}

PayloadBuf HostMemory::borrow_payload(Addr addr, size_t len) {
  check(addr, len);
  return PayloadBuf::borrow(borrows_, bytes_.data() + addr, addr, len);
}

MemoryRegion MrTable::register_mr(Addr addr, uint64_t length, uint32_t access) {
  uint32_t idx;
  if (!free_.empty()) {
    idx = free_.back();
    free_.pop_back();
  } else {
    idx = static_cast<uint32_t>(slots_.size());
    assert(idx <= kSlotMask && "MR table exhausted");
    slots_.emplace_back();
    slots_.back().gen = 1;
  }
  Slot& s = slots_[idx];
  s.live = true;
  s.mr.addr = addr;
  s.mr.length = length;
  s.mr.access = access;
  s.mr.lkey = (s.gen << kSlotBits) | idx;
  s.mr.rkey = s.mr.lkey | kRemoteKeyBit;
  ++live_;
  return s.mr;
}

bool MrTable::deregister(uint32_t rkey) {
  if ((rkey & kRemoteKeyBit) == 0) return false;
  const uint32_t idx = rkey & kSlotMask;
  if (idx >= slots_.size()) return false;
  Slot& s = slots_[idx];
  if (!s.live || ((rkey >> kSlotBits) & kGenMask) != s.gen) return false;
  s.live = false;
  if (++s.gen > kGenMask) s.gen = 1;  // wrap, never issue generation 0
  free_.push_back(idx);
  --live_;
  return true;
}

bool MrTable::in_bounds(const MemoryRegion& mr, Addr addr, uint64_t len) {
  return addr >= mr.addr && addr + len <= mr.addr + mr.length;
}

const MemoryRegion* MrTable::lookup(uint32_t key, bool remote) const {
  if (((key & kRemoteKeyBit) != 0) != remote) return nullptr;
  const uint32_t idx = key & kSlotMask;
  if (idx >= slots_.size()) return nullptr;
  const Slot& s = slots_[idx];
  if (!s.live || ((key >> kSlotBits) & kGenMask) != s.gen) return nullptr;
  return &s.mr;
}

bool MrTable::check_remote(uint32_t rkey, Addr addr, uint64_t len,
                           uint32_t need) const {
  const MemoryRegion* mr = lookup(rkey, /*remote=*/true);
  if (mr == nullptr) return false;
  if ((mr->access & need) != need) return false;
  return in_bounds(*mr, addr, len);
}

bool MrTable::check_local(uint32_t lkey, Addr addr, uint64_t len) const {
  const MemoryRegion* mr = lookup(lkey, /*remote=*/false);
  if (mr == nullptr) return false;
  return in_bounds(*mr, addr, len);
}

}  // namespace hyperloop::rdma
