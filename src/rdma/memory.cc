#include "rdma/memory.h"

#include <cassert>

namespace hyperloop::rdma {

Addr HostMemory::alloc(size_t size, size_t align) {
  assert(align != 0 && (align & (align - 1)) == 0);
  size_t base = (next_ + align - 1) & ~(align - 1);
  assert(base + size <= bytes_.size() && "HostMemory exhausted");
  next_ = base + size;
  return base;
}

void HostMemory::check(Addr addr, size_t len) const {
  assert(addr + len <= bytes_.size() && "HostMemory access out of bounds");
  (void)addr;
  (void)len;
}

void HostMemory::write(Addr addr, const void* src, size_t len) {
  if (len == 0) return;
  check(addr, len);
  std::memcpy(bytes_.data() + addr, src, len);
  for (const auto& fn : observers_) fn(addr, len);
}

void HostMemory::read(Addr addr, void* dst, size_t len) const {
  if (len == 0) return;
  check(addr, len);
  std::memcpy(dst, bytes_.data() + addr, len);
}

void HostMemory::copy(Addr dst, Addr src, size_t len) {
  if (len == 0) return;
  check(dst, len);
  check(src, len);
  std::memmove(bytes_.data() + dst, bytes_.data() + src, len);
  for (const auto& fn : observers_) fn(dst, len);
}

void HostMemory::fill(Addr addr, uint8_t value, size_t len) {
  if (len == 0) return;
  check(addr, len);
  std::memset(bytes_.data() + addr, value, len);
  for (const auto& fn : observers_) fn(addr, len);
}

const uint8_t* HostMemory::view(Addr addr, size_t len) const {
  check(addr, len);
  return bytes_.data() + addr;
}

MemoryRegion MrTable::register_mr(Addr addr, uint64_t length, uint32_t access) {
  MemoryRegion mr;
  mr.addr = addr;
  mr.length = length;
  mr.access = access;
  mr.lkey = next_key_++;
  mr.rkey = next_key_++;
  by_rkey_.emplace(mr.rkey, mr);
  by_lkey_.emplace(mr.lkey, mr);
  return mr;
}

bool MrTable::deregister(uint32_t rkey) {
  auto it = by_rkey_.find(rkey);
  if (it == by_rkey_.end()) return false;
  by_lkey_.erase(it->second.lkey);
  by_rkey_.erase(it);
  return true;
}

bool MrTable::in_bounds(const MemoryRegion& mr, Addr addr, uint64_t len) {
  return addr >= mr.addr && addr + len <= mr.addr + mr.length;
}

bool MrTable::check_remote(uint32_t rkey, Addr addr, uint64_t len,
                           uint32_t need) const {
  auto it = by_rkey_.find(rkey);
  if (it == by_rkey_.end()) return false;
  const MemoryRegion& mr = it->second;
  if ((mr.access & need) != need) return false;
  return in_bounds(mr, addr, len);
}

bool MrTable::check_local(uint32_t lkey, Addr addr, uint64_t len) const {
  auto it = by_lkey_.find(lkey);
  if (it == by_lkey_.end()) return false;
  return in_bounds(it->second, addr, len);
}

}  // namespace hyperloop::rdma
