// Per-server host memory and RDMA memory-region registration.
//
// Each simulated server owns one flat HostMemory address space (a bump
// allocator over a byte arena). All mutation goes through write()/
// write_obj() so that observers — the NVM durability tracker — see every
// store, whether it came from the CPU or a NIC DMA engine. Observers are
// range-filtered: each registers the [begin, end) window it watches, and
// stores outside every watched window skip dispatch with a single compare
// against the cached union of all windows — WQE patches, CQE writes and
// payload staging never pay an indirect observer call.
//
// MrTable models the protection domain: regions are registered with access
// rights and receive lkey/rkey capabilities; every NIC access is checked
// against (key, bounds, rights), exactly the checks that keep HyperLoop's
// remotely-writable work queues safe (§7, security analysis).
#pragma once

#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

#include "rdma/payload_buf.h"
#include "sim/small_fn.h"

namespace hyperloop::rdma {

/// A virtual address within a server's HostMemory space.
using Addr = uint64_t;

/// Access rights for a registered memory region (bitmask).
enum Access : uint32_t {
  kLocalWrite = 1u << 0,
  kRemoteRead = 1u << 1,
  kRemoteWrite = 1u << 2,
  kRemoteAtomic = 1u << 3,
};

/// One server's physical memory: arena + bump allocator + write observers.
class HostMemory {
 public:
  explicit HostMemory(size_t capacity) {
    // Advise after the allocation but before the zero-fill touches the
    // pages, so the kernel can satisfy the first faults with huge pages.
    bytes_.reserve(capacity);
    advise_hugepages(bytes_.data(), capacity);
    bytes_.resize(capacity);
  }
  HostMemory(const HostMemory&) = delete;
  HostMemory& operator=(const HostMemory&) = delete;

  /// Allocates `size` bytes aligned to `align` (power of two).
  /// Terminates the simulation (assert) on exhaustion — capacity is an
  /// experiment parameter, not a runtime condition.
  Addr alloc(size_t size, size_t align = 64);

  /// Copies `len` bytes into memory at `addr`, notifying observers whose
  /// watched range overlaps the write.
  void write(Addr addr, const void* src, size_t len);

  /// Copies `len` bytes into memory at `addr` WITHOUT notifying observers.
  /// This is the durability-revert path: NvmDevice::crash() restores the
  /// durable image through it, so the restore does not re-mark the
  /// restored ranges dirty. Simulation code modeling real stores must use
  /// write() instead.
  void restore(Addr addr, const void* src, size_t len);

  /// Copies `len` bytes out of memory at `addr`.
  void read(Addr addr, void* dst, size_t len) const;

  /// Memory-to-memory copy within this address space (DMA engines use
  /// this for gMEMCPY); handles overlap like memmove.
  void copy(Addr dst, Addr src, size_t len);

  /// Fills `len` bytes at `addr` with `value`.
  void fill(Addr addr, uint8_t value, size_t len);

  /// Typed load of a trivially-copyable object.
  template <typename T>
  T read_obj(Addr addr) const {
    static_assert(std::is_trivially_copyable_v<T>);
    T t;
    read(addr, &t, sizeof(T));
    return t;
  }

  /// Typed store of a trivially-copyable object.
  template <typename T>
  void write_obj(Addr addr, const T& t) {
    static_assert(std::is_trivially_copyable_v<T>);
    write(addr, &t, sizeof(T));
  }

  /// Read-only raw view (bounds-checked); used for payload gathers.
  const uint8_t* view(Addr addr, size_t len) const;

  /// Zero-copy payload gather: a PayloadBuf aliasing [addr, addr+len)
  /// directly, registered so any later overlapping store (or arena
  /// teardown) first materializes the old bytes into the buffer's own
  /// storage. This is the single-copy forwarding path — the borrow
  /// itself moves no bytes.
  PayloadBuf borrow_payload(Addr addr, size_t len);

  /// Live zero-copy borrows over this arena (tests).
  size_t live_borrows() const { return borrows_.live(); }

  /// Registers an observer called after every write overlapping
  /// [begin, end) with the written (addr, len). Writes entirely outside
  /// every registered window are filtered before any indirect call.
  void add_write_observer(Addr begin, Addr end,
                          sim::SmallFn<void(Addr, size_t)> fn);

  size_t capacity() const { return bytes_.size(); }
  size_t used() const { return next_; }

 private:
  struct WriteObserver {
    Addr begin;
    Addr end;
    sim::SmallFn<void(Addr, size_t)> fn;
  };

  void check(Addr addr, size_t len) const;

  /// Asks the kernel to back the arena with huge pages (MADV_HUGEPAGE)
  /// where available. Arenas are tens of megabytes and every payload
  /// gather/scatter streams through them, so 4 KB pages spend a
  /// measurable share of copy time on TLB refills. Advisory only — a
  /// no-op on kernels or configs without THP.
  static void advise_hugepages(void* base, size_t len);

  /// Fast-path filter: true iff [addr, addr+len) overlaps the union
  /// bounding box of all watched ranges. With no observers watch_hi_ is 0,
  /// so the first compare rejects everything; with the usual single NVM
  /// observer the box IS the watched range.
  bool watched(Addr addr, size_t len) const {
    return addr < watch_hi_ && addr + len > watch_lo_;
  }

  /// Out-of-line slow path: dispatch to each overlapping observer.
  void notify(Addr addr, size_t len);

  std::vector<uint8_t> bytes_;
  size_t next_ = 64;  // keep address 0 unused as a poison value
  std::vector<WriteObserver> observers_;
  Addr watch_lo_ = ~Addr{0};  // union bounding box of watched ranges
  Addr watch_hi_ = 0;
  // Declared after bytes_ so ~BorrowRegistry (materialize_all) runs
  // first, while the arena bytes it copies from are still alive.
  PayloadBuf::BorrowRegistry borrows_;
};

/// A registered memory region.
struct MemoryRegion {
  Addr addr = 0;
  uint64_t length = 0;
  uint32_t lkey = 0;
  uint32_t rkey = 0;
  uint32_t access = 0;
};

/// Registration table for one server (protection-domain scope).
///
/// Keys are dense and generation-tagged rather than hashed: bits 0..19
/// index the registration slot, bits 20..30 carry the slot's generation
/// (1..2047, wrapping), and bit 31 distinguishes rkey (set) from lkey
/// (clear). Every per-packet protection check is therefore an array probe
/// plus a compare, and a deregistered key held by an in-flight packet is
/// detected by the generation mismatch — it can never alias a region that
/// later recycled the slot.
class MrTable {
 public:
  static constexpr uint32_t kSlotBits = 20;
  static constexpr uint32_t kSlotMask = (1u << kSlotBits) - 1;
  static constexpr uint32_t kGenBits = 11;
  static constexpr uint32_t kGenMask = (1u << kGenBits) - 1;
  static constexpr uint32_t kRemoteKeyBit = 1u << 31;

  /// Registers [addr, addr+length) with the given access rights.
  MemoryRegion register_mr(Addr addr, uint64_t length, uint32_t access);

  /// Revokes a registration by its rkey. Returns false if unknown. The
  /// slot's generation is bumped, so stale keys from in-flight packets
  /// fail the protection check even after the slot is reused.
  bool deregister(uint32_t rkey);

  /// Checks that `key` grants `need` access over [addr, addr+len).
  /// `key` is matched against rkey for remote rights and lkey for local.
  bool check_remote(uint32_t rkey, Addr addr, uint64_t len, uint32_t need) const;
  bool check_local(uint32_t lkey, Addr addr, uint64_t len) const;

  size_t size() const { return live_; }

 private:
  struct Slot {
    uint32_t gen = 0;
    bool live = false;
    MemoryRegion mr;
  };

  static bool in_bounds(const MemoryRegion& mr, Addr addr, uint64_t len);
  const MemoryRegion* lookup(uint32_t key, bool remote) const;

  std::vector<Slot> slots_;
  std::vector<uint32_t> free_;
  size_t live_ = 0;
};

}  // namespace hyperloop::rdma
