// Wire messages exchanged between simulated NICs.
//
// One Packet models one RDMA transport message (request or response) on a
// reliable connection. Per-source egress serialization plus fixed
// propagation delay in Network preserves RC ordering: packets posted in
// order on the same QP arrive and are processed in order.
#pragma once

#include <cstdint>

#include "rdma/memory.h"
#include "rdma/payload_buf.h"

namespace hyperloop::rdma {

/// Identifies a NIC on the fabric.
using NicId = uint32_t;

/// Packet::flags bits.
enum PacketFlags : uint8_t {
  /// Request asks the responder to skip the standalone success ACK; a
  /// later cumulative response (ReadResp/ACK at a higher PSN on the same
  /// QP) acknowledges it. Error responses are never elided.
  kPacketFlagAckElide = 1u << 0,
};

struct Packet {
  enum class Type : uint8_t {
    kSend,      ///< two-sided send; consumes a RECV at the destination
    kWrite,     ///< one-sided write
    kWriteImm,  ///< one-sided write + immediate (consumes a RECV)
    kRead,      ///< read request (length 0 == durability flush, §4.2 gFLUSH)
    kReadResp,  ///< read response carrying data
    kCas,       ///< compare-and-swap request
    kCasResp,   ///< CAS response carrying the original value
    kAck,       ///< acknowledgement completing WRITE/SEND at the requester
  };

  Type type = Type::kSend;
  NicId src_nic = 0;
  NicId dst_nic = 0;
  uint32_t src_qpn = 0;  ///< requester QP (responses are routed back to it)
  uint32_t dst_qpn = 0;
  uint64_t wr_seq = 0;   ///< requester-side sequence for response matching
  /// Packet sequence number within the QP's request stream. The RC
  /// transport delivers requests in PSN order: the responder accepts
  /// exactly expected_psn, drops ahead-of-sequence packets (go-back-N) and
  /// replays cached responses for duplicates.
  uint64_t psn = 0;

  bool is_request() const {
    return type != Type::kAck && type != Type::kReadResp &&
           type != Type::kCasResp;
  }

  Addr remote_addr = 0;
  uint32_t rkey = 0;
  uint32_t length = 0;
  uint32_t imm = 0;
  uint64_t compare = 0;
  uint64_t swap = 0;
  uint8_t status = 0;  ///< responses: CqStatus
  uint8_t flags = 0;   ///< PacketFlags bitmask

  /// Pooled and refcounted: copying a Packet (retransmit window, response
  /// cache, in-flight delivery) shares one block instead of copying bytes.
  PayloadBuf payload;

  /// Bytes this packet occupies on the wire (payload + header estimate).
  size_t wire_bytes() const { return payload.size() + 64; }
};

}  // namespace hyperloop::rdma
