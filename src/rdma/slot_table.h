// Dense generation-tagged object tables for the NIC datapath.
//
// Every packet the simulated NIC receives resolves a QPN and (for WAITs
// and completions) a CQN. With unordered_map those were a hash + probe +
// pointer chase per packet; SlotTable makes them one array index plus a
// generation compare — the same (gen << kSlotBits) | slot idiom the
// EventLoop slab uses for EventIds. Destroying an object bumps its slot's
// generation, so a stale id carried by an in-flight packet resolves to
// nullptr instead of whatever object later recycled the slot.
//
// Ids fit uint32_t (QPN/CQN wire width): low 20 bits index the slot
// (1M objects), high 12 bits carry the generation (1..4095, wrapping —
// stale-id detection is exact until a single slot is reused 4095 times).
// Generation 0 is never issued, so every valid id is nonzero.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

namespace hyperloop::rdma {

template <typename T>
class SlotTable {
 public:
  static constexpr uint32_t kSlotBits = 20;
  static constexpr uint32_t kSlotMask = (1u << kSlotBits) - 1;
  static constexpr uint32_t kGenMask = 0xFFFu;

  /// Reserves a slot and returns its packed id; install() the object next.
  uint32_t alloc() {
    uint32_t idx;
    if (!free_.empty()) {
      idx = free_.back();
      free_.pop_back();
    } else {
      idx = static_cast<uint32_t>(slots_.size());
      assert(idx <= kSlotMask && "slot table exhausted");
      slots_.emplace_back();
      slots_.back().gen = 1;
    }
    return (slots_[idx].gen << kSlotBits) | idx;
  }

  void install(uint32_t id, std::unique_ptr<T> obj) {
    Slot& s = slots_[id & kSlotMask];
    assert(s.gen == ((id >> kSlotBits) & kGenMask) && s.obj == nullptr);
    s.obj = std::move(obj);
    ++live_;
  }

  /// O(1) probe: nullptr for unknown, destroyed, or recycled-slot ids.
  T* get(uint32_t id) const {
    const uint32_t idx = id & kSlotMask;
    if (idx >= slots_.size()) return nullptr;
    const Slot& s = slots_[idx];
    if (s.gen != ((id >> kSlotBits) & kGenMask)) return nullptr;
    return s.obj.get();
  }

  /// Destroys the object and retires the id (generation bump).
  std::unique_ptr<T> erase(uint32_t id) {
    T* obj = get(id);
    if (obj == nullptr) return nullptr;
    const uint32_t idx = id & kSlotMask;
    Slot& s = slots_[idx];
    if (++s.gen > kGenMask) s.gen = 1;  // wrap, never issue generation 0
    free_.push_back(idx);
    --live_;
    return std::move(s.obj);
  }

  size_t live() const { return live_; }

  template <typename F>
  void for_each(F&& fn) const {
    for (const Slot& s : slots_) {
      if (s.obj != nullptr) fn(s.obj.get());
    }
  }

 private:
  struct Slot {
    uint32_t gen = 0;
    std::unique_ptr<T> obj;
  };

  std::vector<Slot> slots_;
  std::vector<uint32_t> free_;
  size_t live_ = 0;
};

}  // namespace hyperloop::rdma
