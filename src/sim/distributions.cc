#include "sim/distributions.h"

#include <cmath>

namespace hyperloop::sim {

Duration Exponential::sample(Rng& rng) const {
  // Inverse CDF; 1 - u avoids log(0).
  const double u = 1.0 - rng.next_double();
  const double v = -mean_ * std::log(u);
  return static_cast<Duration>(v);
}

Duration LogNormal::sample(Rng& rng) const {
  // Box-Muller for a standard normal draw.
  const double u1 = 1.0 - rng.next_double();
  const double u2 = rng.next_double();
  const double z =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  const double v = mu_log_ * std::exp(sigma_ * z);
  return static_cast<Duration>(v);
}

double ZipfianGenerator::zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(double(i), theta);
  return sum;
}

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta)
    : n_(n), theta_(theta) {
  zetan_ = zeta(n, theta);
  zeta2theta_ = zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / double(n), 1.0 - theta)) /
         (1.0 - zeta2theta_ / zetan_);
}

uint64_t ZipfianGenerator::sample(Rng& rng) const {
  const double u = rng.next_double();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const auto v = static_cast<uint64_t>(
      double(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return v >= n_ ? n_ - 1 : v;
}

uint64_t ScrambledZipfian::fnv_hash(uint64_t v) {
  // FNV-1a on the 8 bytes of v, as in YCSB's Utils.fnvhash64.
  const uint64_t kPrime = 1099511628211ULL;
  uint64_t h = 0xCBF29CE484222325ULL;
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= kPrime;
  }
  return h;
}

uint64_t ScrambledZipfian::sample(Rng& rng) const {
  return fnv_hash(zipf_.sample(rng)) % n_;
}

uint64_t LatestGenerator::sample(Rng& rng, uint64_t current_count) {
  // YCSB's SkewedLatestGenerator: zipfian over the current count, mirrored
  // so rank 0 maps to the newest item. Rebuild the zipfian only when the
  // population has grown noticeably (>= 5%) to avoid O(n) work per draw.
  if (!zipf_ || current_count > cached_n_ + cached_n_ / 20 ||
      current_count < cached_n_) {
    cached_n_ = current_count;
    zipf_ = std::make_unique<ZipfianGenerator>(current_count, theta_);
  }
  uint64_t off = zipf_->sample(rng);
  if (off >= current_count) off = current_count - 1;
  return current_count - 1 - off;
}

}  // namespace hyperloop::sim
