// Deterministic discrete-event simulation core.
//
// The event loop is the heartbeat of the whole reproduction: NICs, links,
// CPU schedulers, storage engines and benchmark drivers all advance by
// scheduling closures at future simulated instants. Determinism is
// guaranteed by (a) a single-threaded loop and (b) FIFO tie-breaking among
// events scheduled for the same instant (via a monotonically increasing
// sequence number).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sim/time.h"

namespace hyperloop::sim {

/// Identifies a scheduled event so it can be cancelled before it fires.
using EventId = uint64_t;

/// A single-threaded, deterministic discrete-event loop.
///
/// Events are closures ordered by (time, insertion sequence). `run()`
/// drains the queue; `run_until()` stops the clock at a given instant,
/// leaving later events pending. Cancellation is lazy: cancelled events
/// stay in the heap but are skipped when popped.
class EventLoop {
 public:
  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Current simulated time.
  Time now() const { return now_; }

  /// Schedules `fn` to run at absolute simulated time `t`.
  /// Scheduling in the past is clamped to `now()` (fires "immediately",
  /// after already-pending events at `now()`).
  EventId schedule_at(Time t, std::function<void()> fn);

  /// Schedules `fn` to run `delay` nanoseconds from now.
  EventId schedule_after(Duration delay, std::function<void()> fn);

  /// Cancels a pending event. Returns true if the event existed and had
  /// not yet fired; false otherwise (already fired or already cancelled).
  bool cancel(EventId id);

  /// Runs until the queue is empty or `stop()` is called.
  /// Returns the number of events executed.
  uint64_t run();

  /// Runs events with time <= `deadline`, then sets now() == deadline.
  /// Returns the number of events executed.
  uint64_t run_until(Time deadline);

  /// Runs events for `span` nanoseconds of simulated time from now().
  uint64_t run_for(Duration span) { return run_until(now_ + span); }

  /// Requests that `run()`/`run_until()` return after the current event.
  void stop() { stopped_ = true; }

  /// Number of live (not cancelled) pending events.
  size_t pending() const { return live_.size(); }

  /// Total events executed since construction.
  uint64_t executed() const { return executed_; }

 private:
  struct Entry {
    Time time;
    uint64_t seq;
    EventId id;
  };
  struct EntryLater {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  // Pops heap entries until a live one is found. Returns false when the
  // heap holds only cancelled entries (or nothing).
  bool pop_next(Entry* out);

  Time now_ = 0;
  uint64_t seq_ = 0;
  EventId next_id_ = 1;
  bool stopped_ = false;
  uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, EntryLater> heap_;
  // id -> closure; erased on cancel so stale heap entries are skipped.
  std::unordered_map<EventId, std::function<void()>> live_;
};

}  // namespace hyperloop::sim
