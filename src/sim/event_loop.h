// Deterministic discrete-event simulation core.
//
// The event loop is the heartbeat of the whole reproduction: NICs, links,
// CPU schedulers, storage engines and benchmark drivers all advance by
// scheduling closures at future simulated instants. Determinism is
// guaranteed by (a) a single-threaded loop and (b) FIFO tie-breaking among
// events scheduled for the same instant (via a monotonically increasing
// sequence number).
//
// Hot-path design (zero steady-state allocation):
//   * Event records live in a chunked slab of fixed-size slots. Slot
//     addresses are stable (chunks never move), so callbacks may schedule
//     further events while running without invalidating their own storage.
//   * An EventId packs (generation << 32 | slot index). cancel() is O(1):
//     index into the slab, compare generations — no hashing, no map.
//     Generations are bumped when a slot is recycled, so a stale id for a
//     reused slot is rejected.
//   * Pending events are ordered by a 4-ary min-heap of (time, seq, slot)
//     entries. 4-ary halves tree depth versus binary, and sift steps stay
//     inside one cache line of entries.
//   * Cancellation is lazy: the slot is marked dead (its callback is
//     destroyed eagerly to release captured resources) and the heap entry
//     is skipped and recycled when it surfaces.
//   * Callbacks are stored inline in the slot when they fit
//     kInlineCallbackBytes (covers every capture in the simulator's hot
//     paths, including full Packet captures); larger callables fall back
//     to one heap allocation, counted in callback_heap_allocs().
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/time.h"

namespace hyperloop::sim {

/// Identifies a scheduled event so it can be cancelled before it fires.
/// Packs (generation << 32 | slot index); never 0, so 0 can be used as a
/// "no event" sentinel by callers.
using EventId = uint64_t;

/// A single-threaded, deterministic discrete-event loop.
///
/// Events are closures ordered by (time, insertion sequence). `run()`
/// drains the queue; `run_until()` stops the clock at a given instant,
/// leaving later events pending. Cancellation is lazy: cancelled events
/// stay in the heap but are skipped when popped.
class EventLoop {
 public:
  /// Callbacks whose size is <= this are stored inline in the slab (no
  /// heap allocation). Sized so a lambda capturing [this, Packet] in the
  /// RDMA delivery path fits.
  static constexpr size_t kInlineCallbackBytes = 112;

  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;
  ~EventLoop();

  /// Current simulated time.
  Time now() const { return now_; }

  /// Schedules `fn` to run at absolute simulated time `t`.
  /// Scheduling in the past is clamped to `now()` (fires "immediately",
  /// after already-pending events at `now()`).
  template <typename F>
  EventId schedule_at(Time t, F&& fn) {
    if (t < now_) t = now_;
    const uint32_t idx = alloc_slot();
    Slot& s = slot(idx);
    emplace_callback(s, std::forward<F>(fn));
    s.state = Slot::kPending;
    heap_push(HeapEntry{t, seq_++, idx});
    ++live_;
    return (uint64_t{s.gen} << 32) | idx;
  }

  /// Schedules `fn` to run `delay` nanoseconds from now.
  template <typename F>
  EventId schedule_after(Duration delay, F&& fn) {
    return schedule_at(now_ + (delay < 0 ? 0 : delay),
                       std::forward<F>(fn));
  }

  /// Cancels a pending event. Returns true if the event existed and had
  /// not yet fired; false otherwise (already fired or already cancelled).
  bool cancel(EventId id);

  /// Runs until the queue is empty or `stop()` is called.
  /// Returns the number of events executed.
  uint64_t run();

  /// Runs events with time <= `deadline`, then sets now() == deadline.
  /// Returns the number of events executed.
  uint64_t run_until(Time deadline);

  /// Runs events for `span` nanoseconds of simulated time from now().
  uint64_t run_for(Duration span) { return run_until(now_ + span); }

  /// Requests that `run()`/`run_until()` return after the current event.
  void stop() { stopped_ = true; }

  /// Number of live (not cancelled) pending events.
  size_t pending() const { return live_; }

  /// Total events executed since construction.
  uint64_t executed() const { return executed_; }

  /// Callbacks too large for inline slot storage that fell back to a heap
  /// allocation (performance hook; hot paths should keep this at 0).
  uint64_t callback_heap_allocs() const { return heap_cb_allocs_; }

  /// Slots ever materialized in the slab (capacity watermark).
  size_t slab_slots() const { return next_slot_; }

 private:
  static constexpr uint32_t kChunkShift = 8;  // 256 slots per chunk
  static constexpr uint32_t kChunkSize = 1u << kChunkShift;
  static constexpr uint32_t kChunkMask = kChunkSize - 1;

  struct Slot {
    enum State : uint8_t { kFree, kPending, kCancelled, kFiring };
    void (*invoke)(void*) = nullptr;
    /// Destroys the stored callable; nullptr when trivially destructible
    /// (skips an indirect call on the fire path).
    void (*destroy)(void*) = nullptr;
    uint32_t gen = 1;
    uint8_t state = kFree;
    alignas(std::max_align_t) unsigned char storage[kInlineCallbackBytes];
  };

  struct HeapEntry {
    Time time;
    uint64_t seq;
    uint32_t idx;
  };

  static bool earlier(const HeapEntry& a, const HeapEntry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  // First-chunk fast path: simulations rarely exceed kChunkSize live
  // events, and the branch predicts perfectly, replacing two dependent
  // pointer loads with one.
  Slot& slot(uint32_t idx) {
    if (idx < kChunkSize) [[likely]] return chunk0_[idx];
    return chunks_[idx >> kChunkShift][idx & kChunkMask];
  }
  const Slot& slot(uint32_t idx) const {
    if (idx < kChunkSize) [[likely]] return chunk0_[idx];
    return chunks_[idx >> kChunkShift][idx & kChunkMask];
  }

  static constexpr uint32_t kNoSlot = ~0u;

  uint32_t alloc_slot() {
    // One-deep cache in front of the free list: the dominant pattern is a
    // callback rescheduling itself, which reuses the slot just recycled
    // without touching the vector.
    if (slot_cache_ != kNoSlot) {
      const uint32_t idx = slot_cache_;
      slot_cache_ = kNoSlot;
      return idx;
    }
    if (!free_.empty()) {
      const uint32_t idx = free_.back();
      free_.pop_back();
      return idx;
    }
    const uint32_t idx = next_slot_++;
    if ((idx >> kChunkShift) == chunks_.size()) {
      chunks_.emplace_back(new Slot[kChunkSize]);
      if (chunks_.size() == 1) chunk0_ = chunks_[0].get();
    }
    return idx;
  }

  template <typename F>
  void emplace_callback(Slot& s, F&& fn) {
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineCallbackBytes &&
                  alignof(Fn) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(s.storage)) Fn(std::forward<F>(fn));
      s.invoke = [](void* p) { (*static_cast<Fn*>(p))(); };
      if constexpr (std::is_trivially_destructible_v<Fn>) {
        s.destroy = nullptr;
      } else {
        s.destroy = [](void* p) { static_cast<Fn*>(p)->~Fn(); };
      }
    } else {
      ++heap_cb_allocs_;
      Fn* obj = new Fn(std::forward<F>(fn));
      ::new (static_cast<void*>(s.storage)) Fn*(obj);
      s.invoke = [](void* p) { (**static_cast<Fn**>(p))(); };
      s.destroy = [](void* p) { delete *static_cast<Fn**>(p); };
    }
  }

  void destroy_callback(Slot& s) {
    if (s.destroy != nullptr) {
      s.destroy(s.storage);
      s.destroy = nullptr;
    }
  }

  void recycle(Slot& s, uint32_t idx) {
    s.state = Slot::kFree;
    if (++s.gen == 0) s.gen = 1;  // keep ids nonzero after wrap
    if (slot_cache_ == kNoSlot) {
      slot_cache_ = idx;
    } else {
      free_.push_back(idx);
    }
  }

  void heap_push(HeapEntry e) {
    heap_.push_back(e);
    size_t i = heap_.size() - 1;
    while (i > 0) {
      const size_t parent = (i - 1) >> 2;
      if (!earlier(heap_[i], heap_[parent])) break;
      std::swap(heap_[i], heap_[parent]);
      i = parent;
    }
  }

  void heap_pop();

  Time now_ = 0;
  uint64_t seq_ = 0;
  bool stopped_ = false;
  uint64_t executed_ = 0;
  size_t live_ = 0;
  uint64_t heap_cb_allocs_ = 0;
  uint32_t next_slot_ = 0;
  uint32_t slot_cache_ = kNoSlot;
  Slot* chunk0_ = nullptr;
  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::vector<uint32_t> free_;
  std::vector<HeapEntry> heap_;
};

}  // namespace hyperloop::sim
