// Background tenant load generator (the stress-ng analogue from §6.1 and
// the co-located replica instances from §6.2).
//
// Each tenant is a process that alternates CPU bursts with short think
// times, keeping the shared cores saturated and the run queue populated,
// which is what inflates event-driven wakeup latency for the Naïve-RDMA
// replicas. Burst lengths are log-normal (heavy right tail, like real
// request handlers); think times are exponential.
#pragma once

#include <memory>
#include <vector>

#include "sim/cpu_scheduler.h"
#include "sim/distributions.h"
#include "sim/event_loop.h"
#include "sim/rng.h"

namespace hyperloop::sim {

/// Drives a set of CPU-hungry tenant processes on one server's scheduler.
class BackgroundLoad {
 public:
  struct Config {
    int tenants = 0;
    Duration median_burst = usec(80);
    double burst_sigma = 1.0;
    Duration mean_think = usec(20);
    /// Bursts per activity phase are uniform in [1, max_batch]; batches
    /// model I/O-intensive tasks that wake up and run several requests
    /// back-to-back, which is what produces realistic run-queue spikes.
    int max_batch = 1;
    /// Parallel tasks submitted per activation (uniform in [1, fanout]):
    /// a multi-threaded tenant waking on a request burst dumps several
    /// runnable threads into the queue at once. Fan-out is the lever that
    /// produces millisecond run-queue episodes at sub-saturation average
    /// load — the paper's avg ~0.5ms / p99 ~10ms regime.
    int fanout = 1;
  };

  BackgroundLoad(EventLoop& loop, CpuScheduler& sched, Config cfg, Rng rng);

  /// Creates the tenant processes and starts their burst/think loops.
  void start();

  /// Stops issuing new bursts (in-flight bursts drain naturally).
  void stop() { running_ = false; }

  int tenants() const { return cfg_.tenants; }

 private:
  void tenant_loop(ProcessId pid);
  void run_batch(ProcessId pid, int remaining,
                 std::shared_ptr<int> outstanding);

  EventLoop& loop_;
  CpuScheduler& sched_;
  Config cfg_;
  Rng rng_;
  LogNormal burst_;
  Exponential think_;
  bool running_ = false;
  std::vector<ProcessId> pids_;
};

}  // namespace hyperloop::sim
