// Multi-tenant CPU model.
//
// This module is the root-cause machinery behind every tail-latency result
// in the paper (§2.2): replica processes must *acquire a core* before they
// can handle a network completion, and on a server packed with hundreds of
// tenant processes that means run-queue waiting plus context-switch cost.
// HyperLoop's NIC data path never enters this scheduler — that asymmetry
// is the effect the benchmarks reproduce.
//
// The model: a server has N cores running a preemptive round-robin
// scheduler with a fixed timeslice and a per-switch cost. Work arrives as
// "bursts" (CPU service demands) submitted on behalf of a process; a burst
// completes after receiving its full service time. A process may instead
// pin a dedicated core and busy-poll, in which case its bursts bypass the
// shared run queue entirely (at the price of burning the core) — this is
// the paper's Naïve-Polling configuration.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/event_loop.h"
#include "sim/ring.h"
#include "sim/small_fn.h"
#include "sim/time.h"

namespace hyperloop::sim {

/// Identifies a process registered with a CpuScheduler.
using ProcessId = uint32_t;

/// Per-process accounting, exposed for the context-switch plots (Fig 2).
struct ProcessStats {
  std::string name;
  Duration cpu_time = 0;          ///< total service time received
  uint64_t bursts_completed = 0;  ///< completed CPU bursts
  uint64_t context_switches = 0;  ///< times this process was switched onto a core
};

/// A preemptive round-robin multi-core scheduler on simulated time.
class CpuScheduler {
 public:
  struct Config {
    int num_cores = 16;
    /// Direct + indirect (cache pollution) cost charged when a core
    /// switches to a different process.
    Duration context_switch_cost = usec(5);
    /// Round-robin quantum; bursts longer than this are preempted.
    Duration timeslice = msec(1);
    /// Event-driven wakeup overhead (interrupt + syscall return) added
    /// before a burst becomes runnable.
    Duration wakeup_overhead = usec(3);
    /// Mean delay before a pinned busy-polling process notices new work.
    Duration poll_interval = nsec(200);
  };

  CpuScheduler(EventLoop& loop, Config cfg);
  CpuScheduler(const CpuScheduler&) = delete;
  CpuScheduler& operator=(const CpuScheduler&) = delete;

  /// Registers a process; the returned id is used for all submissions.
  ProcessId create_process(std::string name);

  /// Submits a CPU burst for `pid`: after queueing + `service` time on a
  /// core, `done` fires. Bursts of one process execute in submission order.
  /// `fresh_wakeup=false` models a process continuing pending work rather
  /// than being woken by an event: the wakeup overhead is skipped (the
  /// burst still queues for a core, i.e. it may be preempted in between).
  /// `done` uses SmallFn inline storage so submitting a burst does not
  /// heap-allocate for typical completion closures.
  void submit(ProcessId pid, Duration service, SmallFn<void()> done,
              bool fresh_wakeup = true);

  /// Convenience: burst with no completion action.
  void submit(ProcessId pid, Duration service) { submit(pid, service, {}); }

  /// Dedicates one core to `pid` (core pinning + busy polling). Subsequent
  /// bursts for `pid` run on that core after ~poll_interval, with no
  /// run-queue wait. Returns false if all cores are already pinned.
  bool pin_core(ProcessId pid);

  /// Number of cores not dedicated to pinned pollers.
  int shared_cores() const;

  /// Tasks currently waiting for a shared core.
  size_t run_queue_length() const { return run_queue_.size(); }

  /// Cumulative busy nanoseconds across all cores (including switch cost
  /// and pinned/polling cores, which are always busy from pin time on).
  Duration total_busy() const;

  /// Busy fraction across all cores since simulation start.
  double utilization() const;

  /// Total context switches across all processes.
  uint64_t total_context_switches() const { return total_switches_; }

  const ProcessStats& stats(ProcessId pid) const { return procs_[pid]; }
  int num_cores() const { return cfg_.num_cores; }
  const Config& config() const { return cfg_; }

 private:
  struct Task {
    ProcessId pid = 0;
    Duration remaining = 0;
    SmallFn<void()> done;
  };
  struct Core {
    bool pinned = false;
    ProcessId pinned_pid = 0;
    bool busy = false;
    // Last process that ran here; switch cost applies when it changes.
    ProcessId last_pid = UINT32_MAX;
    Duration busy_ns = 0;   // accumulated busy time
    Time pinned_since = 0;  // for pinned cores: busy ever since
  };
  struct PinnedState {
    int core = -1;
    bool running = false;
    Ring<Task> queue;
  };

  void enqueue_runnable(Task task);
  void dispatch();
  void run_slice(int core_idx, Task task);
  void pinned_kick(ProcessId pid);
  void pinned_run_next(ProcessId pid);

  EventLoop& loop_;
  Config cfg_;
  std::vector<Core> cores_;
  std::vector<ProcessStats> procs_;
  std::vector<PinnedState> pinned_;  // indexed by pid; core==-1 if unpinned
  Ring<Task> run_queue_;
  uint64_t total_switches_ = 0;
};

}  // namespace hyperloop::sim
