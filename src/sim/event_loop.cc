#include "sim/event_loop.h"

#include <utility>

namespace hyperloop::sim {

EventId EventLoop::schedule_at(Time t, std::function<void()> fn) {
  if (t < now_) t = now_;
  const EventId id = next_id_++;
  heap_.push(Entry{t, seq_++, id});
  live_.emplace(id, std::move(fn));
  return id;
}

EventId EventLoop::schedule_after(Duration delay, std::function<void()> fn) {
  return schedule_at(now_ + (delay < 0 ? 0 : delay), std::move(fn));
}

bool EventLoop::cancel(EventId id) { return live_.erase(id) > 0; }

bool EventLoop::pop_next(Entry* out) {
  while (!heap_.empty()) {
    Entry e = heap_.top();
    heap_.pop();
    if (live_.count(e.id) != 0) {
      *out = e;
      return true;
    }
  }
  return false;
}

uint64_t EventLoop::run() {
  stopped_ = false;
  uint64_t n = 0;
  Entry e;
  while (!stopped_ && pop_next(&e)) {
    now_ = e.time;
    auto it = live_.find(e.id);
    auto fn = std::move(it->second);
    live_.erase(it);
    fn();
    ++n;
    ++executed_;
  }
  return n;
}

uint64_t EventLoop::run_until(Time deadline) {
  stopped_ = false;
  uint64_t n = 0;
  Entry e;
  while (!stopped_ && pop_next(&e)) {
    if (e.time > deadline) {
      // Not yet due: put it back and stop.
      heap_.push(e);
      break;
    }
    now_ = e.time;
    auto it = live_.find(e.id);
    auto fn = std::move(it->second);
    live_.erase(it);
    fn();
    ++n;
    ++executed_;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

}  // namespace hyperloop::sim
