#include "sim/event_loop.h"

#include <algorithm>

namespace hyperloop::sim {

EventLoop::~EventLoop() {
  // Destroy callbacks of events still pending (cancelled slots already
  // released theirs eagerly).
  for (uint32_t idx = 0; idx < next_slot_; ++idx) {
    Slot& s = slot(idx);
    if (s.state == Slot::kPending) destroy_callback(s);
  }
}

bool EventLoop::cancel(EventId id) {
  const uint32_t idx = static_cast<uint32_t>(id);
  if (idx >= next_slot_) return false;
  Slot& s = slot(idx);
  if (s.state != Slot::kPending || s.gen != static_cast<uint32_t>(id >> 32)) {
    return false;
  }
  // Lazy cancel: release the callback now (frees captured resources), but
  // leave the heap entry in place; it is skipped and recycled when popped.
  destroy_callback(s);
  s.state = Slot::kCancelled;
  --live_;
  return true;
}

void EventLoop::heap_pop() {
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  const size_t n = heap_.size();
  if (n == 0) return;
  size_t i = 0;
  for (;;) {
    const size_t first = i * 4 + 1;
    if (first >= n) break;
    size_t best = first;
    const size_t end = std::min(first + 4, n);
    for (size_t c = first + 1; c < end; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    if (!earlier(heap_[best], last)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = last;
}

uint64_t EventLoop::run() {
  stopped_ = false;
  uint64_t n = 0;
  while (!stopped_ && !heap_.empty()) {
    const HeapEntry top = heap_[0];
    // Chunks are address-stable, so callbacks may schedule (growing the
    // slab/heap) without invalidating `s` or its storage.
    Slot& s = slot(top.idx);
    heap_pop();
    if (s.state == Slot::kCancelled) {
      recycle(s, top.idx);
      continue;  // lazy cancel: skip the stale entry
    }
    now_ = top.time;
    // Mark fired before invoking so a self-cancel inside the callback
    // reports false (matches the previous map-erase-before-call behavior).
    s.state = Slot::kFiring;
    --live_;
    s.invoke(s.storage);
    destroy_callback(s);
    recycle(s, top.idx);
    ++executed_;
    ++n;
  }
  return n;
}

uint64_t EventLoop::run_until(Time deadline) {
  stopped_ = false;
  uint64_t n = 0;
  while (!stopped_ && !heap_.empty()) {
    const HeapEntry top = heap_[0];
    Slot& s = slot(top.idx);
    if (s.state == Slot::kCancelled) {
      heap_pop();
      recycle(s, top.idx);
      continue;
    }
    if (top.time > deadline) break;  // not yet due; leave it pending
    heap_pop();
    now_ = top.time;
    s.state = Slot::kFiring;
    --live_;
    s.invoke(s.storage);
    destroy_callback(s);
    recycle(s, top.idx);
    ++executed_;
    ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

}  // namespace hyperloop::sim
