// Deterministic pseudo-random number generation for the simulator.
//
// xoshiro256** seeded via SplitMix64: fast, high quality, and — unlike
// std::mt19937 + std::*_distribution — bit-identical across standard
// library implementations, which keeps experiment outputs reproducible
// on any toolchain.
#pragma once

#include <cstdint>

namespace hyperloop::sim {

/// A small, deterministic PRNG (xoshiro256**).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-seeds the generator; identical seeds give identical streams.
  void reseed(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform integer in [0, bound) using Lemire's method. bound must be > 0.
  uint64_t next_below(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t uniform_int(int64_t lo, int64_t hi);

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi);

  /// Bernoulli trial with success probability `p`.
  bool chance(double p) { return next_double() < p; }

  /// Forks an independent, deterministic child stream. Useful for giving
  /// each simulated component its own stream so adding a component does
  /// not perturb the draws seen by others.
  Rng fork();

 private:
  uint64_t s_[4];
};

}  // namespace hyperloop::sim
