#include "sim/background_load.h"

#include <string>

namespace hyperloop::sim {

BackgroundLoad::BackgroundLoad(EventLoop& loop, CpuScheduler& sched,
                               Config cfg, Rng rng)
    : loop_(loop),
      sched_(sched),
      cfg_(cfg),
      rng_(rng),
      burst_(static_cast<double>(cfg.median_burst), cfg.burst_sigma),
      think_(static_cast<double>(cfg.mean_think)) {}

void BackgroundLoad::start() {
  if (running_) return;
  running_ = true;
  for (int i = 0; i < cfg_.tenants; ++i) {
    const ProcessId pid =
        sched_.create_process("tenant-" + std::to_string(i));
    pids_.push_back(pid);
    // Stagger initial arrivals so tenants do not move in lockstep.
    loop_.schedule_after(think_.sample(rng_), [this, pid] { tenant_loop(pid); });
  }
}

void BackgroundLoad::tenant_loop(ProcessId pid) {
  if (!running_) return;
  const int fanout =
      1 + static_cast<int>(rng_.next_below(
              static_cast<uint64_t>(cfg_.fanout > 0 ? cfg_.fanout : 1)));
  // Submit `fanout` parallel chains; the tenant thinks again once all
  // chains have drained.
  auto outstanding = std::make_shared<int>(fanout);
  for (int f = 0; f < fanout; ++f) {
    const int batch = 1 + static_cast<int>(rng_.next_below(
                              static_cast<uint64_t>(
                                  cfg_.max_batch > 0 ? cfg_.max_batch : 1)));
    run_batch(pid, batch, outstanding);
  }
}

void BackgroundLoad::run_batch(ProcessId pid, int remaining,
                               std::shared_ptr<int> outstanding) {
  if (!running_) return;
  const Duration burst = burst_.sample(rng_);
  sched_.submit(
      pid, burst,
      [this, pid, remaining, outstanding] {
        if (!running_) return;
        if (remaining > 1) {
          run_batch(pid, remaining - 1, outstanding);
          return;
        }
        if (--*outstanding == 0) {
          loop_.schedule_after(think_.sample(rng_),
                               [this, pid] { tenant_loop(pid); });
        }
      },
      /*fresh_wakeup=*/remaining == 1);
}

}  // namespace hyperloop::sim
