// A growable FIFO ring over a flat power-of-two buffer.
//
// std::deque is the wrong container for the simulator's steady-state
// queues (RC retransmit windows, receive queues, completion queues): its
// block map allocates and frees a node every time the queue level crosses
// a block boundary, so even a queue oscillating between 0 and 1 entries
// churns the allocator. Ring keeps one buffer that doubles until the
// workload's high-water mark is reached and then never allocates again —
// the property the binary-wide allocation-hook tests lock in.
//
// Elements are value slots: push_back assigns into a slot, pop_front
// re-assigns a default-constructed value over non-trivial elements so
// resources (e.g. pooled PayloadBuf references) are released immediately.
#pragma once

#include <cassert>
#include <cstddef>
#include <type_traits>
#include <utility>
#include <vector>

namespace hyperloop::sim {

template <typename T>
class Ring {
 public:
  bool empty() const { return head_ == tail_; }
  size_t size() const { return tail_ - head_; }

  T& front() {
    assert(!empty());
    return buf_[head_ & mask()];
  }
  const T& front() const {
    assert(!empty());
    return buf_[head_ & mask()];
  }

  /// i-th element from the front (0 == front()).
  T& operator[](size_t i) {
    assert(i < size());
    return buf_[(head_ + i) & mask()];
  }
  const T& operator[](size_t i) const {
    assert(i < size());
    return buf_[(head_ + i) & mask()];
  }

  void push_back(T v) {
    if (size() == buf_.size()) grow();
    buf_[tail_ & mask()] = std::move(v);
    ++tail_;
  }

  void pop_front() {
    assert(!empty());
    if constexpr (!std::is_trivially_destructible_v<T>) {
      buf_[head_ & mask()] = T{};  // release held resources now
    }
    ++head_;
  }

  void clear() {
    while (!empty()) pop_front();
  }

 private:
  size_t mask() const { return buf_.size() - 1; }

  void grow() {
    const size_t n = size();
    std::vector<T> next(buf_.empty() ? 8 : buf_.size() * 2);
    for (size_t i = 0; i < n; ++i) next[i] = std::move(buf_[(head_ + i) & mask()]);
    buf_ = std::move(next);
    head_ = 0;
    tail_ = n;
  }

  std::vector<T> buf_;
  size_t head_ = 0;
  size_t tail_ = 0;
};

}  // namespace hyperloop::sim
