#include "sim/cpu_scheduler.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace hyperloop::sim {

CpuScheduler::CpuScheduler(EventLoop& loop, Config cfg)
    : loop_(loop), cfg_(cfg) {
  assert(cfg_.num_cores > 0);
  cores_.resize(static_cast<size_t>(cfg_.num_cores));
}

ProcessId CpuScheduler::create_process(std::string name) {
  const auto pid = static_cast<ProcessId>(procs_.size());
  procs_.push_back(ProcessStats{std::move(name)});
  pinned_.push_back(PinnedState{});
  return pid;
}

void CpuScheduler::submit(ProcessId pid, Duration service, SmallFn<void()> done,
                          bool fresh_wakeup) {
  assert(pid < procs_.size());
  if (service < 0) service = 0;
  Task task{pid, service, std::move(done)};
  if (pinned_[pid].core >= 0) {
    pinned_[pid].queue.push_back(std::move(task));
    pinned_kick(pid);
    return;
  }
  if (!fresh_wakeup) {
    enqueue_runnable(std::move(task));
    return;
  }
  // Event-driven path: wakeup overhead before the task is runnable.
  loop_.schedule_after(cfg_.wakeup_overhead, [this, t = std::move(task)]() mutable {
    enqueue_runnable(std::move(t));
  });
}

void CpuScheduler::enqueue_runnable(Task task) {
  run_queue_.push_back(std::move(task));
  dispatch();
}

bool CpuScheduler::pin_core(ProcessId pid) {
  assert(pid < procs_.size());
  if (pinned_[pid].core >= 0) return true;
  for (size_t i = 0; i < cores_.size(); ++i) {
    Core& c = cores_[i];
    if (!c.pinned && !c.busy) {
      c.pinned = true;
      c.pinned_pid = pid;
      c.pinned_since = loop_.now();
      pinned_[pid].core = static_cast<int>(i);
      return true;
    }
  }
  return false;
}

int CpuScheduler::shared_cores() const {
  int n = 0;
  for (const Core& c : cores_) n += c.pinned ? 0 : 1;
  return n;
}

Duration CpuScheduler::total_busy() const {
  Duration sum = 0;
  for (const Core& c : cores_) {
    sum += c.busy_ns;
    if (c.pinned) sum += loop_.now() - c.pinned_since;
  }
  return sum;
}

double CpuScheduler::utilization() const {
  if (loop_.now() == 0) return 0.0;
  return static_cast<double>(total_busy()) /
         (static_cast<double>(loop_.now()) * cfg_.num_cores);
}

void CpuScheduler::dispatch() {
  while (!run_queue_.empty()) {
    int idle = -1;
    for (size_t i = 0; i < cores_.size(); ++i) {
      if (!cores_[i].pinned && !cores_[i].busy) {
        idle = static_cast<int>(i);
        break;
      }
    }
    if (idle < 0) return;
    Task task = std::move(run_queue_.front());
    run_queue_.pop_front();
    run_slice(idle, std::move(task));
  }
}

void CpuScheduler::run_slice(int core_idx, Task task) {
  Core& core = cores_[static_cast<size_t>(core_idx)];
  core.busy = true;

  Duration switch_cost = 0;
  if (core.last_pid != task.pid) {
    switch_cost = cfg_.context_switch_cost;
    core.last_pid = task.pid;
    ++procs_[task.pid].context_switches;
    ++total_switches_;
  }

  const Duration slice = std::min(task.remaining, cfg_.timeslice);
  const Duration occupied = switch_cost + slice;
  core.busy_ns += occupied;
  procs_[task.pid].cpu_time += slice;

  loop_.schedule_after(
      occupied, [this, core_idx, t = std::move(task), slice]() mutable {
        Core& c = cores_[static_cast<size_t>(core_idx)];
        c.busy = false;
        t.remaining -= slice;
        if (t.remaining <= 0) {
          ++procs_[t.pid].bursts_completed;
          auto done = std::move(t.done);
          dispatch();
          if (done) done();
        } else {
          // Preempted: back of the queue (round-robin).
          run_queue_.push_back(std::move(t));
          dispatch();
        }
      });
}

void CpuScheduler::pinned_kick(ProcessId pid) {
  PinnedState& ps = pinned_[pid];
  if (ps.running || ps.queue.empty()) return;
  ps.running = true;
  // The poller notices new work after ~poll_interval.
  loop_.schedule_after(cfg_.poll_interval, [this, pid] { pinned_run_next(pid); });
}

void CpuScheduler::pinned_run_next(ProcessId pid) {
  PinnedState& ps = pinned_[pid];
  if (ps.queue.empty()) {
    ps.running = false;
    return;
  }
  Task task = std::move(ps.queue.front());
  ps.queue.pop_front();
  const Duration service = task.remaining;
  procs_[pid].cpu_time += service;
  loop_.schedule_after(service, [this, pid, t = std::move(task)]() mutable {
    ++procs_[pid].bursts_completed;
    if (t.done) t.done();
    pinned_run_next(pid);
  });
}

}  // namespace hyperloop::sim
