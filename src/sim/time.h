// Simulated-time primitives for the discrete-event simulator.
//
// All simulated durations and timestamps are expressed in integer
// nanoseconds. Helper constructors (`usec`, `msec`, ...) keep call sites
// readable without introducing a heavyweight unit type; determinism and
// overflow-free arithmetic matter more here than dimensional safety.
#pragma once

#include <cstdint>

namespace hyperloop::sim {

/// A point in simulated time, in nanoseconds since simulation start.
using Time = int64_t;

/// A span of simulated time, in nanoseconds.
using Duration = int64_t;

constexpr Duration nsec(int64_t n) { return n; }
constexpr Duration usec(int64_t n) { return n * 1000; }
constexpr Duration msec(int64_t n) { return n * 1000 * 1000; }
constexpr Duration seconds(int64_t n) { return n * 1000 * 1000 * 1000; }

/// Converts a simulated duration to floating-point microseconds (for
/// reporting only; never used in simulation arithmetic).
constexpr double to_us(Duration d) { return static_cast<double>(d) / 1e3; }

/// Converts a simulated duration to floating-point milliseconds.
constexpr double to_ms(Duration d) { return static_cast<double>(d) / 1e6; }

/// Converts a simulated duration to floating-point seconds.
constexpr double to_sec(Duration d) { return static_cast<double>(d) / 1e9; }

}  // namespace hyperloop::sim
