#include "sim/rng.h"

namespace hyperloop::sim {
namespace {

uint64_t splitmix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::reseed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::next_u64() {
  const uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits -> [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

uint64_t Rng::next_below(uint64_t bound) {
  // Lemire's nearly-divisionless bounded generation.
  __uint128_t m = static_cast<__uint128_t>(next_u64()) * bound;
  uint64_t lo = static_cast<uint64_t>(m);
  if (lo < bound) {
    const uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      m = static_cast<__uint128_t>(next_u64()) * bound;
      lo = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::uniform_int(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  next_below(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::uniform_real(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

Rng Rng::fork() {
  Rng child(0);
  for (auto& s : child.s_) s = next_u64();
  if ((child.s_[0] | child.s_[1] | child.s_[2] | child.s_[3]) == 0)
    child.s_[0] = 1;
  return child;
}

}  // namespace hyperloop::sim
