// Random-variate distributions used by workload generators and the
// latency/CPU models. All distributions draw from the caller-supplied
// deterministic `Rng`.
//
// ZipfianGenerator / ScrambledZipfian / Latest follow the YCSB reference
// implementation (Gray et al. quick-zipf algorithm) so that our YCSB
// workloads select keys with the same skew as the paper's benchmark.
#pragma once

#include <cstdint>
#include <memory>

#include "sim/rng.h"
#include "sim/time.h"

namespace hyperloop::sim {

/// Exponential inter-arrival / service times with the given mean.
class Exponential {
 public:
  explicit Exponential(double mean_ns) : mean_(mean_ns) {}
  Duration sample(Rng& rng) const;

 private:
  double mean_;
};

/// Log-normal distribution parameterized by the median and sigma of the
/// underlying normal. Used for CPU service-time jitter: heavy right tail,
/// never negative.
class LogNormal {
 public:
  LogNormal(double median_ns, double sigma) : mu_log_(median_ns), sigma_(sigma) {}
  Duration sample(Rng& rng) const;

 private:
  double mu_log_;  // median of the log-normal (exp(mu))
  double sigma_;
};

/// Zipfian distribution over [0, n) with parameter theta (YCSB default
/// 0.99), using the Gray et al. rejection-free method.
class ZipfianGenerator {
 public:
  explicit ZipfianGenerator(uint64_t n, double theta = 0.99);

  /// Samples an item in [0, n). Item 0 is the most popular.
  uint64_t sample(Rng& rng) const;

  uint64_t item_count() const { return n_; }

 private:
  static double zeta(uint64_t n, double theta);

  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2theta_;
};

/// Zipfian with popularity scattered over the key space by a hash, as in
/// YCSB's ScrambledZipfianGenerator: hot keys are spread out rather than
/// clustered at low indices.
class ScrambledZipfian {
 public:
  explicit ScrambledZipfian(uint64_t n, double theta = 0.99)
      : zipf_(n, theta), n_(n) {}

  uint64_t sample(Rng& rng) const;

 private:
  static uint64_t fnv_hash(uint64_t v);
  ZipfianGenerator zipf_;
  uint64_t n_;
};

/// YCSB "latest" distribution: recency-skewed choice over [0, current_max);
/// most recently inserted items are most popular (workload D).
///
/// The internal zipfian is rebuilt lazily when the item count grows past
/// the cached size (YCSB uses incremental zeta updates; rebuilding on
/// growth thresholds gives the same skew without per-draw O(n) work).
class LatestGenerator {
 public:
  explicit LatestGenerator(double theta = 0.99) : theta_(theta) {}

  /// Samples an item in [0, current_count), skewed toward
  /// current_count - 1. Requires current_count >= 1.
  uint64_t sample(Rng& rng, uint64_t current_count);

 private:
  double theta_;
  uint64_t cached_n_ = 0;
  // Lazily (re)built zipfian over [0, cached_n_).
  std::unique_ptr<ZipfianGenerator> zipf_;
};

}  // namespace hyperloop::sim
