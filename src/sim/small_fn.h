// Small move-only callable wrapper with inline storage.
//
// std::function's 16-byte SBO forces a heap allocation for nearly every
// closure in the simulator's hot paths (anything beyond `this` plus one
// word). SmallFn applies the same fix the EventLoop slab uses for event
// callbacks: callables up to `Cap` bytes are stored inline; larger ones
// fall back to a single heap allocation so cold call sites keep working.
// Move-only by design — the hot paths hand closures off exactly once, and
// copyability is what forces std::function to heap-allocate shared state.
#pragma once

#include <cassert>
#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace hyperloop::sim {

template <typename Sig, size_t Cap = 48>
class SmallFn;

template <typename R, typename... Args, size_t Cap>
class SmallFn<R(Args...), Cap> {
 public:
  SmallFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFn> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  SmallFn(F&& fn) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(fn));
  }

  SmallFn(SmallFn&& o) noexcept { move_from(o); }
  SmallFn& operator=(SmallFn&& o) noexcept {
    if (this != &o) {
      reset();
      move_from(o);
    }
    return *this;
  }
  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;
  ~SmallFn() { reset(); }

  explicit operator bool() const { return invoke_ != nullptr; }

  R operator()(Args... args) {
    assert(invoke_ != nullptr && "calling an empty SmallFn");
    return invoke_(storage_, std::forward<Args>(args)...);
  }

  void reset() {
    if (manage_ != nullptr) {
      manage_(Op::kDestroy, storage_, nullptr);
      manage_ = nullptr;
    }
    invoke_ = nullptr;
  }

 private:
  enum class Op { kDestroy, kMoveTo };

  template <typename F>
  void emplace(F&& fn) {
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= Cap && alignof(Fn) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
      invoke_ = [](unsigned char* s, Args&&... a) -> R {
        return (*std::launder(reinterpret_cast<Fn*>(s)))(
            std::forward<Args>(a)...);
      };
      if constexpr (std::is_trivially_destructible_v<Fn> &&
                    std::is_trivially_move_constructible_v<Fn>) {
        manage_ = [](Op op, unsigned char* s, unsigned char* d) {
          if (op == Op::kMoveTo) __builtin_memcpy(d, s, sizeof(Fn));
        };
      } else {
        manage_ = [](Op op, unsigned char* s, unsigned char* d) {
          Fn* self = std::launder(reinterpret_cast<Fn*>(s));
          if (op == Op::kMoveTo) {
            ::new (static_cast<void*>(d)) Fn(std::move(*self));
          }
          self->~Fn();
        };
      }
    } else {
      // Cold fallback: one allocation, owned through the stored pointer.
      Fn* obj = new Fn(std::forward<F>(fn));
      ::new (static_cast<void*>(storage_)) Fn*(obj);
      invoke_ = [](unsigned char* s, Args&&... a) -> R {
        return (**std::launder(reinterpret_cast<Fn**>(s)))(
            std::forward<Args>(a)...);
      };
      manage_ = [](Op op, unsigned char* s, unsigned char* d) {
        Fn** self = std::launder(reinterpret_cast<Fn**>(s));
        if (op == Op::kMoveTo) {
          ::new (static_cast<void*>(d)) Fn*(*self);
        } else {
          delete *self;
        }
      };
    }
  }

  // Transfers o's callable into *this (which must be empty), leaving o
  // empty. kMoveTo both moves into the destination and destroys the
  // source representation, so no second kDestroy is needed on o.
  void move_from(SmallFn& o) {
    invoke_ = o.invoke_;
    manage_ = o.manage_;
    if (manage_ != nullptr) manage_(Op::kMoveTo, o.storage_, storage_);
    o.invoke_ = nullptr;
    o.manage_ = nullptr;
  }

  using Invoke = R (*)(unsigned char*, Args&&...);
  using Manage = void (*)(Op, unsigned char*, unsigned char*);

  alignas(std::max_align_t) unsigned char storage_[Cap];
  Invoke invoke_ = nullptr;
  Manage manage_ = nullptr;
};

}  // namespace hyperloop::sim
