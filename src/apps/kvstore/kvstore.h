// Replicated embedded key-value store — the RocksDB case study (§5.1).
//
// Architecture, mirroring the paper's modified RocksDB:
//   - The client (the process embedding the library) serves all requests
//     from an in-memory table and appends every write to a *replicated*
//     durable WAL via Append (gWRITE + gFLUSH). That append is the entire
//     critical path of a write.
//   - Replicas wake up periodically (off the critical path) to bring
//     their in-memory tables in sync with the replicated log, so reads
//     from replicas are eventually consistent (§5.1).
//   - When the log fills beyond a threshold, the store checkpoints: it
//     ExecuteAndAdvance's records into the database area (the "dump
//     in-memory data and truncate the log" cycle), off the critical path.
//   - Recovery: rebuild the table from the database area plus a replay of
//     the committed log suffix.
//
// Sharded mode (Config::shards > 1, DESIGN.md "Sharded datapath"): the
// keyspace is partitioned key % shards, each shard owning its own region
// slice (skiplist memtable, WAL segment, checkpoint cycle). Under a
// ShardedGroup whose range router spans one slice, every shard's write
// path rides its own replication chain — and a paused shard (its chain
// lost a replica) defers only its own keys' writes while the others keep
// committing.
//
// Records are fixed-stride slots in the DB area, indexed by the dense
// YCSB key: [key u64][len u32][pad u32][value bytes].
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "apps/kvstore/skiplist.h"
#include "apps/storage_engine.h"
#include "core/server.h"
#include "core/sharded_reader.h"
#include "core/wal.h"

namespace hyperloop::apps {

class KvStore : public StorageEngine {
 public:
  struct Config {
    /// With shards == 1: the whole region. With shards > 1: the layout of
    /// ONE slice (shard s uses layout.shard_slice(s)); the group's region
    /// must cover shards * layout.region_size bytes.
    core::RegionLayout layout;
    uint32_t shards = 1;
    uint32_t value_size = 1024;
    /// CPU per operation on the client process (serialize + memtable).
    sim::Duration op_cpu = sim::usec(2);
    /// Replica memtable sync cadence and per-record cost.
    sim::Duration sync_period = sim::msec(1);
    sim::Duration sync_cpu_per_record = sim::usec(1);
    bool replicas_sync = true;
    /// Checkpoint (execute + truncate) when log use crosses this.
    double checkpoint_threshold = 0.5;
    /// WAL group-commit tuning (staged-window depth, latency clock);
    /// staged_capacity = 1 restores per-record issue semantics.
    core::ReplicatedWal::Options wal;
  };

  /// `client` must be the coordinator server of `group`; `replica_servers`
  /// are the replica machines (used to run the off-path sync processes).
  KvStore(core::ReplicationGroup& group, core::Server& client,
          std::vector<core::Server*> replica_servers, Config cfg);
  ~KvStore() override;

  // StorageEngine ---------------------------------------------------------
  void insert(uint64_t key, std::vector<uint8_t> value, Done done) override;
  void update(uint64_t key, std::vector<uint8_t> value, Done done) override;
  void read(uint64_t key, ReadDone done) override;
  void scan(uint64_t key, int count, Done done) override;
  void read_modify_write(uint64_t key, std::vector<uint8_t> value,
                         Done done) override;

  /// Remote-read mode: scans leave the client memtable and instead read
  /// the replicated DB image from chain replicas via one-sided RDMA — a
  /// cross-slice scan becomes ONE scatter batch (one extent per shard,
  /// one doorbell per chain) instead of a client-side slice walk. The
  /// reader's router must partition the region like the store's slices.
  /// Eventually consistent: the DB image holds checkpointed/bulk-loaded
  /// records, not un-checkpointed memtable tail. Reader owned by caller.
  void set_sharded_reader(core::ShardedReader* reader) { sreader_ = reader; }

  /// Eventually-consistent read from a replica's memtable.
  bool replica_read(size_t replica, uint64_t key,
                    std::vector<uint8_t>* value) const;

  /// Number of records a replica's memtable currently holds.
  size_t replica_record_count(size_t replica) const {
    return replica_tables_.at(replica).table.size();
  }

  /// Rebuilds the client memtable from the durable region image (crash
  /// recovery): DB-area scan plus committed-log replay, per shard.
  void recover();

  /// Loads `n` initial records synchronously (bulk load before a bench);
  /// returns once all appends are issued — run the loop to quiesce.
  void bulk_load(uint64_t n);

  /// Which shard owns `key` (key % shards).
  uint32_t shard_of(uint64_t key) const {
    return static_cast<uint32_t>(key % cfg_.shards);
  }

  /// Pauses/resumes shard `s`'s write path (chain supervision hook: a
  /// shard whose chain lost a replica defers its puts — with periodic
  /// retry — until resumed; other shards are untouched).
  void set_shard_paused(uint32_t s, bool paused) {
    shards_.at(s).paused = paused;
  }
  bool shard_paused(uint32_t s) const { return shards_.at(s).paused; }

  core::ReplicatedWal& wal() { return wal_.shard(0); }
  core::ReplicatedWal& wal(size_t s) { return wal_.shard(s); }
  core::ShardedWal& sharded_wal() { return wal_; }
  uint64_t checkpoints() const { return checkpoints_; }

 private:
  struct Shard {
    core::RegionLayout layout;  ///< this shard's slice
    SkipList memtable;
    bool checkpoint_running = false;
    bool paused = false;
  };
  struct ReplicaState {
    core::Server* server = nullptr;
    sim::ProcessId pid = 0;
    /// Virtual log offset already applied, per shard segment.
    std::vector<uint64_t> applied;
    SkipList table;
  };

  uint64_t slot_stride() const { return 16 + cfg_.value_size; }
  /// DB-area offset of `key`'s slot within its owning shard's slice:
  /// shards stripe the keyspace, so key k is local slot k / shards.
  uint64_t slot_offset(uint64_t key) const {
    return (key / cfg_.shards) * slot_stride();
  }
  std::vector<uint8_t> encode_slot(uint64_t key,
                                   const std::vector<uint8_t>& value) const;

  void put(uint64_t key, std::vector<uint8_t> value, Done done);
  void remote_scan(uint64_t key, int count, Done done);
  void defer_put(uint64_t key, std::vector<uint8_t> value,
                 std::shared_ptr<Done> done_sp);
  void maybe_checkpoint(uint32_t s);
  void checkpoint_step(uint32_t s);
  void replica_sync_tick(size_t i);

  core::ReplicationGroup& group_;
  core::Server& client_;
  Config cfg_;
  core::ShardedWal wal_;
  core::ShardedReader* sreader_ = nullptr;
  sim::ProcessId client_pid_;
  std::vector<Shard> shards_;
  std::vector<ReplicaState> replica_tables_;
  uint64_t checkpoints_ = 0;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace hyperloop::apps
