// Replicated embedded key-value store — the RocksDB case study (§5.1).
//
// Architecture, mirroring the paper's modified RocksDB:
//   - The client (the process embedding the library) serves all requests
//     from an in-memory table and appends every write to a *replicated*
//     durable WAL via Append (gWRITE + gFLUSH). That append is the entire
//     critical path of a write.
//   - Replicas wake up periodically (off the critical path) to bring
//     their in-memory tables in sync with the replicated log, so reads
//     from replicas are eventually consistent (§5.1).
//   - When the log fills beyond a threshold, the store checkpoints: it
//     ExecuteAndAdvance's records into the database area (the "dump
//     in-memory data and truncate the log" cycle), off the critical path.
//   - Recovery: rebuild the table from the database area plus a replay of
//     the committed log suffix.
//
// Records are fixed-stride slots in the DB area, indexed by the dense
// YCSB key: [key u64][len u32][pad u32][value bytes].
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "apps/kvstore/skiplist.h"
#include "apps/storage_engine.h"
#include "core/server.h"
#include "core/wal.h"

namespace hyperloop::apps {

class KvStore : public StorageEngine {
 public:
  struct Config {
    core::RegionLayout layout;
    uint32_t value_size = 1024;
    /// CPU per operation on the client process (serialize + memtable).
    sim::Duration op_cpu = sim::usec(2);
    /// Replica memtable sync cadence and per-record cost.
    sim::Duration sync_period = sim::msec(1);
    sim::Duration sync_cpu_per_record = sim::usec(1);
    bool replicas_sync = true;
    /// Checkpoint (execute + truncate) when log use crosses this.
    double checkpoint_threshold = 0.5;
    /// WAL group-commit tuning (staged-window depth, latency clock);
    /// staged_capacity = 1 restores per-record issue semantics.
    core::ReplicatedWal::Options wal;
  };

  /// `client` must be the coordinator server of `group`; `replica_servers`
  /// are the replica machines (used to run the off-path sync processes).
  KvStore(core::ReplicationGroup& group, core::Server& client,
          std::vector<core::Server*> replica_servers, Config cfg);
  ~KvStore() override;

  // StorageEngine ---------------------------------------------------------
  void insert(uint64_t key, std::vector<uint8_t> value, Done done) override;
  void update(uint64_t key, std::vector<uint8_t> value, Done done) override;
  void read(uint64_t key, ReadDone done) override;
  void scan(uint64_t key, int count, Done done) override;
  void read_modify_write(uint64_t key, std::vector<uint8_t> value,
                         Done done) override;

  /// Eventually-consistent read from a replica's memtable.
  bool replica_read(size_t replica, uint64_t key,
                    std::vector<uint8_t>* value) const;

  /// Number of records a replica's memtable currently holds.
  size_t replica_record_count(size_t replica) const {
    return replica_tables_.at(replica).table.size();
  }

  /// Rebuilds the client memtable from the durable region image (crash
  /// recovery): DB-area scan plus committed-log replay.
  void recover();

  /// Loads `n` initial records synchronously (bulk load before a bench);
  /// returns once all appends are issued — run the loop to quiesce.
  void bulk_load(uint64_t n);

  core::ReplicatedWal& wal() { return wal_; }
  uint64_t checkpoints() const { return checkpoints_; }

 private:
  struct ReplicaState {
    core::Server* server = nullptr;
    sim::ProcessId pid = 0;
    uint64_t applied = 0;  ///< virtual log offset already applied
    SkipList table;
  };

  uint64_t slot_stride() const { return 16 + cfg_.value_size; }
  uint64_t slot_offset(uint64_t key) const { return key * slot_stride(); }
  std::vector<uint8_t> encode_slot(uint64_t key,
                                   const std::vector<uint8_t>& value) const;

  void put(uint64_t key, std::vector<uint8_t> value, Done done);
  void maybe_checkpoint();
  void checkpoint_step();
  void replica_sync_tick(size_t i);

  core::ReplicationGroup& group_;
  core::Server& client_;
  Config cfg_;
  core::ReplicatedWal wal_;
  sim::ProcessId client_pid_;
  SkipList memtable_;
  std::vector<ReplicaState> replica_tables_;
  uint64_t checkpoints_ = 0;
  bool checkpoint_running_ = false;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace hyperloop::apps
