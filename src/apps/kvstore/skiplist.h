// A probabilistic skiplist memtable (the RocksDB/LevelDB in-memory
// structure). Keys are dense uint64 record ids; values are byte strings.
// Deterministic: tower heights come from a seeded xorshift, so memtable
// shape is reproducible run to run like everything else in the simulator.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace hyperloop::apps {

class SkipList {
 public:
  static constexpr int kMaxLevel = 16;

  explicit SkipList(uint64_t seed = 0x5EED);
  ~SkipList();
  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;
  SkipList(SkipList&&) noexcept;
  SkipList& operator=(SkipList&&) noexcept;

  /// Inserts or overwrites. Returns true if the key was new.
  bool insert(uint64_t key, std::vector<uint8_t> value);

  /// Returns the value or nullptr.
  const std::vector<uint8_t>* find(uint64_t key) const;

  /// Removes a key. Returns true if it existed.
  bool erase(uint64_t key);

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  void clear();

  /// Forward iteration from the first key >= `from`.
  class Iterator {
   public:
    bool valid() const { return node_ != nullptr; }
    uint64_t key() const;
    const std::vector<uint8_t>& value() const;
    void next();

   private:
    friend class SkipList;
    explicit Iterator(const struct SkipNode* n) : node_(n) {}
    const struct SkipNode* node_;
  };
  Iterator seek(uint64_t from) const;
  Iterator begin() const;

  /// Deep copy (replica table seeding in bulk load).
  void copy_from(const SkipList& other);

 private:
  struct SkipNode* head_;
  int level_ = 1;
  size_t size_ = 0;
  uint64_t rng_state_;

  int random_level();
};

}  // namespace hyperloop::apps
