#include "apps/kvstore/kvstore.h"

#include <cassert>
#include <cstring>

#include "apps/ycsb/workload.h"

namespace hyperloop::apps {

KvStore::KvStore(core::ReplicationGroup& group, core::Server& client,
                 std::vector<core::Server*> replica_servers, Config cfg)
    : group_(group), client_(client), cfg_(cfg),
      wal_(group, cfg.layout, cfg.wal) {
  client_pid_ = client_.sched().create_process(client_.name() + "-kv");
  replica_tables_.resize(replica_servers.size());
  for (size_t i = 0; i < replica_servers.size(); ++i) {
    replica_tables_[i].server = replica_servers[i];
    if (cfg_.replicas_sync) {
      replica_tables_[i].pid = replica_servers[i]->sched().create_process(
          replica_servers[i]->name() + "-kv-sync");
      replica_sync_tick(i);
    }
  }
}

KvStore::~KvStore() { *alive_ = false; }

std::vector<uint8_t> KvStore::encode_slot(
    uint64_t key, const std::vector<uint8_t>& value) const {
  std::vector<uint8_t> slot(slot_stride());
  std::memcpy(slot.data(), &key, 8);
  const uint32_t len = static_cast<uint32_t>(value.size());
  std::memcpy(slot.data() + 8, &len, 4);
  std::memcpy(slot.data() + 16, value.data(),
              std::min<size_t>(value.size(), cfg_.value_size));
  return slot;
}

void KvStore::put(uint64_t key, std::vector<uint8_t> value, Done done) {
  assert(value.size() <= cfg_.value_size);
  client_.sched().submit(
      client_pid_, cfg_.op_cpu,
      [this, key, value = std::move(value), done = std::move(done)]() mutable {
        memtable_.insert(key, value);
        std::vector<core::ReplicatedWal::Entry> entries;
        entries.push_back({slot_offset(key), encode_slot(key, value)});
        auto done_sp = std::make_shared<Done>(std::move(done));
        const bool ok = wal_.append(
            entries, [done_sp](uint64_t) { (*done_sp)(true); });
        if (!ok) {
          // Log full: checkpoint and retry shortly.
          maybe_checkpoint();
          client_.loop().schedule_after(
              sim::usec(200),
              [this, key, value = std::move(value), done_sp,
               alive = alive_]() mutable {
                if (!*alive) return;
                put(key, std::move(value),
                    [done_sp](bool ok2) { (*done_sp)(ok2); });
              });
          return;
        }
        maybe_checkpoint();
      });
}

void KvStore::maybe_checkpoint() {
  if (checkpoint_running_) return;
  if (static_cast<double>(wal_.used_bytes()) <
      cfg_.checkpoint_threshold * static_cast<double>(cfg_.layout.log_size)) {
    return;
  }
  checkpoint_running_ = true;
  ++checkpoints_;
  // Drain until half the threshold, one record at a time, off the
  // critical path (appends continue concurrently).
  checkpoint_step();
}

void KvStore::checkpoint_step() {
  const bool below =
      static_cast<double>(wal_.used_bytes()) <
      cfg_.checkpoint_threshold / 2 * static_cast<double>(cfg_.layout.log_size);
  const auto next = [this, alive = alive_] {
    if (*alive) checkpoint_step();
  };
  if (below || !wal_.execute_and_advance(next)) {
    checkpoint_running_ = false;
  }
}

void KvStore::insert(uint64_t key, std::vector<uint8_t> value, Done done) {
  put(key, std::move(value), std::move(done));
}

void KvStore::update(uint64_t key, std::vector<uint8_t> value, Done done) {
  put(key, std::move(value), std::move(done));
}

void KvStore::read(uint64_t key, ReadDone done) {
  client_.sched().submit(client_pid_, cfg_.op_cpu,
                         [this, key, done = std::move(done)]() mutable {
                           const auto* v = memtable_.find(key);
                           if (v == nullptr) {
                             done(false, {});
                           } else {
                             done(true, *v);
                           }
                         });
}

void KvStore::scan(uint64_t key, int count, Done done) {
  const auto cpu =
      cfg_.op_cpu + sim::nsec(300) * static_cast<sim::Duration>(count);
  client_.sched().submit(client_pid_, cpu, [this, key, count,
                                            done = std::move(done)]() mutable {
    auto it = memtable_.seek(key);
    int n = 0;
    while (it.valid() && n < count) {
      it.next();
      ++n;
    }
    done(n > 0);
  });
}

void KvStore::read_modify_write(uint64_t key, std::vector<uint8_t> value,
                                Done done) {
  read(key, [this, key, value = std::move(value), done = std::move(done)](
                bool ok, std::vector<uint8_t>) mutable {
    if (!ok) {
      done(false);
      return;
    }
    put(key, std::move(value), std::move(done));
  });
}

bool KvStore::replica_read(size_t replica, uint64_t key,
                           std::vector<uint8_t>* value) const {
  const auto* v = replica_tables_.at(replica).table.find(key);
  if (v == nullptr) return false;
  if (value != nullptr) *value = *v;
  return true;
}

void KvStore::replica_sync_tick(size_t i) {
  ReplicaState& r = replica_tables_[i];
  r.server->loop().schedule_after(cfg_.sync_period, [this, i, alive = alive_] {
    if (!*alive) return;
    ReplicaState& rs = replica_tables_[i];
    // Read this replica's durable tail pointer from its own region.
    uint64_t tail = 0;
    group_.replica_load(i, core::RegionLayout::kTailOffset, &tail, 8);

    uint64_t new_records = 0;
    uint64_t v = rs.applied;
    const auto& lay = cfg_.layout;
    auto log_phys = [&](uint64_t off) {
      return lay.log_base() + (off % lay.log_size);
    };
    while (v < tail) {
      // [magic u32][num u32][lsn u64][total u32][crc u32]
      uint32_t magic = 0, total = 0, num = 0;
      group_.replica_load(i, log_phys(v), &magic, 4);
      group_.replica_load(i, log_phys(v) + 16, &total, 4);
      if (magic == 0x57524150 /* WRAP */) {
        v += total;
        continue;
      }
      if (magic != 0x57414C21 /* WAL! */ || total == 0) break;
      group_.replica_load(i, log_phys(v) + 4, &num, 4);
      uint64_t p = v + 24;  // first entry header
      for (uint32_t e = 0; e < num; ++e) {
        uint64_t db_off = 0;
        uint32_t len = 0;
        group_.replica_load(i, log_phys(p), &db_off, 8);
        group_.replica_load(i, log_phys(p) + 8, &len, 4);
        // Slot payload: [key u64][len u32][pad][value...]
        if (len >= 16) {
          uint64_t key = 0;
          uint32_t vlen = 0;
          group_.replica_load(i, log_phys(p + 16), &key, 8);
          group_.replica_load(i, log_phys(p + 24), &vlen, 4);
          std::vector<uint8_t> val(vlen);
          group_.replica_load(i, log_phys(p + 32), val.data(), vlen);
          rs.table.insert(key, std::move(val));
        }
        p += 16 + ((len + 7) & ~uint64_t{7});
      }
      v += total;
      ++new_records;
    }
    rs.applied = v;
    if (new_records > 0) {
      // Charge the off-path CPU the sync actually used.
      rs.server->sched().submit(
          rs.pid,
          cfg_.sync_cpu_per_record * static_cast<sim::Duration>(new_records));
    }
    replica_sync_tick(i);
  });
}

void KvStore::recover() {
  memtable_.clear();
  // 1) Replay the committed log into the DB area (idempotent redo).
  core::ReplicatedWal::replay(
      cfg_.layout,
      [this](uint64_t off, void* dst, uint32_t len) {
        group_.client_load(off, dst, len);
      },
      [this](uint64_t off, const void* src, uint32_t len) {
        group_.client_store(off, src, len);
      });
  // 2) Scan DB-area slots.
  const uint64_t slots = cfg_.layout.db_size() / slot_stride();
  for (uint64_t s = 0; s < slots; ++s) {
    const uint64_t off = cfg_.layout.db_base() + s * slot_stride();
    uint64_t key = 0;
    uint32_t len = 0;
    group_.client_load(off, &key, 8);
    group_.client_load(off + 8, &len, 4);
    if (len == 0 || len > cfg_.value_size) continue;
    if (key != s) continue;  // never-written slot
    std::vector<uint8_t> val(len);
    group_.client_load(off + 16, val.data(), len);
    memtable_.insert(key, std::move(val));
  }
  wal_.reload_pointers();
}

void KvStore::bulk_load(uint64_t n) {
  // Control-path load: fill client memtable + region image, replicate the
  // DB area in large chunks, and seed the replica tables directly.
  for (uint64_t k = 0; k < n; ++k) {
    auto value = WorkloadGenerator::value_for(k, cfg_.value_size);
    const auto slot = encode_slot(k, value);
    group_.client_store(cfg_.layout.db_base() + slot_offset(k), slot.data(),
                        static_cast<uint32_t>(slot.size()));
    memtable_.insert(k, std::move(value));
  }
  const uint64_t total = n * slot_stride();
  const uint32_t chunk = 256 << 10;
  for (uint64_t off = 0; off < total; off += chunk) {
    const auto len = static_cast<uint32_t>(std::min<uint64_t>(chunk, total - off));
    group_.gwrite(cfg_.layout.db_base() + off, len, /*flush=*/true, [] {});
  }
  for (auto& r : replica_tables_) r.table.copy_from(memtable_);
}

}  // namespace hyperloop::apps
