#include "apps/kvstore/kvstore.h"

#include <cassert>
#include <cstring>

#include "apps/ycsb/workload.h"

namespace hyperloop::apps {

KvStore::KvStore(core::ReplicationGroup& group, core::Server& client,
                 std::vector<core::Server*> replica_servers, Config cfg)
    : group_(group), client_(client), cfg_(cfg),
      wal_(group, cfg.layout, cfg.shards, cfg.wal) {
  assert(cfg_.shards >= 1);
  assert(cfg_.layout.base == 0 && "pass the shard-0 slice layout");
  client_pid_ = client_.sched().create_process(client_.name() + "-kv");
  shards_.resize(cfg_.shards);
  for (uint32_t s = 0; s < cfg_.shards; ++s) {
    shards_[s].layout = cfg_.layout.shard_slice(s);
  }
  replica_tables_.resize(replica_servers.size());
  for (size_t i = 0; i < replica_servers.size(); ++i) {
    replica_tables_[i].server = replica_servers[i];
    replica_tables_[i].applied.assign(cfg_.shards, 0);
    if (cfg_.replicas_sync) {
      replica_tables_[i].pid = replica_servers[i]->sched().create_process(
          replica_servers[i]->name() + "-kv-sync");
      replica_sync_tick(i);
    }
  }
}

KvStore::~KvStore() { *alive_ = false; }

std::vector<uint8_t> KvStore::encode_slot(
    uint64_t key, const std::vector<uint8_t>& value) const {
  std::vector<uint8_t> slot(slot_stride());
  std::memcpy(slot.data(), &key, 8);
  const uint32_t len = static_cast<uint32_t>(value.size());
  std::memcpy(slot.data() + 8, &len, 4);
  std::memcpy(slot.data() + 16, value.data(),
              std::min<size_t>(value.size(), cfg_.value_size));
  return slot;
}

void KvStore::defer_put(uint64_t key, std::vector<uint8_t> value,
                        std::shared_ptr<Done> done_sp) {
  client_.loop().schedule_after(
      sim::usec(200),
      [this, key, value = std::move(value), done_sp,
       alive = alive_]() mutable {
        if (!*alive) return;
        put(key, std::move(value),
            [done_sp](bool ok) { (*done_sp)(ok); });
      });
}

void KvStore::put(uint64_t key, std::vector<uint8_t> value, Done done) {
  assert(value.size() <= cfg_.value_size);
  const uint32_t s = shard_of(key);
  client_.sched().submit(
      client_pid_, cfg_.op_cpu,
      [this, s, key, value = std::move(value),
       done = std::move(done)]() mutable {
        if (shards_[s].paused) {
          // The shard's chain is under repair: defer, touching nothing —
          // the memtable must not run ahead of a WAL that cannot commit.
          defer_put(key, std::move(value),
                    std::make_shared<Done>(std::move(done)));
          return;
        }
        shards_[s].memtable.insert(key, value);
        std::vector<core::ReplicatedWal::Entry> entries;
        entries.push_back({slot_offset(key), encode_slot(key, value)});
        auto done_sp = std::make_shared<Done>(std::move(done));
        const bool ok = wal_.append_to(
            s, entries, [done_sp](uint64_t) { (*done_sp)(true); });
        if (!ok) {
          // Log full: checkpoint this shard and retry shortly.
          maybe_checkpoint(s);
          defer_put(key, std::move(value), done_sp);
          return;
        }
        maybe_checkpoint(s);
      });
}

void KvStore::maybe_checkpoint(uint32_t s) {
  Shard& sh = shards_[s];
  if (sh.checkpoint_running) return;
  if (static_cast<double>(wal_.shard(s).used_bytes()) <
      cfg_.checkpoint_threshold * static_cast<double>(cfg_.layout.log_size)) {
    return;
  }
  sh.checkpoint_running = true;
  ++checkpoints_;
  // Drain until half the threshold, one record at a time, off the
  // critical path (appends continue concurrently).
  checkpoint_step(s);
}

void KvStore::checkpoint_step(uint32_t s) {
  const bool below =
      static_cast<double>(wal_.shard(s).used_bytes()) <
      cfg_.checkpoint_threshold / 2 * static_cast<double>(cfg_.layout.log_size);
  const auto next = [this, s, alive = alive_] {
    if (*alive) checkpoint_step(s);
  };
  if (below || !wal_.execute_and_advance(s, next)) {
    shards_[s].checkpoint_running = false;
  }
}

void KvStore::insert(uint64_t key, std::vector<uint8_t> value, Done done) {
  put(key, std::move(value), std::move(done));
}

void KvStore::update(uint64_t key, std::vector<uint8_t> value, Done done) {
  put(key, std::move(value), std::move(done));
}

void KvStore::read(uint64_t key, ReadDone done) {
  client_.sched().submit(client_pid_, cfg_.op_cpu,
                         [this, key, done = std::move(done)]() mutable {
                           const auto* v =
                               shards_[shard_of(key)].memtable.find(key);
                           if (v == nullptr) {
                             done(false, {});
                           } else {
                             done(true, *v);
                           }
                         });
}

void KvStore::remote_scan(uint64_t key, int count, Done done) {
  // One scatter batch over the replicated DB image: shard s's covered
  // keys occupy consecutive local slots (keys stripe k % shards), so the
  // whole cross-slice scan is one extent per shard, issued under one
  // doorbell per chain and rejoined by the sharded reader.
  core::ReadVec v;
  const uint64_t stride = slot_stride();
  const auto kcount = static_cast<uint64_t>(count);
  for (uint32_t s = 0; s < cfg_.shards; ++s) {
    const uint64_t first =
        key + (s + cfg_.shards - key % cfg_.shards) % cfg_.shards;
    if (first >= key + kcount) continue;
    uint64_t n = (key + kcount - 1 - first) / cfg_.shards + 1;
    const uint64_t l0 = first / cfg_.shards;
    const core::RegionLayout& lay = shards_[s].layout;
    const uint64_t max_slots = lay.db_size() / stride;
    if (l0 >= max_slots) continue;
    n = std::min(n, max_slots - l0);
    v.push_back(core::ReadExtent{lay.db_base() + l0 * stride,
                                 static_cast<uint32_t>(n * stride)});
  }
  if (v.empty()) {
    done(false);
    return;
  }
  const uint32_t vsize = cfg_.value_size;
  sreader_->readv(v, [done = std::move(done), vsize](
                         core::ReadView view) mutable {
    const uint64_t stride = 16 + vsize;
    int found = 0;
    for (uint64_t off = 0; off + stride <= view.size(); off += stride) {
      uint32_t len = 0;
      std::memcpy(&len, view.data() + off + 8, 4);
      if (len != 0 && len <= vsize) ++found;
    }
    done(found > 0);
  });
}

void KvStore::scan(uint64_t key, int count, Done done) {
  const auto cpu =
      cfg_.op_cpu + sim::nsec(300) * static_cast<sim::Duration>(count);
  if (sreader_ != nullptr) {
    client_.sched().submit(client_pid_, cpu,
                           [this, key, count,
                            done = std::move(done)]() mutable {
                             remote_scan(key, count, std::move(done));
                           });
    return;
  }
  client_.sched().submit(client_pid_, cpu, [this, key, count,
                                            done = std::move(done)]() mutable {
    // Scans walk the owning shard's table: dense keys stripe round-robin,
    // so one shard's iterator still yields `count` ascending keys.
    auto it = shards_[shard_of(key)].memtable.seek(key);
    int n = 0;
    while (it.valid() && n < count) {
      it.next();
      ++n;
    }
    done(n > 0);
  });
}

void KvStore::read_modify_write(uint64_t key, std::vector<uint8_t> value,
                                Done done) {
  read(key, [this, key, value = std::move(value), done = std::move(done)](
                bool ok, std::vector<uint8_t>) mutable {
    if (!ok) {
      done(false);
      return;
    }
    put(key, std::move(value), std::move(done));
  });
}

bool KvStore::replica_read(size_t replica, uint64_t key,
                           std::vector<uint8_t>* value) const {
  const auto* v = replica_tables_.at(replica).table.find(key);
  if (v == nullptr) return false;
  if (value != nullptr) *value = *v;
  return true;
}

void KvStore::replica_sync_tick(size_t i) {
  ReplicaState& r = replica_tables_[i];
  r.server->loop().schedule_after(cfg_.sync_period, [this, i, alive = alive_] {
    if (!*alive) return;
    ReplicaState& rs = replica_tables_[i];
    uint64_t new_records = 0;
    for (uint32_t s = 0; s < cfg_.shards; ++s) {
      const core::RegionLayout& lay = shards_[s].layout;
      // Read this replica's durable tail pointer from its own region.
      uint64_t tail = 0;
      group_.replica_load(i, lay.tail_ptr_offset(), &tail, 8);

      uint64_t v = rs.applied[s];
      auto log_phys = [&](uint64_t off) {
        return lay.log_base() + (off % lay.log_size);
      };
      while (v < tail) {
        // [magic u32][num u32][lsn u64][total u32][crc u32]
        uint32_t magic = 0, total = 0, num = 0;
        group_.replica_load(i, log_phys(v), &magic, 4);
        group_.replica_load(i, log_phys(v) + 16, &total, 4);
        if (magic == 0x57524150 /* WRAP */) {
          v += total;
          continue;
        }
        if (magic != 0x57414C21 /* WAL! */ || total == 0) break;
        group_.replica_load(i, log_phys(v) + 4, &num, 4);
        uint64_t p = v + 24;  // first entry header
        for (uint32_t e = 0; e < num; ++e) {
          uint64_t db_off = 0;
          uint32_t len = 0;
          group_.replica_load(i, log_phys(p), &db_off, 8);
          group_.replica_load(i, log_phys(p) + 8, &len, 4);
          // Slot payload: [key u64][len u32][pad][value...]
          if (len >= 16) {
            uint64_t key = 0;
            uint32_t vlen = 0;
            group_.replica_load(i, log_phys(p + 16), &key, 8);
            group_.replica_load(i, log_phys(p + 24), &vlen, 4);
            std::vector<uint8_t> val(vlen);
            group_.replica_load(i, log_phys(p + 32), val.data(), vlen);
            rs.table.insert(key, std::move(val));
          }
          p += 16 + ((len + 7) & ~uint64_t{7});
        }
        v += total;
        ++new_records;
      }
      rs.applied[s] = v;
    }
    if (new_records > 0) {
      // Charge the off-path CPU the sync actually used.
      rs.server->sched().submit(
          rs.pid,
          cfg_.sync_cpu_per_record * static_cast<sim::Duration>(new_records));
    }
    replica_sync_tick(i);
  });
}

void KvStore::recover() {
  for (uint32_t s = 0; s < cfg_.shards; ++s) {
    Shard& sh = shards_[s];
    sh.memtable.clear();
    // 1) Replay the committed log into the DB area (idempotent redo).
    core::ReplicatedWal::replay(
        sh.layout,
        [this](uint64_t off, void* dst, uint32_t len) {
          group_.client_load(off, dst, len);
        },
        [this](uint64_t off, const void* src, uint32_t len) {
          group_.client_store(off, src, len);
        });
    // 2) Scan this shard's DB-area slots; local slot l holds key
    //    l * shards + s (the stripe inverse).
    const uint64_t slots = sh.layout.db_size() / slot_stride();
    for (uint64_t l = 0; l < slots; ++l) {
      const uint64_t off = sh.layout.db_base() + l * slot_stride();
      const uint64_t expect = l * cfg_.shards + s;
      uint64_t key = 0;
      uint32_t len = 0;
      group_.client_load(off, &key, 8);
      group_.client_load(off + 8, &len, 4);
      if (len == 0 || len > cfg_.value_size) continue;
      if (key != expect) continue;  // never-written slot
      std::vector<uint8_t> val(len);
      group_.client_load(off + 16, val.data(), len);
      sh.memtable.insert(key, std::move(val));
    }
    wal_.shard(s).reload_pointers();
  }
}

void KvStore::bulk_load(uint64_t n) {
  // Control-path load: fill client memtables + region image, replicate
  // each shard's DB span in large chunks, and seed the replica tables
  // directly.
  for (uint64_t k = 0; k < n; ++k) {
    auto value = WorkloadGenerator::value_for(k, cfg_.value_size);
    const auto slot = encode_slot(k, value);
    const Shard& sh = shards_[shard_of(k)];
    group_.client_store(sh.layout.db_base() + slot_offset(k), slot.data(),
                        static_cast<uint32_t>(slot.size()));
    shards_[shard_of(k)].memtable.insert(k, std::move(value));
  }
  const uint32_t chunk = 256 << 10;
  for (uint32_t s = 0; s < cfg_.shards; ++s) {
    // Keys striping k % shards leave shard s with ceil((n - s) / shards)
    // loaded slots.
    const uint64_t local = s < n % cfg_.shards ? n / cfg_.shards + 1
                                               : n / cfg_.shards;
    const uint64_t total = local * slot_stride();
    for (uint64_t off = 0; off < total; off += chunk) {
      const auto len =
          static_cast<uint32_t>(std::min<uint64_t>(chunk, total - off));
      group_.gwrite(shards_[s].layout.db_base() + off, len, /*flush=*/true,
                    [] {});
    }
  }
  for (auto& r : replica_tables_) {
    r.table.clear();
    for (const Shard& sh : shards_) {
      for (SkipList::Iterator it = sh.memtable.begin(); it.valid();
           it.next()) {
        r.table.insert(it.key(), it.value());
      }
    }
  }
}

}  // namespace hyperloop::apps
