#include "apps/kvstore/skiplist.h"

#include <cassert>

namespace hyperloop::apps {

struct SkipNode {
  uint64_t key = 0;
  std::vector<uint8_t> value;
  std::vector<SkipNode*> next;  // size == tower height
};

SkipList::SkipList(uint64_t seed)
    : head_(new SkipNode), rng_state_(seed | 1) {
  head_->next.assign(kMaxLevel, nullptr);
}

SkipList::~SkipList() {
  if (head_ == nullptr) return;
  clear();
  delete head_;
}

SkipList::SkipList(SkipList&& o) noexcept
    : head_(o.head_), level_(o.level_), size_(o.size_),
      rng_state_(o.rng_state_) {
  o.head_ = nullptr;
  o.size_ = 0;
}

SkipList& SkipList::operator=(SkipList&& o) noexcept {
  if (this == &o) return *this;
  if (head_ != nullptr) {
    clear();
    delete head_;
  }
  head_ = o.head_;
  level_ = o.level_;
  size_ = o.size_;
  rng_state_ = o.rng_state_;
  o.head_ = nullptr;
  o.size_ = 0;
  return *this;
}

void SkipList::clear() {
  SkipNode* n = head_->next[0];
  while (n != nullptr) {
    SkipNode* d = n;
    n = n->next[0];
    delete d;
  }
  head_->next.assign(kMaxLevel, nullptr);
  level_ = 1;
  size_ = 0;
}

int SkipList::random_level() {
  // Geometric with p = 1/4 (xorshift64).
  int lvl = 1;
  while (lvl < kMaxLevel) {
    rng_state_ ^= rng_state_ << 13;
    rng_state_ ^= rng_state_ >> 7;
    rng_state_ ^= rng_state_ << 17;
    if ((rng_state_ & 3) != 0) break;
    ++lvl;
  }
  return lvl;
}

bool SkipList::insert(uint64_t key, std::vector<uint8_t> value) {
  SkipNode* update[kMaxLevel];
  SkipNode* x = head_;
  for (int i = level_ - 1; i >= 0; --i) {
    while (x->next[static_cast<size_t>(i)] != nullptr &&
           x->next[static_cast<size_t>(i)]->key < key) {
      x = x->next[static_cast<size_t>(i)];
    }
    update[i] = x;
  }
  SkipNode* cand = x->next[0];
  if (cand != nullptr && cand->key == key) {
    cand->value = std::move(value);
    return false;
  }
  const int lvl = random_level();
  if (lvl > level_) {
    for (int i = level_; i < lvl; ++i) update[i] = head_;
    level_ = lvl;
  }
  auto* node = new SkipNode;
  node->key = key;
  node->value = std::move(value);
  node->next.assign(static_cast<size_t>(lvl), nullptr);
  for (int i = 0; i < lvl; ++i) {
    node->next[static_cast<size_t>(i)] =
        update[i]->next[static_cast<size_t>(i)];
    update[i]->next[static_cast<size_t>(i)] = node;
  }
  ++size_;
  return true;
}

const std::vector<uint8_t>* SkipList::find(uint64_t key) const {
  const SkipNode* x = head_;
  for (int i = level_ - 1; i >= 0; --i) {
    while (x->next[static_cast<size_t>(i)] != nullptr &&
           x->next[static_cast<size_t>(i)]->key < key) {
      x = x->next[static_cast<size_t>(i)];
    }
  }
  const SkipNode* cand = x->next[0];
  if (cand != nullptr && cand->key == key) return &cand->value;
  return nullptr;
}

bool SkipList::erase(uint64_t key) {
  SkipNode* update[kMaxLevel];
  SkipNode* x = head_;
  for (int i = level_ - 1; i >= 0; --i) {
    while (x->next[static_cast<size_t>(i)] != nullptr &&
           x->next[static_cast<size_t>(i)]->key < key) {
      x = x->next[static_cast<size_t>(i)];
    }
    update[i] = x;
  }
  SkipNode* cand = x->next[0];
  if (cand == nullptr || cand->key != key) return false;
  for (int i = 0; i < level_; ++i) {
    if (update[i]->next[static_cast<size_t>(i)] == cand) {
      update[i]->next[static_cast<size_t>(i)] =
          cand->next[static_cast<size_t>(i)];
    }
  }
  delete cand;
  while (level_ > 1 &&
         head_->next[static_cast<size_t>(level_ - 1)] == nullptr) {
    --level_;
  }
  --size_;
  return true;
}

uint64_t SkipList::Iterator::key() const { return node_->key; }

const std::vector<uint8_t>& SkipList::Iterator::value() const {
  return node_->value;
}

void SkipList::Iterator::next() { node_ = node_->next[0]; }

SkipList::Iterator SkipList::seek(uint64_t from) const {
  const SkipNode* x = head_;
  for (int i = level_ - 1; i >= 0; --i) {
    while (x->next[static_cast<size_t>(i)] != nullptr &&
           x->next[static_cast<size_t>(i)]->key < from) {
      x = x->next[static_cast<size_t>(i)];
    }
  }
  return Iterator(x->next[0]);
}

SkipList::Iterator SkipList::begin() const { return Iterator(head_->next[0]); }

void SkipList::copy_from(const SkipList& other) {
  clear();
  for (Iterator it = other.begin(); it.valid(); it.next()) {
    insert(it.key(), it.value());
  }
}

}  // namespace hyperloop::apps
