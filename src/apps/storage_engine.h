// The asynchronous storage-engine interface the YCSB driver targets.
// Both the KV store (RocksDB analogue) and the document store (MongoDB
// analogue) implement it, over any replication backend.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/small_fn.h"

namespace hyperloop::apps {

class StorageEngine {
 public:
  virtual ~StorageEngine() = default;

  using Done = sim::SmallFn<void(bool ok), 48>;
  using ReadDone = sim::SmallFn<void(bool ok, std::vector<uint8_t> value), 48>;

  virtual void insert(uint64_t key, std::vector<uint8_t> value, Done done) = 0;
  virtual void update(uint64_t key, std::vector<uint8_t> value, Done done) = 0;
  virtual void read(uint64_t key, ReadDone done) = 0;
  /// Range scan of up to `count` records starting at `key` (YCSB-E).
  virtual void scan(uint64_t key, int count, Done done) = 0;
  /// Read-modify-write (YCSB-F "modify").
  virtual void read_modify_write(uint64_t key, std::vector<uint8_t> value,
                                 Done done) = 0;
};

}  // namespace hyperloop::apps
