#include "apps/ycsb/driver.h"

#include <algorithm>

namespace hyperloop::apps {

YcsbDriver::YcsbDriver(sim::EventLoop& loop, StorageEngine& engine,
                       WorkloadGenerator& workload, Config cfg)
    : loop_(loop), engine_(engine), workload_(workload), cfg_(cfg) {
  shard_latency_.resize(cfg_.shards);
  shard_completed_.assign(cfg_.shards, 0);
}

void YcsbDriver::start(std::function<void()> on_complete) {
  on_complete_ = std::move(on_complete);
  for (int t = 0; t < cfg_.threads; ++t) {
    for (int b = 0; b < std::max(1, cfg_.batch); ++b) thread_loop();
  }
}

void YcsbDriver::thread_loop() {
  if (issued_ >= cfg_.total_ops) return;
  ++issued_;
  const Op op = workload_.next();
  const sim::Time started = loop_.now();
  const OpType t = op.type;

  const uint64_t key = op.key;
  auto done = [this, t, key, started](bool ok) {
    finish_op(t, key, started, ok);
  };

  switch (op.type) {
    case OpType::kRead:
      engine_.read(op.key, [done](bool ok, std::vector<uint8_t>) { done(ok); });
      break;
    case OpType::kUpdate:
      engine_.update(op.key,
                     WorkloadGenerator::value_for(op.key + 1,
                                                  workload_.spec().value_size),
                     done);
      break;
    case OpType::kInsert:
      engine_.insert(op.key,
                     WorkloadGenerator::value_for(op.key,
                                                  workload_.spec().value_size),
                     done);
      break;
    case OpType::kScan:
      engine_.scan(op.key, op.scan_len, done);
      break;
    case OpType::kRmw:
      engine_.read_modify_write(
          op.key,
          WorkloadGenerator::value_for(op.key + 2,
                                       workload_.spec().value_size),
          done);
      break;
  }
}

void YcsbDriver::finish_op(OpType t, uint64_t key, sim::Time started,
                           bool ok) {
  const int64_t lat = static_cast<int64_t>(loop_.now() - started);
  latency_[static_cast<size_t>(t)].record(lat);
  // Aggregates accumulate here, one extra record per op, so overall() /
  // writes() are O(1) getters instead of merging every bucket array on
  // each call.
  overall_.record(lat);
  if (t == OpType::kUpdate || t == OpType::kInsert || t == OpType::kRmw) {
    writes_.record(lat);
  }
  if (cfg_.shards > 1 && cfg_.shard_of) {
    const uint32_t s = cfg_.shard_of(key) % cfg_.shards;
    shard_latency_[s].record(lat);
    ++shard_completed_[s];
  }
  ++completed_;
  if (!ok) ++failed_;
  if (completed_ == cfg_.total_ops) {
    if (on_complete_) on_complete_();
    return;
  }
  if (cfg_.think_time > 0) {
    loop_.schedule_after(cfg_.think_time, [this] { thread_loop(); });
  } else {
    thread_loop();
  }
}

}  // namespace hyperloop::apps
