// Closed-loop YCSB driver: N logical client threads issue operations
// against a StorageEngine, each waiting for its previous operation to
// complete (optionally with think time). Latency is recorded per op type
// in simulated time, which is what the paper's Figures 11/12 plot.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "apps/storage_engine.h"
#include "apps/ycsb/workload.h"
#include "sim/event_loop.h"
#include "stats/histogram.h"

namespace hyperloop::apps {

class YcsbDriver {
 public:
  struct Config {
    int threads = 4;
    uint64_t total_ops = 10000;
    sim::Duration think_time = 0;
    /// Ops each thread keeps outstanding (pipelined batch depth). With
    /// batch > 1 a thread issues a burst and refills one op per
    /// completion, which is what feeds the storage engine's WAL
    /// group-commit window; batch = 1 is the classic closed loop.
    int batch = 1;
    /// Per-shard accounting: with shards > 1 and a shard_of hook (e.g.
    /// KvStore::shard_of), every op's latency is also recorded in its
    /// owning shard's histogram — the fault-isolation experiments read
    /// shard_latency() to show one hurt shard leaves the others flat.
    uint32_t shards = 1;
    std::function<uint32_t(uint64_t key)> shard_of;
  };

  YcsbDriver(sim::EventLoop& loop, StorageEngine& engine,
             WorkloadGenerator& workload, Config cfg);

  /// Starts all threads; `on_complete` fires when total_ops have finished.
  void start(std::function<void()> on_complete);

  const stats::Histogram& latency(OpType t) const {
    return latency_[static_cast<size_t>(t)];
  }
  /// All operation types merged. Maintained incrementally as ops finish,
  /// so report generation is O(1), not a per-call bucket merge.
  const stats::Histogram& overall() const { return overall_; }
  /// Insert+update+rmw merged (the paper's "insert/update" statements).
  const stats::Histogram& writes() const { return writes_; }
  /// Per-shard overall latency (all op types; needs Config::shard_of).
  const stats::Histogram& shard_latency(uint32_t s) const {
    return shard_latency_.at(s);
  }
  uint64_t shard_completed(uint32_t s) const { return shard_completed_.at(s); }

  uint64_t completed() const { return completed_; }
  uint64_t failed() const { return failed_; }

 private:
  void thread_loop();
  void finish_op(OpType t, uint64_t key, sim::Time started, bool ok);

  sim::EventLoop& loop_;
  StorageEngine& engine_;
  WorkloadGenerator& workload_;
  Config cfg_;
  std::array<stats::Histogram, 5> latency_;
  stats::Histogram overall_;  ///< every op (incremental aggregate)
  stats::Histogram writes_;   ///< update+insert+rmw (incremental aggregate)
  std::vector<stats::Histogram> shard_latency_;  ///< per owning shard
  std::vector<uint64_t> shard_completed_;
  uint64_t issued_ = 0;
  uint64_t completed_ = 0;
  uint64_t failed_ = 0;
  std::function<void()> on_complete_;
};

}  // namespace hyperloop::apps
