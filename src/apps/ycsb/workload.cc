#include "apps/ycsb/workload.h"

#include <cassert>

namespace hyperloop::apps {

const char* op_name(OpType t) {
  switch (t) {
    case OpType::kRead: return "READ";
    case OpType::kUpdate: return "UPDATE";
    case OpType::kInsert: return "INSERT";
    case OpType::kScan: return "SCAN";
    case OpType::kRmw: return "RMW";
  }
  return "?";
}

WorkloadSpec WorkloadSpec::A() {
  WorkloadSpec s;
  s.read = 0.5;
  s.update = 0.5;
  return s;
}
WorkloadSpec WorkloadSpec::B() {
  WorkloadSpec s;
  s.read = 0.95;
  s.update = 0.05;
  return s;
}
WorkloadSpec WorkloadSpec::C() {
  WorkloadSpec s;
  s.read = 1.0;
  return s;
}
WorkloadSpec WorkloadSpec::D() {
  WorkloadSpec s;
  s.read = 0.95;
  s.insert = 0.05;
  s.dist = KeyDist::kLatest;
  return s;
}
WorkloadSpec WorkloadSpec::E() {
  WorkloadSpec s;
  s.insert = 0.05;
  s.scan = 0.95;
  return s;
}
WorkloadSpec WorkloadSpec::F() {
  WorkloadSpec s;
  s.read = 0.5;
  s.rmw = 0.5;
  return s;
}

WorkloadSpec WorkloadSpec::by_name(char name) {
  switch (name) {
    case 'A': return A();
    case 'B': return B();
    case 'C': return C();
    case 'D': return D();
    case 'E': return E();
    case 'F': return F();
    default: assert(false && "unknown YCSB workload"); return A();
  }
}

WorkloadGenerator::WorkloadGenerator(WorkloadSpec spec,
                                     uint64_t initial_records, sim::Rng rng)
    : spec_(spec),
      record_count_(initial_records),
      rng_(rng),
      zipf_(initial_records, 0.99),
      latest_(0.99) {
  assert(initial_records > 0);
}

uint64_t WorkloadGenerator::choose_key() {
  switch (spec_.dist) {
    case WorkloadSpec::KeyDist::kZipfian:
      return zipf_.sample(rng_) % record_count_;
    case WorkloadSpec::KeyDist::kLatest:
      return latest_.sample(rng_, record_count_);
    case WorkloadSpec::KeyDist::kUniform:
      return rng_.next_below(record_count_);
  }
  return 0;
}

Op WorkloadGenerator::next() {
  Op op;
  double p = rng_.next_double();
  if ((p -= spec_.read) < 0) {
    op.type = OpType::kRead;
    op.key = choose_key();
  } else if ((p -= spec_.update) < 0) {
    op.type = OpType::kUpdate;
    op.key = choose_key();
  } else if ((p -= spec_.insert) < 0) {
    op.type = OpType::kInsert;
    op.key = record_count_++;
  } else if ((p -= spec_.scan) < 0) {
    op.type = OpType::kScan;
    op.key = choose_key();
    op.scan_len =
        1 + static_cast<int>(rng_.next_below(
                static_cast<uint64_t>(spec_.max_scan_len)));
  } else {
    op.type = OpType::kRmw;
    op.key = choose_key();
  }
  return op;
}

std::vector<uint8_t> WorkloadGenerator::value_for(uint64_t key,
                                                  uint32_t size) {
  std::vector<uint8_t> v(size);
  uint64_t x = key * 0x9e3779b97f4a7c15ULL + 1;
  for (uint32_t i = 0; i < size; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    v[i] = static_cast<uint8_t>(x);
  }
  return v;
}

}  // namespace hyperloop::apps
