// YCSB workload generation (Cooper et al., SoCC'10), matching the mixes
// the paper uses in Table 3:
//
//   A: 50% read / 50% update          zipfian
//   B: 95% read /  5% update          zipfian
//   C: 100% read                      zipfian
//   D: 95% read /  5% insert          latest
//   E:  5% insert / 95% scan          zipfian start keys, uniform length
//   F: 50% read / 50% read-modify-write  zipfian
//
// Records are 32-byte keys with 1024-byte values (§6.2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/distributions.h"
#include "sim/rng.h"

namespace hyperloop::apps {

enum class OpType : uint8_t { kRead, kUpdate, kInsert, kScan, kRmw };

const char* op_name(OpType t);

struct Op {
  OpType type = OpType::kRead;
  uint64_t key = 0;
  int scan_len = 0;
};

struct WorkloadSpec {
  double read = 0, update = 0, insert = 0, scan = 0, rmw = 0;
  enum class KeyDist { kZipfian, kLatest, kUniform } dist = KeyDist::kZipfian;
  int max_scan_len = 100;
  uint32_t value_size = 1024;

  static WorkloadSpec A();
  static WorkloadSpec B();
  static WorkloadSpec C();
  static WorkloadSpec D();
  static WorkloadSpec E();
  static WorkloadSpec F();
  /// The paper's Table 3 set, keyed by letter.
  static WorkloadSpec by_name(char name);
};

/// Generates a stream of YCSB operations over a growing keyspace.
class WorkloadGenerator {
 public:
  WorkloadGenerator(WorkloadSpec spec, uint64_t initial_records,
                    sim::Rng rng);

  Op next();

  /// Current number of records (grows with inserts).
  uint64_t record_count() const { return record_count_; }
  const WorkloadSpec& spec() const { return spec_; }

  /// Deterministic record value for a key (also used to verify reads).
  static std::vector<uint8_t> value_for(uint64_t key, uint32_t size);

 private:
  uint64_t choose_key();

  WorkloadSpec spec_;
  uint64_t record_count_;
  sim::Rng rng_;
  sim::ZipfianGenerator zipf_;
  sim::LatestGenerator latest_;
};

}  // namespace hyperloop::apps
