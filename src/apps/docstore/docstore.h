// Replicated document store — the MongoDB case study (§5.2).
//
// The store is split into a front end (query parsing + coordination,
// running as a process on the primary server) and a back end (the
// replicated region on the chain). Every write is a full ACID transaction
// through the TransactionManager: group write locks (gCAS), oplog append
// (gWRITE+gFLUSH), ExecuteAndAdvance (gMEMCPY+gFLUSH), unlock — exactly
// the §5.2 flow, with wrLock/wrUnlock surrounding ExecuteAndAdvance.
// Reads take a read lock on the primary's copy by default; an optional
// RemoteReader serves reads from a chain replica (one-sided RDMA).
//
// Sharded mode (Config::shards > 1, DESIGN.md "Sharded datapath"): the
// keyspace is partitioned key % shards, each shard owning its own region
// slice with a full oplog + lock table + transaction manager of its own.
// Under a ShardedGroup, every shard's transactions (locks, oplog, apply)
// ride their own replication chain.
//
// Documents are fixed-stride slots in the DB area indexed by dense keys:
// [key u64][len u32][pad u32][body].
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "apps/storage_engine.h"
#include "core/lock.h"
#include "core/remote_reader.h"
#include "core/server.h"
#include "core/sharded_reader.h"
#include "core/txn.h"
#include "core/wal.h"

namespace hyperloop::apps {

class DocStore : public StorageEngine {
 public:
  struct Config {
    /// With shards == 1: the whole region. With shards > 1: the layout of
    /// ONE slice (shard s uses layout.shard_slice(s)); the group's region
    /// must cover shards * layout.region_size bytes.
    core::RegionLayout layout;
    uint32_t shards = 1;
    uint32_t value_size = 1024;
    /// Front-end CPU per operation (parse, plan, marshal) — MongoDB's
    /// software stack cost, which the paper notes dominates what remains
    /// after offload.
    sim::Duration op_cpu = sim::usec(4);
    /// Serve reads from a replica via one-sided RDMA instead of the
    /// primary's copy. With shards == 1 a plain RemoteReader suffices;
    /// with shards > 1 a ShardedReader (set_sharded_reader) is required.
    bool read_from_replica = false;
    /// Lock/read replica for the legacy single-replica reader. A
    /// ShardedReader picks per read via its replica-selection policy.
    size_t read_replica = 0;
    /// Take read locks for reads (required for consistent replica reads).
    bool use_read_locks = true;
    /// Oplog group-commit tuning (staged-window depth, latency clock);
    /// staged_capacity = 1 restores per-record issue semantics.
    core::ReplicatedWal::Options wal;
  };

  DocStore(core::ReplicationGroup& group, core::Server& client, Config cfg);

  /// Enables replica reads through the given reader (owned by caller).
  /// Single-shard only; the reader's one target is cfg.read_replica.
  void set_remote_reader(core::RemoteReader* reader) {
    assert(cfg_.shards == 1 && "use set_sharded_reader with shards > 1");
    reader_ = reader;
  }

  /// Enables replica reads and scatter scans through a sharded reader
  /// (owned by caller). The reader's router must partition the region
  /// exactly like the store's shard slices, and each shard's targets must
  /// be indexed by chain replica (target i = replica i) so the selection
  /// policy's pick can be read-locked. Works for any shard count.
  void set_sharded_reader(core::ShardedReader* reader) { sreader_ = reader; }

  // StorageEngine ---------------------------------------------------------
  void insert(uint64_t key, std::vector<uint8_t> value, Done done) override;
  void update(uint64_t key, std::vector<uint8_t> value, Done done) override;
  void read(uint64_t key, ReadDone done) override;
  void scan(uint64_t key, int count, Done done) override;
  void read_modify_write(uint64_t key, std::vector<uint8_t> value,
                         Done done) override;

  /// Control-path bulk load (pre-bench initialization): fills the DB area
  /// and replicates it in large chunks.
  void bulk_load(uint64_t n);

  core::ReplicatedWal& wal() { return *shards_[0].wal; }
  core::TransactionManager& txns() { return *shards_[0].txns; }
  core::GroupLockManager& locks() { return *shards_[0].locks; }
  core::ReplicatedWal& wal(size_t s) { return *shards_.at(s).wal; }
  core::TransactionManager& txns(size_t s) { return *shards_.at(s).txns; }
  core::GroupLockManager& locks(size_t s) { return *shards_.at(s).locks; }
  sim::ProcessId front_end_pid() const { return client_pid_; }

  /// Which shard owns `key` (key % shards).
  uint32_t shard_of(uint64_t key) const {
    return static_cast<uint32_t>(key % cfg_.shards);
  }

 private:
  struct Shard {
    core::RegionLayout layout;  ///< this shard's slice
    std::unique_ptr<core::ReplicatedWal> wal;
    std::unique_ptr<core::GroupLockManager> locks;
    std::unique_ptr<core::TransactionManager> txns;
  };

  uint64_t slot_stride() const { return 16 + cfg_.value_size; }
  /// DB-area offset of `key`'s slot within its owning shard's slice
  /// (keys stripe round-robin, so key k is local slot k / shards).
  uint64_t slot_offset(uint64_t key) const {
    return (key / cfg_.shards) * slot_stride();
  }
  uint32_t stripe(uint64_t key) const {
    return static_cast<uint32_t>((key / cfg_.shards) %
                                 cfg_.layout.num_locks);
  }
  std::vector<uint8_t> encode_doc(uint64_t key,
                                  const std::vector<uint8_t>& value) const;
  void write_doc(uint64_t key, std::vector<uint8_t> value, Done done);
  /// Picks the replica a replica-read of `key` will observe (and must
  /// read-lock): the sharded reader's policy choice, or the static
  /// cfg_.read_replica for the legacy single-replica reader.
  size_t pick_read_replica(uint64_t key);
  void finish_read(uint64_t key, size_t replica, ReadDone done);
  void remote_scan(uint64_t key, int count, Done done);

  core::ReplicationGroup& group_;
  core::Server& client_;
  Config cfg_;
  std::vector<Shard> shards_;
  core::RemoteReader* reader_ = nullptr;
  core::ShardedReader* sreader_ = nullptr;
  sim::ProcessId client_pid_;
};

}  // namespace hyperloop::apps
