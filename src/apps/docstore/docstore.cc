#include "apps/docstore/docstore.h"

#include <cassert>
#include <cstring>

#include "apps/ycsb/workload.h"

namespace hyperloop::apps {

DocStore::DocStore(core::ReplicationGroup& group, core::Server& client,
                   Config cfg)
    : group_(group), client_(client), cfg_(cfg) {
  assert(cfg_.shards >= 1);
  assert(cfg_.layout.base == 0 && "pass the shard-0 slice layout");
  // Replica reads address one replica's whole region; with shards the
  // slots live in per-shard slices served by different chains, which the
  // single RemoteReader does not span.
  assert((!cfg_.read_from_replica || cfg_.shards == 1) &&
         "replica reads are single-shard only");
  shards_.reserve(cfg_.shards);
  for (uint32_t s = 0; s < cfg_.shards; ++s) {
    Shard sh;
    sh.layout = cfg_.layout.shard_slice(s);
    sh.wal = std::make_unique<core::ReplicatedWal>(group, sh.layout, cfg_.wal);
    sh.locks =
        std::make_unique<core::GroupLockManager>(group, sh.layout,
                                                 client.loop());
    sh.txns = std::make_unique<core::TransactionManager>(group, *sh.wal,
                                                         *sh.locks,
                                                         client.loop());
    shards_.push_back(std::move(sh));
  }
  client_pid_ = client_.sched().create_process(client_.name() + "-doc-fe");
}

std::vector<uint8_t> DocStore::encode_doc(
    uint64_t key, const std::vector<uint8_t>& value) const {
  assert(value.size() <= cfg_.value_size);
  std::vector<uint8_t> doc(slot_stride());
  std::memcpy(doc.data(), &key, 8);
  const uint32_t len = static_cast<uint32_t>(value.size());
  std::memcpy(doc.data() + 8, &len, 4);
  std::memcpy(doc.data() + 16, value.data(), value.size());
  return doc;
}

void DocStore::write_doc(uint64_t key, std::vector<uint8_t> value,
                         Done done) {
  // Front-end CPU first, then the offloaded transaction on the owning
  // shard's lock table + oplog.
  client_.sched().submit(
      client_pid_, cfg_.op_cpu,
      [this, key, value = std::move(value), done = std::move(done)]() mutable {
        Shard& sh = shards_[shard_of(key)];
        std::vector<core::ReplicatedWal::Entry> writes;
        writes.push_back({slot_offset(key), encode_doc(key, value)});
        sh.txns->execute(std::move(writes), {stripe(key)},
                         [done = std::move(done)](bool ok) mutable {
                           done(ok);
                         });
      });
}

void DocStore::insert(uint64_t key, std::vector<uint8_t> value, Done done) {
  write_doc(key, std::move(value), std::move(done));
}

void DocStore::update(uint64_t key, std::vector<uint8_t> value, Done done) {
  write_doc(key, std::move(value), std::move(done));
}

void DocStore::finish_read(uint64_t key, ReadDone done) {
  const Shard& sh = shards_[shard_of(key)];
  if (cfg_.read_from_replica && reader_ != nullptr) {
    reader_->read(sh.layout.db_base() + slot_offset(key),
                  static_cast<uint32_t>(slot_stride()),
                  [done = std::move(done)](std::vector<uint8_t> doc) mutable {
                    uint32_t len = 0;
                    std::memcpy(&len, doc.data() + 8, 4);
                    if (len == 0) {
                      done(false, {});
                      return;
                    }
                    done(true, std::vector<uint8_t>(doc.begin() + 16,
                                                    doc.begin() + 16 + len));
                  });
    return;
  }
  uint32_t len = 0;
  group_.client_load(sh.layout.db_base() + slot_offset(key) + 8, &len, 4);
  if (len == 0 || len > cfg_.value_size) {
    done(false, {});
    return;
  }
  std::vector<uint8_t> value(len);
  group_.client_load(sh.layout.db_base() + slot_offset(key) + 16,
                     value.data(), len);
  done(true, std::move(value));
}

void DocStore::read(uint64_t key, ReadDone done) {
  client_.sched().submit(
      client_pid_, cfg_.op_cpu,
      [this, key, done = std::move(done)]() mutable {
        if (!cfg_.use_read_locks) {
          finish_read(key, std::move(done));
          return;
        }
        Shard& sh = shards_[shard_of(key)];
        const size_t replica =
            cfg_.read_from_replica ? cfg_.read_replica : 0;
        sh.locks->rd_lock(
            stripe(key), replica,
            [this, key, replica, done = std::move(done)](bool ok) mutable {
              if (!ok) {
                done(false, {});
                return;
              }
              finish_read(
                  key,
                  [this, key, replica, done = std::move(done)](
                      bool ok2, std::vector<uint8_t> v) mutable {
                    shards_[shard_of(key)].locks->rd_unlock(
                        stripe(key), replica,
                        [done = std::move(done), ok2,
                         v = std::move(v)]() mutable {
                          done(ok2, std::move(v));
                        });
                  });
            });
      });
}

void DocStore::scan(uint64_t key, int count, Done done) {
  // Scans read `count` consecutive documents from the local copy; charge
  // per-document CPU (cursor iteration + marshalling). Consecutive keys
  // stripe across shards, so the cursor hops slices as it advances.
  const auto cpu =
      cfg_.op_cpu + sim::nsec(500) * static_cast<sim::Duration>(count);
  client_.sched().submit(client_pid_, cpu,
                         [this, key, count, done = std::move(done)]() mutable {
                           int found = 0;
                           for (int i = 0; i < count; ++i) {
                             uint32_t len = 0;
                             const uint64_t k = key + static_cast<uint64_t>(i);
                             const Shard& sh = shards_[shard_of(k)];
                             if (slot_offset(k) + slot_stride() >
                                 sh.layout.db_size()) {
                               break;
                             }
                             group_.client_load(
                                 sh.layout.db_base() + slot_offset(k) + 8,
                                 &len, 4);
                             if (len != 0) ++found;
                           }
                           done(found > 0);
                         });
}

void DocStore::read_modify_write(uint64_t key, std::vector<uint8_t> value,
                                 Done done) {
  read(key, [this, key, value = std::move(value), done = std::move(done)](
                bool ok, std::vector<uint8_t>) mutable {
    if (!ok) {
      done(false);
      return;
    }
    write_doc(key, std::move(value), std::move(done));
  });
}

void DocStore::bulk_load(uint64_t n) {
  for (uint64_t k = 0; k < n; ++k) {
    const auto doc =
        encode_doc(k, WorkloadGenerator::value_for(k, cfg_.value_size));
    const Shard& sh = shards_[shard_of(k)];
    group_.client_store(sh.layout.db_base() + slot_offset(k), doc.data(),
                        static_cast<uint32_t>(doc.size()));
  }
  const uint32_t chunk = 256 << 10;
  for (uint32_t s = 0; s < cfg_.shards; ++s) {
    // Keys stripe k % shards, so shard s holds ceil((n - s) / shards)
    // loaded slots.
    const uint64_t local =
        s < n % cfg_.shards ? n / cfg_.shards + 1 : n / cfg_.shards;
    const uint64_t total = local * slot_stride();
    for (uint64_t off = 0; off < total; off += chunk) {
      const auto len =
          static_cast<uint32_t>(std::min<uint64_t>(chunk, total - off));
      group_.gwrite(shards_[s].layout.db_base() + off, len, /*flush=*/true,
                    [] {});
    }
  }
}

}  // namespace hyperloop::apps
