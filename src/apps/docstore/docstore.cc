#include "apps/docstore/docstore.h"

#include <cassert>
#include <cstring>

#include "apps/ycsb/workload.h"

namespace hyperloop::apps {

DocStore::DocStore(core::ReplicationGroup& group, core::Server& client,
                   Config cfg)
    : group_(group), client_(client), cfg_(cfg) {
  assert(cfg_.shards >= 1);
  assert(cfg_.layout.base == 0 && "pass the shard-0 slice layout");
  shards_.reserve(cfg_.shards);
  for (uint32_t s = 0; s < cfg_.shards; ++s) {
    Shard sh;
    sh.layout = cfg_.layout.shard_slice(s);
    sh.wal = std::make_unique<core::ReplicatedWal>(group, sh.layout, cfg_.wal);
    sh.locks =
        std::make_unique<core::GroupLockManager>(group, sh.layout,
                                                 client.loop());
    sh.txns = std::make_unique<core::TransactionManager>(group, *sh.wal,
                                                         *sh.locks,
                                                         client.loop());
    shards_.push_back(std::move(sh));
  }
  client_pid_ = client_.sched().create_process(client_.name() + "-doc-fe");
}

std::vector<uint8_t> DocStore::encode_doc(
    uint64_t key, const std::vector<uint8_t>& value) const {
  assert(value.size() <= cfg_.value_size);
  std::vector<uint8_t> doc(slot_stride());
  std::memcpy(doc.data(), &key, 8);
  const uint32_t len = static_cast<uint32_t>(value.size());
  std::memcpy(doc.data() + 8, &len, 4);
  std::memcpy(doc.data() + 16, value.data(), value.size());
  return doc;
}

void DocStore::write_doc(uint64_t key, std::vector<uint8_t> value,
                         Done done) {
  // Front-end CPU first, then the offloaded transaction on the owning
  // shard's lock table + oplog.
  client_.sched().submit(
      client_pid_, cfg_.op_cpu,
      [this, key, value = std::move(value), done = std::move(done)]() mutable {
        Shard& sh = shards_[shard_of(key)];
        std::vector<core::ReplicatedWal::Entry> writes;
        writes.push_back({slot_offset(key), encode_doc(key, value)});
        sh.txns->execute(std::move(writes), {stripe(key)},
                         [done = std::move(done)](bool ok) mutable {
                           done(ok);
                         });
      });
}

void DocStore::insert(uint64_t key, std::vector<uint8_t> value, Done done) {
  write_doc(key, std::move(value), std::move(done));
}

void DocStore::update(uint64_t key, std::vector<uint8_t> value, Done done) {
  write_doc(key, std::move(value), std::move(done));
}

size_t DocStore::pick_read_replica(uint64_t key) {
  if (!cfg_.read_from_replica) return 0;
  if (sreader_ != nullptr) {
    const Shard& sh = shards_[shard_of(key)];
    const uint64_t off = sh.layout.db_base() + slot_offset(key);
    return sreader_->shard(sreader_->router().shard_of(off)).next_replica();
  }
  return cfg_.read_replica;
}

void DocStore::finish_read(uint64_t key, size_t replica, ReadDone done) {
  const Shard& sh = shards_[shard_of(key)];
  if (cfg_.read_from_replica && (sreader_ != nullptr || reader_ != nullptr)) {
    assert((cfg_.shards == 1 || sreader_ != nullptr) &&
           "multi-shard replica reads need a ShardedReader");
    const uint32_t vsize = cfg_.value_size;
    core::ReadDone handle =
        [done = std::move(done), vsize](core::ReadView doc) mutable {
          uint32_t len = 0;
          std::memcpy(&len, doc.data() + 8, 4);
          if (len == 0 || len > vsize) {
            done(false, {});
            return;
          }
          done(true, std::vector<uint8_t>(doc.begin() + 16,
                                          doc.begin() + 16 + len));
        };
    const uint64_t off = sh.layout.db_base() + slot_offset(key);
    const auto len = static_cast<uint32_t>(slot_stride());
    if (sreader_ != nullptr) {
      sreader_->read_from(replica, off, len, std::move(handle));
    } else {
      // Legacy single-target reader: target 0 is cfg_.read_replica.
      reader_->read_from(0, off, len, std::move(handle));
    }
    return;
  }
  uint32_t len = 0;
  group_.client_load(sh.layout.db_base() + slot_offset(key) + 8, &len, 4);
  if (len == 0 || len > cfg_.value_size) {
    done(false, {});
    return;
  }
  std::vector<uint8_t> value(len);
  group_.client_load(sh.layout.db_base() + slot_offset(key) + 16,
                     value.data(), len);
  done(true, std::move(value));
}

void DocStore::read(uint64_t key, ReadDone done) {
  client_.sched().submit(
      client_pid_, cfg_.op_cpu,
      [this, key, done = std::move(done)]() mutable {
        // Pick the replica first: the read lock must land on the same
        // replica the one-sided read will observe.
        const size_t replica = pick_read_replica(key);
        if (!cfg_.use_read_locks) {
          finish_read(key, replica, std::move(done));
          return;
        }
        Shard& sh = shards_[shard_of(key)];
        sh.locks->rd_lock(
            stripe(key), replica,
            [this, key, replica, done = std::move(done)](bool ok) mutable {
              if (!ok) {
                done(false, {});
                return;
              }
              finish_read(
                  key, replica,
                  [this, key, replica, done = std::move(done)](
                      bool ok2, std::vector<uint8_t> v) mutable {
                    shards_[shard_of(key)].locks->rd_unlock(
                        stripe(key), replica,
                        [done = std::move(done), ok2,
                         v = std::move(v)]() mutable {
                          done(ok2, std::move(v));
                        });
                  });
            });
      });
}

void DocStore::remote_scan(uint64_t key, int count, Done done) {
  // Cross-slice scatter scan: each shard's slots for [key, key + count)
  // are one contiguous DB-area range (keys stripe k % shards, so shard
  // s's covered keys sit in consecutive local slots). One extent per
  // shard, one batched scatter readv — instead of `count` client-side
  // slice hops. Lock-free snapshot read, like the local path.
  core::ReadVec v;
  const uint64_t stride = slot_stride();
  const auto kcount = static_cast<uint64_t>(count);
  for (uint32_t s = 0; s < cfg_.shards; ++s) {
    const uint64_t first =
        key + (s + cfg_.shards - key % cfg_.shards) % cfg_.shards;
    if (first >= key + kcount) continue;
    uint64_t n = (key + kcount - 1 - first) / cfg_.shards + 1;
    const uint64_t l0 = first / cfg_.shards;
    const core::RegionLayout& lay = shards_[s].layout;
    const uint64_t max_slots = lay.db_size() / stride;
    if (l0 >= max_slots) continue;
    n = std::min(n, max_slots - l0);
    v.push_back(core::ReadExtent{lay.db_base() + l0 * stride,
                                 static_cast<uint32_t>(n * stride)});
  }
  if (v.empty()) {
    done(false);
    return;
  }
  const uint32_t vsize = cfg_.value_size;
  sreader_->readv(v, [done = std::move(done), vsize](
                         core::ReadView view) mutable {
    const uint64_t stride = 16 + vsize;
    int found = 0;
    for (uint64_t off = 0; off + stride <= view.size(); off += stride) {
      uint32_t len = 0;
      std::memcpy(&len, view.data() + off + 8, 4);
      if (len != 0 && len <= vsize) ++found;
    }
    done(found > 0);
  });
}

void DocStore::scan(uint64_t key, int count, Done done) {
  // Scans read `count` consecutive documents from the local copy; charge
  // per-document CPU (cursor iteration + marshalling). Consecutive keys
  // stripe across shards, so the cursor hops slices as it advances —
  // unless a sharded reader serves the whole scan as one scatter batch
  // from the replicas.
  const auto cpu =
      cfg_.op_cpu + sim::nsec(500) * static_cast<sim::Duration>(count);
  if (cfg_.read_from_replica && sreader_ != nullptr) {
    client_.sched().submit(client_pid_, cpu,
                           [this, key, count,
                            done = std::move(done)]() mutable {
                             remote_scan(key, count, std::move(done));
                           });
    return;
  }
  client_.sched().submit(client_pid_, cpu,
                         [this, key, count, done = std::move(done)]() mutable {
                           int found = 0;
                           for (int i = 0; i < count; ++i) {
                             uint32_t len = 0;
                             const uint64_t k = key + static_cast<uint64_t>(i);
                             const Shard& sh = shards_[shard_of(k)];
                             if (slot_offset(k) + slot_stride() >
                                 sh.layout.db_size()) {
                               break;
                             }
                             group_.client_load(
                                 sh.layout.db_base() + slot_offset(k) + 8,
                                 &len, 4);
                             if (len != 0) ++found;
                           }
                           done(found > 0);
                         });
}

void DocStore::read_modify_write(uint64_t key, std::vector<uint8_t> value,
                                 Done done) {
  read(key, [this, key, value = std::move(value), done = std::move(done)](
                bool ok, std::vector<uint8_t>) mutable {
    if (!ok) {
      done(false);
      return;
    }
    write_doc(key, std::move(value), std::move(done));
  });
}

void DocStore::bulk_load(uint64_t n) {
  for (uint64_t k = 0; k < n; ++k) {
    const auto doc =
        encode_doc(k, WorkloadGenerator::value_for(k, cfg_.value_size));
    const Shard& sh = shards_[shard_of(k)];
    group_.client_store(sh.layout.db_base() + slot_offset(k), doc.data(),
                        static_cast<uint32_t>(doc.size()));
  }
  const uint32_t chunk = 256 << 10;
  for (uint32_t s = 0; s < cfg_.shards; ++s) {
    // Keys stripe k % shards, so shard s holds ceil((n - s) / shards)
    // loaded slots.
    const uint64_t local =
        s < n % cfg_.shards ? n / cfg_.shards + 1 : n / cfg_.shards;
    const uint64_t total = local * slot_stride();
    for (uint64_t off = 0; off < total; off += chunk) {
      const auto len =
          static_cast<uint32_t>(std::min<uint64_t>(chunk, total - off));
      group_.gwrite(shards_[s].layout.db_base() + off, len, /*flush=*/true,
                    [] {});
    }
  }
}

}  // namespace hyperloop::apps
