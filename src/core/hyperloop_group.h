// HyperLoop: group-based NIC-offloaded replicated memory operations (§4).
//
// Chain topology: client -> R0 -> R1 -> ... -> R{G-1} -> client.
//
// Per replica and per primitive, the group pre-posts rings of WQE chains
// whose descriptors are *patched remotely* by the client:
//
//   gWRITE   qp_next: [WAIT(recv_prev >= k+1)] [WRITE] [FLUSH] [SEND]
//   gMEMCPY  qp_loop: [WAIT(recv_prev >= k+1)] [COPY] [FLUSH]
//            qp_next: [WAIT(loop_cq  >= 2(k+1))] [SEND]
//   gCAS     qp_loop: [WAIT(recv_prev >= k+1)] [CAS]
//            qp_next: [WAIT(loop_cq  >= k+1)]  [SEND]
//
// The bracketed WRITE/FLUSH/SEND/COPY/CAS WQEs are posted with *deferred
// ownership* (active=0). The matching pre-posted RECV on qp_prev scatters
// the inbound metadata SEND byte-for-byte onto those descriptors —
// rewriting addresses, lengths and opcodes (FLUSH->NOP when no durability
// is requested; CAS->NOP per the execute map) and setting active=1. The
// recv completion then satisfies the WAIT and the NIC executes the patched
// chain with no replica CPU anywhere on the path.
//
// Replica CPUs only run a periodic refill task (off the critical path)
// that re-arms consumed ring slots, exactly as §5.1 describes.
//
// Client-side bookkeeping is allocation-free in steady state: in-flight
// ops live in a direct-mapped slot table (acks arrive in chain FIFO
// order, so live seqs form a window <= max_inflight wide and seq & mask
// never collides), ops waiting for a credit queue in a sim::Ring, and
// patch descriptors are staged straight into the metadata ring slot.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/group.h"
#include "core/server.h"
#include "rdma/nic.h"
#include "sim/ring.h"

namespace hyperloop::core {

class HyperLoopGroup final : public ReplicationGroup {
 public:
  struct Config {
    uint64_t region_size = 4u << 20;
    /// Pre-posted chain slots per primitive per replica.
    uint32_t ring_slots = 512;
    /// Max client-side in-flight ops per primitive (must be <= ring/2).
    uint32_t max_inflight = 32;
    /// Replica refill cadence and CPU cost (off critical path): each wake
    /// pays the base cost plus a per-re-armed-slot cost.
    sim::Duration refill_period = sim::usec(100);
    sim::Duration refill_cpu = sim::usec(1);
    sim::Duration refill_cpu_per_slot = sim::nsec(150);
    /// If false, replicas re-arm rings with zero CPU (idealized NIC
    /// self-refill; used by ablation benchmarks).
    bool refill_via_cpu = true;
    /// Which NIC (per server, wrapping) carries this group's QPs.
    /// Sharded deployments give shard s nic_index = s so chains land on
    /// distinct simulated NICs (ServerConfig::num_nics).
    uint32_t nic_index = 0;

    /// Enforces the documented invariants (constructor calls this; it
    /// aborts with a diagnostic rather than silently mis-running):
    ///   - max_inflight >= 1: the credit window must admit at least one op.
    ///   - max_inflight <= ring_slots / 2: the client may only wrap
    ///     halfway around the pre-posted replica rings; the other half is
    ///     the re-arm headroom the off-path refill task needs. Violating
    ///     this lets a fast client patch a slot whose previous chain has
    ///     not been re-armed, corrupting deferred descriptors in flight.
    void validate() const;
  };

  struct OpCounters {
    uint64_t gwrites = 0;
    uint64_t gwritevs = 0;         ///< batched submissions (chain traversals)
    uint64_t gwritev_extents = 0;  ///< extents carried by those batches
    uint64_t gmemcpys = 0;
    uint64_t gcas = 0;
    uint64_t gflushes = 0;
    uint64_t bytes_replicated = 0;
  };

  HyperLoopGroup(Server& client, std::vector<Server*> replicas, Config cfg);
  ~HyperLoopGroup() override;

  // ReplicationGroup API --------------------------------------------------
  size_t group_size() const override { return replicas_.size(); }
  uint64_t region_size() const override { return cfg_.region_size; }
  void gwrite(uint64_t offset, uint32_t len, bool flush, Done done) override;
  void gwritev(const ExtentVec& extents, bool flush, Done done) override;
  void gmemcpy(uint64_t src_offset, uint64_t dst_offset, uint32_t len,
               bool flush, Done done) override;
  void gcas(uint64_t offset, uint64_t expected, uint64_t desired,
            ExecMap exec_map, CasDone done) override;
  void gflush(Done done) override;
  void stop() override;
  void client_store(uint64_t offset, const void* src, uint32_t len) override;
  void client_load(uint64_t offset, void* dst, uint32_t len) const override;
  void replica_load(size_t i, uint64_t offset, void* dst,
                    uint32_t len) const override;

  const OpCounters& counters() const { return counters_; }

  /// Replica-side data region base (tests use this with NvmDevice to
  /// check durability).
  rdma::Addr replica_region_base(size_t i) const;

  /// rkey of replica i's data region (for one-sided reader QPs).
  uint32_t replica_data_rkey(size_t i) const {
    return replicas_.at(i).data_mr.rkey;
  }
  Server& replica_server(size_t i) { return *replicas_[i].server; }
  Server& client_server() { return client_; }

  /// Total receiver-not-ready stalls across all replica QPs — should stay
  /// 0 when refill keeps up (asserted by tests, reported by benches).
  uint64_t total_rnr_stalls() const;

  /// CPU consumed by replica i on behalf of this group (the periodic ring
  /// refill only — nothing on the critical path).
  sim::Duration replica_cpu_time(size_t i) const {
    const Replica& r = replicas_.at(i);
    return cfg_.refill_via_cpu ? r.server->sched().stats(r.refill_pid).cpu_time
                               : sim::Duration{0};
  }

 private:
  /// kWriteV gets its own ring rather than widening kWrite's: a chain
  /// slot must have a fixed WQE count (WAIT thresholds and refill
  /// accounting depend on it), so a shared ring would bill every single
  /// gWRITE the NOP cost of kMaxExtents unused WRITE slots.
  enum class Prim : uint8_t { kWrite = 0, kMemcpy = 1, kCas = 2, kWriteV = 3 };
  static constexpr int kNumPrims = 4;
  static constexpr uint32_t kDescBytes = sizeof(rdma::WqeDescriptor);
  static constexpr uint32_t kMaxExtents =
      static_cast<uint32_t>(ExtentVec::kCapacity);

  // One primitive's state on one replica.
  struct ReplicaChain {
    rdma::QueuePair* qp_prev = nullptr;
    rdma::QueuePair* qp_next = nullptr;
    rdma::QueuePair* qp_loop = nullptr;
    rdma::CompletionQueue* cq_recv_prev = nullptr;
    rdma::CompletionQueue* cq_send_next = nullptr;
    rdma::CompletionQueue* cq_loop = nullptr;
    rdma::Addr staging_base = 0;
    uint32_t staging_slot = 0;   ///< bytes per staging ring slot
    uint32_t staging_len = 0;    ///< forwarded metadata bytes at this hop
    rdma::Addr result_base = 0;  ///< gCAS result-map ring (8*G per slot)
    uint32_t ring_lkey = 0;      ///< covers WQE rings + staging + result
    uint64_t next_rearm = 0;     ///< next absolute slot seq to re-arm
  };

  // One replica's full state.
  struct Replica {
    Server* server = nullptr;
    rdma::Addr data_base = 0;
    rdma::MemoryRegion data_mr{};
    ReplicaChain chain[kNumPrims];
    sim::ProcessId refill_pid = 0;
  };

  /// One in-flight op. `done` serves write-like primitives, `cas_done`
  /// serves gCAS; storing both flat (instead of one nested closure) keeps
  /// continuation state inside the Done/CasDone inline caps.
  struct PendingSlot {
    uint32_t seq = 0;
    bool live = false;
    Done done;
    CasDone cas_done;
  };

  /// An op parked while the credit window is full. Parameters are stored
  /// by value and re-dispatched by primitive when a credit frees up.
  struct QueuedOp {
    uint64_t a = 0;  ///< offset / src_offset
    uint64_t b = 0;  ///< dst_offset (gMEMCPY)
    uint64_t expected = 0;
    uint64_t desired = 0;
    uint32_t len = 0;
    bool flush = false;
    ExecMap exec;
    ExtentVec extents;  ///< gWRITEV batch parked for a credit
    Done done;
    CasDone cas_done;
  };

  // Client-side per-primitive state.
  struct ClientChain {
    rdma::QueuePair* qp_down = nullptr;
    rdma::QueuePair* qp_up = nullptr;
    rdma::CompletionQueue* cq_down = nullptr;
    rdma::CompletionQueue* cq_up = nullptr;
    rdma::Addr staging_base = 0;  ///< metadata build ring
    uint32_t staging_slot = 0;
    rdma::Addr ack_base = 0;  ///< ack / result-map landing ring
    rdma::MemoryRegion ack_mr{};
    uint64_t next_seq = 0;
    uint64_t completed_seq = 0;
    uint32_t inflight = 0;
    std::vector<PendingSlot> pending;  ///< direct-mapped by seq & mask
    uint32_t pending_mask = 0;
    sim::Ring<QueuedOp> waiting;  ///< ops parked for a credit
  };

  // WQEs per ring slot on each queue, by primitive. A kWriteV slot is
  // [WAIT][WRITE x kMaxExtents][FLUSH][SEND]; unused WRITEs patch to NOP.
  static uint32_t next_wqes(Prim p) {
    if (p == Prim::kWriteV) return kMaxExtents + 3;
    return p == Prim::kWrite ? 4 : 2;
  }
  static uint32_t loop_wqes(Prim p) {
    return p == Prim::kMemcpy ? 3 : (p == Prim::kCas ? 2 : 0);
  }
  /// Completions accumulating on cq_send_next per finished slot.
  static uint32_t next_completions(Prim p) {
    if (p == Prim::kWriteV) return kMaxExtents + 2;
    return p == Prim::kWrite ? 3 : 1;
  }
  /// Completions accumulating on cq_loop per finished slot.
  static uint32_t loop_completions(Prim p) { return p == Prim::kMemcpy ? 2 : 1; }

  uint32_t desc_count(Prim p) const {
    if (p == Prim::kWriteV) return kMaxExtents + 2;
    return p == Prim::kCas ? 2 : 3;
  }
  uint32_t hop_payload(Prim p, size_t hop) const;  // bytes hop receives
  uint32_t result_bytes() const {
    return static_cast<uint32_t>(8 * replicas_.size());
  }

  void setup_replica(size_t i);
  void setup_client_chain(Prim p);
  void rearm_slot(size_t replica, Prim p, uint64_t seq);
  void refill_tick(size_t replica);
  uint32_t do_refill(size_t replica);
  void start_refill(size_t replica);

  PendingSlot& claim_slot(ClientChain& cc, uint64_t seq);

  // Stage the patch descriptors for op `seq` directly into the client's
  // metadata staging ring slot (no temporary buffer); returns blob bytes.
  uint32_t stage_gwrite_blob(uint64_t seq, uint64_t offset, uint32_t len,
                             bool flush);
  uint32_t stage_gwritev_blob(uint64_t seq, const ExtentVec& extents,
                              bool flush);
  uint32_t stage_gmemcpy_blob(uint64_t seq, uint64_t src, uint64_t dst,
                              uint32_t len, bool flush);
  uint32_t stage_gcas_blob(uint64_t seq, uint64_t offset, uint64_t expected,
                           uint64_t desired, ExecMap exec);

  void issue_gwrite(uint64_t offset, uint32_t len, bool flush, Done done);
  void issue_gwritev(const ExtentVec& extents, bool flush, Done done);
  void issue_gmemcpy(uint64_t src, uint64_t dst, uint32_t len, bool flush,
                     Done done);
  void issue_gcas(uint64_t offset, uint64_t expected, uint64_t desired,
                  ExecMap exec, CasDone done);
  void dispatch(Prim p, QueuedOp&& op);
  /// Stages the metadata SEND on qp_down without ringing the doorbell —
  /// each issue_* path stages all its WQEs and doorbells once.
  void stage_meta_send(Prim p, uint64_t seq, uint32_t blob_len);
  void on_ack_cqe(Prim p);

  rdma::WqeDescriptor nop_desc() const;

  Server& client_;
  std::vector<Replica> replicas_;
  Config cfg_;
  ClientChain client_chain_[kNumPrims];
  rdma::Addr client_region_ = 0;
  rdma::Addr client_zeros_ = 0;  ///< gCAS initial (zero) result map source
  std::vector<uint64_t> cas_scratch_;  ///< gCAS result-map read buffer
  OpCounters counters_;
};

}  // namespace hyperloop::core
