// Kernel-TCP message layer (the "native replication" baseline).
//
// Models the cost structure the paper's §2.2 measurements attribute to the
// OS path: every send and receive charges CPU (syscalls, copies, interrupt
// handling, protocol processing) to a *schedulable process*, so under
// multi-tenant load the network path itself queues behind busy cores —
// unlike RDMA, where the NIC does the work. Bytes then ride the same
// simulated fabric as RDMA packets.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "rdma/network.h"
#include "sim/cpu_scheduler.h"

namespace hyperloop::core {

class TcpStack {
 public:
  struct Config {
    /// CPU to send one message: syscall + copy + protocol.
    sim::Duration send_cpu_base = sim::usec(4);
    double send_cpu_ns_per_byte = 0.25;
    /// CPU to deliver one message: interrupt + protocol + copy + wakeup.
    sim::Duration recv_cpu_base = sim::usec(6);
    double recv_cpu_ns_per_byte = 0.25;
  };

  /// Handler receives (source NIC, source port, message bytes). Message
  /// buffers come from BufPool; a handler that consumes one should
  /// BufPool::release it (or pass it onward) so steady-state traffic
  /// recycles instead of allocating.
  using Handler =
      std::function<void(rdma::NicId, uint16_t, std::vector<uint8_t>)>;

  TcpStack(sim::EventLoop& loop, rdma::Network& net, rdma::NicId nic_id,
           sim::CpuScheduler& sched, Config cfg);
  TcpStack(sim::EventLoop& loop, rdma::Network& net, rdma::NicId nic_id,
           sim::CpuScheduler& sched)
      : TcpStack(loop, net, nic_id, sched, Config()) {}

  /// Binds `port` to `handler`, whose CPU time is charged to `proc`.
  void listen(uint16_t port, sim::ProcessId proc, Handler handler);

  /// Sends `data` to `port` on the server whose NIC is `dst`. The send
  /// path charges CPU to `sender_proc` before the bytes hit the wire.
  void send(sim::ProcessId sender_proc, rdma::NicId dst, uint16_t port,
            std::vector<uint8_t> data);

  /// One outbound message of a send_many batch.
  struct Dgram {
    rdma::NicId dst;
    uint16_t port;
    std::vector<uint8_t> data;
  };

  /// Sends a batch of messages with a single scheduler wakeup
  /// (sendmmsg-style): the sender's process is charged the summed
  /// per-message CPU once, then every message hits the wire in order.
  /// Periodic fan-out paths (heartbeat sweeps) use this so event-loop
  /// load stays one event per period instead of one per destination.
  void send_many(sim::ProcessId sender_proc, std::vector<Dgram> msgs);

  uint64_t messages_sent() const { return sent_; }
  uint64_t messages_received() const { return received_; }

 private:
  struct Listener {
    sim::ProcessId proc;
    Handler handler;
  };

  void on_datagram(rdma::NicId src, std::vector<uint8_t> bytes);

  sim::EventLoop& loop_;
  rdma::Network& net_;
  rdma::NicId nic_id_;
  sim::CpuScheduler& sched_;
  Config cfg_;
  std::unordered_map<uint16_t, Listener> listeners_;
  uint64_t sent_ = 0;
  uint64_t received_ = 0;
};

}  // namespace hyperloop::core
