// Kernel-TCP replication backend ("native replication" in §6.2).
//
// Same ReplicationGroup API, implemented the way classic primary-backup
// storage systems do it (Fig 1): every hop is an RPC over the OS network
// stack. Data rides inside the message, so each hop pays send+recv CPU
// proportional to the payload, plus the replica's execution work (memcpy/
// CAS/persist) — all of it on schedulable processes that queue behind
// co-located tenants. This backend is the baseline for the MongoDB
// experiments (Fig 2, Fig 12).
#pragma once

#include <cstdint>
#include <vector>

#include "core/group.h"
#include "core/server.h"
#include "sim/ring.h"

namespace hyperloop::core {

class TcpReplicationGroup final : public ReplicationGroup {
 public:
  struct Config {
    uint64_t region_size = 4u << 20;
    uint32_t max_inflight = 64;
    /// Listening port; 0 = auto-assign a unique port (required when many
    /// groups share servers, e.g. the multi-tenant benchmarks).
    uint16_t port = 0;
    /// CPU to parse a command and run the replication logic on a replica.
    sim::Duration per_message_cpu = sim::usec(3);
    /// CPU memcpy throughput for data application (ns/byte).
    double copy_ns_per_byte = 0.15;
    sim::Duration persist_base = sim::nsec(400);
    double persist_ns_per_byte = 0.01;
  };

  TcpReplicationGroup(Server& client, std::vector<Server*> replicas,
                      Config cfg);
  ~TcpReplicationGroup() override;

  size_t group_size() const override { return replicas_.size(); }
  uint64_t region_size() const override { return cfg_.region_size; }
  void gwrite(uint64_t offset, uint32_t len, bool flush, Done done) override;
  void gmemcpy(uint64_t src_offset, uint64_t dst_offset, uint32_t len,
               bool flush, Done done) override;
  void gcas(uint64_t offset, uint64_t expected, uint64_t desired,
            ExecMap exec_map, CasDone done) override;
  void gflush(Done done) override;
  void stop() override;
  void client_store(uint64_t offset, const void* src, uint32_t len) override;
  void client_load(uint64_t offset, void* dst, uint32_t len) const override;
  void replica_load(size_t i, uint64_t offset, void* dst,
                    uint32_t len) const override;

  sim::Duration replica_cpu_time(size_t i) const;
  Server& replica_server(size_t i) { return *replicas_.at(i).server; }
  rdma::Addr replica_region_base(size_t i) const {
    return replicas_.at(i).data_base;
  }
  sim::ProcessId replica_pid(size_t i) const { return replicas_.at(i).pid; }
  sim::ProcessId client_pid() const { return client_pid_; }

 private:
  static constexpr size_t kMaxGroup = 8;

  struct Header {
    uint8_t type = 0;  // 0 gwrite, 1 gmemcpy, 2 gcas
    uint8_t flush = 0;
    uint16_t hop = 0;  ///< index of the replica this message is for
    uint32_t seq = 0;
    uint64_t offset = 0;
    uint64_t dst = 0;
    uint64_t len = 0;
    uint64_t expected = 0;
    uint64_t desired = 0;
    uint64_t exec_mask = 0;
    uint64_t result[kMaxGroup] = {};
  };

  struct Replica {
    Server* server = nullptr;
    rdma::Addr data_base = 0;
    sim::ProcessId pid = 0;
  };

  /// One in-flight command, direct-mapped by seq & pending_mask_ (ACKs
  /// come back in chain FIFO order, so live seqs form a window no wider
  /// than max_inflight).
  struct PendingSlot {
    uint32_t seq = 0;
    bool live = false;
    Done done;
    CasDone cas_done;
  };

  /// A command parked while the credit window is full; seq is assigned
  /// when the command is finally issued.
  struct QueuedOp {
    Header hdr;
    Done done;
    CasDone cas_done;
  };

  void on_replica_message(size_t i, std::vector<uint8_t> msg);
  void forward(size_t i, std::vector<uint8_t> msg);
  void on_client_ack(std::vector<uint8_t> msg);
  void submit(Header hdr, Done done, CasDone cas_done);
  void issue(Header hdr, Done done, CasDone cas_done);
  void send_cmd(std::vector<uint8_t> msg);

  Server& client_;
  std::vector<Replica> replicas_;
  Config cfg_;
  sim::ProcessId client_pid_;
  rdma::Addr client_region_ = 0;

  uint32_t next_seq_ = 0;
  uint32_t inflight_ = 0;
  std::vector<PendingSlot> pending_;  ///< direct-mapped by seq & mask
  uint32_t pending_mask_ = 0;
  sim::Ring<QueuedOp> waiting_;  ///< commands parked for a credit
};

}  // namespace hyperloop::core
