#include "core/lock.h"

#include <cassert>
#include <memory>

namespace hyperloop::core {

GroupLockManager::GroupLockManager(ReplicationGroup& group,
                                   RegionLayout layout, sim::EventLoop& loop,
                                   Config cfg)
    : group_(group), layout_(layout), loop_(loop), cfg_(cfg) {}

void GroupLockManager::wr_lock(uint32_t lock_id, uint64_t owner,
                               LockDone done) {
  assert(owner != 0 && "owner id 0 means 'unlocked'");
  wr_attempt(lock_id, owner, cfg_.max_attempts, std::move(done));
}

void GroupLockManager::wr_attempt(uint32_t lock_id, uint64_t owner,
                                  int attempts_left, LockDone done) {
  if (attempts_left <= 0) {
    done(false);
    return;
  }
  group_.gcas(
      layout_.lock_offset(lock_id), 0, owner, all_replicas(),
      [this, lock_id, owner, attempts_left, done = std::move(done)](
          const std::vector<uint64_t>& result) mutable {
        bool all = true, any = false;
        for (uint64_t old : result) {
          if (old == 0) {
            any = true;
          } else {
            all = false;
          }
        }
        if (all) {
          ++stats_.wr_acquired;
          wait_readers_drain(lock_id, owner, attempts_left,
                             std::move(done));
          return;
        }
        ++stats_.wr_conflicts;
        auto retry = [this, lock_id, owner, attempts_left,
                      done = std::move(done)]() mutable {
          loop_.schedule_after(cfg_.retry_backoff,
                               [this, lock_id, owner, attempts_left,
                                done = std::move(done)]() mutable {
                                 wr_attempt(lock_id, owner,
                                            attempts_left - 1,
                                            std::move(done));
                               });
        };
        if (any) {
          // Partial acquisition: undo exactly where we succeeded (§4.2).
          ++stats_.partial_undos;
          std::vector<bool> undo(result.size());
          for (size_t i = 0; i < result.size(); ++i) undo[i] = result[i] == 0;
          group_.gcas(layout_.lock_offset(lock_id), owner, 0, undo,
                      [retry = std::move(retry)](
                          const std::vector<uint64_t>&) mutable { retry(); });
        } else {
          retry();
        }
      });
}

void GroupLockManager::wait_readers_drain(uint32_t lock_id, uint64_t owner,
                                          int attempts_left, LockDone done) {
  if (attempts_left <= 0) {
    // Give up: release the writer word we hold.
    wr_unlock(lock_id, owner, [done = std::move(done)] { done(false); });
    return;
  }
  // gCAS(0 -> 0) is a NIC-side read of every replica's reader count.
  group_.gcas(layout_.reader_offset(lock_id), 0, 0, all_replicas(),
              [this, lock_id, owner, attempts_left,
               done = std::move(done)](const std::vector<uint64_t>& counts) mutable {
                bool drained = true;
                for (uint64_t c : counts) drained = drained && c == 0;
                if (drained) {
                  done(true);
                  return;
                }
                loop_.schedule_after(
                    cfg_.retry_backoff,
                    [this, lock_id, owner, attempts_left,
                     done = std::move(done)]() mutable {
                      wait_readers_drain(lock_id, owner, attempts_left - 1,
                                         std::move(done));
                    });
              });
}

void GroupLockManager::wr_unlock(uint32_t lock_id, uint64_t owner,
                                 Done done) {
  group_.gcas(layout_.lock_offset(lock_id), owner, 0, all_replicas(),
              [done = std::move(done)](const std::vector<uint64_t>&) {
                if (done) done();
              });
}

void GroupLockManager::rd_lock(uint32_t lock_id, size_t replica,
                               LockDone done) {
  rd_attempt(lock_id, replica, cfg_.max_attempts, std::move(done));
}

void GroupLockManager::rd_attempt(uint32_t lock_id, size_t replica,
                                  int attempts_left, LockDone done) {
  if (attempts_left <= 0) {
    done(false);
    return;
  }
  // 1) Writer free on this replica?
  group_.gcas(
      layout_.lock_offset(lock_id), 0, 0, one_replica(replica),
      [this, lock_id, replica, attempts_left,
       done = std::move(done)](const std::vector<uint64_t>& w) mutable {
        if (w[replica] != 0) {
          loop_.schedule_after(cfg_.retry_backoff,
                               [this, lock_id, replica, attempts_left,
                                done = std::move(done)]() mutable {
                                 rd_attempt(lock_id, replica,
                                            attempts_left - 1,
                                            std::move(done));
                               });
          return;
        }
        // 2) Increment the reader count.
        cas_loop_add(
            layout_.reader_offset(lock_id), replica, +1,
            [this, lock_id, replica, attempts_left,
             done = std::move(done)]() mutable {
              // 3) Re-check the writer: if one slipped in, back out.
              group_.gcas(
                  layout_.lock_offset(lock_id), 0, 0, one_replica(replica),
                  [this, lock_id, replica, attempts_left,
                   done = std::move(done)](const std::vector<uint64_t>& w2) mutable {
                    if (w2[replica] == 0) {
                      ++stats_.rd_acquired;
                      done(true);
                      return;
                    }
                    cas_loop_add(
                        layout_.reader_offset(lock_id), replica, -1,
                        [this, lock_id, replica, attempts_left,
                         done = std::move(done)]() mutable {
                          loop_.schedule_after(
                              cfg_.retry_backoff,
                              [this, lock_id, replica, attempts_left,
                               done = std::move(done)]() mutable {
                                rd_attempt(lock_id, replica,
                                           attempts_left - 1,
                                           std::move(done));
                              });
                        });
                  });
            });
      });
}

void GroupLockManager::rd_unlock(uint32_t lock_id, size_t replica,
                                 Done done) {
  cas_loop_add(layout_.reader_offset(lock_id), replica, -1, std::move(done));
}

void GroupLockManager::cas_loop_add(uint64_t offset, size_t replica,
                                    int64_t delta, Done done) {
  // Read-modify-write via CAS retry: first probe with expected=0.
  auto attempt = std::make_shared<std::function<void(uint64_t)>>();
  *attempt = [this, offset, replica, delta, done = std::move(done),
              attempt](uint64_t guess) mutable {
    const uint64_t desired =
        static_cast<uint64_t>(static_cast<int64_t>(guess) + delta);
    group_.gcas(offset, guess, desired, one_replica(replica),
                [replica, guess, attempt,
                 done](const std::vector<uint64_t>& r) mutable {
                  if (r[replica] == guess) {
                    if (done) done();
                    // Break the shared_ptr self-reference cycle.
                    *attempt = nullptr;
                    return;
                  }
                  (*attempt)(r[replica]);
                });
  };
  (*attempt)(0);
}

}  // namespace hyperloop::core
