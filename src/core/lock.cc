#include "core/lock.h"

#include <cassert>

namespace hyperloop::core {
namespace {

template <typename Op>
uint32_t acquire_slot(std::vector<Op>& pool, std::vector<uint32_t>& free_list) {
  if (free_list.empty()) {
    pool.emplace_back();
    return static_cast<uint32_t>(pool.size() - 1);
  }
  const uint32_t idx = free_list.back();
  free_list.pop_back();
  return idx;
}

}  // namespace

GroupLockManager::GroupLockManager(ReplicationGroup& group,
                                   RegionLayout layout, sim::EventLoop& loop,
                                   Config cfg)
    : group_(group), layout_(layout), loop_(loop), cfg_(cfg) {}

void GroupLockManager::wr_lock(uint32_t lock_id, uint64_t owner,
                               LockDone done) {
  assert(owner != 0 && "owner id 0 means 'unlocked'");
  const uint32_t idx = acquire_slot(wr_ops_, wr_free_);
  WrOp& op = wr_ops_[idx];
  assert(!op.live);
  op.lock_id = lock_id;
  op.owner = owner;
  op.attempts_left = cfg_.max_attempts;
  op.live = true;
  op.done = std::move(done);
  wr_attempt(idx);
}

void GroupLockManager::wr_finish(uint32_t idx, bool acquired) {
  WrOp& op = wr_ops_[idx];
  LockDone done = std::move(op.done);
  op.live = false;
  wr_free_.push_back(idx);
  done(acquired);
}

void GroupLockManager::wr_attempt(uint32_t idx) {
  WrOp& op = wr_ops_[idx];
  if (op.attempts_left <= 0) {
    wr_finish(idx, false);
    return;
  }
  group_.gcas(
      layout_.lock_offset(op.lock_id), 0, op.owner, all_replicas(),
      [this, idx](const CasResult& result) {
        WrOp& op = wr_ops_[idx];
        bool all = true, any = false;
        for (uint64_t old : result) {
          if (old == 0) {
            any = true;
          } else {
            all = false;
          }
        }
        if (all) {
          ++stats_.wr_acquired;
          wait_readers_drain(idx);
          return;
        }
        ++stats_.wr_conflicts;
        if (any) {
          // Partial acquisition: undo exactly where we succeeded (§4.2).
          ++stats_.partial_undos;
          ExecMap undo = ExecMap::none();
          for (size_t i = 0; i < result.size(); ++i) {
            if (result[i] == 0) undo.set(i);
          }
          group_.gcas(layout_.lock_offset(op.lock_id), op.owner, 0, undo,
                      [this, idx](const CasResult&) { wr_retry(idx); });
        } else {
          wr_retry(idx);
        }
      });
}

void GroupLockManager::wr_retry(uint32_t idx) {
  loop_.schedule_after(cfg_.retry_backoff, [this, idx] {
    --wr_ops_[idx].attempts_left;
    wr_attempt(idx);
  });
}

void GroupLockManager::wait_readers_drain(uint32_t idx) {
  WrOp& op = wr_ops_[idx];
  if (op.attempts_left <= 0) {
    // Give up: release the writer word we hold, then fail the caller.
    group_.gcas(layout_.lock_offset(op.lock_id), op.owner, 0, all_replicas(),
                [this, idx](const CasResult&) { wr_finish(idx, false); });
    return;
  }
  // gCAS(0 -> 0) is a NIC-side read of every replica's reader count.
  group_.gcas(layout_.reader_offset(op.lock_id), 0, 0, all_replicas(),
              [this, idx](const CasResult& counts) {
                bool drained = true;
                for (uint64_t c : counts) drained = drained && c == 0;
                if (drained) {
                  wr_finish(idx, true);
                  return;
                }
                loop_.schedule_after(cfg_.retry_backoff, [this, idx] {
                  --wr_ops_[idx].attempts_left;
                  wait_readers_drain(idx);
                });
              });
}

void GroupLockManager::wr_unlock(uint32_t lock_id, uint64_t owner,
                                 Done done) {
  const uint32_t idx = acquire_slot(unlock_ops_, unlock_free_);
  UnlockOp& op = unlock_ops_[idx];
  assert(!op.live);
  op.live = true;
  op.done = std::move(done);
  group_.gcas(layout_.lock_offset(lock_id), owner, 0, all_replicas(),
              [this, idx](const CasResult&) { unlock_finish(idx); });
}

void GroupLockManager::unlock_finish(uint32_t idx) {
  UnlockOp& op = unlock_ops_[idx];
  Done done = std::move(op.done);
  op.live = false;
  unlock_free_.push_back(idx);
  if (done) done();
}

void GroupLockManager::rd_lock(uint32_t lock_id, size_t replica,
                               LockDone done) {
  const uint32_t idx = acquire_slot(rd_ops_, rd_free_);
  RdOp& op = rd_ops_[idx];
  assert(!op.live);
  op.lock_id = lock_id;
  op.replica = replica;
  op.attempts_left = cfg_.max_attempts;
  op.live = true;
  op.done = std::move(done);
  rd_attempt(idx);
}

void GroupLockManager::rd_finish(uint32_t idx, bool acquired) {
  RdOp& op = rd_ops_[idx];
  LockDone done = std::move(op.done);
  op.live = false;
  rd_free_.push_back(idx);
  done(acquired);
}

void GroupLockManager::rd_attempt(uint32_t idx) {
  RdOp& op = rd_ops_[idx];
  if (op.attempts_left <= 0) {
    rd_finish(idx, false);
    return;
  }
  // 1) Writer free on this replica?
  group_.gcas(layout_.lock_offset(op.lock_id), 0, 0,
              ExecMap::one(op.replica), [this, idx](const CasResult& w) {
                RdOp& op = rd_ops_[idx];
                if (w[op.replica] != 0) {
                  rd_retry(idx);
                  return;
                }
                // 2) Increment the reader count.
                cas_loop_add(layout_.reader_offset(op.lock_id), op.replica,
                             +1, [this, idx] { rd_recheck(idx); });
              });
}

void GroupLockManager::rd_recheck(uint32_t idx) {
  RdOp& op = rd_ops_[idx];
  // 3) Re-check the writer: if one slipped in, back out.
  group_.gcas(layout_.lock_offset(op.lock_id), 0, 0,
              ExecMap::one(op.replica), [this, idx](const CasResult& w2) {
                RdOp& op = rd_ops_[idx];
                if (w2[op.replica] == 0) {
                  ++stats_.rd_acquired;
                  rd_finish(idx, true);
                  return;
                }
                cas_loop_add(layout_.reader_offset(op.lock_id), op.replica,
                             -1, [this, idx] { rd_retry(idx); });
              });
}

void GroupLockManager::rd_retry(uint32_t idx) {
  loop_.schedule_after(cfg_.retry_backoff, [this, idx] {
    --rd_ops_[idx].attempts_left;
    rd_attempt(idx);
  });
}

void GroupLockManager::rd_unlock(uint32_t lock_id, size_t replica,
                                 Done done) {
  cas_loop_add(layout_.reader_offset(lock_id), replica, -1, std::move(done));
}

void GroupLockManager::cas_loop_add(uint64_t offset, size_t replica,
                                    int64_t delta, Done done) {
  const uint32_t idx = acquire_slot(add_ops_, add_free_);
  AddOp& op = add_ops_[idx];
  assert(!op.live);
  op.offset = offset;
  op.replica = replica;
  op.delta = delta;
  op.guess = 0;  // first probe assumes the count is zero
  op.live = true;
  op.done = std::move(done);
  add_attempt(idx);
}

void GroupLockManager::add_attempt(uint32_t idx) {
  AddOp& op = add_ops_[idx];
  const uint64_t desired =
      static_cast<uint64_t>(static_cast<int64_t>(op.guess) + op.delta);
  group_.gcas(op.offset, op.guess, desired, ExecMap::one(op.replica),
              [this, idx](const CasResult& r) {
                AddOp& op = add_ops_[idx];
                const uint64_t old = r[op.replica];
                if (old == op.guess) {
                  Done done = std::move(op.done);
                  op.live = false;
                  add_free_.push_back(idx);
                  if (done) done();
                  return;
                }
                op.guess = old;
                add_attempt(idx);
              });
}

}  // namespace hyperloop::core
