#include "core/tcp_group.h"

#include <cassert>
#include <cstddef>
#include <cstring>

#include "core/buf_pool.h"

namespace hyperloop::core {
namespace {

uint32_t next_pow2(uint32_t v) {
  uint32_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

TcpReplicationGroup::TcpReplicationGroup(Server& client,
                                         std::vector<Server*> replicas,
                                         Config cfg)
    : client_(client), cfg_(cfg) {
  assert(!replicas.empty() && replicas.size() <= kMaxGroup);
  if (cfg_.port == 0) {
    static uint16_t next_port = 20000;
    cfg_.port = next_port++;
  }
  replicas_.resize(replicas.size());
  client_region_ = client_.nvm().alloc(cfg_.region_size, 4096);
  client_pid_ = client_.sched().create_process(client_.name() + "-tcp-cli");

  pending_.resize(next_pow2(cfg_.max_inflight * 2));
  pending_mask_ = static_cast<uint32_t>(pending_.size()) - 1;

  client_.tcp().listen(cfg_.port, client_pid_,
                       [this](rdma::NicId, uint16_t, std::vector<uint8_t> m) {
                         on_client_ack(std::move(m));
                       });

  for (size_t i = 0; i < replicas_.size(); ++i) {
    Replica& r = replicas_[i];
    r.server = replicas[i];
    r.data_base = r.server->nvm().alloc(cfg_.region_size, 4096);
    r.pid = r.server->sched().create_process(r.server->name() + "-tcp-repl");
    r.server->tcp().listen(
        cfg_.port, r.pid,
        [this, i](rdma::NicId, uint16_t, std::vector<uint8_t> m) {
          on_replica_message(i, std::move(m));
        });
  }
}

TcpReplicationGroup::~TcpReplicationGroup() { stop(); }

void TcpReplicationGroup::stop() {
  if (stopped_) return;
  stopped_ = true;
  for (PendingSlot& slot : pending_) {
    if (!slot.live) continue;
    slot.live = false;
    slot.done.reset();
    slot.cas_done.reset();
    ++aborted_ops_;
  }
  aborted_ops_ += waiting_.size();
  waiting_.clear();
  inflight_ = 0;
  // No QPs/CQs to tear down: this baseline rides the kernel TCP stack.
  // Listeners stay registered but every handler early-outs on stopped_.
}

void TcpReplicationGroup::on_replica_message(size_t i,
                                             std::vector<uint8_t> msg) {
  if (stopped_) {
    BufPool::release(std::move(msg));
    return;
  }
  assert(msg.size() >= sizeof(Header));
  Header hdr;
  std::memcpy(&hdr, msg.data(), sizeof(hdr));

  Replica& r = replicas_[i];

  // Execution cost on the replica CPU (application of the command); the
  // TcpStack already charged the receive-path cost before this handler.
  sim::Duration work = cfg_.per_message_cpu;
  if (hdr.type == 1) {
    work += static_cast<sim::Duration>(cfg_.copy_ns_per_byte *
                                       static_cast<double>(hdr.len));
  }
  if (hdr.flush != 0) {
    work += cfg_.persist_base +
            static_cast<sim::Duration>(cfg_.persist_ns_per_byte *
                                       static_cast<double>(hdr.len));
  }

  // The whole [Header][data] buffer travels intact: apply reads the data
  // bytes in place and forward() re-sends the same vector, so a command's
  // trip down the chain allocates nothing.
  r.server->sched().submit(
      r.pid, work,
      [this, i, m = std::move(msg)]() mutable {
        if (stopped_) {
          BufPool::release(std::move(m));
          return;
        }
        Replica& rr = replicas_[i];
        rdma::HostMemory& mem = rr.server->mem();
        Header h;
        std::memcpy(&h, m.data(), sizeof(h));
        const uint8_t* data = m.data() + sizeof(Header);
        switch (h.type) {
          case 0: {  // gwrite: apply the carried bytes
            if (h.len > 0) mem.write(rr.data_base + h.offset, data, h.len);
            break;
          }
          case 1: {  // gmemcpy
            mem.copy(rr.data_base + h.dst, rr.data_base + h.offset, h.len);
            break;
          }
          case 2: {  // gcas
            if ((h.exec_mask >> i) & 1u) {
              uint64_t old = 0;
              mem.read(rr.data_base + h.offset, &old, sizeof(old));
              if (old == h.expected) {
                mem.write(rr.data_base + h.offset, &h.desired,
                          sizeof(h.desired));
              }
              // Patch the answer into the traveling message.
              std::memcpy(m.data() + offsetof(Header, result) + i * 8, &old,
                          8);
            }
            break;
          }
          default:
            assert(false);
        }
        // flush is a durability *barrier*, not a per-range hint: like the
        // RDMA path's gFLUSH (a full NIC-cache write-back), it makes every
        // previously applied command durable too. The pipeline is FIFO per
        // replica, so everything older has already been applied here —
        // this is what lets callers batch unflushed ops under one trailing
        // flushed op (e.g. the WAL's execute batch).
        if (h.flush != 0) rr.server->nvm().persist_all();
        forward(i, std::move(m));
      },
      /*fresh_wakeup=*/false);
}

void TcpReplicationGroup::forward(size_t i, std::vector<uint8_t> msg) {
  Replica& r = replicas_[i];
  if (i + 1 < replicas_.size()) {
    // Rewrite the hop field in place and pass the same buffer down.
    const uint16_t hop = static_cast<uint16_t>(i + 1);
    std::memcpy(msg.data() + offsetof(Header, hop), &hop, sizeof(hop));
    r.server->tcp().send(r.pid, replicas_[i + 1].server->nic().id(),
                         cfg_.port, std::move(msg));
  } else {
    // Tail ACKs the client; no need to carry the data back.
    std::vector<uint8_t> ack = BufPool::acquire(sizeof(Header));
    std::memcpy(ack.data(), msg.data(), sizeof(Header));
    BufPool::release(std::move(msg));
    r.server->tcp().send(r.pid, client_.nic().id(), cfg_.port,
                         std::move(ack));
  }
}

void TcpReplicationGroup::on_client_ack(std::vector<uint8_t> msg) {
  if (stopped_) {
    BufPool::release(std::move(msg));
    return;
  }
  assert(msg.size() >= sizeof(Header));
  Header hdr;
  std::memcpy(&hdr, msg.data(), sizeof(hdr));
  BufPool::release(std::move(msg));
  PendingSlot& slot = pending_[hdr.seq & pending_mask_];
  if (!slot.live || slot.seq != hdr.seq) return;
  slot.live = false;
  --inflight_;
  if (hdr.type == 2) {
    CasDone handler = std::move(slot.cas_done);
    slot.done.reset();
    handler(CasResult(hdr.result, replicas_.size()));
  } else {
    Done handler = std::move(slot.done);
    slot.cas_done.reset();
    if (handler) handler();
  }
  if (!waiting_.empty() && inflight_ < cfg_.max_inflight) {
    QueuedOp next = std::move(waiting_.front());
    waiting_.pop_front();
    ++inflight_;
    issue(next.hdr, std::move(next.done), std::move(next.cas_done));
  }
}

void TcpReplicationGroup::submit(Header hdr, Done done, CasDone cas_done) {
  if (inflight_ >= cfg_.max_inflight) {
    waiting_.push_back(
        QueuedOp{hdr, std::move(done), std::move(cas_done)});
    return;
  }
  ++inflight_;
  issue(hdr, std::move(done), std::move(cas_done));
}

void TcpReplicationGroup::issue(Header hdr, Done done, CasDone cas_done) {
  hdr.seq = next_seq_++;
  PendingSlot& slot = pending_[hdr.seq & pending_mask_];
  assert(!slot.live && "pending window wider than the slot table");
  slot.seq = hdr.seq;
  slot.live = true;
  slot.done = std::move(done);
  slot.cas_done = std::move(cas_done);

  // Frame the command directly into a pooled buffer: [Header][data].
  const uint64_t payload = hdr.type == 0 ? hdr.len : 0;
  std::vector<uint8_t> msg = BufPool::acquire(sizeof(Header) + payload);
  std::memcpy(msg.data(), &hdr, sizeof(hdr));
  if (payload > 0) {
    client_.mem().read(client_region_ + hdr.offset,
                       msg.data() + sizeof(Header),
                       static_cast<uint32_t>(hdr.len));
  } else if (hdr.type == 1) {
    client_.mem().copy(client_region_ + hdr.dst, client_region_ + hdr.offset,
                       static_cast<uint32_t>(hdr.len));
    client_.nvm().persist(client_region_ + hdr.dst,
                          static_cast<uint32_t>(hdr.len));
  }
  send_cmd(std::move(msg));
}

void TcpReplicationGroup::send_cmd(std::vector<uint8_t> msg) {
  client_.tcp().send(client_pid_, replicas_.front().server->nic().id(),
                     cfg_.port, std::move(msg));
}

void TcpReplicationGroup::gwrite(uint64_t offset, uint32_t len, bool flush,
                                 Done done) {
  assert(offset + len <= cfg_.region_size);
  Header hdr;
  hdr.type = 0;
  hdr.flush = flush ? 1 : 0;
  hdr.offset = offset;
  hdr.len = len;
  submit(hdr, std::move(done), CasDone{});
}

void TcpReplicationGroup::gmemcpy(uint64_t src_offset, uint64_t dst_offset,
                                  uint32_t len, bool flush, Done done) {
  assert(src_offset + len <= cfg_.region_size);
  assert(dst_offset + len <= cfg_.region_size);
  Header hdr;
  hdr.type = 1;
  hdr.flush = flush ? 1 : 0;
  hdr.offset = src_offset;
  hdr.dst = dst_offset;
  hdr.len = len;
  submit(hdr, std::move(done), CasDone{});
}

void TcpReplicationGroup::gcas(uint64_t offset, uint64_t expected,
                               uint64_t desired, ExecMap exec_map,
                               CasDone done) {
  assert(offset + 8 <= cfg_.region_size);
  Header hdr;
  hdr.type = 2;
  hdr.offset = offset;
  hdr.expected = expected;
  hdr.desired = desired;
  hdr.exec_mask = exec_map.bits;
  submit(hdr, Done{}, std::move(done));
}

void TcpReplicationGroup::gflush(Done done) {
  gwrite(0, 0, /*flush=*/true, std::move(done));
}

void TcpReplicationGroup::client_store(uint64_t offset, const void* src,
                                       uint32_t len) {
  assert(offset + len <= cfg_.region_size);
  client_.mem().write(client_region_ + offset, src, len);
  client_.nvm().persist(client_region_ + offset, len);
}

void TcpReplicationGroup::client_load(uint64_t offset, void* dst,
                                      uint32_t len) const {
  client_.mem().read(client_region_ + offset, dst, len);
}

void TcpReplicationGroup::replica_load(size_t i, uint64_t offset, void* dst,
                                       uint32_t len) const {
  const Replica& r = replicas_.at(i);
  r.server->mem().read(r.data_base + offset, dst, len);
}

sim::Duration TcpReplicationGroup::replica_cpu_time(size_t i) const {
  const Replica& r = replicas_.at(i);
  return r.server->sched().stats(r.pid).cpu_time;
}

}  // namespace hyperloop::core
