#include "core/fanout_group.h"

#include <cassert>
#include <cstring>

namespace hyperloop::core {

using rdma::Addr;
using rdma::Opcode;
using rdma::RecvWqe;
using rdma::Sge;
using rdma::Wqe;
using rdma::WqeDescriptor;

namespace {

Wqe placeholder() {
  Wqe w = rdma::make_nop();
  w.signaled = 1;
  return w;
}

constexpr uint64_t kCasTag = uint64_t{1} << 62;

uint32_t next_pow2(uint32_t v) {
  uint32_t n = 1;
  while (n < v) n <<= 1;
  return n;
}

}  // namespace

FanoutGroup::FanoutGroup(Server& client, std::vector<Server*> replicas,
                         Config cfg)
    : client_(client), cfg_(cfg) {
  assert(replicas.size() >= 2 && "fan-out needs a primary and >=1 backup");
  // Primary rearm posts 4 + 3*K SGEs per slot; keep K within the inline
  // SgeList capacity (same group-size-8 cap as the naive/tcp baselines).
  assert(replicas.size() <= 8);
  assert(cfg_.max_inflight * 2 <= cfg_.ring_slots);
  primary_.server = replicas[0];
  backups_.resize(replicas.size() - 1);
  for (size_t b = 0; b < backups_.size(); ++b) {
    backups_[b].server = replicas[b + 1];
    backups_[b].index = b;
  }

  client_region_ = client_.nvm().alloc(cfg_.region_size, 4096);
  const size_t K = backups_.size();
  client_staging_slot_ = static_cast<uint32_t>(kDescBytes * 3 * (1 + 2 * K));
  client_staging_ = client_.mem().alloc(
      uint64_t{client_staging_slot_} * cfg_.max_inflight * 2, 64);
  const uint32_t ack_stride = static_cast<uint32_t>(8 * (1 + K));
  ack_base_ =
      client_.mem().alloc(uint64_t{ack_stride} * cfg_.max_inflight * 2, 64);
  ack_mr_ = client_.nic().register_mr(
      ack_base_, uint64_t{ack_stride} * cfg_.max_inflight * 2,
      rdma::kRemoteWrite | rdma::kLocalWrite);

  cq_down_ = client_.nic().create_cq();
  cq_up_ = client_.nic().create_cq();
  qp_down_ =
      client_.nic().create_qp(cq_down_, nullptr, cfg_.max_inflight * 4 + 16);

  // Backup/primary acks can complete a hair out of order relative to the
  // client-CAS ack stream, so the direct-mapped table gets 4x the credit
  // window of headroom (see PendingSlot).
  pending_.resize(next_pow2(cfg_.max_inflight * 4));
  pending_mask_ = static_cast<uint32_t>(pending_.size() - 1);
  zero_scratch_.assign(ack_stride, 0);
  cas_scratch_.resize(1 + K);

  setup_primary();
  for (size_t b = 0; b < K; ++b) setup_backup(b);
  wire();

  for (uint64_t s = 0; s < cfg_.ring_slots; ++s) {
    rearm_primary_slot(s);
    for (size_t b = 0; b < K; ++b) rearm_backup_slot(b, s);
  }
  primary_.next_rearm = cfg_.ring_slots;
  for (auto& b : backups_) b.next_rearm = cfg_.ring_slots;

  cq_up_->set_notify([this] { on_ack_cqe(); });
  cq_up_->arm_notify();
  cq_down_->set_notify([this] { on_ack_cqe(); });
  cq_down_->arm_notify();

  if (cfg_.refill_via_cpu) {
    primary_.refill_pid = primary_.server->sched().create_process(
        primary_.server->name() + "-fanout-refill");
    for (auto& b : backups_) {
      b.refill_pid = b.server->sched().create_process(
          b.server->name() + "-fanout-refill");
    }
  }
  refill_tick_primary();
  for (size_t b = 0; b < K; ++b) refill_tick_backup(b);
}

FanoutGroup::~FanoutGroup() { stop(); }

void FanoutGroup::stop() {
  if (stopped_) return;
  stopped_ = true;

  for (PendingSlot& slot : pending_) {
    if (!slot.live) continue;
    slot.live = false;
    slot.done.reset();
    slot.cas_done.reset();
    ++aborted_ops_;
  }
  aborted_ops_ += waiting_.size();
  waiting_.clear();
  inflight_ = 0;

  // Release NIC resources; QPs before the CQs they reference (destroying
  // a WAIT-parked QP unlinks it from the CQ's waiter list).
  {
    rdma::Nic& nic = primary_.server->nic();
    if (primary_.qp_prev) nic.destroy_qp(primary_.qp_prev);
    if (primary_.qp_loop) nic.destroy_qp(primary_.qp_loop);
    for (rdma::QueuePair* qp : primary_.qp_out) nic.destroy_qp(qp);
    primary_.qp_out.clear();
    if (primary_.cq_recv) nic.destroy_cq(primary_.cq_recv);
    if (primary_.cq_loop) nic.destroy_cq(primary_.cq_loop);
    for (rdma::CompletionQueue* cq : primary_.cq_out) nic.destroy_cq(cq);
    primary_.cq_out.clear();
    primary_.qp_prev = primary_.qp_loop = nullptr;
    primary_.cq_recv = primary_.cq_loop = nullptr;
  }
  for (Backup& b : backups_) {
    rdma::Nic& nic = b.server->nic();
    if (b.qp_prev) nic.destroy_qp(b.qp_prev);
    if (b.qp_ack) nic.destroy_qp(b.qp_ack);
    if (b.qp_loop) nic.destroy_qp(b.qp_loop);
    if (b.cq_recv) nic.destroy_cq(b.cq_recv);
    if (b.cq_ack) nic.destroy_cq(b.cq_ack);
    if (b.cq_loop) nic.destroy_cq(b.cq_loop);
    b.qp_prev = b.qp_ack = b.qp_loop = nullptr;
    b.cq_recv = b.cq_ack = b.cq_loop = nullptr;
  }
  {
    rdma::Nic& nic = client_.nic();
    if (qp_down_) nic.destroy_qp(qp_down_);
    for (rdma::QueuePair* qp : qp_acks_) nic.destroy_qp(qp);
    qp_acks_.clear();
    qp_up_ = nullptr;
    if (cq_down_) nic.destroy_cq(cq_down_);
    if (cq_up_) nic.destroy_cq(cq_up_);
    qp_down_ = nullptr;
    cq_down_ = cq_up_ = nullptr;
  }
}

// ------------------------------------------------------------------ setup --

void FanoutGroup::setup_primary() {
  rdma::Nic& nic = primary_.server->nic();
  rdma::HostMemory& mem = primary_.server->mem();
  const size_t K = backups_.size();

  primary_.data_base = primary_.server->nvm().alloc(cfg_.region_size, 4096);
  primary_.data_mr = nic.register_mr(
      primary_.data_base, cfg_.region_size,
      rdma::kRemoteRead | rdma::kRemoteWrite | rdma::kRemoteAtomic |
          rdma::kLocalWrite);

  const size_t arena_start = mem.used();
  primary_.staging_slot = static_cast<uint32_t>(K * 3 * kDescBytes);
  primary_.staging_base =
      mem.alloc(uint64_t{primary_.staging_slot} * cfg_.ring_slots, 64);

  primary_.cq_recv = nic.create_cq();
  primary_.qp_prev = nic.create_qp(nullptr, primary_.cq_recv, cfg_.ring_slots);
  primary_.cq_loop = nic.create_cq();
  primary_.qp_loop = nic.create_loopback_qp(primary_.cq_loop,
                                            cfg_.ring_slots * 3);
  for (size_t b = 0; b < K; ++b) {
    primary_.cq_out.push_back(nic.create_cq());
    primary_.qp_out.push_back(
        nic.create_qp(primary_.cq_out[b], nullptr, cfg_.ring_slots * 4));
  }
  // The primary's own ACK rides the last out-queue pair... no: a
  // dedicated ack QP keeps thresholds simple.
  primary_.cq_out.push_back(nic.create_cq());
  primary_.qp_out.push_back(
      nic.create_qp(primary_.cq_out[K], nullptr, cfg_.ring_slots * 2));

  const size_t arena_end = mem.used();
  primary_.ring_lkey =
      nic.register_mr(arena_start, arena_end - arena_start, rdma::kLocalWrite)
          .lkey;
}

void FanoutGroup::setup_backup(size_t bi) {
  Backup& b = backups_[bi];
  rdma::Nic& nic = b.server->nic();
  rdma::HostMemory& mem = b.server->mem();

  b.data_base = b.server->nvm().alloc(cfg_.region_size, 4096);
  b.data_mr = nic.register_mr(
      b.data_base, cfg_.region_size,
      rdma::kRemoteRead | rdma::kRemoteWrite | rdma::kRemoteAtomic |
          rdma::kLocalWrite);

  const size_t arena_start = mem.used();
  b.result_base = mem.alloc(uint64_t{8} * cfg_.ring_slots, 64);
  b.cq_recv = nic.create_cq();
  b.qp_prev = nic.create_qp(nullptr, b.cq_recv, cfg_.ring_slots);
  b.cq_loop = nic.create_cq();
  b.qp_loop = nic.create_loopback_qp(b.cq_loop, cfg_.ring_slots * 3);
  b.cq_ack = nic.create_cq();
  b.qp_ack = nic.create_qp(b.cq_ack, nullptr, cfg_.ring_slots * 2);
  const size_t arena_end = mem.used();
  b.ring_lkey =
      nic.register_mr(arena_start, arena_end - arena_start, rdma::kLocalWrite)
          .lkey;
}

void FanoutGroup::wire() {
  const size_t K = backups_.size();
  // client <-> primary.
  client_.nic().connect(qp_down_, primary_.server->nic().id(),
                        primary_.qp_prev->qpn);
  primary_.server->nic().connect(primary_.qp_prev, client_.nic().id(),
                                 qp_down_->qpn);
  // primary out QPs: [0..K-1] to the backups, [K] = ack QP to the client.
  for (size_t b = 0; b < K; ++b) {
    rdma::QueuePair* up =
        client_.nic().create_qp(nullptr, cq_up_, 8);  // per-backup ack sink
    qp_acks_.push_back(up);
    primary_.server->nic().connect(primary_.qp_out[b],
                                   backups_[b].server->nic().id(),
                                   backups_[b].qp_prev->qpn);
    backups_[b].server->nic().connect(backups_[b].qp_prev,
                                      primary_.server->nic().id(),
                                      primary_.qp_out[b]->qpn);
    backups_[b].server->nic().connect(backups_[b].qp_ack, client_.nic().id(),
                                      up->qpn);
    client_.nic().connect(up, backups_[b].server->nic().id(),
                          backups_[b].qp_ack->qpn);
    for (uint32_t s = 0; s < cfg_.max_inflight * 2; ++s) {
      client_.nic().post_recv(up, RecvWqe{});
    }
  }
  rdma::QueuePair* pup = client_.nic().create_qp(nullptr, cq_up_, 8);
  qp_acks_.push_back(pup);
  primary_.server->nic().connect(primary_.qp_out[K], client_.nic().id(),
                                 pup->qpn);
  client_.nic().connect(pup, primary_.server->nic().id(),
                        primary_.qp_out[K]->qpn);
  for (uint32_t s = 0; s < cfg_.max_inflight * 2; ++s) {
    client_.nic().post_recv(pup, RecvWqe{});
  }
  qp_up_ = pup;
}

void FanoutGroup::rearm_primary_slot(uint64_t seq) {
  rdma::Nic& nic = primary_.server->nic();
  const size_t K = backups_.size();
  RecvWqe recv;
  auto desc_sge = [&](rdma::QueuePair* qp, uint64_t wqe_seq) {
    recv.sges.push_back(
        Sge{qp->slot_addr(wqe_seq), kDescBytes, primary_.ring_lkey});
  };

  // Loopback executor: [WAIT][OP][FLUSH].
  nic.post_send(primary_.qp_loop,
                rdma::make_wait(primary_.cq_recv->id(), seq + 1));
  nic.post_send(primary_.qp_loop, placeholder(), true);  // OP
  nic.post_send(primary_.qp_loop, placeholder(), true);  // FLUSH
  desc_sge(primary_.qp_loop, 3 * seq + 1);
  desc_sge(primary_.qp_loop, 3 * seq + 2);

  // Primary ACK: [WAIT(loop >= 2(k+1))][ACK].
  nic.post_send(primary_.qp_out[K],
                rdma::make_wait(primary_.cq_loop->id(), 2 * (seq + 1)));
  nic.post_send(primary_.qp_out[K], placeholder(), true);  // ACK
  desc_sge(primary_.qp_out[K], 2 * seq + 1);

  // Per-backup forward: [WAIT(recv >= k+1)][WRITE][FLUSH][SEND].
  for (size_t b = 0; b < K; ++b) {
    nic.post_send(primary_.qp_out[b],
                  rdma::make_wait(primary_.cq_recv->id(), seq + 1));
    nic.post_send(primary_.qp_out[b], placeholder(), true);  // WRITE
    nic.post_send(primary_.qp_out[b], placeholder(), true);  // FLUSH
    nic.post_send(primary_.qp_out[b], placeholder(), true);  // SEND
    desc_sge(primary_.qp_out[b], 4 * seq + 1);
    desc_sge(primary_.qp_out[b], 4 * seq + 2);
    desc_sge(primary_.qp_out[b], 4 * seq + 3);
  }
  // Staging: the K per-backup blobs.
  recv.sges.push_back(Sge{
      primary_.staging_base + (seq % cfg_.ring_slots) * primary_.staging_slot,
      primary_.staging_slot, primary_.ring_lkey});
  recv.wr_id = seq;
  nic.post_recv(primary_.qp_prev, std::move(recv));
}

void FanoutGroup::rearm_backup_slot(size_t bi, uint64_t seq) {
  Backup& b = backups_[bi];
  rdma::Nic& nic = b.server->nic();
  // Clear the CAS result slot so execute-map-skipped replicas report 0.
  const uint64_t zero = 0;
  b.server->mem().write(b.result_base + (seq % cfg_.ring_slots) * 8, &zero, 8);

  RecvWqe recv;
  auto desc_sge = [&](rdma::QueuePair* qp, uint64_t wqe_seq) {
    recv.sges.push_back(Sge{qp->slot_addr(wqe_seq), kDescBytes, b.ring_lkey});
  };
  nic.post_send(b.qp_loop, rdma::make_wait(b.cq_recv->id(), seq + 1));
  nic.post_send(b.qp_loop, placeholder(), true);  // OP
  nic.post_send(b.qp_loop, placeholder(), true);  // FLUSH
  nic.post_send(b.qp_ack, rdma::make_wait(b.cq_loop->id(), 2 * (seq + 1)));
  nic.post_send(b.qp_ack, placeholder(), true);  // ACK
  desc_sge(b.qp_loop, 3 * seq + 1);
  desc_sge(b.qp_loop, 3 * seq + 2);
  desc_sge(b.qp_ack, 2 * seq + 1);
  recv.wr_id = seq;
  nic.post_recv(b.qp_prev, std::move(recv));
}

void FanoutGroup::refill_tick_primary() {
  primary_.server->loop().schedule_after(cfg_.refill_period, [this] {
    if (stopped_) return;
    auto work = [this] {
      if (stopped_) return;
      const size_t K = backups_.size();
      while (true) {
        const uint64_t j = primary_.next_rearm - cfg_.ring_slots;
        bool done = primary_.cq_out[K]->completion_count() >= j + 1;
        for (size_t b = 0; b < K && done; ++b) {
          done = primary_.cq_out[b]->completion_count() >= 3 * (j + 1);
        }
        if (!done) break;
        rearm_primary_slot(primary_.next_rearm);
        ++primary_.next_rearm;
      }
      refill_tick_primary();
    };
    if (cfg_.refill_via_cpu) {
      primary_.server->sched().submit(primary_.refill_pid, cfg_.refill_cpu,
                                      work);
    } else {
      work();
    }
  });
}

void FanoutGroup::refill_tick_backup(size_t bi) {
  Backup& b = backups_[bi];
  b.server->loop().schedule_after(cfg_.refill_period, [this, bi] {
    if (stopped_) return;
    auto work = [this, bi] {
      if (stopped_) return;
      Backup& bb = backups_[bi];
      while (bb.cq_ack->completion_count() >=
             bb.next_rearm - cfg_.ring_slots + 1) {
        rearm_backup_slot(bi, bb.next_rearm);
        ++bb.next_rearm;
      }
      refill_tick_backup(bi);
    };
    if (cfg_.refill_via_cpu) {
      Backup& bb = backups_[bi];
      bb.server->sched().submit(bb.refill_pid, cfg_.refill_cpu, work);
    } else {
      work();
    }
  });
}

// ------------------------------------------------------------ blob build --

rdma::WqeDescriptor FanoutGroup::nop_desc() const {
  WqeDescriptor d;
  d.opcode = static_cast<uint8_t>(Opcode::kNop);
  d.active = 1;
  return d;
}

rdma::WqeDescriptor FanoutGroup::backup_ack_desc(size_t b, uint64_t seq,
                                                 const OpSpec& op) {
  const size_t K = backups_.size();
  const uint32_t ack_stride = static_cast<uint32_t>(8 * (1 + K));
  const Addr slot =
      ack_base_ + (seq % (cfg_.max_inflight * 2)) * ack_stride + 8 * (1 + b);
  WqeDescriptor d = rdma::make_write_imm(0, 0, slot, ack_mr_.rkey, 0,
                                         static_cast<uint32_t>(seq))
                        .d;
  if (op.kind == 2) {
    // Carry the 8-byte CAS result.
    d.local_addr =
        backups_[b].result_base + (seq % cfg_.ring_slots) * 8;
    d.lkey = backups_[b].ring_lkey;
    d.length = 8;
  }
  d.active = 1;
  return d;
}

const std::vector<uint8_t>& FanoutGroup::build_blob(uint64_t seq,
                                                    const OpSpec& op) {
  const size_t K = backups_.size();
  std::vector<uint8_t>& blob = blob_scratch_;
  blob.assign(3 * kDescBytes * (1 + 2 * K), 0);
  uint8_t* out = blob.data();
  auto put = [&out](WqeDescriptor d) {
    d.active = 1;
    std::memcpy(out, &d, kDescBytes);
    out += kDescBytes;
  };

  // Primary loopback [OP][FLUSH] and primary [ACK].
  if (op.kind == 1) {
    put(rdma::make_local_copy(primary_.data_base + op.offset,
                              primary_.data_base + op.dst, op.len)
            .d);
    put(op.flush ? rdma::make_flush(0, 0).d : nop_desc());
  } else {
    put(nop_desc());
    put(nop_desc());
  }
  {
    const uint32_t ack_stride = static_cast<uint32_t>(8 * (1 + K));
    put(rdma::make_write_imm(
            0, 0, ack_base_ + (seq % (cfg_.max_inflight * 2)) * ack_stride,
            ack_mr_.rkey, 0, static_cast<uint32_t>(seq))
            .d);
  }

  // Per-backup forward triples on the primary.
  for (size_t b = 0; b < K; ++b) {
    const Backup& bb = backups_[b];
    if (op.kind == 0) {
      // Primary fans out bytes the client WRITE already landed: borrow.
      Wqe fwd = rdma::make_write(primary_.data_base + op.offset, 0,
                                 bb.data_base + op.offset, bb.data_mr.rkey,
                                 op.len);
      fwd.d.flags |= rdma::kWqeFlagZeroCopy;
      put(fwd.d);
      put(op.flush ? rdma::make_flush(bb.data_base, bb.data_mr.rkey).d
                   : nop_desc());
    } else {
      put(nop_desc());
      put(nop_desc());
    }
    put(rdma::make_send(
            primary_.staging_base +
                (seq % cfg_.ring_slots) * primary_.staging_slot +
                b * 3 * kDescBytes,
            primary_.ring_lkey, 3 * kDescBytes)
            .d);
  }

  // Per-backup blobs (forwarded by the SENDs above): [OP][FLUSH][ACK].
  for (size_t b = 0; b < K; ++b) {
    const Backup& bb = backups_[b];
    if (op.kind == 1) {
      put(rdma::make_local_copy(bb.data_base + op.offset,
                                bb.data_base + op.dst, op.len)
              .d);
      put(op.flush ? rdma::make_flush(0, 0).d : nop_desc());
    } else if (op.kind == 2 && op.exec.test(b + 1)) {
      put(rdma::make_cas(bb.result_base + (seq % cfg_.ring_slots) * 8,
                         bb.ring_lkey, bb.data_base + op.offset,
                         bb.data_mr.rkey, op.expected, op.desired)
              .d);
      put(nop_desc());
    } else {
      put(nop_desc());
      put(nop_desc());
    }
    put(backup_ack_desc(b, seq, op));
  }
  return blob;
}

// ------------------------------------------------------------ client path --

void FanoutGroup::submit(const OpSpec& op, Done done, CasDone cas_done) {
  assert(!stopped_ && "primitive on a stopped group");
  if (inflight_ >= cfg_.max_inflight) {
    QueuedOp q;
    q.spec = op;
    q.done = std::move(done);
    q.cas_done = std::move(cas_done);
    waiting_.push_back(std::move(q));
    return;
  }
  ++inflight_;
  issue(op, std::move(done), std::move(cas_done));
}

void FanoutGroup::issue(const OpSpec& op, Done done, CasDone cas_done) {
  const uint64_t seq = next_seq_++;
  const size_t K = backups_.size();

  PendingSlot& pend = pending_[seq & pending_mask_];
  assert(!pend.live && "pending slot table wrapped past the live window");
  pend.seq = static_cast<uint32_t>(seq);
  pend.kind = op.kind;
  pend.live = true;
  pend.acks_needed = static_cast<uint32_t>(1 + K);  // primary + backups
  if (op.kind == 2 && op.exec.test(0)) ++pend.acks_needed;
  pend.done = std::move(done);
  pend.cas_done = std::move(cas_done);
  if (op.kind == 2) {
    // Clear the result slot so skipped replicas (and a skipped primary)
    // report 0 rather than a stale value from a previous ring lap.
    const uint32_t ack_stride = static_cast<uint32_t>(8 * (1 + K));
    client_.mem().write(
        ack_base_ + (seq % (cfg_.max_inflight * 2)) * ack_stride,
        zero_scratch_.data(), ack_stride);
  }

  // Client-side direct work against the primary.
  if (op.kind == 0) {
    if (op.len > 0) {
      client_.nic().post_send(
          qp_down_,
          rdma::make_write(client_region_ + op.offset, 0,
                           primary_.data_base + op.offset,
                           primary_.data_mr.rkey, op.len));
    }
    if (op.flush) {
      client_.nic().post_send(
          qp_down_,
          rdma::make_flush(primary_.data_base, primary_.data_mr.rkey));
    }
  } else if (op.kind == 1) {
    client_.mem().copy(client_region_ + op.dst, client_region_ + op.offset,
                       op.len);
    client_.nvm().persist(client_region_ + op.dst, op.len);
  } else if (op.kind == 2 && op.exec.test(0)) {
    // One-sided CAS against the primary; the result lands in the ack slot
    // (index 0) so the assembly code reads all results from one place.
    const uint32_t ack_stride = static_cast<uint32_t>(8 * (1 + K));
    Wqe cas = rdma::make_cas(
        ack_base_ + (seq % (cfg_.max_inflight * 2)) * ack_stride,
        ack_mr_.lkey, primary_.data_base + op.offset, primary_.data_mr.rkey,
        op.expected, op.desired, kCasTag | seq);
    client_.nic().post_send(qp_down_, cas);
  }

  // Metadata SEND that triggers the primary's fan-out.
  const auto& blob = build_blob(seq, op);
  const Addr slot =
      client_staging_ + (seq % (cfg_.max_inflight * 2)) * client_staging_slot_;
  client_.mem().write(slot, blob.data(), blob.size());
  client_.nic().post_send(
      qp_down_, rdma::make_send(slot, 0, static_cast<uint32_t>(blob.size())));
}

void FanoutGroup::complete(PendingSlot& slot) {
  slot.live = false;
  --inflight_;
  if (slot.kind == 2) {
    CasDone handler = std::move(slot.cas_done);
    const size_t K = backups_.size();
    const uint32_t ack_stride = static_cast<uint32_t>(8 * (1 + K));
    client_.mem().read(
        ack_base_ + (slot.seq % (cfg_.max_inflight * 2)) * ack_stride,
        cas_scratch_.data(), ack_stride);
    handler(CasResult(cas_scratch_.data(), 1 + K));
  } else {
    Done handler = std::move(slot.done);
    if (handler) handler();
  }
  if (!waiting_.empty() && inflight_ < cfg_.max_inflight) {
    QueuedOp next = std::move(waiting_.front());
    waiting_.pop_front();
    ++inflight_;
    issue(next.spec, std::move(next.done), std::move(next.cas_done));
  }
}

void FanoutGroup::on_ack_cqe() {
  rdma::Cqe cqe;
  auto count_event = [this](uint32_t seq) {
    PendingSlot& slot = pending_[seq & pending_mask_];
    if (!slot.live || slot.seq != seq) return;
    if (--slot.acks_needed > 0) return;
    complete(slot);
  };
  while (cq_up_->poll(&cqe)) {
    if (!cqe.has_imm) continue;
    client_.nic().post_recv(client_.nic().qp(cqe.qpn), RecvWqe{});
    count_event(cqe.imm);
  }
  while (cq_down_->poll(&cqe)) {
    if ((cqe.wr_id & kCasTag) != 0) {
      count_event(static_cast<uint32_t>(cqe.wr_id & 0xffffffffu));
    }
  }
  cq_up_->arm_notify();
  cq_down_->arm_notify();
}

// ------------------------------------------------------------- primitives --

void FanoutGroup::gwrite(uint64_t offset, uint32_t len, bool flush,
                         Done done) {
  assert(offset + len <= cfg_.region_size);
  OpSpec op;
  op.kind = 0;
  op.offset = offset;
  op.len = len;
  op.flush = flush;
  submit(op, std::move(done), CasDone{});
}

void FanoutGroup::gmemcpy(uint64_t src_offset, uint64_t dst_offset,
                          uint32_t len, bool flush, Done done) {
  assert(src_offset + len <= cfg_.region_size);
  assert(dst_offset + len <= cfg_.region_size);
  OpSpec op;
  op.kind = 1;
  op.offset = src_offset;
  op.dst = dst_offset;
  op.len = len;
  op.flush = flush;
  submit(op, std::move(done), CasDone{});
}

void FanoutGroup::gcas(uint64_t offset, uint64_t expected, uint64_t desired,
                       ExecMap exec_map, CasDone done) {
  assert(offset + 8 <= cfg_.region_size);
  OpSpec op;
  op.kind = 2;
  op.offset = offset;
  op.expected = expected;
  op.desired = desired;
  op.exec = exec_map;
  submit(op, Done{}, std::move(done));
}

void FanoutGroup::gflush(Done done) { gwrite(0, 0, true, std::move(done)); }

void FanoutGroup::client_store(uint64_t offset, const void* src,
                               uint32_t len) {
  assert(offset + len <= cfg_.region_size);
  client_.mem().write(client_region_ + offset, src, len);
  client_.nvm().persist(client_region_ + offset, len);
}

void FanoutGroup::client_load(uint64_t offset, void* dst,
                              uint32_t len) const {
  client_.mem().read(client_region_ + offset, dst, len);
}

void FanoutGroup::replica_load(size_t i, uint64_t offset, void* dst,
                               uint32_t len) const {
  if (i == 0) {
    primary_.server->mem().read(primary_.data_base + offset, dst, len);
  } else {
    const Backup& b = backups_.at(i - 1);
    b.server->mem().read(b.data_base + offset, dst, len);
  }
}

uint64_t FanoutGroup::total_rnr_stalls() const {
  uint64_t n = primary_.server->nic().counters().rnr_stalls;
  for (const Backup& b : backups_) {
    n += b.server->nic().counters().rnr_stalls;
  }
  return n;
}

}  // namespace hyperloop::core
