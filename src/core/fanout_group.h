// Fan-out NIC-offloaded replication (§7, "Supporting other replication
// protocols"): the FaRM-style topology where a single primary coordinates
// K backups, with the coordination offloaded from the primary's CPU to
// the primary's NIC.
//
//   client ──> primary ──> backup 1..K   (parallel, not a chain)
//
// Per operation slot the primary pre-posts, for *each* backup QP, a
// [WAIT(recv_cq >= k+1)] [WRITE] [FLUSH] [SEND] chain — all K WAITs watch
// the same receive CQ, so one inbound metadata SEND from the client
// triggers K parallel forwards. Each backup pre-posts a [WAIT][op][ACK]
// chain that acknowledges the *client* directly with WRITE_WITH_IMM; the
// client completes an operation once it has collected all K backup ACKs
// (the primary's own copy is handled by the client's one-sided
// WRITE/FLUSH/CAS, and by a primary loopback chain for gMEMCPY).
//
// Trade-off vs the chain (paper §7): latency is one NIC hop shorter and
// independent of K at the tail, but the primary's NIC carries K times the
// write traffic and holds K active write QPs per group — chain replication
// load-balances this, which is why the paper prefers it.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/group.h"
#include "core/server.h"
#include "rdma/nic.h"
#include "sim/ring.h"

namespace hyperloop::core {

class FanoutGroup final : public ReplicationGroup {
 public:
  struct Config {
    uint64_t region_size = 4u << 20;
    uint32_t ring_slots = 512;
    uint32_t max_inflight = 32;
    sim::Duration refill_period = sim::usec(100);
    sim::Duration refill_cpu = sim::usec(1);
    sim::Duration refill_cpu_per_slot = sim::nsec(150);
    bool refill_via_cpu = true;
  };

  /// Replica 0 of `replicas` acts as the primary; the rest are backups.
  FanoutGroup(Server& client, std::vector<Server*> replicas, Config cfg);
  ~FanoutGroup() override;

  size_t group_size() const override { return 1 + backups_.size(); }
  uint64_t region_size() const override { return cfg_.region_size; }
  void gwrite(uint64_t offset, uint32_t len, bool flush, Done done) override;
  void gmemcpy(uint64_t src_offset, uint64_t dst_offset, uint32_t len,
               bool flush, Done done) override;
  void gcas(uint64_t offset, uint64_t expected, uint64_t desired,
            ExecMap exec_map, CasDone done) override;
  void gflush(Done done) override;
  void stop() override;
  void client_store(uint64_t offset, const void* src, uint32_t len) override;
  void client_load(uint64_t offset, void* dst, uint32_t len) const override;
  void replica_load(size_t i, uint64_t offset, void* dst,
                    uint32_t len) const override;

  Server& replica_server(size_t i) {
    return i == 0 ? *primary_.server : *backups_.at(i - 1).server;
  }
  rdma::Addr replica_region_base(size_t i) const {
    return i == 0 ? primary_.data_base : backups_.at(i - 1).data_base;
  }
  uint64_t total_rnr_stalls() const;
  /// Bytes the primary's NIC transmitted (the fan-out hotspot; compare
  /// with a chain replica's NIC in bench/ablation_fanout).
  uint64_t primary_nic_tx_bytes() const {
    return primary_.server->nic().counters().bytes_tx;
  }

 private:
  static constexpr uint32_t kDescBytes = sizeof(rdma::WqeDescriptor);

  struct Primary {
    Server* server = nullptr;
    rdma::Addr data_base = 0;
    rdma::MemoryRegion data_mr{};
    rdma::QueuePair* qp_prev = nullptr;  ///< from the client
    rdma::CompletionQueue* cq_recv = nullptr;
    /// One forwarding QP per backup, plus a loopback executor.
    std::vector<rdma::QueuePair*> qp_out;
    std::vector<rdma::CompletionQueue*> cq_out;
    rdma::QueuePair* qp_loop = nullptr;
    rdma::CompletionQueue* cq_loop = nullptr;
    rdma::Addr staging_base = 0;  ///< per-backup forward metadata ring
    uint32_t staging_slot = 0;
    uint32_t ring_lkey = 0;
    uint64_t next_rearm = 0;
    sim::ProcessId refill_pid = 0;
  };

  struct Backup {
    Server* server = nullptr;
    size_t index = 0;  ///< 0-based backup index
    rdma::Addr data_base = 0;
    rdma::MemoryRegion data_mr{};
    rdma::QueuePair* qp_prev = nullptr;  ///< from the primary
    rdma::CompletionQueue* cq_recv = nullptr;
    rdma::QueuePair* qp_ack = nullptr;  ///< to the client
    rdma::CompletionQueue* cq_ack = nullptr;
    rdma::QueuePair* qp_loop = nullptr;
    rdma::CompletionQueue* cq_loop = nullptr;
    rdma::Addr result_base = 0;  ///< local CAS result ring (8B slots)
    uint32_t ring_lkey = 0;
    uint64_t next_rearm = 0;
    sim::ProcessId refill_pid = 0;
  };

  struct OpSpec {
    uint8_t kind = 0;  // 0 write, 1 memcpy, 2 cas
    uint64_t offset = 0, dst = 0;
    uint32_t len = 0;
    bool flush = false;
    uint64_t expected = 0, desired = 0;
    ExecMap exec;
  };

  /// One in-flight op, direct-mapped by seq & pending_mask_. Per-source
  /// ack streams are FIFO and every source acks every op, so the live-seq
  /// window stays narrow; the table is sized 4x the credit window and the
  /// claim assert guards the invariant.
  struct PendingSlot {
    uint32_t seq = 0;
    uint8_t kind = 0;
    bool live = false;
    uint32_t acks_needed = 0;
    Done done;
    CasDone cas_done;
  };

  /// An op parked while the credit window is full.
  struct QueuedOp {
    OpSpec spec;
    Done done;
    CasDone cas_done;
  };

  void setup_primary();
  void setup_backup(size_t b);
  void wire();
  void rearm_primary_slot(uint64_t seq);
  void rearm_backup_slot(size_t b, uint64_t seq);
  void refill_tick_primary();
  void refill_tick_backup(size_t b);

  // Builds the metadata blob the client sends to the primary. Layout:
  //   [primary loopback op desc][primary loopback flush desc]
  //   [per backup: fwd WRITE desc][fwd FLUSH desc][fwd SEND desc]
  // Each forwarded SEND carries that backup's own 3-desc blob
  // ([op][flush][ack]) staged by the primary's RECV scatter.
  /// Fills and returns blob_scratch_ (valid until the next call) — the
  /// blob is memcpy'd into staging memory immediately, so per-op vector
  /// allocations on this hot path would be pure churn.
  const std::vector<uint8_t>& build_blob(uint64_t seq, const OpSpec& op);
  rdma::WqeDescriptor backup_ack_desc(size_t b, uint64_t seq,
                                      const OpSpec& op);
  void submit(const OpSpec& op, Done done, CasDone cas_done);
  void issue(const OpSpec& op, Done done, CasDone cas_done);
  void complete(PendingSlot& slot);
  void on_ack_cqe();
  rdma::WqeDescriptor nop_desc() const;

  Server& client_;
  Primary primary_;
  std::vector<Backup> backups_;
  Config cfg_;

  // Client side.
  rdma::QueuePair* qp_down_ = nullptr;   ///< to the primary
  rdma::CompletionQueue* cq_down_ = nullptr;
  rdma::QueuePair* qp_up_ = nullptr;     ///< ACKs from backups land here
  rdma::CompletionQueue* cq_up_ = nullptr;
  std::vector<rdma::QueuePair*> qp_acks_;  ///< all client-side ack sinks
  rdma::Addr client_region_ = 0;
  rdma::Addr client_staging_ = 0;
  uint32_t client_staging_slot_ = 0;
  rdma::Addr ack_base_ = 0;
  rdma::MemoryRegion ack_mr_{};
  uint64_t next_seq_ = 0;
  uint32_t inflight_ = 0;
  std::vector<PendingSlot> pending_;  ///< direct-mapped by seq & mask
  uint32_t pending_mask_ = 0;
  sim::Ring<QueuedOp> waiting_;  ///< ops parked for a credit
  std::vector<uint8_t> blob_scratch_;  ///< reused by build_blob per issue()
  std::vector<uint8_t> zero_scratch_;  ///< reused ack-slot clear (gCAS)
  std::vector<uint64_t> cas_scratch_;  ///< gCAS result-map read buffer
};

}  // namespace hyperloop::core
