// One-sided RDMA reads from a replica's replicated region.
//
// HyperLoop allows lock-free (or read-locked) reads from the head or tail
// of the chain (§5). RemoteReader owns a dedicated QP pair between the
// client and one replica plus a small ring of bounce buffers, so read
// traffic never interferes with the pre-posted primitive rings.
#pragma once

#include <cstdint>
#include <vector>

#include "core/server.h"
#include "rdma/nic.h"
#include "sim/ring.h"
#include "sim/small_fn.h"

namespace hyperloop::core {

class RemoteReader {
 public:
  /// `target` is the replica served by this reader; `remote_base`/`rkey`
  /// identify its replicated region.
  RemoteReader(Server& client, Server& target, rdma::Addr remote_base,
               uint32_t rkey, uint32_t slots = 32, uint32_t slot_size = 16384);

  using ReadDone = sim::SmallFn<void(std::vector<uint8_t>), 64>;

  /// Reads `len` bytes at region `offset` from the target replica.
  /// Requires len <= slot_size; reads queue when all slots are busy.
  void read(uint64_t offset, uint32_t len, ReadDone done);

  uint64_t reads_issued() const { return reads_issued_; }

 private:
  /// One outstanding READ. The QP completes one-sided READs in post
  /// order, so in-flight reads form a FIFO.
  struct Pending {
    uint64_t wr_id = 0;
    uint32_t slot = 0;
    uint32_t len = 0;
    ReadDone done;
  };

  /// A read parked until a bounce slot frees up.
  struct QueuedRead {
    uint64_t offset = 0;
    uint32_t len = 0;
    ReadDone done;
  };

  void issue(uint64_t offset, uint32_t len, ReadDone done);
  void on_completion();

  Server& client_;
  rdma::Addr remote_base_;
  uint32_t rkey_;
  uint32_t slot_size_;
  rdma::QueuePair* qp_ = nullptr;
  rdma::CompletionQueue* cq_ = nullptr;
  rdma::Addr bounce_base_ = 0;
  std::vector<uint32_t> free_slots_;
  uint64_t next_wr_id_ = 1;
  sim::Ring<Pending> pending_;     ///< FIFO of in-flight READs
  sim::Ring<QueuedRead> waiting_;  ///< reads parked for a bounce slot
  uint64_t reads_issued_ = 0;
};

}  // namespace hyperloop::core
