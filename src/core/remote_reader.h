// One-sided RDMA reads from the replicas' replicated regions.
//
// HyperLoop allows lock-free (or read-locked) reads from any replica of
// the chain (§5). RemoteReader owns a small pool of dedicated QPs — one
// per replica it can read from — plus a ring of bounce-buffer slots per
// endpoint, so read traffic never interferes with the pre-posted
// primitive rings, and read *load* can be spread across replicas with a
// pluggable selection policy (Storm-style one-sided fan-out):
//
//   kHeadOnly          every read goes to target 0 (the legacy shape)
//   kRoundRobin        logical reads rotate across all targets
//   kLeastOutstanding  pick the endpoint with the fewest in-flight frags
//
// Reads larger than one bounce slot are fragmented across slots of the
// chosen endpoint (never across endpoints — one logical read observes one
// replica), staged with stage_send and issued under a single doorbell.
// readv() batches discontiguous extents the same way: one endpoint, one
// doorbell, one completion with the extents concatenated in order.
//
// Completion hands the caller a ReadView — a non-owning window into the
// reader's pooled per-op scratch, valid only inside the callback — so the
// steady-state read path performs zero heap allocations (gated by
// nic_alloc_test and tools/lint_hot_path.sh).
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "core/server.h"
#include "rdma/nic.h"
#include "sim/ring.h"
#include "sim/small_fn.h"
#include "stats/histogram.h"

namespace hyperloop::core {

/// Non-owning view of the bytes a read returned. Valid only for the
/// duration of the completion callback (the backing scratch is pooled) —
/// copy out what must outlive it. Mirrors CasResult.
class ReadView {
 public:
  ReadView() = default;
  ReadView(const uint8_t* data, uint32_t len) : data_(data), len_(len) {}

  const uint8_t* data() const { return data_; }
  uint32_t size() const { return len_; }
  bool empty() const { return len_ == 0; }
  const uint8_t* begin() const { return data_; }
  const uint8_t* end() const { return data_ + len_; }
  uint8_t operator[](size_t i) const {
    assert(i < len_);
    return data_[i];
  }

 private:
  const uint8_t* data_ = nullptr;
  uint32_t len_ = 0;
};

/// Inline capture budget for read completions. 96 bytes: enough for a
/// `this` pointer, a key, and a nested 48-cap StorageEngine callback —
/// the docstore/kvstore read chains are exactly that shape.
inline constexpr size_t kReadDoneCap = 96;

/// Completion callback for reads. The ReadView is only valid inside the
/// call. Move-only; capture state stays inline in the pooled op slot.
using ReadDone = sim::SmallFn<void(ReadView), kReadDoneCap>;

static_assert(sizeof(ReadDone) == kReadDoneCap + 2 * sizeof(void*),
              "ReadDone must stay a flat inline-capture SmallFn");

/// One read extent: a contiguous range of the replicated region.
struct ReadExtent {
  uint64_t offset = 0;
  uint32_t len = 0;
};

/// Fixed-capacity inline extent list for readv(). Lives by value in the
/// park ring and scatter-join slots, so batched reads never touch the
/// heap. Sized for one extent per shard at the largest sharded configs.
struct ReadVec {
  static constexpr size_t kCapacity = 16;

  ReadExtent entries[kCapacity];
  uint32_t count = 0;

  void push_back(const ReadExtent& e) {
    assert(count < kCapacity);
    entries[count++] = e;
  }
  void clear() { count = 0; }
  size_t size() const { return count; }
  bool empty() const { return count == 0; }
  bool full() const { return count == kCapacity; }
  const ReadExtent& operator[](size_t i) const {
    assert(i < count);
    return entries[i];
  }
  const ReadExtent* begin() const { return entries; }
  const ReadExtent* end() const { return entries + count; }
  uint32_t total_len() const {
    uint32_t n = 0;
    for (uint32_t i = 0; i < count; ++i) n += entries[i].len;
    return n;
  }
};

class RemoteReader {
 public:
  /// Replica-selection policy for reads that do not name a replica.
  enum class Policy : uint8_t { kHeadOnly, kRoundRobin, kLeastOutstanding };

  /// One readable replica: its server plus the base/rkey of its region.
  struct Target {
    Server* server = nullptr;
    rdma::Addr remote_base = 0;
    uint32_t rkey = 0;
  };

  struct Options {
    uint32_t slots = 32;        ///< bounce slots per endpoint
    uint32_t slot_size = 16384; ///< bytes per bounce slot
    Policy policy = Policy::kHeadOnly;
    size_t nic_index = 0;       ///< client/replica NIC the QPs live on
  };

  struct Stats {
    uint64_t reads_issued = 0;  ///< logical reads (read/readv calls issued)
    uint64_t frags_issued = 0;  ///< slot-sized READ WQEs posted
    uint64_t read_bytes = 0;    ///< payload bytes returned to callers
    uint64_t aborted_reads = 0; ///< dropped by stop() before completing
  };

  /// Reads spread across `targets` under `opts.policy`.
  RemoteReader(Server& client, std::vector<Target> targets, Options opts);
  RemoteReader(Server& client, std::vector<Target> targets);

  /// Legacy single-replica reader (head-only policy over one target).
  RemoteReader(Server& client, Server& target, rdma::Addr remote_base,
               uint32_t rkey, uint32_t slots = 32, uint32_t slot_size = 16384);

  ~RemoteReader();
  RemoteReader(const RemoteReader&) = delete;
  RemoteReader& operator=(const RemoteReader&) = delete;

  /// Reads `len` bytes at region `offset` from a policy-chosen replica.
  /// Fragments across bounce slots when len > slot_size; requires
  /// len <= max_read_len(). Reads park FIFO when slots are busy.
  void read(uint64_t offset, uint32_t len, ReadDone done);

  /// Same, from a specific replica (callers that read-lock a replica must
  /// read the one they locked).
  void read_from(size_t replica, uint64_t offset, uint32_t len,
                 ReadDone done);

  /// Batched scatter read: every extent from one policy-chosen replica,
  /// staged together and issued under one doorbell. The completion view
  /// is the extents' bytes concatenated in list order.
  void readv(const ReadVec& extents, ReadDone done);

  /// Same, from a specific replica.
  void readv_from(size_t replica, const ReadVec& extents, ReadDone done);

  /// Applies the selection policy and returns the replica the *next*
  /// policy-routed read would use (advancing round-robin state). Callers
  /// that must lock the replica they read pick here, lock, then
  /// read_from() the same index.
  size_t next_replica();

  /// Idempotent teardown: parked and in-flight reads are dropped without
  /// their callbacks firing (counted in stats().aborted_reads); QPs and
  /// CQs are destroyed (in-flight response packets then drop at the NIC
  /// as invalid_qp_drops). The destructor calls stop(). Must not be
  /// called in the same instant reads were posted: destroy_qp requires an
  /// idle send engine, so let the loop run past the staged WQEs'
  /// execution (~wqe_cost each) first — responses may still be in flight.
  void stop();

  size_t num_replicas() const { return endpoints_.size(); }
  Server& client() { return client_; }
  const Server& client() const { return client_; }
  uint32_t slot_size() const { return opts_.slot_size; }
  /// Largest single logical read/readv (all fragments must fit one
  /// endpoint's slot ring at once).
  uint32_t max_read_len() const { return opts_.slots * opts_.slot_size; }

  uint64_t reads_issued() const { return stats_.reads_issued; }
  const Stats& stats() const { return stats_; }
  /// READ fragments issued to replica `i` (the read-spread signal).
  uint64_t replica_frags(size_t i) const {
    return endpoints_.at(i).frags_issued;
  }
  uint64_t outstanding(size_t i) const { return endpoints_.at(i).outstanding; }
  /// Latency of completed logical reads (issue -> last fragment).
  const stats::Histogram& latency() const { return latency_; }

 private:
  /// One in-flight slot-sized READ, pointing back into its logical op.
  struct Frag {
    uint64_t wr_id = 0;
    uint32_t slot = 0;
    uint32_t len = 0;
    uint32_t op = 0;      ///< ops_ index (pool may grow; never a pointer)
    uint32_t dst_off = 0; ///< byte position in the op's assembled view
  };

  /// One QP to one replica plus its bounce-slot ring. READ completions
  /// arrive in post order per QP, so in-flight fragments form a FIFO.
  struct Endpoint {
    Server* server = nullptr;
    rdma::Addr remote_base = 0;
    uint32_t rkey = 0;
    rdma::QueuePair* qp = nullptr;
    rdma::QueuePair* stub = nullptr;  ///< routing endpoint on the replica
    rdma::CompletionQueue* cq = nullptr;
    rdma::Addr bounce_base = 0;
    std::vector<uint32_t> free_slots;
    sim::Ring<Frag> pending;   ///< FIFO of in-flight fragments
    uint64_t outstanding = 0;  ///< in-flight fragments
    uint64_t frags_issued = 0;
  };

  /// One logical read in flight: fragments outstanding, the assembly
  /// scratch (grows to high-water, then reused — zero steady-state
  /// allocations), and the parked completion.
  struct ReadOp {
    uint32_t remaining = 0;
    uint32_t len = 0;
    bool live = false;
    sim::Time started = 0;
    std::vector<uint8_t> scratch;
    ReadDone done;
  };

  /// A logical read parked until its endpoint has enough free slots.
  struct Parked {
    ReadVec extents;
    uint32_t replica = 0;
    ReadDone done;
  };

  static uint32_t frags_needed(const ReadVec& v, uint32_t slot_size);
  size_t pick_replica();
  void submit(size_t replica, const ReadVec& extents, ReadDone done);
  void issue(size_t replica, const ReadVec& extents, ReadDone done);
  uint32_t acquire_op();
  void replay_waiting();
  void on_completion(size_t replica);
  rdma::Nic& client_nic() { return client_.nic(opts_.nic_index); }

  Server& client_;
  Options opts_;
  std::vector<Endpoint> endpoints_;
  uint64_t next_wr_id_ = 1;
  size_t rr_next_ = 0;             ///< round-robin cursor
  std::vector<ReadOp> ops_;        ///< pooled logical ops
  std::vector<uint32_t> ops_free_; ///< LIFO free list into ops_
  sim::Ring<Parked> waiting_;      ///< reads parked for bounce slots
  Stats stats_;
  stats::Histogram latency_;
  bool stopped_ = false;
};

}  // namespace hyperloop::core
