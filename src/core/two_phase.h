// Cross-partition transactions: the classic two-phase commit of Fig 1(b),
// layered over multiple replication groups (one per partition, each an
// independently replicated chain). The coordinator is the client; every
// protocol step is itself an offloaded group operation, so with HyperLoop
// partitions no replica CPU appears anywhere in a distributed commit.
//
// Protocol (presumed-abort with durable roll-forward):
//   lock    acquire group write locks on every touched partition
//   PREPARE per partition: append a record that stages the txn's writes
//           in the partition's staging area and durably marks the txn
//           PREPARED in its status table
//   COMMIT  once every partition's prepare is durable: append a record
//           with the *final* DB writes plus the COMMITTED status mark,
//           then ExecuteAndAdvance and unlock
//
// Crash rules (tested in tests/two_phase_test.cc):
//   - status PREPARED only               -> presumed abort (staged data is
//                                           never copied to the DB area)
//   - status COMMITTED on any partition  -> roll forward everywhere: the
//                                           staged bytes are durable on
//                                           every prepared partition, so
//                                           recover_partition() completes
//                                           the transaction from them.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/group.h"
#include "core/lock.h"
#include "core/region_layout.h"
#include "core/wal.h"

namespace hyperloop::core {

class TwoPhaseCoordinator {
 public:
  enum TxnState : uint64_t {
    kNone = 0,
    kPrepared = 1,
    kCommitted = 2,
  };

  struct PartitionCtx {
    ReplicationGroup* group = nullptr;
    ReplicatedWal* wal = nullptr;
    GroupLockManager* locks = nullptr;
    RegionLayout layout;
  };

  struct Config {
    /// Concurrent cross-partition transactions the status/staging tables
    /// can hold (slots are reused round-robin by txn id).
    uint32_t max_txn_slots = 64;
    /// Bytes of staging per transaction per partition.
    uint32_t staging_bytes = 8192;
  };

  struct Write {
    size_t partition = 0;
    uint64_t db_offset = 0;   ///< relative to the partition's DB area
    uint32_t lock_id = 0;     ///< stripe within the partition
    std::vector<uint8_t> data;
  };

  /// Protocol steps recurse through member functions capturing
  /// [this, shared TxnCtx, index] — well inside the inline capacity.
  using TxnDone = sim::SmallFn<void(bool committed), 64>;

  TwoPhaseCoordinator(sim::EventLoop& loop,
                      std::vector<PartitionCtx> partitions, Config cfg);

  /// Runs one cross-partition transaction. done(true) after commit marks
  /// are durable everywhere and data is applied; done(false) if locks
  /// could not be acquired (nothing was logged).
  void execute(std::vector<Write> writes, TxnDone done);

  /// DB-area offset of a transaction slot's status word in every
  /// partition's layout: [txn_id u64][state u64].
  uint64_t status_offset(uint64_t txn_id) const {
    return (txn_id % cfg_.max_txn_slots) * 16;
  }
  /// DB-area offset of a transaction's staging block.
  uint64_t staging_offset(uint64_t txn_id) const {
    return status_region_bytes() +
           (txn_id % cfg_.max_txn_slots) * uint64_t{cfg_.staging_bytes};
  }
  /// First DB-area offset usable by application data.
  uint64_t app_data_base() const {
    return status_region_bytes() +
           uint64_t{cfg_.max_txn_slots} * cfg_.staging_bytes;
  }

  /// Post-crash recovery for one partition image: completes roll-forward
  /// for transactions that are COMMITTED anywhere (the caller passes the
  /// set of globally-committed txn ids found by scanning all partitions)
  /// and reports this partition's own status table.
  /// Returns the number of transactions rolled forward.
  uint64_t recover_partition(size_t partition,
                             const std::vector<uint64_t>& committed_txns);

  /// Scans a partition's status table; appends (txn_id, state) pairs.
  void scan_status(size_t partition,
                   std::vector<std::pair<uint64_t, uint64_t>>* out) const;

  uint64_t committed() const { return committed_; }
  uint64_t aborted() const { return aborted_; }

 private:
  struct TxnCtx;

  uint64_t status_region_bytes() const {
    return uint64_t{cfg_.max_txn_slots} * 16;
  }

  void acquire_locks(std::shared_ptr<TxnCtx> t, size_t idx);
  void abort_release(std::shared_ptr<TxnCtx> t, size_t i);
  void prepare_step(std::shared_ptr<TxnCtx> t, size_t idx);
  void commit_step(std::shared_ptr<TxnCtx> t, size_t idx);
  void run_execs(std::shared_ptr<TxnCtx> t);
  void on_exec_done(std::shared_ptr<TxnCtx> t);
  void commit_release(std::shared_ptr<TxnCtx> t, size_t i);
  void finish(std::shared_ptr<TxnCtx> t, bool ok);

  sim::EventLoop& loop_;
  std::vector<PartitionCtx> parts_;
  Config cfg_;
  uint64_t next_txn_ = 1;
  uint64_t committed_ = 0;
  uint64_t aborted_ = 0;
};

}  // namespace hyperloop::core
