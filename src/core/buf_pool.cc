#include "core/buf_pool.h"

#include <utility>

namespace hyperloop::core {

std::vector<std::vector<uint8_t>>& BufPool::pool() {
  static std::vector<std::vector<uint8_t>> freelist;
  return freelist;
}

std::vector<uint8_t> BufPool::acquire(size_t n) {
  auto& freelist = pool();
  if (freelist.empty()) return std::vector<uint8_t>(n);
  std::vector<uint8_t> v = std::move(freelist.back());
  freelist.pop_back();
  // Grows (one realloc) only until capacity reaches the workload's largest
  // message, then recycles allocation-free.
  v.resize(n);
  return v;
}

void BufPool::release(std::vector<uint8_t>&& v) {
  auto& freelist = pool();
  if (v.capacity() == 0 || freelist.size() >= kMaxPooled) return;
  v.clear();
  freelist.push_back(std::move(v));
}

size_t BufPool::pooled() { return pool().size(); }

}  // namespace hyperloop::core
