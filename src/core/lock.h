// Group locking (§5, "Locking and Isolation") built purely on gCAS.
//
// Each lock-table entry holds a writer word and a reader count (see
// RegionLayout). Write locks are *group* locks: a gCAS(0 -> owner) against
// every replica; on a partial acquisition (some replicas already held) the
// acquired subset is rolled back with a second gCAS whose execute map
// selects exactly the replicas that succeeded — the paper's undo flow.
// Read locks are per-replica (only the replica being read from
// participates) and coexist with writers via the classic rwlock protocol:
// readers increment the reader count while the writer word is clear;
// writers acquire the writer word on all replicas and then wait for reader
// counts to drain.
//
// A gCAS(expected=0, desired=0) is used as a NIC-offloaded *read* of a
// lock word (it swaps nothing and returns the current value).
#pragma once

#include <cstdint>
#include <functional>

#include "core/group.h"
#include "core/region_layout.h"
#include "sim/event_loop.h"

namespace hyperloop::core {

class GroupLockManager {
 public:
  struct Config {
    sim::Duration retry_backoff = sim::usec(20);
    int max_attempts = 10000;
  };

  struct Stats {
    uint64_t wr_acquired = 0;
    uint64_t wr_conflicts = 0;  ///< attempts that found the lock held
    uint64_t partial_undos = 0; ///< partial acquisitions rolled back
    uint64_t rd_acquired = 0;
  };

  using LockDone = std::function<void(bool acquired)>;
  using Done = std::function<void()>;

  GroupLockManager(ReplicationGroup& group, RegionLayout layout,
                   sim::EventLoop& loop, Config cfg);
  GroupLockManager(ReplicationGroup& group, RegionLayout layout,
                   sim::EventLoop& loop)
      : GroupLockManager(group, layout, loop, Config()) {}

  /// Acquires the write lock `lock_id` for `owner` (non-zero) on every
  /// replica, retrying with backoff. done(false) after max_attempts.
  void wr_lock(uint32_t lock_id, uint64_t owner, LockDone done);

  /// Releases a held write lock.
  void wr_unlock(uint32_t lock_id, uint64_t owner, Done done);

  /// Acquires a read lock on one replica.
  void rd_lock(uint32_t lock_id, size_t replica, LockDone done);

  /// Releases a read lock on one replica.
  void rd_unlock(uint32_t lock_id, size_t replica, Done done);

  const Stats& stats() const { return stats_; }

 private:
  void wr_attempt(uint32_t lock_id, uint64_t owner, int attempts_left,
                  LockDone done);
  void wait_readers_drain(uint32_t lock_id, uint64_t owner, int attempts_left,
                          LockDone done);
  void rd_attempt(uint32_t lock_id, size_t replica, int attempts_left,
                  LockDone done);
  void cas_loop_add(uint64_t offset, size_t replica, int64_t delta,
                    Done done);

  std::vector<bool> all_replicas() const {
    return std::vector<bool>(group_.group_size(), true);
  }
  std::vector<bool> one_replica(size_t i) const {
    std::vector<bool> m(group_.group_size(), false);
    m[i] = true;
    return m;
  }

  ReplicationGroup& group_;
  RegionLayout layout_;
  sim::EventLoop& loop_;
  Config cfg_;
  Stats stats_;
};

}  // namespace hyperloop::core
