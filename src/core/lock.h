// Group locking (§5, "Locking and Isolation") built purely on gCAS.
//
// Each lock-table entry holds a writer word and a reader count (see
// RegionLayout). Write locks are *group* locks: a gCAS(0 -> owner) against
// every replica; on a partial acquisition (some replicas already held) the
// acquired subset is rolled back with a second gCAS whose execute map
// selects exactly the replicas that succeeded — the paper's undo flow.
// Read locks are per-replica (only the replica being read from
// participates) and coexist with writers via the classic rwlock protocol:
// readers increment the reader count while the writer word is clear;
// writers acquire the writer word on all replicas and then wait for reader
// counts to drain.
//
// A gCAS(expected=0, desired=0) is used as a NIC-offloaded *read* of a
// lock word (it swaps nothing and returns the current value).
//
// Every multi-step acquisition (attempt/backoff/undo loops) runs as a
// small state machine over a pooled slot table: callbacks capture only
// [this, slot index], so they always fit a SmallFn's inline storage and
// the retry loops allocate nothing in steady state.
#pragma once

#include <cstdint>
#include <vector>

#include "core/group.h"
#include "core/region_layout.h"
#include "sim/event_loop.h"
#include "sim/small_fn.h"

namespace hyperloop::core {

class GroupLockManager {
 public:
  struct Config {
    sim::Duration retry_backoff = sim::usec(20);
    int max_attempts = 10000;
  };

  struct Stats {
    uint64_t wr_acquired = 0;
    uint64_t wr_conflicts = 0;  ///< attempts that found the lock held
    uint64_t partial_undos = 0; ///< partial acquisitions rolled back
    uint64_t rd_acquired = 0;
  };

  /// Inline capacity for lock completion callbacks (matches the WAL's).
  static constexpr size_t kCallbackCap = 64;
  using LockDone = sim::SmallFn<void(bool acquired), kCallbackCap>;
  using Done = sim::SmallFn<void(), kCallbackCap>;

  GroupLockManager(ReplicationGroup& group, RegionLayout layout,
                   sim::EventLoop& loop, Config cfg);
  GroupLockManager(ReplicationGroup& group, RegionLayout layout,
                   sim::EventLoop& loop)
      : GroupLockManager(group, layout, loop, Config()) {}

  /// Acquires the write lock `lock_id` for `owner` (non-zero) on every
  /// replica, retrying with backoff. done(false) after max_attempts.
  void wr_lock(uint32_t lock_id, uint64_t owner, LockDone done);

  /// Releases a held write lock.
  void wr_unlock(uint32_t lock_id, uint64_t owner, Done done);

  /// Acquires a read lock on one replica.
  void rd_lock(uint32_t lock_id, size_t replica, LockDone done);

  /// Releases a read lock on one replica.
  void rd_unlock(uint32_t lock_id, size_t replica, Done done);

  const Stats& stats() const { return stats_; }

 private:
  /// One in-flight write-lock acquisition.
  struct WrOp {
    uint32_t lock_id = 0;
    uint64_t owner = 0;
    int attempts_left = 0;
    bool live = false;
    LockDone done;
  };

  /// One in-flight read-lock acquisition.
  struct RdOp {
    uint32_t lock_id = 0;
    size_t replica = 0;
    int attempts_left = 0;
    bool live = false;
    LockDone done;
  };

  /// One in-flight write-lock release (a single gCAS, but the caller's
  /// continuation can be a full-width Done — too wide for a CasDone
  /// capture, so it parks in a slot and the wire callback carries only
  /// [this, idx]).
  struct UnlockOp {
    bool live = false;
    Done done;
  };

  /// One in-flight CAS read-modify-write loop (reader count add).
  struct AddOp {
    uint64_t offset = 0;
    size_t replica = 0;
    int64_t delta = 0;
    uint64_t guess = 0;
    bool live = false;
    Done done;
  };

  void wr_attempt(uint32_t idx);
  void wr_retry(uint32_t idx);
  void wait_readers_drain(uint32_t idx);
  void wr_finish(uint32_t idx, bool acquired);

  void rd_attempt(uint32_t idx);
  void rd_retry(uint32_t idx);
  void rd_recheck(uint32_t idx);
  void rd_finish(uint32_t idx, bool acquired);

  void unlock_finish(uint32_t idx);

  void cas_loop_add(uint64_t offset, size_t replica, int64_t delta,
                    Done done);
  void add_attempt(uint32_t idx);

  ExecMap all_replicas() const {
    return ExecMap::all(group_.group_size());
  }

  ReplicationGroup& group_;
  RegionLayout layout_;
  sim::EventLoop& loop_;
  Config cfg_;
  Stats stats_;

  // Slot pools (grow to high water, then recycle via the free lists).
  std::vector<WrOp> wr_ops_;
  std::vector<uint32_t> wr_free_;
  std::vector<RdOp> rd_ops_;
  std::vector<uint32_t> rd_free_;
  std::vector<UnlockOp> unlock_ops_;
  std::vector<uint32_t> unlock_free_;
  std::vector<AddOp> add_ops_;
  std::vector<uint32_t> add_free_;
};

}  // namespace hyperloop::core
