#include "core/sharded_reader.h"

#include <algorithm>
#include <cstring>

namespace hyperloop::core {

ShardedReader::ShardedReader(
    std::vector<std::unique_ptr<RemoteReader>> shards, ShardRouter router)
    : shards_(std::move(shards)), router_(router) {
  assert(!shards_.empty());
  assert(router_.shards == shards_.size() &&
         "router shard count must match the reader pool");
}

ShardedReader::~ShardedReader() { stop(); }

void ShardedReader::read(uint64_t offset, uint32_t len, ReadDone done) {
  assert(!stopped_ && "read on a stopped reader");
  assert(len > 0);
  const uint32_t s = router_.shard_of(offset);
  assert(s == router_.shard_of(offset + len - 1) &&
         "read straddles a routing boundary");
  ++stats_.reads_issued;
  stats_.read_bytes += len;
  shards_[s]->read(offset, len, std::move(done));
}

void ShardedReader::read_from(size_t replica, uint64_t offset, uint32_t len,
                              ReadDone done) {
  assert(!stopped_ && "read on a stopped reader");
  assert(len > 0);
  const uint32_t s = router_.shard_of(offset);
  assert(s == router_.shard_of(offset + len - 1) &&
         "read straddles a routing boundary");
  ++stats_.reads_issued;
  stats_.read_bytes += len;
  shards_[s]->read_from(replica, offset, len, std::move(done));
}

uint32_t ShardedReader::acquire_join() {
  if (join_free_.empty()) {
    join_ops_.emplace_back();
    return static_cast<uint32_t>(join_ops_.size() - 1);
  }
  const uint32_t idx = join_free_.back();
  join_free_.pop_back();
  return idx;
}

void ShardedReader::readv(const ReadVec& extents, ReadDone done) {
  assert(!stopped_ && "read on a stopped reader");
  assert(!extents.empty());
  const uint32_t s0 = router_.shard_of(extents[0].offset);
  bool uniform = true;
  for (const ReadExtent& e : extents) {
    assert(e.len > 0);
    assert(router_.shard_of(e.offset) ==
               router_.shard_of(e.offset + e.len - 1) &&
           "extent straddles a routing boundary");
    if (router_.shard_of(e.offset) != s0) uniform = false;
  }
  ++stats_.reads_issued;
  stats_.read_bytes += extents.total_len();
  // Fast path: one shard owns the whole batch — forward untouched, the
  // shard reader assembles and completes it (no join, no extra copy).
  if (uniform) {
    shards_[s0]->readv(extents, std::move(done));
    return;
  }

  // Scatter: split per shard, issue each sub-batch on its own chain
  // (its own QPs and doorbell), rejoin via a pooled index-captured slot.
  ++stats_.scatter_reads;
  const uint32_t idx = acquire_join();
  JoinOp& op = join_ops_[idx];
  if (op.sub.size() < shards_.size()) op.sub.resize(shards_.size());
  for (JoinOp::Sub& sub : op.sub) sub.extents.clear();
  uint32_t total = 0;
  for (const ReadExtent& e : extents) {
    JoinOp::Sub& sub = op.sub[router_.shard_of(e.offset)];
    sub.dst_off[sub.extents.size()] = total;
    sub.extents.push_back(e);
    total += e.len;
  }
  op.remaining = 0;
  for (const JoinOp::Sub& sub : op.sub) {
    if (!sub.extents.empty()) ++op.remaining;
  }
  op.total_len = total;
  op.live = true;
  op.started = shards_[0]->client().loop().now();
  if (op.scratch.size() < total) op.scratch.resize(total);
  op.done = std::move(done);
  for (uint32_t s = 0; s < shards_.size(); ++s) {
    if (join_ops_[idx].sub[s].extents.empty()) continue;
    shards_[s]->readv(join_ops_[idx].sub[s].extents,
                      ReadDone([this, idx, s](ReadView view) {
                        child_done(idx, s, view);
                      }));
  }
}

void ShardedReader::child_done(uint32_t idx, uint32_t shard, ReadView view) {
  JoinOp& op = join_ops_[idx];
  assert(op.live && op.remaining > 0);
  // The child view is shard `shard`'s sub-extents concatenated in order;
  // scatter each segment to its recorded place in the logical output.
  const JoinOp::Sub& sub = op.sub[shard];
  uint32_t src = 0;
  for (uint32_t i = 0; i < sub.extents.size(); ++i) {
    std::memcpy(op.scratch.data() + sub.dst_off[i], view.data() + src,
                sub.extents[i].len);
    src += sub.extents[i].len;
  }
  assert(src == view.size());
  if (--op.remaining > 0) return;
  scatter_latency_.record(static_cast<int64_t>(
      shards_[0]->client().loop().now() - op.started));
  op.live = false;
  ReadDone done = std::move(op.done);
  // Snapshot before invoking: a read issued from inside the callback can
  // grow join_ops_ (invalidating `op`); the scratch buffer stays put.
  const uint8_t* data = op.scratch.data();
  const uint32_t len = op.total_len;
  done(ReadView(data, len));
  join_free_.push_back(idx);
}

void ShardedReader::scan(uint64_t offset, uint64_t len, ReadDone done) {
  assert(len > 0);
  ReadVec v;
  uint64_t off = offset;
  const uint64_t end = offset + len;
  while (off < end) {
    const uint64_t b = std::min(router_.next_boundary(off), end);
    const uint32_t s = router_.shard_of(off);
    // Adjacent chunks owned by the same shard merge into one extent
    // (identity addressing keeps them contiguous on the replica too).
    if (!v.empty() &&
        router_.shard_of(v.entries[v.count - 1].offset) == s &&
        v.entries[v.count - 1].offset + v.entries[v.count - 1].len == off) {
      v.entries[v.count - 1].len += static_cast<uint32_t>(b - off);
    } else {
      assert(!v.full() && "scan spans too many routing chunks");
      v.push_back(ReadExtent{off, static_cast<uint32_t>(b - off)});
    }
    off = b;
  }
  readv(v, std::move(done));
}

uint64_t ShardedReader::replica_frags(size_t i) const {
  uint64_t n = 0;
  for (const auto& r : shards_) {
    if (i < r->num_replicas()) n += r->replica_frags(i);
  }
  return n;
}

stats::Histogram ShardedReader::read_latency() const {
  stats::Histogram merged;
  for (const auto& r : shards_) merged.merge(r->latency());
  return merged;
}

void ShardedReader::stop() {
  if (stopped_) return;
  stopped_ = true;
  for (JoinOp& op : join_ops_) {
    if (!op.live) continue;
    op.live = false;
    op.done.reset();
    ++stats_.aborted_reads;
  }
  for (auto& r : shards_) r->stop();
}

}  // namespace hyperloop::core
