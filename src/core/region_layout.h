// Layout of the replicated region shared by every replica (and the client's
// local copy). The WAL, lock table and database all live at fixed offsets
// inside one region so the group primitives can address them uniformly:
//
//   [ control block | lock table | write-ahead log | database ]
//
// Control block (64 B):
//   u64 log_head   offset of the first unprocessed record (relative to log)
//   u64 log_tail   offset one past the last appended record
//   u64 epoch      membership epoch (bumped by reconfiguration)
//
// Sharded deployments (PR 8) carve one group region into K back-to-back
// slices, each a complete layout of its own: slice s sets `base` to
// s * region_size and every derived offset (control block, locks, log,
// db) lands inside [base, base + region_size). `base = 0` is the classic
// single-shard layout, so existing callers are unchanged.
#pragma once

#include <cstdint>

namespace hyperloop::core {

struct RegionLayout {
  uint64_t region_size = 4u << 20;
  uint32_t num_locks = 64;
  uint64_t log_size = 1u << 20;
  /// Region offset this layout starts at (shard slice base).
  uint64_t base = 0;

  static constexpr uint64_t kControlBase = 0;
  static constexpr uint64_t kControlSize = 64;
  static constexpr uint64_t kHeadOffset = 0;   ///< within control block
  static constexpr uint64_t kTailOffset = 8;
  static constexpr uint64_t kEpochOffset = 16;

  /// Bytes per lock-table entry: [writer word (8)] [reader count (8)].
  static constexpr uint64_t kLockEntrySize = 16;

  uint64_t control_base() const { return base + kControlBase; }
  uint64_t head_ptr_offset() const { return control_base() + kHeadOffset; }
  uint64_t tail_ptr_offset() const { return control_base() + kTailOffset; }
  uint64_t epoch_ptr_offset() const { return control_base() + kEpochOffset; }

  uint64_t lock_table_base() const { return control_base() + kControlSize; }
  uint64_t lock_offset(uint32_t lock_id) const {
    return lock_table_base() + uint64_t{lock_id} * kLockEntrySize;
  }
  uint64_t reader_offset(uint32_t lock_id) const {
    return lock_offset(lock_id) + 8;
  }
  uint64_t log_base() const {
    // 64-byte align after the lock table.
    const uint64_t b = lock_table_base() + uint64_t{num_locks} * kLockEntrySize;
    return (b + 63) & ~uint64_t{63};
  }
  uint64_t db_base() const { return log_base() + log_size; }
  uint64_t db_size() const { return base + region_size - db_base(); }

  bool valid() const {
    return db_base() < base + region_size && log_size >= 4096;
  }

  /// The slice layout for shard `s` of equal slices: identical shape,
  /// based `s` slices in.
  RegionLayout shard_slice(uint32_t s) const {
    RegionLayout l = *this;
    l.base = base + uint64_t{s} * region_size;
    return l;
  }
};

}  // namespace hyperloop::core
