// ACID transactions over a replication group (§3.1's representative flow):
//
//   1. acquire group write locks (gCAS), in sorted order (no deadlock)
//   2. Append the redo record to the replicated WAL (gWRITE + gFLUSH)
//      -- the transaction is durable & committed here --
//   3. ExecuteAndAdvance: apply the record on every replica
//      (gMEMCPY + gFLUSH) and truncate (gWRITE + gFLUSH)
//   4. release the locks (gCAS)
//
// Atomicity: redo records are applied entirely or (after a crash) replayed
// from the committed log. Consistency/Isolation: group locks. Durability:
// every step is gFLUSHed. With HyperLoop as the group backend, steps 2-4
// never involve a replica CPU.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/group.h"
#include "core/lock.h"
#include "core/wal.h"

namespace hyperloop::core {

class TransactionManager {
 public:
  struct Stats {
    uint64_t committed = 0;
    uint64_t aborted = 0;  ///< lock acquisition gave up
  };

  /// Per-transaction state rides in one shared_ptr; continuations capture
  /// [this, st(, index)], so they stay inside the inline capacity.
  using TxnDone = sim::SmallFn<void(bool committed), 64>;

  TransactionManager(ReplicationGroup& group, ReplicatedWal& wal,
                     GroupLockManager& locks, sim::EventLoop& loop)
      : group_(group), wal_(wal), locks_(locks), loop_(loop) {}

  /// Runs one transaction: `writes` are redo entries against the DB area,
  /// `lock_ids` the stripes it touches. done(true) after locks released;
  /// done(false) if locks could not be acquired (nothing was written).
  void execute(std::vector<ReplicatedWal::Entry> writes,
               std::vector<uint32_t> lock_ids, TxnDone done);

  const Stats& stats() const { return stats_; }

 private:
  void acquire_next(std::shared_ptr<struct TxnState> st);
  void release_and_abort(std::shared_ptr<struct TxnState> st, size_t i);
  void commit_release(std::shared_ptr<struct TxnState> st, size_t i);

  ReplicationGroup& group_;
  ReplicatedWal& wal_;
  GroupLockManager& locks_;
  sim::EventLoop& loop_;
  Stats stats_;
  uint64_t next_txn_id_ = 1;
};

}  // namespace hyperloop::core
