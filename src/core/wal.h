// Replicated write-ahead log (§5, "Log Replication" / "Log Processing").
//
// Records are redo logs: lists of (db_offset, bytes) modifications. The
// client appends a record with Append() — a gWRITE+gFLUSH of the record
// body followed by a gWRITE+gFLUSH of the tail pointer, so the tail is the
// commit point: a record is committed iff the durable tail covers it.
// ExecuteAndAdvance() applies the record at the head on every replica with
// one gMEMCPY+gFLUSH per entry and then advances the durable head
// (truncation). Replay() performs crash recovery: it re-applies every
// committed-but-unprocessed record, which is idempotent because records
// are pure redo.
//
// Log space is a ring addressed by monotonically increasing virtual
// offsets (physical = v % log_size); records never straddle the wrap — a
// wrap-marker record pads the tail of the ring instead.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/group.h"
#include "core/region_layout.h"

namespace hyperloop::core {

class ReplicatedWal {
 public:
  struct Entry {
    uint64_t db_offset = 0;  ///< destination, relative to the DB area
    std::vector<uint8_t> data;
  };

  struct Stats {
    uint64_t records_appended = 0;
    uint64_t records_executed = 0;
    uint64_t bytes_appended = 0;
    uint64_t append_failures = 0;  ///< log-full backpressure events
  };

  ReplicatedWal(ReplicationGroup& group, RegionLayout layout);

  /// Appends a redo record. Returns false (and does nothing) if the log
  /// lacks space — the caller must ExecuteAndAdvance (truncate) first.
  /// `done` fires with the record's LSN once the record *and* the tail
  /// pointer are durably replicated.
  bool append(const std::vector<Entry>& entries,
              std::function<void(uint64_t lsn)> done);

  /// Applies the record at the head on all replicas (gMEMCPY+gFLUSH per
  /// entry), then durably advances the head. Returns false if there is
  /// no unprocessed record. `done` fires when the head advance is durable.
  bool execute_and_advance(std::function<void()> done);

  /// Virtual head/tail offsets (head == tail means empty).
  uint64_t head() const { return head_; }
  uint64_t tail() const { return tail_; }
  uint64_t used_bytes() const { return tail_ - head_; }
  uint64_t free_bytes() const { return layout_.log_size - used_bytes(); }
  bool empty() const { return head_ == tail_; }
  const Stats& stats() const { return stats_; }
  const RegionLayout& layout() const { return layout_; }

  /// Crash recovery over a raw region image: re-applies every record in
  /// [head, tail) to the DB area and returns the number applied. Works on
  /// any replica's (or the client's) region bytes via the provided
  /// load/store callbacks. Corrupt (checksum-failing) records stop the
  /// replay — they can only be a torn tail write, which the durable tail
  /// pointer already excludes in normal operation.
  using LoadFn = std::function<void(uint64_t off, void* dst, uint32_t len)>;
  using StoreFn = std::function<void(uint64_t off, const void* src, uint32_t len)>;
  static uint64_t replay(const RegionLayout& layout, const LoadFn& load,
                         const StoreFn& store);

  /// Recovers this WAL's in-memory pointers from the client region
  /// (used after a coordinator restart in tests).
  void reload_pointers();

 private:
  static constexpr uint32_t kRecordMagic = 0x57414C21;  // "WAL!"
  static constexpr uint32_t kWrapMagic = 0x57524150;    // "WRAP"

  struct RecordHeader {
    uint32_t magic = 0;
    uint32_t num_entries = 0;
    uint64_t lsn = 0;
    uint32_t total_len = 0;  ///< whole record, header included
    uint32_t crc = 0;        ///< over the serialized entries
  };
  struct EntryHeader {
    uint64_t db_offset = 0;
    uint32_t len = 0;
    uint32_t pad = 0;
  };

  static uint32_t crc32(const uint8_t* data, size_t len);
  static std::vector<uint8_t> serialize(const std::vector<Entry>& entries,
                                        uint64_t lsn);

  /// Physical offset (within the whole region) of virtual log offset v.
  uint64_t log_phys(uint64_t v) const {
    return layout_.log_base() + (v % layout_.log_size);
  }

  void write_pointer(uint64_t ctrl_offset, uint64_t value,
                     std::function<void()> done);

  ReplicationGroup& group_;
  RegionLayout layout_;
  uint64_t head_ = 0;
  uint64_t tail_ = 0;
  uint64_t next_lsn_ = 1;
  Stats stats_;
};

}  // namespace hyperloop::core
