// Replicated write-ahead log (§5, "Log Replication" / "Log Processing").
//
// Records are redo logs: lists of (db_offset, bytes) modifications. The
// client appends a record with Append(): the record body and the tail
// pointer are replicated together as one gWRITEV+gFLUSH — a single chain
// traversal — with the tail as the *last* extent, so the tail is the
// commit point: a record is committed iff the durable tail covers it.
// ExecuteAndAdvance() drains every committed-but-unprocessed record in
// one batch: an unflushed gMEMCPY per entry applies them on every replica
// and a single flushed head advance (truncation) persists the lot — the
// chain's FIFO order guarantees the trailing gFLUSH lands after every
// apply. Replay() performs crash recovery: it re-applies every
// committed-but-unprocessed record, which is idempotent because records
// are pure redo.
//
// Group commit: at most one gWRITEV batch is in flight at a time (see
// maybe_flush() for why the tail-pointer gather requires that). Appends
// arriving while a batch is outstanding are staged into a bounded ring
// and flushed together — several records plus one shared tail write per
// traversal — amortizing the fixed per-traversal costs (per-hop WQEs,
// descriptor-patch SEND, doorbell) exactly where HyperLoop pays them.
//
// Log space is a ring addressed by monotonically increasing virtual
// offsets (physical = v % log_size); records never straddle the wrap — a
// wrap-marker record pads the tail of the ring instead.
//
// The append/execute datapath is allocation-free in steady state: records
// are serialized piecewise straight into the client's staging region (no
// temporary buffer), staged/in-flight batch state lives in rings and
// fixed arrays, and in-flight executions live in a pooled slot table
// indexed by small integers. Completion callbacks are sim::SmallFn, sized
// so every continuation in this file stays within the inline capacity.
#pragma once

#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <memory>
#include <span>
#include <vector>

#include "core/group.h"
#include "core/region_layout.h"
#include "sim/event_loop.h"
#include "sim/ring.h"
#include "sim/small_fn.h"
#include "stats/histogram.h"

namespace hyperloop::core {

class ReplicatedWal {
 public:
  /// Inline capacity for WAL completion callbacks. 64 bytes covers the
  /// transaction layer's continuations (a shared_ptr to op state plus a
  /// few words); anything bigger falls back to one allocation, which the
  /// alloc-gate test would catch on the steady-state path.
  static constexpr size_t kCallbackCap = 64;
  using AppendDone = sim::SmallFn<void(uint64_t lsn), kCallbackCap>;
  using Done = sim::SmallFn<void(), kCallbackCap>;

  struct Entry {
    uint64_t db_offset = 0;  ///< destination, relative to the DB area
    std::vector<uint8_t> data;
  };

  struct Stats {
    uint64_t records_appended = 0;
    uint64_t records_executed = 0;
    uint64_t bytes_appended = 0;
    uint64_t append_failures = 0;   ///< log-full / window-full backpressure
    uint64_t gwritev_batches = 0;   ///< chain traversals issued by appends
    uint64_t exec_batches = 0;      ///< batched execute_and_advance drains
  };

  /// Group-commit tuning. The defaults batch transparently; callers that
  /// want per-record issue semantics back set staged_capacity = 1.
  struct Options {
    /// Staged-record window: appends arriving while a batch is in flight
    /// queue here; when it is full, append() fails (append_failures) just
    /// like a full log. Must be >= 1.
    uint32_t staged_capacity = 64;
    /// Clock for the commit-latency histogram; nullptr disables timing.
    sim::EventLoop* loop = nullptr;
  };

  ReplicatedWal(ReplicationGroup& group, RegionLayout layout);
  ReplicatedWal(ReplicationGroup& group, RegionLayout layout, Options opts);

  /// Appends a redo record. Returns false (and does nothing) if the log
  /// or the group-commit window lacks space — the caller must
  /// ExecuteAndAdvance (truncate) first. `done` fires with the record's
  /// LSN once the record *and* the tail pointer are durably replicated.
  /// Span-style view: vectors, arrays and braced lists share one
  /// allocation-free signature.
  bool append(std::span<const Entry> entries, AppendDone done);
  bool append(std::initializer_list<Entry> entries, AppendDone done) {
    return append(std::span<const Entry>(entries.begin(), entries.size()),
                  std::move(done));
  }

  /// Drains the whole committed backlog — [head, durable tail), every
  /// record whose commit batch has acked — as one batch: an unflushed
  /// gMEMCPY per entry applies the records on every replica,
  /// then a single flushed head advance (log truncation) persists the
  /// batch — one trailing gFLUSH instead of one per record, mirroring how
  /// append() group-commits the log write. Returns false if there is no
  /// unprocessed record (a concurrent caller may have claimed the
  /// backlog). `done` fires when the head advance is durable.
  bool execute_and_advance(Done done);

  /// Virtual head/tail offsets (head == tail means empty).
  uint64_t head() const { return head_; }
  uint64_t tail() const { return tail_; }
  uint64_t used_bytes() const { return tail_ - head_; }
  uint64_t free_bytes() const { return layout_.log_size - used_bytes(); }
  bool empty() const { return head_ == tail_; }
  const Stats& stats() const { return stats_; }
  const RegionLayout& layout() const { return layout_; }

  /// Records per issued gWRITEV batch (group-commit amortization ratio).
  const stats::Histogram& records_per_gwrite() const {
    return records_per_gwrite_;
  }
  /// append() call to durable-commit latency (needs Options::loop).
  const stats::Histogram& commit_latency() const { return commit_latency_; }
  /// Appends staged but not yet issued (waiting for the in-flight batch).
  size_t staged_records() const { return staged_.size(); }

  /// Crash recovery over a raw region image: re-applies every record in
  /// [head, tail) to the DB area and returns the number applied. Works on
  /// any replica's (or the client's) region bytes via the provided
  /// load/store callables, `load(off, dst, len)` / `store(off, src, len)`.
  /// Corrupt (checksum-failing) records stop the replay — they can only
  /// be a torn tail write, which the durable tail pointer already
  /// excludes in normal operation. Cold path: may allocate.
  template <typename LoadFn, typename StoreFn>
  static uint64_t replay(const RegionLayout& layout, LoadFn&& load,
                         StoreFn&& store);

  /// Recovers this WAL's in-memory pointers from the client region
  /// (used after a coordinator restart in tests).
  void reload_pointers();

 private:
  static constexpr uint32_t kRecordMagic = 0x57414C21;  // "WAL!"
  static constexpr uint32_t kWrapMagic = 0x57524150;    // "WRAP"

  struct RecordHeader {
    uint32_t magic = 0;
    uint32_t num_entries = 0;
    uint64_t lsn = 0;
    uint32_t total_len = 0;  ///< whole record, header included
    uint32_t crc = 0;        ///< over the serialized entries
  };
  struct EntryHeader {
    uint64_t db_offset = 0;
    uint32_t len = 0;
    uint32_t pad = 0;
  };

  /// One record staged for (or riding in) a group-commit batch. Carries
  /// everything needed to build its extents and complete its append.
  struct PendingRecord {
    uint64_t rec_voff = 0;
    uint32_t rec_len = 0;
    uint32_t wrap_len = 0;  ///< wrap-marker pad preceding the record, 0 = none
    uint64_t lsn = 0;
    sim::Time start = 0;  ///< append() time (commit-latency histogram)
    AppendDone done;
  };

  /// One in-flight ExecuteAndAdvance batch. Pooled (free-list) so
  /// concurrent executions — the two-phase layer runs several — recycle
  /// slots instead of allocating shared counters per batch. Callbacks
  /// capture the slot *index*, never a pointer: the pool vector may grow.
  struct ExecOp {
    uint64_t rec_voff = 0;   ///< batch start (virtual offset)
    uint32_t total_len = 0;  ///< batch span, wrap markers included
    uint32_t remaining = 0;  ///< gMEMCPY acks outstanding
    uint32_t records = 0;    ///< records drained by this batch
    bool live = false;
    Done done;
  };

  static uint32_t crc32_update(uint32_t crc, const void* data, size_t len);
  static uint32_t crc32(const void* data, size_t len) {
    return ~crc32_update(0xFFFFFFFFu, data, len);
  }

  /// Serializes the record piecewise straight into the log ring at
  /// virtual offset `voff` (header, then per entry: EntryHeader, data,
  /// zero pad to 8B), computing the body checksum incrementally. Returns
  /// the record's total length. No temporary buffer.
  uint32_t stage_record(std::span<const Entry> entries, uint64_t lsn,
                        uint64_t voff);

  /// Issues the next group-commit batch if none is in flight: packs as
  /// many staged records (plus their wrap markers) as fit in one
  /// ExtentVec, reserving the last slot for the shared tail-pointer
  /// extent, and replicates them in one gwritev+gFLUSH.
  void maybe_flush();
  void on_batch_done();

  uint32_t acquire_exec_op();
  void finish_exec(uint32_t idx);

  /// Physical offset (within the whole region) of virtual log offset v.
  uint64_t log_phys(uint64_t v) const {
    return layout_.log_base() + (v % layout_.log_size);
  }

  /// The continuation here feeds straight into ReplicationGroup::gwrite,
  /// so it uses the group-level capacity (kDoneCap): append's tail-write
  /// continuation carries an AppendDone plus the LSN and must stay inline.
  void write_pointer(uint64_t ctrl_offset, uint64_t value,
                     sim::SmallFn<void(), kDoneCap> done);

  ReplicationGroup& group_;
  RegionLayout layout_;
  Options opts_;
  uint64_t head_ = 0;
  uint64_t tail_ = 0;
  /// Durable frontier: end of the last record whose commit batch acked.
  /// Execute drains [head_, durable_tail_) only — records beyond it are
  /// staged or in flight, so the *replicas'* log areas do not hold their
  /// bytes yet and a gMEMCPY there would apply garbage.
  uint64_t durable_tail_ = 0;
  uint64_t next_lsn_ = 1;
  Stats stats_;
  std::vector<ExecOp> exec_ops_;     ///< slot pool, grows to high water
  std::vector<uint32_t> exec_free_;  ///< free slot indices (LIFO)

  // Group-commit state: staged appends wait here for the single in-flight
  // batch; the batch's own records sit in the fixed inflight_ array
  // (bounded by the extent capacity) until the chain ack fires them.
  sim::Ring<PendingRecord> staged_;
  PendingRecord inflight_[ExtentVec::kCapacity];
  uint32_t inflight_count_ = 0;
  bool batch_outstanding_ = false;
  stats::Histogram records_per_gwrite_;
  stats::Histogram commit_latency_;
};

/// Shard-per-log-segment mode (DESIGN.md "Sharded datapath"): K
/// independent ReplicatedWals over one group, segment `s` owning slice
/// `s` of the region (`layout.shard_slice(s)`). Under a ShardedGroup
/// with a range router whose span equals the slice size, each segment's
/// records, tail writes and execute gMEMCPYs ride their own chain —
/// K group-commit pipelines instead of one. LSNs are per-segment.
class ShardedWal {
 public:
  using Entry = ReplicatedWal::Entry;
  using AppendDone = ReplicatedWal::AppendDone;
  using Done = ReplicatedWal::Done;

  /// `slice` is the shard-0 layout (base must be 0); segment `s` uses
  /// `slice.shard_slice(s)`.
  ShardedWal(ReplicationGroup& group, RegionLayout slice, uint32_t shards)
      : ShardedWal(group, slice, shards, ReplicatedWal::Options{}) {}
  ShardedWal(ReplicationGroup& group, RegionLayout slice, uint32_t shards,
             ReplicatedWal::Options opts);

  uint32_t shards() const { return static_cast<uint32_t>(wals_.size()); }
  ReplicatedWal& shard(size_t s) { return *wals_[s]; }
  const ReplicatedWal& shard(size_t s) const { return *wals_[s]; }

  /// Appends to segment `s` (callers with a partition key route here).
  bool append_to(uint32_t s, std::span<const Entry> entries,
                 AppendDone done) {
    return wals_[s]->append(entries, std::move(done));
  }
  bool append_to(uint32_t s, std::initializer_list<Entry> entries,
                 AppendDone done) {
    return append_to(s, std::span<const Entry>(entries.begin(), entries.size()),
                     std::move(done));
  }
  /// Keyless appends spread round-robin across segments.
  bool append(std::span<const Entry> entries, AppendDone done);
  bool append(std::initializer_list<Entry> entries, AppendDone done) {
    return append(std::span<const Entry>(entries.begin(), entries.size()),
                  std::move(done));
  }
  bool execute_and_advance(uint32_t s, Done done) {
    return wals_[s]->execute_and_advance(std::move(done));
  }

  uint64_t used_bytes() const;  ///< summed over segments
  ReplicatedWal::Stats totals() const;

 private:
  std::vector<std::unique_ptr<ReplicatedWal>> wals_;
  uint32_t rr_ = 0;
};

template <typename LoadFn, typename StoreFn>
uint64_t ReplicatedWal::replay(const RegionLayout& layout, LoadFn&& load,
                               StoreFn&& store) {
  uint64_t head = 0, tail = 0;
  load(layout.head_ptr_offset(), &head, 8);
  load(layout.tail_ptr_offset(), &tail, 8);

  auto phys = [&](uint64_t v) {
    return layout.log_base() + (v % layout.log_size);
  };

  uint64_t applied = 0;
  uint64_t v = head;
  // Streaming scratch: records are verified and applied through this
  // fixed chunk, so replay's footprint is O(1) instead of O(record).
  uint8_t chunk[512];
  constexpr uint32_t kChunk = sizeof(chunk);
  while (v < tail) {
    RecordHeader hdr;
    load(phys(v), &hdr, sizeof(hdr));
    if (hdr.magic == kWrapMagic) {
      v += hdr.total_len;
      continue;
    }
    if (hdr.magic != kRecordMagic || hdr.total_len == 0 ||
        v + hdr.total_len > tail) {
      break;  // torn tail; committed prefix ends here
    }
    // Pass 1: fold the body through the CRC chunk by chunk.
    const uint32_t body = hdr.total_len - sizeof(RecordHeader);
    uint32_t crc = 0xFFFFFFFFu;
    for (uint32_t off = 0; off < body;) {
      const uint32_t n = body - off < kChunk ? body - off : kChunk;
      load(phys(v + sizeof(RecordHeader) + off), chunk, n);
      crc = crc32_update(crc, chunk, n);
      off += n;
    }
    if (~crc != hdr.crc) break;
    // Pass 2: walk the entries, streaming each one's bytes to the store.
    uint64_t p = v + sizeof(RecordHeader);
    for (uint32_t i = 0; i < hdr.num_entries; ++i) {
      EntryHeader eh;
      load(phys(p), &eh, sizeof(eh));
      p += sizeof(eh);
      for (uint32_t off = 0; off < eh.len;) {
        const uint32_t n = eh.len - off < kChunk ? eh.len - off : kChunk;
        load(phys(p + off), chunk, n);
        store(layout.db_base() + eh.db_offset + off, chunk, n);
        off += n;
      }
      p += (eh.len + 7) & ~uint64_t{7};
    }
    ++applied;
    v += hdr.total_len;
  }
  return applied;
}

}  // namespace hyperloop::core
