#include "core/naive_group.h"

#include <cassert>
#include <cstring>

namespace hyperloop::core {

using rdma::Addr;
using rdma::RecvWqe;
using rdma::Sge;
using rdma::Wqe;

namespace {

uint32_t next_pow2(uint32_t v) {
  uint32_t n = 1;
  while (n < v) n <<= 1;
  return n;
}

}  // namespace

NaiveRdmaGroup::NaiveRdmaGroup(Server& client, std::vector<Server*> replicas,
                               Config cfg)
    : client_(client), cfg_(cfg) {
  assert(!replicas.empty() && replicas.size() <= kMaxGroup);
  assert(cfg_.max_inflight * 2 <= cfg_.recv_slots);
  replicas_.resize(replicas.size());
  for (size_t i = 0; i < replicas.size(); ++i) {
    replicas_[i].server = replicas[i];
    replicas_[i].index = i;
  }

  client_region_ = client_.nvm().alloc(cfg_.region_size, 4096);
  client_cmd_ring_ =
      client_.mem().alloc(sizeof(Cmd) * cfg_.max_inflight * 2, 64);
  client_ack_ring_ =
      client_.mem().alloc(sizeof(Cmd) * cfg_.max_inflight * 2, 64);
  const auto ack_mr = client_.nic().register_mr(
      client_ack_ring_, sizeof(Cmd) * cfg_.max_inflight * 2,
      rdma::kLocalWrite);
  client_ack_lkey_ = ack_mr.lkey;

  cq_down_ = client_.nic().create_cq();
  cq_up_ = client_.nic().create_cq();
  qp_down_ =
      client_.nic().create_qp(cq_down_, nullptr, cfg_.max_inflight * 4 + 16);
  qp_up_ = client_.nic().create_qp(nullptr, cq_up_, 16);

  pending_.resize(next_pow2(cfg_.max_inflight * 2));
  pending_mask_ = static_cast<uint32_t>(pending_.size() - 1);

  for (size_t i = 0; i < replicas_.size(); ++i) setup_replica(i);
  wire_chain();

  // Client ACK receive ring.
  for (uint32_t s = 0; s < cfg_.max_inflight * 2; ++s) {
    RecvWqe r;
    r.wr_id = s;
    r.sges.push_back(Sge{client_ack_ring_ + uint64_t{s} * sizeof(Cmd),
                         sizeof(Cmd), client_ack_lkey_});
    client_.nic().post_recv(qp_up_, std::move(r));
  }
  cq_up_->set_notify([this] { on_client_ack(); });
  cq_up_->arm_notify();
}

NaiveRdmaGroup::~NaiveRdmaGroup() { stop(); }

void NaiveRdmaGroup::stop() {
  if (stopped_) return;
  stopped_ = true;

  // Drop (never invoke) pending completion callbacks and queued commands.
  for (PendingSlot& slot : pending_) {
    if (!slot.live) continue;
    slot.live = false;
    slot.done.reset();
    slot.cas_done.reset();
    ++aborted_ops_;
  }
  aborted_ops_ += waiting_.size();
  waiting_.clear();
  inflight_ = 0;

  // Release NIC resources; QPs before the CQs they reference.
  for (Replica& r : replicas_) {
    rdma::Nic& nic = r.server->nic();
    if (r.qp_prev) nic.destroy_qp(r.qp_prev);
    if (r.qp_next) nic.destroy_qp(r.qp_next);
    if (r.cq_recv) nic.destroy_cq(r.cq_recv);
    if (r.cq_send) nic.destroy_cq(r.cq_send);
    r.qp_prev = r.qp_next = nullptr;
    r.cq_recv = r.cq_send = nullptr;
  }
  rdma::Nic& nic = client_.nic();
  if (qp_down_) nic.destroy_qp(qp_down_);
  if (qp_up_) nic.destroy_qp(qp_up_);
  if (cq_down_) nic.destroy_cq(cq_down_);
  if (cq_up_) nic.destroy_cq(cq_up_);
  qp_down_ = qp_up_ = nullptr;
  cq_down_ = cq_up_ = nullptr;
}

void NaiveRdmaGroup::setup_replica(size_t i) {
  Replica& r = replicas_[i];
  rdma::Nic& nic = r.server->nic();
  rdma::HostMemory& mem = r.server->mem();

  r.data_base = r.server->nvm().alloc(cfg_.region_size, 4096);
  r.data_mr = nic.register_mr(
      r.data_base, cfg_.region_size,
      rdma::kRemoteRead | rdma::kRemoteWrite | rdma::kRemoteAtomic |
          rdma::kLocalWrite);

  r.cmd_ring = mem.alloc(sizeof(Cmd) * cfg_.recv_slots, 64);
  const auto cmd_mr = nic.register_mr(
      r.cmd_ring, sizeof(Cmd) * cfg_.recv_slots, rdma::kLocalWrite);
  r.cmd_lkey = cmd_mr.lkey;

  r.cq_recv = nic.create_cq();
  r.cq_send = nic.create_cq();
  r.qp_prev = nic.create_qp(nullptr, r.cq_recv, 16);
  r.qp_next = nic.create_qp(r.cq_send, nullptr, cfg_.recv_slots * 2 + 16);

  for (uint32_t s = 0; s < cfg_.recv_slots; ++s) post_recv_slot(r, s);

  r.pid = r.server->sched().create_process(r.server->name() + "-naive-repl");
  if (cfg_.mode == Mode::kPolling) {
    const bool ok = r.server->sched().pin_core(r.pid);
    assert(ok && "no free core to pin for polling replica");
    (void)ok;
  }
  if (cfg_.mode == Mode::kSharedPolling) {
    shared_poll_loop(i);
  } else {
    r.cq_recv->set_notify([this, i] { on_replica_notify(i); });
    r.cq_recv->arm_notify();
  }
}

void NaiveRdmaGroup::shared_poll_loop(size_t i) {
  // The poll loop spins in slices through the shared run queue; messages
  // that arrived during the previous rotation are handled at the start of
  // the next slice (the handling chain re-enters the poll loop when the
  // CQ is drained).
  Replica& r = replicas_[i];
  r.server->sched().submit(
      r.pid, cfg_.poll_slice,
      [this, i] {
        if (stopped_) return;
        Replica& rr = replicas_[i];
        if (rr.cq_recv->available() > 0) {
          // Handle pending messages (replica_drain chains per message and
          // falls back into the poll loop via arm-notify... for shared
          // polling we re-enter the loop directly instead).
          replica_drain(i);
        } else {
          shared_poll_loop(i);
        }
      },
      /*fresh_wakeup=*/false);
}

void NaiveRdmaGroup::wire_chain() {
  client_.nic().connect(qp_down_, replicas_.front().server->nic().id(),
                        replicas_.front().qp_prev->qpn);
  replicas_.front().server->nic().connect(
      replicas_.front().qp_prev, client_.nic().id(), qp_down_->qpn);
  for (size_t i = 0; i + 1 < replicas_.size(); ++i) {
    replicas_[i].server->nic().connect(
        replicas_[i].qp_next, replicas_[i + 1].server->nic().id(),
        replicas_[i + 1].qp_prev->qpn);
    replicas_[i + 1].server->nic().connect(
        replicas_[i + 1].qp_prev, replicas_[i].server->nic().id(),
        replicas_[i].qp_next->qpn);
  }
  replicas_.back().server->nic().connect(
      replicas_.back().qp_next, client_.nic().id(), qp_up_->qpn);
  client_.nic().connect(qp_up_, replicas_.back().server->nic().id(),
                        replicas_.back().qp_next->qpn);
}

void NaiveRdmaGroup::post_recv_slot(Replica& r, uint64_t slot) {
  RecvWqe recv;
  recv.wr_id = slot;
  recv.sges.push_back(Sge{r.cmd_ring + slot * sizeof(Cmd), sizeof(Cmd),
                          r.cmd_lkey});
  r.server->nic().post_recv(r.qp_prev, std::move(recv));
}

// ----------------------------------------------------------- replica path --

void NaiveRdmaGroup::on_replica_notify(size_t i) {
  Replica& r = replicas_[i];
  // The replica process is woken (event mode: run-queue wait + wakeup
  // overhead; polling mode: pinned core, ~poll interval) and charged the
  // handler + parse cost before it can touch the message.
  r.server->sched().submit(r.pid, cfg_.handler_base + cfg_.per_message,
                           [this, i] { replica_drain(i); });
}

sim::Duration NaiveRdmaGroup::message_cost(const Cmd& cmd) const {
  sim::Duration extra = 0;
  if (cmd.type == 1) {  // gmemcpy executes on the CPU
    extra += static_cast<sim::Duration>(cfg_.copy_ns_per_byte *
                                        static_cast<double>(cmd.len));
  }
  if (cmd.type == 2) extra += sim::nsec(200);  // CAS
  if (cmd.flush != 0) {
    extra += cfg_.persist_base +
             static_cast<sim::Duration>(cfg_.persist_ns_per_byte *
                                        static_cast<double>(cmd.len));
  }
  return extra;
}

void NaiveRdmaGroup::replica_drain(size_t i) {
  if (stopped_) return;
  Replica& r = replicas_[i];
  rdma::Cqe cqe;
  if (!r.cq_recv->poll(&cqe)) {
    if (cfg_.mode == Mode::kSharedPolling) {
      shared_poll_loop(i);
    } else {
      r.cq_recv->arm_notify();
    }
    return;
  }
  const uint64_t slot = cqe.wr_id;
  Cmd cmd = r.server->mem().read_obj<Cmd>(r.cmd_ring + slot * sizeof(Cmd));

  auto finish = [this, i, slot, cmd] {
    if (stopped_) return;
    Replica& rr = replicas_[i];
    execute_and_forward(i, cmd);
    post_recv_slot(rr, slot % cfg_.recv_slots);
    if (rr.cq_recv->available() > 0) {
      // More messages pending: keep the process running (no fresh wakeup,
      // but it re-queues for a core, i.e. can be preempted).
      rr.server->sched().submit(rr.pid, cfg_.per_message,
                                [this, i] { replica_drain(i); },
                                /*fresh_wakeup=*/false);
    } else if (cfg_.mode == Mode::kSharedPolling) {
      shared_poll_loop(i);
    } else {
      rr.cq_recv->arm_notify();
      if (rr.cq_recv->available() > 0) on_replica_notify(i);
    }
  };

  const sim::Duration extra = message_cost(cmd);
  if (extra > 0) {
    r.server->sched().submit(r.pid, extra, std::move(finish),
                             /*fresh_wakeup=*/false);
  } else {
    finish();
  }
}

void NaiveRdmaGroup::execute_and_forward(size_t i, Cmd cmd) {
  Replica& r = replicas_[i];
  rdma::HostMemory& mem = r.server->mem();

  switch (cmd.type) {
    case 0: {  // gwrite: upstream already DMA'd the data into our region
      if (cmd.flush != 0) {
        r.server->nvm().persist(r.data_base + cmd.offset, cmd.len);
      }
      break;
    }
    case 1: {  // gmemcpy: CPU copies log -> data
      mem.copy(r.data_base + cmd.dst, r.data_base + cmd.offset, cmd.len);
      if (cmd.flush != 0) {
        r.server->nvm().persist(r.data_base + cmd.dst, cmd.len);
      }
      break;
    }
    case 2: {  // gcas
      if ((cmd.exec_mask >> i) & 1u) {
        uint64_t old = 0;
        mem.read(r.data_base + cmd.offset, &old, sizeof(old));
        if (old == cmd.expected) {
          mem.write(r.data_base + cmd.offset, &cmd.desired,
                    sizeof(cmd.desired));
        }
        cmd.result[i] = old;
      }
      break;
    }
    default:
      assert(false && "unknown command");
  }

  // Stage the (possibly updated) command back into the slot buffer and
  // forward it. For gwrite, forward the data first.
  const uint64_t slot_addr =
      r.cmd_ring + (cmd.seq % cfg_.recv_slots) * sizeof(Cmd);
  mem.write_obj(slot_addr, cmd);

  if (i + 1 < replicas_.size()) {
    const Replica& next = replicas_[i + 1];
    if (cmd.type == 0 && cmd.len > 0) {
      Wqe data = rdma::make_write(r.data_base + cmd.offset, 0,
                                  next.data_base + cmd.offset,
                                  next.data_mr.rkey,
                                  static_cast<uint32_t>(cmd.len));
      // Forwarding bytes the upstream hop already landed here: borrow.
      data.d.flags |= rdma::kWqeFlagZeroCopy;
      r.server->nic().post_send(r.qp_next, data);
    }
    r.server->nic().post_send(
        r.qp_next, rdma::make_send(slot_addr, 0, sizeof(Cmd)));
  } else {
    // Tail of the chain: ACK the client.
    r.server->nic().post_send(
        r.qp_next, rdma::make_send(slot_addr, 0, sizeof(Cmd)));
  }
}

// ------------------------------------------------------------ client path --

void NaiveRdmaGroup::on_client_ack() {
  rdma::Cqe cqe;
  while (cq_up_->poll(&cqe)) {
    const uint64_t slot = cqe.wr_id;
    Cmd cmd = client_.mem().read_obj<Cmd>(client_ack_ring_ +
                                          slot * sizeof(Cmd));
    PendingSlot& ps = pending_[cmd.seq & pending_mask_];
    if (!ps.live || ps.seq != cmd.seq) continue;
    ps.live = false;

    RecvWqe r;
    r.wr_id = slot;
    r.sges.push_back(Sge{client_ack_ring_ + slot * sizeof(Cmd), sizeof(Cmd),
                         client_ack_lkey_});
    client_.nic().post_recv(qp_up_, std::move(r));

    --inflight_;
    if (cmd.type == 2) {
      CasDone handler = std::move(ps.cas_done);
      handler(CasResult(cmd.result, replicas_.size()));
    } else {
      Done handler = std::move(ps.done);
      if (handler) handler();
    }
    if (!waiting_.empty() && inflight_ < cfg_.max_inflight) {
      QueuedCmd next = std::move(waiting_.front());
      waiting_.pop_front();
      ++inflight_;
      issue_cmd(next.cmd, std::move(next.done), std::move(next.cas_done));
    }
  }
  cq_up_->arm_notify();
}

void NaiveRdmaGroup::submit_cmd(Cmd cmd, Done done, CasDone cas_done) {
  assert(!stopped_ && "primitive on a stopped group");
  if (inflight_ >= cfg_.max_inflight) {
    QueuedCmd q;
    q.cmd = cmd;
    q.done = std::move(done);
    q.cas_done = std::move(cas_done);
    waiting_.push_back(std::move(q));
    return;
  }
  ++inflight_;
  issue_cmd(cmd, std::move(done), std::move(cas_done));
}

void NaiveRdmaGroup::issue_cmd(Cmd cmd, Done done, CasDone cas_done) {
  cmd.seq = next_seq_++;
  PendingSlot& ps = pending_[cmd.seq & pending_mask_];
  assert(!ps.live && "pending slot table wrapped past the live window");
  ps.seq = cmd.seq;
  ps.live = true;
  ps.done = std::move(done);
  ps.cas_done = std::move(cas_done);

  if (cmd.type == 1) {
    // The client's copy of the region must stay in sync (head of chain).
    client_.mem().copy(client_region_ + cmd.dst, client_region_ + cmd.offset,
                       cmd.len);
    client_.nvm().persist(client_region_ + cmd.dst, cmd.len);
  }

  const uint64_t slot = cmd.seq % (cfg_.max_inflight * 2);
  const Addr cmd_addr = client_cmd_ring_ + slot * sizeof(Cmd);
  client_.mem().write_obj(cmd_addr, cmd);

  if (cmd.type == 0 && cmd.len > 0) {
    const Replica& r0 = replicas_.front();
    client_.nic().post_send(
        qp_down_,
        rdma::make_write(client_region_ + cmd.offset, 0,
                         r0.data_base + cmd.offset, r0.data_mr.rkey,
                         static_cast<uint32_t>(cmd.len)));
  }
  client_.nic().post_send(qp_down_,
                          rdma::make_send(cmd_addr, 0, sizeof(Cmd)));
}

// ------------------------------------------------------------- primitives --

void NaiveRdmaGroup::gwrite(uint64_t offset, uint32_t len, bool flush,
                            Done done) {
  assert(offset + len <= cfg_.region_size);
  Cmd cmd;
  cmd.type = 0;
  cmd.flush = flush ? 1 : 0;
  cmd.offset = offset;
  cmd.len = len;
  submit_cmd(cmd, std::move(done), CasDone{});
}

void NaiveRdmaGroup::gmemcpy(uint64_t src_offset, uint64_t dst_offset,
                             uint32_t len, bool flush, Done done) {
  assert(src_offset + len <= cfg_.region_size);
  assert(dst_offset + len <= cfg_.region_size);
  Cmd cmd;
  cmd.type = 1;
  cmd.flush = flush ? 1 : 0;
  cmd.offset = src_offset;
  cmd.dst = dst_offset;
  cmd.len = len;
  submit_cmd(cmd, std::move(done), CasDone{});
}

void NaiveRdmaGroup::gcas(uint64_t offset, uint64_t expected,
                          uint64_t desired, ExecMap exec_map, CasDone done) {
  assert(offset + 8 <= cfg_.region_size);
  Cmd cmd;
  cmd.type = 2;
  cmd.offset = offset;
  cmd.expected = expected;
  cmd.desired = desired;
  cmd.exec_mask = exec_map.bits;
  submit_cmd(cmd, Done{}, std::move(done));
}

void NaiveRdmaGroup::gflush(Done done) {
  gwrite(0, 0, /*flush=*/true, std::move(done));
}

void NaiveRdmaGroup::client_store(uint64_t offset, const void* src,
                                  uint32_t len) {
  assert(offset + len <= cfg_.region_size);
  client_.mem().write(client_region_ + offset, src, len);
  client_.nvm().persist(client_region_ + offset, len);
}

void NaiveRdmaGroup::client_load(uint64_t offset, void* dst,
                                 uint32_t len) const {
  client_.mem().read(client_region_ + offset, dst, len);
}

void NaiveRdmaGroup::replica_load(size_t i, uint64_t offset, void* dst,
                                  uint32_t len) const {
  const Replica& r = replicas_.at(i);
  r.server->mem().read(r.data_base + offset, dst, len);
}

sim::Duration NaiveRdmaGroup::replica_cpu_time(size_t i) const {
  const Replica& r = replicas_.at(i);
  return r.server->sched().stats(r.pid).cpu_time;
}

}  // namespace hyperloop::core
