#include "core/server.h"

namespace hyperloop::core {

Server::Server(sim::EventLoop& loop, rdma::Network& net, ServerConfig cfg)
    : cfg_(std::move(cfg)),
      loop_(loop),
      sched_(loop, cfg_.cpu),
      mem_(cfg_.mem_capacity),
      nvm_(mem_, cfg_.nvm_size),
      nic_(loop, net, mem_, &nvm_, cfg_.nic),
      tcp_(loop, net, nic_.id(), sched_, cfg_.tcp) {
  // Extra NICs share the machine's memory and NVM — they are additional
  // ports into the same region, one per shard in sharded deployments.
  for (uint32_t i = 1; i < cfg_.num_nics; ++i) {
    extra_nics_.push_back(
        std::make_unique<rdma::Nic>(loop, net, mem_, &nvm_, cfg_.nic));
  }
}

void Server::add_background_load(int tenants, sim::Rng rng,
                                 sim::BackgroundLoad::Config cfg) {
  cfg.tenants = tenants;
  auto load = std::make_unique<sim::BackgroundLoad>(loop_, sched_, cfg, rng);
  load->start();
  loads_.push_back(std::move(load));
}

Cluster::Cluster(Config cfg)
    : net_(loop_, cfg.network), rng_(cfg.seed) {
  for (int i = 0; i < cfg.num_servers; ++i) {
    ServerConfig sc = cfg.server;
    sc.name = sc.name + "-" + std::to_string(i);
    servers_.push_back(std::make_unique<Server>(loop_, net_, sc));
  }
}

Server& Cluster::add_server(ServerConfig cfg) {
  servers_.push_back(std::make_unique<Server>(loop_, net_, std::move(cfg)));
  return *servers_.back();
}

}  // namespace hyperloop::core
