// Process-wide recycling pool for message byte buffers.
//
// The kernel-TCP baseline moves every payload through std::vector<uint8_t>
// buffers: pack, wire-frame, receive, forward. Allocating each of those per
// message makes the baseline's *host* allocator — not the modeled network
// stack — part of the measured path. The pool keeps a small LIFO freelist
// of retired vectors so steady-state traffic recycles capacity instead of
// hitting operator new (asserted by the TCP lap in nic_alloc_test).
//
// Usage: acquire(n) returns a vector of size n (reusing pooled capacity);
// release(std::move(v)) retires a buffer once its bytes are consumed. A
// dropped (never-released) buffer is only a missed recycle, not a leak.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hyperloop::core {

class BufPool {
 public:
  /// Returns a buffer of exactly `n` bytes (contents unspecified).
  static std::vector<uint8_t> acquire(size_t n);

  /// Retires a buffer into the freelist (dropped if the pool is full or
  /// the buffer never owned heap capacity).
  static void release(std::vector<uint8_t>&& v);

  /// Buffers currently parked in the freelist (test introspection).
  static size_t pooled();

 private:
  static constexpr size_t kMaxPooled = 256;
  static std::vector<std::vector<uint8_t>>& pool();
};

}  // namespace hyperloop::core
