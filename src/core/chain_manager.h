// Chain membership, failure detection and catch-up recovery (§5,
// "RocksDB/MongoDB Recovery"). This is deliberately a *control-path*
// component: HyperLoop accelerates the data path only, and recovery hands
// control back to conventional software — heartbeats over the kernel TCP
// stack, a paused data path, a bulk catch-up copy from a healthy neighbor,
// and an epoch bump (Aguilera-style timeout failure detector [45]).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/server.h"

namespace hyperloop::core {

class ChainManager {
 public:
  struct Config {
    sim::Duration heartbeat_interval = sim::msec(1);
    /// Consecutive missed heartbeats declaring a replica dead.
    int missed_threshold = 3;
    uint16_t port_base = 7100;
    /// Catch-up copy throughput (bytes/sec) for the recovery transfer.
    double copy_bandwidth_bps = 40e9;
    /// CPU cost per heartbeat handled on a replica.
    sim::Duration hb_cpu = sim::usec(2);
  };

  struct ReplicaInfo {
    Server* server;
    rdma::Addr region_base;
  };

  ChainManager(Server& client, std::vector<ReplicaInfo> replicas,
               uint64_t region_size, Config cfg);

  /// Starts heartbeating. Idempotent.
  void start();

  /// Fault injection: the replica stops answering heartbeats and its NVM
  /// loses volatile (un-flushed) contents, as on a power-fail reboot.
  void kill_replica(size_t i);

  /// The replacement replica comes up empty-ish and asks to rejoin; the
  /// manager runs the catch-up protocol: pause writes, copy the durable
  /// region image from a healthy neighbor, bump the epoch, resume writes.
  void revive_replica(size_t i);

  bool replica_alive(size_t i) const { return alive_.at(i); }
  bool writes_paused() const { return paused_; }
  uint64_t epoch() const { return epoch_; }
  size_t group_size() const { return replicas_.size(); }

  /// Fired (with the replica index) when the detector declares a failure.
  void set_on_failure(std::function<void(size_t)> fn) {
    on_failure_ = std::move(fn);
  }
  /// Fired when a replica finishes catch-up and rejoins.
  void set_on_recovered(std::function<void(size_t)> fn) {
    on_recovered_ = std::move(fn);
  }

  uint64_t failures_detected() const { return failures_; }
  uint64_t recoveries() const { return recoveries_; }

 private:
  void heartbeat_tick();
  size_t healthy_neighbor(size_t i) const;

  Server& client_;
  std::vector<ReplicaInfo> replicas_;
  uint64_t region_size_;
  Config cfg_;

  sim::ProcessId client_pid_;
  std::vector<sim::ProcessId> replica_pids_;
  std::vector<bool> alive_;
  std::vector<bool> detected_dead_;
  std::vector<int> missed_;
  std::vector<bool> echoed_;  ///< echo received since last tick
  bool started_ = false;
  bool paused_ = false;
  uint64_t epoch_ = 1;
  uint64_t failures_ = 0;
  uint64_t recoveries_ = 0;
  std::function<void(size_t)> on_failure_;
  std::function<void(size_t)> on_recovered_;
};

/// Per-chain supervision for sharded deployments: one ChainManager per
/// shard (each heartbeating its own chain on its own port), so a replica
/// failure pauses — and recovery resumes — exactly one shard's writes
/// while the other chains keep committing (DESIGN.md "Sharded datapath").
class ShardedChainManager {
 public:
  /// `shard_replicas[s]` is shard s's chain. Manager s heartbeats on
  /// cfg.port_base + s.
  ShardedChainManager(Server& client,
                      std::vector<std::vector<ChainManager::ReplicaInfo>>
                          shard_replicas,
                      uint64_t region_size, ChainManager::Config cfg);

  /// Starts every shard's heartbeat loop. Idempotent.
  void start();

  ChainManager& shard(size_t s) { return *mgrs_.at(s); }
  size_t shards() const { return mgrs_.size(); }
  bool writes_paused(size_t s) const { return mgrs_.at(s)->writes_paused(); }

  /// Fired with (shard, replica) when any shard's detector declares a
  /// failure.
  void set_on_shard_failure(std::function<void(size_t, size_t)> fn);
  /// Fired with (shard, replica) when a replica finishes catch-up.
  void set_on_shard_recovered(std::function<void(size_t, size_t)> fn);

  uint64_t failures_detected() const;
  uint64_t recoveries() const;

 private:
  std::vector<std::unique_ptr<ChainManager>> mgrs_;
};

}  // namespace hyperloop::core
