// Sharded multi-chain replication (DESIGN.md "Sharded datapath").
//
// A ShardedGroup composes K independent ReplicationGroup chains behind
// the single-group primitive API: a ShardRouter maps every region offset
// to its owning chain, and each primitive rides that chain's own QPs,
// credit window and in-flight tracking — K chains turn the per-chain
// op/s ceiling into an additive budget, because nothing is shared between
// shards past the router (no common window, no common FIFO, distinct
// simulated NICs when the backends are placed on them).
//
// Addressing is *identity*: offsets are never rebased, every child chain
// exposes the full logical region and simply never carries bytes outside
// its shard. That keeps the layers above (WAL slices, lock tables,
// kvstore/docstore layouts) oblivious — a based RegionLayout plus a range
// router is all the partitioning there is.
//
// Router contract: a primitive's byte range must not cross a routing
// boundary (asserted in debug builds). The range policy makes that
// natural — whole slices map to one shard; the hash policy requires
// callers to keep objects within one routing granule (chunk_shift is
// part of the contract). Cross-shard gWRITEV batches are the exception:
// they are split per shard and rejoined with a pooled scatter-join
// completion, so callers see one done for the whole batch.
//
// Hot-path discipline matches the other groups: sim::SmallFn completions,
// pooled join slots indexed by small integers, zero steady-state
// allocations (gated by tools/lint_hot_path.sh and the alloc test).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/group.h"

namespace hyperloop::core {

/// Maps region offsets to shards. Value type, cheap to copy; the custom
/// hook is a plain function pointer + context so the router stays POD
/// (no type-erased heap-backed callable on the per-op path).
struct ShardRouter {
  enum class Policy : uint8_t { kHash, kRange };
  using CustomFn = uint32_t (*)(uint64_t offset, void* ctx);

  Policy policy = Policy::kHash;
  uint32_t shards = 1;
  /// kHash: routing granule = 1 << chunk_shift bytes; the granule index
  /// is mix-hashed so adjacent granules spread across shards.
  uint64_t chunk_shift = 12;
  /// kRange: contiguous span (bytes) owned by each shard; offsets past
  /// shards * span clamp to the last shard.
  uint64_t span = 0;
  CustomFn custom = nullptr;
  void* custom_ctx = nullptr;

  static ShardRouter hash(uint32_t shards, uint64_t chunk_shift = 12) {
    ShardRouter r;
    r.policy = Policy::kHash;
    r.shards = shards;
    r.chunk_shift = chunk_shift;
    return r;
  }
  static ShardRouter range(uint32_t shards, uint64_t span) {
    ShardRouter r;
    r.policy = Policy::kRange;
    r.shards = shards;
    r.span = span;
    return r;
  }

  /// splitmix64 finalizer: a stable, well-mixed granule hash.
  static uint64_t mix(uint64_t x) {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
  }

  uint32_t shard_of(uint64_t offset) const {
    if (custom != nullptr) return custom(offset, custom_ctx) % shards;
    if (policy == Policy::kRange) {
      const uint64_t s = offset / span;
      return s >= shards ? shards - 1 : static_cast<uint32_t>(s);
    }
    return static_cast<uint32_t>(mix(offset >> chunk_shift) % shards);
  }

  /// First offset after `offset` where the owning shard may change.
  /// Local bulk accessors split ranges at these boundaries.
  uint64_t next_boundary(uint64_t offset) const {
    if (custom != nullptr) return offset + 1;  // no structure known
    if (policy == Policy::kRange) return (offset / span + 1) * span;
    return ((offset >> chunk_shift) + 1) << chunk_shift;
  }
};

class ShardedGroup final : public ReplicationGroup {
 public:
  struct ShardStats {
    uint64_t ops = 0;    ///< primitives routed to this shard
    uint64_t bytes = 0;  ///< payload bytes routed to this shard
  };
  struct Stats {
    uint64_t split_gwritevs = 0;  ///< cross-shard batches split/rejoined
    uint64_t flush_broadcasts = 0;
  };

  /// Takes ownership of the child chains. Every child must expose the
  /// same group_size and a region at least as large as the logical
  /// region (identity addressing).
  ShardedGroup(std::vector<std::unique_ptr<ReplicationGroup>> shards,
               ShardRouter router);
  ~ShardedGroup() override;

  size_t group_size() const override;
  uint64_t region_size() const override { return region_size_; }
  void gwrite(uint64_t offset, uint32_t len, bool flush, Done done) override;
  void gwritev(const ExtentVec& extents, bool flush, Done done) override;
  void gmemcpy(uint64_t src_offset, uint64_t dst_offset, uint32_t len,
               bool flush, Done done) override;
  void gcas(uint64_t offset, uint64_t expected, uint64_t desired,
            ExecMap exec_map, CasDone done) override;
  void gflush(Done done) override;
  void stop() override;
  void client_store(uint64_t offset, const void* src, uint32_t len) override;
  void client_load(uint64_t offset, void* dst, uint32_t len) const override;
  void replica_load(size_t i, uint64_t offset, void* dst,
                    uint32_t len) const override;

  uint32_t shards() const { return static_cast<uint32_t>(shards_.size()); }
  ReplicationGroup& shard(size_t s) { return *shards_[s]; }
  const ReplicationGroup& shard(size_t s) const { return *shards_[s]; }
  const ShardRouter& router() const { return router_; }
  const ShardStats& shard_stats(size_t s) const { return shard_stats_[s]; }
  const Stats& stats() const { return stats_; }

 private:
  /// One cross-shard scatter-join in flight: the original done fires when
  /// every per-shard sub-op has completed. Pooled with a LIFO free list;
  /// child completions capture the slot *index*, never a pointer — the
  /// pool vector may grow.
  struct JoinOp {
    uint32_t remaining = 0;
    bool live = false;
    Done done;
  };

  uint32_t route(uint64_t offset, uint32_t len) const;
  uint32_t acquire_join();
  void finish_join(uint32_t idx);

  std::vector<std::unique_ptr<ReplicationGroup>> shards_;
  ShardRouter router_;
  uint64_t region_size_ = 0;
  std::vector<JoinOp> join_ops_;
  std::vector<uint32_t> join_free_;
  std::vector<ShardStats> shard_stats_;
  Stats stats_;
};

}  // namespace hyperloop::core
