#include "core/sharded_group.h"

#include <cassert>
#include <utility>

namespace hyperloop::core {

ShardedGroup::ShardedGroup(
    std::vector<std::unique_ptr<ReplicationGroup>> shards, ShardRouter router)
    : shards_(std::move(shards)), router_(router) {
  assert(!shards_.empty());
  assert(router_.shards == shards_.size() &&
         "router must address exactly the owned chains");
  region_size_ = shards_[0]->region_size();
  for (const auto& s : shards_) {
    assert(s != nullptr);
    assert(s->group_size() == shards_[0]->group_size());
    // Identity addressing: every chain must be able to hold any logical
    // offset, so the logical region is the smallest child region.
    if (s->region_size() < region_size_) region_size_ = s->region_size();
  }
  shard_stats_.resize(shards_.size());
}

ShardedGroup::~ShardedGroup() { stop(); }

size_t ShardedGroup::group_size() const { return shards_[0]->group_size(); }

uint32_t ShardedGroup::route(uint64_t offset, uint32_t len) const {
  const uint32_t s = router_.shard_of(offset);
  assert((len <= 1 || router_.shard_of(offset + len - 1) == s) &&
         "primitive range crosses a shard routing boundary");
  (void)len;
  return s;
}

void ShardedGroup::gwrite(uint64_t offset, uint32_t len, bool flush,
                          Done done) {
  if (stopped_) return;  // children are stopped too: drop, don't forward
  const uint32_t s = route(offset, len);
  ShardStats& st = shard_stats_[s];
  ++st.ops;
  st.bytes += len;
  shards_[s]->gwrite(offset, len, flush, std::move(done));
}

void ShardedGroup::gwritev(const ExtentVec& extents, bool flush, Done done) {
  if (stopped_) return;
  assert(!extents.empty());
  // Fast path: the whole batch lives on one chain — hand it through
  // untouched (one traversal, original completion, no join slot).
  const uint32_t first = route(extents[0].offset, extents[0].len);
  bool uniform = true;
  for (size_t i = 1; i < extents.size(); ++i) {
    if (route(extents[i].offset, extents[i].len) != first) {
      uniform = false;
      break;
    }
  }
  if (uniform) {
    ShardStats& st = shard_stats_[first];
    ++st.ops;
    for (const Extent& e : extents) st.bytes += e.len;
    shards_[first]->gwritev(extents, flush, std::move(done));
    return;
  }

  // Split: one sub-batch per touched shard, extents keeping their list
  // order within each sub-batch (ordering across shards is not
  // preserved — co-ordering callers must keep ordered extents on one
  // shard, which the WAL's per-slice layout does by construction).
  uint32_t sub_shard[ExtentVec::kCapacity];
  ExtentVec sub[ExtentVec::kCapacity];
  uint32_t nsub = 0;
  for (const Extent& e : extents) {
    const uint32_t s = route(e.offset, e.len);
    uint32_t j = 0;
    while (j < nsub && sub_shard[j] != s) ++j;
    if (j == nsub) {
      sub_shard[nsub] = s;
      sub[nsub].clear();
      ++nsub;
    }
    sub[j].push_back(e);
  }

  ++stats_.split_gwritevs;
  const uint32_t idx = acquire_join();
  JoinOp& op = join_ops_[idx];
  op.remaining = nsub;
  op.live = true;
  op.done = std::move(done);
  for (uint32_t j = 0; j < nsub; ++j) {
    const uint32_t s = sub_shard[j];
    ShardStats& st = shard_stats_[s];
    ++st.ops;
    for (const Extent& e : sub[j]) st.bytes += e.len;
    shards_[s]->gwritev(sub[j], flush, [this, idx] {
      if (--join_ops_[idx].remaining == 0) finish_join(idx);
    });
  }
}

void ShardedGroup::gmemcpy(uint64_t src_offset, uint64_t dst_offset,
                           uint32_t len, bool flush, Done done) {
  if (stopped_) return;
  const uint32_t s = route(src_offset, len);
  assert(route(dst_offset, len) == s &&
         "gmemcpy src and dst must be co-located on one shard");
  ShardStats& st = shard_stats_[s];
  ++st.ops;
  st.bytes += len;
  shards_[s]->gmemcpy(src_offset, dst_offset, len, flush, std::move(done));
}

void ShardedGroup::gcas(uint64_t offset, uint64_t expected, uint64_t desired,
                        ExecMap exec_map, CasDone done) {
  if (stopped_) return;
  const uint32_t s = route(offset, 8);
  ++shard_stats_[s].ops;
  shards_[s]->gcas(offset, expected, desired, exec_map, std::move(done));
}

void ShardedGroup::gflush(Done done) {
  if (stopped_) return;
  // A group-wide barrier must cover every chain: broadcast and rejoin.
  ++stats_.flush_broadcasts;
  const uint32_t idx = acquire_join();
  JoinOp& op = join_ops_[idx];
  op.remaining = shards();
  op.live = true;
  op.done = std::move(done);
  for (auto& s : shards_) {
    ++shard_stats_[&s - shards_.data()].ops;
    s->gflush([this, idx] {
      if (--join_ops_[idx].remaining == 0) finish_join(idx);
    });
  }
}

void ShardedGroup::stop() {
  if (stopped_) return;
  stopped_ = true;
  for (auto& s : shards_) {
    s->stop();
    aborted_ops_ += s->aborted_ops();
  }
  // Joins whose sub-ops were dropped by a child's stop() can never fire.
  for (JoinOp& op : join_ops_) {
    if (!op.live) continue;
    op.live = false;
    op.done.reset();
    ++aborted_ops_;
  }
  join_free_.clear();
  for (uint32_t i = 0; i < join_ops_.size(); ++i) join_free_.push_back(i);
}

void ShardedGroup::client_store(uint64_t offset, const void* src,
                                uint32_t len) {
  // Local accessors accept ranges spanning shards: split at routing
  // boundaries so each whole segment lands in its owner's client region.
  const auto* p = static_cast<const uint8_t*>(src);
  uint64_t off = offset;
  uint32_t left = len;
  while (left > 0) {
    const uint64_t bound = router_.next_boundary(off);
    const uint32_t n = bound - off < left
                           ? static_cast<uint32_t>(bound - off)
                           : left;
    shards_[router_.shard_of(off)]->client_store(off, p, n);
    p += n;
    off += n;
    left -= n;
  }
}

void ShardedGroup::client_load(uint64_t offset, void* dst,
                               uint32_t len) const {
  auto* p = static_cast<uint8_t*>(dst);
  uint64_t off = offset;
  uint32_t left = len;
  while (left > 0) {
    const uint64_t bound = router_.next_boundary(off);
    const uint32_t n = bound - off < left
                           ? static_cast<uint32_t>(bound - off)
                           : left;
    shards_[router_.shard_of(off)]->client_load(off, p, n);
    p += n;
    off += n;
    left -= n;
  }
}

void ShardedGroup::replica_load(size_t i, uint64_t offset, void* dst,
                                uint32_t len) const {
  auto* p = static_cast<uint8_t*>(dst);
  uint64_t off = offset;
  uint32_t left = len;
  while (left > 0) {
    const uint64_t bound = router_.next_boundary(off);
    const uint32_t n = bound - off < left
                           ? static_cast<uint32_t>(bound - off)
                           : left;
    shards_[router_.shard_of(off)]->replica_load(i, off, p, n);
    p += n;
    off += n;
    left -= n;
  }
}

uint32_t ShardedGroup::acquire_join() {
  if (join_free_.empty()) {
    join_ops_.emplace_back();
    return static_cast<uint32_t>(join_ops_.size() - 1);
  }
  const uint32_t idx = join_free_.back();
  join_free_.pop_back();
  return idx;
}

void ShardedGroup::finish_join(uint32_t idx) {
  JoinOp& op = join_ops_[idx];
  Done done = std::move(op.done);
  op.live = false;
  join_free_.push_back(idx);
  if (done) done();
}

}  // namespace hyperloop::core
