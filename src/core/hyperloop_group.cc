#include "core/hyperloop_group.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace hyperloop::core {

using rdma::Addr;
using rdma::Opcode;
using rdma::RecvWqe;
using rdma::Sge;
using rdma::Wqe;
using rdma::WqeDescriptor;

namespace {

// Placeholder for a deferred-ownership WQE: contents are irrelevant (the
// client's patch overwrites the descriptor), only `signaled` matters for
// the completion counting that drives WAIT thresholds and refill.
Wqe placeholder() {
  Wqe w = rdma::make_nop();
  w.signaled = 1;
  return w;
}

uint32_t next_pow2(uint32_t v) {
  uint32_t n = 1;
  while (n < v) n <<= 1;
  return n;
}

}  // namespace

void HyperLoopGroup::Config::validate() const {
  if (max_inflight == 0 || max_inflight > ring_slots / 2) {
    std::fprintf(stderr,
                 "HyperLoopGroup::Config: max_inflight=%u violates "
                 "1 <= max_inflight <= ring_slots/2 (ring_slots=%u); the "
                 "in-flight window must leave re-arm headroom\n",
                 max_inflight, ring_slots);
    std::abort();
  }
}

HyperLoopGroup::HyperLoopGroup(Server& client, std::vector<Server*> replicas,
                               Config cfg)
    : client_(client), cfg_(cfg) {
  assert(!replicas.empty());
  cfg_.validate();
  replicas_.resize(replicas.size());
  for (size_t i = 0; i < replicas.size(); ++i) replicas_[i].server = replicas[i];

  // Client-local state.
  client_region_ = client_.nvm().alloc(cfg_.region_size, 4096);
  client_zeros_ = client_.mem().alloc(result_bytes(), 64);
  cas_scratch_.resize(replicas_.size());

  for (size_t i = 0; i < replicas_.size(); ++i) setup_replica(i);
  for (int p = 0; p < kNumPrims; ++p) setup_client_chain(static_cast<Prim>(p));

  // Wire the chain: client -> R0 -> ... -> R{G-1} -> client.
  for (int pi = 0; pi < kNumPrims; ++pi) {
    const auto p = static_cast<Prim>(pi);
    ClientChain& cc = client_chain_[pi];
    ReplicaChain& first = replicas_.front().chain[pi];
    ReplicaChain& last = replicas_.back().chain[pi];

    client_.nic(cfg_.nic_index).connect(cc.qp_down, replicas_.front().server->nic(cfg_.nic_index).id(),
                          first.qp_prev->qpn);
    replicas_.front().server->nic(cfg_.nic_index).connect(
        first.qp_prev, client_.nic(cfg_.nic_index).id(), cc.qp_down->qpn);

    for (size_t i = 0; i + 1 < replicas_.size(); ++i) {
      ReplicaChain& a = replicas_[i].chain[pi];
      ReplicaChain& b = replicas_[i + 1].chain[pi];
      replicas_[i].server->nic(cfg_.nic_index).connect(
          a.qp_next, replicas_[i + 1].server->nic(cfg_.nic_index).id(), b.qp_prev->qpn);
      replicas_[i + 1].server->nic(cfg_.nic_index).connect(
          b.qp_prev, replicas_[i].server->nic(cfg_.nic_index).id(), a.qp_next->qpn);
    }

    replicas_.back().server->nic(cfg_.nic_index).connect(last.qp_next, client_.nic(cfg_.nic_index).id(),
                                           cc.qp_up->qpn);
    client_.nic(cfg_.nic_index).connect(cc.qp_up, replicas_.back().server->nic(cfg_.nic_index).id(),
                          last.qp_next->qpn);

    // Pre-arm the full ring on every replica.
    for (uint64_t s = 0; s < cfg_.ring_slots; ++s) {
      for (size_t i = 0; i < replicas_.size(); ++i) rearm_slot(i, p, s);
    }
    for (size_t i = 0; i < replicas_.size(); ++i) {
      replicas_[i].chain[pi].next_rearm = cfg_.ring_slots;
    }

    // Client ack RECV ring + event-driven ack handling.
    for (uint32_t s = 0; s < cfg_.max_inflight * 2; ++s) {
      client_.nic(cfg_.nic_index).post_recv(cc.qp_up, RecvWqe{});
    }
    cc.cq_up->set_notify([this, p] { on_ack_cqe(p); });
    cc.cq_up->arm_notify();
  }

  for (size_t i = 0; i < replicas_.size(); ++i) start_refill(i);
}

HyperLoopGroup::~HyperLoopGroup() { stop(); }

void HyperLoopGroup::stop() {
  if (stopped_) return;
  stopped_ = true;

  // Drop (never invoke) all pending completion callbacks and queued ops.
  for (ClientChain& cc : client_chain_) {
    for (PendingSlot& slot : cc.pending) {
      if (!slot.live) continue;
      slot.live = false;
      slot.done.reset();
      slot.cas_done.reset();
      ++aborted_ops_;
    }
    aborted_ops_ += cc.waiting.size();
    cc.waiting.clear();
    cc.inflight = 0;
  }

  // Release NIC resources. QPs must go before their CQs: destroying a QP
  // unlinks it from any CQ waiter list, and destroy_cq asserts that no
  // WAIT-parked QP still references the CQ.
  for (Replica& r : replicas_) {
    rdma::Nic& nic = r.server->nic(cfg_.nic_index);
    for (ReplicaChain& c : r.chain) {
      if (c.qp_prev) nic.destroy_qp(c.qp_prev);
      if (c.qp_next) nic.destroy_qp(c.qp_next);
      if (c.qp_loop) nic.destroy_qp(c.qp_loop);
      if (c.cq_recv_prev) nic.destroy_cq(c.cq_recv_prev);
      if (c.cq_send_next) nic.destroy_cq(c.cq_send_next);
      if (c.cq_loop) nic.destroy_cq(c.cq_loop);
      c.qp_prev = c.qp_next = c.qp_loop = nullptr;
      c.cq_recv_prev = c.cq_send_next = c.cq_loop = nullptr;
    }
  }
  for (ClientChain& cc : client_chain_) {
    rdma::Nic& nic = client_.nic(cfg_.nic_index);
    if (cc.qp_down) nic.destroy_qp(cc.qp_down);
    if (cc.qp_up) nic.destroy_qp(cc.qp_up);
    if (cc.cq_down) nic.destroy_cq(cc.cq_down);
    if (cc.cq_up) nic.destroy_cq(cc.cq_up);
    cc.qp_down = cc.qp_up = nullptr;
    cc.cq_down = cc.cq_up = nullptr;
  }
}

// ------------------------------------------------------------------ setup --

uint32_t HyperLoopGroup::hop_payload(Prim p, size_t hop) const {
  const uint32_t per_hop = desc_count(p) * kDescBytes;
  uint32_t bytes =
      per_hop * static_cast<uint32_t>(replicas_.size() - hop);
  if (p == Prim::kCas) bytes += result_bytes();
  return bytes;
}

void HyperLoopGroup::setup_replica(size_t idx) {
  Replica& r = replicas_[idx];
  rdma::Nic& nic = r.server->nic(cfg_.nic_index);
  rdma::HostMemory& mem = r.server->mem();

  r.data_base = r.server->nvm().alloc(cfg_.region_size, 4096);
  r.data_mr = nic.register_mr(
      r.data_base, cfg_.region_size,
      rdma::kRemoteRead | rdma::kRemoteWrite | rdma::kRemoteAtomic |
          rdma::kLocalWrite);

  const size_t arena_start = mem.used();

  for (int pi = 0; pi < kNumPrims; ++pi) {
    const auto p = static_cast<Prim>(pi);
    ReplicaChain& c = r.chain[pi];

    c.staging_slot =
        desc_count(p) * kDescBytes *
        static_cast<uint32_t>(replicas_.size() > 0 ? replicas_.size() - 1 : 0);
    if (c.staging_slot == 0) c.staging_slot = kDescBytes;  // 1-replica groups
    c.staging_len = desc_count(p) * kDescBytes *
                    static_cast<uint32_t>(replicas_.size() - 1 - idx);
    c.staging_base = mem.alloc(uint64_t{c.staging_slot} * cfg_.ring_slots, 64);
    if (p == Prim::kCas) {
      c.result_base =
          mem.alloc(uint64_t{result_bytes()} * cfg_.ring_slots, 64);
    }

    // Chain CQs are consumed only through WAIT counters, never polled:
    // counting-only (capacity 0) so wrapped rings don't hoard dead CQEs.
    c.cq_recv_prev = nic.create_cq(0);
    c.cq_send_next = nic.create_cq(0);
    c.qp_prev = nic.create_qp(nullptr, c.cq_recv_prev, cfg_.ring_slots);
    c.qp_next = nic.create_qp(c.cq_send_next, nullptr,
                              cfg_.ring_slots * next_wqes(p));
    if (loop_wqes(p) > 0) {
      c.cq_loop = nic.create_cq(0);
      c.qp_loop =
          nic.create_loopback_qp(c.cq_loop, cfg_.ring_slots * loop_wqes(p));
    }
  }

  // One local-write MR spanning everything allocated above (staging,
  // result rings, and the WQE rings inside the QPs): the registration that
  // makes work queues writable by inbound scatters — with bounds checks.
  const size_t arena_end = mem.used();
  const rdma::MemoryRegion ring_mr = nic.register_mr(
      arena_start, arena_end - arena_start, rdma::kLocalWrite);
  for (int pi = 0; pi < kNumPrims; ++pi) {
    r.chain[pi].ring_lkey = ring_mr.lkey;
  }
}

void HyperLoopGroup::setup_client_chain(Prim p) {
  ClientChain& cc = client_chain_[static_cast<int>(p)];
  rdma::Nic& nic = client_.nic(cfg_.nic_index);
  rdma::HostMemory& mem = client_.mem();

  cc.staging_slot =
      desc_count(p) * kDescBytes * static_cast<uint32_t>(replicas_.size());
  cc.staging_base =
      mem.alloc(uint64_t{cc.staging_slot} * cfg_.max_inflight * 2, 64);
  cc.ack_base =
      mem.alloc(uint64_t{result_bytes()} * cfg_.max_inflight * 2, 64);
  cc.ack_mr = nic.register_mr(cc.ack_base,
                              uint64_t{result_bytes()} * cfg_.max_inflight * 2,
                              rdma::kRemoteWrite | rdma::kLocalWrite);

  cc.cq_down = nic.create_cq(0);  // counting-only: send side never polls
  cc.cq_up = nic.create_cq();     // polled by on_ack_cqe for the imm seq
  // Room for a full credit window of staged submissions: extent WRITEs +
  // FLUSH + metadata SEND per op (kWriteV stages the most per op).
  cc.qp_down = nic.create_qp(cc.cq_down, nullptr,
                             cfg_.max_inflight * (desc_count(p) + 2) + 16);
  cc.qp_up = nic.create_qp(nullptr, cc.cq_up, 16);

  // In-flight ops are direct-mapped by seq: acks arrive in chain FIFO
  // order, so at most max_inflight consecutive seqs are live at once and
  // a power-of-two table twice that wide is collision-free by mask.
  cc.pending.resize(next_pow2(cfg_.max_inflight * 2));
  cc.pending_mask = static_cast<uint32_t>(cc.pending.size() - 1);
}

void HyperLoopGroup::rearm_slot(size_t replica, Prim p, uint64_t seq) {
  Replica& r = replicas_[replica];
  ReplicaChain& c = r.chain[static_cast<int>(p)];
  rdma::Nic& nic = r.server->nic(cfg_.nic_index);
  const uint32_t S = cfg_.ring_slots;

  RecvWqe recv;
  auto desc_sge = [&](rdma::QueuePair* qp, uint64_t wqe_seq) {
    // Patch lands on the WqeDescriptor at the start of the slot.
    recv.sges.push_back(Sge{qp->slot_addr(wqe_seq), kDescBytes, c.ring_lkey});
  };

  // Each queue's slot WQEs are staged together and doorbelled once — the
  // off-path refill driver batches its posts like a real ibv_post_send
  // with a linked WR list.
  switch (p) {
    case Prim::kWrite: {
      nic.stage_send(c.qp_next, rdma::make_wait(c.cq_recv_prev->id(), seq + 1));
      nic.stage_send(c.qp_next, placeholder(), /*deferred=*/true);  // WRITE
      nic.stage_send(c.qp_next, placeholder(), true);               // FLUSH
      nic.stage_send(c.qp_next, placeholder(), true);               // SEND
      nic.ring_doorbell(c.qp_next);
      desc_sge(c.qp_next, 4 * seq + 1);
      desc_sge(c.qp_next, 4 * seq + 2);
      desc_sge(c.qp_next, 4 * seq + 3);
      break;
    }
    case Prim::kWriteV: {
      const uint64_t n = next_wqes(Prim::kWriteV);
      nic.stage_send(c.qp_next, rdma::make_wait(c.cq_recv_prev->id(), seq + 1));
      for (uint32_t j = 0; j < kMaxExtents; ++j) {
        nic.stage_send(c.qp_next, placeholder(), true);  // WRITE / NOP
      }
      nic.stage_send(c.qp_next, placeholder(), true);  // FLUSH
      nic.stage_send(c.qp_next, placeholder(), true);  // SEND
      nic.ring_doorbell(c.qp_next);
      for (uint32_t j = 1; j < n; ++j) desc_sge(c.qp_next, n * seq + j);
      break;
    }
    case Prim::kMemcpy: {
      nic.stage_send(c.qp_loop, rdma::make_wait(c.cq_recv_prev->id(), seq + 1));
      nic.stage_send(c.qp_loop, placeholder(), true);  // COPY
      nic.stage_send(c.qp_loop, placeholder(), true);  // FLUSH
      nic.ring_doorbell(c.qp_loop);
      nic.stage_send(c.qp_next,
                     rdma::make_wait(c.cq_loop->id(), 2 * (seq + 1)));
      nic.stage_send(c.qp_next, placeholder(), true);  // SEND
      nic.ring_doorbell(c.qp_next);
      desc_sge(c.qp_loop, 3 * seq + 1);
      desc_sge(c.qp_loop, 3 * seq + 2);
      desc_sge(c.qp_next, 2 * seq + 1);
      break;
    }
    case Prim::kCas: {
      nic.stage_send(c.qp_loop, rdma::make_wait(c.cq_recv_prev->id(), seq + 1));
      nic.stage_send(c.qp_loop, placeholder(), true);  // CAS
      nic.ring_doorbell(c.qp_loop);
      nic.stage_send(c.qp_next, rdma::make_wait(c.cq_loop->id(), seq + 1));
      nic.stage_send(c.qp_next, placeholder(), true);  // SEND
      nic.ring_doorbell(c.qp_next);
      desc_sge(c.qp_loop, 2 * seq + 1);
      desc_sge(c.qp_next, 2 * seq + 1);
      break;
    }
  }

  if (c.staging_len > 0) {
    recv.sges.push_back(Sge{c.staging_base + (seq % S) * c.staging_slot,
                            c.staging_len, c.ring_lkey});
  }
  if (p == Prim::kCas) {
    recv.sges.push_back(Sge{c.result_base + (seq % S) * result_bytes(),
                            result_bytes(), c.ring_lkey});
  }
  recv.wr_id = seq;
  nic.post_recv(c.qp_prev, std::move(recv));
}

void HyperLoopGroup::start_refill(size_t replica) {
  Replica& r = replicas_[replica];
  if (cfg_.refill_via_cpu) {
    r.refill_pid = r.server->sched().create_process(
        r.server->name() + "-hl-refill");
  }
  refill_tick(replica);
}

void HyperLoopGroup::refill_tick(size_t replica) {
  Replica& r = replicas_[replica];
  r.server->loop().schedule_after(cfg_.refill_period, [this, replica] {
    if (stopped_) return;
    Replica& rr = replicas_[replica];
    if (cfg_.refill_via_cpu) {
      rr.server->sched().submit(
          rr.refill_pid, cfg_.refill_cpu, [this, replica] {
            if (stopped_) return;
            const uint32_t rearmed = do_refill(replica);
            if (rearmed > 0) {
              // Charge the per-slot driver work (posts + RECVs), still off
              // the critical path.
              replicas_[replica].server->sched().submit(
                  replicas_[replica].refill_pid,
                  cfg_.refill_cpu_per_slot *
                      static_cast<sim::Duration>(rearmed),
                  [this, replica] {
                    if (!stopped_) refill_tick(replica);
                  },
                  /*fresh_wakeup=*/false);
            } else {
              refill_tick(replica);
            }
          });
    } else {
      do_refill(replica);
      refill_tick(replica);
    }
  });
}

uint32_t HyperLoopGroup::do_refill(size_t replica) {
  Replica& r = replicas_[replica];
  uint32_t rearmed = 0;
  for (int pi = 0; pi < kNumPrims; ++pi) {
    const auto p = static_cast<Prim>(pi);
    ReplicaChain& c = r.chain[pi];
    while (true) {
      const uint64_t finished_slot = c.next_rearm - cfg_.ring_slots;
      if (c.cq_send_next->completion_count() <
          uint64_t{next_completions(p)} * (finished_slot + 1)) {
        break;
      }
      rearm_slot(replica, p, c.next_rearm);
      ++c.next_rearm;
      ++rearmed;
    }
  }
  return rearmed;
}

// ---------------------------------------------------------- client issue --

rdma::WqeDescriptor HyperLoopGroup::nop_desc() const {
  WqeDescriptor d;
  d.opcode = static_cast<uint8_t>(Opcode::kNop);
  d.active = 1;
  return d;
}

HyperLoopGroup::PendingSlot& HyperLoopGroup::claim_slot(ClientChain& cc,
                                                        uint64_t seq) {
  PendingSlot& slot = cc.pending[seq & cc.pending_mask];
  assert(!slot.live && "pending slot table wrapped past the live window");
  slot.seq = static_cast<uint32_t>(seq);
  slot.live = true;
  return slot;
}

uint32_t HyperLoopGroup::stage_gwrite_blob(uint64_t seq, uint64_t offset,
                                           uint32_t len, bool flush) {
  const size_t G = replicas_.size();
  const ClientChain& cc = client_chain_[static_cast<int>(Prim::kWrite)];
  const Addr slot =
      cc.staging_base + (seq % (cfg_.max_inflight * 2)) * cc.staging_slot;

  WqeDescriptor trio[3];
  for (size_t i = 0; i < G; ++i) {
    const ReplicaChain& c = replicas_[i].chain[static_cast<int>(Prim::kWrite)];
    if (i + 1 < G) {
      const Replica& next = replicas_[i + 1];
      trio[0] = rdma::make_write(replicas_[i].data_base + offset, 0,
                                 next.data_base + offset, next.data_mr.rkey,
                                 len)
                    .d;
      // The forward hop re-sends bytes the upstream WRITE just landed in
      // this replica's region — borrow them instead of re-gathering. The
      // trio's own FLUSH/SEND behind it acks the WRITE cumulatively.
      trio[0].flags |= rdma::kWqeFlagZeroCopy | rdma::kWqeFlagAckElide;
      trio[1] = flush ? rdma::make_flush(next.data_base, next.data_mr.rkey).d
                      : nop_desc();
      trio[2] = rdma::make_send(
                    c.staging_base + (seq % cfg_.ring_slots) * c.staging_slot,
                    c.ring_lkey, c.staging_len)
                    .d;
    } else {
      // Last hop: ACK the client with a 0-byte WRITE_WITH_IMM.
      trio[0] = rdma::make_write_imm(
                    0, 0,
                    cc.ack_base +
                        (seq % (cfg_.max_inflight * 2)) * result_bytes(),
                    cc.ack_mr.rkey, 0, static_cast<uint32_t>(seq))
                    .d;
      trio[1] = nop_desc();
      trio[2] = nop_desc();
    }
    trio[0].active = trio[1].active = trio[2].active = 1;
    client_.mem().write(slot + i * 3 * kDescBytes, trio, 3 * kDescBytes);
  }
  return static_cast<uint32_t>(3 * kDescBytes * G);
}

uint32_t HyperLoopGroup::stage_gwritev_blob(uint64_t seq,
                                            const ExtentVec& extents,
                                            bool flush) {
  const size_t G = replicas_.size();
  const ClientChain& cc = client_chain_[static_cast<int>(Prim::kWriteV)];
  const Addr slot =
      cc.staging_base + (seq % (cfg_.max_inflight * 2)) * cc.staging_slot;
  const uint32_t nd = desc_count(Prim::kWriteV);  // kMaxExtents + FLUSH + SEND

  WqeDescriptor descs[kMaxExtents + 2];
  for (size_t i = 0; i < G; ++i) {
    const ReplicaChain& c =
        replicas_[i].chain[static_cast<int>(Prim::kWriteV)];
    if (i + 1 < G) {
      const Replica& next = replicas_[i + 1];
      for (uint32_t j = 0; j < kMaxExtents; ++j) {
        if (j < extents.size()) {
          const Extent& e = extents[j];
          descs[j] = rdma::make_write(replicas_[i].data_base + e.offset, 0,
                                      next.data_base + e.offset,
                                      next.data_mr.rkey, e.len)
                         .d;
          descs[j].flags |= rdma::kWqeFlagZeroCopy | rdma::kWqeFlagAckElide;
        } else {
          descs[j] = nop_desc();
        }
      }
      descs[kMaxExtents] =
          flush ? rdma::make_flush(next.data_base, next.data_mr.rkey).d
                : nop_desc();
      descs[kMaxExtents + 1] =
          rdma::make_send(
              c.staging_base + (seq % cfg_.ring_slots) * c.staging_slot,
              c.ring_lkey, c.staging_len)
              .d;
    } else {
      // Last hop only ACKs: its own data and durability were handled by
      // the previous hop's WRITEs + FLUSH (or the client's, when G == 1).
      descs[0] = rdma::make_write_imm(
                     0, 0,
                     cc.ack_base +
                         (seq % (cfg_.max_inflight * 2)) * result_bytes(),
                     cc.ack_mr.rkey, 0, static_cast<uint32_t>(seq))
                     .d;
      for (uint32_t j = 1; j < nd; ++j) descs[j] = nop_desc();
    }
    for (uint32_t j = 0; j < nd; ++j) descs[j].active = 1;
    client_.mem().write(slot + i * nd * kDescBytes, descs, nd * kDescBytes);
  }
  return static_cast<uint32_t>(nd * kDescBytes * G);
}

uint32_t HyperLoopGroup::stage_gmemcpy_blob(uint64_t seq, uint64_t src,
                                            uint64_t dst, uint32_t len,
                                            bool flush) {
  const size_t G = replicas_.size();
  const ClientChain& cc = client_chain_[static_cast<int>(Prim::kMemcpy)];
  const Addr slot =
      cc.staging_base + (seq % (cfg_.max_inflight * 2)) * cc.staging_slot;

  WqeDescriptor trio[3];
  for (size_t i = 0; i < G; ++i) {
    const ReplicaChain& c =
        replicas_[i].chain[static_cast<int>(Prim::kMemcpy)];
    trio[0] = rdma::make_local_copy(replicas_[i].data_base + src,
                                    replicas_[i].data_base + dst, len)
                  .d;
    trio[1] = flush ? rdma::make_flush(0, 0).d : nop_desc();
    if (i + 1 < G) {
      trio[2] = rdma::make_send(
                    c.staging_base + (seq % cfg_.ring_slots) * c.staging_slot,
                    c.ring_lkey, c.staging_len)
                    .d;
    } else {
      trio[2] = rdma::make_write_imm(
                    0, 0,
                    cc.ack_base +
                        (seq % (cfg_.max_inflight * 2)) * result_bytes(),
                    cc.ack_mr.rkey, 0, static_cast<uint32_t>(seq))
                    .d;
    }
    trio[0].active = trio[1].active = trio[2].active = 1;
    client_.mem().write(slot + i * 3 * kDescBytes, trio, 3 * kDescBytes);
  }
  return static_cast<uint32_t>(3 * kDescBytes * G);
}

uint32_t HyperLoopGroup::stage_gcas_blob(uint64_t seq, uint64_t offset,
                                         uint64_t expected, uint64_t desired,
                                         ExecMap exec) {
  const size_t G = replicas_.size();
  const ClientChain& cc = client_chain_[static_cast<int>(Prim::kCas)];
  const Addr slot =
      cc.staging_base + (seq % (cfg_.max_inflight * 2)) * cc.staging_slot;

  WqeDescriptor duo[2];
  for (size_t i = 0; i < G; ++i) {
    const ReplicaChain& c = replicas_[i].chain[static_cast<int>(Prim::kCas)];
    const Addr result_slot =
        c.result_base + (seq % cfg_.ring_slots) * result_bytes();
    if (exec.test(i)) {
      duo[0] = rdma::make_cas(result_slot + 8 * i, c.ring_lkey,
                              replicas_[i].data_base + offset,
                              replicas_[i].data_mr.rkey, expected, desired)
                   .d;
    } else {
      // Execute map cleared: the pre-posted CAS becomes a NOP (§4.2).
      duo[0] = nop_desc();
    }
    if (i + 1 < G) {
      duo[1] = rdma::make_send(
                   c.staging_base + (seq % cfg_.ring_slots) * c.staging_slot,
                   c.ring_lkey, c.staging_len)
                   .d;
    } else {
      duo[1] = rdma::make_write_imm(
                   0, 0,
                   cc.ack_base +
                       (seq % (cfg_.max_inflight * 2)) * result_bytes(),
                   cc.ack_mr.rkey, 0, static_cast<uint32_t>(seq))
                   .d;
    }
    duo[1].aux_addr = result_slot;
    duo[1].aux_length = result_bytes();
    duo[0].active = duo[1].active = 1;
    client_.mem().write(slot + i * 2 * kDescBytes, duo, 2 * kDescBytes);
  }
  return static_cast<uint32_t>(2 * kDescBytes * G);
}

void HyperLoopGroup::stage_meta_send(Prim p, uint64_t seq, uint32_t blob_len) {
  ClientChain& cc = client_chain_[static_cast<int>(p)];
  const Addr slot =
      cc.staging_base + (seq % (cfg_.max_inflight * 2)) * cc.staging_slot;
  Wqe send = rdma::make_send(slot, 0, blob_len);
  if (p == Prim::kCas) {
    // Seed the result map with zeros so excluded replicas report 0.
    send.d.aux_addr = client_zeros_;
    send.d.aux_length = result_bytes();
  }
  client_.nic(cfg_.nic_index).stage_send(cc.qp_down, send);
}

void HyperLoopGroup::dispatch(Prim p, QueuedOp&& op) {
  switch (p) {
    case Prim::kWrite:
      issue_gwrite(op.a, op.len, op.flush, std::move(op.done));
      break;
    case Prim::kWriteV:
      issue_gwritev(op.extents, op.flush, std::move(op.done));
      break;
    case Prim::kMemcpy:
      issue_gmemcpy(op.a, op.b, op.len, op.flush, std::move(op.done));
      break;
    case Prim::kCas:
      issue_gcas(op.a, op.expected, op.desired, op.exec,
                 std::move(op.cas_done));
      break;
  }
}

void HyperLoopGroup::on_ack_cqe(Prim p) {
  ClientChain& cc = client_chain_[static_cast<int>(p)];
  rdma::Cqe cqe;
  while (cc.cq_up->poll(&cqe)) {
    if (!cqe.has_imm) continue;
    PendingSlot& slot = cc.pending[cqe.imm & cc.pending_mask];
    if (!slot.live || slot.seq != cqe.imm) continue;
    slot.live = false;
    cc.completed_seq = cqe.imm;
    client_.nic(cfg_.nic_index).post_recv(cc.qp_up, RecvWqe{});
    --cc.inflight;
    if (p == Prim::kCas) {
      CasDone handler = std::move(slot.cas_done);
      client_.mem().read(
          cc.ack_base + (cqe.imm % (cfg_.max_inflight * 2)) * result_bytes(),
          cas_scratch_.data(), result_bytes());
      handler(CasResult(cas_scratch_.data(), replicas_.size()));
    } else {
      Done handler = std::move(slot.done);
      if (handler) handler();
    }
    if (!cc.waiting.empty() && cc.inflight < cfg_.max_inflight) {
      QueuedOp next = std::move(cc.waiting.front());
      cc.waiting.pop_front();
      ++cc.inflight;
      dispatch(p, std::move(next));
    }
  }
  cc.cq_up->arm_notify();
}

// ------------------------------------------------------------- primitives --

void HyperLoopGroup::issue_gwrite(uint64_t offset, uint32_t len, bool flush,
                                  Done done) {
  ClientChain& cc = client_chain_[static_cast<int>(Prim::kWrite)];
  const uint64_t seq = cc.next_seq++;
  ++counters_.gwrites;
  counters_.bytes_replicated += uint64_t{len} * replicas_.size();

  // Data WRITE (+FLUSH) to the first replica, then the metadata SEND that
  // drives the offloaded chain — staged together under one doorbell.
  const Replica& r0 = replicas_.front();
  Wqe data = rdma::make_write(client_region_ + offset, 0,
                              r0.data_base + offset, r0.data_mr.rkey, len);
  // The metadata SEND behind it (same QP, one doorbell) acknowledges the
  // WRITE cumulatively — no standalone ACK packet needed.
  data.d.flags |= rdma::kWqeFlagAckElide;
  client_.nic(cfg_.nic_index).stage_send(cc.qp_down, data);
  if (flush) {
    client_.nic(cfg_.nic_index).stage_send(
        cc.qp_down, rdma::make_flush(r0.data_base, r0.data_mr.rkey));
  }
  const uint32_t blob_len = stage_gwrite_blob(seq, offset, len, flush);
  claim_slot(cc, seq).done = std::move(done);
  stage_meta_send(Prim::kWrite, seq, blob_len);
  client_.nic(cfg_.nic_index).ring_doorbell(cc.qp_down);
}

void HyperLoopGroup::issue_gwritev(const ExtentVec& extents, bool flush,
                                   Done done) {
  ClientChain& cc = client_chain_[static_cast<int>(Prim::kWriteV)];
  const uint64_t seq = cc.next_seq++;
  ++counters_.gwritevs;
  counters_.gwritev_extents += extents.size();
  for (const Extent& e : extents) {
    counters_.bytes_replicated += uint64_t{e.len} * replicas_.size();
  }

  // All extent WRITEs to the first replica, one trailing FLUSH, and the
  // metadata SEND — one doorbell, one chain traversal.
  const Replica& r0 = replicas_.front();
  for (const Extent& e : extents) {
    Wqe data =
        rdma::make_write(client_region_ + e.offset, 0, r0.data_base + e.offset,
                         r0.data_mr.rkey, e.len);
    data.d.flags |= rdma::kWqeFlagAckElide;  // metadata SEND acks the batch
    client_.nic(cfg_.nic_index).stage_send(cc.qp_down, data);
  }
  if (flush) {
    client_.nic(cfg_.nic_index).stage_send(
        cc.qp_down, rdma::make_flush(r0.data_base, r0.data_mr.rkey));
  }
  const uint32_t blob_len = stage_gwritev_blob(seq, extents, flush);
  claim_slot(cc, seq).done = std::move(done);
  stage_meta_send(Prim::kWriteV, seq, blob_len);
  client_.nic(cfg_.nic_index).ring_doorbell(cc.qp_down);
}

void HyperLoopGroup::issue_gmemcpy(uint64_t src, uint64_t dst, uint32_t len,
                                   bool flush, Done done) {
  ClientChain& cc = client_chain_[static_cast<int>(Prim::kMemcpy)];
  const uint64_t seq = cc.next_seq++;
  ++counters_.gmemcpys;
  // The client's copy of the region must stay in sync: perform the same
  // copy locally (the client is the head of the chain).
  client_.mem().copy(client_region_ + dst, client_region_ + src, len);
  client_.nvm().persist(client_region_ + dst, len);
  const uint32_t blob_len = stage_gmemcpy_blob(seq, src, dst, len, flush);
  claim_slot(cc, seq).done = std::move(done);
  stage_meta_send(Prim::kMemcpy, seq, blob_len);
  client_.nic(cfg_.nic_index).ring_doorbell(cc.qp_down);
}

void HyperLoopGroup::issue_gcas(uint64_t offset, uint64_t expected,
                                uint64_t desired, ExecMap exec, CasDone done) {
  ClientChain& cc = client_chain_[static_cast<int>(Prim::kCas)];
  const uint64_t seq = cc.next_seq++;
  ++counters_.gcas;
  const uint32_t blob_len =
      stage_gcas_blob(seq, offset, expected, desired, exec);
  claim_slot(cc, seq).cas_done = std::move(done);
  stage_meta_send(Prim::kCas, seq, blob_len);
  client_.nic(cfg_.nic_index).ring_doorbell(cc.qp_down);
}

void HyperLoopGroup::gwrite(uint64_t offset, uint32_t len, bool flush,
                            Done done) {
  assert(!stopped_ && "gwrite on a stopped group");
  assert(offset + len <= cfg_.region_size);
  ClientChain& cc = client_chain_[static_cast<int>(Prim::kWrite)];
  if (cc.inflight >= cfg_.max_inflight) {
    QueuedOp op;
    op.a = offset;
    op.len = len;
    op.flush = flush;
    op.done = std::move(done);
    cc.waiting.push_back(std::move(op));
    return;
  }
  ++cc.inflight;
  issue_gwrite(offset, len, flush, std::move(done));
}

void HyperLoopGroup::gwritev(const ExtentVec& extents, bool flush,
                             Done done) {
  assert(!stopped_ && "gwritev on a stopped group");
  assert(!extents.empty());
#ifndef NDEBUG
  for (const Extent& e : extents) {
    assert(e.offset + e.len <= cfg_.region_size);
  }
#endif
  ClientChain& cc = client_chain_[static_cast<int>(Prim::kWriteV)];
  if (cc.inflight >= cfg_.max_inflight) {
    QueuedOp op;
    op.extents = extents;
    op.flush = flush;
    op.done = std::move(done);
    cc.waiting.push_back(std::move(op));
    return;
  }
  ++cc.inflight;
  issue_gwritev(extents, flush, std::move(done));
}

void HyperLoopGroup::gmemcpy(uint64_t src_offset, uint64_t dst_offset,
                             uint32_t len, bool flush, Done done) {
  assert(!stopped_ && "gmemcpy on a stopped group");
  assert(src_offset + len <= cfg_.region_size);
  assert(dst_offset + len <= cfg_.region_size);
  ClientChain& cc = client_chain_[static_cast<int>(Prim::kMemcpy)];
  if (cc.inflight >= cfg_.max_inflight) {
    QueuedOp op;
    op.a = src_offset;
    op.b = dst_offset;
    op.len = len;
    op.flush = flush;
    op.done = std::move(done);
    cc.waiting.push_back(std::move(op));
    return;
  }
  ++cc.inflight;
  issue_gmemcpy(src_offset, dst_offset, len, flush, std::move(done));
}

void HyperLoopGroup::gcas(uint64_t offset, uint64_t expected,
                          uint64_t desired, ExecMap exec_map, CasDone done) {
  assert(!stopped_ && "gcas on a stopped group");
  assert(offset + 8 <= cfg_.region_size);
  ClientChain& cc = client_chain_[static_cast<int>(Prim::kCas)];
  if (cc.inflight >= cfg_.max_inflight) {
    QueuedOp op;
    op.a = offset;
    op.expected = expected;
    op.desired = desired;
    op.exec = exec_map;
    op.cas_done = std::move(done);
    cc.waiting.push_back(std::move(op));
    return;
  }
  ++cc.inflight;
  issue_gcas(offset, expected, desired, exec_map, std::move(done));
}

void HyperLoopGroup::gflush(Done done) {
  ++counters_.gflushes;
  gwrite(0, 0, /*flush=*/true, std::move(done));
}

// ------------------------------------------------------------ data access --

void HyperLoopGroup::client_store(uint64_t offset, const void* src,
                                  uint32_t len) {
  assert(offset + len <= cfg_.region_size);
  client_.mem().write(client_region_ + offset, src, len);
  client_.nvm().persist(client_region_ + offset, len);
}

void HyperLoopGroup::client_load(uint64_t offset, void* dst,
                                 uint32_t len) const {
  client_.mem().read(client_region_ + offset, dst, len);
}

void HyperLoopGroup::replica_load(size_t i, uint64_t offset, void* dst,
                                  uint32_t len) const {
  const Replica& r = replicas_.at(i);
  r.server->mem().read(r.data_base + offset, dst, len);
}

rdma::Addr HyperLoopGroup::replica_region_base(size_t i) const {
  return replicas_.at(i).data_base;
}

uint64_t HyperLoopGroup::total_rnr_stalls() const {
  uint64_t n = 0;
  for (const Replica& r : replicas_) n += r.server->nic(cfg_.nic_index).counters().rnr_stalls;
  return n;
}

}  // namespace hyperloop::core
