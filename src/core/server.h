// Server and Cluster composition.
//
// A Server bundles everything one machine contributes to the simulation:
// cores (CpuScheduler), DRAM (HostMemory), battery-backed NVM (NvmDevice),
// an RDMA NIC, and a kernel TCP stack. A Cluster owns the event loop, the
// fabric, and a set of servers — the unit every test, example, and
// benchmark starts from.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/tcp_stack.h"
#include "nvm/nvm_device.h"
#include "rdma/network.h"
#include "rdma/nic.h"
#include "sim/background_load.h"
#include "sim/cpu_scheduler.h"
#include "sim/event_loop.h"
#include "sim/rng.h"

namespace hyperloop::core {

struct ServerConfig {
  std::string name = "server";
  sim::CpuScheduler::Config cpu{};
  size_t mem_capacity = 256u << 20;  ///< host DRAM arena
  size_t nvm_size = 64u << 20;       ///< battery-backed region within it
  rdma::Nic::Config nic{};
  TcpStack::Config tcp{};
  /// Simulated NICs on this machine (sharded deployments place each
  /// shard's QPs on a distinct NIC). NIC 0 carries the TCP stack.
  uint32_t num_nics = 1;
};

/// One machine: CPU + memory + NVM + RNIC + TCP.
class Server {
 public:
  Server(sim::EventLoop& loop, rdma::Network& net, ServerConfig cfg);
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  const std::string& name() const { return cfg_.name; }
  sim::EventLoop& loop() { return loop_; }
  sim::CpuScheduler& sched() { return sched_; }
  rdma::HostMemory& mem() { return mem_; }
  nvm::NvmDevice& nvm() { return nvm_; }
  rdma::Nic& nic() { return nic_; }
  /// NIC `i` of num_nics (wraps, so shard s can always ask for NIC s).
  rdma::Nic& nic(size_t i) {
    const size_t n = 1 + extra_nics_.size();
    i %= n;
    return i == 0 ? nic_ : *extra_nics_[i - 1];
  }
  size_t num_nics() const { return 1 + extra_nics_.size(); }
  TcpStack& tcp() { return tcp_; }

  /// Starts `tenants` background tenant processes on this server.
  void add_background_load(int tenants, sim::Rng rng,
                           sim::BackgroundLoad::Config cfg = {});

 private:
  ServerConfig cfg_;
  sim::EventLoop& loop_;
  sim::CpuScheduler sched_;
  rdma::HostMemory mem_;
  nvm::NvmDevice nvm_;
  rdma::Nic nic_;
  std::vector<std::unique_ptr<rdma::Nic>> extra_nics_;
  TcpStack tcp_;
  std::vector<std::unique_ptr<sim::BackgroundLoad>> loads_;
};

/// The whole testbed: event loop + fabric + servers.
class Cluster {
 public:
  struct Config {
    int num_servers = 3;
    ServerConfig server{};
    rdma::Network::Config network{};
    uint64_t seed = 42;
  };

  explicit Cluster(Config cfg);

  sim::EventLoop& loop() { return loop_; }
  rdma::Network& net() { return net_; }
  Server& server(size_t i) { return *servers_.at(i); }
  size_t size() const { return servers_.size(); }

  /// Adds one more server (e.g. a dedicated client machine).
  Server& add_server(ServerConfig cfg);

  /// A fresh deterministic RNG stream derived from the cluster seed.
  sim::Rng fork_rng() { return rng_.fork(); }

 private:
  sim::EventLoop loop_;
  rdma::Network net_;
  sim::Rng rng_;
  std::vector<std::unique_ptr<Server>> servers_;
};

}  // namespace hyperloop::core
