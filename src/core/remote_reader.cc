#include "core/remote_reader.h"

#include <cassert>

namespace hyperloop::core {

RemoteReader::RemoteReader(Server& client, Server& target,
                           rdma::Addr remote_base, uint32_t rkey,
                           uint32_t slots, uint32_t slot_size)
    : client_(client),
      remote_base_(remote_base),
      rkey_(rkey),
      slot_size_(slot_size) {
  cq_ = client_.nic().create_cq();
  qp_ = client_.nic().create_qp(cq_, nullptr, slots * 2 + 8);
  // Stub endpoint on the target; one-sided READs only need routing.
  rdma::QueuePair* stub = target.nic().create_qp(nullptr, nullptr, 8);
  client_.nic().connect(qp_, target.nic().id(), stub->qpn);
  target.nic().connect(stub, client_.nic().id(), qp_->qpn);

  bounce_base_ = client_.mem().alloc(uint64_t{slots} * slot_size, 64);
  for (uint32_t s = 0; s < slots; ++s) free_slots_.push_back(s);

  cq_->set_notify([this] { on_completion(); });
  cq_->arm_notify();
}

void RemoteReader::read(uint64_t offset, uint32_t len, ReadDone done) {
  assert(len <= slot_size_ && "read larger than bounce slot");
  if (free_slots_.empty()) {
    waiting_.push_back(QueuedRead{offset, len, std::move(done)});
    return;
  }
  issue(offset, len, std::move(done));
}

void RemoteReader::issue(uint64_t offset, uint32_t len, ReadDone done) {
  const uint32_t slot = free_slots_.back();
  free_slots_.pop_back();
  const uint64_t wr_id = next_wr_id_++;
  pending_.push_back(Pending{wr_id, slot, len, std::move(done)});
  ++reads_issued_;
  client_.nic().post_send(
      qp_, rdma::make_read(bounce_base_ + uint64_t{slot} * slot_size_, 0,
                           remote_base_ + offset, rkey_, len, wr_id));
}

void RemoteReader::on_completion() {
  rdma::Cqe cqe;
  while (cq_->poll(&cqe)) {
    assert(!pending_.empty());
    Pending p = std::move(pending_.front());
    pending_.pop_front();
    assert(p.wr_id == cqe.wr_id && "READ completions must be FIFO");
    std::vector<uint8_t> data(p.len);
    client_.mem().read(bounce_base_ + uint64_t{p.slot} * slot_size_,
                       data.data(), p.len);
    free_slots_.push_back(p.slot);
    p.done(std::move(data));
    if (!waiting_.empty() && !free_slots_.empty()) {
      QueuedRead next = std::move(waiting_.front());
      waiting_.pop_front();
      issue(next.offset, next.len, std::move(next.done));
    }
  }
  cq_->arm_notify();
}

}  // namespace hyperloop::core
