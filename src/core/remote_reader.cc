#include "core/remote_reader.h"

#include <utility>

namespace hyperloop::core {

RemoteReader::RemoteReader(Server& client, std::vector<Target> targets,
                           Options opts)
    : client_(client), opts_(opts) {
  assert(!targets.empty());
  assert(opts_.slots > 0 && opts_.slot_size > 0);
  endpoints_.reserve(targets.size());
  rdma::Nic& nic = client_nic();
  for (const Target& t : targets) {
    assert(t.server != nullptr);
    Endpoint ep;
    ep.server = t.server;
    ep.remote_base = t.remote_base;
    ep.rkey = t.rkey;
    ep.cq = nic.create_cq();
    ep.qp = nic.create_qp(ep.cq, nullptr, opts_.slots * 2 + 8);
    // Stub endpoint on the replica; one-sided READs only need routing.
    rdma::Nic& rnic = t.server->nic(opts_.nic_index);
    ep.stub = rnic.create_qp(nullptr, nullptr, 8);
    nic.connect(ep.qp, rnic.id(), ep.stub->qpn);
    rnic.connect(ep.stub, nic.id(), ep.qp->qpn);
    ep.bounce_base =
        client_.mem().alloc(uint64_t{opts_.slots} * opts_.slot_size, 64);
    for (uint32_t s = 0; s < opts_.slots; ++s) ep.free_slots.push_back(s);
    endpoints_.push_back(std::move(ep));
  }
  for (size_t i = 0; i < endpoints_.size(); ++i) {
    endpoints_[i].cq->set_notify([this, i] { on_completion(i); });
    endpoints_[i].cq->arm_notify();
  }
}

RemoteReader::RemoteReader(Server& client, std::vector<Target> targets)
    : RemoteReader(client, std::move(targets), Options{}) {}

RemoteReader::RemoteReader(Server& client, Server& target,
                           rdma::Addr remote_base, uint32_t rkey,
                           uint32_t slots, uint32_t slot_size)
    : RemoteReader(client, {Target{&target, remote_base, rkey}},
                   Options{slots, slot_size, Policy::kHeadOnly, 0}) {}

RemoteReader::~RemoteReader() { stop(); }

uint32_t RemoteReader::frags_needed(const ReadVec& v, uint32_t slot_size) {
  uint32_t n = 0;
  for (const ReadExtent& e : v) {
    assert(e.len > 0);
    n += (e.len + slot_size - 1) / slot_size;
  }
  return n;
}

size_t RemoteReader::pick_replica() {
  switch (opts_.policy) {
    case Policy::kHeadOnly:
      return 0;
    case Policy::kRoundRobin:
      return rr_next_++ % endpoints_.size();
    case Policy::kLeastOutstanding: {
      size_t best = 0;
      for (size_t i = 1; i < endpoints_.size(); ++i) {
        if (endpoints_[i].outstanding < endpoints_[best].outstanding) {
          best = i;
        }
      }
      return best;
    }
  }
  return 0;
}

size_t RemoteReader::next_replica() { return pick_replica(); }

void RemoteReader::read(uint64_t offset, uint32_t len, ReadDone done) {
  ReadVec v;
  v.push_back(ReadExtent{offset, len});
  submit(pick_replica(), v, std::move(done));
}

void RemoteReader::read_from(size_t replica, uint64_t offset, uint32_t len,
                             ReadDone done) {
  ReadVec v;
  v.push_back(ReadExtent{offset, len});
  submit(replica, v, std::move(done));
}

void RemoteReader::readv(const ReadVec& extents, ReadDone done) {
  submit(pick_replica(), extents, std::move(done));
}

void RemoteReader::readv_from(size_t replica, const ReadVec& extents,
                              ReadDone done) {
  submit(replica, extents, std::move(done));
}

void RemoteReader::submit(size_t replica, const ReadVec& extents,
                          ReadDone done) {
  assert(!stopped_ && "read on a stopped reader");
  assert(!extents.empty());
  assert(replica < endpoints_.size());
  const uint32_t need = frags_needed(extents, opts_.slot_size);
  assert(need <= opts_.slots && "read larger than the bounce ring");
  // FIFO: never jump ahead of an already-parked read.
  if (!waiting_.empty() ||
      endpoints_[replica].free_slots.size() < need) {
    Parked p;
    p.extents = extents;
    p.replica = static_cast<uint32_t>(replica);
    p.done = std::move(done);
    waiting_.push_back(std::move(p));
    return;
  }
  issue(replica, extents, std::move(done));
}

uint32_t RemoteReader::acquire_op() {
  if (ops_free_.empty()) {
    ops_.emplace_back();
    return static_cast<uint32_t>(ops_.size() - 1);
  }
  const uint32_t idx = ops_free_.back();
  ops_free_.pop_back();
  return idx;
}

void RemoteReader::issue(size_t replica, const ReadVec& extents,
                         ReadDone done) {
  Endpoint& ep = endpoints_[replica];
  const uint32_t total = extents.total_len();
  const uint32_t op_idx = acquire_op();
  ReadOp& op = ops_[op_idx];
  op.remaining = 0;
  op.len = total;
  op.live = true;
  op.started = client_.loop().now();
  if (op.scratch.size() < total) op.scratch.resize(total);
  op.done = std::move(done);

  // Stage every fragment, then ring the doorbell once: the whole logical
  // read enters the NIC engine as one coalesced batch.
  uint32_t dst = 0;
  for (const ReadExtent& e : extents) {
    uint64_t off = e.offset;
    uint32_t left = e.len;
    while (left > 0) {
      const uint32_t flen = left < opts_.slot_size ? left : opts_.slot_size;
      assert(!ep.free_slots.empty());
      const uint32_t slot = ep.free_slots.back();
      ep.free_slots.pop_back();
      const uint64_t wr_id = next_wr_id_++;
      ep.pending.push_back(Frag{wr_id, slot, flen, op_idx, dst});
      client_nic().stage_send(
          ep.qp,
          rdma::make_read(ep.bounce_base + uint64_t{slot} * opts_.slot_size,
                          0, ep.remote_base + off, ep.rkey, flen, wr_id));
      ++op.remaining;
      ++ep.outstanding;
      ++ep.frags_issued;
      ++stats_.frags_issued;
      off += flen;
      dst += flen;
      left -= flen;
    }
  }
  client_nic().ring_doorbell(ep.qp);
  ++stats_.reads_issued;
  stats_.read_bytes += total;
}

void RemoteReader::replay_waiting() {
  while (!waiting_.empty()) {
    Parked& head = waiting_.front();
    const uint32_t need = frags_needed(head.extents, opts_.slot_size);
    if (endpoints_[head.replica].free_slots.size() < need) return;
    Parked p = std::move(head);
    waiting_.pop_front();
    issue(p.replica, p.extents, std::move(p.done));
  }
}

void RemoteReader::on_completion(size_t replica) {
  Endpoint& ep = endpoints_[replica];
  rdma::Cqe cqe;
  while (ep.cq->poll(&cqe)) {
    assert(!ep.pending.empty());
    const Frag f = ep.pending.front();
    ep.pending.pop_front();
    assert(f.wr_id == cqe.wr_id && "READ completions must be FIFO");
    ReadOp& op = ops_[f.op];
    client_.mem().read(ep.bounce_base + uint64_t{f.slot} * opts_.slot_size,
                       op.scratch.data() + f.dst_off, f.len);
    ep.free_slots.push_back(f.slot);
    --ep.outstanding;
    assert(op.live && op.remaining > 0);
    if (--op.remaining > 0) {
      replay_waiting();
      continue;
    }
    // Logical read complete: hand the caller a view into the op's
    // scratch, release the op slot only after the callback returns (a
    // read issued from inside it could otherwise reuse — and resize —
    // the same scratch under the live view).
    latency_.record(static_cast<int64_t>(client_.loop().now() - op.started));
    op.live = false;
    ReadDone done = std::move(op.done);
    // Snapshot the view before replaying: a replayed read can grow ops_
    // (invalidating `op`), but the scratch's heap buffer stays put.
    const uint8_t* data = op.scratch.data();
    const uint32_t len = op.len;
    replay_waiting();
    done(ReadView(data, len));
    ops_free_.push_back(f.op);
    if (stopped_) return;  // the callback tore the reader down
  }
  ep.cq->arm_notify();
}

void RemoteReader::stop() {
  if (stopped_) return;
  stopped_ = true;
  stats_.aborted_reads += waiting_.size();
  while (!waiting_.empty()) waiting_.pop_front();
  rdma::Nic& nic = client_nic();
  for (Endpoint& ep : endpoints_) {
    // Drop (never invoke) the callbacks of logical reads still in flight.
    while (!ep.pending.empty()) {
      const Frag f = ep.pending.front();
      ep.pending.pop_front();
      ReadOp& op = ops_[f.op];
      if (op.live) {
        op.live = false;
        op.done.reset();
        ++stats_.aborted_reads;
      }
    }
    // QPs before their CQ (destroy_cq asserts no QP still references it).
    // Response packets still in the network then drop at the NIC as
    // invalid_qp_drops.
    nic.destroy_qp(ep.qp);
    ep.server->nic(opts_.nic_index).destroy_qp(ep.stub);
    nic.destroy_cq(ep.cq);
    ep.qp = ep.stub = nullptr;
    ep.cq = nullptr;
  }
}

}  // namespace hyperloop::core
