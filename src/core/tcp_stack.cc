#include "core/tcp_stack.h"

#include <cassert>
#include <cstring>

#include "core/buf_pool.h"

namespace hyperloop::core {
namespace {

// Wire header: destination port (2 bytes) + source port placeholder.
struct DgramHeader {
  uint16_t dst_port;
  uint16_t src_port;
};

}  // namespace

TcpStack::TcpStack(sim::EventLoop& loop, rdma::Network& net,
                   rdma::NicId nic_id, sim::CpuScheduler& sched, Config cfg)
    : loop_(loop), net_(net), nic_id_(nic_id), sched_(sched), cfg_(cfg) {
  net_.set_datagram_handler(
      nic_id_, [this](rdma::NicId src, std::vector<uint8_t> bytes) {
        on_datagram(src, std::move(bytes));
      });
}

void TcpStack::listen(uint16_t port, sim::ProcessId proc, Handler handler) {
  listeners_[port] = Listener{proc, std::move(handler)};
}

void TcpStack::send(sim::ProcessId sender_proc, rdma::NicId dst,
                    uint16_t port, std::vector<uint8_t> data) {
  const auto cpu =
      cfg_.send_cpu_base +
      static_cast<sim::Duration>(cfg_.send_cpu_ns_per_byte *
                                 static_cast<double>(data.size()));
  // The sender's process must get a core to push the message through the
  // socket layer; only then do bytes reach the wire.
  sched_.submit(sender_proc, cpu,
                [this, dst, port, d = std::move(data)]() mutable {
                  DgramHeader h{port, 0};
                  std::vector<uint8_t> wire = BufPool::acquire(sizeof(h) + d.size());
                  std::memcpy(wire.data(), &h, sizeof(h));
                  std::memcpy(wire.data() + sizeof(h), d.data(), d.size());
                  BufPool::release(std::move(d));
                  ++sent_;
                  net_.transmit_datagram(nic_id_, dst, std::move(wire));
                });
}

void TcpStack::send_many(sim::ProcessId sender_proc,
                         std::vector<Dgram> msgs) {
  if (msgs.empty()) return;
  sim::Duration cpu = 0;
  for (const Dgram& m : msgs) {
    cpu += cfg_.send_cpu_base +
           static_cast<sim::Duration>(cfg_.send_cpu_ns_per_byte *
                                      static_cast<double>(m.data.size()));
  }
  // Same total CPU as per-message send() — the coalescing saves scheduler
  // events, not modeled work — so baseline cost comparisons are unchanged.
  sched_.submit(sender_proc, cpu, [this, ms = std::move(msgs)]() mutable {
    for (Dgram& m : ms) {
      DgramHeader h{m.port, 0};
      std::vector<uint8_t> wire = BufPool::acquire(sizeof(h) + m.data.size());
      std::memcpy(wire.data(), &h, sizeof(h));
      std::memcpy(wire.data() + sizeof(h), m.data.data(), m.data.size());
      BufPool::release(std::move(m.data));
      ++sent_;
      net_.transmit_datagram(nic_id_, m.dst, std::move(wire));
    }
  });
}

void TcpStack::on_datagram(rdma::NicId src, std::vector<uint8_t> bytes) {
  assert(bytes.size() >= sizeof(DgramHeader));
  DgramHeader h;
  std::memcpy(&h, bytes.data(), sizeof(h));
  auto it = listeners_.find(h.dst_port);
  assert(it != listeners_.end() && "datagram for un-bound port");
  // Listener nodes are map-stable and never unbound, so the deferred
  // delivery captures a pointer instead of copying the std::function (a
  // per-message heap allocation the baseline shouldn't pay).
  const Listener* l = &it->second;

  // Strip the wire header in place and hand the same buffer up — no
  // payload copy, no allocation.
  bytes.erase(bytes.begin(), bytes.begin() + sizeof(h));
  const auto cpu =
      cfg_.recv_cpu_base +
      static_cast<sim::Duration>(cfg_.recv_cpu_ns_per_byte *
                                 static_cast<double>(bytes.size()));
  ++received_;
  // Receive path: the listener's process is woken and charged before the
  // application handler runs — the multi-tenant pain point.
  sched_.submit(l->proc, cpu,
                [l, src, port = h.dst_port, p = std::move(bytes)]() mutable {
                  l->handler(src, port, std::move(p));
                });
}

}  // namespace hyperloop::core
