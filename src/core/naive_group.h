// Naïve-RDMA baseline (§6, "Naïve-RDMA"): the same group-primitive API as
// HyperLoop, implemented the way state-of-the-art RDMA storage systems do
// it — with the *replica CPU* on the critical path of every hop.
//
// Chain: client -> R0 -> ... -> R{G-1} -> client. The client WRITEs data
// one-sided into R0 and SENDs a command. Each replica's process must then
// be scheduled onto a core to: poll/receive the completion, parse the
// command, execute it (CPU memcpy / CAS / persist), post the WRITE+SEND
// pair to the next replica, and re-arm its receive ring. Under multi-tenant
// CPU load every one of those steps queues behind busy cores, which is
// exactly the tail the paper measures.
//
// Three wakeup modes, as in Fig. 11 / Fig. 9:
//   kEvent         - completion-channel wakeup through the shared run queue.
//   kPolling       - the replica pins a dedicated core and busy-polls its
//                    CQ (best case; only viable when cores are plentiful).
//   kSharedPolling - the replica busy-polls *without* a reserved core: its
//                    poll loop spins through the shared run queue like any
//                    other tenant (the only option when cores are
//                    oversubscribed 10:1). This burns CPU, deepens
//                    everyone's queues, and still waits a scheduling
//                    round per message — the §6.2 observation that
//                    polling can be *worse* than events under
//                    multi-tenancy.
#pragma once

#include <cstdint>
#include <vector>

#include "core/group.h"
#include "core/server.h"
#include "rdma/nic.h"
#include "sim/ring.h"

namespace hyperloop::core {

class NaiveRdmaGroup final : public ReplicationGroup {
 public:
  enum class Mode { kEvent, kPolling, kSharedPolling };

  struct Config {
    uint64_t region_size = 4u << 20;
    Mode mode = Mode::kEvent;
    uint32_t max_inflight = 32;
    uint32_t recv_slots = 256;
    /// CPU cost per handler wakeup (sched-in, cq poll loop setup).
    sim::Duration handler_base = sim::usec(1);
    /// kSharedPolling: length of each spin slice through the run queue.
    sim::Duration poll_slice = sim::usec(200);
    /// CPU cost to parse one command and post the forwarding WRs.
    sim::Duration per_message = sim::usec(1) + sim::nsec(500);
    /// CPU memcpy throughput for gMEMCPY execution (ns per byte).
    double copy_ns_per_byte = 0.15;
    /// CPU cost to persist a range (cache-line flush loop).
    sim::Duration persist_base = sim::nsec(400);
    double persist_ns_per_byte = 0.01;
  };

  NaiveRdmaGroup(Server& client, std::vector<Server*> replicas, Config cfg);
  ~NaiveRdmaGroup() override;

  size_t group_size() const override { return replicas_.size(); }
  uint64_t region_size() const override { return cfg_.region_size; }
  void gwrite(uint64_t offset, uint32_t len, bool flush, Done done) override;
  void gmemcpy(uint64_t src_offset, uint64_t dst_offset, uint32_t len,
               bool flush, Done done) override;
  void gcas(uint64_t offset, uint64_t expected, uint64_t desired,
            ExecMap exec_map, CasDone done) override;
  void gflush(Done done) override;
  void stop() override;
  void client_store(uint64_t offset, const void* src, uint32_t len) override;
  void client_load(uint64_t offset, void* dst, uint32_t len) const override;
  void replica_load(size_t i, uint64_t offset, void* dst,
                    uint32_t len) const override;

  /// CPU seconds consumed by replica i's handler process so far.
  sim::Duration replica_cpu_time(size_t i) const;
  Server& replica_server(size_t i) { return *replicas_.at(i).server; }
  rdma::Addr replica_region_base(size_t i) const {
    return replicas_.at(i).data_base;
  }

  /// rkey of replica i's data region (for one-sided reader QPs).
  uint32_t replica_data_rkey(size_t i) const {
    return replicas_.at(i).data_mr.rkey;
  }

 private:
  static constexpr size_t kMaxGroup = 8;

  // The command forwarded down the chain (and echoed back as the ACK).
  struct Cmd {
    uint8_t type = 0;  // 0 gwrite, 1 gmemcpy, 2 gcas
    uint8_t flush = 0;
    uint16_t pad = 0;
    uint32_t seq = 0;
    uint64_t offset = 0;
    uint64_t dst = 0;
    uint64_t len = 0;
    uint64_t expected = 0;
    uint64_t desired = 0;
    uint64_t exec_mask = 0;
    uint64_t result[kMaxGroup] = {};
  };

  struct Replica {
    Server* server = nullptr;
    size_t index = 0;
    rdma::Addr data_base = 0;
    rdma::MemoryRegion data_mr{};
    rdma::QueuePair* qp_prev = nullptr;
    rdma::QueuePair* qp_next = nullptr;
    rdma::CompletionQueue* cq_recv = nullptr;
    rdma::CompletionQueue* cq_send = nullptr;
    rdma::Addr cmd_ring = 0;  ///< RECV landing buffers
    uint32_t cmd_lkey = 0;
    sim::ProcessId pid = 0;
  };

  /// One in-flight command, direct-mapped by seq & pending_mask_ (ACKs
  /// come back in chain FIFO order, so live seqs form a window no wider
  /// than max_inflight and never collide in a 2x power-of-two table).
  struct PendingSlot {
    uint32_t seq = 0;
    bool live = false;
    Done done;
    CasDone cas_done;
  };

  /// A command parked while the credit window is full; the seq field is
  /// assigned when the command is finally issued.
  struct QueuedCmd {
    Cmd cmd;
    Done done;
    CasDone cas_done;
  };

  void setup_replica(size_t i);
  void wire_chain();
  void shared_poll_loop(size_t i);
  void on_replica_notify(size_t i);
  void replica_drain(size_t i);
  sim::Duration message_cost(const Cmd& cmd) const;
  void execute_and_forward(size_t i, Cmd cmd);
  void post_recv_slot(Replica& r, uint64_t slot);
  void on_client_ack();
  void issue_cmd(Cmd cmd, Done done, CasDone cas_done);
  void submit_cmd(Cmd cmd, Done done, CasDone cas_done);

  Server& client_;
  std::vector<Replica> replicas_;
  Config cfg_;

  rdma::QueuePair* qp_down_ = nullptr;
  rdma::QueuePair* qp_up_ = nullptr;
  rdma::CompletionQueue* cq_down_ = nullptr;
  rdma::CompletionQueue* cq_up_ = nullptr;
  rdma::Addr client_region_ = 0;
  rdma::Addr client_cmd_ring_ = 0;  ///< outbound command staging
  rdma::Addr client_ack_ring_ = 0;  ///< inbound ACK landing
  uint32_t client_ack_lkey_ = 0;

  uint32_t next_seq_ = 0;
  uint32_t inflight_ = 0;
  std::vector<PendingSlot> pending_;  ///< direct-mapped by seq & mask
  uint32_t pending_mask_ = 0;
  sim::Ring<QueuedCmd> waiting_;  ///< commands parked for a credit
};

}  // namespace hyperloop::core
