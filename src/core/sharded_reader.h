// Sharded one-sided read datapath (DESIGN.md "Read datapath").
//
// A ShardedReader composes K per-shard RemoteReader pools behind the
// single-reader read/readv/scan API, routing offsets through the same POD
// ShardRouter as ShardedGroup — identity addressing, so the layers above
// keep their logical offsets and each shard's reader simply serves the
// slices its chain owns. Uniform batches forward untouched to the owning
// shard's reader (which spreads them across that chain's replicas under
// its own policy); batches that span shards are split per shard and
// rejoined with a pooled scatter-join completion, exactly the gWRITEV
// split/join shape on the write side: child completions capture the join
// slot *index*, the assembled bytes live in a per-join scratch that grows
// to high-water and is reused, and the caller sees one ReadDone with the
// extents concatenated in list order.
//
// scan() is the batched cross-slice form: one contiguous logical span is
// split at routing boundaries into one extent per shard and issued as a
// single scatter readv — N slice hops become one doorbell per shard.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/remote_reader.h"
#include "core/sharded_group.h"

namespace hyperloop::core {

class ShardedReader {
 public:
  struct Stats {
    uint64_t reads_issued = 0;   ///< logical reads routed (incl. scans)
    uint64_t read_bytes = 0;     ///< payload bytes returned to callers
    uint64_t scatter_reads = 0;  ///< batches split across >1 shard
    uint64_t aborted_reads = 0;  ///< joins dropped by stop()
  };

  /// Takes ownership of the per-shard readers. Reader s serves every
  /// offset the router maps to shard s; the router must match the one
  /// partitioning the write-side ShardedGroup.
  ShardedReader(std::vector<std::unique_ptr<RemoteReader>> shards,
                ShardRouter router);
  ~ShardedReader();
  ShardedReader(const ShardedReader&) = delete;
  ShardedReader& operator=(const ShardedReader&) = delete;

  /// Reads `len` bytes at logical `offset`. The range must not straddle a
  /// routing boundary (same contract as the write primitives).
  void read(uint64_t offset, uint32_t len, ReadDone done);

  /// Same, from a specific replica of the owning shard's chain (callers
  /// that read-lock a replica must read the one they locked).
  void read_from(size_t replica, uint64_t offset, uint32_t len,
                 ReadDone done);

  /// Batched scatter read: extents may live on different shards. The
  /// completion view is the extents' bytes concatenated in list order;
  /// single-shard batches forward to that shard's reader untouched.
  void readv(const ReadVec& extents, ReadDone done);

  /// Contiguous logical span [offset, offset + len), split at routing
  /// boundaries into at most ReadVec::kCapacity extents and issued as one
  /// scatter readv.
  void scan(uint64_t offset, uint64_t len, ReadDone done);

  /// Idempotent teardown: live joins are dropped without their callbacks
  /// firing, then every per-shard reader stops. Destructor calls stop().
  void stop();

  uint32_t shards() const { return static_cast<uint32_t>(shards_.size()); }
  RemoteReader& shard(size_t s) { return *shards_.at(s); }
  const RemoteReader& shard(size_t s) const { return *shards_.at(s); }
  const ShardRouter& router() const { return router_; }
  const Stats& stats() const { return stats_; }

  /// READ fragments issued to replica `i`, summed across shards (the
  /// replica_read_spread signal).
  uint64_t replica_frags(size_t i) const;

  /// Latency of completed multi-shard scatter reads (issue -> join).
  const stats::Histogram& scatter_latency() const { return scatter_latency_; }

  /// Merged per-shard logical-read latency (reporting path; allocates).
  stats::Histogram read_latency() const;

 private:
  /// One cross-shard scatter read in flight. Child completions capture
  /// the slot index, never a pointer — the pool vector may grow.
  struct JoinOp {
    /// Sub-batch for one shard plus where each sub-extent's bytes land in
    /// the logical output.
    struct Sub {
      ReadVec extents;
      uint32_t dst_off[ReadVec::kCapacity] = {};
    };
    uint32_t remaining = 0;
    uint32_t total_len = 0;
    bool live = false;
    sim::Time started = 0;
    std::vector<Sub> sub;  ///< sized to shards() on first use, then reused
    std::vector<uint8_t> scratch;
    ReadDone done;
  };

  uint32_t acquire_join();
  void child_done(uint32_t idx, uint32_t shard, ReadView view);

  std::vector<std::unique_ptr<RemoteReader>> shards_;
  ShardRouter router_;
  std::vector<JoinOp> join_ops_;
  std::vector<uint32_t> join_free_;
  Stats stats_;
  stats::Histogram scatter_latency_;
  bool stopped_ = false;
};

}  // namespace hyperloop::core
