// The group-based primitive API (paper Table 1).
//
// A ReplicationGroup is the client-side handle to a chain of replicas that
// all hold an identically laid-out replicated data region. The four
// primitives mirror Table 1:
//
//   gWRITE(offset, size [, flush])        replicate client bytes at offset
//   gMEMCPY(src, dst, size [, flush])     copy within every replica's region
//   gCAS(offset, old, new, exec_map)      conditional CAS on every replica,
//                                         returning the per-replica result map
//   gFLUSH()                              durability barrier down the chain
//
// Two implementations share this interface: HyperLoopGroup (NIC-offloaded,
// §4) and NaiveRdmaGroup (CPU-forwarded baseline, §6 "Naïve-RDMA"), so the
// WAL / locking / storage layers above run unchanged on either.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "rdma/memory.h"

namespace hyperloop::core {

/// Completion callback for write-like primitives.
using Done = std::function<void()>;

/// Completion callback for gCAS: per-replica original values (the result
/// map). Entries for replicas excluded by the execute map are 0.
using CasDone = std::function<void(const std::vector<uint64_t>&)>;

class ReplicationGroup {
 public:
  virtual ~ReplicationGroup() = default;

  /// Number of replicas in the chain (excluding the client).
  virtual size_t group_size() const = 0;

  /// Size of the replicated data region in bytes.
  virtual uint64_t region_size() const = 0;

  /// Replicates `len` bytes at `offset` of the client's local region to
  /// the same offset on every replica. With `flush`, durability is
  /// guaranteed on every replica before `done` fires.
  virtual void gwrite(uint64_t offset, uint32_t len, bool flush,
                      Done done) = 0;

  /// Copies `len` bytes from src_offset to dst_offset within every
  /// replica's region (remote log processing).
  virtual void gmemcpy(uint64_t src_offset, uint64_t dst_offset,
                       uint32_t len, bool flush, Done done) = 0;

  /// Compare-and-swap on the 8 bytes at `offset` on every replica whose
  /// bit is set in `exec_map` (group locking / selective undo).
  virtual void gcas(uint64_t offset, uint64_t expected, uint64_t desired,
                    const std::vector<bool>& exec_map, CasDone done) = 0;

  /// Standalone durability barrier across all replicas.
  virtual void gflush(Done done) = 0;

  // --- client-local region access (the coordinator's copy) ---

  /// Stores bytes into the client's local copy of the region. Call before
  /// gwrite() of the same range. The client copy is write-through durable:
  /// the head of the chain persists its own NVM stores with CPU persist
  /// instructions (pmem-style), so a coordinator crash never loses locally
  /// staged log records. Client-side gmemcpy effects are persisted too.
  virtual void client_store(uint64_t offset, const void* src,
                            uint32_t len) = 0;

  /// Reads from the client's local copy.
  virtual void client_load(uint64_t offset, void* dst,
                           uint32_t len) const = 0;

  /// Reads from replica `i`'s region (used by tests to check replication
  /// and by read paths that go to a specific replica).
  virtual void replica_load(size_t i, uint64_t offset, void* dst,
                            uint32_t len) const = 0;

  /// Convenience: gwrite of data passed inline (store + gwrite).
  void gwrite_bytes(uint64_t offset, const void* src, uint32_t len,
                    bool flush, Done done) {
    client_store(offset, src, len);
    gwrite(offset, len, flush, std::move(done));
  }
};

}  // namespace hyperloop::core
