// The group-based primitive API (paper Table 1).
//
// A ReplicationGroup is the client-side handle to a chain of replicas that
// all hold an identically laid-out replicated data region. The four
// primitives mirror Table 1:
//
//   gWRITE(offset, size [, flush])        replicate client bytes at offset
//   gMEMCPY(src, dst, size [, flush])     copy within every replica's region
//   gCAS(offset, old, new, exec_map)      conditional CAS on every replica,
//                                         returning the per-replica result map
//   gFLUSH()                              durability barrier down the chain
//
// Two implementations share this interface: HyperLoopGroup (NIC-offloaded,
// §4) and NaiveRdmaGroup (CPU-forwarded baseline, §6 "Naïve-RDMA"), so the
// WAL / locking / storage layers above run unchanged on either.
//
// Callback-type policy (see DESIGN.md "Callback types"): every async
// boundary in src/core takes a sim::SmallFn — never a copyable
// heap-backed type-erased callable. The caps below are a contract — continuation state that fits the cap lives
// inline in the pending-op slot and the steady-state path never touches
// the heap; a closure that outgrows its cap still works (SmallFn falls
// back to one allocation) but is a hot-path bug, which the sized
// static_asserts plus the nic_alloc_test transaction lap catch.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <utility>

#include "sim/small_fn.h"

namespace hyperloop::core {

/// Inline capture budget for write-like completions. 96 bytes: enough for
/// a `this` pointer, a 64-bit LSN, and a nested 64-cap SmallFn (80 bytes)
/// — the WAL tail-pointer chain is exactly that shape.
inline constexpr size_t kDoneCap = 96;

/// Inline capture budget for gCAS completions. The lock manager's CAS
/// continuations are per-op slot indices plus `this` — 48 bytes is ample.
inline constexpr size_t kCasDoneCap = 48;

/// Per-replica gCAS result map: a non-owning view over the group's ack
/// scratch (valid only for the duration of the callback). Entry i is the
/// original value replica i held; replicas excluded by the execute map
/// report 0.
class CasResult {
 public:
  CasResult(const uint64_t* values, size_t n) : v_(values), n_(n) {}

  size_t size() const { return n_; }
  uint64_t operator[](size_t i) const {
    assert(i < n_);
    return v_[i];
  }
  const uint64_t* begin() const { return v_; }
  const uint64_t* end() const { return v_ + n_; }

 private:
  const uint64_t* v_;
  size_t n_;
};

/// Completion callback for write-like primitives. Move-only; capture
/// state stays inline in the group's pending-op slot.
using Done = sim::SmallFn<void(), kDoneCap>;

/// Completion callback for gCAS. The CasResult view is only valid inside
/// the call — copy values out if they must outlive it.
using CasDone = sim::SmallFn<void(const CasResult&), kCasDoneCap>;

static_assert(sizeof(Done) == kDoneCap + 2 * sizeof(void*),
              "Done must stay a flat inline-capture SmallFn");
static_assert(sizeof(CasDone) == kCasDoneCap + 2 * sizeof(void*),
              "CasDone must stay a flat inline-capture SmallFn");

/// One gWRITEV extent: a contiguous range of the replicated region.
struct Extent {
  uint64_t offset = 0;
  uint32_t len = 0;
};

/// Fixed-capacity inline extent list for gWRITEV. Lives by value in
/// pending-op slots and credit-wait rings, so the batched submit path
/// never touches the heap. The capacity is part of the offload contract:
/// HyperLoopGroup pre-posts kCapacity WRITE WQEs per chain slot and
/// patches unused ones to NOPs.
struct ExtentVec {
  static constexpr size_t kCapacity = 8;

  Extent entries[kCapacity];
  uint32_t count = 0;

  ExtentVec() = default;
  ExtentVec(std::initializer_list<Extent> il) {
    assert(il.size() <= kCapacity);
    for (const Extent& e : il) entries[count++] = e;
  }

  void push_back(const Extent& e) {
    assert(count < kCapacity);
    entries[count++] = e;
  }
  void clear() { count = 0; }
  size_t size() const { return count; }
  bool empty() const { return count == 0; }
  bool full() const { return count == kCapacity; }
  const Extent& operator[](size_t i) const {
    assert(i < count);
    return entries[i];
  }
  const Extent* begin() const { return entries; }
  const Extent* end() const { return entries + count; }
};

/// gCAS execute map: one bit per chain position (bit i == replica i).
/// Chains are <= 64 replicas everywhere in the paper and this repo, so a
/// single word replaces the old std::vector<bool> (which allocated at
/// every lock call site).
struct ExecMap {
  uint64_t bits = 0;

  static constexpr size_t kMaxReplicas = 64;

  static constexpr ExecMap none() { return ExecMap{0}; }
  static constexpr ExecMap all(size_t n) {
    return ExecMap{n >= kMaxReplicas ? ~uint64_t{0}
                                     : (uint64_t{1} << n) - 1};
  }
  static constexpr ExecMap one(size_t i) { return ExecMap{uint64_t{1} << i}; }

  constexpr bool test(size_t i) const { return (bits >> i) & uint64_t{1}; }
  ExecMap& set(size_t i) {
    bits |= uint64_t{1} << i;
    return *this;
  }
  constexpr bool empty() const { return bits == 0; }
  constexpr bool operator==(const ExecMap&) const = default;
};

class ReplicationGroup {
 public:
  virtual ~ReplicationGroup() = default;

  /// Number of replicas in the chain (excluding the client).
  virtual size_t group_size() const = 0;

  /// Size of the replicated data region in bytes.
  virtual uint64_t region_size() const = 0;

  /// Replicates `len` bytes at `offset` of the client's local region to
  /// the same offset on every replica. With `flush`, durability is
  /// guaranteed on every replica before `done` fires.
  virtual void gwrite(uint64_t offset, uint32_t len, bool flush,
                      Done done) = 0;

  /// Scatter-gather gWRITE: replicates every extent of the client's
  /// region in one submission. With `flush`, all extents are durable on
  /// every replica before `done` fires, and `done` fires only after the
  /// *last* extent is replicated — extents land in list order, so callers
  /// may encode ordering (e.g. WAL bodies before the tail pointer) by
  /// position. The base implementation is a loop of gwrite() riding each
  /// backend's FIFO same-primitive completion order; HyperLoopGroup
  /// overrides it with a native one-chain-traversal batch.
  virtual void gwritev(const ExtentVec& extents, bool flush, Done done) {
    assert(!extents.empty());
    for (size_t i = 0; i + 1 < extents.size(); ++i) {
      gwrite(extents[i].offset, extents[i].len, flush, Done{});
    }
    const Extent& last = extents[extents.size() - 1];
    gwrite(last.offset, last.len, flush, std::move(done));
  }

  /// Copies `len` bytes from src_offset to dst_offset within every
  /// replica's region (remote log processing).
  virtual void gmemcpy(uint64_t src_offset, uint64_t dst_offset,
                       uint32_t len, bool flush, Done done) = 0;

  /// Compare-and-swap on the 8 bytes at `offset` on every replica whose
  /// bit is set in `exec_map` (group locking / selective undo).
  virtual void gcas(uint64_t offset, uint64_t expected, uint64_t desired,
                    ExecMap exec_map, CasDone done) = 0;

  /// Standalone durability barrier across all replicas.
  virtual void gflush(Done done) = 0;

  /// Idempotent teardown. Pending completion callbacks are dropped
  /// without being invoked (each counted in aborted_ops()), queued
  /// credit-wait ops are discarded, and NIC resources (QPs, then their
  /// CQs) are destroyed. After stop() the group only serves the local
  /// load/store accessors below; issuing primitives is undefined.
  /// Destructors call stop().
  virtual void stop() = 0;

  /// Number of in-flight or queued ops whose callbacks were dropped by
  /// stop() instead of completing.
  uint64_t aborted_ops() const { return aborted_ops_; }

  // --- client-local region access (the coordinator's copy) ---

  /// Stores bytes into the client's local copy of the region. Call before
  /// gwrite() of the same range. The client copy is write-through durable:
  /// the head of the chain persists its own NVM stores with CPU persist
  /// instructions (pmem-style), so a coordinator crash never loses locally
  /// staged log records. Client-side gmemcpy effects are persisted too.
  virtual void client_store(uint64_t offset, const void* src,
                            uint32_t len) = 0;

  /// Reads from the client's local copy.
  virtual void client_load(uint64_t offset, void* dst,
                           uint32_t len) const = 0;

  /// Reads from replica `i`'s region (used by tests to check replication
  /// and by read paths that go to a specific replica).
  virtual void replica_load(size_t i, uint64_t offset, void* dst,
                            uint32_t len) const = 0;

  /// Convenience: gwrite of data passed inline (store + gwrite).
  void gwrite_bytes(uint64_t offset, const void* src, uint32_t len,
                    bool flush, Done done) {
    client_store(offset, src, len);
    gwrite(offset, len, flush, std::move(done));
  }

 protected:
  /// stop() bookkeeping shared by all implementations.
  bool stopped_ = false;
  uint64_t aborted_ops_ = 0;
};

}  // namespace hyperloop::core
