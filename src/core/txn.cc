#include "core/txn.h"

#include <algorithm>
#include <memory>

namespace hyperloop::core {

struct TxnState {
  uint64_t id = 0;
  std::vector<ReplicatedWal::Entry> writes;
  std::vector<uint32_t> lock_ids;
  size_t next_lock = 0;
  std::function<void(bool)> done;
};

void TransactionManager::execute(std::vector<ReplicatedWal::Entry> writes,
                                 std::vector<uint32_t> lock_ids,
                                 std::function<void(bool)> done) {
  auto st = std::make_shared<TxnState>();
  st->id = next_txn_id_++;
  st->writes = std::move(writes);
  st->lock_ids = std::move(lock_ids);
  std::sort(st->lock_ids.begin(), st->lock_ids.end());
  st->lock_ids.erase(std::unique(st->lock_ids.begin(), st->lock_ids.end()),
                     st->lock_ids.end());
  st->done = std::move(done);
  acquire_next(std::move(st));
}

void TransactionManager::acquire_next(std::shared_ptr<TxnState> st) {
  if (st->next_lock < st->lock_ids.size()) {
    const uint32_t id = st->lock_ids[st->next_lock];
    locks_.wr_lock(id, st->id, [this, st](bool ok) mutable {
      if (!ok) {
        // Roll back the locks acquired so far, then abort.
        auto release_and_abort = std::make_shared<std::function<void(size_t)>>();
        *release_and_abort = [this, st, release_and_abort](size_t i) {
          if (i == 0) {
            ++stats_.aborted;
            st->done(false);
            // Break the cycle on the next event (never destroy a closure
            // while it executes).
            loop_.schedule_after(0, [release_and_abort] {
              *release_and_abort = nullptr;
            });
            return;
          }
          locks_.wr_unlock(st->lock_ids[i - 1], st->id,
                           [release_and_abort, i] {
                             (*release_and_abort)(i - 1);
                           });
        };
        (*release_and_abort)(st->next_lock);
        return;
      }
      ++st->next_lock;
      acquire_next(std::move(st));
    });
    return;
  }

  // All locks held: append (commit point), execute, release.
  const bool ok = wal_.append(st->writes, [this, st](uint64_t) {
    wal_.execute_and_advance([this, st] {
      auto release = std::make_shared<std::function<void(size_t)>>();
      *release = [this, st, release](size_t i) {
        if (i == st->lock_ids.size()) {
          ++stats_.committed;
          st->done(true);
          loop_.schedule_after(0, [release] { *release = nullptr; });
          return;
        }
        locks_.wr_unlock(st->lock_ids[i], st->id,
                         [release, i] { (*release)(i + 1); });
      };
      (*release)(0);
    });
  });
  if (!ok) {
    // Log full: in-flight transactions each truncate their own record, so
    // space frees up as they drain — retry after a short backoff. (The WAL
    // asserts that a single record always fits in an empty log.)
    loop_.schedule_after(sim::usec(100), [this, st] { acquire_next(st); });
  }
}

}  // namespace hyperloop::core
