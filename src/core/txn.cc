#include "core/txn.h"

#include <algorithm>
#include <memory>

namespace hyperloop::core {

struct TxnState {
  uint64_t id = 0;
  std::vector<ReplicatedWal::Entry> writes;
  std::vector<uint32_t> lock_ids;
  size_t next_lock = 0;
  TransactionManager::TxnDone done;
};

void TransactionManager::execute(std::vector<ReplicatedWal::Entry> writes,
                                 std::vector<uint32_t> lock_ids,
                                 TxnDone done) {
  auto st = std::make_shared<TxnState>();
  st->id = next_txn_id_++;
  st->writes = std::move(writes);
  st->lock_ids = std::move(lock_ids);
  std::sort(st->lock_ids.begin(), st->lock_ids.end());
  st->lock_ids.erase(std::unique(st->lock_ids.begin(), st->lock_ids.end()),
                     st->lock_ids.end());
  st->done = std::move(done);
  acquire_next(std::move(st));
}

// Rolls back locks [0, i) in reverse, then reports the abort.
void TransactionManager::release_and_abort(std::shared_ptr<TxnState> st,
                                           size_t i) {
  if (i == 0) {
    ++stats_.aborted;
    st->done(false);
    return;
  }
  const uint32_t lock_id = st->lock_ids[i - 1];
  const uint64_t owner = st->id;
  locks_.wr_unlock(lock_id, owner, [this, st = std::move(st), i]() mutable {
    release_and_abort(std::move(st), i - 1);
  });
}

// Releases locks [i, n) in order; the last release reports the commit.
void TransactionManager::commit_release(std::shared_ptr<TxnState> st,
                                        size_t i) {
  if (i == st->lock_ids.size()) {
    ++stats_.committed;
    st->done(true);
    return;
  }
  const uint32_t lock_id = st->lock_ids[i];
  const uint64_t owner = st->id;
  locks_.wr_unlock(lock_id, owner, [this, st = std::move(st), i]() mutable {
    commit_release(std::move(st), i + 1);
  });
}

void TransactionManager::acquire_next(std::shared_ptr<TxnState> st) {
  if (st->next_lock < st->lock_ids.size()) {
    const uint32_t id = st->lock_ids[st->next_lock];
    const uint64_t owner = st->id;
    locks_.wr_lock(id, owner, [this, st = std::move(st)](bool ok) mutable {
      if (!ok) {
        const size_t held = st->next_lock;
        release_and_abort(std::move(st), held);
        return;
      }
      ++st->next_lock;
      acquire_next(std::move(st));
    });
    return;
  }

  // All locks held: append (commit point), execute, release.
  const bool ok = wal_.append(st->writes, [this, st](uint64_t) mutable {
    // Execute drains the log in batches, so a concurrent transaction's
    // call may already have claimed our record; its batch was issued
    // ahead of us on the FIFO chain, so our lock releases land after the
    // record is applied either way.
    if (!wal_.execute_and_advance([this, st]() mutable {
          commit_release(std::move(st), 0);
        })) {
      commit_release(std::move(st), 0);
    }
  });
  if (!ok) {
    // Log full: in-flight transactions each truncate their own record, so
    // space frees up as they drain — retry after a short backoff. (The WAL
    // asserts that a single record always fits in an empty log.)
    loop_.schedule_after(sim::usec(100),
                         [this, st = std::move(st)] { acquire_next(st); });
  }
}

}  // namespace hyperloop::core
