#include "core/wal.h"

#include <cassert>
#include <cstring>

namespace hyperloop::core {

ReplicatedWal::ReplicatedWal(ReplicationGroup& group, RegionLayout layout)
    : ReplicatedWal(group, layout, Options{}) {}

ReplicatedWal::ReplicatedWal(ReplicationGroup& group, RegionLayout layout,
                             Options opts)
    : group_(group), layout_(layout), opts_(opts) {
  assert(layout_.valid());
  assert(layout_.base + layout_.region_size <= group.region_size());
  assert(opts_.staged_capacity >= 1);
}

uint32_t ReplicatedWal::crc32_update(uint32_t crc, const void* data,
                                     size_t len) {
  // CRC-32 (reflected 0xEDB88320), table-free bitwise variant; the log
  // payloads are small enough that simplicity beats a table here.
  const auto* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < len; ++i) {
    crc ^= p[i];
    for (int b = 0; b < 8; ++b) {
      crc = (crc >> 1) ^ (0xEDB88320u & (0u - (crc & 1u)));
    }
  }
  return crc;
}

uint32_t ReplicatedWal::stage_record(std::span<const Entry> entries,
                                     uint64_t lsn, uint64_t voff) {
  static constexpr uint8_t kZeroPad[8] = {};

  // Serialize body pieces straight into the ring while folding them into
  // the checksum; the header (which carries the final crc) lands last.
  uint32_t crc = 0xFFFFFFFFu;
  uint64_t p = voff + sizeof(RecordHeader);
  for (const Entry& e : entries) {
    EntryHeader eh;
    eh.db_offset = e.db_offset;
    eh.len = static_cast<uint32_t>(e.data.size());
    group_.client_store(log_phys(p), &eh, sizeof(eh));
    crc = crc32_update(crc, &eh, sizeof(eh));
    p += sizeof(eh);
    if (!e.data.empty()) {
      group_.client_store(log_phys(p), e.data.data(),
                          static_cast<uint32_t>(e.data.size()));
      crc = crc32_update(crc, e.data.data(), e.data.size());
      p += e.data.size();
    }
    const uint32_t pad =
        static_cast<uint32_t>((8 - (e.data.size() & 7)) & 7);
    if (pad > 0) {
      group_.client_store(log_phys(p), kZeroPad, pad);
      crc = crc32_update(crc, kZeroPad, pad);
      p += pad;
    }
  }

  RecordHeader hdr;
  hdr.magic = kRecordMagic;
  hdr.num_entries = static_cast<uint32_t>(entries.size());
  hdr.lsn = lsn;
  hdr.total_len = static_cast<uint32_t>(p - voff);
  hdr.crc = ~crc;
  group_.client_store(log_phys(voff), &hdr, sizeof(hdr));
  return hdr.total_len;
}

bool ReplicatedWal::append(std::span<const Entry> entries, AppendDone done) {
  uint64_t rec_len = sizeof(RecordHeader);
  for (const Entry& e : entries) {
    rec_len += sizeof(EntryHeader) + ((e.data.size() + 7) & ~size_t{7});
  }
  assert(rec_len <= layout_.log_size / 2 && "record too large for log");

  // Never straddle the ring wrap: pad with a wrap marker if needed.
  const uint64_t room_to_wrap = layout_.log_size - (tail_ % layout_.log_size);
  uint64_t wrap_pad = 0;
  if (rec_len > room_to_wrap) wrap_pad = room_to_wrap;

  // Backpressure: a full log and a full group-commit window look the same
  // to callers — append fails and they must drain (execute / wait) first.
  if (rec_len + wrap_pad > free_bytes() ||
      staged_.size() >= opts_.staged_capacity) {
    ++stats_.append_failures;
    return false;
  }
  const uint64_t lsn = next_lsn_++;

  if (wrap_pad > 0) {
    // Stage the marker header locally; it replicates as an extent of the
    // record's batch (the rest of the pad is junk readers skip via
    // total_len).
    RecordHeader wrap;
    wrap.magic = kWrapMagic;
    wrap.total_len = static_cast<uint32_t>(wrap_pad);
    group_.client_store(log_phys(tail_), &wrap, sizeof(wrap));
    tail_ += wrap_pad;
  }

  const uint64_t rec_voff = tail_;
  const uint32_t staged = stage_record(entries, lsn, rec_voff);
  assert(staged == rec_len);
  (void)staged;
  tail_ += rec_len;
  ++stats_.records_appended;
  stats_.bytes_appended += rec_len;

  PendingRecord pr;
  pr.rec_voff = rec_voff;
  pr.rec_len = static_cast<uint32_t>(rec_len);
  pr.wrap_len = static_cast<uint32_t>(wrap_pad);
  pr.lsn = lsn;
  pr.start = opts_.loop ? opts_.loop->now() : 0;
  pr.done = std::move(done);
  staged_.push_back(std::move(pr));

  maybe_flush();
  return true;
}

void ReplicatedWal::maybe_flush() {
  // At most one batch in flight. This is a correctness constraint, not
  // just pacing: the tail-pointer extent is *gathered* from the client
  // region at issue time by each hop's WRITE WQE, so a second batch's
  // client_store of a newer tail value could be picked up by the first
  // batch's still-traversing WRITEs — making the tail durable ahead of
  // the records it covers. (CRC-based torn detection cannot catch that:
  // after a ring wrap, the bytes under a stale tail are a *valid* old
  // record.) One outstanding batch makes the gather race-free.
  if (batch_outstanding_ || staged_.empty()) return;

  ExtentVec ext;
  uint64_t batch_tail = 0;
  while (!staged_.empty() && inflight_count_ < ExtentVec::kCapacity) {
    PendingRecord& pr = staged_.front();
    const size_t needed = pr.wrap_len > 0 ? 2u : 1u;
    // Reserve the last slot for the shared tail-pointer extent.
    if (ext.size() + needed > ExtentVec::kCapacity - 1) break;
    if (pr.wrap_len > 0) {
      ext.push_back({log_phys(pr.rec_voff - pr.wrap_len),
                     static_cast<uint32_t>(sizeof(RecordHeader))});
    }
    ext.push_back({log_phys(pr.rec_voff), pr.rec_len});
    batch_tail = pr.rec_voff + pr.rec_len;
    inflight_[inflight_count_++] = std::move(pr);
    staged_.pop_front();
  }
  assert(inflight_count_ > 0 && !ext.empty());

  // The tail rides as the *last* extent: extents land in list order, and
  // each hop's gFLUSH persists them atomically, so the durable tail never
  // runs ahead of the record bodies it commits.
  group_.client_store(layout_.tail_ptr_offset(), &batch_tail, 8);
  ext.push_back({layout_.tail_ptr_offset(), 8});

  ++stats_.gwritev_batches;
  records_per_gwrite_.record(inflight_count_);
  batch_outstanding_ = true;
  group_.gwritev(ext, /*flush=*/true, [this] { on_batch_done(); });
}

void ReplicatedWal::on_batch_done() {
  const sim::Time now = opts_.loop ? opts_.loop->now() : 0;
  // Advance the durable frontier before firing completions: a done
  // callback typically calls execute_and_advance, which may drain every
  // record this batch just committed.
  assert(inflight_count_ > 0);
  durable_tail_ = inflight_[inflight_count_ - 1].rec_voff +
                  inflight_[inflight_count_ - 1].rec_len;
  // Fire completions by moving records out of inflight_ first and keep
  // batch_outstanding_ set throughout: a done callback may append (and
  // thus re-enter maybe_flush), which must not repopulate inflight_ while
  // we iterate it.
  const uint32_t n = inflight_count_;
  for (uint32_t i = 0; i < n; ++i) {
    PendingRecord pr = std::move(inflight_[i]);
    if (opts_.loop) commit_latency_.record(now - pr.start);
    if (pr.done) pr.done(pr.lsn);
  }
  inflight_count_ = 0;
  batch_outstanding_ = false;
  maybe_flush();
}

void ReplicatedWal::write_pointer(uint64_t ctrl_offset, uint64_t value,
                                  sim::SmallFn<void(), kDoneCap> done) {
  group_.client_store(layout_.control_base() + ctrl_offset, &value, 8);
  group_.gwrite(layout_.control_base() + ctrl_offset, 8, /*flush=*/true,
                std::move(done));
}

uint32_t ReplicatedWal::acquire_exec_op() {
  if (exec_free_.empty()) {
    exec_ops_.emplace_back();
    return static_cast<uint32_t>(exec_ops_.size() - 1);
  }
  const uint32_t idx = exec_free_.back();
  exec_free_.pop_back();
  return idx;
}

void ReplicatedWal::finish_exec(uint32_t idx) {
  ExecOp& op = exec_ops_[idx];
  stats_.records_executed += op.records;
  const uint64_t new_head = op.rec_voff + op.total_len;
  Done done = std::move(op.done);
  op.live = false;
  exec_free_.push_back(idx);
  write_pointer(RegionLayout::kHeadOffset, new_head,
                [d = std::move(done)]() mutable {
                  if (d) d();
                });
}

bool ReplicatedWal::execute_and_advance(Done done) {
  // Skip wrap markers.
  while (head_ != durable_tail_) {
    RecordHeader hdr;
    group_.client_load(log_phys(head_), &hdr, sizeof(hdr));
    if (hdr.magic == kWrapMagic) {
      head_ += hdr.total_len;
      continue;
    }
    assert(hdr.magic == kRecordMagic && "corrupt log record");
    break;
  }
  if (head_ == durable_tail_) return false;

  // Every record in [head_, durable_tail_) is committed AND replicated
  // (its batch acked), so that whole backlog drains as ONE batch. Count
  // pass first: the batch's entry total must be known before any gMEMCPY
  // ack can fire, and the span end ties the batch to a single head
  // advance.
  const uint64_t batch_voff = head_;
  uint64_t v = head_;
  uint32_t num_entries = 0, num_records = 0;
  while (v != durable_tail_) {
    RecordHeader hdr;
    group_.client_load(log_phys(v), &hdr, sizeof(hdr));
    if (hdr.magic != kWrapMagic) {
      assert(hdr.magic == kRecordMagic && "corrupt log record");
      num_entries += hdr.num_entries;
      ++num_records;
    }
    v += hdr.total_len;
  }

  // Advance the in-memory head eagerly so a concurrent caller sees the
  // backlog as claimed. FIFO gMEMCPY/gWRITE acks guarantee the durable
  // head pointer writes still land in batch order.
  head_ = v;

  // Claim a pooled op slot; one gMEMCPY per entry decrements it, and the
  // last ack durably advances the head (log truncation).
  const uint32_t idx = acquire_exec_op();
  ExecOp& op = exec_ops_[idx];
  assert(!op.live);
  op.rec_voff = batch_voff;
  op.total_len = static_cast<uint32_t>(v - batch_voff);
  op.remaining = num_entries;
  op.records = num_records;
  op.live = true;
  op.done = std::move(done);
  ++stats_.exec_batches;

  if (num_entries == 0) {
    finish_exec(idx);
    return true;
  }

  // Issue pass: the per-entry gMEMCPYs ride unflushed — the chain applies
  // them in FIFO order on every replica, so the single gFLUSH carried by
  // the trailing head-pointer advance (finish_exec -> write_pointer)
  // persists the whole batch at once instead of paying one flush per
  // record.
  uint64_t r = batch_voff;
  while (r != v) {
    RecordHeader hdr;
    group_.client_load(log_phys(r), &hdr, sizeof(hdr));
    if (hdr.magic == kWrapMagic) {
      r += hdr.total_len;
      continue;
    }
    uint64_t p = r + sizeof(RecordHeader);
    for (uint32_t i = 0; i < hdr.num_entries; ++i) {
      EntryHeader eh;
      group_.client_load(log_phys(p), &eh, sizeof(eh));
      const uint64_t data_voff = p + sizeof(EntryHeader);
      group_.gmemcpy(log_phys(data_voff), layout_.db_base() + eh.db_offset,
                     eh.len, /*flush=*/false, [this, idx] {
                       if (--exec_ops_[idx].remaining == 0) finish_exec(idx);
                     });
      p = data_voff + ((eh.len + 7) & ~uint64_t{7});
    }
    r += hdr.total_len;
  }
  return true;
}

void ReplicatedWal::reload_pointers() {
  group_.client_load(layout_.head_ptr_offset(), &head_, 8);
  group_.client_load(layout_.tail_ptr_offset(), &tail_, 8);
  // The recovered tail came from the durable control region, so every
  // record below it is committed and replicated by definition.
  durable_tail_ = tail_;
}

ShardedWal::ShardedWal(ReplicationGroup& group, RegionLayout slice,
                       uint32_t shards, ReplicatedWal::Options opts) {
  assert(shards >= 1);
  assert(slice.base == 0 && "pass the shard-0 slice; bases are derived");
  assert(uint64_t{shards} * slice.region_size <= group.region_size());
  wals_.reserve(shards);
  for (uint32_t s = 0; s < shards; ++s) {
    wals_.push_back(
        std::make_unique<ReplicatedWal>(group, slice.shard_slice(s), opts));
  }
}

bool ShardedWal::append(std::span<const Entry> entries, AppendDone done) {
  // Keyless appends spread across segments round-robin. Like the
  // single-segment append, a false return means backpressure (that
  // segment's log or group-commit window is full) and consumes `done`;
  // callers retry exactly as they would against one ReplicatedWal.
  const uint32_t s = rr_;
  rr_ = (rr_ + 1) % shards();
  return wals_[s]->append(entries, std::move(done));
}

uint64_t ShardedWal::used_bytes() const {
  uint64_t total = 0;
  for (const auto& w : wals_) total += w->used_bytes();
  return total;
}

ReplicatedWal::Stats ShardedWal::totals() const {
  ReplicatedWal::Stats t;
  for (const auto& w : wals_) {
    const ReplicatedWal::Stats& s = w->stats();
    t.records_appended += s.records_appended;
    t.records_executed += s.records_executed;
    t.bytes_appended += s.bytes_appended;
    t.append_failures += s.append_failures;
    t.gwritev_batches += s.gwritev_batches;
    t.exec_batches += s.exec_batches;
  }
  return t;
}

}  // namespace hyperloop::core
