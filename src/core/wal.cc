#include "core/wal.h"

#include <cassert>
#include <cstring>
#include <memory>

namespace hyperloop::core {

ReplicatedWal::ReplicatedWal(ReplicationGroup& group, RegionLayout layout)
    : group_(group), layout_(layout) {
  assert(layout_.valid());
  assert(layout_.region_size <= group.region_size());
}

uint32_t ReplicatedWal::crc32(const uint8_t* data, size_t len) {
  // CRC-32 (reflected 0xEDB88320), table-free bitwise variant; the log
  // payloads are small enough that simplicity beats a table here.
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    crc ^= data[i];
    for (int b = 0; b < 8; ++b) {
      crc = (crc >> 1) ^ (0xEDB88320u & (0u - (crc & 1u)));
    }
  }
  return ~crc;
}

std::vector<uint8_t> ReplicatedWal::serialize(
    const std::vector<Entry>& entries, uint64_t lsn) {
  size_t body = 0;
  for (const Entry& e : entries) {
    body += sizeof(EntryHeader) + ((e.data.size() + 7) & ~size_t{7});
  }
  std::vector<uint8_t> out(sizeof(RecordHeader) + body);
  auto* hdr = reinterpret_cast<RecordHeader*>(out.data());
  hdr->magic = kRecordMagic;
  hdr->num_entries = static_cast<uint32_t>(entries.size());
  hdr->lsn = lsn;
  hdr->total_len = static_cast<uint32_t>(out.size());

  uint8_t* p = out.data() + sizeof(RecordHeader);
  for (const Entry& e : entries) {
    EntryHeader eh;
    eh.db_offset = e.db_offset;
    eh.len = static_cast<uint32_t>(e.data.size());
    std::memcpy(p, &eh, sizeof(eh));
    p += sizeof(eh);
    std::memcpy(p, e.data.data(), e.data.size());
    p += (e.data.size() + 7) & ~size_t{7};
  }
  hdr->crc = crc32(out.data() + sizeof(RecordHeader), body);
  return out;
}

bool ReplicatedWal::append(const std::vector<Entry>& entries,
                           std::function<void(uint64_t)> done) {
  const uint64_t lsn = next_lsn_;
  std::vector<uint8_t> rec = serialize(entries, lsn);
  assert(rec.size() <= layout_.log_size / 2 && "record too large for log");

  // Never straddle the ring wrap: pad with a wrap marker if needed.
  const uint64_t room_to_wrap = layout_.log_size - (tail_ % layout_.log_size);
  uint64_t wrap_pad = 0;
  if (rec.size() > room_to_wrap) wrap_pad = room_to_wrap;

  if (rec.size() + wrap_pad > free_bytes()) {
    ++stats_.append_failures;
    return false;
  }
  ++next_lsn_;

  if (wrap_pad > 0) {
    RecordHeader wrap;
    wrap.magic = kWrapMagic;
    wrap.total_len = static_cast<uint32_t>(wrap_pad);
    group_.client_store(log_phys(tail_), &wrap, sizeof(wrap));
    // Replicate at least the marker header (the rest of the pad is junk
    // that readers skip via total_len).
    group_.gwrite(log_phys(tail_), sizeof(wrap), /*flush=*/true, [] {});
    tail_ += wrap_pad;
  }

  const uint64_t rec_voff = tail_;
  group_.client_store(log_phys(rec_voff), rec.data(),
                      static_cast<uint32_t>(rec.size()));
  tail_ += rec.size();
  ++stats_.records_appended;
  stats_.bytes_appended += rec.size();

  // 1) the record body, 2) the tail pointer. Both flushed; same-primitive
  // ordering guarantees the tail never becomes durable before the record.
  group_.gwrite(log_phys(rec_voff), static_cast<uint32_t>(rec.size()),
                /*flush=*/true, [] {});
  write_pointer(RegionLayout::kTailOffset, tail_,
                [lsn, done = std::move(done)] {
                  if (done) done(lsn);
                });
  return true;
}

void ReplicatedWal::write_pointer(uint64_t ctrl_offset, uint64_t value,
                                  std::function<void()> done) {
  group_.client_store(RegionLayout::kControlBase + ctrl_offset, &value, 8);
  group_.gwrite(RegionLayout::kControlBase + ctrl_offset, 8, /*flush=*/true,
                std::move(done));
}

bool ReplicatedWal::execute_and_advance(std::function<void()> done) {
  // Skip wrap markers.
  while (head_ != tail_) {
    RecordHeader hdr;
    group_.client_load(log_phys(head_), &hdr, sizeof(hdr));
    if (hdr.magic == kWrapMagic) {
      head_ += hdr.total_len;
      continue;
    }
    assert(hdr.magic == kRecordMagic && "corrupt log record");
    break;
  }
  if (head_ == tail_) return false;

  RecordHeader hdr;
  const uint64_t rec_voff = head_;
  group_.client_load(log_phys(rec_voff), &hdr, sizeof(hdr));

  // Advance the in-memory head eagerly so a concurrent caller processes
  // the *next* record. FIFO gMEMCPY/gWRITE acks guarantee the durable
  // head pointer writes still land in record order.
  head_ = rec_voff + hdr.total_len;

  // Issue one gMEMCPY+gFLUSH per entry; complete when all have ACKed,
  // then durably advance the head (log truncation).
  auto remaining = std::make_shared<uint32_t>(hdr.num_entries);
  auto advance = [this, rec_voff, total = hdr.total_len,
                  done = std::move(done)]() mutable {
    ++stats_.records_executed;
    write_pointer(RegionLayout::kHeadOffset, rec_voff + total,
                  std::move(done));
  };

  if (hdr.num_entries == 0) {
    advance();
    return true;
  }

  auto shared_advance =
      std::make_shared<std::function<void()>>(std::move(advance));
  uint64_t p = rec_voff + sizeof(RecordHeader);
  for (uint32_t i = 0; i < hdr.num_entries; ++i) {
    EntryHeader eh;
    group_.client_load(log_phys(p), &eh, sizeof(eh));
    const uint64_t data_voff = p + sizeof(EntryHeader);
    group_.gmemcpy(log_phys(data_voff), layout_.db_base() + eh.db_offset,
                   eh.len, /*flush=*/true,
                   [remaining, shared_advance] {
                     if (--*remaining == 0) (*shared_advance)();
                   });
    p = data_voff + ((eh.len + 7) & ~uint64_t{7});
  }
  return true;
}

uint64_t ReplicatedWal::replay(const RegionLayout& layout, const LoadFn& load,
                               const StoreFn& store) {
  uint64_t head = 0, tail = 0;
  load(RegionLayout::kControlBase + RegionLayout::kHeadOffset, &head, 8);
  load(RegionLayout::kControlBase + RegionLayout::kTailOffset, &tail, 8);

  auto phys = [&](uint64_t v) {
    return layout.log_base() + (v % layout.log_size);
  };

  uint64_t applied = 0;
  uint64_t v = head;
  while (v < tail) {
    RecordHeader hdr;
    load(phys(v), &hdr, sizeof(hdr));
    if (hdr.magic == kWrapMagic) {
      v += hdr.total_len;
      continue;
    }
    if (hdr.magic != kRecordMagic || hdr.total_len == 0 ||
        v + hdr.total_len > tail) {
      break;  // torn tail; committed prefix ends here
    }
    // Verify the checksum before applying.
    const uint32_t body = hdr.total_len - sizeof(RecordHeader);
    std::vector<uint8_t> buf(body);
    load(phys(v + sizeof(RecordHeader)), buf.data(), body);
    if (crc32(buf.data(), body) != hdr.crc) break;

    const uint8_t* p = buf.data();
    for (uint32_t i = 0; i < hdr.num_entries; ++i) {
      EntryHeader eh;
      std::memcpy(&eh, p, sizeof(eh));
      p += sizeof(eh);
      store(layout.db_base() + eh.db_offset, p, eh.len);
      p += (eh.len + 7) & ~size_t{7};
    }
    ++applied;
    v += hdr.total_len;
  }
  return applied;
}

void ReplicatedWal::reload_pointers() {
  group_.client_load(RegionLayout::kControlBase + RegionLayout::kHeadOffset,
                     &head_, 8);
  group_.client_load(RegionLayout::kControlBase + RegionLayout::kTailOffset,
                     &tail_, 8);
}

}  // namespace hyperloop::core
